// Package predicate implements the promise predicate language of paper §3:
// "Predicates are simply Boolean expressions over resources. Our model
// imposes no restrictions on the form these expressions can take."
//
// The package provides, in the "most general and complex form" of §3, a
// standard syntax (SQL/XPath-flavoured boolean expressions over named
// resource properties), so that "the promise manager … can be completely
// general purpose, knowing nothing about the applications, schemas or
// resource availability": it only needs to parse, store, and evaluate
// predicate expressions with the assistance of a resource manager.
//
// The language:
//
//	expr   := or
//	or     := and { ("or" | "||") and }
//	and    := not { ("and" | "&&") not }
//	not    := ["not" | "!"] cmp
//	cmp    := sum [ ("=" | "==" | "!=" | "<" | "<=" | ">" | ">=") sum ]
//	        | sum "in" "(" literal {"," literal} ")"
//	sum    := term { ("+" | "-") term }
//	term   := unary { ("*" | "/" | "%") unary }
//	unary  := ["-"] primary
//	primary:= INT | STRING | "true" | "false" | IDENT {"." IDENT} | "(" expr ")"
//
// Values are 64-bit integers (quantities, balances in cents, floor numbers),
// strings (bed types, categories) and booleans (smoking, view). Floats are
// deliberately absent: every quantity in the paper's examples is discrete,
// and exact comparison keeps promise checking decidable.
package predicate

import (
	"fmt"
	"strconv"
)

// Kind enumerates the dynamic types of predicate values.
type Kind int

// Value kinds.
const (
	KindInt Kind = iota
	KindString
	KindBool
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a dynamically typed predicate value.
type Value struct {
	kind Kind
	i    int64
	s    string
	b    bool
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Str returns a string Value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean Value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the dynamic type.
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the integer payload; ok is false for non-int values.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsString returns the string payload; ok is false for non-string values.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsBool returns the boolean payload; ok is false for non-bool values.
func (v Value) AsBool() (bool, bool) { return v.b, v.kind == KindBool }

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindInt:
		return v.i == w.i
	case KindString:
		return v.s == w.s
	case KindBool:
		return v.b == w.b
	}
	return false
}

// Compare orders two values of the same kind: -1, 0, +1. Booleans order
// false < true (useful for "ordered in acceptability" properties, §3.3).
// It returns an error when the kinds differ, because silently comparing a
// string to an int would make promise checking unsound.
func (v Value) Compare(w Value) (int, error) {
	if v.kind != w.kind {
		return 0, fmt.Errorf("predicate: cannot compare %s with %s", v.kind, w.kind)
	}
	switch v.kind {
	case KindInt:
		switch {
		case v.i < w.i:
			return -1, nil
		case v.i > w.i:
			return 1, nil
		}
		return 0, nil
	case KindString:
		switch {
		case v.s < w.s:
			return -1, nil
		case v.s > w.s:
			return 1, nil
		}
		return 0, nil
	case KindBool:
		switch {
		case !v.b && w.b:
			return -1, nil
		case v.b && !w.b:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("predicate: unknown kind %v", v.kind)
}

// String renders the value in source syntax, so expressions round-trip.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return strconv.Quote(v.s)
	case KindBool:
		return strconv.FormatBool(v.b)
	}
	return "?"
}

// MarshalText encodes the value in source syntax — the same rendering as
// String — so values embed in JSON (checkpoints, the wire protocol's seed
// files) without a parallel encoding.
func (v Value) MarshalText() ([]byte, error) {
	return []byte(v.String()), nil
}

// UnmarshalText parses the source syntax written by MarshalText: quoted
// strings, "true"/"false", otherwise a 64-bit integer.
func (v *Value) UnmarshalText(text []byte) error {
	s := string(text)
	switch {
	case s == "true":
		*v = Bool(true)
	case s == "false":
		*v = Bool(false)
	case len(s) > 0 && s[0] == '"':
		u, err := strconv.Unquote(s)
		if err != nil {
			return fmt.Errorf("predicate: bad string value %q: %w", s, err)
		}
		*v = Str(u)
	default:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("predicate: bad value %q: %w", s, err)
		}
		*v = Int(i)
	}
	return nil
}
