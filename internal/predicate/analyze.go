package predicate

import (
	"math"
)

// Interval is a closed-open style integer interval [Lo, Hi] with inclusive
// bounds; Lo = math.MinInt64 / Hi = math.MaxInt64 encode unboundedness.
// Intervals model the satisfying set of conjunctive comparisons on one
// integer property, e.g. `balance >= 100 and balance < 500`.
type Interval struct {
	Lo, Hi int64
}

// Unbounded is the interval containing every int64.
var Unbounded = Interval{Lo: math.MinInt64, Hi: math.MaxInt64}

// Empty reports whether the interval contains no values.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int64) bool { return v >= iv.Lo && v <= iv.Hi }

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(other Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if other.Lo > lo {
		lo = other.Lo
	}
	if other.Hi < hi {
		hi = other.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

// Bound extracts the satisfying interval for expressions that are
// conjunctions of comparisons between a single integer property and integer
// literals, such as the paper's running examples `quantity >= 5` and
// `balance >= 100`. It returns the property name, the interval, and ok=false
// when the expression is not of this restricted shape (disjunctions,
// multiple properties, strings, arithmetic on the property, …).
//
// The promise manager uses Bound to reason about escrow-style promises:
// a set of promises {p >= a_i} over one account is jointly satisfiable
// exactly when the resource value is at least max(a_i) after reserved
// amounts are summed (see internal/escrow and internal/core).
func Bound(e Expr) (prop string, iv Interval, ok bool) {
	iv = Unbounded
	// Fold first so negative literals (parsed as 0-n) become plain literals.
	prop, iv, ok = bound(Fold(e), "", iv)
	if !ok || prop == "" {
		return "", Interval{}, false
	}
	return prop, iv, true
}

func bound(e Expr, prop string, iv Interval) (string, Interval, bool) {
	switch n := e.(type) {
	case *Binary:
		switch n.Op {
		case OpAnd:
			prop, iv, ok := bound(n.L, prop, iv)
			if !ok {
				return "", Interval{}, false
			}
			return bound(n.R, prop, iv)
		case OpEq, OpLt, OpLe, OpGt, OpGe:
			return boundCmp(n, prop, iv)
		default:
			return "", Interval{}, false
		}
	case *Lit:
		// `true` as a conjunct is the identity.
		if b, ok := n.Val.AsBool(); ok && b {
			return prop, iv, true
		}
		return "", Interval{}, false
	default:
		return "", Interval{}, false
	}
}

// boundCmp handles one comparison `ref op lit` or `lit op ref`.
func boundCmp(n *Binary, prop string, iv Interval) (string, Interval, bool) {
	ref, lit, flipped := splitRefLit(n.L, n.R)
	if ref == nil {
		return "", Interval{}, false
	}
	c, isInt := lit.AsInt()
	if !isInt {
		return "", Interval{}, false
	}
	if prop != "" && ref.Name != prop {
		return "", Interval{}, false // mentions a second property
	}
	prop = ref.Name

	op := n.Op
	if flipped {
		// lit op ref  ≡  ref op' lit with the comparison mirrored.
		switch op {
		case OpLt:
			op = OpGt
		case OpLe:
			op = OpGe
		case OpGt:
			op = OpLt
		case OpGe:
			op = OpLe
		}
	}
	var cons Interval
	switch op {
	case OpEq:
		cons = Interval{Lo: c, Hi: c}
	case OpLt:
		if c == math.MinInt64 {
			return prop, Interval{Lo: 1, Hi: 0}, true // empty
		}
		cons = Interval{Lo: math.MinInt64, Hi: c - 1}
	case OpLe:
		cons = Interval{Lo: math.MinInt64, Hi: c}
	case OpGt:
		if c == math.MaxInt64 {
			return prop, Interval{Lo: 1, Hi: 0}, true // empty
		}
		cons = Interval{Lo: c + 1, Hi: math.MaxInt64}
	case OpGe:
		cons = Interval{Lo: c, Hi: math.MaxInt64}
	default:
		return "", Interval{}, false
	}
	return prop, iv.Intersect(cons), true
}

// splitRefLit identifies which side of a comparison is the property
// reference and which the literal. flipped is true when the literal is on
// the left.
func splitRefLit(l, r Expr) (*Ref, Value, bool) {
	if ref, ok := l.(*Ref); ok {
		if lit, ok := r.(*Lit); ok {
			return ref, lit.Val, false
		}
		return nil, Value{}, false
	}
	if lit, ok := l.(*Lit); ok {
		if ref, ok := r.(*Ref); ok {
			return ref, lit.Val, true
		}
	}
	return nil, Value{}, false
}

// Implies reports whether every integer assignment of prop satisfying a
// also satisfies b, for the restricted Bound shape. It is used when
// deciding whether a promise modification (§4) weakens or strengthens an
// existing guarantee. ok is false when either expression is outside the
// Bound fragment or they constrain different properties.
func Implies(a, b Expr) (implies, ok bool) {
	pa, ia, okA := Bound(a)
	pb, ib, okB := Bound(b)
	if !okA || !okB || pa != pb {
		return false, false
	}
	if ia.Empty() {
		return true, true // vacuous
	}
	return ib.Lo <= ia.Lo && ia.Hi <= ib.Hi, true
}

// Fold performs constant folding: any subexpression without property
// references is evaluated and replaced by its literal value. Expressions
// with evaluation errors (e.g. division by zero) are left intact so the
// error surfaces at evaluation time with full context.
func Fold(e Expr) Expr {
	folded, _ := fold(e)
	return folded
}

func fold(e Expr) (Expr, bool) {
	switch n := e.(type) {
	case *Lit:
		return n, true
	case *Ref:
		return n, false
	case *Not:
		x, constX := fold(n.X)
		out := &Not{X: x}
		if constX {
			if v, err := evalValue(out, MapEnv{}); err == nil {
				return &Lit{Val: v}, true
			}
		}
		return out, false
	case *In:
		x, constX := fold(n.X)
		out := &In{X: x, Set: n.Set}
		if constX {
			if v, err := evalValue(out, MapEnv{}); err == nil {
				return &Lit{Val: v}, true
			}
		}
		return out, false
	case *Binary:
		l, constL := fold(n.L)
		r, constR := fold(n.R)
		out := &Binary{Op: n.Op, L: l, R: r}
		if constL && constR {
			if v, err := evalValue(out, MapEnv{}); err == nil {
				return &Lit{Val: v}, true
			}
		}
		return out, false
	default:
		return e, false
	}
}
