package predicate

import (
	"fmt"
	"strings"
)

// Expr is a parsed predicate expression. Expressions are immutable after
// parsing and safe to share between goroutines.
type Expr interface {
	// String renders the expression in source syntax; parsing the result
	// yields an equivalent expression (tested by quick-check round trips).
	String() string
	// appendProps accumulates referenced property names.
	appendProps(set map[string]struct{})
}

// Lit is a literal value.
type Lit struct {
	Val Value
}

// String implements Expr.
func (l *Lit) String() string                      { return l.Val.String() }
func (l *Lit) appendProps(set map[string]struct{}) {}

// Ref is a reference to a named resource property, e.g. "quantity" or
// "room.floor".
type Ref struct {
	Name string
}

// String implements Expr.
func (r *Ref) String() string                      { return r.Name }
func (r *Ref) appendProps(set map[string]struct{}) { set[r.Name] = struct{}{} }

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpAnd BinOp = iota
	OpOr
	OpEq
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
)

// String returns the source form of the operator.
func (op BinOp) String() string {
	switch op {
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpEq:
		return "="
	case OpNeq:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	}
	return fmt.Sprintf("BinOp(%d)", int(op))
}

// Binary is a binary operation.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// String implements Expr. Output is fully parenthesised so precedence is
// preserved on re-parse.
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

func (b *Binary) appendProps(set map[string]struct{}) {
	b.L.appendProps(set)
	b.R.appendProps(set)
}

// Not is logical negation.
type Not struct {
	X Expr
}

// String implements Expr.
func (n *Not) String() string { return "(not " + n.X.String() + ")" }

func (n *Not) appendProps(set map[string]struct{}) { n.X.appendProps(set) }

// In tests membership of an expression's value in a literal set, e.g.
// `beds in ("twin", "king")`.
type In struct {
	X   Expr
	Set []Value
}

// String implements Expr.
func (in *In) String() string {
	parts := make([]string, len(in.Set))
	for i, v := range in.Set {
		parts[i] = v.String()
	}
	return "(" + in.X.String() + " in (" + strings.Join(parts, ", ") + "))"
}

func (in *In) appendProps(set map[string]struct{}) { in.X.appendProps(set) }

// Properties returns the sorted-free set of property names referenced by e.
func Properties(e Expr) map[string]struct{} {
	set := make(map[string]struct{})
	e.appendProps(set)
	return set
}
