package predicate

import "fmt"

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokInt
	tokString
	tokIdent // includes dotted identifiers; keywords resolved by parser
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokEq  // = or ==
	tokNeq // !=
	tokLt
	tokLe
	tokGt
	tokGe
	tokAnd // and, &&
	tokOr  // or, ||
	tokNot // not, !
	tokIn  // in
	tokTrue
	tokFalse
)

func (k tokenKind) String() string {
	names := map[tokenKind]string{
		tokEOF: "EOF", tokInt: "INT", tokString: "STRING", tokIdent: "IDENT",
		tokLParen: "(", tokRParen: ")", tokComma: ",", tokDot: ".",
		tokPlus: "+", tokMinus: "-", tokStar: "*", tokSlash: "/", tokPercent: "%",
		tokEq: "=", tokNeq: "!=", tokLt: "<", tokLe: "<=", tokGt: ">", tokGe: ">=",
		tokAnd: "and", tokOr: "or", tokNot: "not", tokIn: "in",
		tokTrue: "true", tokFalse: "false",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string // identifier text or string literal content
	num  int64  // integer literal value
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokIdent:
		return t.text
	case tokInt:
		return fmt.Sprintf("%d", t.num)
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.kind.String()
	}
}
