package predicate

import (
	"errors"
	"strings"
	"testing"
)

func TestParseSimpleComparison(t *testing.T) {
	e, err := Parse("quantity >= 5")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	b, ok := e.(*Binary)
	if !ok || b.Op != OpGe {
		t.Fatalf("got %T %v, want Binary >=", e, e)
	}
	if r, ok := b.L.(*Ref); !ok || r.Name != "quantity" {
		t.Fatalf("left = %v, want Ref quantity", b.L)
	}
	if l, ok := b.R.(*Lit); !ok || !l.Val.Equal(Int(5)) {
		t.Fatalf("right = %v, want 5", b.R)
	}
}

func TestParsePrecedenceAndOverOr(t *testing.T) {
	e := MustParse("a = 1 or b = 2 and c = 3")
	top, ok := e.(*Binary)
	if !ok || top.Op != OpOr {
		t.Fatalf("top = %v, want or", e)
	}
	right, ok := top.R.(*Binary)
	if !ok || right.Op != OpAnd {
		t.Fatalf("right of or = %v, want and", top.R)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	e := MustParse("x + 2 * 3 = 7")
	env := MapEnv{"x": Int(1)}
	got, err := Eval(e, env)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if !got {
		t.Fatalf("1 + 2*3 = 7 should hold")
	}
}

func TestParseDottedIdentifier(t *testing.T) {
	e := MustParse("room.floor = 5")
	props := Properties(e)
	if _, ok := props["room.floor"]; !ok {
		t.Fatalf("Properties = %v, want room.floor", props)
	}
}

func TestParseStringBothQuotes(t *testing.T) {
	for _, src := range []string{`beds = "twin"`, `beds = 'twin'`} {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		ok, err := Eval(e, MapEnv{"beds": Str("twin")})
		if err != nil || !ok {
			t.Fatalf("Eval(%q) = %v, %v", src, ok, err)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	e := MustParse(`name = "a\"b"`)
	ok, err := Eval(e, MapEnv{"name": Str(`a"b`)})
	if err != nil || !ok {
		t.Fatalf("escape eval = %v, %v", ok, err)
	}
}

func TestParseInSet(t *testing.T) {
	e := MustParse(`beds in ("twin", "king") and floor >= 5`)
	cases := []struct {
		beds  string
		floor int64
		want  bool
	}{
		{"twin", 5, true},
		{"king", 12, true},
		{"single", 8, false},
		{"twin", 2, false},
	}
	for _, c := range cases {
		got, err := Eval(e, MapEnv{"beds": Str(c.beds), "floor": Int(c.floor)})
		if err != nil {
			t.Fatalf("Eval(%v): %v", c, err)
		}
		if got != c.want {
			t.Errorf("beds=%s floor=%d: got %v, want %v", c.beds, c.floor, got, c.want)
		}
	}
}

func TestParseInSetNegativeNumbers(t *testing.T) {
	e := MustParse("delta in (-1, 0, 1)")
	got, err := Eval(e, MapEnv{"delta": Int(-1)})
	if err != nil || !got {
		t.Fatalf("in set with negative = %v, %v", got, err)
	}
}

func TestParseNotVariants(t *testing.T) {
	for _, src := range []string{"not smoking", "!smoking", "not (smoking)"} {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		got, err := Eval(e, MapEnv{"smoking": Bool(false)})
		if err != nil || !got {
			t.Fatalf("Eval(%q) = %v, %v", src, got, err)
		}
	}
}

func TestParseSQLStyleOperators(t *testing.T) {
	e := MustParse("a <> 3")
	got, err := Eval(e, MapEnv{"a": Int(4)})
	if err != nil || !got {
		t.Fatalf("<> eval = %v, %v", got, err)
	}
	e = MustParse("a == 3 AND b OR NOT c")
	got, err = Eval(e, MapEnv{"a": Int(3), "b": Bool(false), "c": Bool(false)})
	if err != nil || !got {
		t.Fatalf("keyword-case eval = %v, %v", got, err)
	}
}

func TestParseUnaryMinus(t *testing.T) {
	e := MustParse("balance >= -100")
	got, err := Eval(e, MapEnv{"balance": Int(-50)})
	if err != nil || !got {
		t.Fatalf("unary minus = %v, %v", got, err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"quantity >=",
		">= 5",
		"(a = 1",
		"a = 1)",
		"a & b",
		"a | b",
		`name = "unterminated`,
		"5x",
		"a in 5",
		"a in ()",
		"a in (b)", // non-literal member
		"a = 1 extra",
		"a @ 1",
		"beds in (-'x')",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("Parse(%q) error type %T, want *SyntaxError", src, err)
			}
		}
	}
}

func TestParseErrorMentionsOffset(t *testing.T) {
	_, err := Parse("quantity >= ")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error %q should mention offset", err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"quantity >= 5",
		"(a = 1 or b = 2) and not c",
		`beds in ("twin", "king")`,
		"x + 2 * 3 - 1 = 6",
		"-x < 4",
		"a % 2 = 0",
		"a / 2 >= 1",
	}
	for _, src := range srcs {
		e1 := MustParse(src)
		printed := e1.String()
		e2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-Parse(%q from %q): %v", printed, src, err)
		}
		if e2.String() != printed {
			t.Errorf("round trip changed: %q -> %q", printed, e2.String())
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	MustParse("((")
}
