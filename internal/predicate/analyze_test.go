package predicate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoundSimple(t *testing.T) {
	prop, iv, ok := Bound(MustParse("balance >= 100"))
	if !ok || prop != "balance" {
		t.Fatalf("Bound: prop=%q ok=%v", prop, ok)
	}
	if iv.Lo != 100 || iv.Hi != math.MaxInt64 {
		t.Fatalf("interval = %+v", iv)
	}
}

func TestBoundConjunction(t *testing.T) {
	prop, iv, ok := Bound(MustParse("q >= 5 and q < 20 and q != 0 or false"))
	// The trailing "or false" makes it a disjunction — not the Bound shape.
	if ok {
		t.Fatalf("Bound accepted disjunction: %q %+v", prop, iv)
	}
	prop, iv, ok = Bound(MustParse("q >= 5 and q < 20"))
	if !ok || prop != "q" {
		t.Fatalf("Bound: prop=%q ok=%v", prop, ok)
	}
	if iv.Lo != 5 || iv.Hi != 19 {
		t.Fatalf("interval = %+v, want [5,19]", iv)
	}
}

func TestBoundFlipped(t *testing.T) {
	prop, iv, ok := Bound(MustParse("100 <= balance"))
	if !ok || prop != "balance" || iv.Lo != 100 {
		t.Fatalf("flipped Bound: %q %+v %v", prop, iv, ok)
	}
	_, iv, ok = Bound(MustParse("20 > q and 5 <= q"))
	if !ok || iv.Lo != 5 || iv.Hi != 19 {
		t.Fatalf("flipped conj: %+v %v", iv, ok)
	}
}

func TestBoundEquality(t *testing.T) {
	_, iv, ok := Bound(MustParse("floor = 5"))
	if !ok || iv.Lo != 5 || iv.Hi != 5 {
		t.Fatalf("eq Bound: %+v %v", iv, ok)
	}
}

func TestBoundEmptyInterval(t *testing.T) {
	_, iv, ok := Bound(MustParse("q >= 10 and q <= 5"))
	if !ok {
		t.Fatal("conjunction should still be in the Bound fragment")
	}
	if !iv.Empty() {
		t.Fatalf("interval %+v should be empty", iv)
	}
}

func TestBoundRejectsNonFragment(t *testing.T) {
	cases := []string{
		"a >= 1 and b >= 2", // two properties
		`name = "x"`,        // string literal
		"a + 1 >= 2",        // arithmetic on property
		"a >= 1 or a <= 5",  // disjunction
		"not (a >= 1)",      // negation
		"a != 3",            // != has a hole, not an interval
		"a in (1, 2)",       // membership
		"true and false",    // no property at all (false conjunct)
		"a >= 1 and false",  // boolean literal false conjunct
	}
	for _, src := range cases {
		if prop, iv, ok := Bound(MustParse(src)); ok {
			t.Errorf("Bound(%q) accepted: %q %+v", src, prop, iv)
		}
	}
}

func TestBoundTrueConjunctIdentity(t *testing.T) {
	prop, iv, ok := Bound(MustParse("true and q >= 3"))
	if !ok || prop != "q" || iv.Lo != 3 {
		t.Fatalf("true-conjunct Bound: %q %+v %v", prop, iv, ok)
	}
}

func TestImplies(t *testing.T) {
	cases := []struct {
		a, b        string
		implies, ok bool
	}{
		{"balance >= 200", "balance >= 100", true, true},  // stronger implies weaker
		{"balance >= 100", "balance >= 200", false, true}, // weaker does not imply stronger
		{"q = 5", "q >= 1 and q <= 10", true, true},
		{"q >= 1 and q <= 10", "q = 5", false, true},
		{"q >= 10 and q <= 5", "q = 999", true, true}, // empty implies anything
		{"a >= 1", "b >= 1", false, false},            // different properties
		{"a >= 1 or a <= 0", "a >= 1", false, false},  // outside fragment
	}
	for _, c := range cases {
		imp, ok := Implies(MustParse(c.a), MustParse(c.b))
		if imp != c.implies || ok != c.ok {
			t.Errorf("Implies(%q, %q) = (%v,%v), want (%v,%v)", c.a, c.b, imp, ok, c.implies, c.ok)
		}
	}
}

func TestIntervalOps(t *testing.T) {
	a := Interval{Lo: 0, Hi: 10}
	b := Interval{Lo: 5, Hi: 20}
	got := a.Intersect(b)
	if got.Lo != 5 || got.Hi != 10 {
		t.Fatalf("Intersect = %+v", got)
	}
	if !got.Contains(5) || !got.Contains(10) || got.Contains(11) {
		t.Fatal("Contains wrong")
	}
	if (Interval{Lo: 3, Hi: 2}).Empty() != true {
		t.Fatal("Empty wrong")
	}
}

func TestFoldConstants(t *testing.T) {
	e := Fold(MustParse("q >= 2 + 3"))
	b, ok := e.(*Binary)
	if !ok {
		t.Fatalf("fold result %T", e)
	}
	lit, ok := b.R.(*Lit)
	if !ok || !lit.Val.Equal(Int(5)) {
		t.Fatalf("folded right = %v, want 5", b.R)
	}
}

func TestFoldFullyConstant(t *testing.T) {
	e := Fold(MustParse("1 + 2 = 3"))
	lit, ok := e.(*Lit)
	if !ok {
		t.Fatalf("fold result %T, want Lit", e)
	}
	if b, _ := lit.Val.AsBool(); !b {
		t.Fatal("folded to false")
	}
}

func TestFoldPreservesErrors(t *testing.T) {
	// 1/0 cannot fold; the error must still surface at eval time.
	e := Fold(MustParse("1/0 = 1"))
	if _, ok := e.(*Lit); ok {
		t.Fatal("1/0 folded to literal")
	}
	if _, err := Eval(e, MapEnv{}); err == nil {
		t.Fatal("folded 1/0 lost its evaluation error")
	}
}

func TestFoldInAndNot(t *testing.T) {
	e := Fold(MustParse(`"a" in ("a", "b")`))
	if lit, ok := e.(*Lit); !ok {
		t.Fatalf("in fold: %T", e)
	} else if b, _ := lit.Val.AsBool(); !b {
		t.Fatal("in fold value")
	}
	e = Fold(MustParse("not false"))
	if lit, ok := e.(*Lit); !ok {
		t.Fatalf("not fold: %T", e)
	} else if b, _ := lit.Val.AsBool(); !b {
		t.Fatal("not fold value")
	}
}

// genExpr builds a random expression over properties p0..p3 (ints) and
// f0..f1 (bools) with the given depth budget.
func genExpr(r *rand.Rand, depth int) Expr {
	intProps := []string{"p0", "p1", "p2", "p3"}
	boolProps := []string{"f0", "f1"}
	if depth <= 0 {
		// Leaf: comparison or bool ref.
		if r.Intn(4) == 0 {
			return &Ref{Name: boolProps[r.Intn(len(boolProps))]}
		}
		ops := []BinOp{OpEq, OpNeq, OpLt, OpLe, OpGt, OpGe}
		return &Binary{
			Op: ops[r.Intn(len(ops))],
			L:  &Ref{Name: intProps[r.Intn(len(intProps))]},
			R:  &Lit{Val: Int(int64(r.Intn(21) - 10))},
		}
	}
	switch r.Intn(4) {
	case 0:
		return &Not{X: genExpr(r, depth-1)}
	case 1:
		return &Binary{Op: OpAnd, L: genExpr(r, depth-1), R: genExpr(r, depth-1)}
	case 2:
		return &Binary{Op: OpOr, L: genExpr(r, depth-1), R: genExpr(r, depth-1)}
	default:
		set := make([]Value, 1+r.Intn(3))
		for i := range set {
			set[i] = Int(int64(r.Intn(21) - 10))
		}
		return &In{X: &Ref{Name: intProps[r.Intn(len(intProps))]}, Set: set}
	}
}

func randEnv(r *rand.Rand) MapEnv {
	return MapEnv{
		"p0": Int(int64(r.Intn(21) - 10)),
		"p1": Int(int64(r.Intn(21) - 10)),
		"p2": Int(int64(r.Intn(21) - 10)),
		"p3": Int(int64(r.Intn(21) - 10)),
		"f0": Bool(r.Intn(2) == 0),
		"f1": Bool(r.Intn(2) == 0),
	}
}

// TestQuickPrintParseEvalAgree is the core property test: for random
// expressions, String() then Parse() yields an expression with identical
// evaluation behaviour on random environments.
func TestQuickPrintParseEvalAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e1 := genExpr(r, 3)
		e2, err := Parse(e1.String())
		if err != nil {
			t.Logf("re-parse of %q failed: %v", e1.String(), err)
			return false
		}
		for i := 0; i < 8; i++ {
			env := randEnv(r)
			v1, err1 := Eval(e1, env)
			v2, err2 := Eval(e2, env)
			if (err1 == nil) != (err2 == nil) || v1 != v2 {
				t.Logf("disagree on %q: (%v,%v) vs (%v,%v)", e1.String(), v1, err1, v2, err2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFoldPreservesSemantics: folding never changes evaluation results.
func TestQuickFoldPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 3)
		folded := Fold(e)
		for i := 0; i < 8; i++ {
			env := randEnv(r)
			v1, err1 := Eval(e, env)
			v2, err2 := Eval(folded, env)
			if (err1 == nil) != (err2 == nil) || v1 != v2 {
				t.Logf("fold changed %q -> %q: (%v,%v) vs (%v,%v)",
					e.String(), folded.String(), v1, err1, v2, err2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBoundSoundness: when Bound extracts an interval, membership in
// the interval coincides with predicate truth.
func TestQuickBoundSoundness(t *testing.T) {
	ops := []string{">=", "<=", ">", "<", "="}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Build a random conjunction of 1-3 comparisons on one property.
		n := 1 + r.Intn(3)
		src := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				src += " and "
			}
			src += "q " + ops[r.Intn(len(ops))] + " " + Int(int64(r.Intn(41)-20)).String()
		}
		e := MustParse(src)
		prop, iv, ok := Bound(e)
		if !ok || prop != "q" {
			t.Logf("Bound(%q) rejected", src)
			return false
		}
		for v := int64(-25); v <= 25; v++ {
			truth, err := Eval(e, MapEnv{"q": Int(v)})
			if err != nil {
				t.Logf("eval error: %v", err)
				return false
			}
			if truth != iv.Contains(v) {
				t.Logf("Bound(%q) = %+v disagrees at q=%d (eval=%v)", src, iv, v, truth)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValueCompareAndString(t *testing.T) {
	if _, err := Int(1).Compare(Str("a")); err == nil {
		t.Fatal("cross-kind compare should error")
	}
	if c, _ := Str("a").Compare(Str("b")); c != -1 {
		t.Fatal("string compare")
	}
	if c, _ := Bool(true).Compare(Bool(false)); c != 1 {
		t.Fatal("bool compare")
	}
	if Int(5).String() != "5" || Str("x").String() != `"x"` || Bool(true).String() != "true" {
		t.Fatal("value String()")
	}
	if Int(1).Equal(Bool(true)) {
		t.Fatal("cross-kind Equal should be false")
	}
	if KindInt.String() != "int" || KindString.String() != "string" || KindBool.String() != "bool" {
		t.Fatal("kind names")
	}
}
