package predicate

import (
	"errors"
	"testing"
)

func TestEvalComparisons(t *testing.T) {
	env := MapEnv{"q": Int(10), "name": Str("alice"), "flag": Bool(true)}
	cases := []struct {
		src  string
		want bool
	}{
		{"q = 10", true},
		{"q != 10", false},
		{"q < 11", true},
		{"q <= 10", true},
		{"q > 10", false},
		{"q >= 10", true},
		{`name = "alice"`, true},
		{`name < "bob"`, true},
		{"flag = true", true},
		{"flag", true},
		{"not flag", false},
		{"q >= 5 and q <= 20", true},
		{"q < 5 or q > 5", true},
		{"q*2 = 20", true},
		{"q-10 = 0", true},
		{"q/3 = 3", true},
		{"q%3 = 1", true},
		{"false < true", true}, // bool ordering, §3.3 acceptability
	}
	for _, c := range cases {
		e := MustParse(c.src)
		got, err := Eval(e, env)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalStringConcat(t *testing.T) {
	v, err := EvalValue(MustParse(`"foo" + "bar"`), MapEnv{})
	if err != nil {
		t.Fatalf("EvalValue: %v", err)
	}
	if s, _ := v.AsString(); s != "foobar" {
		t.Fatalf("concat = %q", s)
	}
}

func TestEvalUnknownProperty(t *testing.T) {
	_, err := Eval(MustParse("missing = 1"), MapEnv{})
	if err == nil {
		t.Fatal("want error for unknown property")
	}
	if !errors.Is(err, ErrUnknownProperty) {
		t.Fatalf("error %v should wrap ErrUnknownProperty", err)
	}
	var ee *EvalError
	if !errors.As(err, &ee) {
		t.Fatalf("error type %T, want *EvalError", err)
	}
}

func TestEvalTypeErrors(t *testing.T) {
	env := MapEnv{"s": Str("x"), "n": Int(3), "b": Bool(true)}
	cases := []string{
		"s < 5",       // mixed-kind comparison
		"s and b",     // non-bool operand of and
		"b or n",      // non-bool right operand of or (b=false path) — but b true short-circuits
		"not n",       // not over int
		"s * 2 = 2",   // arithmetic over string
		"n + b = 1",   // arithmetic over bool
		"n = 3 and n", // int used as condition (left true, so right is reached)
	}
	for _, src := range cases {
		e := MustParse(src)
		_, err := Eval(e, env)
		if src == "b or n" {
			// b=true short-circuits; rewrite with false to force the error.
			_, err = Eval(e, MapEnv{"b": Bool(false), "n": Int(3)})
		}
		if err == nil {
			t.Errorf("Eval(%q) succeeded, want type error", src)
		}
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// The right operand references a missing property; short circuit must
	// prevent evaluation.
	e := MustParse("q > 100 and missing = 1")
	got, err := Eval(e, MapEnv{"q": Int(1)})
	if err != nil || got {
		t.Fatalf("and short-circuit: got %v, %v", got, err)
	}
	e = MustParse("q < 100 or missing = 1")
	got, err = Eval(e, MapEnv{"q": Int(1)})
	if err != nil || !got {
		t.Fatalf("or short-circuit: got %v, %v", got, err)
	}
}

func TestEvalDivByZero(t *testing.T) {
	for _, src := range []string{"1/0 = 1", "1%0 = 1"} {
		if _, err := Eval(MustParse(src), MapEnv{}); err == nil {
			t.Errorf("Eval(%q) succeeded, want division error", src)
		}
	}
}

func TestEvalNonBoolResult(t *testing.T) {
	if _, err := Eval(MustParse("1 + 2"), MapEnv{}); err == nil {
		t.Fatal("Eval of arithmetic expr should fail (non-bool result)")
	}
}

func TestEvalHotelExample(t *testing.T) {
	// Room 512 from §3.3: has a view AND is on the 5th floor, so it can
	// satisfy either competing predicate.
	room512 := MapEnv{"floor": Int(5), "view": Bool(true), "beds": Str("twin"), "smoking": Bool(false)}
	wantView := MustParse("view = true")
	want5th := MustParse("floor = 5")
	for _, e := range []Expr{wantView, want5th} {
		ok, err := Eval(e, room512)
		if err != nil || !ok {
			t.Fatalf("room512 should satisfy %s: %v %v", e, ok, err)
		}
	}
	// §3.3 negotiation example: non-smoking with view and twin beds.
	full := MustParse(`not smoking and view and beds = "twin"`)
	ok, err := Eval(full, room512)
	if err != nil || !ok {
		t.Fatalf("room512 should satisfy full predicate: %v %v", ok, err)
	}
}
