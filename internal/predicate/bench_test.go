package predicate

import "testing"

// The predicate language sits on the promise manager's hottest path (every
// property-view edge evaluation parses nothing but evaluates one Expr), so
// its costs are pinned here.

func BenchmarkParse(b *testing.B) {
	const src = `not smoking and view and beds = "twin" and floor >= 5`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEval(b *testing.B) {
	e := MustParse(`not smoking and view and beds = "twin" and floor >= 5`)
	env := MapEnv{
		"smoking": Bool(false),
		"view":    Bool(true),
		"beds":    Str("twin"),
		"floor":   Int(5),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := Eval(e, env)
		if err != nil || !ok {
			b.Fatalf("%v %v", ok, err)
		}
	}
}

func BenchmarkEvalShortCircuit(b *testing.B) {
	e := MustParse(`smoking and view and beds = "twin"`)
	env := MapEnv{"smoking": Bool(false)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := Eval(e, env)
		if err != nil || ok {
			b.Fatalf("%v %v", ok, err)
		}
	}
}

func BenchmarkFold(b *testing.B) {
	e := MustParse("quantity >= 2 + 3 and 1 + 1 = 2")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Fold(e)
	}
}

func BenchmarkBound(b *testing.B) {
	e := MustParse("balance >= 100 and balance < 500")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := Bound(e); !ok {
			b.Fatal("not bounded")
		}
	}
}
