package predicate

// parser is a recursive-descent parser over the lexer's token stream with a
// single token of lookahead.
type parser struct {
	lex *lexer
	tok token
	err error
}

// Parse parses a predicate expression in the language documented on the
// package comment. It returns a *SyntaxError on malformed input.
func Parse(src string) (Expr, error) {
	p := &parser{lex: &lexer{src: src}}
	p.advance()
	if p.err != nil {
		return nil, p.err
	}
	e := p.parseOr()
	if p.err != nil {
		return nil, p.err
	}
	if p.tok.kind != tokEOF {
		return nil, p.lex.errf(p.tok.pos, "unexpected %s after expression", p.tok)
	}
	return e, nil
}

// MustParse parses src and panics on error. For tests and package-level
// example predicates only.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) advance() {
	if p.err != nil {
		return
	}
	tok, err := p.lex.next()
	if err != nil {
		p.err = err
		p.tok = token{kind: tokEOF}
		return
	}
	p.tok = tok
}

func (p *parser) fail(format string, args ...any) {
	if p.err == nil {
		p.err = p.lex.errf(p.tok.pos, format, args...)
	}
}

func (p *parser) parseOr() Expr {
	e := p.parseAnd()
	for p.err == nil && p.tok.kind == tokOr {
		p.advance()
		r := p.parseAnd()
		e = &Binary{Op: OpOr, L: e, R: r}
	}
	return e
}

func (p *parser) parseAnd() Expr {
	e := p.parseNot()
	for p.err == nil && p.tok.kind == tokAnd {
		p.advance()
		r := p.parseNot()
		e = &Binary{Op: OpAnd, L: e, R: r}
	}
	return e
}

func (p *parser) parseNot() Expr {
	if p.tok.kind == tokNot {
		p.advance()
		return &Not{X: p.parseNot()}
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() Expr {
	e := p.parseSum()
	if p.err != nil {
		return e
	}
	var op BinOp
	switch p.tok.kind {
	case tokEq:
		op = OpEq
	case tokNeq:
		op = OpNeq
	case tokLt:
		op = OpLt
	case tokLe:
		op = OpLe
	case tokGt:
		op = OpGt
	case tokGe:
		op = OpGe
	case tokIn:
		p.advance()
		return p.parseInSet(e)
	default:
		return e
	}
	p.advance()
	r := p.parseSum()
	return &Binary{Op: op, L: e, R: r}
}

// parseInSet parses `( literal {, literal} )` after an `in` keyword.
func (p *parser) parseInSet(x Expr) Expr {
	if p.tok.kind != tokLParen {
		p.fail("expected '(' after 'in', got %s", p.tok)
		return x
	}
	p.advance()
	var set []Value
	for {
		v, ok := p.parseLiteralValue()
		if !ok {
			return x
		}
		set = append(set, v)
		if p.tok.kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if p.tok.kind != tokRParen {
		p.fail("expected ')' closing 'in' set, got %s", p.tok)
		return x
	}
	p.advance()
	return &In{X: x, Set: set}
}

func (p *parser) parseLiteralValue() (Value, bool) {
	neg := false
	if p.tok.kind == tokMinus {
		neg = true
		p.advance()
	}
	switch p.tok.kind {
	case tokInt:
		n := p.tok.num
		if neg {
			n = -n
		}
		p.advance()
		return Int(n), true
	case tokString:
		if neg {
			p.fail("cannot negate string literal")
			return Value{}, false
		}
		s := p.tok.text
		p.advance()
		return Str(s), true
	case tokTrue:
		if neg {
			p.fail("cannot negate boolean literal")
			return Value{}, false
		}
		p.advance()
		return Bool(true), true
	case tokFalse:
		if neg {
			p.fail("cannot negate boolean literal")
			return Value{}, false
		}
		p.advance()
		return Bool(false), true
	default:
		p.fail("expected literal in 'in' set, got %s", p.tok)
		return Value{}, false
	}
}

func (p *parser) parseSum() Expr {
	e := p.parseTerm()
	for p.err == nil {
		var op BinOp
		switch p.tok.kind {
		case tokPlus:
			op = OpAdd
		case tokMinus:
			op = OpSub
		default:
			return e
		}
		p.advance()
		r := p.parseTerm()
		e = &Binary{Op: op, L: e, R: r}
	}
	return e
}

func (p *parser) parseTerm() Expr {
	e := p.parseUnary()
	for p.err == nil {
		var op BinOp
		switch p.tok.kind {
		case tokStar:
			op = OpMul
		case tokSlash:
			op = OpDiv
		case tokPercent:
			op = OpMod
		default:
			return e
		}
		p.advance()
		r := p.parseUnary()
		e = &Binary{Op: op, L: e, R: r}
	}
	return e
}

func (p *parser) parseUnary() Expr {
	if p.tok.kind == tokMinus {
		p.advance()
		x := p.parseUnary()
		// -x is sugar for (0 - x).
		return &Binary{Op: OpSub, L: &Lit{Val: Int(0)}, R: x}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() Expr {
	switch p.tok.kind {
	case tokInt:
		e := &Lit{Val: Int(p.tok.num)}
		p.advance()
		return e
	case tokString:
		e := &Lit{Val: Str(p.tok.text)}
		p.advance()
		return e
	case tokTrue:
		p.advance()
		return &Lit{Val: Bool(true)}
	case tokFalse:
		p.advance()
		return &Lit{Val: Bool(false)}
	case tokIdent:
		e := &Ref{Name: p.tok.text}
		p.advance()
		return e
	case tokLParen:
		p.advance()
		e := p.parseOr()
		if p.err != nil {
			return e
		}
		if p.tok.kind != tokRParen {
			p.fail("expected ')', got %s", p.tok)
			return e
		}
		p.advance()
		return e
	default:
		p.fail("expected expression, got %s", p.tok)
		return &Lit{Val: Bool(false)}
	}
}
