package predicate

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// SyntaxError describes a lexing or parsing failure with its byte offset in
// the source expression.
type SyntaxError struct {
	Pos int
	Msg string
	Src string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("predicate: syntax error at offset %d: %s (in %q)", e.Pos, e.Msg, e.Src)
}

// lexer tokenises a predicate expression.
type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...), Src: l.src}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, pos: start}, nil
	case c == '+':
		l.pos++
		return token{kind: tokPlus, pos: start}, nil
	case c == '-':
		l.pos++
		return token{kind: tokMinus, pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, pos: start}, nil
	case c == '/':
		l.pos++
		return token{kind: tokSlash, pos: start}, nil
	case c == '%':
		l.pos++
		return token{kind: tokPercent, pos: start}, nil
	case c == '=':
		l.pos++
		if l.peekByte() == '=' {
			l.pos++
		}
		return token{kind: tokEq, pos: start}, nil
	case c == '!':
		l.pos++
		if l.peekByte() == '=' {
			l.pos++
			return token{kind: tokNeq, pos: start}, nil
		}
		return token{kind: tokNot, pos: start}, nil
	case c == '<':
		l.pos++
		if l.peekByte() == '=' {
			l.pos++
			return token{kind: tokLe, pos: start}, nil
		}
		if l.peekByte() == '>' { // SQL-style <>
			l.pos++
			return token{kind: tokNeq, pos: start}, nil
		}
		return token{kind: tokLt, pos: start}, nil
	case c == '>':
		l.pos++
		if l.peekByte() == '=' {
			l.pos++
			return token{kind: tokGe, pos: start}, nil
		}
		return token{kind: tokGt, pos: start}, nil
	case c == '&':
		l.pos++
		if l.peekByte() != '&' {
			return token{}, l.errf(start, "unexpected '&' (use && or and)")
		}
		l.pos++
		return token{kind: tokAnd, pos: start}, nil
	case c == '|':
		l.pos++
		if l.peekByte() != '|' {
			return token{}, l.errf(start, "unexpected '|' (use || or or)")
		}
		l.pos++
		return token{kind: tokOr, pos: start}, nil
	case c == '\'' || c == '"':
		return l.lexString(c)
	case c >= '0' && c <= '9':
		return l.lexInt()
	default:
		r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
		if isIdentStart(r) {
			return l.lexIdent()
		}
		return token{}, l.errf(start, "unexpected character %q", r)
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
}

func (l *lexer) lexInt() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	// Reject "5x" style runs where digits flow straight into letters.
	if l.pos < len(l.src) {
		r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
		if isIdentStart(r) {
			return token{}, l.errf(start, "malformed number %q", l.src[start:l.pos+1])
		}
	}
	n, err := strconv.ParseInt(l.src[start:l.pos], 10, 64)
	if err != nil {
		return token{}, l.errf(start, "integer out of range: %s", l.src[start:l.pos])
	}
	return token{kind: tokInt, num: n, pos: start}, nil
}

// lexString scans a single- or double-quoted string. Backslash escapes the
// quote character and backslash itself.
func (l *lexer) lexString(quote byte) (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf(start, "unterminated string")
			}
			l.pos++
			sb.WriteByte(l.src[l.pos])
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errf(start, "unterminated string")
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.pos += size
	}
	word := l.src[start:l.pos]
	switch strings.ToLower(word) {
	case "and":
		return token{kind: tokAnd, pos: start}, nil
	case "or":
		return token{kind: tokOr, pos: start}, nil
	case "not":
		return token{kind: tokNot, pos: start}, nil
	case "in":
		return token{kind: tokIn, pos: start}, nil
	case "true":
		return token{kind: tokTrue, pos: start}, nil
	case "false":
		return token{kind: tokFalse, pos: start}, nil
	}
	return token{kind: tokIdent, text: word, pos: start}, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
