package predicate

import (
	"errors"
	"fmt"
)

// Env supplies property values during evaluation. A resource instance, a
// pool record, or a joined view can all act as environments.
type Env interface {
	// Lookup returns the value of the named property and whether it exists.
	Lookup(name string) (Value, bool)
}

// MapEnv is an Env backed by a map. The zero value is an empty environment.
type MapEnv map[string]Value

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (Value, bool) {
	v, ok := m[name]
	return v, ok
}

// ErrUnknownProperty is wrapped by evaluation errors for references to
// properties the environment does not define. Callers distinguish "predicate
// is false" from "predicate is not applicable to this resource".
var ErrUnknownProperty = errors.New("unknown property")

// EvalError describes an evaluation failure.
type EvalError struct {
	Expr string
	Err  error
}

// Error implements error.
func (e *EvalError) Error() string {
	return fmt.Sprintf("predicate: evaluating %s: %v", e.Expr, e.Err)
}

// Unwrap exposes the cause.
func (e *EvalError) Unwrap() error { return e.Err }

// Eval evaluates e against env and requires a boolean result, as promise
// predicates are boolean conditions (§3).
func Eval(e Expr, env Env) (bool, error) {
	v, err := evalValue(e, env)
	if err != nil {
		return false, err
	}
	b, ok := v.AsBool()
	if !ok {
		return false, &EvalError{Expr: e.String(), Err: fmt.Errorf("predicate result is %s, want bool", v.Kind())}
	}
	return b, nil
}

// EvalValue evaluates e against env and returns its value of any kind.
// Useful for computed properties and tests.
func EvalValue(e Expr, env Env) (Value, error) {
	return evalValue(e, env)
}

func evalValue(e Expr, env Env) (Value, error) {
	switch n := e.(type) {
	case *Lit:
		return n.Val, nil
	case *Ref:
		v, ok := env.Lookup(n.Name)
		if !ok {
			return Value{}, &EvalError{Expr: e.String(), Err: fmt.Errorf("%w: %q", ErrUnknownProperty, n.Name)}
		}
		return v, nil
	case *Not:
		v, err := evalValue(n.X, env)
		if err != nil {
			return Value{}, err
		}
		b, ok := v.AsBool()
		if !ok {
			return Value{}, &EvalError{Expr: e.String(), Err: fmt.Errorf("operand of 'not' is %s, want bool", v.Kind())}
		}
		return Bool(!b), nil
	case *In:
		v, err := evalValue(n.X, env)
		if err != nil {
			return Value{}, err
		}
		for _, member := range n.Set {
			if v.Equal(member) {
				return Bool(true), nil
			}
		}
		return Bool(false), nil
	case *Binary:
		return evalBinary(n, env)
	default:
		return Value{}, &EvalError{Expr: e.String(), Err: fmt.Errorf("unknown expression node %T", e)}
	}
}

func evalBinary(n *Binary, env Env) (Value, error) {
	// Short-circuit logical operators first.
	switch n.Op {
	case OpAnd, OpOr:
		l, err := evalValue(n.L, env)
		if err != nil {
			return Value{}, err
		}
		lb, ok := l.AsBool()
		if !ok {
			return Value{}, &EvalError{Expr: n.String(), Err: fmt.Errorf("left operand of %s is %s, want bool", n.Op, l.Kind())}
		}
		if n.Op == OpAnd && !lb {
			return Bool(false), nil
		}
		if n.Op == OpOr && lb {
			return Bool(true), nil
		}
		r, err := evalValue(n.R, env)
		if err != nil {
			return Value{}, err
		}
		rb, ok := r.AsBool()
		if !ok {
			return Value{}, &EvalError{Expr: n.String(), Err: fmt.Errorf("right operand of %s is %s, want bool", n.Op, r.Kind())}
		}
		return Bool(rb), nil
	}

	l, err := evalValue(n.L, env)
	if err != nil {
		return Value{}, err
	}
	r, err := evalValue(n.R, env)
	if err != nil {
		return Value{}, err
	}

	switch n.Op {
	case OpEq:
		return Bool(l.Equal(r)), nil
	case OpNeq:
		return Bool(!l.Equal(r)), nil
	case OpLt, OpLe, OpGt, OpGe:
		c, err := l.Compare(r)
		if err != nil {
			return Value{}, &EvalError{Expr: n.String(), Err: err}
		}
		switch n.Op {
		case OpLt:
			return Bool(c < 0), nil
		case OpLe:
			return Bool(c <= 0), nil
		case OpGt:
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case OpAdd:
		// "+" concatenates strings as a convenience for property synthesis.
		if l.Kind() == KindString && r.Kind() == KindString {
			ls, _ := l.AsString()
			rs, _ := r.AsString()
			return Str(ls + rs), nil
		}
		fallthrough
	case OpSub, OpMul, OpDiv, OpMod:
		li, lok := l.AsInt()
		ri, rok := r.AsInt()
		if !lok || !rok {
			return Value{}, &EvalError{Expr: n.String(), Err: fmt.Errorf("arithmetic %s needs ints, got %s and %s", n.Op, l.Kind(), r.Kind())}
		}
		switch n.Op {
		case OpAdd:
			return Int(li + ri), nil
		case OpSub:
			return Int(li - ri), nil
		case OpMul:
			return Int(li * ri), nil
		case OpDiv:
			if ri == 0 {
				return Value{}, &EvalError{Expr: n.String(), Err: errors.New("division by zero")}
			}
			return Int(li / ri), nil
		default:
			if ri == 0 {
				return Value{}, &EvalError{Expr: n.String(), Err: errors.New("modulo by zero")}
			}
			return Int(li % ri), nil
		}
	}
	return Value{}, &EvalError{Expr: n.String(), Err: fmt.Errorf("unknown operator %v", n.Op)}
}
