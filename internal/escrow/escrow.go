// Package escrow implements the "Resource Pool" technique of paper §5 for
// anonymous resources, in the style of O'Neil's escrow transactional method
// [8]: "when we promise that we can supply 10 widgets, we remove 10 widgets
// from the pool of available widgets and place them in the allocated pool.
// The digital equivalent can be implemented by keeping a count of available
// and allocated items in the record corresponding to each type of
// resource."
//
// A Ledger keeps, per pool, the quantities reserved by each holder. The
// escrow invariant is
//
//	sum(reserved quantities) <= pool quantity on hand
//
// which is exactly §3.1: "the only constraint being that the sum of all
// promised resources should not exceed the resources that are actually
// available." Because the ledger lives in the same transactional store as
// the resource manager, a promise grant and its reservation commit or roll
// back together (§8).
package escrow

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/resource"
	"repro/internal/txn"
)

// Table is the store table holding escrow entries.
const Table = "escrow"

// ErrInsufficient is returned when a reservation would overdraw the pool.
var ErrInsufficient = errors.New("escrow: insufficient unreserved quantity")

// ErrNoReservation is returned when releasing or consuming more than the
// holder has reserved.
var ErrNoReservation = errors.New("escrow: holder has no such reservation")

// entry is the per-pool escrow record.
type entry struct {
	pool     string
	reserved map[string]int64 // holder -> quantity
}

// CloneRow implements txn.Row.
func (e *entry) CloneRow() txn.Row {
	c := &entry{pool: e.pool, reserved: make(map[string]int64, len(e.reserved))}
	for k, v := range e.reserved {
		c.reserved[k] = v
	}
	return c
}

// entryJSON is the checkpoint/WAL wire form of an entry (the struct's own
// fields are unexported by design; durability needs a stable encoding).
type entryJSON struct {
	Pool     string           `json:"pool"`
	Reserved map[string]int64 `json:"reserved"`
}

// MarshalJSON implements json.Marshaler for checkpoint serialization.
func (e *entry) MarshalJSON() ([]byte, error) {
	return json.Marshal(entryJSON{Pool: e.pool, Reserved: e.reserved})
}

// UnmarshalJSON implements json.Unmarshaler for checkpoint recovery.
func (e *entry) UnmarshalJSON(data []byte) error {
	var j entryJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Reserved == nil {
		j.Reserved = make(map[string]int64)
	}
	e.pool, e.reserved = j.Pool, j.Reserved
	return nil
}

// DecodeRow decodes a serialized escrow entry back into a store row — the
// escrow table's codec for WAL/checkpoint recovery.
func DecodeRow(data []byte) (txn.Row, error) {
	e := &entry{}
	if err := json.Unmarshal(data, e); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *entry) total() int64 {
	var t int64
	for _, q := range e.reserved {
		t += q
	}
	return t
}

// Ledger tracks escrow reservations against pools managed by a
// resource.Manager sharing the same store.
type Ledger struct {
	store *txn.Store
	rm    *resource.Manager
}

// NewLedger creates the escrow table and returns a Ledger.
func NewLedger(store *txn.Store, rm *resource.Manager) (*Ledger, error) {
	if err := store.CreateTable(Table); err != nil {
		return nil, err
	}
	return &Ledger{store: store, rm: rm}, nil
}

func (l *Ledger) load(r txn.Reader, pool string) (*entry, error) {
	row, err := r.Get(Table, pool)
	if errors.Is(err, txn.ErrNotFound) {
		return &entry{pool: pool, reserved: make(map[string]int64)}, nil
	}
	if err != nil {
		return nil, err
	}
	return row.(*entry), nil
}

// Reserve sets aside qty units of pool for holder, enforcing the escrow
// invariant against the pool's current quantity on hand. Multiple
// reservations by the same holder accumulate.
func (l *Ledger) Reserve(tx *txn.Tx, pool, holder string, qty int64) error {
	if qty <= 0 {
		return fmt.Errorf("escrow: reserve quantity must be positive, got %d", qty)
	}
	p, err := l.rm.Pool(tx, pool)
	if err != nil {
		return err
	}
	e, err := l.load(tx, pool)
	if err != nil {
		return err
	}
	if e.total()+qty > p.OnHand {
		return fmt.Errorf("%w: pool %q has %d on hand, %d already reserved, requested %d",
			ErrInsufficient, pool, p.OnHand, e.total(), qty)
	}
	e.reserved[holder] += qty
	return tx.Put(Table, pool, e)
}

// Release returns qty units of holder's reservation to the unreserved pool.
func (l *Ledger) Release(tx *txn.Tx, pool, holder string, qty int64) error {
	if qty <= 0 {
		return fmt.Errorf("escrow: release quantity must be positive, got %d", qty)
	}
	e, err := l.load(tx, pool)
	if err != nil {
		return err
	}
	if e.reserved[holder] < qty {
		return fmt.Errorf("%w: holder %q reserved %d of pool %q, tried to release %d",
			ErrNoReservation, holder, e.reserved[holder], pool, qty)
	}
	e.reserved[holder] -= qty
	if e.reserved[holder] == 0 {
		delete(e.reserved, holder)
	}
	return tx.Put(Table, pool, e)
}

// ReleaseAll returns holder's entire reservation in pool to the unreserved
// quantity and reports how much was freed (zero, without error, when the
// holder held nothing). The promise manager's release path uses it so that
// handing back a promise slot is one ledger operation instead of a
// read-then-release pair.
func (l *Ledger) ReleaseAll(tx *txn.Tx, pool, holder string) (int64, error) {
	e, err := l.load(tx, pool)
	if err != nil {
		return 0, err
	}
	q := e.reserved[holder]
	if q == 0 {
		return 0, nil
	}
	delete(e.reserved, holder)
	return q, tx.Put(Table, pool, e)
}

// Consume fulfils qty units of holder's reservation: the reservation
// shrinks and the pool's quantity on hand falls by the same amount — the
// action "which depends on, but violates, a previously promised condition,
// together with releasing the promise" (§4).
func (l *Ledger) Consume(tx *txn.Tx, pool, holder string, qty int64) error {
	if qty <= 0 {
		return fmt.Errorf("escrow: consume quantity must be positive, got %d", qty)
	}
	e, err := l.load(tx, pool)
	if err != nil {
		return err
	}
	if e.reserved[holder] < qty {
		return fmt.Errorf("%w: holder %q reserved %d of pool %q, tried to consume %d",
			ErrNoReservation, holder, e.reserved[holder], pool, qty)
	}
	if _, err := l.rm.AdjustPool(tx, pool, -qty); err != nil {
		return err
	}
	e.reserved[holder] -= qty
	if e.reserved[holder] == 0 {
		delete(e.reserved, holder)
	}
	return tx.Put(Table, pool, e)
}

// Reserved returns the quantity holder currently has reserved in pool.
func (l *Ledger) Reserved(r txn.Reader, pool, holder string) (int64, error) {
	e, err := l.load(r, pool)
	if err != nil {
		return 0, err
	}
	return e.reserved[holder], nil
}

// TotalReserved returns the sum of all reservations against pool.
func (l *Ledger) TotalReserved(r txn.Reader, pool string) (int64, error) {
	e, err := l.load(r, pool)
	if err != nil {
		return 0, err
	}
	return e.total(), nil
}

// Unreserved returns the pool quantity not covered by any reservation —
// what a new promise request can still draw on.
func (l *Ledger) Unreserved(r txn.Reader, pool string) (int64, error) {
	p, err := l.rm.Pool(r, pool)
	if err != nil {
		return 0, err
	}
	total, err := l.TotalReserved(r, pool)
	if err != nil {
		return 0, err
	}
	return p.OnHand - total, nil
}

// CheckInvariant verifies sum(reserved) <= on-hand for pool; promise
// checking calls this after every application action (§8 "a check is
// performed after every client-requested operation has completed").
func (l *Ledger) CheckInvariant(r txn.Reader, pool string) error {
	u, err := l.Unreserved(r, pool)
	if err != nil {
		return err
	}
	if u < 0 {
		return fmt.Errorf("%w: pool %q overdrawn by %d", ErrInsufficient, pool, -u)
	}
	return nil
}

// CheckAllInvariants verifies the escrow invariant for every pool that has
// reservations.
func (l *Ledger) CheckAllInvariants(r txn.Reader) error {
	var pools []string
	err := r.Scan(Table, func(key string, _ txn.Row) bool {
		pools = append(pools, key)
		return true
	})
	if err != nil {
		return err
	}
	for _, pool := range pools {
		if err := l.CheckInvariant(r, pool); err != nil {
			return err
		}
	}
	return nil
}
