package escrow

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/resource"
	"repro/internal/txn"
)

func newLedger(t *testing.T) (*Ledger, *resource.Manager, *txn.Store) {
	t.Helper()
	store := txn.NewStore()
	rm, err := resource.NewManager(store)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLedger(store, rm)
	if err != nil {
		t.Fatal(err)
	}
	return l, rm, store
}

func seedPool(t *testing.T, rm *resource.Manager, store *txn.Store, pool string, qty int64) {
	t.Helper()
	tx := store.Begin(txn.Block)
	if err := rm.CreatePool(tx, pool, qty, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestReserveWithinCapacity(t *testing.T) {
	l, rm, store := newLedger(t)
	seedPool(t, rm, store, "widgets", 10)
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	if err := l.Reserve(tx, "widgets", "alice", 5); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve(tx, "widgets", "bob", 5); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve(tx, "widgets", "carol", 1); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("over-reservation: %v", err)
	}
	got, _ := l.Reserved(tx, "widgets", "alice")
	if got != 5 {
		t.Fatalf("alice reserved = %d", got)
	}
	total, _ := l.TotalReserved(tx, "widgets")
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
	unres, _ := l.Unreserved(tx, "widgets")
	if unres != 0 {
		t.Fatalf("unreserved = %d", unres)
	}
}

func TestReserveAccumulates(t *testing.T) {
	l, rm, store := newLedger(t)
	seedPool(t, rm, store, "w", 10)
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	_ = l.Reserve(tx, "w", "a", 3)
	_ = l.Reserve(tx, "w", "a", 4)
	got, _ := l.Reserved(tx, "w", "a")
	if got != 7 {
		t.Fatalf("accumulated = %d", got)
	}
}

func TestReserveValidation(t *testing.T) {
	l, rm, store := newLedger(t)
	seedPool(t, rm, store, "w", 10)
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	if err := l.Reserve(tx, "w", "a", 0); err == nil {
		t.Fatal("zero qty allowed")
	}
	if err := l.Reserve(tx, "w", "a", -1); err == nil {
		t.Fatal("negative qty allowed")
	}
	if err := l.Reserve(tx, "ghost", "a", 1); !errors.Is(err, txn.ErrNotFound) {
		t.Fatalf("missing pool: %v", err)
	}
}

func TestReleaseAndErrors(t *testing.T) {
	l, rm, store := newLedger(t)
	seedPool(t, rm, store, "w", 10)
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	_ = l.Reserve(tx, "w", "a", 5)
	if err := l.Release(tx, "w", "a", 2); err != nil {
		t.Fatal(err)
	}
	got, _ := l.Reserved(tx, "w", "a")
	if got != 3 {
		t.Fatalf("after release = %d", got)
	}
	if err := l.Release(tx, "w", "a", 4); !errors.Is(err, ErrNoReservation) {
		t.Fatalf("over-release: %v", err)
	}
	if err := l.Release(tx, "w", "b", 1); !errors.Is(err, ErrNoReservation) {
		t.Fatalf("stranger release: %v", err)
	}
	if err := l.Release(tx, "w", "a", 0); err == nil {
		t.Fatal("zero release allowed")
	}
	// Full release removes the holder entry.
	if err := l.Release(tx, "w", "a", 3); err != nil {
		t.Fatal(err)
	}
	total, _ := l.TotalReserved(tx, "w")
	if total != 0 {
		t.Fatalf("total after full release = %d", total)
	}
}

func TestConsume(t *testing.T) {
	l, rm, store := newLedger(t)
	seedPool(t, rm, store, "w", 10)
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	_ = l.Reserve(tx, "w", "a", 5)
	if err := l.Consume(tx, "w", "a", 5); err != nil {
		t.Fatal(err)
	}
	p, _ := rm.Pool(tx, "w")
	if p.OnHand != 5 {
		t.Fatalf("on hand after consume = %d", p.OnHand)
	}
	got, _ := l.Reserved(tx, "w", "a")
	if got != 0 {
		t.Fatalf("reserved after consume = %d", got)
	}
	if err := l.Consume(tx, "w", "a", 1); !errors.Is(err, ErrNoReservation) {
		t.Fatalf("consume without reservation: %v", err)
	}
	if err := l.Consume(tx, "w", "a", -1); err == nil {
		t.Fatal("negative consume allowed")
	}
}

func TestConsumeFreesCapacityForOthers(t *testing.T) {
	// The paper's Figure 1 flow: a purchase consumes promised stock; the
	// remaining capacity is governed by on-hand minus remaining
	// reservations.
	l, rm, store := newLedger(t)
	seedPool(t, rm, store, "pink-widgets", 10)
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	_ = l.Reserve(tx, "pink-widgets", "order-1", 5)
	_ = l.Reserve(tx, "pink-widgets", "order-2", 5)
	// order-1 buys its 5: on hand 10->5, reservations 10->5.
	if err := l.Consume(tx, "pink-widgets", "order-1", 5); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckInvariant(tx, "pink-widgets"); err != nil {
		t.Fatal(err)
	}
	unres, _ := l.Unreserved(tx, "pink-widgets")
	if unres != 0 {
		t.Fatalf("unreserved = %d, want 0 (order-2 still holds 5 of the 5)", unres)
	}
	// A third order cannot reserve anything.
	if err := l.Reserve(tx, "pink-widgets", "order-3", 1); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("order-3: %v", err)
	}
}

func TestInvariantDetectsExternalDrain(t *testing.T) {
	// An ill-behaved application action drains the pool below the reserved
	// sum; CheckInvariant must flag it (PM then rolls back, §8).
	l, rm, store := newLedger(t)
	seedPool(t, rm, store, "w", 10)
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	_ = l.Reserve(tx, "w", "a", 8)
	if _, err := rm.AdjustPool(tx, "w", -5); err != nil { // action bypasses escrow
		t.Fatal(err)
	}
	if err := l.CheckInvariant(tx, "w"); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("invariant check: %v", err)
	}
	if err := l.CheckAllInvariants(tx); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("all-invariants check: %v", err)
	}
}

func TestCheckAllInvariantsClean(t *testing.T) {
	l, rm, store := newLedger(t)
	seedPool(t, rm, store, "a", 5)
	seedPool(t, rm, store, "b", 5)
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	_ = l.Reserve(tx, "a", "x", 5)
	_ = l.Reserve(tx, "b", "y", 2)
	if err := l.CheckAllInvariants(tx); err != nil {
		t.Fatal(err)
	}
}

func TestAbortRollsBackReservations(t *testing.T) {
	l, rm, store := newLedger(t)
	seedPool(t, rm, store, "w", 10)
	tx := store.Begin(txn.Block)
	_ = l.Reserve(tx, "w", "a", 10)
	_ = tx.Abort()
	check := store.Begin(txn.Block)
	defer check.Commit()
	total, _ := l.TotalReserved(check, "w")
	if total != 0 {
		t.Fatalf("reservations survived abort: %d", total)
	}
}

func TestConcurrentReservationsRespectCapacity(t *testing.T) {
	// Many clients race to reserve 1 unit each from a pool of 50; exactly
	// 50 must succeed.
	l, rm, store := newLedger(t)
	seedPool(t, rm, store, "w", 50)
	const clients = 80
	var wg sync.WaitGroup
	var mu sync.Mutex
	succeeded := 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				tx := store.Begin(txn.Block)
				err := l.Reserve(tx, "w", holderName(c), 1)
				if err == nil {
					if err = tx.Commit(); err == nil {
						mu.Lock()
						succeeded++
						mu.Unlock()
						return
					}
				} else {
					_ = tx.Abort()
				}
				if errors.Is(err, ErrInsufficient) {
					return
				}
				if errors.Is(err, txn.ErrDeadlock) || errors.Is(err, txn.ErrWouldBlock) {
					continue // retry
				}
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if succeeded != 50 {
		t.Fatalf("%d reservations succeeded, want exactly 50", succeeded)
	}
	check := store.Begin(txn.Block)
	defer check.Commit()
	if err := l.CheckInvariant(check, "w"); err != nil {
		t.Fatal(err)
	}
}

func holderName(c int) string {
	return "client-" + string(rune('A'+c%26)) + "-" + string(rune('0'+c/26))
}

// TestQuickEscrowInvariant drives random reserve/release/consume sequences
// and asserts the escrow invariant plus non-negative quantities throughout.
func TestQuickEscrowInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l, rm, store := newLedger(t)
		seedPool(t, rm, store, "w", int64(10+r.Intn(40)))
		holders := []string{"a", "b", "c"}
		tx := store.Begin(txn.Block)
		defer tx.Commit()
		for i := 0; i < 60; i++ {
			h := holders[r.Intn(len(holders))]
			qty := int64(1 + r.Intn(10))
			switch r.Intn(3) {
			case 0:
				_ = l.Reserve(tx, "w", h, qty)
			case 1:
				_ = l.Release(tx, "w", h, qty)
			case 2:
				_ = l.Consume(tx, "w", h, qty)
			}
			if err := l.CheckInvariant(tx, "w"); err != nil {
				t.Logf("invariant broken at step %d: %v", i, err)
				return false
			}
			p, err := rm.Pool(tx, "w")
			if err != nil || p.OnHand < 0 {
				t.Logf("pool state bad at step %d: %v %v", i, p, err)
				return false
			}
			for _, h := range holders {
				q, _ := l.Reserved(tx, "w", h)
				if q < 0 {
					t.Logf("negative reservation for %s at step %d", h, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseAll(t *testing.T) {
	l, rm, store := newLedger(t)
	seedPool(t, rm, store, "widgets", 10)
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	if err := l.Reserve(tx, "widgets", "alice", 7); err != nil {
		t.Fatal(err)
	}
	freed, err := l.ReleaseAll(tx, "widgets", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if freed != 7 {
		t.Fatalf("freed = %d, want 7", freed)
	}
	if got, _ := l.Reserved(tx, "widgets", "alice"); got != 0 {
		t.Fatalf("alice still holds %d", got)
	}
	if got, _ := l.Unreserved(tx, "widgets"); got != 10 {
		t.Fatalf("unreserved = %d, want 10", got)
	}
	// A holder with nothing reserved frees zero, without error.
	freed, err = l.ReleaseAll(tx, "widgets", "bob")
	if err != nil || freed != 0 {
		t.Fatalf("empty ReleaseAll = (%d, %v), want (0, nil)", freed, err)
	}
}
