package resource

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/predicate"
	"repro/internal/txn"
)

const sampleSeed = `<?xml version="1.0" encoding="UTF-8"?>
<resources>
  <pool id="pink-widgets" onhand="100">
    <prop name="price">250</prop>
  </pool>
  <pool id="acct-alice" onhand="50000"></pool>
  <instance id="room-512">
    <prop name="floor">5</prop>
    <prop name="view">true</prop>
    <prop name="beds">"king"</prop>
  </instance>
</resources>`

func TestLoadSeed(t *testing.T) {
	m, store := newRM(t)
	pools, instances, err := m.LoadSeed(strings.NewReader(sampleSeed))
	if err != nil {
		t.Fatal(err)
	}
	if pools != 2 || instances != 1 {
		t.Fatalf("loaded %d pools, %d instances", pools, instances)
	}
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	p, err := m.Pool(tx, "pink-widgets")
	if err != nil {
		t.Fatal(err)
	}
	if p.OnHand != 100 || !p.Props["price"].Equal(predicate.Int(250)) {
		t.Fatalf("pool = %+v", p)
	}
	in, err := m.Instance(tx, "room-512")
	if err != nil {
		t.Fatal(err)
	}
	if in.Status != Available {
		t.Fatalf("status = %v", in.Status)
	}
	ok, err := predicate.Eval(predicate.MustParse(`floor = 5 and view and beds = "king"`), in.Env())
	if err != nil || !ok {
		t.Fatalf("seeded props wrong: %v %v", ok, err)
	}
}

func TestLoadSeedErrorsAreAtomic(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"malformed xml", "<resources><pool"},
		{"negative pool", `<resources><pool id="ok" onhand="5"></pool><pool id="bad" onhand="-1"></pool></resources>`},
		{"duplicate pool", `<resources><pool id="x" onhand="1"></pool><pool id="x" onhand="1"></pool></resources>`},
		{"bad property expr", `<resources><instance id="i"><prop name="p">((</prop></instance></resources>`},
		{"non-constant property", `<resources><instance id="i"><prop name="p">quantity + 1</prop></instance></resources>`},
	}
	for _, c := range cases {
		m, store := newRM(t)
		if _, _, err := m.LoadSeed(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		// Nothing may have been created.
		tx := store.Begin(txn.Block)
		pools, _ := m.Pools(tx)
		instances, _ := m.Instances(tx)
		_ = tx.Commit()
		if len(pools) != 0 || len(instances) != 0 {
			t.Errorf("%s: partial load (%d pools, %d instances)", c.name, len(pools), len(instances))
		}
	}
}

func TestDumpLoadRoundTrip(t *testing.T) {
	m, store := newRM(t)
	tx := store.Begin(txn.Block)
	if err := m.CreatePool(tx, "w", 42, map[string]predicate.Value{
		"price": predicate.Int(9), "brand": predicate.Str(`acme "deluxe"`),
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateInstance(tx, "i1", map[string]predicate.Value{
		"flag": predicate.Bool(true), "n": predicate.Int(-3),
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.DumpSeed(&buf); err != nil {
		t.Fatal(err)
	}

	m2, store2 := newRM(t)
	pools, instances, err := m2.LoadSeed(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-load: %v\n%s", err, buf.String())
	}
	if pools != 1 || instances != 1 {
		t.Fatalf("round trip counts: %d %d", pools, instances)
	}
	tx2 := store2.Begin(txn.Block)
	defer tx2.Commit()
	p, _ := m2.Pool(tx2, "w")
	if p.OnHand != 42 || !p.Props["brand"].Equal(predicate.Str(`acme "deluxe"`)) {
		t.Fatalf("pool after round trip = %+v", p)
	}
	in, _ := m2.Instance(tx2, "i1")
	if !in.Props["flag"].Equal(predicate.Bool(true)) || !in.Props["n"].Equal(predicate.Int(-3)) {
		t.Fatalf("instance after round trip = %+v", in)
	}
}

func TestDumpSeedDeterministic(t *testing.T) {
	m, store := newRM(t)
	tx := store.Begin(txn.Block)
	_ = m.CreateInstance(tx, "i", map[string]predicate.Value{
		"z": predicate.Int(1), "a": predicate.Int(2), "m": predicate.Int(3),
	})
	_ = tx.Commit()
	var a, b bytes.Buffer
	if err := m.DumpSeed(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.DumpSeed(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("dump not deterministic")
	}
	if !strings.Contains(a.String(), `name="a"`) {
		t.Fatalf("dump missing props:\n%s", a.String())
	}
}
