// Package resource implements the Resource Manager (RM) of the prototype
// architecture (paper §8): "The role of the RM is to store the state of the
// system, and to process queries and updates on this data as requested by
// the application and the promise manager."
//
// It models the three resource views of §3:
//
//   - anonymous view: Pool records with a quantity on hand ("the
//     availability of anonymous resources is usually explicitly tracked …
//     'quantity on hand' or 'account balance'");
//   - named view: Instance records carrying an allocation Status field —
//     the "allocated tags" / soft-lock field of §5;
//   - view via properties: Instances expose arbitrary typed properties and
//     can be selected by predicate (§3.3).
//
// All access happens inside a txn.Tx so that the promise manager can wrap
// each request in a single ACID transaction (§8).
package resource

import (
	"errors"
	"fmt"

	"repro/internal/predicate"
	"repro/internal/txn"
)

// Table names inside the backing store.
const (
	TablePools     = "pools"
	TableInstances = "instances"
)

// Status is the allocated-tag state of a named resource instance (§5:
// "set to something like 'available' initially and then to 'promised' when
// the instance was provisionally allocated … then either set to 'taken' by
// a subsequent action, or … reset back to 'available'").
type Status int

// Instance statuses.
const (
	Available Status = iota
	Promised
	Taken
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Available:
		return "available"
	case Promised:
		return "promised"
	case Taken:
		return "taken"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Pool is an anonymous resource pool: a count of interchangeable items
// (book copies, dollars in an account, economy seats).
type Pool struct {
	ID string
	// OnHand is the quantity physically available (§3.1 "quantity on hand").
	OnHand int64
	// Props carries descriptive attributes of the pool (price, category…).
	Props map[string]predicate.Value
}

// CloneRow implements txn.Row.
func (p *Pool) CloneRow() txn.Row {
	c := &Pool{ID: p.ID, OnHand: p.OnHand}
	if p.Props != nil {
		c.Props = make(map[string]predicate.Value, len(p.Props))
		for k, v := range p.Props {
			c.Props[k] = v
		}
	}
	return c
}

// Env exposes the pool to predicate evaluation. The quantity on hand is
// visible as both "quantity" and "onhand"; pool properties are visible by
// name, and "id" is the pool identifier.
func (p *Pool) Env() predicate.Env {
	env := predicate.MapEnv{
		"quantity": predicate.Int(p.OnHand),
		"onhand":   predicate.Int(p.OnHand),
		"id":       predicate.Str(p.ID),
	}
	for k, v := range p.Props {
		env[k] = v
	}
	return env
}

// Instance is a named resource instance (§3.2): a used car, 'Room 212,
// Sydney Hilton, 12/3/2007', seat 24G on QF1.
type Instance struct {
	ID     string
	Status Status
	// Props are the instance's exposed properties (§3.3): floor, view,
	// beds, smoking, class…
	Props map[string]predicate.Value
}

// CloneRow implements txn.Row.
func (i *Instance) CloneRow() txn.Row {
	c := &Instance{ID: i.ID, Status: i.Status}
	if i.Props != nil {
		c.Props = make(map[string]predicate.Value, len(i.Props))
		for k, v := range i.Props {
			c.Props[k] = v
		}
	}
	return c
}

// Env exposes the instance's properties plus the builtins "id" and
// "status" to predicate evaluation.
func (i *Instance) Env() predicate.Env {
	env := predicate.MapEnv{
		"id":     predicate.Str(i.ID),
		"status": predicate.Str(i.Status.String()),
	}
	for k, v := range i.Props {
		env[k] = v
	}
	return env
}

// Manager provides typed access to pools and instances within transactions.
type Manager struct {
	store *txn.Store
}

// NewManager creates the RM tables in store and returns a Manager.
func NewManager(store *txn.Store) (*Manager, error) {
	for _, tbl := range []string{TablePools, TableInstances} {
		if err := store.CreateTable(tbl); err != nil {
			return nil, err
		}
	}
	return &Manager{store: store}, nil
}

// Store returns the backing store (the promise manager shares it so that
// promise-table updates and resource updates commit atomically, §8).
func (m *Manager) Store() *txn.Store { return m.store }

// CreatePool registers a new pool with an initial quantity on hand.
func (m *Manager) CreatePool(tx *txn.Tx, id string, onHand int64, props map[string]predicate.Value) error {
	if onHand < 0 {
		return fmt.Errorf("resource: pool %q: negative initial quantity %d", id, onHand)
	}
	if _, err := tx.Get(TablePools, id); err == nil {
		return fmt.Errorf("resource: pool %q already exists", id)
	}
	return tx.Put(TablePools, id, &Pool{ID: id, OnHand: onHand, Props: props})
}

// Pool fetches a pool by id.
func (m *Manager) Pool(r txn.Reader, id string) (*Pool, error) {
	row, err := r.Get(TablePools, id)
	if err != nil {
		return nil, err
	}
	return row.(*Pool), nil
}

// PutPool writes back a (possibly modified) pool.
func (m *Manager) PutPool(tx *txn.Tx, p *Pool) error {
	return tx.Put(TablePools, p.ID, p)
}

// AdjustPool adds delta to the pool's quantity on hand, rejecting
// adjustments that would drive it negative — the RM-level invariant that
// escrow promising relies on.
func (m *Manager) AdjustPool(tx *txn.Tx, id string, delta int64) (int64, error) {
	p, err := m.Pool(tx, id)
	if err != nil {
		return 0, err
	}
	next := p.OnHand + delta
	if next < 0 {
		return p.OnHand, fmt.Errorf("resource: pool %q: adjustment %d would make quantity negative (have %d)", id, delta, p.OnHand)
	}
	p.OnHand = next
	if err := m.PutPool(tx, p); err != nil {
		return 0, err
	}
	return next, nil
}

// Pools scans every pool in id order.
func (m *Manager) Pools(r txn.Reader) ([]*Pool, error) {
	var out []*Pool
	err := r.Scan(TablePools, func(_ string, row txn.Row) bool {
		out = append(out, row.(*Pool))
		return true
	})
	return out, err
}

// CreateInstance registers a new named instance in Available state.
func (m *Manager) CreateInstance(tx *txn.Tx, id string, props map[string]predicate.Value) error {
	if _, err := tx.Get(TableInstances, id); err == nil {
		return fmt.Errorf("resource: instance %q already exists", id)
	}
	return tx.Put(TableInstances, id, &Instance{ID: id, Status: Available, Props: props})
}

// Instance fetches an instance by id.
func (m *Manager) Instance(r txn.Reader, id string) (*Instance, error) {
	row, err := r.Get(TableInstances, id)
	if err != nil {
		return nil, err
	}
	return row.(*Instance), nil
}

// PutInstance writes back a (possibly modified) instance.
func (m *Manager) PutInstance(tx *txn.Tx, in *Instance) error {
	return tx.Put(TableInstances, in.ID, in)
}

// SetStatus transitions an instance's allocated tag, enforcing the legal
// transitions of §5: available→promised, promised→taken, promised→available
// (release), available→taken (direct un-promised purchase), taken→available
// (restock/return).
func (m *Manager) SetStatus(tx *txn.Tx, id string, to Status) error {
	in, err := m.Instance(tx, id)
	if err != nil {
		return err
	}
	legal := map[Status][]Status{
		Available: {Promised, Taken},
		Promised:  {Taken, Available},
		Taken:     {Available},
	}
	ok := false
	for _, next := range legal[in.Status] {
		if next == to {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("resource: instance %q: illegal status transition %v -> %v", id, in.Status, to)
	}
	in.Status = to
	return m.PutInstance(tx, in)
}

// Instances scans every instance in id order.
func (m *Manager) Instances(r txn.Reader) ([]*Instance, error) {
	var out []*Instance
	err := r.Scan(TableInstances, func(_ string, row txn.Row) bool {
		out = append(out, row.(*Instance))
		return true
	})
	return out, err
}

// Matching returns the instances whose property environment satisfies
// expr, in id order. Instances for which the predicate references unknown
// properties are skipped (the predicate simply does not apply to them),
// but genuine type errors propagate: a schema mismatch should fail loudly.
func (m *Manager) Matching(r txn.Reader, expr predicate.Expr) ([]*Instance, error) {
	var out []*Instance
	var evalErr error
	err := r.Scan(TableInstances, func(_ string, row txn.Row) bool {
		in := row.(*Instance)
		ok, err := predicate.Eval(expr, in.Env())
		if err != nil {
			if errors.Is(err, predicate.ErrUnknownProperty) {
				return true // not applicable to this instance
			}
			evalErr = err
			return false
		}
		if ok {
			out = append(out, in)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}
