package resource

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/predicate"
	"repro/internal/txn"
)

func newRM(t *testing.T) (*Manager, *txn.Store) {
	t.Helper()
	store := txn.NewStore()
	m, err := NewManager(store)
	if err != nil {
		t.Fatal(err)
	}
	return m, store
}

func TestPoolCreateGetAdjust(t *testing.T) {
	m, store := newRM(t)
	tx := store.Begin(txn.Block)
	if err := m.CreatePool(tx, "pink-widget", 10, nil); err != nil {
		t.Fatal(err)
	}
	p, err := m.Pool(tx, "pink-widget")
	if err != nil {
		t.Fatal(err)
	}
	if p.OnHand != 10 {
		t.Fatalf("OnHand = %d", p.OnHand)
	}
	next, err := m.AdjustPool(tx, "pink-widget", -5)
	if err != nil || next != 5 {
		t.Fatalf("AdjustPool = %d, %v", next, err)
	}
	if _, err := m.AdjustPool(tx, "pink-widget", -6); err == nil {
		t.Fatal("negative quantity allowed")
	}
	// The failed adjustment must not have changed state.
	p, _ = m.Pool(tx, "pink-widget")
	if p.OnHand != 5 {
		t.Fatalf("OnHand after failed adjust = %d, want 5", p.OnHand)
	}
	_ = tx.Commit()
}

func TestPoolDuplicateAndNegative(t *testing.T) {
	m, store := newRM(t)
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	if err := m.CreatePool(tx, "x", 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.CreatePool(tx, "x", 1, nil); err == nil {
		t.Fatal("duplicate pool allowed")
	}
	if err := m.CreatePool(tx, "y", -1, nil); err == nil {
		t.Fatal("negative pool allowed")
	}
}

func TestPoolEnv(t *testing.T) {
	p := &Pool{ID: "books", OnHand: 7, Props: map[string]predicate.Value{"price": predicate.Int(30)}}
	ok, err := predicate.Eval(predicate.MustParse("quantity >= 5 and price <= 30"), p.Env())
	if err != nil || !ok {
		t.Fatalf("pool env eval = %v, %v", ok, err)
	}
	ok, err = predicate.Eval(predicate.MustParse(`id = "books" and onhand = 7`), p.Env())
	if err != nil || !ok {
		t.Fatalf("pool builtin env eval = %v, %v", ok, err)
	}
}

func TestInstanceLifecycle(t *testing.T) {
	m, store := newRM(t)
	tx := store.Begin(txn.Block)
	props := map[string]predicate.Value{"floor": predicate.Int(5), "view": predicate.Bool(true)}
	if err := m.CreateInstance(tx, "room-512", props); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateInstance(tx, "room-512", nil); err == nil {
		t.Fatal("duplicate instance allowed")
	}
	in, err := m.Instance(tx, "room-512")
	if err != nil {
		t.Fatal(err)
	}
	if in.Status != Available {
		t.Fatalf("initial status = %v", in.Status)
	}
	// available -> promised -> taken
	if err := m.SetStatus(tx, "room-512", Promised); err != nil {
		t.Fatal(err)
	}
	if err := m.SetStatus(tx, "room-512", Taken); err != nil {
		t.Fatal(err)
	}
	// taken -> promised is illegal
	if err := m.SetStatus(tx, "room-512", Promised); err == nil {
		t.Fatal("taken->promised allowed")
	}
	// taken -> available (return/restock)
	if err := m.SetStatus(tx, "room-512", Available); err != nil {
		t.Fatal(err)
	}
	// promised -> available (release)
	if err := m.SetStatus(tx, "room-512", Promised); err != nil {
		t.Fatal(err)
	}
	if err := m.SetStatus(tx, "room-512", Available); err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
}

func TestIllegalSelfTransition(t *testing.T) {
	m, store := newRM(t)
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	_ = m.CreateInstance(tx, "i", nil)
	if err := m.SetStatus(tx, "i", Available); err == nil {
		t.Fatal("available->available allowed")
	}
}

func TestInstanceEnvBuiltins(t *testing.T) {
	in := &Instance{ID: "seat-24G", Status: Promised, Props: map[string]predicate.Value{"class": predicate.Str("economy")}}
	ok, err := predicate.Eval(predicate.MustParse(`id = "seat-24G" and status = "promised" and class = "economy"`), in.Env())
	if err != nil || !ok {
		t.Fatalf("instance env = %v, %v", ok, err)
	}
}

func TestMatching(t *testing.T) {
	m, store := newRM(t)
	tx := store.Begin(txn.Block)
	rooms := []struct {
		id    string
		floor int64
		view  bool
	}{
		{"room-101", 1, false},
		{"room-102", 1, true},
		{"room-512", 5, true},
		{"room-513", 5, false},
	}
	for _, r := range rooms {
		props := map[string]predicate.Value{"floor": predicate.Int(r.floor), "view": predicate.Bool(r.view)}
		if err := m.CreateInstance(tx, r.id, props); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.Matching(tx, predicate.MustParse("floor = 5"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "room-512" || got[1].ID != "room-513" {
		t.Fatalf("floor=5 matches: %v", ids(got))
	}
	got, err = m.Matching(tx, predicate.MustParse("view = true"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "room-102" || got[1].ID != "room-512" {
		t.Fatalf("view matches: %v", ids(got))
	}
	got, err = m.Matching(tx, predicate.MustParse("floor = 5 and view"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "room-512" {
		t.Fatalf("combined matches: %v", ids(got))
	}
	_ = tx.Commit()
}

func TestMatchingSkipsInapplicableInstances(t *testing.T) {
	m, store := newRM(t)
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	_ = m.CreateInstance(tx, "car-1", map[string]predicate.Value{"km": predicate.Int(50000)})
	_ = m.CreateInstance(tx, "room-1", map[string]predicate.Value{"floor": predicate.Int(2)})
	got, err := m.Matching(tx, predicate.MustParse("floor >= 1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "room-1" {
		t.Fatalf("matches: %v", ids(got))
	}
}

func TestMatchingTypeErrorPropagates(t *testing.T) {
	m, store := newRM(t)
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	_ = m.CreateInstance(tx, "i", map[string]predicate.Value{"floor": predicate.Str("five")})
	if _, err := m.Matching(tx, predicate.MustParse("floor >= 5")); err == nil {
		t.Fatal("schema type mismatch should error")
	}
}

func TestPoolsAndInstancesScan(t *testing.T) {
	m, store := newRM(t)
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	_ = m.CreatePool(tx, "b", 1, nil)
	_ = m.CreatePool(tx, "a", 2, nil)
	pools, err := m.Pools(tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(pools) != 2 || pools[0].ID != "a" || pools[1].ID != "b" {
		t.Fatalf("pools scan: %v", pools)
	}
	_ = m.CreateInstance(tx, "z", nil)
	_ = m.CreateInstance(tx, "y", nil)
	ins, err := m.Instances(tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 2 || ins[0].ID != "y" {
		t.Fatalf("instances scan: %v", ids(ins))
	}
}

func TestAbortRestoresResources(t *testing.T) {
	m, store := newRM(t)
	setup := store.Begin(txn.Block)
	_ = m.CreatePool(setup, "w", 10, nil)
	_ = m.CreateInstance(setup, "i", nil)
	_ = setup.Commit()

	tx := store.Begin(txn.Block)
	if _, err := m.AdjustPool(tx, "w", -4); err != nil {
		t.Fatal(err)
	}
	if err := m.SetStatus(tx, "i", Promised); err != nil {
		t.Fatal(err)
	}
	_ = tx.Abort()

	check := store.Begin(txn.Block)
	defer check.Commit()
	p, _ := m.Pool(check, "w")
	if p.OnHand != 10 {
		t.Fatalf("pool after abort = %d", p.OnHand)
	}
	in, _ := m.Instance(check, "i")
	if in.Status != Available {
		t.Fatalf("instance after abort = %v", in.Status)
	}
}

func TestCloneRowDeepCopiesProps(t *testing.T) {
	in := &Instance{ID: "i", Props: map[string]predicate.Value{"floor": predicate.Int(5)}}
	clone := in.CloneRow().(*Instance)
	clone.Props["floor"] = predicate.Int(9)
	if v := in.Props["floor"]; !v.Equal(predicate.Int(5)) {
		t.Fatal("Instance.CloneRow shares Props map")
	}
	p := &Pool{ID: "p", OnHand: 3, Props: map[string]predicate.Value{"x": predicate.Int(1)}}
	pc := p.CloneRow().(*Pool)
	pc.Props["x"] = predicate.Int(2)
	if v := p.Props["x"]; !v.Equal(predicate.Int(1)) {
		t.Fatal("Pool.CloneRow shares Props map")
	}
}

func TestMissingLookups(t *testing.T) {
	m, store := newRM(t)
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	if _, err := m.Pool(tx, "ghost"); !errors.Is(err, txn.ErrNotFound) {
		t.Fatalf("missing pool: %v", err)
	}
	if _, err := m.Instance(tx, "ghost"); !errors.Is(err, txn.ErrNotFound) {
		t.Fatalf("missing instance: %v", err)
	}
	if err := m.SetStatus(tx, "ghost", Taken); !errors.Is(err, txn.ErrNotFound) {
		t.Fatalf("SetStatus missing: %v", err)
	}
	if _, err := m.AdjustPool(tx, "ghost", 1); !errors.Is(err, txn.ErrNotFound) {
		t.Fatalf("AdjustPool missing: %v", err)
	}
}

// TestQuickAdjustPoolNeverNegative: property test that any sequence of
// adjustments keeps OnHand non-negative.
func TestQuickAdjustPoolNeverNegative(t *testing.T) {
	m, store := newRM(t)
	setup := store.Begin(txn.Block)
	_ = m.CreatePool(setup, "q", 100, nil)
	_ = setup.Commit()

	f := func(deltas []int8) bool {
		tx := store.Begin(txn.Block)
		defer tx.Commit()
		for _, d := range deltas {
			_, _ = m.AdjustPool(tx, "q", int64(d)) // errors allowed; state must stay valid
			p, err := m.Pool(tx, "q")
			if err != nil || p.OnHand < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusString(t *testing.T) {
	if Available.String() != "available" || Promised.String() != "promised" || Taken.String() != "taken" {
		t.Fatal("status names")
	}
}

func ids(ins []*Instance) []string {
	out := make([]string, len(ins))
	for i, in := range ins {
		out[i] = in.ID
	}
	return out
}
