package resource

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"

	"repro/internal/predicate"
	"repro/internal/txn"
)

// This file defines the resource seed-file format: an XML description of
// pools and instances that operators load into a fresh resource manager
// (cmd/promised -seed-file). The property value syntax reuses the §3
// predicate literal forms: integers, quoted strings, true/false.
//
//	<resources>
//	  <pool id="pink-widgets" onhand="100">
//	    <prop name="price">250</prop>
//	  </pool>
//	  <instance id="room-512">
//	    <prop name="floor">5</prop>
//	    <prop name="view">true</prop>
//	    <prop name="beds">"king"</prop>
//	  </instance>
//	</resources>

// seedFile is the XML document root.
type seedFile struct {
	XMLName   xml.Name       `xml:"resources"`
	Pools     []seedPool     `xml:"pool"`
	Instances []seedInstance `xml:"instance"`
}

type seedPool struct {
	ID     string     `xml:"id,attr"`
	OnHand int64      `xml:"onhand,attr"`
	Props  []seedProp `xml:"prop"`
}

type seedInstance struct {
	ID    string     `xml:"id,attr"`
	Props []seedProp `xml:"prop"`
}

type seedProp struct {
	Name  string `xml:"name,attr"`
	Value string `xml:",chardata"`
}

// parseProps evaluates each property value as a constant predicate
// expression, accepting exactly the literal forms of §3's standard syntax.
func parseProps(props []seedProp) (map[string]predicate.Value, error) {
	if len(props) == 0 {
		return nil, nil
	}
	out := make(map[string]predicate.Value, len(props))
	for _, p := range props {
		expr, err := predicate.Parse(p.Value)
		if err != nil {
			return nil, fmt.Errorf("resource: property %q: %v", p.Name, err)
		}
		v, err := predicate.EvalValue(predicate.Fold(expr), predicate.MapEnv{})
		if err != nil {
			return nil, fmt.Errorf("resource: property %q is not a constant: %v", p.Name, err)
		}
		out[p.Name] = v
	}
	return out, nil
}

// SeedPool is one parsed pool entry of a seed file.
type SeedPool struct {
	ID     string
	OnHand int64
	Props  map[string]predicate.Value
}

// SeedInstance is one parsed instance entry of a seed file.
type SeedInstance struct {
	ID    string
	Props map[string]predicate.Value
}

// ParseSeed decodes a seed file without touching any store, so callers that
// stripe resources across multiple managers (the sharded promise manager)
// can route each entry to its owner.
func ParseSeed(r io.Reader) ([]SeedPool, []SeedInstance, error) {
	var doc seedFile
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("resource: seed file: %v", err)
	}
	pools := make([]SeedPool, 0, len(doc.Pools))
	for _, p := range doc.Pools {
		props, err := parseProps(p.Props)
		if err != nil {
			return nil, nil, err
		}
		pools = append(pools, SeedPool{ID: p.ID, OnHand: p.OnHand, Props: props})
	}
	instances := make([]SeedInstance, 0, len(doc.Instances))
	for _, in := range doc.Instances {
		props, err := parseProps(in.Props)
		if err != nil {
			return nil, nil, err
		}
		instances = append(instances, SeedInstance{ID: in.ID, Props: props})
	}
	return pools, instances, nil
}

// LoadSeed reads a seed file and creates its pools and instances in m,
// inside one transaction: a malformed file leaves the manager untouched.
func (m *Manager) LoadSeed(r io.Reader) (pools, instances int, err error) {
	ps, ins, err := ParseSeed(r)
	if err != nil {
		return 0, 0, err
	}
	tx := m.store.Begin(txn.Block)
	defer func() {
		if err != nil && !tx.Done() {
			_ = tx.Abort()
		}
	}()
	for _, p := range ps {
		if err := m.CreatePool(tx, p.ID, p.OnHand, p.Props); err != nil {
			return 0, 0, err
		}
		pools++
	}
	for _, in := range ins {
		if err := m.CreateInstance(tx, in.ID, in.Props); err != nil {
			return 0, 0, err
		}
		instances++
	}
	if err := tx.Commit(); err != nil {
		return 0, 0, err
	}
	return pools, instances, nil
}

// DumpSeed writes the manager's current pools and instances as a seed
// file, so a deployment's resource state can be captured and re-seeded.
// Allocation state (promised/taken tags) is deliberately not serialised:
// a seed file describes resources, not in-flight promises.
func (m *Manager) DumpSeed(w io.Writer) error {
	tx := m.store.Begin(txn.Block)
	defer tx.Commit()
	pools, err := m.Pools(tx)
	if err != nil {
		return err
	}
	instances, err := m.Instances(tx)
	if err != nil {
		return err
	}
	var doc seedFile
	for _, p := range pools {
		doc.Pools = append(doc.Pools, seedPool{ID: p.ID, OnHand: p.OnHand, Props: dumpProps(p.Props)})
	}
	for _, in := range instances {
		doc.Instances = append(doc.Instances, seedInstance{ID: in.ID, Props: dumpProps(in.Props)})
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		return err
	}
	return enc.Flush()
}

// dumpProps renders properties in the literal syntax parseProps accepts,
// in sorted order for deterministic output.
func dumpProps(props map[string]predicate.Value) []seedProp {
	if len(props) == 0 {
		return nil
	}
	names := make([]string, 0, len(props))
	for name := range props {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]seedProp, 0, len(names))
	for _, name := range names {
		out = append(out, seedProp{Name: name, Value: props[name].String()})
	}
	return out
}
