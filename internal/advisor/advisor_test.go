package advisor

import (
	"strings"
	"testing"
)

// The test cases are the paper's own examples from §3 and §5.
func TestRecommendPaperExamples(t *testing.T) {
	cases := []struct {
		name      string
		profile   Profile
		view      View
		technique Technique
	}{
		{
			// "Barnes and Noble may have many copies of each book title."
			name:      "book copies",
			profile:   Profile{Interchangeable: true},
			view:      Anonymous,
			technique: ResourcePool,
		},
		{
			// "a promise is made that a client application will be able to
			// withdraw $500 from an account."
			name:      "account balance",
			profile:   Profile{Interchangeable: true},
			view:      Anonymous,
			technique: ResourcePool,
		},
		{
			// "used cars could be considered unique and not interchangeable."
			name:      "used car",
			profile:   Profile{},
			view:      Named,
			technique: AllocatedTags,
		},
		{
			// "Room 212, Sydney Hilton, 12/3/2007."
			name:      "specific hotel room",
			profile:   Profile{},
			view:      Named,
			technique: AllocatedTags,
		},
		{
			// "one customer may be asking for a room with a view, while
			// another might be requesting any 5th floor room."
			name:      "hotel rooms by property",
			profile:   Profile{SelectionByProperties: true, OverlappingPredicates: true},
			view:      Property,
			technique: TentativeAllocation,
		},
		{
			name:      "rooms by property without overlap",
			profile:   Profile{SelectionByProperties: true},
			view:      Property,
			technique: SatisfiabilityCheck,
		},
	}
	for _, c := range cases {
		rec := Recommend(c.profile)
		if rec.View != c.view || rec.Technique != c.technique {
			t.Errorf("%s: got %s/%s, want %s/%s", c.name, rec.View, rec.Technique, c.view, c.technique)
		}
		if rec.Rationale == "" {
			t.Errorf("%s: empty rationale", c.name)
		}
	}
}

func TestRecommendDelegationSecondary(t *testing.T) {
	// "a purchase order can be accepted by the merchant if it has received
	// a promise from the distributor that a backorder will be fulfilled."
	rec := Recommend(Profile{Interchangeable: true, ExternallySourced: true})
	if rec.Technique != ResourcePool {
		t.Fatalf("primary = %v", rec.Technique)
	}
	if len(rec.Secondary) != 1 || rec.Secondary[0] != Delegation {
		t.Fatalf("secondary = %v", rec.Secondary)
	}
	if !strings.Contains(rec.Rationale, "delegation") {
		t.Fatalf("rationale = %q", rec.Rationale)
	}
}

func TestStrings(t *testing.T) {
	for _, tech := range []Technique{ResourcePool, AllocatedTags, SatisfiabilityCheck, TentativeAllocation, Delegation, Technique(99)} {
		if tech.String() == "" {
			t.Errorf("empty string for %d", int(tech))
		}
	}
	for _, v := range []View{Anonymous, Named, Property, View(99)} {
		if v.String() == "" {
			t.Errorf("empty string for view %d", int(v))
		}
	}
	rec := Recommend(Profile{Interchangeable: true, ExternallySourced: true})
	s := rec.String()
	if !strings.Contains(s, "anonymous") || !strings.Contains(s, "delegation") {
		t.Fatalf("recommendation string = %q", s)
	}
}
