// Package advisor implements the §10 future-work heuristics: "providing
// simple heuristics to choose an appropriate implementation technique for
// each class of resources". Given a description of how clients use a
// resource, it recommends one of the §3 views and one of the §5
// implementation techniques, with the paper's rationale.
package advisor

import "fmt"

// Technique is a §5 implementation technique.
type Technique int

// Techniques, in the order §5 presents them.
const (
	// ResourcePool: counts of available/allocated items — escrow-style
	// (internal/escrow).
	ResourcePool Technique = iota
	// AllocatedTags: an availability status field per instance
	// (internal/softlock).
	AllocatedTags
	// SatisfiabilityCheck: evaluate all promises against resource state on
	// every operation; property views need bipartite matching.
	SatisfiabilityCheck
	// TentativeAllocation: the hybrid — property-based promises pinned to
	// instances, rearranged when a later request would otherwise fail.
	TentativeAllocation
	// Delegation: cover the promise with a promise from a third party.
	Delegation
)

// String names the technique.
func (t Technique) String() string {
	switch t {
	case ResourcePool:
		return "resource-pool (escrow)"
	case AllocatedTags:
		return "allocated-tags (soft locks)"
	case SatisfiabilityCheck:
		return "satisfiability-check (matching)"
	case TentativeAllocation:
		return "tentative-allocation (matching + reassignment)"
	case Delegation:
		return "delegation (upstream promise)"
	}
	return fmt.Sprintf("Technique(%d)", int(t))
}

// View mirrors the §3 resource views without importing core (the advisor
// is usable at design time, before any manager exists).
type View int

// Views.
const (
	Anonymous View = iota
	Named
	Property
)

// String names the view.
func (v View) String() string {
	switch v {
	case Anonymous:
		return "anonymous"
	case Named:
		return "named"
	case Property:
		return "property"
	}
	return fmt.Sprintf("View(%d)", int(v))
}

// Profile describes how client applications regard a resource — the §3
// point that views belong to applications, not resources: "the concepts of
// named and anonymous resources are about the way client applications view
// the resources, not about the resources themselves."
type Profile struct {
	// Interchangeable: clients accept any instance ("most retail goods").
	Interchangeable bool
	// SelectionByProperties: clients pick by exposed attributes (floor,
	// view, beds) rather than a quantity or a specific id.
	SelectionByProperties bool
	// OverlappingPredicates: concurrent clients use different property
	// subsets over the same instances (the room-512 situation).
	OverlappingPredicates bool
	// ExternallySourced: shortfalls can be covered by an upstream provider
	// (a distributor who fulfils backorders).
	ExternallySourced bool
}

// Recommendation is the advisor's output.
type Recommendation struct {
	View      View
	Technique Technique
	// Secondary holds an additional technique to combine (e.g. delegation
	// on top of a pool).
	Secondary []Technique
	// Rationale explains the choice in the paper's terms.
	Rationale string
}

// String renders the recommendation.
func (r Recommendation) String() string {
	out := fmt.Sprintf("%s view via %s", r.View, r.Technique)
	for _, s := range r.Secondary {
		out += " + " + s.String()
	}
	return out + " — " + r.Rationale
}

// Recommend applies the §3/§5 heuristics.
func Recommend(p Profile) Recommendation {
	var rec Recommendation
	switch {
	case p.Interchangeable && !p.SelectionByProperties:
		rec = Recommendation{
			View:      Anonymous,
			Technique: ResourcePool,
			Rationale: "clients accept any instance, so track a quantity on hand and reserve escrow-style (§3.1, §5 resource pool); the only constraint is that promised sums stay within availability",
		}
	case p.SelectionByProperties && p.OverlappingPredicates:
		rec = Recommendation{
			View:      Property,
			Technique: TentativeAllocation,
			Rationale: "concurrent predicates overlap on the same instances (the room-512 case), so pin promises to instances tentatively and rearrange when a later request would otherwise fail (§5 tentative allocation)",
		}
	case p.SelectionByProperties:
		rec = Recommendation{
			View:      Property,
			Technique: SatisfiabilityCheck,
			Rationale: "clients select by exposed properties; without heavy overlap a satisfiability check (bipartite matching) on grant and after actions suffices (§5 satisfiability check)",
		}
	default:
		rec = Recommendation{
			View:      Named,
			Technique: AllocatedTags,
			Rationale: "instances are distinguishable and clients want a specific one (used cars, 'room 212 on 12/3/2007'), so a status field flipped available→promised→taken is enough (§5 allocated tags)",
		}
	}
	if p.ExternallySourced {
		rec.Secondary = append(rec.Secondary, Delegation)
		rec.Rationale += "; shortfalls can be covered by an upstream promise (§5 delegation)"
	}
	return rec
}
