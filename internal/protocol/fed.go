package protocol

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/predicate"
)

// Federated two-phase grant elements. A cross-node grant reserves on each
// contributing node (<reserve-request>), runs the joint property match over
// the returned contexts, then commits or rolls back (<confirm-request> /
// <abort-request>) — the PR 2 reserve/confirm pipeline with the shard
// boundary replaced by the wire. The shapes mirror core's Fed* types
// one-to-one; conversion helpers below keep the engine code free of XML.

// FedPredicate is one predicate with its position in the original request.
type FedPredicate struct {
	WirePredicate
	Idx int `xml:"idx,attr"`
}

// ReserveRequest is the <reserve-request> element: this node's slice of a
// federated grant. The client comes from the envelope header.
type ReserveRequest struct {
	WantProps   bool           `xml:"want-props,attr,omitempty"`
	Duration    string         `xml:"duration,attr,omitempty"`
	MinDuration string         `xml:"min-duration,attr,omitempty"`
	TTL         string         `xml:"ttl,attr,omitempty"`
	Priority    int            `xml:"priority,attr,omitempty"`
	Preemptible bool           `xml:"preemptible,attr,omitempty"`
	Predicates  []FedPredicate `xml:"predicate"`
	Releases    []string       `xml:"release"`
}

// FedGranted is one part tentatively granted at reserve (or pinned at
// confirm).
type FedGranted struct {
	ID      string `xml:"id,attr"`
	Expires string `xml:"expires,attr"`
	PredIdx []int  `xml:"pred-idx"`
}

// FedWireSlot is one exported property slot.
type FedWireSlot struct {
	Key        string `xml:"key,attr"`
	Expr       string `xml:"expr,attr"`
	Assigned   string `xml:"assigned,attr,omitempty"`
	Shard      int    `xml:"shard,attr"`
	Migratable bool   `xml:"migratable,attr,omitempty"`
	CrossNode  bool   `xml:"cross-node,attr,omitempty"`
	Client     string `xml:"client,attr"`
	Expires    string `xml:"expires,attr"`
}

// FedProp is one instance property (value in predicate source syntax).
type FedProp struct {
	Name  string `xml:"name,attr"`
	Value string `xml:",chardata"`
}

// FedWireCandidate is one exported candidate instance.
type FedWireCandidate struct {
	Instance  string    `xml:"instance,attr"`
	Shard     int       `xml:"shard,attr"`
	Tentative bool      `xml:"tentative,attr,omitempty"`
	Props     []FedProp `xml:"prop"`
}

// FedWireContext is a node's property-match state.
type FedWireContext struct {
	Slots      []FedWireSlot      `xml:"slot"`
	Candidates []FedWireCandidate `xml:"candidate"`
}

// ReserveResponse answers a reserve-request. Result mirrors the promise
// response vocabulary: "accepted" opened a session, "rejected" carries the
// node's rejection and no session exists.
type ReserveResponse struct {
	Session  string          `xml:"session,attr,omitempty"`
	Result   string          `xml:"result,attr"`
	Reason   string          `xml:"reason,omitempty"`
	Counter  []WirePredicate `xml:"counter>predicate,omitempty"`
	Granted  []FedGranted    `xml:"granted"`
	Deferred []int           `xml:"deferred>idx"`
	Context  *FedWireContext `xml:"context,omitempty"`
}

// FedWireRealloc re-backs one slot with another instance of the same node.
type FedWireRealloc struct {
	Slot     string `xml:"slot,attr"`
	Instance string `xml:"instance,attr"`
}

// FedWireMigrateIn re-homes a slot arriving from another node.
type FedWireMigrateIn struct {
	ID       string `xml:"id,attr"`
	Client   string `xml:"client,attr"`
	Expr     string `xml:"expr,attr"`
	Expires  string `xml:"expires,attr"`
	Instance string `xml:"instance,attr"`
	From     string `xml:"from,attr,omitempty"`
}

// FedWirePinned grants one floating predicate onto an instance of this
// node. Bind names the chosen instance (WirePredicate.Instance is the
// named-view resource reference and stays untouched).
type FedWirePinned struct {
	WirePredicate
	Idx  int    `xml:"idx,attr"`
	Bind string `xml:"bind,attr"`
}

// ConfirmRequest is the <confirm-request> element: the caller's plan for
// the session, to apply and commit.
type ConfirmRequest struct {
	Session    string             `xml:"session,attr"`
	Realloc    []FedWireRealloc   `xml:"realloc"`
	MigrateOut []string           `xml:"migrate-out"`
	MigrateIn  []FedWireMigrateIn `xml:"migrate-in"`
	Pinned     []FedWirePinned    `xml:"pinned"`
}

// ConfirmResponse reports every part the session granted.
type ConfirmResponse struct {
	Granted []FedGranted `xml:"granted"`
}

// AbortRequest rolls a session back; idempotent.
type AbortRequest struct {
	Session string `xml:"session,attr"`
}

// AbortResponse acknowledges an abort.
type AbortResponse struct {
	OK bool `xml:"ok,attr"`
}

// ReserveToWire encodes a node-side reserve spec.
func ReserveToWire(spec core.FedReserveSpec) *ReserveRequest {
	out := &ReserveRequest{
		WantProps:   spec.WantProps,
		Releases:    spec.Releases,
		Priority:    spec.Priority,
		Preemptible: spec.Preemptible,
	}
	if spec.Duration != 0 {
		out.Duration = spec.Duration.String()
	}
	if spec.MinDuration != 0 {
		out.MinDuration = spec.MinDuration.String()
	}
	if spec.TTL != 0 {
		out.TTL = spec.TTL.String()
	}
	for i, p := range spec.Predicates {
		out.Predicates = append(out.Predicates, FedPredicate{
			WirePredicate: PredicateToWire(p),
			Idx:           spec.PredIdx[i],
		})
	}
	return out
}

// ReserveFromWire decodes a reserve request.
func ReserveFromWire(w *ReserveRequest) (core.FedReserveSpec, error) {
	spec := core.FedReserveSpec{WantProps: w.WantProps, Releases: w.Releases, Priority: w.Priority, Preemptible: w.Preemptible}
	var err error
	if spec.Duration, err = parseWireDuration(w.Duration); err != nil {
		return spec, err
	}
	if spec.MinDuration, err = parseWireDuration(w.MinDuration); err != nil {
		return spec, err
	}
	if spec.TTL, err = parseWireDuration(w.TTL); err != nil {
		return spec, err
	}
	for _, wp := range w.Predicates {
		p, err := PredicateFromWire(wp.WirePredicate)
		if err != nil {
			return spec, err
		}
		spec.Predicates = append(spec.Predicates, p)
		spec.PredIdx = append(spec.PredIdx, wp.Idx)
	}
	return spec, nil
}

func parseWireDuration(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("protocol: bad duration %q: %v", s, err)
	}
	return d, nil
}

func parseWireTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("protocol: bad time %q: %v", s, err)
	}
	return t, nil
}

func grantedToWire(parts []core.GrantedPart) []FedGranted {
	out := make([]FedGranted, 0, len(parts))
	for _, g := range parts {
		out = append(out, FedGranted{
			ID:      g.ID,
			Expires: g.Expires.UTC().Format(time.RFC3339Nano),
			PredIdx: g.PredIdx,
		})
	}
	return out
}

func grantedFromWire(ws []FedGranted) ([]core.GrantedPart, error) {
	out := make([]core.GrantedPart, 0, len(ws))
	for _, w := range ws {
		exp, err := parseWireTime(w.Expires)
		if err != nil {
			return nil, err
		}
		out = append(out, core.GrantedPart{ID: w.ID, Expires: exp, PredIdx: w.PredIdx})
	}
	return out, nil
}

func contextToWire(fc *core.FedContext) *FedWireContext {
	if fc == nil {
		return nil
	}
	out := &FedWireContext{}
	for _, s := range fc.Slots {
		out.Slots = append(out.Slots, FedWireSlot{
			Key:        s.Key,
			Expr:       s.Expr,
			Assigned:   s.Assigned,
			Shard:      s.Shard,
			Migratable: s.Migratable,
			CrossNode:  s.CrossNode,
			Client:     s.Client,
			Expires:    s.Expires.UTC().Format(time.RFC3339Nano),
		})
	}
	for _, c := range fc.Candidates {
		wc := FedWireCandidate{Instance: c.Instance, Shard: c.Shard, Tentative: c.Tentative}
		for _, name := range sortedPropNames(c.Props) {
			wc.Props = append(wc.Props, FedProp{Name: name, Value: c.Props[name].String()})
		}
		out.Candidates = append(out.Candidates, wc)
	}
	return out
}

func contextFromWire(w *FedWireContext) (*core.FedContext, error) {
	if w == nil {
		return nil, nil
	}
	out := &core.FedContext{}
	for _, s := range w.Slots {
		exp, err := parseWireTime(s.Expires)
		if err != nil {
			return nil, err
		}
		out.Slots = append(out.Slots, core.FedSlot{
			Key:        s.Key,
			Expr:       s.Expr,
			Assigned:   s.Assigned,
			Shard:      s.Shard,
			Migratable: s.Migratable,
			CrossNode:  s.CrossNode,
			Client:     s.Client,
			Expires:    exp,
		})
	}
	for _, wc := range w.Candidates {
		c := core.FedCandidate{Instance: wc.Instance, Shard: wc.Shard, Tentative: wc.Tentative}
		if len(wc.Props) > 0 {
			c.Props = make(map[string]predicate.Value, len(wc.Props))
			for _, p := range wc.Props {
				var v predicate.Value
				if err := v.UnmarshalText([]byte(p.Value)); err != nil {
					return nil, fmt.Errorf("protocol: candidate %s property %s: %v", wc.Instance, p.Name, err)
				}
				c.Props[p.Name] = v
			}
		}
		out.Candidates = append(out.Candidates, c)
	}
	return out, nil
}

// ReserveResultToWire encodes a reserve outcome.
func ReserveResultToWire(res *core.FedReserveResult) *ReserveResponse {
	if res.Reject != nil {
		out := &ReserveResponse{Result: ResultRejected, Reason: res.Reject.Reason}
		for _, p := range res.Reject.Counter {
			out.Counter = append(out.Counter, PredicateToWire(p))
		}
		return out
	}
	return &ReserveResponse{
		Session:  res.SessionID,
		Result:   ResultAccepted,
		Granted:  grantedToWire(res.Granted),
		Deferred: res.Deferred,
		Context:  contextToWire(res.Context),
	}
}

// ReserveResultFromWire decodes a reserve outcome.
func ReserveResultFromWire(w *ReserveResponse) (*core.FedReserveResult, error) {
	if w.Result == ResultRejected {
		rej := &core.PromiseResponse{Reason: w.Reason}
		for _, wp := range w.Counter {
			p, err := PredicateFromWire(wp)
			if err != nil {
				return nil, err
			}
			rej.Counter = append(rej.Counter, p)
		}
		return &core.FedReserveResult{Reject: rej}, nil
	}
	granted, err := grantedFromWire(w.Granted)
	if err != nil {
		return nil, err
	}
	fc, err := contextFromWire(w.Context)
	if err != nil {
		return nil, err
	}
	return &core.FedReserveResult{
		SessionID: w.Session,
		Granted:   granted,
		Deferred:  w.Deferred,
		Context:   fc,
	}, nil
}

// ConfirmToWire encodes a confirm plan.
func ConfirmToWire(session string, spec core.FedConfirmSpec) *ConfirmRequest {
	out := &ConfirmRequest{Session: session, MigrateOut: spec.MigrateOut}
	for _, ra := range spec.Realloc {
		out.Realloc = append(out.Realloc, FedWireRealloc{Slot: ra.Slot, Instance: ra.Instance})
	}
	for _, mi := range spec.MigrateIn {
		out.MigrateIn = append(out.MigrateIn, FedWireMigrateIn{
			ID:       mi.ID,
			Client:   mi.Client,
			Expr:     mi.Expr,
			Expires:  mi.Expires.UTC().Format(time.RFC3339Nano),
			Instance: mi.Instance,
			From:     mi.FromNode,
		})
	}
	for _, pin := range spec.Pinned {
		out.Pinned = append(out.Pinned, FedWirePinned{
			WirePredicate: PredicateToWire(pin.Predicate),
			Idx:           pin.PredIdx,
			Bind:          pin.Instance,
		})
	}
	return out
}

// ConfirmFromWire decodes a confirm plan.
func ConfirmFromWire(w *ConfirmRequest) (core.FedConfirmSpec, error) {
	spec := core.FedConfirmSpec{MigrateOut: w.MigrateOut}
	for _, ra := range w.Realloc {
		spec.Realloc = append(spec.Realloc, core.FedRealloc{Slot: ra.Slot, Instance: ra.Instance})
	}
	for _, mi := range w.MigrateIn {
		exp, err := parseWireTime(mi.Expires)
		if err != nil {
			return spec, err
		}
		spec.MigrateIn = append(spec.MigrateIn, core.FedMigrateIn{
			ID:       mi.ID,
			Client:   mi.Client,
			Expr:     mi.Expr,
			Expires:  exp,
			Instance: mi.Instance,
			FromNode: mi.From,
		})
	}
	for _, pin := range w.Pinned {
		p, err := PredicateFromWire(pin.WirePredicate)
		if err != nil {
			return spec, err
		}
		spec.Pinned = append(spec.Pinned, core.FedPinned{
			Predicate: p,
			PredIdx:   pin.Idx,
			Instance:  pin.Bind,
		})
	}
	return spec, nil
}

// ConfirmResultToWire encodes the parts a confirmed session granted.
func ConfirmResultToWire(parts []core.GrantedPart) *ConfirmResponse {
	return &ConfirmResponse{Granted: grantedToWire(parts)}
}

// ConfirmResultFromWire decodes a confirm outcome.
func ConfirmResultFromWire(w *ConfirmResponse) ([]core.GrantedPart, error) {
	return grantedFromWire(w.Granted)
}

// sortedPropNames orders property names for deterministic encoding.
func sortedPropNames(props map[string]predicate.Value) []string {
	names := make([]string, 0, len(props))
	for n := range props {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
