package protocol

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	env := &Envelope{
		Header: Header{
			Client: "order-process",
			Promise: &PromiseHeader{
				Requests: []WireRequest{{
					ID:       "req-1",
					Duration: "30s",
					Predicates: []WirePredicate{
						{View: "anonymous", Pool: "pink-widgets", Qty: 5},
						{View: "named", Instance: "room-212"},
						{View: "property", Expr: "floor = 5 and view"},
					},
					Releases: []string{"prm-1", "prm-2"},
				}},
				Responses: []WireResponse{{
					Correlation: "req-0", PromiseID: "prm-9", Result: ResultAccepted,
					Expires: "2007-01-07T00:00:30Z",
				}},
			},
			Environment: &EnvironmentHeader{Refs: []PromiseRef{
				{ID: "prm-3", Release: true},
				{ID: "prm-4", Release: false},
			}},
		},
		Body: Body{Action: &WireAction{
			Name:   "purchase",
			Params: []Param{{Name: "pool", Value: "pink-widgets"}, {Name: "qty", Value: "5"}},
		}},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, env); err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"<promise>", "<promise-request", "<promise-response", "<environment>", "<action"} {
		if !strings.Contains(buf.String(), tag) {
			t.Errorf("encoded envelope missing %s:\n%s", tag, buf.String())
		}
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Client != "order-process" {
		t.Fatalf("client = %q", got.Header.Client)
	}
	if len(got.Header.Promise.Requests) != 1 || len(got.Header.Promise.Requests[0].Predicates) != 3 {
		t.Fatalf("requests = %+v", got.Header.Promise.Requests)
	}
	if got.Header.Promise.Requests[0].Releases[1] != "prm-2" {
		t.Fatal("releases lost")
	}
	if len(got.Header.Environment.Refs) != 2 || !got.Header.Environment.Refs[0].Release {
		t.Fatalf("environment = %+v", got.Header.Environment)
	}
	if got.Body.Action.Name != "purchase" || got.Body.Action.ParamMap()["qty"] != "5" {
		t.Fatalf("action = %+v", got.Body.Action)
	}
}

func TestDecodeMalformed(t *testing.T) {
	if _, err := Decode(strings.NewReader("not xml at all")); err == nil {
		t.Fatal("want decode error")
	}
	if _, err := Decode(strings.NewReader("<envelope><unclosed></envelope>")); err == nil {
		t.Fatal("want decode error")
	}
}

func TestPredicateConversions(t *testing.T) {
	preds := []core.Predicate{
		core.Quantity("w", 5),
		core.Named("i"),
		core.MustProperty("floor = 5"),
	}
	for _, p := range preds {
		w := PredicateToWire(p)
		back, err := PredicateFromWire(w)
		if err != nil {
			t.Fatalf("round trip %v: %v", p, err)
		}
		if back.View != p.View || back.Pool != p.Pool || back.Qty != p.Qty || back.Instance != p.Instance {
			t.Fatalf("round trip changed %+v -> %+v", p, back)
		}
		if p.View == core.PropertyView && back.Source != p.Source {
			t.Fatalf("property source lost: %q -> %q", p.Source, back.Source)
		}
	}
	if _, err := PredicateFromWire(WirePredicate{View: "galactic"}); err == nil {
		t.Fatal("unknown view accepted")
	}
	if _, err := PredicateFromWire(WirePredicate{View: "property", Expr: "(("}); err == nil {
		t.Fatal("bad property expression accepted")
	}
	// Property predicate without preserved source still encodes.
	p := core.MustProperty("floor = 5")
	p.Source = ""
	if w := PredicateToWire(p); w.Expr == "" {
		t.Fatal("expr not reconstructed from AST")
	}
}

func TestRequestConversions(t *testing.T) {
	pr := core.PromiseRequest{
		RequestID:  "r1",
		Duration:   45 * time.Second,
		Predicates: []core.Predicate{core.Quantity("w", 3)},
		Releases:   []string{"prm-7"},
	}
	w := RequestToWire(pr)
	back, err := RequestFromWire(w)
	if err != nil {
		t.Fatal(err)
	}
	if back.RequestID != "r1" || back.Duration != 45*time.Second || len(back.Predicates) != 1 || back.Releases[0] != "prm-7" {
		t.Fatalf("round trip = %+v", back)
	}
	if _, err := RequestFromWire(WireRequest{Duration: "soon"}); err == nil {
		t.Fatal("bad duration accepted")
	}
	if _, err := RequestFromWire(WireRequest{Predicates: []WirePredicate{{View: "x"}}}); err == nil {
		t.Fatal("bad predicate accepted")
	}
}

func TestResponseConversions(t *testing.T) {
	exp := time.Date(2007, 1, 7, 1, 2, 3, 0, time.UTC)
	pr := core.PromiseResponse{Correlation: "r1", Accepted: true, PromiseID: "prm-1", Expires: exp}
	w := ResponseToWire(pr)
	if w.Result != ResultAccepted || w.Expires == "" {
		t.Fatalf("wire = %+v", w)
	}
	back, err := ResponseFromWire(w)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Accepted || !back.Expires.Equal(exp) || back.PromiseID != "prm-1" {
		t.Fatalf("round trip = %+v", back)
	}
	rej := ResponseToWire(core.PromiseResponse{Correlation: "r2", Reason: "no stock"})
	if rej.Result != ResultRejected || rej.Expires != "" {
		t.Fatalf("rejected wire = %+v", rej)
	}
	if _, err := ResponseFromWire(WireResponse{Result: ResultAccepted, Expires: "yesterday"}); err == nil {
		t.Fatal("bad expires accepted")
	}
}

func TestCounterOfferWireRoundTrip(t *testing.T) {
	rej := core.PromiseResponse{
		Correlation: "r1",
		Reason:      "short",
		Counter:     []core.Predicate{core.Quantity("w", 7), core.Quantity("v", 2)},
	}
	w := ResponseToWire(rej)
	if len(w.Counter) != 2 {
		t.Fatalf("wire counter = %+v", w.Counter)
	}
	back, err := ResponseFromWire(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Counter) != 2 || back.Counter[0].Qty != 7 || back.Counter[1].Pool != "v" {
		t.Fatalf("round trip counter = %+v", back.Counter)
	}
	// Accepted responses never carry counters.
	acc := ResponseToWire(core.PromiseResponse{Accepted: true, Counter: rej.Counter})
	if len(acc.Counter) != 0 {
		t.Fatalf("accepted response carries counter: %+v", acc.Counter)
	}
	// Bad counter predicate on the wire is a decode error.
	w.Counter[0].View = "galactic"
	if _, err := ResponseFromWire(w); err == nil {
		t.Fatal("bad counter accepted")
	}
}

func TestEnvConversions(t *testing.T) {
	if EnvToWire(nil) != nil {
		t.Fatal("empty env should encode as nil")
	}
	env := []core.EnvEntry{{PromiseID: "p1", Release: true}, {PromiseID: "p2"}}
	h := EnvToWire(env)
	back := EnvFromWire(h)
	if len(back) != 2 || !back[0].Release || back[1].PromiseID != "p2" {
		t.Fatalf("round trip = %+v", back)
	}
	if EnvFromWire(nil) != nil {
		t.Fatal("nil header should yield nil env")
	}
}

func TestFaultMapping(t *testing.T) {
	cases := []struct {
		err  error
		code string
	}{
		{core.ErrPromiseExpired, FaultPromiseExpired},
		{core.ErrPromiseNotFound, FaultPromiseNotFound},
		{core.ErrPromiseReleased, FaultPromiseReleased},
		{core.ErrPromiseViolated, FaultPromiseViolated},
		{core.ErrBadRequest, FaultBadRequest},
		{core.ErrDegraded, FaultDegraded},
		{errors.New("shipper unavailable"), FaultActionFailed},
	}
	for _, c := range cases {
		f := FaultFromError(c.err)
		if f.Code != c.code {
			t.Errorf("FaultFromError(%v).Code = %q, want %q", c.err, f.Code, c.code)
		}
		back := ErrorFromFault(f)
		if c.code != FaultActionFailed && !errors.Is(back, c.err) {
			t.Errorf("ErrorFromFault(%q) = %v, not Is(%v)", c.code, back, c.err)
		}
	}
	if FaultFromError(nil) != nil {
		t.Fatal("nil error should map to nil fault")
	}
	if ErrorFromFault(nil) != nil {
		t.Fatal("nil fault should map to nil error")
	}
}

// TestGoldenEnvelope pins the exact wire format: any change to the XML
// shape is a protocol break and must be deliberate.
func TestGoldenEnvelope(t *testing.T) {
	env := &Envelope{
		Header: Header{
			Client: "order-process",
			Promise: &PromiseHeader{Requests: []WireRequest{{
				ID:       "req-1",
				Duration: "1m0s",
				Predicates: []WirePredicate{
					{View: "anonymous", Pool: "pink-widgets", Qty: 5},
				},
			}}},
			Environment: &EnvironmentHeader{Refs: []PromiseRef{{ID: "prm-9", Release: true}}},
		},
		Body: Body{Action: &WireAction{
			Name:   "purchase",
			Params: []Param{{Name: "qty", Value: "5"}},
		}},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, env); err != nil {
		t.Fatal(err)
	}
	const golden = `<?xml version="1.0" encoding="UTF-8"?>
<envelope>
  <header>
    <client>order-process</client>
    <promise>
      <promise-request id="req-1" duration="1m0s">
        <predicate view="anonymous" pool="pink-widgets" qty="5"></predicate>
      </promise-request>
    </promise>
    <environment>
      <promise-ref id="prm-9" release="true"></promise-ref>
    </environment>
  </header>
  <body>
    <action name="purchase">
      <param name="qty">5</param>
    </action>
  </body>
</envelope>`
	if got := buf.String(); got != golden {
		t.Fatalf("wire format changed:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

func TestPiggybackedRequestAndResponse(t *testing.T) {
	// §6: "a single <promise> element can include both <promise-request>
	// and <promise-response> elements."
	env := &Envelope{Header: Header{Promise: &PromiseHeader{
		Requests:  []WireRequest{{ID: "r2", Predicates: []WirePredicate{{View: "named", Instance: "x"}}}},
		Responses: []WireResponse{{Correlation: "r1", Result: ResultRejected, Reason: "sold out"}},
	}}}
	var buf bytes.Buffer
	if err := Encode(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Header.Promise.Requests) != 1 || len(got.Header.Promise.Responses) != 1 {
		t.Fatalf("piggyback lost: %+v", got.Header.Promise)
	}
	if got.Header.Promise.Responses[0].Reason != "sold out" {
		t.Fatal("reason lost")
	}
}

func TestBatchEnvelopeRoundTrip(t *testing.T) {
	env := &Envelope{
		Header: Header{
			Client: "bulk-loader",
			Batch: &BatchRequest{
				Grants: []WireRequest{
					{ID: "b-0", Predicates: []WirePredicate{{View: "anonymous", Pool: "widgets", Qty: 3}}},
					{ID: "b-1", Predicates: []WirePredicate{{View: "named", Instance: "room-212"}}, Releases: []string{"prm-7"}},
				},
				Checks: []PromiseRef{{ID: "prm-1"}, {ID: "shp-2"}},
			},
		},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, env); err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"<batch-request>", "<promise-request", "<check "} {
		if !strings.Contains(buf.String(), tag) {
			t.Errorf("encoded envelope missing %s:\n%s", tag, buf.String())
		}
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := got.Header.Batch
	if b == nil || len(b.Grants) != 2 || len(b.Checks) != 2 {
		t.Fatalf("batch = %+v", b)
	}
	if b.Grants[1].Releases[0] != "prm-7" {
		t.Fatal("batch grant releases lost")
	}
	if b.Checks[1].ID != "shp-2" {
		t.Fatalf("checks = %+v", b.Checks)
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	env := &Envelope{
		Header: Header{
			BatchResult: &BatchResponse{
				Responses: []WireResponse{
					{Correlation: "b-0", PromiseID: "prm0-1", Result: ResultAccepted, Expires: "2007-01-07T00:00:30Z"},
					{Correlation: "b-1", Result: ResultRejected, Reason: "pool empty"},
				},
				Checks: []CheckResult{
					{ID: "prm-1"},
					{ID: "shp-2", Fault: &Fault{Code: FaultPromiseReleased, Message: "promise released: shp-2"}},
				},
			},
		},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	br := got.Header.BatchResult
	if br == nil || len(br.Responses) != 2 || len(br.Checks) != 2 {
		t.Fatalf("batch result = %+v", br)
	}
	if br.Responses[1].Reason != "pool empty" {
		t.Fatal("rejection reason lost")
	}
	if br.Checks[0].Fault != nil {
		t.Fatalf("healthy check grew a fault: %+v", br.Checks[0].Fault)
	}
	if !errors.Is(ErrorFromFault(br.Checks[1].Fault), core.ErrPromiseReleased) {
		t.Fatalf("check fault does not map back to ErrPromiseReleased: %+v", br.Checks[1].Fault)
	}
	if got := ErrorFromFault(br.Checks[0].Fault); got != nil {
		t.Fatalf("nil fault maps to %v", got)
	}
}
