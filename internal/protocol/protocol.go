// Package protocol implements the promise protocol elements of paper §6 as
// XML message envelopes: "clients and promise managers exchange
// promise-related information using <promise> and <environment> message
// header elements. <Promise> elements are used in the creation and release
// of promises. <Environment> elements are used to specify the promise
// context that applies for the SOAP service requests carried in the
// associated message body."
//
// The envelope mirrors the SOAP header/body split: promise machinery rides
// in the header, the application action in the body, so "the promise
// release and the application request form an atomic unit" when combined
// (§2). A single <promise> element can carry both <promise-request> and
// <promise-response> children, supporting the piggybacking noted in §6.
package protocol

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
)

// Envelope is one protocol message.
type Envelope struct {
	XMLName xml.Name `xml:"envelope"`
	Header  Header   `xml:"header"`
	Body    Body     `xml:"body"`
}

// Header carries the promise protocol elements.
type Header struct {
	// Client identifies the promise client.
	Client string `xml:"client,omitempty"`
	// Deadline is the client's remaining call budget (a duration), stamped
	// when the caller's context carries a deadline. The server applies it
	// to its own request context, so the ctx-deadline cap on granted
	// durations behaves identically for local and remote engines.
	Deadline string `xml:"deadline,attr,omitempty"`
	// Promise carries promise-requests and piggybacked promise-responses.
	Promise *PromiseHeader `xml:"promise,omitempty"`
	// Environment names the promises protecting the body's action.
	Environment *EnvironmentHeader `xml:"environment,omitempty"`
	// Batch carries many independent promise operations in one envelope,
	// the §6 batching direction: remote clients amortize a whole burst of
	// grants and checks over a single HTTP round trip.
	Batch *BatchRequest `xml:"batch-request,omitempty"`
	// BatchResult answers a Batch.
	BatchResult *BatchResponse `xml:"batch-response,omitempty"`
	// Reserve/Confirm/Abort are the federated two-phase grant elements
	// (fed.go): a cluster coordinator drives one node's slice of a
	// cross-node grant through them. Each *Result answers its request.
	Reserve       *ReserveRequest  `xml:"reserve-request,omitempty"`
	ReserveResult *ReserveResponse `xml:"reserve-response,omitempty"`
	Confirm       *ConfirmRequest  `xml:"confirm-request,omitempty"`
	ConfirmResult *ConfirmResponse `xml:"confirm-response,omitempty"`
	Abort         *AbortRequest    `xml:"abort-request,omitempty"`
	AbortResult   *AbortResponse   `xml:"abort-response,omitempty"`
}

// BatchRequest is the <batch-request> element: independent promise
// requests, promise releases, piggybacked actions, and promise-usability
// checks — enough for a whole §4 upgrade burst in one round trip. Each
// entry is individually atomic (one rejection does not affect its
// neighbours), exactly as if the requests had arrived in separate §6
// messages. The server processes grants, then releases, then actions, then
// checks, so a check in the same envelope reflects the envelope's own
// releases.
type BatchRequest struct {
	Grants []WireRequest `xml:"promise-request"`
	// Releases hands back promises independently of any grant (the
	// release-with-grant §4 shape stays inside WireRequest.Releases; these
	// entries are the standalone hand-backs).
	Releases []PromiseRef `xml:"release-request"`
	// Actions are piggybacked service invocations, each run under its own
	// environment as its own §8 transaction.
	Actions []BatchAction `xml:"batch-action"`
	Checks  []PromiseRef  `xml:"check"`
}

// BatchAction is one piggybacked action with the environment protecting it.
type BatchAction struct {
	Action WireAction   `xml:"action"`
	Env    []PromiseRef `xml:"promise-ref"`
}

// BatchResponse is the <batch-response> element. Responses, Releases,
// Actions and Checks line up with the request's entries by index.
type BatchResponse struct {
	Responses []WireResponse `xml:"promise-response"`
	Releases  []CheckResult  `xml:"release-result"`
	Actions   []ActionResult `xml:"action-result"`
	Checks    []CheckResult  `xml:"check-result"`
}

// ActionResult reports one piggybacked action's outcome.
type ActionResult struct {
	Result string `xml:"result,omitempty"`
	Fault  *Fault `xml:"fault,omitempty"`
}

// CheckResult reports one promise's usability (or one release's outcome):
// no fault means the promise was active, owned by the caller, and
// unexpired.
type CheckResult struct {
	ID    string `xml:"id,attr"`
	Fault *Fault `xml:"fault,omitempty"`
}

// PromiseHeader is the <promise> element.
type PromiseHeader struct {
	Requests  []WireRequest  `xml:"promise-request"`
	Responses []WireResponse `xml:"promise-response"`
}

// WireRequest is a <promise-request> element: request identifier,
// predicates, resources, duration, and promises to release on grant (§6).
type WireRequest struct {
	ID       string `xml:"id,attr,omitempty"`
	Duration string `xml:"duration,attr,omitempty"`
	// MinDuration is the client's floor: the manager rejects rather than
	// grants for less (see core.PromiseRequest.MinDuration).
	MinDuration string `xml:"min-duration,attr,omitempty"`
	// Priority is the request's tier and preemptible marks the grant as
	// spot capacity (see core.PromiseRequest).
	Priority    int             `xml:"priority,attr,omitempty"`
	Preemptible bool            `xml:"preemptible,attr,omitempty"`
	Predicates  []WirePredicate `xml:"predicate"`
	Releases    []string        `xml:"release"`
}

// WirePredicate is one predicate with its resource reference. The view
// attribute selects the §3 resource abstraction.
type WirePredicate struct {
	View     string `xml:"view,attr"`
	Pool     string `xml:"pool,attr,omitempty"`
	Qty      int64  `xml:"qty,attr,omitempty"`
	Instance string `xml:"instance,attr,omitempty"`
	Expr     string `xml:"expr,attr,omitempty"`
}

// WireResponse is a <promise-response> element: promise identifier, result,
// duration granted, and correlation to the earlier request (§6). Counter
// carries the manager's counter-offer predicates on rejection (the §6
// "accepted with the condition XX" direction).
type WireResponse struct {
	Correlation string          `xml:"correlation,attr,omitempty"`
	PromiseID   string          `xml:"promise,attr,omitempty"`
	Result      string          `xml:"result,attr"`
	Expires     string          `xml:"expires,attr,omitempty"`
	Reason      string          `xml:"reason,omitempty"`
	Counter     []WirePredicate `xml:"counter>predicate,omitempty"`
}

// Result attribute values.
const (
	ResultAccepted = "accepted"
	ResultRejected = "rejected"
)

// EnvironmentHeader is the <environment> element: "a set of promise
// identifiers … a corresponding set of promise release options" (§6).
type EnvironmentHeader struct {
	Refs []PromiseRef `xml:"promise-ref"`
}

// PromiseRef names one environment promise and its release option.
type PromiseRef struct {
	ID      string `xml:"id,attr"`
	Release bool   `xml:"release,attr"`
}

// Body carries the application request or its outcome.
type Body struct {
	Action *WireAction `xml:"action,omitempty"`
	Result string      `xml:"result,omitempty"`
	Fault  *Fault      `xml:"fault,omitempty"`
}

// WireAction names a registered service operation with string parameters.
type WireAction struct {
	Name   string  `xml:"name,attr"`
	Params []Param `xml:"param"`
}

// Param is one named action parameter.
type Param struct {
	Name  string `xml:"name,attr"`
	Value string `xml:",chardata"`
}

// ParamMap flattens the action's parameters.
func (a *WireAction) ParamMap() map[string]string {
	out := make(map[string]string, len(a.Params))
	for _, p := range a.Params {
		out[p.Name] = p.Value
	}
	return out
}

// Fault reports an action failure.
type Fault struct {
	Code    string `xml:"code,attr"`
	Message string `xml:",chardata"`
}

// Fault codes mapping the manager's sentinel errors onto the wire.
const (
	FaultPromiseExpired   = "promise-expired"
	FaultPromiseNotFound  = "promise-not-found"
	FaultPromiseReleased  = "promise-released"
	FaultPromisePreempted = "promise-preempted"
	FaultPromiseViolated  = "promise-violated"
	FaultBadRequest       = "bad-request"
	FaultActionFailed     = "action-failed"
	// FaultDegraded maps core.ErrDegraded: the engine is in read-only
	// degraded mode and rejected a mutation. Retryable once the server's
	// persistence recovers (HTTP carries it as 503 + Retry-After).
	FaultDegraded = "degraded"
	// FaultOverloaded marks a request shed by the server's admission
	// control rather than rejected by the engine; it never originates from
	// a core sentinel (transport stamps it directly on 429/503 sheds).
	FaultOverloaded = "overloaded"
)

// Encode writes the envelope as indented XML.
func Encode(w io.Writer, env *Envelope) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(env); err != nil {
		return fmt.Errorf("protocol: encode: %w", err)
	}
	return enc.Flush()
}

// Decode reads one envelope.
func Decode(r io.Reader) (*Envelope, error) {
	var env Envelope
	if err := xml.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("protocol: decode: %w", err)
	}
	return &env, nil
}

// PredicateToWire converts a core predicate for transmission.
func PredicateToWire(p core.Predicate) WirePredicate {
	switch p.View {
	case core.AnonymousView:
		return WirePredicate{View: "anonymous", Pool: p.Pool, Qty: p.Qty}
	case core.NamedView:
		return WirePredicate{View: "named", Instance: p.Instance}
	default:
		src := p.Source
		if src == "" && p.Expr != nil {
			src = p.Expr.String()
		}
		return WirePredicate{View: "property", Expr: src}
	}
}

// PredicateFromWire parses a wire predicate.
func PredicateFromWire(w WirePredicate) (core.Predicate, error) {
	switch w.View {
	case "anonymous":
		return core.Quantity(w.Pool, w.Qty), nil
	case "named":
		return core.Named(w.Instance), nil
	case "property":
		return core.Property(w.Expr)
	default:
		return core.Predicate{}, fmt.Errorf("protocol: unknown predicate view %q", w.View)
	}
}

// RequestToWire converts a core promise request.
func RequestToWire(pr core.PromiseRequest) WireRequest {
	out := WireRequest{ID: pr.RequestID, Releases: pr.Releases, Priority: pr.Priority, Preemptible: pr.Preemptible}
	if pr.Duration > 0 {
		out.Duration = pr.Duration.String()
	}
	if pr.MinDuration > 0 {
		out.MinDuration = pr.MinDuration.String()
	}
	for _, p := range pr.Predicates {
		out.Predicates = append(out.Predicates, PredicateToWire(p))
	}
	return out
}

// RequestFromWire parses a wire promise request.
func RequestFromWire(w WireRequest) (core.PromiseRequest, error) {
	out := core.PromiseRequest{RequestID: w.ID, Releases: w.Releases, Priority: w.Priority, Preemptible: w.Preemptible}
	if w.Duration != "" {
		d, err := time.ParseDuration(w.Duration)
		if err != nil {
			return core.PromiseRequest{}, fmt.Errorf("protocol: bad duration %q: %v", w.Duration, err)
		}
		out.Duration = d
	}
	if w.MinDuration != "" {
		d, err := time.ParseDuration(w.MinDuration)
		if err != nil {
			return core.PromiseRequest{}, fmt.Errorf("protocol: bad min-duration %q: %v", w.MinDuration, err)
		}
		out.MinDuration = d
	}
	for _, wp := range w.Predicates {
		p, err := PredicateFromWire(wp)
		if err != nil {
			return core.PromiseRequest{}, err
		}
		out.Predicates = append(out.Predicates, p)
	}
	return out, nil
}

// ResponseToWire converts a core promise response.
func ResponseToWire(pr core.PromiseResponse) WireResponse {
	out := WireResponse{
		Correlation: pr.Correlation,
		PromiseID:   pr.PromiseID,
		Reason:      pr.Reason,
	}
	if pr.Accepted {
		out.Result = ResultAccepted
		out.Expires = pr.Expires.UTC().Format(time.RFC3339Nano)
	} else {
		out.Result = ResultRejected
		for _, p := range pr.Counter {
			out.Counter = append(out.Counter, PredicateToWire(p))
		}
	}
	return out
}

// ResponseFromWire parses a wire promise response.
func ResponseFromWire(w WireResponse) (core.PromiseResponse, error) {
	out := core.PromiseResponse{
		Correlation: w.Correlation,
		PromiseID:   w.PromiseID,
		Reason:      w.Reason,
		Accepted:    w.Result == ResultAccepted,
	}
	if w.Expires != "" {
		t, err := time.Parse(time.RFC3339Nano, w.Expires)
		if err != nil {
			return core.PromiseResponse{}, fmt.Errorf("protocol: bad expires %q: %v", w.Expires, err)
		}
		out.Expires = t
	}
	for _, wp := range w.Counter {
		p, err := PredicateFromWire(wp)
		if err != nil {
			return core.PromiseResponse{}, err
		}
		out.Counter = append(out.Counter, p)
	}
	return out, nil
}

// EnvToWire converts environment entries.
func EnvToWire(env []core.EnvEntry) *EnvironmentHeader {
	if len(env) == 0 {
		return nil
	}
	out := &EnvironmentHeader{}
	for _, e := range env {
		out.Refs = append(out.Refs, PromiseRef{ID: e.PromiseID, Release: e.Release})
	}
	return out
}

// EnvFromWire parses environment entries.
func EnvFromWire(h *EnvironmentHeader) []core.EnvEntry {
	if h == nil {
		return nil
	}
	out := make([]core.EnvEntry, 0, len(h.Refs))
	for _, r := range h.Refs {
		out = append(out, core.EnvEntry{PromiseID: r.ID, Release: r.Release})
	}
	return out
}

// FaultFromError maps a manager error onto a wire fault.
func FaultFromError(err error) *Fault {
	if err == nil {
		return nil
	}
	code := FaultActionFailed
	switch {
	case errors.Is(err, core.ErrPromiseExpired):
		code = FaultPromiseExpired
	case errors.Is(err, core.ErrPromiseNotFound):
		code = FaultPromiseNotFound
	case errors.Is(err, core.ErrPromiseReleased):
		code = FaultPromiseReleased
	case errors.Is(err, core.ErrPromisePreempted):
		code = FaultPromisePreempted
	case errors.Is(err, core.ErrPromiseViolated):
		code = FaultPromiseViolated
	case errors.Is(err, core.ErrBadRequest):
		code = FaultBadRequest
	case errors.Is(err, core.ErrDegraded):
		code = FaultDegraded
	}
	return &Fault{Code: code, Message: err.Error()}
}

// ErrorFromFault reconstructs a sentinel-wrapped error from a wire fault so
// remote clients can use errors.Is exactly like local ones.
func ErrorFromFault(f *Fault) error {
	if f == nil {
		return nil
	}
	switch f.Code {
	case FaultPromiseExpired:
		return fmt.Errorf("%w: %s", core.ErrPromiseExpired, f.Message)
	case FaultPromiseNotFound:
		return fmt.Errorf("%w: %s", core.ErrPromiseNotFound, f.Message)
	case FaultPromiseReleased:
		return fmt.Errorf("%w: %s", core.ErrPromiseReleased, f.Message)
	case FaultPromisePreempted:
		return fmt.Errorf("%w: %s", core.ErrPromisePreempted, f.Message)
	case FaultPromiseViolated:
		return fmt.Errorf("%w: %s", core.ErrPromiseViolated, f.Message)
	case FaultBadRequest:
		return fmt.Errorf("%w: %s", core.ErrBadRequest, f.Message)
	case FaultDegraded:
		return fmt.Errorf("%w: %s", core.ErrDegraded, f.Message)
	default:
		return fmt.Errorf("protocol: action failed: %s", f.Message)
	}
}
