package transport

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// This file extends the wire-equivalence programme to the subscription
// face: transport.Client.Watch must observe exactly the event sequence the
// engine it fronts publishes — same types, same promise ids, same seq
// numbers, same order — and must survive a broken SSE connection by
// resuming from its Last-Event-ID cursor.

// eventKey flattens an event for comparison.
func eventKey(ev core.Event) string {
	return fmt.Sprintf("%d/%s/%s/%s", ev.Seq, ev.Type, ev.PromiseID, ev.Client)
}

// collectUntil receives events until pred matches (returning everything
// received including the match) or the deadline trips.
func collectUntil(t *testing.T, ch <-chan core.Event, pred func(core.Event) bool) []core.Event {
	t.Helper()
	var out []core.Event
	deadline := time.After(15 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("event stream closed after %d events", len(out))
			}
			out = append(out, ev)
			if pred(ev) {
				return out
			}
		case <-deadline:
			t.Fatalf("marker event never arrived (have %d events)", len(out))
		}
	}
}

// TestWireEventEquivalence drives the randomized wire workload while two
// subscribers follow the remote engine — one directly, one through the SSE
// client — and asserts both saw the identical stream.
func TestWireEventEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w := newWireWorld(t, seed)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			direct, err := w.remote.Watch(ctx, core.WatchOptions{Buffer: 4096})
			if err != nil {
				t.Fatal(err)
			}
			wire, err := w.client.Watch(ctx, core.WatchOptions{Buffer: 4096})
			if err != nil {
				t.Fatal(err)
			}

			w.run(80)

			// Expire everything outstanding so the marker grant cannot be
			// rejected for capacity (both subscribers see the same expiry
			// burst), then flush the streams with a marker exchange: both
			// subscribers stop at its Released event.
			w.fake.Advance(2 * time.Hour)
			marker, err := w.client.Execute(bg, core.Request{
				Client: "marker",
				PromiseRequests: []core.PromiseRequest{{
					Predicates: []core.Predicate{core.Quantity(w.pools[0], 1)},
				}},
			})
			if err != nil {
				t.Fatal(err)
			}
			mid := marker.Promises[0].PromiseID
			if mid == "" {
				t.Fatalf("marker grant rejected: %s", marker.Promises[0].Reason)
			}
			if err := w.client.Release(bg, "marker", mid); err != nil {
				t.Fatal(err)
			}
			isMarker := func(ev core.Event) bool {
				return ev.Type == core.EventReleased && ev.PromiseID == mid
			}
			got := collectUntil(t, wire, isMarker)
			want := collectUntil(t, direct, isMarker)
			if len(got) != len(want) {
				t.Fatalf("wire saw %d events, engine saw %d", len(got), len(want))
			}
			for i := range want {
				if eventKey(got[i]) != eventKey(want[i]) {
					t.Fatalf("event %d diverged:\nwire:   %s\nengine: %s", i, eventKey(got[i]), eventKey(want[i]))
				}
			}
			if len(want) == 0 {
				t.Fatal("workload produced no events")
			}
		})
	}
}

// TestClientWatchReconnects drops the SSE connection mid-stream and
// asserts the client resumes from its Last-Event-ID cursor without losing
// or duplicating events.
func TestClientWatchReconnects(t *testing.T) {
	eng, err := core.New(core.Config{DefaultDuration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.CreatePool("rp", 100, nil); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, nil)
	inner := srv.Handler()

	// A chaos proxy: the first events connection is cut after 2 events by
	// limiting the response writer; later connections stream freely.
	var conns atomic.Int64
	outer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == EventsEndpoint && conns.Add(1) == 1 {
			inner.ServeHTTP(&truncatingWriter{ResponseWriter: w, maxEvents: 2, r: r}, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer outer.Close()

	c := &Client{BaseURL: outer.URL, Client: "c"}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := c.Watch(ctx, core.WatchOptions{Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}

	grant := func() string {
		resp, err := eng.Execute(context.Background(), core.Request{
			Client: "c",
			PromiseRequests: []core.PromiseRequest{{
				Predicates: []core.Predicate{core.Quantity("rp", 1)},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return resp.Promises[0].PromiseID
	}
	var want []string
	for i := 0; i < 6; i++ {
		want = append(want, grant())
		time.Sleep(20 * time.Millisecond) // let the cut + reconnect interleave
	}

	var got []string
	deadline := time.After(15 * time.Second)
	for len(got) < len(want) {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("stream closed after %d events", len(got))
			}
			if ev.Type != core.EventGranted {
				t.Fatalf("unexpected event %s", ev.Type)
			}
			got = append(got, ev.PromiseID)
		case <-deadline:
			t.Fatalf("timed out after %d/%d events (reconnect lost the tail?)", len(got), len(want))
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
	if conns.Load() < 2 {
		t.Fatalf("client never reconnected (%d connections)", conns.Load())
	}
}

// truncatingWriter closes the SSE response after maxEvents events by
// failing writes, simulating a dropped connection.
type truncatingWriter struct {
	http.ResponseWriter
	maxEvents int
	events    int
	r         *http.Request
}

func (t *truncatingWriter) Write(p []byte) (int, error) {
	if t.events >= t.maxEvents {
		return 0, fmt.Errorf("connection cut")
	}
	n, err := t.ResponseWriter.Write(p)
	if err == nil && len(p) > 4 && string(p[:3]) == "id:" {
		t.events++
	}
	return n, err
}

func (t *truncatingWriter) Flush() {
	if fl, ok := t.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// TestClientWatchDisconnectSentinel: a server that applies the
// slow-subscriber disconnect policy ends the stream with an explicit
// disconnect event; the client must close its channel (like an in-process
// SlowDisconnect subscription) instead of silently reconnecting.
func TestClientWatchDisconnectSentinel(t *testing.T) {
	var conns atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		fl := w.(http.Flusher)
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, ": watching\n\n")
		fmt.Fprint(w, "id: 1\nevent: granted\ndata: {\"seq\":1,\"type\":\"granted\",\"promise\":\"prm-1\",\"time\":\"2026-01-01T00:00:00Z\"}\n\n")
		fmt.Fprint(w, "event: disconnect\ndata: {}\n\n")
		fl.Flush()
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := c.Watch(ctx, core.WatchOptions{SlowPolicy: core.SlowDisconnect})
	if err != nil {
		t.Fatal(err)
	}
	ev, ok := <-ch
	if !ok || ev.Seq != 1 {
		t.Fatalf("first event = %+v ok=%v", ev, ok)
	}
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("expected channel close after disconnect sentinel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("channel not closed after disconnect sentinel")
	}
	if got := conns.Load(); got != 1 {
		t.Fatalf("client reconnected after disconnect sentinel (%d connections)", got)
	}
}

// TestWireDeadlineCap: the ctx-deadline cap on granted durations crosses
// the wire (the envelope's deadline attribute re-imposes the client's
// remaining budget server-side), so a remote engine accepts and rejects
// exactly like the local engine it fronts.
func TestWireDeadlineCap(t *testing.T) {
	eng, err := core.New(core.Config{DefaultDuration: time.Hour, MaxDuration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.CreatePool("dp", 10, nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(eng, nil).Handler())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, Client: "c"}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req := func(min time.Duration) core.PromiseResponse {
		resp, err := c.Execute(ctx, core.Request{PromiseRequests: []core.PromiseRequest{{
			Predicates:  []core.Predicate{core.Quantity("dp", 1)},
			Duration:    time.Hour,
			MinDuration: min,
		}}})
		if err != nil {
			t.Fatal(err)
		}
		return resp.Promises[0]
	}

	capped := req(0)
	if !capped.Accepted {
		t.Fatalf("capped grant rejected: %s", capped.Reason)
	}
	if max := time.Now().Add(6 * time.Second); capped.Expires.After(max) {
		t.Fatalf("remote grant expires %v, beyond the ctx deadline cap", capped.Expires)
	}
	if floor := req(time.Minute); floor.Accepted {
		t.Fatal("remote engine granted below the client's floor; local would reject")
	}
}

// TestEventsEndpointContract pins the SSE surface a non-Go client sees:
// content type, id/event/data framing, and the after-cursor replay.
func TestEventsEndpointContract(t *testing.T) {
	eng, err := core.New(core.Config{DefaultDuration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.CreatePool("sp", 10, nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(eng, nil).Handler())
	defer srv.Close()

	for i := 0; i < 3; i++ {
		if _, err := eng.Execute(context.Background(), core.Request{
			Client: "c",
			PromiseRequests: []core.PromiseRequest{{
				Predicates: []core.Predicate{core.Quantity("sp", 1)},
			}},
		}); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+EventsEndpoint+"?after=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "0") // the query cursor must win
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	buf := make([]byte, 4096)
	var body string
	for ctx.Err() == nil && !(strings.Contains(body, "id: 2") && strings.Contains(body, "id: 3")) {
		n, err := resp.Body.Read(buf)
		body += string(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(body, "id: 2\nevent: granted\ndata: {") {
		t.Fatalf("SSE framing missing from replay:\n%s", body)
	}
	if strings.Contains(body, "id: 1\n") {
		t.Fatalf("after=1 replayed seq 1:\n%s", body)
	}
}

// TestPreemptedEventOverSSE pins the preempted event's wire shape: a
// remote watcher filtered to preempted events sees the victim's id, the
// displacing promise id and its tier — the same annotations a local
// subscriber gets.
func TestPreemptedEventOverSSE(t *testing.T) {
	eng, err := core.New(core.Config{DefaultDuration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.CreatePool("gp", 1, nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(eng, nil).Handler())
	defer srv.Close()

	spotC := &Client{BaseURL: srv.URL, Client: "spot"}
	spotResp, err := spotC.Execute(bg, core.Request{PromiseRequests: []core.PromiseRequest{{
		Predicates:  []core.Predicate{core.Quantity("gp", 1)},
		Preemptible: true,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	spotID := spotResp.Promises[0].PromiseID
	if spotID == "" {
		t.Fatalf("spot grant rejected: %s", spotResp.Promises[0].Reason)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := spotC.Watch(ctx, core.WatchOptions{Types: []core.EventType{core.EventPreempted}})
	if err != nil {
		t.Fatal(err)
	}

	odC := &Client{BaseURL: srv.URL, Client: "od"}
	odResp, err := odC.Execute(bg, core.Request{PromiseRequests: []core.PromiseRequest{{
		Predicates: []core.Predicate{core.Quantity("gp", 1)},
		Priority:   3,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	odID := odResp.Promises[0].PromiseID
	if odID == "" {
		t.Fatalf("displacing grant rejected over the wire: %s", odResp.Promises[0].Reason)
	}

	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("event stream closed before the preempted event")
		}
		if ev.Type != core.EventPreempted || ev.PromiseID != spotID {
			t.Fatalf("event %+v, want preempted %s", ev, spotID)
		}
		if ev.By != odID {
			t.Errorf("event By = %q, want displacing id %s", ev.By, odID)
		}
		if ev.Priority != 3 {
			t.Errorf("event Priority = %d, want 3", ev.Priority)
		}
		if ev.Client != "spot" {
			t.Errorf("event Client = %q, want the victim's owner", ev.Client)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("preempted event never crossed the SSE stream")
	}

	// The victim's check over the wire reports the preempted sentinel.
	verdicts, err := spotC.CheckBatch(bg, "spot", []string{spotID})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(verdicts[0], core.ErrPromisePreempted) {
		t.Fatalf("remote check after preemption = %v, want ErrPromisePreempted", verdicts[0])
	}
}
