package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/service"
	"repro/internal/txn"
)

// newTestServer spins up a full Figure 2 deployment: PM + App + RM behind
// an HTTP test server.
func newTestServer(t *testing.T, seedFn func(m *core.Manager) error) (*httptest.Server, *core.Manager) {
	t.Helper()
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if seedFn != nil {
		tx := m.Store().Begin(txn.Block)
		defer func() {
			if !tx.Done() {
				_ = tx.Abort()
			}
		}()
		if err := seedFn(m); err != nil {
			t.Fatal(err)
		}
	}
	reg := service.NewRegistry()
	service.RegisterStandard(reg)
	srv := httptest.NewServer(NewServer(m, reg).Handler())
	t.Cleanup(srv.Close)
	return srv, m
}

func seedPool(m *core.Manager, pool string, qty int64) error {
	tx := m.Store().Begin(txn.Block)
	if err := m.Resources().CreatePool(tx, pool, qty, nil); err != nil {
		_ = tx.Abort()
		return err
	}
	return tx.Commit()
}

func TestEndToEndFigure1OverHTTP(t *testing.T) {
	srv, m := newTestServer(t, func(m *core.Manager) error {
		return seedPool(m, "pink-widgets", 10)
	})
	c := &Client{BaseURL: srv.URL, Client: "order-process"}

	// Promise request.
	pr, err := c.RequestPromise(bg, []core.Predicate{core.Quantity("pink-widgets", 5)}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Accepted {
		t.Fatalf("rejected: %s", pr.Reason)
	}
	if pr.Expires.IsZero() {
		t.Fatal("expires not propagated")
	}

	// Purchase with atomic release, via the registered action.
	result, err := c.Invoke(bg,
		[]core.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		"adjust-pool", map[string]string{"pool": "pink-widgets", "delta": "-5"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if result != "5" {
		t.Fatalf("new level = %q, want 5", result)
	}
	info, err := m.PromiseInfo(pr.PromiseID)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != core.Released {
		t.Fatalf("promise state = %v", info.State)
	}
}

func TestRejectionOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t, func(m *core.Manager) error {
		return seedPool(m, "w", 3)
	})
	c := &Client{BaseURL: srv.URL, Client: "c"}
	pr, err := c.RequestPromise(bg, []core.Predicate{core.Quantity("w", 5)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Accepted {
		t.Fatal("over-grant over HTTP")
	}
	if !strings.Contains(pr.Reason, "available") {
		t.Fatalf("reason = %q", pr.Reason)
	}
}

func TestFaultMappingOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t, func(m *core.Manager) error {
		return seedPool(m, "w", 3)
	})
	c := &Client{BaseURL: srv.URL, Client: "c"}
	// Using an unknown promise id yields a typed fault on the client side.
	_, err := c.Invoke(bg, []core.EnvEntry{{PromiseID: "prm-404"}}, "pool-level", map[string]string{"pool": "w"})
	if !errors.Is(err, core.ErrPromiseNotFound) {
		t.Fatalf("err = %v, want ErrPromiseNotFound", err)
	}
	// Releasing twice yields promise-released.
	pr, _ := c.RequestPromise(bg, []core.Predicate{core.Quantity("w", 1)}, 0)
	if err := c.Release(bg, "", pr.PromiseID); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(bg, "", pr.PromiseID); !errors.Is(err, core.ErrPromiseReleased) {
		t.Fatalf("double release err = %v", err)
	}
}

func TestViolationFaultOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t, func(m *core.Manager) error {
		return seedPool(m, "w", 10)
	})
	holder := &Client{BaseURL: srv.URL, Client: "holder"}
	pr, err := holder.RequestPromise(bg, []core.Predicate{core.Quantity("w", 8)}, time.Minute)
	if err != nil || !pr.Accepted {
		t.Fatalf("setup: %v %v", pr, err)
	}
	rogue := &Client{BaseURL: srv.URL, Client: "rogue"}
	_, err = rogue.Invoke(bg, nil, "adjust-pool", map[string]string{"pool": "w", "delta": "-5"})
	if !errors.Is(err, core.ErrPromiseViolated) {
		t.Fatalf("err = %v, want ErrPromiseViolated", err)
	}
	// State intact.
	level, err := rogue.Invoke(bg, nil, "pool-level", map[string]string{"pool": "w"})
	if err != nil {
		t.Fatal(err)
	}
	if level != "10" {
		t.Fatalf("level = %q after rolled-back violation", level)
	}
}

func TestUnknownActionIs404(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	c := &Client{BaseURL: srv.URL, Client: "c"}
	_, err := c.Invoke(bg, nil, "launch-missiles", nil)
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("err = %v, want 404", err)
	}
}

func TestMissingClientIsBadRequest(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	c := &Client{BaseURL: srv.URL, Client: ""}
	_, err := c.Exchange(bg, nil, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("err = %v, want 400", err)
	}
}

func TestMalformedEnvelopeIsBadRequest(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	resp, err := srv.Client().Post(srv.URL+Endpoint, "application/xml", strings.NewReader("<garbage"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestRemoteSupplierDelegationChain(t *testing.T) {
	// Distributor server; merchant manager delegates to it over HTTP (E11).
	distSrv, distM := newTestServer(t, func(m *core.Manager) error {
		return seedPool(m, "widgets", 10)
	})
	sup := &RemoteSupplier{C: &Client{BaseURL: distSrv.URL, Client: "merchant"}}
	merchant, err := core.New(core.Config{
		Suppliers: map[string]core.Supplier{"widgets": sup},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := seedPool(merchant, "widgets", 3); err != nil {
		t.Fatal(err)
	}

	resp, err := merchant.Execute(bg, core.Request{
		Client: "customer",
		PromiseRequests: []core.PromiseRequest{{
			Predicates: []core.Predicate{core.Quantity("widgets", 8)},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := resp.Promises[0]
	if !pr.Accepted {
		t.Fatalf("delegated grant over HTTP rejected: %s", pr.Reason)
	}
	info, _ := merchant.PromiseInfo(pr.PromiseID)
	if info.DelegatedQty[0] != 5 {
		t.Fatalf("delegated qty = %d", info.DelegatedQty[0])
	}
	// The distributor holds the upstream promise.
	up, err := distM.PromiseInfo(info.DelegatedID[0])
	if err != nil {
		t.Fatal(err)
	}
	if up.State != core.Active {
		t.Fatalf("upstream state = %v", up.State)
	}
	// Release propagates over HTTP.
	if _, err := merchant.Execute(bg, core.Request{
		Client: "customer",
		Env:    []core.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
	}); err != nil {
		t.Fatal(err)
	}
	up, _ = distM.PromiseInfo(info.DelegatedID[0])
	if up.State != core.Released {
		t.Fatalf("upstream after release = %v", up.State)
	}
}

func TestRemoteSupplierConsume(t *testing.T) {
	distSrv, distM := newTestServer(t, func(m *core.Manager) error {
		return seedPool(m, "w", 10)
	})
	sup := &RemoteSupplier{C: &Client{BaseURL: distSrv.URL, Client: "m"}}
	id, err := sup.RequestPromise(bg, "w", 4, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.ConsumePromise(bg, id, 4); err != nil {
		t.Fatal(err)
	}
	tx := distM.Store().Begin(txn.Block)
	defer tx.Commit()
	p, _ := distM.Resources().Pool(tx, "w")
	if p.OnHand != 6 {
		t.Fatalf("on hand = %d", p.OnHand)
	}
	if err := sup.ConsumePromise(bg, "up-unknown", 1); err == nil {
		t.Fatal("unknown upstream promise consumed")
	}
}

func TestOpsEndpoints(t *testing.T) {
	srv, _ := newTestServer(t, func(m *core.Manager) error {
		return seedPool(m, "w", 10)
	})
	c := &Client{BaseURL: srv.URL, Client: "c"}
	if _, err := c.RequestPromise(bg, []core.Predicate{core.Quantity("w", 5)}, time.Minute); err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf strings.Builder
		if _, err := io.Copy(&buf, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.String()
	}
	code, body := get("/stats")
	if code != 200 || !strings.Contains(body, "grants=1") {
		t.Fatalf("/stats: %d %q", code, body)
	}
	code, body = get("/audit")
	if code != 200 || !strings.Contains(body, "healthy") {
		t.Fatalf("/audit: %d %q", code, body)
	}
}

func TestPiggybackedGrantAndAction(t *testing.T) {
	// One message carrying both a promise request and an action (§6): the
	// action runs and the promise is granted in the same transaction.
	srv, _ := newTestServer(t, func(m *core.Manager) error {
		return seedPool(m, "w", 10)
	})
	c := &Client{BaseURL: srv.URL, Client: "c"}
	res, err := c.Exchange(bg,
		[]core.PromiseRequest{{Predicates: []core.Predicate{core.Quantity("w", 3)}}},
		nil,
		&protocol.WireAction{Name: "pool-level", Params: []protocol.Param{{Name: "pool", Value: "w"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Promises) != 1 || !res.Promises[0].Accepted {
		t.Fatalf("promises = %+v", res.Promises)
	}
	if res.ActionErr != nil || res.ActionResult != "10" {
		t.Fatalf("action: %q %v", res.ActionResult, res.ActionErr)
	}
}

// TestShardedServerConcurrentClients serves a sharded manager over HTTP —
// the daemon's production shape — and hammers it with parallel clients,
// each consuming its own pool under promise protection. The /audit
// endpoint must report healthy afterwards.
func TestShardedServerConcurrentClients(t *testing.T) {
	const workers = 8
	const iters = 25
	s, err := core.NewSharded(core.ShardedConfig{Shards: 4, DefaultDuration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	pools := make([]string, workers)
	for w := range pools {
		pools[w] = fmt.Sprintf("wire-%d", w)
		if err := s.CreatePool(pools[w], iters, nil); err != nil {
			t.Fatal(err)
		}
	}
	reg := service.NewRegistry()
	service.RegisterStandard(reg)
	srv := httptest.NewServer(NewServer(s, reg).Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := &Client{BaseURL: srv.URL, Client: fmt.Sprintf("http-%d", w)}
			pool := pools[w]
			for i := 0; i < iters; i++ {
				pr, err := c.RequestPromise(bg, []core.Predicate{core.Quantity(pool, 1)}, time.Hour)
				if err != nil {
					t.Error(err)
					return
				}
				if !pr.Accepted {
					t.Errorf("grant rejected: %s", pr.Reason)
					return
				}
				// The "pool" param routes the action to the owning shard.
				if _, err := c.Invoke(bg, []core.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
					"adjust-pool", map[string]string{"pool": pool, "delta": "-1"}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for _, pool := range pools {
		lvl, err := s.PoolLevel(pool)
		if err != nil {
			t.Fatal(err)
		}
		if lvl != 0 {
			t.Errorf("pool %s level = %d, want 0", pool, lvl)
		}
	}
	resp, err := srv.Client().Get(srv.URL + "/audit")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/audit = %d: %s", resp.StatusCode, body)
	}
}

func TestBatchOverHTTP(t *testing.T) {
	// One round trip carries a burst of grants (including a §4 upgrade
	// releasing an earlier promise) and a burst of usability checks.
	srv, _ := newTestServer(t, func(m *core.Manager) error {
		return seedPool(m, "bulk", 10)
	})
	c := &Client{BaseURL: srv.URL, Client: "loader"}

	first, err := c.RequestPromise(bg, []core.Predicate{core.Quantity("bulk", 10)}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Accepted {
		t.Fatalf("seed grant rejected: %s", first.Reason)
	}

	resps, err := c.GrantBatch(bg, "", []core.PromiseRequest{
		{RequestID: "up", Predicates: []core.Predicate{core.Quantity("bulk", 10)}, Releases: []string{first.PromiseID}},
		{RequestID: "no", Predicates: []core.Predicate{core.Quantity("bulk", 99)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 2 {
		t.Fatalf("got %d responses", len(resps))
	}
	if !resps[0].Accepted {
		t.Fatalf("upgrade rejected over the wire: %s", resps[0].Reason)
	}
	if resps[0].Correlation != "up" || resps[0].Expires.IsZero() {
		t.Fatalf("response 0 = %+v", resps[0])
	}
	if resps[1].Accepted {
		t.Fatal("over-capacity batch entry granted")
	}

	checks, err := c.CheckBatch(bg, "", []string{resps[0].PromiseID, first.PromiseID, "prm-nope"})
	if err != nil {
		t.Fatal(err)
	}
	if checks[0] != nil {
		t.Fatalf("fresh promise unusable: %v", checks[0])
	}
	if !errors.Is(checks[1], core.ErrPromiseReleased) {
		t.Fatalf("upgraded-away promise reports %v, want ErrPromiseReleased", checks[1])
	}
	if !errors.Is(checks[2], core.ErrPromiseNotFound) {
		t.Fatalf("unknown promise reports %v, want ErrPromiseNotFound", checks[2])
	}
}

func TestBatchOverHTTPSharded(t *testing.T) {
	// The same envelope against a sharded engine: cross-shard batch entries
	// come back as composite promises and check correctly.
	s, err := core.NewSharded(core.ShardedConfig{Shards: 4, DefaultDuration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	poolOn := func(shard int) string {
		for i := 0; ; i++ {
			name := fmt.Sprintf("bw-%d-%d", shard, i)
			if s.ShardOf(name) == shard {
				return name
			}
		}
	}
	a, b := poolOn(0), poolOn(3)
	for _, pool := range []string{a, b} {
		if err := s.CreatePool(pool, 10, nil); err != nil {
			t.Fatal(err)
		}
	}
	reg := service.NewRegistry()
	srv := httptest.NewServer(NewServer(s, reg).Handler())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, Client: "loader"}

	resps, err := c.GrantBatch(bg, "", []core.PromiseRequest{
		{RequestID: "solo", Predicates: []core.Predicate{core.Quantity(a, 2)}},
		{RequestID: "span", Predicates: []core.Predicate{core.Quantity(a, 2), core.Quantity(b, 2)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resps[0].Accepted || !resps[1].Accepted {
		t.Fatalf("batch rejected: %q / %q", resps[0].Reason, resps[1].Reason)
	}
	if !strings.HasPrefix(resps[1].PromiseID, "shp-") {
		t.Fatalf("cross-shard batch entry id = %q, want composite", resps[1].PromiseID)
	}
	checks, err := c.CheckBatch(bg, "", []string{resps[0].PromiseID, resps[1].PromiseID})
	if err != nil {
		t.Fatal(err)
	}
	for i, cerr := range checks {
		if cerr != nil {
			t.Fatalf("batch promise %d unusable: %v", i, cerr)
		}
	}
}

func TestBatchCannotCombineWithAction(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	env := &protocol.Envelope{}
	env.Header.Batch = &protocol.BatchRequest{}
	env.Body.Action = &protocol.WireAction{Name: "adjust-pool"}
	c := &Client{BaseURL: srv.URL, Client: "loader"}
	if _, err := c.Do(bg, env); err == nil || !strings.Contains(err.Error(), "batch-request") {
		t.Fatalf("combined batch+action err = %v, want bad-request naming batch-request", err)
	}
}

var bg = context.Background()
