package transport

// Server-side admission control: a bounded in-flight limit with a small
// bounded wait queue in front of the promise endpoint. Under pressure the
// server sheds load instead of queueing without bound — and it sheds with
// a policy, not blindly:
//
//   - brownout first: once the queue passes half full, tier-0 and
//     preemptible grant traffic (the workloads that declared themselves
//     displaceable, see core.PromiseRequest.Priority) is shed with 429
//     while higher-tier work still queues;
//   - a request whose context deadline would expire while it waits is
//     rejected immediately (503) rather than parked on a queue it cannot
//     survive;
//   - a full queue sheds everything (503).
//
// Every shed carries Retry-After, which transport.Client honors before
// its exponential backoff. Snapshot-served reads — pure check batches,
// /stats, /audit, SSE — bypass admission entirely: they are lock-free
// server-side and are exactly what operators need while shedding.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/protocol"
)

// ErrOverloaded is the typed rejection for requests shed by admission
// control, server-side and (reconstructed from the wire fault code)
// client-side after retries are exhausted.
var ErrOverloaded = errors.New("transport: server overloaded")

// AdmissionConfig bounds the promise endpoint's concurrency.
type AdmissionConfig struct {
	// MaxInFlight is the number of requests processed concurrently; <= 0
	// disables admission control entirely.
	MaxInFlight int
	// MaxQueue is the wait-queue bound; <= 0 means 2*MaxInFlight.
	// Brownout shedding of tier-0/preemptible grants starts at half
	// occupancy.
	MaxQueue int
	// RetryAfter is the hint stamped on shed responses; <= 0 means 1s.
	RetryAfter time.Duration
}

// AdmissionStats is the limiter's activity snapshot, embedded in the
// /stats JSON document.
type AdmissionStats struct {
	// Admitted counts requests that acquired a slot (queued or not).
	Admitted uint64 `json:"admitted"`
	// Queued counts admitted requests that had to wait for a slot.
	Queued uint64 `json:"queued"`
	// ShedBrownout counts tier-0/preemptible grants shed at half queue.
	ShedBrownout uint64 `json:"shed_brownout"`
	// ShedDeadline counts requests rejected because their context
	// deadline would have expired while queued.
	ShedDeadline uint64 `json:"shed_deadline"`
	// ShedFull counts requests shed because the queue was full.
	ShedFull uint64 `json:"shed_full"`
	// ShedByTier breaks every shed down by the request's highest grant
	// tier (key "none" for envelopes with no grants).
	ShedByTier map[string]uint64 `json:"shed_by_tier,omitempty"`
	// InFlight and Waiting are instantaneous gauges.
	InFlight int `json:"in_flight"`
	Waiting  int `json:"waiting"`
}

// shedError is the server-side overload rejection: a status, a typed
// sentinel and the Retry-After hint.
type shedError struct {
	status     int
	retryAfter time.Duration
	why        string
}

func (e *shedError) Error() string { return fmt.Sprintf("%v: %s", ErrOverloaded, e.why) }
func (e *shedError) Unwrap() error { return ErrOverloaded }

// admission is the limiter. The zero/nil limiter admits everything.
type admission struct {
	cfg   AdmissionConfig
	slots chan struct{}

	mu      sync.Mutex
	waiting int
	byTier  map[string]uint64

	admitted     atomic.Uint64
	queuedTotal  atomic.Uint64
	shedBrownout atomic.Uint64
	shedDeadline atomic.Uint64
	shedFull     atomic.Uint64

	// ewmaNs estimates per-request service time for the deadline-aware
	// queue check.
	ewmaNs atomic.Int64

	clock func() time.Time // test seam; nil means time.Now
}

func newAdmission(cfg AdmissionConfig) *admission {
	if cfg.MaxInFlight <= 0 {
		return nil
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 2 * cfg.MaxInFlight
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	return &admission{
		cfg:    cfg,
		slots:  make(chan struct{}, cfg.MaxInFlight),
		byTier: make(map[string]uint64),
	}
}

func (a *admission) now() time.Time {
	if a.clock != nil {
		return a.clock()
	}
	return time.Now()
}

// envelopeClass summarizes what admission needs to know about a request.
type envelopeClass struct {
	// checkOnly: a pure read (check-only batch); bypasses admission.
	checkOnly bool
	// sheddable: carries grants, every one of them tier-0 or preemptible,
	// and nothing else that must not be dropped (releases, actions) —
	// the brownout candidates.
	sheddable bool
	// tier is the highest grant tier in the envelope ("none" without
	// grants), for the shed-by-tier counters.
	tier string
}

// classify inspects a decoded envelope. Wire requests carry priority and
// preemptible directly, so no core conversion is needed here.
func classify(env *protocol.Envelope) envelopeClass {
	h := &env.Header
	var grants []protocol.WireRequest
	hasOther := h.Environment != nil || env.Body.Action != nil ||
		h.Reserve != nil || h.Confirm != nil || h.Abort != nil
	if h.Promise != nil {
		grants = h.Promise.Requests
	}
	if h.Batch != nil {
		grants = append(grants, h.Batch.Grants...)
		hasOther = hasOther || len(h.Batch.Releases) > 0 || len(h.Batch.Actions) > 0
		if len(grants) == 0 && !hasOther && len(h.Batch.Checks) > 0 {
			return envelopeClass{checkOnly: true, tier: "none"}
		}
	}
	cls := envelopeClass{tier: "none"}
	if len(grants) == 0 {
		return cls
	}
	maxTier, allLow := grants[0].Priority, true
	for _, g := range grants {
		if g.Priority > maxTier {
			maxTier = g.Priority
		}
		if g.Priority > 0 && !g.Preemptible {
			allLow = false
		}
		if len(g.Releases) > 0 {
			// A grant that piggybacks releases (§4 release-with-grant)
			// frees capacity; shedding it would hold resources longer.
			allLow = false
		}
	}
	cls.tier = strconv.Itoa(maxTier)
	cls.sheddable = allLow && !hasOther
	return cls
}

// acquire admits the request, queues it, or sheds it. On success the
// returned release func must be called when the request finishes; on shed
// it returns a *shedError.
func (a *admission) acquire(ctx context.Context, cls envelopeClass) (func(), error) {
	if a == nil || cls.checkOnly {
		return func() {}, nil
	}
	select {
	case a.slots <- struct{}{}:
		return a.admit(), nil
	default:
	}

	a.mu.Lock()
	waiting := a.waiting
	switch {
	case waiting >= a.cfg.MaxQueue:
		a.byTier[cls.tier]++
		a.mu.Unlock()
		a.shedFull.Add(1)
		return nil, &shedError{status: http.StatusServiceUnavailable, retryAfter: a.cfg.RetryAfter, why: "queue full"}
	case cls.sheddable && waiting*2 >= a.cfg.MaxQueue:
		// Brownout: the displaceable tiers go first, at half occupancy,
		// so tier-1+ work still has queue room under pressure.
		a.byTier[cls.tier]++
		a.mu.Unlock()
		a.shedBrownout.Add(1)
		return nil, &shedError{status: http.StatusTooManyRequests, retryAfter: a.cfg.RetryAfter, why: "brownout: low-tier grants shed under pressure"}
	}
	// Deadline-aware queuing: estimate the wait from the queue depth and
	// the observed service time; a request that cannot survive it is
	// refused now, not after its deadline burns on the queue.
	if dl, ok := ctx.Deadline(); ok {
		if est := time.Duration((int64(waiting)/int64(a.cfg.MaxInFlight) + 1) * a.ewmaNs.Load()); est > 0 {
			if a.now().Add(est).After(dl) {
				a.byTier[cls.tier]++
				a.mu.Unlock()
				a.shedDeadline.Add(1)
				return nil, &shedError{status: http.StatusServiceUnavailable, retryAfter: a.cfg.RetryAfter, why: "deadline would expire while queued"}
			}
		}
	}
	a.waiting++
	a.mu.Unlock()
	a.queuedTotal.Add(1)

	select {
	case a.slots <- struct{}{}:
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
		return a.admit(), nil
	case <-ctx.Done():
		a.mu.Lock()
		a.waiting--
		a.byTier[cls.tier]++
		a.mu.Unlock()
		a.shedDeadline.Add(1)
		return nil, &shedError{status: http.StatusServiceUnavailable, retryAfter: a.cfg.RetryAfter, why: "deadline expired while queued"}
	}
}

// admit records the admission and returns the slot-release func, which
// also feeds the service-time estimate.
func (a *admission) admit() func() {
	a.admitted.Add(1)
	start := a.now()
	return func() {
		obs := a.now().Sub(start).Nanoseconds()
		// EWMA with alpha 1/4, nudged so the first observation seeds it.
		old := a.ewmaNs.Load()
		if old == 0 {
			a.ewmaNs.Store(obs)
		} else {
			a.ewmaNs.Store(old - old/4 + obs/4)
		}
		<-a.slots
	}
}

// snapshot returns the stats. Nil-safe: a disabled limiter reports zeros.
func (a *admission) snapshot() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	st := AdmissionStats{
		Admitted:     a.admitted.Load(),
		Queued:       a.queuedTotal.Load(),
		ShedBrownout: a.shedBrownout.Load(),
		ShedDeadline: a.shedDeadline.Load(),
		ShedFull:     a.shedFull.Load(),
		InFlight:     len(a.slots),
	}
	a.mu.Lock()
	st.Waiting = a.waiting
	if len(a.byTier) > 0 {
		st.ShedByTier = make(map[string]uint64, len(a.byTier))
		for k, v := range a.byTier {
			st.ShedByTier[k] = v
		}
	}
	a.mu.Unlock()
	return st
}

// writeShed renders a shed as its HTTP response: status, Retry-After and
// the overloaded fault code so clients reconstruct ErrOverloaded.
func writeShed(w http.ResponseWriter, e *shedError) {
	w.Header().Set("Retry-After", strconv.Itoa(int((e.retryAfter+time.Second-1)/time.Second)))
	w.Header().Set(FaultHeader, protocol.FaultOverloaded)
	http.Error(w, e.Error(), e.status)
}
