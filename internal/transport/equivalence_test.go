package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/predicate"
	"repro/internal/service"
)

// This file extends the randomized equivalence programme of
// internal/core/equivalence_test.go across the wire: a local engine and an
// identical engine fronted by a transport.Client over HTTP are driven
// through the same workload, and every grant, release, check and batch must
// come out identically — the executable form of the claim that
// transport.Client is just another Engine. Divergence here means a wire
// encode/decode, fault-mapping or batching bug, since the engines behind
// both faces are the same code.

// wireWorld drives the same workload through a direct engine and a
// client-fronted twin.
type wireWorld struct {
	t      *testing.T
	rng    *rand.Rand
	fake   *clock.Fake
	local  *core.ShardedManager // driven directly
	remote *core.ShardedManager // fronted by client; only swept/seeded directly
	client *Client
	pools  []string
	insts  []string
	exprs  []string
	pairs  []wirePair
}

type wirePair struct {
	client   string
	localID  string
	remoteID string
}

func sentinelClass(err error) string {
	switch {
	case err == nil:
		return "usable"
	case errors.Is(err, core.ErrPromiseNotFound):
		return "not-found"
	case errors.Is(err, core.ErrPromiseReleased):
		return "released"
	case errors.Is(err, core.ErrPromiseExpired):
		return "expired"
	case errors.Is(err, core.ErrPromiseViolated):
		return "violated"
	case errors.Is(err, core.ErrBadRequest):
		return "bad-request"
	default:
		return "error: " + err.Error()
	}
}

func newWireWorld(t *testing.T, seed int64) *wireWorld {
	fake := clock.NewFake(time.Date(2007, 1, 7, 0, 0, 0, 0, time.UTC))
	reg := service.NewRegistry()
	service.RegisterStandard(reg)
	mk := func() *core.ShardedManager {
		s, err := core.NewSharded(core.ShardedConfig{
			Shards: 4, Clock: fake, DefaultDuration: time.Hour, Actions: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	w := &wireWorld{
		t:      t,
		rng:    rand.New(rand.NewSource(seed)),
		fake:   fake,
		local:  mk(),
		remote: mk(),
		exprs: []string{
			"gpu", "not gpu", "tier = 1", "tier >= 1",
			"zone = 2", "gpu and tier >= 1", "tier = 2 or zone = 1",
		},
	}
	srv := httptest.NewServer(NewServer(w.remote, reg).Handler())
	t.Cleanup(srv.Close)
	w.client = &Client{BaseURL: srv.URL}

	for i := 0; i < 4; i++ {
		pool := fmt.Sprintf("wire-pool-%d", i)
		cap := int64(6 + w.rng.Intn(10))
		for _, s := range []*core.ShardedManager{w.local, w.remote} {
			if err := s.CreatePool(pool, cap, nil); err != nil {
				t.Fatal(err)
			}
		}
		w.pools = append(w.pools, pool)
	}
	for i := 0; i < 12; i++ {
		inst := fmt.Sprintf("wire-inst-%d", i)
		props := map[string]predicate.Value{
			"gpu":  predicate.Bool(w.rng.Intn(2) == 0),
			"tier": predicate.Int(int64(w.rng.Intn(3))),
			"zone": predicate.Int(int64(w.rng.Intn(4))),
		}
		for _, s := range []*core.ShardedManager{w.local, w.remote} {
			if err := s.CreateInstance(inst, props); err != nil {
				t.Fatal(err)
			}
		}
		w.insts = append(w.insts, inst)
	}
	return w
}

func (w *wireWorld) randPredicate() core.Predicate {
	switch w.rng.Intn(5) {
	case 0, 1:
		return core.Quantity(w.pools[w.rng.Intn(len(w.pools))], int64(1+w.rng.Intn(4)))
	case 2:
		return core.Named(w.insts[w.rng.Intn(len(w.insts))])
	default:
		return core.MustProperty(w.exprs[w.rng.Intn(len(w.exprs))])
	}
}

var wireClients = []string{"alice", "bob"}

// grant sends the same message through both faces and asserts identical
// accept/reject and rejection reasons.
func (w *wireWorld) grant() {
	t := w.t
	client := wireClients[w.rng.Intn(len(wireClients))]
	nPred := 1 + w.rng.Intn(3)
	preds := make([]core.Predicate, nPred)
	for p := range preds {
		preds[p] = w.randPredicate()
	}
	var relL, relR []string
	if owned := w.clientPairs(client); len(owned) > 0 && w.rng.Intn(4) == 0 {
		pick := w.pairs[owned[w.rng.Intn(len(owned))]]
		relL, relR = []string{pick.localID}, []string{pick.remoteID}
	}
	var dur time.Duration
	if w.rng.Intn(5) == 0 {
		dur = time.Duration(1+w.rng.Intn(3)) * time.Minute
	}
	respL, errL := w.local.Execute(bg, core.Request{Client: client, PromiseRequests: []core.PromiseRequest{
		{Predicates: preds, Releases: relL, Duration: dur},
	}})
	respR, errR := w.client.Execute(bg, core.Request{Client: client, PromiseRequests: []core.PromiseRequest{
		{Predicates: preds, Releases: relR, Duration: dur},
	}})
	if errL != nil || errR != nil {
		t.Fatalf("execute errors: local=%v wire=%v", errL, errR)
	}
	pl, pr := respL.Promises[0], respR.Promises[0]
	if pl.Accepted != pr.Accepted {
		t.Fatalf("grant diverged: local=%v (%s) wire=%v (%s)\npredicates: %v",
			pl.Accepted, pl.Reason, pr.Accepted, pr.Reason, preds)
	}
	if !pl.Accepted && pl.Reason != pr.Reason {
		t.Fatalf("rejection reasons diverged:\nlocal: %s\nwire:  %s", pl.Reason, pr.Reason)
	}
	if len(pl.Counter) != len(pr.Counter) {
		t.Fatalf("counter-offers diverged: local=%v wire=%v", pl.Counter, pr.Counter)
	}
	if pl.Accepted {
		w.pairs = append(w.pairs, wirePair{client: client, localID: pl.PromiseID, remoteID: pr.PromiseID})
	}
}

func (w *wireWorld) clientPairs(client string) []int {
	var out []int
	for i, p := range w.pairs {
		if p.client == client {
			out = append(out, i)
		}
	}
	return out
}

// release hands back one tracked pair through both faces (Engine.Release on
// each) and asserts the same sentinel.
func (w *wireWorld) release() {
	if len(w.pairs) == 0 {
		return
	}
	pick := w.pairs[w.rng.Intn(len(w.pairs))]
	errL := w.local.Release(bg, pick.client, pick.localID)
	errR := w.client.Release(bg, pick.client, pick.remoteID)
	if cl, cr := sentinelClass(errL), sentinelClass(errR); cl != cr {
		w.t.Fatalf("release of (%s, %s) diverged: local=%s wire=%s", pick.localID, pick.remoteID, cl, cr)
	}
}

// batch runs a mixed batch — grants plus checks — through GrantBatch /
// CheckBatch on both faces.
func (w *wireWorld) batch() {
	t := w.t
	client := wireClients[w.rng.Intn(len(wireClients))]
	perm := w.rng.Perm(len(w.pools))
	n := 2 + w.rng.Intn(2)
	var reqs []core.PromiseRequest
	for k := 0; k < n; k++ {
		reqs = append(reqs, core.PromiseRequest{
			Predicates: []core.Predicate{core.Quantity(w.pools[perm[k]], int64(1+w.rng.Intn(3)))},
		})
	}
	respL, errL := w.local.GrantBatch(bg, client, reqs)
	respR, errR := w.client.GrantBatch(bg, client, reqs)
	if errL != nil || errR != nil {
		t.Fatalf("batch errors: local=%v wire=%v", errL, errR)
	}
	for i := range respL {
		if respL[i].Accepted != respR[i].Accepted {
			t.Fatalf("batch request %d diverged: local=%v (%s) wire=%v (%s)",
				i, respL[i].Accepted, respL[i].Reason, respR[i].Accepted, respR[i].Reason)
		}
		if respL[i].Accepted {
			w.pairs = append(w.pairs, wirePair{client: client, localID: respL[i].PromiseID, remoteID: respR[i].PromiseID})
		}
	}
}

// action runs the same named action through both faces under a tracked
// pair's environment.
func (w *wireWorld) action() {
	t := w.t
	if len(w.pairs) == 0 {
		return
	}
	pick := w.pairs[w.rng.Intn(len(w.pairs))]
	pool := w.pools[w.rng.Intn(len(w.pools))]
	respL, errL := w.local.Execute(bg, core.Request{
		Client:       pick.client,
		Env:          []core.EnvEntry{{PromiseID: pick.localID}},
		ActionName:   "pool-level",
		ActionParams: map[string]string{"pool": pool},
	})
	respR, errR := w.client.Execute(bg, core.Request{
		Client:       pick.client,
		Env:          []core.EnvEntry{{PromiseID: pick.remoteID}},
		ActionName:   "pool-level",
		ActionParams: map[string]string{"pool": pool},
	})
	if errL != nil || errR != nil {
		t.Fatalf("action errors: local=%v wire=%v", errL, errR)
	}
	if cl, cr := sentinelClass(respL.ActionErr), sentinelClass(respR.ActionErr); cl != cr {
		t.Fatalf("action outcome diverged: local=%s wire=%s", cl, cr)
	}
	if respL.ActionErr == nil && respL.ActionResult != respR.ActionResult {
		t.Fatalf("pool-level diverged: local=%v wire=%v", respL.ActionResult, respR.ActionResult)
	}
}

// advance moves the shared clock and sweeps both engines.
func (w *wireWorld) advance() {
	w.fake.Advance(time.Duration(30+w.rng.Intn(90)) * time.Second)
	if err := w.local.Sweep(); err != nil {
		w.t.Fatal(err)
	}
	if err := w.remote.Sweep(); err != nil {
		w.t.Fatal(err)
	}
}

// verify cross-checks every tracked pair's sentinel through CheckBatch on
// both faces.
func (w *wireWorld) verify() {
	t := w.t
	byClient := make(map[string][]int)
	for i, p := range w.pairs {
		byClient[p.client] = append(byClient[p.client], i)
	}
	for client, idxs := range byClient {
		lIDs := make([]string, len(idxs))
		rIDs := make([]string, len(idxs))
		for k, i := range idxs {
			lIDs[k] = w.pairs[i].localID
			rIDs[k] = w.pairs[i].remoteID
		}
		errsL, err := w.local.CheckBatch(bg, client, lIDs)
		if err != nil {
			t.Fatal(err)
		}
		errsR, err := w.client.CheckBatch(bg, client, rIDs)
		if err != nil {
			t.Fatal(err)
		}
		for k := range idxs {
			cl, cr := sentinelClass(errsL[k]), sentinelClass(errsR[k])
			if cl != cr {
				t.Fatalf("pair (%s, %s) diverged: local=%s wire=%s", lIDs[k], rIDs[k], cl, cr)
			}
		}
	}
}

func (w *wireWorld) run(iters int) {
	for it := 0; it < iters; it++ {
		switch w.rng.Intn(10) {
		case 0, 1, 2, 3:
			w.grant()
		case 4, 5:
			w.release()
		case 6:
			w.batch()
		case 7:
			w.action()
		case 8:
			w.advance()
		default:
			w.verify()
		}
		if len(w.pairs) > 48 {
			w.pairs = w.pairs[len(w.pairs)-32:]
		}
	}
	w.verify()
	for _, s := range []*core.ShardedManager{w.local, w.remote} {
		rep, err := s.Audit()
		if err != nil {
			w.t.Fatal(err)
		}
		if !rep.Healthy() {
			w.t.Fatalf("audit unhealthy: %s", rep)
		}
	}
	// The remote engine's audit is also reachable through the client face.
	rep, err := w.client.Audit()
	if err != nil {
		w.t.Fatal(err)
	}
	if !rep.Healthy() {
		w.t.Fatalf("client-face audit unhealthy: %s", rep)
	}
}

// TestWireEquivalence is the acceptance gate for the unified Engine
// surface's remote face: transport.Client must accept and reject exactly
// like the in-process engine it fronts, across randomized workloads.
func TestWireEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			newWireWorld(t, seed).run(150)
		})
	}
}
