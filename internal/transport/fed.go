// Federation over HTTP: the reserve / confirm / abort elements of a
// cross-node two-phase grant (see internal/core/fed.go for the node-side
// machinery and internal/cluster for the caller). The elements ride the
// same POST /promises endpoint as ordinary envelopes; GET /cluster/summary
// exposes the node's candidate summary for cluster-level pre-filtering.
package transport

import (
	"context"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/protocol"
)

// SummaryEndpoint serves the node's federation candidate summary as JSON.
const SummaryEndpoint = "/cluster/summary"

// FedEngine is the node-side federation surface. core.ShardedManager
// implements it; single-store managers do not, and a server wrapping one
// answers federation traffic with a not-found fault.
type FedEngine interface {
	FedReserve(ctx context.Context, client string, spec core.FedReserveSpec) (*core.FedReserveResult, error)
	FedConfirm(ctx context.Context, sessionID string, spec core.FedConfirmSpec) ([]core.GrantedPart, error)
	FedAbort(sessionID string)
	FedSummary() core.NodeSummary
}

var _ FedEngine = (*core.ShardedManager)(nil)

// fedEngine resolves the manager's federation surface, or nil.
func (s *Server) fedEngine() FedEngine {
	fe, _ := s.manager.(FedEngine)
	return fe
}

// handleFed answers an envelope carrying a reserve, confirm or abort
// element. Federation elements travel alone — they never combine with
// promise headers, batches or actions.
func (s *Server) handleFed(ctx context.Context, w http.ResponseWriter, in *protocol.Envelope) {
	fe := s.fedEngine()
	if fe == nil {
		httpFault(w, fmt.Errorf("%w: node does not serve federation", core.ErrBadRequest), http.StatusNotFound)
		return
	}
	if in.Header.Promise != nil || in.Header.Environment != nil || in.Header.Batch != nil || in.Body.Action != nil {
		http.Error(w, "transport: federation elements cannot combine with promise, environment, batch or action elements", http.StatusBadRequest)
		return
	}
	out := &protocol.Envelope{}
	switch {
	case in.Header.Reserve != nil:
		spec, err := protocol.ReserveFromWire(in.Header.Reserve)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := fe.FedReserve(ctx, in.Header.Client, spec)
		if err != nil {
			engineFault(w, err)
			return
		}
		out.Header.ReserveResult = protocol.ReserveResultToWire(res)
	case in.Header.Confirm != nil:
		spec, err := protocol.ConfirmFromWire(in.Header.Confirm)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		parts, err := fe.FedConfirm(ctx, in.Header.Confirm.Session, spec)
		if err != nil {
			engineFault(w, err)
			return
		}
		out.Header.ConfirmResult = protocol.ConfirmResultToWire(parts)
	case in.Header.Abort != nil:
		fe.FedAbort(in.Header.Abort.Session)
		out.Header.AbortResult = &protocol.AbortResponse{OK: true}
	}
	w.Header().Set("Content-Type", "application/xml")
	if err := protocol.Encode(w, out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleSummary serves GET /cluster/summary.
func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	fe := s.fedEngine()
	if fe == nil {
		http.Error(w, "transport: node does not serve federation", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, fe.FedSummary())
}

// FedReserve opens a federated session on the remote node: this node's
// slice of predicates and releases reserves under the node's shard locks
// until confirmed, aborted, or the server-side TTL fires.
func (c *Client) FedReserve(ctx context.Context, client string, spec core.FedReserveSpec) (*core.FedReserveResult, error) {
	env := &protocol.Envelope{}
	env.Header.Client = c.clientID(client)
	env.Header.Reserve = protocol.ReserveToWire(spec)
	reply, err := c.Do(ctx, env)
	if err != nil {
		return nil, err
	}
	if reply.Header.ReserveResult == nil {
		return nil, fmt.Errorf("transport: reserve reply carries no reserve-response element")
	}
	return protocol.ReserveResultFromWire(reply.Header.ReserveResult)
}

// FedConfirm applies the caller's plan to a reserved session and commits.
func (c *Client) FedConfirm(ctx context.Context, sessionID string, spec core.FedConfirmSpec) ([]core.GrantedPart, error) {
	env := &protocol.Envelope{}
	env.Header.Confirm = protocol.ConfirmToWire(sessionID, spec)
	reply, err := c.Do(ctx, env)
	if err != nil {
		return nil, err
	}
	if reply.Header.ConfirmResult == nil {
		return nil, fmt.Errorf("transport: confirm reply carries no confirm-response element")
	}
	return protocol.ConfirmResultFromWire(reply.Header.ConfirmResult)
}

// FedAbort rolls a reserved session back. Idempotent server-side, so the
// client retries it like a read.
func (c *Client) FedAbort(ctx context.Context, sessionID string) error {
	env := &protocol.Envelope{}
	env.Header.Abort = &protocol.AbortRequest{Session: sessionID}
	reply, err := c.Do(ctx, env)
	if err != nil {
		return err
	}
	if reply.Header.AbortResult == nil {
		return fmt.Errorf("transport: abort reply carries no abort-response element")
	}
	return nil
}

// FedSummary fetches the node's merged candidate summary.
func (c *Client) FedSummary(ctx context.Context) (core.NodeSummary, error) {
	var sum core.NodeSummary
	err := c.getJSON(ctx, SummaryEndpoint+"?format=json", &sum)
	return sum, err
}
