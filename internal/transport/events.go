package transport

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// This file carries the engine's subscription face over the wire as
// Server-Sent Events, so transport.Client.Watch satisfies the same
// interface as the in-process engines and a plain `curl` can follow a
// manager's lifecycle stream.
//
// The SSE contract (GET /events):
//
//	query parameters
//	    client=<id>        only events for this client's promises
//	    id=<promise-id>    only these promises (repeatable)
//	    type=<event-type>  only these types (repeatable)
//	    policy=disconnect  close the stream instead of dropping when slow
//	    buffer=<n>         server-side subscription buffer (default 64)
//	    after=<seq>        resume: replay retained events with Seq > seq
//
//	response      text/event-stream; each event is
//	    id: <seq>
//	    event: <type>
//	    data: <core.Event as JSON>
//
// The standard `Last-Event-ID` request header is honoured as `after`, so an
// SSE client that reconnects resumes where it stopped; the bus retains a
// bounded ring of recent events, and resuming past its horizon shows up as
// a gap in the data's seq values.

// EventsEndpoint is the lifecycle event stream's HTTP path.
const EventsEndpoint = "/events"

// handleEvents serves one SSE subscription until the client disconnects or
// (policy=disconnect) it falls behind.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "transport: streaming unsupported", http.StatusInternalServerError)
		return
	}
	opts, err := watchOptionsFromRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ch, err := s.manager.Watch(r.Context(), opts)
	if err != nil {
		httpFault(w, err, http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// An immediate comment line tells the client the subscription is live
	// before any event fires.
	fmt.Fprint(w, ": watching\n\n")
	fl.Flush()
	for ev := range ch {
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return
		}
		fl.Flush()
	}
	// The engine closed the subscription while the request is still live:
	// that is the slow-subscriber disconnect policy. Tell the client
	// explicitly, so it can fail loudly instead of treating the EOF as a
	// transient break and silently reconnecting.
	if r.Context().Err() == nil {
		fmt.Fprint(w, "event: disconnect\ndata: {}\n\n")
		fl.Flush()
	}
}

// watchOptionsFromRequest decodes the SSE query contract.
func watchOptionsFromRequest(r *http.Request) (core.WatchOptions, error) {
	q := r.URL.Query()
	opts := core.WatchOptions{
		Client:     q.Get("client"),
		PromiseIDs: q["id"],
	}
	for _, t := range q["type"] {
		opts.Types = append(opts.Types, core.EventType(t))
	}
	if b := q.Get("buffer"); b != "" {
		n, err := strconv.Atoi(b)
		if err != nil || n < 0 {
			return opts, fmt.Errorf("transport: bad buffer %q", b)
		}
		opts.Buffer = n
	}
	if q.Get("policy") == "disconnect" {
		opts.SlowPolicy = core.SlowDisconnect
	}
	after := r.Header.Get("Last-Event-ID")
	if a := q.Get("after"); a != "" {
		after = a
	}
	if after != "" {
		seq, err := strconv.ParseUint(after, 10, 64)
		if err != nil {
			return opts, fmt.Errorf("transport: bad resume cursor %q", after)
		}
		opts.AfterSeq, opts.Replay = seq, true
	}
	return opts, nil
}

// Watch implements the Engine surface over SSE: the returned channel
// carries the same event sequence the fronted engine publishes, in the same
// order, until ctx is cancelled (the channel then closes). A broken stream
// reconnects automatically with a Last-Event-ID cursor, so once any event
// has been delivered (or opts.Replay set), events published while
// disconnected are replayed from the server's retained ring rather than
// lost; a cursorless live-tail reconnects live-only. opts.SlowPolicy and
// opts.Buffer apply server-side — a server-side disconnect closes this
// channel too — and the local channel additionally holds opts.Buffer
// events.
func (c *Client) Watch(ctx context.Context, opts core.WatchOptions) (<-chan core.Event, error) {
	if opts.Buffer < 0 {
		return nil, fmt.Errorf("%w: negative watch buffer %d", core.ErrBadRequest, opts.Buffer)
	}
	if opts.Buffer == 0 {
		opts.Buffer = 64
	}
	// Dial synchronously so a bad URL or rejected options fail the call,
	// not the stream.
	resp, err := c.dialEvents(ctx, opts, opts.AfterSeq, opts.Replay)
	if err != nil {
		return nil, err
	}
	out := make(chan core.Event, opts.Buffer)
	go func() {
		defer close(out)
		var lastSeq uint64
		if opts.Replay {
			lastSeq = opts.AfterSeq
		}
		for {
			last, ok := c.streamEvents(ctx, resp, lastSeq, out)
			lastSeq = last
			resp = nil
			if !ok || ctx.Err() != nil {
				return
			}
			// Transient break: reconnect after a short backoff. With a
			// cursor (an event was seen, or the caller asked for replay)
			// the retained ring resumes the stream; a cursorless live-tail
			// subscription reconnects live-only — replaying would deliver
			// history from before the subscription ever existed.
			replay := opts.Replay || lastSeq > 0
			select {
			case <-ctx.Done():
				return
			case <-time.After(200 * time.Millisecond):
			}
			r, err := c.dialEvents(ctx, opts, lastSeq, replay)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				continue
			}
			resp = r
		}
	}()
	return out, nil
}

// dialEvents opens one SSE connection; with replay set the server replays
// retained events past cursor first (the Last-Event-ID resume).
func (c *Client) dialEvents(ctx context.Context, opts core.WatchOptions, cursor uint64, replay bool) (*http.Response, error) {
	q := url.Values{}
	if opts.Client != "" {
		q.Set("client", opts.Client)
	}
	for _, id := range opts.PromiseIDs {
		q.Add("id", id)
	}
	for _, t := range opts.Types {
		q.Add("type", string(t))
	}
	if opts.SlowPolicy == core.SlowDisconnect {
		q.Set("policy", "disconnect")
	}
	q.Set("buffer", strconv.Itoa(opts.Buffer))
	if replay {
		q.Set("after", strconv.FormatUint(cursor, 10))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+EventsEndpoint+"?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		msg := new(strings.Builder)
		_, _ = fmt.Fprintf(msg, "transport: %s", resp.Status)
		buf := bufio.NewScanner(resp.Body)
		if buf.Scan() {
			fmt.Fprintf(msg, ": %s", strings.TrimSpace(buf.Text()))
		}
		return nil, fmt.Errorf("%s", msg.String())
	}
	return resp, nil
}

// streamEvents decodes one SSE connection into out until it breaks or ctx
// is cancelled. It returns the last sequence number delivered and whether
// the caller should reconnect.
func (c *Client) streamEvents(ctx context.Context, resp *http.Response, lastSeq uint64, out chan<- core.Event) (uint64, bool) {
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var name, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			name = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "":
			if name == "disconnect" {
				// The server applied the slow-subscriber disconnect
				// policy: close, like an in-process subscription would.
				return lastSeq, false
			}
			if data == "" {
				name = ""
				continue // heartbeat comment blocks carry no data
			}
			var ev core.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				return lastSeq, false // protocol corruption: do not resume
			}
			name, data = "", ""
			if ev.Seq <= lastSeq {
				continue // duplicate from an overlapping replay
			}
			select {
			case out <- ev:
				lastSeq = ev.Seq
			case <-ctx.Done():
				return lastSeq, false
			}
		}
	}
	return lastSeq, ctx.Err() == nil
}
