// Package transport deploys the Figure 2 prototype architecture (§8) over
// HTTP: a Server exposes a promise manager and its application services at
// a single endpoint; a Client sends protocol envelopes carrying promise
// headers and action bodies. "The client adds promises header messages to
// its normal service requests and sends them to the promise manager for
// processing. The promise manager then does its work and passes the request
// on to the application."
//
// The package also provides RemoteSupplier, a core.Supplier backed by a
// Client, so delegation chains (§5) span processes.
package transport

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/service"
)

// Endpoint is the promise manager's HTTP path.
const Endpoint = "/promises"

// Engine is the manager-side surface the transport needs. Both the
// single-store core.Manager and the sharded core.ShardedManager implement
// it, so a daemon picks its concurrency model at construction time without
// the transport caring.
type Engine interface {
	Execute(core.Request) (*core.Response, error)
	GrantBatch(client string, reqs []core.PromiseRequest) ([]core.PromiseResponse, error)
	CheckBatch(client string, ids []string) []error
	Stats() core.Stats
	Audit() (*core.AuditReport, error)
}

// Server adapts a promise manager and a service registry to HTTP.
type Server struct {
	manager  Engine
	registry *service.Registry
}

// NewServer returns a Server for manager and registry.
func NewServer(manager Engine, registry *service.Registry) *Server {
	return &Server{manager: manager, registry: registry}
}

// Handler returns the http.Handler exposing the promise endpoint plus two
// read-only operational endpoints:
//
//	GET /stats  — the manager's activity counters (text)
//	GET /audit  — a full consistency audit (text; 500 when unhealthy)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+Endpoint, s.handle)
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, s.manager.Stats())
	})
	mux.HandleFunc("GET /audit", func(w http.ResponseWriter, _ *http.Request) {
		rep, err := s.manager.Audit()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !rep.Healthy() {
			w.WriteHeader(http.StatusInternalServerError)
		}
		fmt.Fprintln(w, rep)
	})
	return mux
}

func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	in, err := protocol.Decode(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if in.Header.Batch != nil {
		s.handleBatch(w, in)
		return
	}
	req := core.Request{Client: in.Header.Client}
	if in.Header.Promise != nil {
		for _, wr := range in.Header.Promise.Requests {
			pr, err := protocol.RequestFromWire(wr)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			req.PromiseRequests = append(req.PromiseRequests, pr)
		}
	}
	req.Env = protocol.EnvFromWire(in.Header.Environment)
	if in.Body.Action != nil {
		handler, err := s.registry.Resolve(in.Body.Action.Name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		params := in.Body.Action.ParamMap()
		req.Action = func(ac *core.ActionContext) (any, error) {
			return handler(params, ac)
		}
		// The standard handlers name their resources in the "pool" and
		// "instance" params; surface them so a sharded engine routes the
		// action to the owning shard (the single-store engine ignores this).
		if p := params["pool"]; p != "" {
			req.Resources = append(req.Resources, p)
		}
		if p := params["instance"]; p != "" {
			req.Resources = append(req.Resources, p)
		}
	}

	resp, err := s.manager.Execute(req)
	if err != nil {
		// Malformed request (e.g. missing client); internal failures also
		// land here and surface as 500s via the fault-free error path.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	out := &protocol.Envelope{}
	if len(resp.Promises) > 0 {
		out.Header.Promise = &protocol.PromiseHeader{}
		for _, pr := range resp.Promises {
			out.Header.Promise.Responses = append(out.Header.Promise.Responses, protocol.ResponseToWire(pr))
		}
	}
	if resp.ActionErr != nil {
		out.Body.Fault = protocol.FaultFromError(resp.ActionErr)
	} else if s, ok := resp.ActionResult.(string); ok {
		out.Body.Result = s
	}
	w.Header().Set("Content-Type", "application/xml")
	if err := protocol.Encode(w, out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleBatch answers a <batch-request> envelope: all grants run through
// the engine's batched grant path (one lock acquisition per shard set),
// then all checks, and the results ride back in one <batch-response>.
func (s *Server) handleBatch(w http.ResponseWriter, in *protocol.Envelope) {
	if in.Header.Promise != nil || in.Header.Environment != nil || in.Body.Action != nil {
		http.Error(w, "transport: batch-request cannot combine with promise, environment or action elements", http.StatusBadRequest)
		return
	}
	batch := in.Header.Batch
	reqs := make([]core.PromiseRequest, 0, len(batch.Grants))
	for _, wr := range batch.Grants {
		pr, err := protocol.RequestFromWire(wr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		reqs = append(reqs, pr)
	}
	out := &protocol.Envelope{}
	out.Header.BatchResult = &protocol.BatchResponse{}
	if len(reqs) > 0 {
		resps, err := s.manager.GrantBatch(in.Header.Client, reqs)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, pr := range resps {
			out.Header.BatchResult.Responses = append(out.Header.BatchResult.Responses, protocol.ResponseToWire(pr))
		}
	}
	if len(batch.Checks) > 0 {
		ids := make([]string, len(batch.Checks))
		for i, c := range batch.Checks {
			ids[i] = c.ID
		}
		for i, err := range s.manager.CheckBatch(in.Header.Client, ids) {
			out.Header.BatchResult.Checks = append(out.Header.BatchResult.Checks,
				protocol.CheckResult{ID: ids[i], Fault: protocol.FaultFromError(err)})
		}
	}
	w.Header().Set("Content-Type", "application/xml")
	if err := protocol.Encode(w, out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Client talks to a remote promise manager.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8642".
	BaseURL string
	// Client identifies this promise client to the manager.
	Client string
	// HTTP is the underlying transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Do sends an envelope (stamping the client identity) and returns the
// response envelope.
func (c *Client) Do(env *protocol.Envelope) (*protocol.Envelope, error) {
	env.Header.Client = c.Client
	var buf bytes.Buffer
	if err := protocol.Encode(&buf, env); err != nil {
		return nil, err
	}
	httpResp, err := c.httpClient().Post(c.BaseURL+Endpoint, "application/xml", &buf)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		_, _ = msg.ReadFrom(httpResp.Body)
		return nil, fmt.Errorf("transport: %s: %s", httpResp.Status, bytes.TrimSpace(msg.Bytes()))
	}
	return protocol.Decode(httpResp.Body)
}

// Result is the client-side view of one full exchange.
type Result struct {
	// Promises are the promise responses from the header.
	Promises []core.PromiseResponse
	// ActionResult is the body result string.
	ActionResult string
	// ActionErr is the body fault mapped back onto sentinel errors.
	ActionErr error
}

// Exchange sends promise requests, an environment and an optional action in
// one message and decodes the reply.
func (c *Client) Exchange(reqs []core.PromiseRequest, env []core.EnvEntry, action *protocol.WireAction) (*Result, error) {
	msg := &protocol.Envelope{}
	if len(reqs) > 0 {
		msg.Header.Promise = &protocol.PromiseHeader{}
		for _, r := range reqs {
			msg.Header.Promise.Requests = append(msg.Header.Promise.Requests, protocol.RequestToWire(r))
		}
	}
	msg.Header.Environment = protocol.EnvToWire(env)
	msg.Body.Action = action

	reply, err := c.Do(msg)
	if err != nil {
		return nil, err
	}
	out := &Result{ActionResult: reply.Body.Result}
	if reply.Header.Promise != nil {
		for _, wr := range reply.Header.Promise.Responses {
			pr, err := protocol.ResponseFromWire(wr)
			if err != nil {
				return nil, err
			}
			out.Promises = append(out.Promises, pr)
		}
	}
	out.ActionErr = protocol.ErrorFromFault(reply.Body.Fault)
	return out, nil
}

// GrantBatch sends many independent promise requests in one round trip and
// returns the responses in request order — the remote mirror of the
// engines' GrantBatch.
func (c *Client) GrantBatch(reqs []core.PromiseRequest) ([]core.PromiseResponse, error) {
	msg := &protocol.Envelope{}
	msg.Header.Batch = &protocol.BatchRequest{}
	for _, r := range reqs {
		msg.Header.Batch.Grants = append(msg.Header.Batch.Grants, protocol.RequestToWire(r))
	}
	reply, err := c.Do(msg)
	if err != nil {
		return nil, err
	}
	if reply.Header.BatchResult == nil {
		return nil, fmt.Errorf("transport: reply carries no batch-response")
	}
	out := make([]core.PromiseResponse, 0, len(reply.Header.BatchResult.Responses))
	for _, wr := range reply.Header.BatchResult.Responses {
		pr, err := protocol.ResponseFromWire(wr)
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
	}
	if len(out) != len(reqs) {
		return nil, fmt.Errorf("transport: got %d batch responses, want %d", len(out), len(reqs))
	}
	return out, nil
}

// CheckBatch asks, in one round trip, whether each promise is currently
// usable by this client: nil when usable, otherwise the sentinel-wrapped
// error, exactly like the engines' CheckBatch.
func (c *Client) CheckBatch(ids []string) ([]error, error) {
	msg := &protocol.Envelope{}
	msg.Header.Batch = &protocol.BatchRequest{}
	for _, id := range ids {
		msg.Header.Batch.Checks = append(msg.Header.Batch.Checks, protocol.PromiseRef{ID: id})
	}
	reply, err := c.Do(msg)
	if err != nil {
		return nil, err
	}
	if reply.Header.BatchResult == nil {
		return nil, fmt.Errorf("transport: reply carries no batch-response")
	}
	checks := reply.Header.BatchResult.Checks
	if len(checks) != len(ids) {
		return nil, fmt.Errorf("transport: got %d check results, want %d", len(checks), len(ids))
	}
	out := make([]error, len(ids))
	for i, cr := range checks {
		out[i] = protocol.ErrorFromFault(cr.Fault)
	}
	return out, nil
}

// RequestPromise asks for one promise over the given predicates.
func (c *Client) RequestPromise(preds []core.Predicate, d time.Duration) (core.PromiseResponse, error) {
	res, err := c.Exchange([]core.PromiseRequest{{Predicates: preds, Duration: d}}, nil, nil)
	if err != nil {
		return core.PromiseResponse{}, err
	}
	if len(res.Promises) != 1 {
		return core.PromiseResponse{}, fmt.Errorf("transport: got %d promise responses, want 1", len(res.Promises))
	}
	return res.Promises[0], nil
}

// Release hands back a promise.
func (c *Client) Release(promiseID string) error {
	res, err := c.Exchange(nil, []core.EnvEntry{{PromiseID: promiseID, Release: true}}, nil)
	if err != nil {
		return err
	}
	return res.ActionErr
}

// Invoke runs a registered action under the given environment.
func (c *Client) Invoke(env []core.EnvEntry, name string, params map[string]string) (string, error) {
	action := &protocol.WireAction{Name: name}
	for k, v := range params {
		action.Params = append(action.Params, protocol.Param{Name: k, Value: v})
	}
	res, err := c.Exchange(nil, env, action)
	if err != nil {
		return "", err
	}
	if res.ActionErr != nil {
		return "", res.ActionErr
	}
	return res.ActionResult, nil
}

// RemoteSupplier adapts a Client into a core.Supplier so a local manager
// can delegate shortfalls to a remote one (§5) — the cross-process version
// of core.ManagerSupplier. It remembers which pool each upstream promise
// covers, because the wire protocol (like §6) has no promise introspection.
type RemoteSupplier struct {
	C *Client

	mu    sync.Mutex
	pools map[string]string // upstream promise id -> pool
}

// RequestPromise implements core.Supplier.
func (s *RemoteSupplier) RequestPromise(pool string, qty int64, d time.Duration) (string, error) {
	pr, err := s.C.RequestPromise([]core.Predicate{core.Quantity(pool, qty)}, d)
	if err != nil {
		return "", err
	}
	if !pr.Accepted {
		return "", fmt.Errorf("transport: upstream rejected %d of %q: %s", qty, pool, pr.Reason)
	}
	s.mu.Lock()
	if s.pools == nil {
		s.pools = make(map[string]string)
	}
	s.pools[pr.PromiseID] = pool
	s.mu.Unlock()
	return pr.PromiseID, nil
}

// ReleasePromise implements core.Supplier.
func (s *RemoteSupplier) ReleasePromise(id string) error {
	s.mu.Lock()
	delete(s.pools, id)
	s.mu.Unlock()
	return s.C.Release(id)
}

// ConsumePromise implements core.Supplier via the standard adjust-pool
// action; the server must have service.RegisterStandard handlers installed.
func (s *RemoteSupplier) ConsumePromise(id string, qty int64) error {
	s.mu.Lock()
	pool, ok := s.pools[id]
	delete(s.pools, id)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: unknown upstream promise %q", id)
	}
	res, err := s.C.Exchange(nil, []core.EnvEntry{{PromiseID: id, Release: true}}, &protocol.WireAction{
		Name: "adjust-pool",
		Params: []protocol.Param{
			{Name: "pool", Value: pool},
			{Name: "delta", Value: fmt.Sprintf("-%d", qty)},
		},
	})
	if err != nil {
		return err
	}
	return res.ActionErr
}
