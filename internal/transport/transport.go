// Package transport deploys the Figure 2 prototype architecture (§8) over
// HTTP: a Server exposes a promise manager and its application services at
// a single endpoint; a Client sends protocol envelopes carrying promise
// headers and action bodies. "The client adds promises header messages to
// its normal service requests and sends them to the promise manager for
// processing. The promise manager then does its work and passes the request
// on to the application."
//
// Client implements the same context-first Engine surface as the in-process
// managers (promises.Engine), so an application, supplier chain or tool
// written against that interface runs unchanged whether its promise maker
// is a local store or a remote daemon. The package also provides
// RemoteSupplier, a core.Supplier backed by a Client, so delegation chains
// (§5) span processes.
package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/failpoint"
	"repro/internal/protocol"
	"repro/internal/service"
)

// Endpoint is the promise manager's HTTP path.
const Endpoint = "/promises"

// FaultHeader carries the protocol fault code of a non-200 response, so
// top-level errors (bad request, unknown action) round-trip onto the same
// sentinel errors local engines return — errors.Is works identically
// against every engine shape.
const FaultHeader = "X-Promise-Fault"

// Engine is the manager-side surface the transport serves and the Client
// re-exposes — the same method set as promises.Engine. Both the
// single-store core.Manager and the sharded core.ShardedManager implement
// it, so a daemon picks its concurrency model at construction time without
// the transport caring.
type Engine interface {
	Execute(ctx context.Context, req core.Request) (*core.Response, error)
	GrantBatch(ctx context.Context, client string, reqs []core.PromiseRequest) ([]core.PromiseResponse, error)
	CheckBatch(ctx context.Context, client string, ids []string) ([]error, error)
	Release(ctx context.Context, client string, ids ...string) error
	Watch(ctx context.Context, opts core.WatchOptions) (<-chan core.Event, error)
	Stats() core.Stats
	Audit() (*core.AuditReport, error)
}

// Server adapts a promise manager and a service registry to HTTP.
type Server struct {
	manager    Engine
	registry   *service.Registry
	admit      *admission
	failpoints bool
}

// ServerOption configures optional Server behavior.
type ServerOption func(*Server)

// WithAdmission enables admission control on the promise endpoint: a
// bounded in-flight limit, a bounded wait queue, and priority-aware load
// shedding (see AdmissionConfig). Read endpoints are unaffected.
func WithAdmission(cfg AdmissionConfig) ServerOption {
	return func(s *Server) { s.admit = newAdmission(cfg) }
}

// WithFailpointEndpoint exposes the failpoint harness over HTTP — POST
// /failpoints arms a spec, GET lists, DELETE resets — for chaos drills
// against a live daemon. Never enable it on a production listener.
func WithFailpointEndpoint() ServerOption {
	return func(s *Server) { s.failpoints = true }
}

// NewServer returns a Server for manager and registry.
func NewServer(manager Engine, registry *service.Registry, opts ...ServerOption) *Server {
	s := &Server{manager: manager, registry: registry}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Handler returns the http.Handler exposing the promise endpoint plus the
// read-only operational endpoints:
//
//	GET /stats   — the manager's activity counters (+ admission stats)
//	GET /audit   — a full consistency audit (500 when unhealthy)
//	GET /events  — the promise lifecycle event stream as SSE (events.go)
//	GET /healthz — process liveness (always 200)
//	GET /readyz  — engine readiness (503 while degraded read-only)
//
// /stats and /audit render human-readable text by default and structured
// JSON with ?format=json, for machine scrapers. With WithFailpointEndpoint,
// /failpoints (POST spec / GET list / DELETE reset) drives chaos drills.
//
// The health and read endpoints bypass admission control deliberately:
// they are what operators and load balancers rely on while the promise
// endpoint is shedding.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+Endpoint, s.handle)
	mux.HandleFunc("GET "+EventsEndpoint, s.handleEvents)
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.manager.Stats()
		if wantsJSON(r) {
			if s.admit != nil {
				adm := s.admit.snapshot()
				writeJSON(w, http.StatusOK, struct {
					core.Stats
					Admission *AdmissionStats `json:"admission"`
				}{st, &adm})
				return
			}
			writeJSON(w, http.StatusOK, st)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, st)
		if s.admit != nil {
			adm := s.admit.snapshot()
			fmt.Fprintf(w, "admission: admitted=%d queued=%d shed(brownout=%d deadline=%d full=%d) in_flight=%d waiting=%d\n",
				adm.Admitted, adm.Queued, adm.ShedBrownout, adm.ShedDeadline, adm.ShedFull, adm.InFlight, adm.Waiting)
		}
	})
	mux.HandleFunc("GET /audit", func(w http.ResponseWriter, r *http.Request) {
		rep, err := s.manager.Audit()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		status := http.StatusOK
		if !rep.Healthy() {
			status = http.StatusInternalServerError
		}
		if wantsJSON(r) {
			writeJSON(w, status, rep)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(status)
		fmt.Fprintln(w, rep)
	})
	mux.HandleFunc("GET "+SummaryEndpoint, s.handleSummary)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness: the process answers. Readiness lives at /readyz.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	if s.failpoints {
		mux.HandleFunc("POST /failpoints", func(w http.ResponseWriter, r *http.Request) {
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := failpoint.Arm(strings.TrimSpace(string(body))); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		})
		mux.HandleFunc("GET /failpoints", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, p := range failpoint.List() {
				fmt.Fprintln(w, p)
			}
		})
		mux.HandleFunc("DELETE /failpoints", func(w http.ResponseWriter, r *http.Request) {
			failpoint.Reset()
			w.WriteHeader(http.StatusNoContent)
		})
	}
	return mux
}

// handleReady serves GET /readyz: 200 while the engine accepts mutations,
// 503 with the degradation reason while it is read-only (core.ErrDegraded).
// Engines that don't report health (e.g. pure in-memory) are always ready.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	var h core.Health
	if hr, ok := s.manager.(core.HealthReporter); ok {
		h = hr.Health()
	}
	status := http.StatusOK
	if h.Degraded {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	if wantsJSON(r) {
		writeJSON(w, status, struct {
			Ready bool `json:"ready"`
			core.Health
		}{!h.Degraded, h})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	if h.Degraded {
		fmt.Fprintf(w, "degraded: %s\n", h.Reason)
		return
	}
	fmt.Fprintln(w, "ready")
}

// httpFault reports a top-level error, stamping its protocol fault code in
// FaultHeader so the client can reconstruct the sentinel.
func httpFault(w http.ResponseWriter, err error, status int) {
	if f := protocol.FaultFromError(err); f != nil && f.Code != protocol.FaultActionFailed {
		w.Header().Set(FaultHeader, f.Code)
	}
	http.Error(w, err.Error(), status)
}

// engineFault classifies an engine error onto its HTTP status — the one
// sentinel→status mapping shared by the promise, batch and federation
// handlers — then reports it through httpFault so remote callers rebuild
// the same typed error a local engine would have returned.
func engineFault(w http.ResponseWriter, err error) {
	var status int
	switch {
	case errors.Is(err, core.ErrDegraded):
		// The server's disk is the problem, not the request: 503 with a
		// retry hint, so clients back off and retry like an admission shed.
		w.Header().Set("Retry-After", "1")
		status = http.StatusServiceUnavailable
	case errors.Is(err, core.ErrPromiseNotFound):
		status = http.StatusNotFound
	case errors.Is(err, core.ErrBadRequest),
		errors.Is(err, core.ErrPromiseExpired),
		errors.Is(err, core.ErrPromiseReleased),
		errors.Is(err, core.ErrPromisePreempted),
		errors.Is(err, core.ErrPromiseViolated):
		status = http.StatusBadRequest
	default:
		// Unclassified engine failures (e.g. a commit that missed
		// durability) are server faults.
		status = http.StatusInternalServerError
	}
	httpFault(w, err, status)
}

// applyDeadline re-imposes the client's remaining call budget (stamped in
// the envelope header) on the server-side context, so the ctx-deadline cap
// on granted durations — and cancellation of overlong work — behave exactly
// as they would against a local engine.
func applyDeadline(ctx context.Context, budget string) (context.Context, context.CancelFunc, error) {
	if budget == "" {
		return ctx, func() {}, nil
	}
	d, err := time.ParseDuration(budget)
	if err != nil {
		return ctx, func() {}, fmt.Errorf("transport: bad deadline %q: %v", budget, err)
	}
	if d <= 0 {
		d = time.Nanosecond // already past: surface context.DeadlineExceeded
	}
	ctx, cancel := context.WithTimeout(ctx, d)
	return ctx, cancel, nil
}

// wantsJSON reports whether the scrape asked for structured output.
func wantsJSON(r *http.Request) bool {
	return r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json")
}

// writeJSON renders v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	in, err := protocol.Decode(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel, err := applyDeadline(r.Context(), in.Header.Deadline)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer cancel()
	// Admission control gates every mutating envelope; pure check batches
	// classify as reads and pass straight through (they are served off
	// snapshots and must keep flowing during brownout).
	done, admErr := s.admit.acquire(ctx, classify(in))
	if admErr != nil {
		var shed *shedError
		if errors.As(admErr, &shed) {
			writeShed(w, shed)
			return
		}
		http.Error(w, admErr.Error(), http.StatusServiceUnavailable)
		return
	}
	defer done()
	if err := failpoint.Eval("transport/handle"); err != nil {
		// A failpoint-injected handler fault, for chaos drills; the sleep
		// action holds an admission slot, which is how the harness
		// manufactures overload deterministically.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if in.Header.Batch != nil {
		s.handleBatch(ctx, w, in)
		return
	}
	if in.Header.Reserve != nil || in.Header.Confirm != nil || in.Header.Abort != nil {
		s.handleFed(ctx, w, in)
		return
	}
	req := core.Request{Client: in.Header.Client}
	if in.Header.Promise != nil {
		for _, wr := range in.Header.Promise.Requests {
			pr, err := protocol.RequestFromWire(wr)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			req.PromiseRequests = append(req.PromiseRequests, pr)
		}
	}
	req.Env = protocol.EnvFromWire(in.Header.Environment)
	if in.Body.Action != nil {
		if err := s.bindAction(&req, in.Body.Action); err != nil {
			// An unknown action is a bad request on a local engine
			// (resolveAction wraps ErrBadRequest); mirror that class so
			// errors.Is behaves identically across deployments.
			httpFault(w, fmt.Errorf("%w: %v", core.ErrBadRequest, err), http.StatusNotFound)
			return
		}
	}

	resp, err := s.manager.Execute(ctx, req)
	if err != nil {
		engineFault(w, err)
		return
	}

	out := &protocol.Envelope{}
	if len(resp.Promises) > 0 {
		out.Header.Promise = &protocol.PromiseHeader{}
		for _, pr := range resp.Promises {
			out.Header.Promise.Responses = append(out.Header.Promise.Responses, protocol.ResponseToWire(pr))
		}
	}
	if resp.ActionErr != nil {
		out.Body.Fault = protocol.FaultFromError(resp.ActionErr)
	} else if s, ok := resp.ActionResult.(string); ok {
		out.Body.Result = s
	}
	w.Header().Set("Content-Type", "application/xml")
	if err := protocol.Encode(w, out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// bindAction resolves a wire action against the registry and attaches it to
// req, surfacing the named resources so a sharded engine routes the action
// to the owning shard (the single-store engine ignores Resources).
func (s *Server) bindAction(req *core.Request, wa *protocol.WireAction) error {
	handler, err := s.registry.Resolve(wa.Name)
	if err != nil {
		return err
	}
	params := wa.ParamMap()
	req.Action = func(ac *core.ActionContext) (any, error) {
		return handler(params, ac)
	}
	// The standard handlers name their resources in the "pool" and
	// "instance" params.
	if p := params["pool"]; p != "" {
		req.Resources = append(req.Resources, p)
	}
	if p := params["instance"]; p != "" {
		req.Resources = append(req.Resources, p)
	}
	return nil
}

// handleBatch answers a <batch-request> envelope: grants run through the
// engine's batched grant path (one lock acquisition per shard set), then
// standalone releases, then piggybacked actions (each its own §8
// transaction), then checks — so checks observe the envelope's own releases
// and actions — and the results ride back in one <batch-response>.
func (s *Server) handleBatch(ctx context.Context, w http.ResponseWriter, in *protocol.Envelope) {
	if in.Header.Promise != nil || in.Header.Environment != nil || in.Body.Action != nil {
		http.Error(w, "transport: batch-request cannot combine with promise, environment or action elements", http.StatusBadRequest)
		return
	}
	client := in.Header.Client
	batch := in.Header.Batch
	reqs := make([]core.PromiseRequest, 0, len(batch.Grants))
	for _, wr := range batch.Grants {
		pr, err := protocol.RequestFromWire(wr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		reqs = append(reqs, pr)
	}
	out := &protocol.Envelope{}
	out.Header.BatchResult = &protocol.BatchResponse{}
	result := out.Header.BatchResult
	if len(reqs) > 0 {
		resps, err := s.manager.GrantBatch(ctx, client, reqs)
		if err != nil {
			engineFault(w, err)
			return
		}
		for _, pr := range resps {
			result.Responses = append(result.Responses, protocol.ResponseToWire(pr))
		}
	}
	for _, rel := range batch.Releases {
		// Entries are independent: one dead promise must not strand its
		// neighbours, so each release is its own engine call.
		err := s.manager.Release(ctx, client, rel.ID)
		result.Releases = append(result.Releases,
			protocol.CheckResult{ID: rel.ID, Fault: protocol.FaultFromError(err)})
	}
	for _, ba := range batch.Actions {
		req := core.Request{Client: client, Env: protocol.EnvFromWire(&protocol.EnvironmentHeader{Refs: ba.Env})}
		ar := protocol.ActionResult{}
		if err := s.bindAction(&req, &ba.Action); err != nil {
			ar.Fault = &protocol.Fault{Code: protocol.FaultBadRequest, Message: err.Error()}
		} else if resp, err := s.manager.Execute(ctx, req); err != nil {
			ar.Fault = protocol.FaultFromError(err)
		} else if resp.ActionErr != nil {
			ar.Fault = protocol.FaultFromError(resp.ActionErr)
		} else if s, ok := resp.ActionResult.(string); ok {
			ar.Result = s
		}
		result.Actions = append(result.Actions, ar)
	}
	if len(batch.Checks) > 0 {
		ids := make([]string, len(batch.Checks))
		for i, c := range batch.Checks {
			ids[i] = c.ID
		}
		errs, err := s.manager.CheckBatch(ctx, client, ids)
		if err != nil {
			engineFault(w, err)
			return
		}
		for i, err := range errs {
			result.Checks = append(result.Checks,
				protocol.CheckResult{ID: ids[i], Fault: protocol.FaultFromError(err)})
		}
	}
	w.Header().Set("Content-Type", "application/xml")
	if err := protocol.Encode(w, out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Client talks to a remote promise manager through the same context-first
// Engine surface the in-process managers expose, so call sites cannot tell
// a daemon from a local store.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8642".
	BaseURL string
	// Client is the default promise-client identity, used when a call does
	// not carry its own (Request.Client or the client argument).
	Client string
	// HTTP is the underlying transport; nil uses http.DefaultClient.
	HTTP *http.Client
	// Retry tunes the transient-error retry loop; nil uses DefaultRetry.
	Retry *RetryPolicy
}

// RetryPolicy bounds the client's retry loop on transient transport
// errors. Which failures retry depends on what the request can have done
// server-side, not just on the policy:
//
//   - connection-refused dial errors and 503 responses retry for every
//     request — the server provably never processed it;
//   - mid-flight failures (connection reset, unexpected EOF) retry only
//     for requests that are safe to repeat: reads (checks, stats
//     scrapes) and idempotent federation aborts. A grant that died
//     mid-flight may have committed, so repeating it could grant twice —
//     those fail fast and the caller decides.
//
// Backoff doubles from Base with jitter, and every sleep honors the
// context deadline.
type RetryPolicy struct {
	// Attempts is the total number of tries. <= 0 means DefaultRetry's.
	Attempts int
	// Base is the first backoff delay. <= 0 means DefaultRetry's.
	Base time.Duration
}

// DefaultRetry is the retry policy used when Client.Retry is nil.
var DefaultRetry = RetryPolicy{Attempts: 3, Base: 25 * time.Millisecond}

func (c *Client) retryPolicy() RetryPolicy {
	p := DefaultRetry
	if c.Retry != nil {
		if c.Retry.Attempts > 0 {
			p.Attempts = c.Retry.Attempts
		}
		if c.Retry.Base > 0 {
			p.Base = c.Retry.Base
		}
	}
	return p
}

// transientDial reports an error raised before the request left this
// machine: nothing reached the server, so any request may retry.
func transientDial(err error) bool {
	if errors.Is(err, syscall.ECONNREFUSED) {
		return true
	}
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// transientMidflight reports a connection that died after the request may
// have reached the server — retryable only for repeat-safe requests.
func transientMidflight(err error) bool {
	return errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// repeatSafe reports whether re-sending the envelope can never double a
// server-side effect: nothing in it grants, releases, acts or opens a
// federated session. Aborts are explicitly idempotent server-side.
func repeatSafe(env *protocol.Envelope) bool {
	h := &env.Header
	if h.Promise != nil || h.Environment != nil || env.Body.Action != nil ||
		h.Reserve != nil || h.Confirm != nil {
		return false
	}
	if h.Batch != nil && (len(h.Batch.Grants) > 0 || len(h.Batch.Releases) > 0 || len(h.Batch.Actions) > 0) {
		return false
	}
	return true
}

// sleepBackoff waits out the attempt's backoff (exponential from base,
// with jitter), honoring ctx.
func sleepBackoff(ctx context.Context, base time.Duration, attempt int) error {
	d := base << (attempt - 1)
	if d > time.Second {
		d = time.Second
	}
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	return sleepFor(ctx, d)
}

// sleepFor waits d, honoring ctx.
func sleepFor(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// parseRetryAfter reads a Retry-After header: delay-seconds or an
// HTTP-date. 0 means absent or unusable.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// refusal consumes a 429/503 response — the server refused the request
// before processing it, so any shape may retry. The stamped fault code
// rebuilds the typed error (ErrOverloaded for admission sheds, ErrDegraded
// for the read-only engine), and the server's Retry-After hint replaces
// the client's own backoff for the next attempt.
func refusal(resp *http.Response) (error, time.Duration) {
	var msg bytes.Buffer
	_, _ = msg.ReadFrom(resp.Body)
	resp.Body.Close()
	text := fmt.Sprintf("transport: %s: %s", resp.Status, bytes.TrimSpace(msg.Bytes()))
	err := errors.New(text)
	switch code := resp.Header.Get(FaultHeader); code {
	case "":
	case protocol.FaultOverloaded:
		// ErrOverloaded lives here, not in protocol (which cannot import
		// transport), so the code maps outside ErrorFromFault.
		err = fmt.Errorf("%w: %s", ErrOverloaded, text)
	default:
		err = protocol.ErrorFromFault(&protocol.Fault{Code: code, Message: text})
	}
	return err, parseRetryAfter(resp.Header.Get("Retry-After"))
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Close implements the Engine surface: it releases idle connections held by
// the client's own HTTP transport. The daemon's state is the daemon's (see
// promised -data-dir); closing a client never flushes or destroys anything
// server-side. The shared http.DefaultClient is left untouched.
func (c *Client) Close() error {
	if c.HTTP != nil {
		c.HTTP.CloseIdleConnections()
	}
	return nil
}

// clientID resolves a per-call identity against the bound default.
func (c *Client) clientID(client string) string {
	if client != "" {
		return client
	}
	return c.Client
}

// Do sends an envelope (stamping the default client identity when the
// envelope carries none, and the context's remaining deadline budget so the
// server enforces it exactly like a local engine) and returns the response
// envelope.
func (c *Client) Do(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
	if env.Header.Client == "" {
		env.Header.Client = c.Client
	}
	if d, ok := ctx.Deadline(); ok && env.Header.Deadline == "" {
		env.Header.Deadline = time.Until(d).Round(time.Millisecond).String()
	}
	// Encode once; each attempt re-reads the same bytes so a retried
	// request is byte-identical to the first.
	var buf bytes.Buffer
	if err := protocol.Encode(&buf, env); err != nil {
		return nil, err
	}
	body := buf.Bytes()
	safe := repeatSafe(env)
	pol := c.retryPolicy()
	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			// A server-provided Retry-After overrides the client's own
			// backoff: the server knows when it expects to have capacity.
			wait := sleepBackoff
			if retryAfter > 0 {
				d := retryAfter
				retryAfter = 0
				wait = func(ctx context.Context, _ time.Duration, _ int) error { return sleepFor(ctx, d) }
			}
			if err := wait(ctx, pol.Base, attempt); err != nil {
				return nil, fmt.Errorf("transport: %w (last error: %v)", err, lastErr)
			}
		}
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+Endpoint, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		httpReq.Header.Set("Content-Type", "application/xml")
		httpResp, err := c.httpClient().Do(httpReq)
		if err == nil {
			if fpErr := failpoint.Eval("transport/drop-response"); fpErr != nil {
				// Chaos drill: the response is dropped on the floor, as if
				// the connection died after the server processed the
				// request — the mid-flight class, retryable only when safe.
				httpResp.Body.Close()
				err = fmt.Errorf("%w: %v", io.ErrUnexpectedEOF, fpErr)
			}
		}
		if err != nil {
			if ctx.Err() == nil && (transientDial(err) || (safe && transientMidflight(err))) {
				lastErr = err
				continue
			}
			return nil, err
		}
		if httpResp.StatusCode == http.StatusServiceUnavailable || httpResp.StatusCode == http.StatusTooManyRequests {
			// 503 and 429 mean the server refused before processing —
			// retryable for every request shape.
			lastErr, retryAfter = refusal(httpResp)
			continue
		}
		if httpResp.StatusCode != http.StatusOK {
			defer httpResp.Body.Close()
			var msg bytes.Buffer
			_, _ = msg.ReadFrom(httpResp.Body)
			// A stamped fault code reconstructs the sentinel the engine raised,
			// so errors.Is(err, ErrBadRequest) etc. work like a local call.
			if code := httpResp.Header.Get(FaultHeader); code != "" {
				return nil, protocol.ErrorFromFault(&protocol.Fault{
					Code:    code,
					Message: fmt.Sprintf("transport: %s: %s", httpResp.Status, bytes.TrimSpace(msg.Bytes())),
				})
			}
			return nil, fmt.Errorf("transport: %s: %s", httpResp.Status, bytes.TrimSpace(msg.Bytes()))
		}
		reply, err := protocol.Decode(httpResp.Body)
		httpResp.Body.Close()
		if err != nil && ctx.Err() == nil && safe && transientMidflight(err) {
			// The connection died while the response streamed back.
			lastErr = err
			continue
		}
		return reply, err
	}
	return nil, fmt.Errorf("transport: giving up after %d attempts: %w", pol.Attempts, lastErr)
}

// Execute implements the Engine surface over the wire: promise requests,
// environment entries and a named action cross as one §6 envelope and run
// as one atomic message on the server. Function-valued actions cannot cross
// the wire — requests carrying Request.Action are rejected; use
// Request.ActionName, which the daemon resolves against its registry. The
// returned ActionResult is always the action's string rendering.
func (c *Client) Execute(ctx context.Context, req core.Request) (*core.Response, error) {
	if req.Action != nil {
		return nil, fmt.Errorf("%w: transport: function actions cannot cross the wire; use Request.ActionName", core.ErrBadRequest)
	}
	msg := &protocol.Envelope{}
	msg.Header.Client = c.clientID(req.Client)
	if len(req.PromiseRequests) > 0 {
		msg.Header.Promise = &protocol.PromiseHeader{}
		for _, r := range req.PromiseRequests {
			msg.Header.Promise.Requests = append(msg.Header.Promise.Requests, protocol.RequestToWire(r))
		}
	}
	msg.Header.Environment = protocol.EnvToWire(req.Env)
	if req.ActionName != "" {
		action := &protocol.WireAction{Name: req.ActionName}
		for _, k := range sortedParamKeys(req.ActionParams) {
			action.Params = append(action.Params, protocol.Param{Name: k, Value: req.ActionParams[k]})
		}
		msg.Body.Action = action
	}

	reply, err := c.Do(ctx, msg)
	if err != nil {
		return nil, err
	}
	out := &core.Response{}
	if reply.Body.Result != "" {
		out.ActionResult = reply.Body.Result
	}
	if reply.Header.Promise != nil {
		for _, wr := range reply.Header.Promise.Responses {
			pr, err := protocol.ResponseFromWire(wr)
			if err != nil {
				return nil, err
			}
			out.Promises = append(out.Promises, pr)
		}
	}
	// Local engines answer every promise request positionally; a reply that
	// doesn't (version skew, broken middlebox) must error, not make
	// resp.Promises[i] indexing panic at the call site.
	if len(out.Promises) != len(req.PromiseRequests) {
		return nil, fmt.Errorf("transport: got %d promise responses, want %d", len(out.Promises), len(req.PromiseRequests))
	}
	out.ActionErr = protocol.ErrorFromFault(reply.Body.Fault)
	return out, nil
}

// sortedParamKeys orders action parameters deterministically on the wire.
func sortedParamKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Result is the client-side view of one full exchange.
type Result struct {
	// Promises are the promise responses from the header.
	Promises []core.PromiseResponse
	// ActionResult is the body result string.
	ActionResult string
	// ActionErr is the body fault mapped back onto sentinel errors.
	ActionErr error
}

// Exchange sends promise requests, an environment and an optional action in
// one message and decodes the reply — the envelope-level surface beneath
// Execute, for callers that build wire actions directly.
func (c *Client) Exchange(ctx context.Context, reqs []core.PromiseRequest, env []core.EnvEntry, action *protocol.WireAction) (*Result, error) {
	msg := &protocol.Envelope{}
	if len(reqs) > 0 {
		msg.Header.Promise = &protocol.PromiseHeader{}
		for _, r := range reqs {
			msg.Header.Promise.Requests = append(msg.Header.Promise.Requests, protocol.RequestToWire(r))
		}
	}
	msg.Header.Environment = protocol.EnvToWire(env)
	msg.Body.Action = action

	reply, err := c.Do(ctx, msg)
	if err != nil {
		return nil, err
	}
	out := &Result{ActionResult: reply.Body.Result}
	if reply.Header.Promise != nil {
		for _, wr := range reply.Header.Promise.Responses {
			pr, err := protocol.ResponseFromWire(wr)
			if err != nil {
				return nil, err
			}
			out.Promises = append(out.Promises, pr)
		}
	}
	out.ActionErr = protocol.ErrorFromFault(reply.Body.Fault)
	return out, nil
}

// Batch is one multi-operation round trip: independent grants, standalone
// releases, piggybacked actions and usability checks — the client face of
// the extended §6 <batch-request> element.
type Batch struct {
	Grants   []core.PromiseRequest
	Releases []string
	Actions  []BatchAction
	Checks   []string
}

// BatchAction is one piggybacked action invocation.
type BatchAction struct {
	Name   string
	Params map[string]string
	// Env protects the action; release options apply atomically with it.
	Env []core.EnvEntry
}

// BatchOutcome carries a Batch's results, index-aligned with its fields.
type BatchOutcome struct {
	Grants      []core.PromiseResponse
	ReleaseErrs []error
	Actions     []ActionOutcome
	CheckErrs   []error
}

// ActionOutcome is one piggybacked action's result or error.
type ActionOutcome struct {
	Result string
	Err    error
}

// DoBatch runs a whole Batch in one round trip for the given client (empty
// means the bound identity). The server processes grants, then releases,
// then actions, then checks.
func (c *Client) DoBatch(ctx context.Context, client string, b Batch) (*BatchOutcome, error) {
	msg := &protocol.Envelope{}
	msg.Header.Client = c.clientID(client)
	msg.Header.Batch = &protocol.BatchRequest{}
	for _, r := range b.Grants {
		msg.Header.Batch.Grants = append(msg.Header.Batch.Grants, protocol.RequestToWire(r))
	}
	for _, id := range b.Releases {
		msg.Header.Batch.Releases = append(msg.Header.Batch.Releases, protocol.PromiseRef{ID: id, Release: true})
	}
	for _, ba := range b.Actions {
		wa := protocol.BatchAction{Action: protocol.WireAction{Name: ba.Name}}
		for _, k := range sortedParamKeys(ba.Params) {
			wa.Action.Params = append(wa.Action.Params, protocol.Param{Name: k, Value: ba.Params[k]})
		}
		if env := protocol.EnvToWire(ba.Env); env != nil {
			wa.Env = env.Refs
		}
		msg.Header.Batch.Actions = append(msg.Header.Batch.Actions, wa)
	}
	for _, id := range b.Checks {
		msg.Header.Batch.Checks = append(msg.Header.Batch.Checks, protocol.PromiseRef{ID: id})
	}

	reply, err := c.Do(ctx, msg)
	if err != nil {
		return nil, err
	}
	br := reply.Header.BatchResult
	if br == nil {
		return nil, fmt.Errorf("transport: reply carries no batch-response")
	}
	if len(b.Grants) > 0 && len(br.Responses) != len(b.Grants) {
		return nil, fmt.Errorf("transport: got %d batch responses, want %d", len(br.Responses), len(b.Grants))
	}
	if len(br.Releases) != len(b.Releases) {
		return nil, fmt.Errorf("transport: got %d release results, want %d", len(br.Releases), len(b.Releases))
	}
	if len(br.Actions) != len(b.Actions) {
		return nil, fmt.Errorf("transport: got %d action results, want %d", len(br.Actions), len(b.Actions))
	}
	if len(br.Checks) != len(b.Checks) {
		return nil, fmt.Errorf("transport: got %d check results, want %d", len(br.Checks), len(b.Checks))
	}
	out := &BatchOutcome{}
	for _, wr := range br.Responses {
		pr, err := protocol.ResponseFromWire(wr)
		if err != nil {
			return nil, err
		}
		out.Grants = append(out.Grants, pr)
	}
	for _, cr := range br.Releases {
		out.ReleaseErrs = append(out.ReleaseErrs, protocol.ErrorFromFault(cr.Fault))
	}
	for _, ar := range br.Actions {
		out.Actions = append(out.Actions, ActionOutcome{Result: ar.Result, Err: protocol.ErrorFromFault(ar.Fault)})
	}
	for _, cr := range br.Checks {
		out.CheckErrs = append(out.CheckErrs, protocol.ErrorFromFault(cr.Fault))
	}
	return out, nil
}

// GrantBatch sends many independent promise requests in one round trip and
// returns the responses in request order — the remote mirror of the
// engines' GrantBatch.
func (c *Client) GrantBatch(ctx context.Context, client string, reqs []core.PromiseRequest) ([]core.PromiseResponse, error) {
	out, err := c.DoBatch(ctx, client, Batch{Grants: reqs})
	if err != nil {
		return nil, err
	}
	return out.Grants, nil
}

// CheckBatch asks, in one round trip, whether each promise is currently
// usable by the client: nil when usable, otherwise the sentinel-wrapped
// error, exactly like the engines' CheckBatch.
func (c *Client) CheckBatch(ctx context.Context, client string, ids []string) ([]error, error) {
	out, err := c.DoBatch(ctx, client, Batch{Checks: ids})
	if err != nil {
		return nil, err
	}
	return out.CheckErrs, nil
}

// Release hands back the named promises atomically in one round trip,
// exactly like the engines' Release: either every id is usable and all are
// released, or none are.
func (c *Client) Release(ctx context.Context, client string, ids ...string) error {
	if len(ids) == 0 {
		return nil
	}
	env := make([]core.EnvEntry, len(ids))
	for i, id := range ids {
		env[i] = core.EnvEntry{PromiseID: id, Release: true}
	}
	resp, err := c.Execute(ctx, core.Request{Client: client, Env: env})
	if err != nil {
		return err
	}
	return resp.ActionErr
}

// FetchStats retrieves the daemon's activity counters from the structured
// /stats endpoint.
func (c *Client) FetchStats(ctx context.Context) (core.Stats, error) {
	var st core.Stats
	err := c.getJSON(ctx, "/stats?format=json", &st)
	return st, err
}

// Stats implements the Engine surface. Transport failures yield a zero
// snapshot; use FetchStats when the error matters.
func (c *Client) Stats() core.Stats {
	st, _ := c.FetchStats(context.Background())
	return st
}

// Audit runs a server-side consistency audit and returns the report — like
// the local engines, an unhealthy report is a report, not an error.
func (c *Client) Audit() (*core.AuditReport, error) {
	rep := &core.AuditReport{}
	if err := c.getJSON(context.Background(), "/audit?format=json", rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// getJSON fetches one operational endpoint into out. A 500 with a JSON body
// still decodes (an unhealthy audit is a valid report). GETs are read-only,
// so every transient failure class retries under the client's policy.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	pol := c.retryPolicy()
	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			if retryAfter > 0 {
				d := retryAfter
				retryAfter = 0
				if err := sleepFor(ctx, d); err != nil {
					return fmt.Errorf("transport: %w (last error: %v)", err, lastErr)
				}
			} else if err := sleepBackoff(ctx, pol.Base, attempt); err != nil {
				return fmt.Errorf("transport: %w (last error: %v)", err, lastErr)
			}
		}
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
		if err != nil {
			return err
		}
		httpResp, err := c.httpClient().Do(httpReq)
		if err != nil {
			if ctx.Err() == nil && (transientDial(err) || transientMidflight(err)) {
				lastErr = err
				continue
			}
			return err
		}
		if httpResp.StatusCode == http.StatusServiceUnavailable || httpResp.StatusCode == http.StatusTooManyRequests {
			lastErr, retryAfter = refusal(httpResp)
			continue
		}
		if !strings.HasPrefix(httpResp.Header.Get("Content-Type"), "application/json") {
			var msg bytes.Buffer
			_, _ = msg.ReadFrom(httpResp.Body)
			httpResp.Body.Close()
			return fmt.Errorf("transport: %s: %s", httpResp.Status, bytes.TrimSpace(msg.Bytes()))
		}
		err = json.NewDecoder(httpResp.Body).Decode(out)
		httpResp.Body.Close()
		if err != nil && ctx.Err() == nil && transientMidflight(err) {
			lastErr = err
			continue
		}
		return err
	}
	return fmt.Errorf("transport: giving up after %d attempts: %w", pol.Attempts, lastErr)
}

// RequestPromise asks for one promise over the given predicates.
func (c *Client) RequestPromise(ctx context.Context, preds []core.Predicate, d time.Duration) (core.PromiseResponse, error) {
	res, err := c.Exchange(ctx, []core.PromiseRequest{{Predicates: preds, Duration: d}}, nil, nil)
	if err != nil {
		return core.PromiseResponse{}, err
	}
	if len(res.Promises) != 1 {
		return core.PromiseResponse{}, fmt.Errorf("transport: got %d promise responses, want 1", len(res.Promises))
	}
	return res.Promises[0], nil
}

// Invoke runs a registered action under the given environment.
func (c *Client) Invoke(ctx context.Context, env []core.EnvEntry, name string, params map[string]string) (string, error) {
	resp, err := c.Execute(ctx, core.Request{Env: env, ActionName: name, ActionParams: params})
	if err != nil {
		return "", err
	}
	if resp.ActionErr != nil {
		return "", resp.ActionErr
	}
	s, _ := resp.ActionResult.(string)
	return s, nil
}

// RemoteSupplier adapts a Client into a core.Supplier so a local manager
// can delegate shortfalls to a remote one (§5) — the cross-process version
// of core.ManagerSupplier. It remembers which pool each upstream promise
// covers, because the wire protocol (like §6) has no promise introspection.
//
// Deprecated: promises.EngineSupplier fronts any Engine — including this
// package's Client — with the same bookkeeping; it cannot live here only
// because transport must not import the facade. New code should use it.
type RemoteSupplier struct {
	C *Client

	mu    sync.Mutex
	pools map[string]string // upstream promise id -> pool
}

// RequestPromise implements core.Supplier.
func (s *RemoteSupplier) RequestPromise(ctx context.Context, pool string, qty int64, d time.Duration) (string, error) {
	pr, err := s.C.RequestPromise(ctx, []core.Predicate{core.Quantity(pool, qty)}, d)
	if err != nil {
		return "", err
	}
	if !pr.Accepted {
		return "", fmt.Errorf("transport: upstream rejected %d of %q: %s", qty, pool, pr.Reason)
	}
	s.mu.Lock()
	if s.pools == nil {
		s.pools = make(map[string]string)
	}
	s.pools[pr.PromiseID] = pool
	s.mu.Unlock()
	return pr.PromiseID, nil
}

// ReleasePromise implements core.Supplier.
func (s *RemoteSupplier) ReleasePromise(ctx context.Context, id string) error {
	s.mu.Lock()
	delete(s.pools, id)
	s.mu.Unlock()
	return s.C.Release(ctx, "", id)
}

// ConsumePromise implements core.Supplier via the standard adjust-pool
// action; the server must have service.RegisterStandard handlers installed.
func (s *RemoteSupplier) ConsumePromise(ctx context.Context, id string, qty int64) error {
	s.mu.Lock()
	pool, ok := s.pools[id]
	delete(s.pools, id)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: unknown upstream promise %q", id)
	}
	res, err := s.C.Exchange(ctx, nil, []core.EnvEntry{{PromiseID: id, Release: true}}, &protocol.WireAction{
		Name: "adjust-pool",
		Params: []protocol.Param{
			{Name: "pool", Value: pool},
			{Name: "delta", Value: fmt.Sprintf("-%d", qty)},
		},
	})
	if err != nil {
		return err
	}
	return res.ActionErr
}
