package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/failpoint"
	"repro/internal/protocol"
	"repro/internal/service"
)

// gatedEngine blocks Execute until the test feeds (or closes) gate, so
// tests saturate the admission limiter deterministically instead of racing
// sleeps.
type gatedEngine struct {
	Engine
	gate chan struct{}
}

func (g *gatedEngine) Execute(ctx context.Context, req core.Request) (*core.Response, error) {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.Engine.Execute(ctx, req)
}

// newAdmissionServer builds a server with admission control over the given
// engine and returns both the test listener and the Server (whose limiter
// the tests inspect directly for deterministic waits).
func newAdmissionServer(t *testing.T, eng Engine, cfg AdmissionConfig) (*httptest.Server, *Server) {
	t.Helper()
	reg := service.NewRegistry()
	service.RegisterStandard(reg)
	sv := NewServer(eng, reg, WithAdmission(cfg))
	srv := httptest.NewServer(sv.Handler())
	t.Cleanup(srv.Close)
	return srv, sv
}

// waitAdmission polls the limiter until cond holds; deterministic in the
// sense that it waits on observed limiter state, never on sleep guesses.
func waitAdmission(t *testing.T, sv *Server, what string, cond func(AdmissionStats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond(sv.admit.snapshot()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; stats=%+v", what, sv.admit.snapshot())
}

func grantReq(tier int, preemptible bool) core.PromiseRequest {
	return core.PromiseRequest{
		Predicates:  []core.Predicate{core.Quantity("widgets", 1)},
		Duration:    time.Hour,
		Priority:    tier,
		Preemptible: preemptible,
	}
}

// TestBrownoutShedsLowTierFirst drives the brownout ladder step by step:
// with the single slot busy and the queue half full, tier-0 traffic sheds
// with 429 while tier-1 still queues; a full queue sheds everything with
// 503; snapshot-served reads flow the whole time.
func TestBrownoutShedsLowTierFirst(t *testing.T) {
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := seedPool(m, "widgets", 100); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	srv, sv := newAdmissionServer(t, &gatedEngine{Engine: m, gate: gate}, AdmissionConfig{MaxInFlight: 1, MaxQueue: 2})
	c := &Client{BaseURL: srv.URL, Client: "soak", Retry: &RetryPolicy{Attempts: 1, Base: time.Millisecond}}
	ctx := context.Background()

	var wg sync.WaitGroup
	var queuedErrs [2]error
	launch := func(slot int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, queuedErrs[slot] = c.Execute(ctx, core.Request{PromiseRequests: []core.PromiseRequest{grantReq(1, false)}})
		}()
	}
	launch(0) // occupies the only slot, blocked in Execute
	waitAdmission(t, sv, "slot occupied", func(st AdmissionStats) bool { return st.InFlight == 1 })
	launch(1) // queues: waiting=1, which is half of MaxQueue=2 — brownout territory
	waitAdmission(t, sv, "one queued", func(st AdmissionStats) bool { return st.Waiting == 1 })

	// Tier-0 grant: shed by brownout with 429 and the typed sentinel.
	_, err = c.Execute(ctx, core.Request{PromiseRequests: []core.PromiseRequest{grantReq(0, false)}})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("tier-0 grant under brownout = %v, want ErrOverloaded", err)
	}
	// A preemptible tier-2 grant is spot capacity: equally sheddable.
	_, err = c.Execute(ctx, core.Request{PromiseRequests: []core.PromiseRequest{grantReq(2, true)}})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("preemptible grant under brownout = %v, want ErrOverloaded", err)
	}
	st := sv.admit.snapshot()
	if st.ShedBrownout != 2 || st.ShedByTier["0"] != 1 || st.ShedByTier["2"] != 1 {
		t.Fatalf("brownout stats = %+v, want 2 sheds split over tiers 0 and 2", st)
	}

	// Tier-1 still queues at half occupancy…
	var wantQueued atomic.Int32
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := c.Execute(ctx, core.Request{PromiseRequests: []core.PromiseRequest{grantReq(1, false)}})
		if err == nil && resp.Promises[0].Accepted {
			wantQueued.Store(1)
		}
	}()
	waitAdmission(t, sv, "two queued", func(st AdmissionStats) bool { return st.Waiting == 2 })

	// …until the queue is full: then even tier-1 sheds, with 503.
	_, err = c.Execute(ctx, core.Request{PromiseRequests: []core.PromiseRequest{grantReq(1, false)}})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("grant with full queue = %v, want ErrOverloaded", err)
	}
	if st := sv.admit.snapshot(); st.ShedFull != 1 {
		t.Fatalf("full-queue shed not counted: %+v", st)
	}

	// Reads bypass admission entirely: a pure check batch completes while
	// the slot is still blocked.
	checkCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if _, err := c.CheckBatch(checkCtx, "soak", []string{"nonexistent"}); err != nil {
		t.Fatalf("check batch during saturation: %v", err)
	}
	if _, err := c.FetchStats(checkCtx); err != nil {
		t.Fatalf("stats scrape during saturation: %v", err)
	}

	close(gate) // drain: the occupant and both queued grants all complete
	wg.Wait()
	for slot, err := range queuedErrs {
		if err != nil {
			t.Fatalf("queued grant %d failed after drain: %v", slot, err)
		}
	}
	if wantQueued.Load() != 1 {
		t.Fatal("tier-1 grant queued at half occupancy did not complete accepted")
	}
}

// TestDeadlineAwareQueueReject: once the limiter has a service-time
// estimate, a request whose context deadline cannot survive the projected
// queue wait is refused immediately rather than parked until it expires.
func TestDeadlineAwareQueueReject(t *testing.T) {
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := seedPool(m, "widgets", 100); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	srv, sv := newAdmissionServer(t, &gatedEngine{Engine: m, gate: gate}, AdmissionConfig{MaxInFlight: 1, MaxQueue: 8})
	c := &Client{BaseURL: srv.URL, Client: "dl", Retry: &RetryPolicy{Attempts: 1, Base: time.Millisecond}}
	ctx := context.Background()

	// Seed the EWMA with one ~80ms request.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.Execute(ctx, core.Request{PromiseRequests: []core.PromiseRequest{grantReq(1, false)}}); err != nil {
			t.Errorf("seed grant: %v", err)
		}
	}()
	waitAdmission(t, sv, "seed in flight", func(st AdmissionStats) bool { return st.InFlight == 1 })
	time.Sleep(80 * time.Millisecond)
	gate <- struct{}{}
	wg.Wait()
	if sv.admit.ewmaNs.Load() < int64(50*time.Millisecond) {
		t.Fatalf("service-time estimate not seeded: %v", time.Duration(sv.admit.ewmaNs.Load()))
	}

	// Saturate again: one in flight, two queued, all with generous budgets.
	errs := make([]error, 3)
	for i := range errs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = func() error {
				lctx, cancel := context.WithTimeout(ctx, 10*time.Second)
				defer cancel()
				_, err := c.Execute(lctx, core.Request{PromiseRequests: []core.PromiseRequest{grantReq(1, false)}})
				return err
			}()
		}()
		waitAdmission(t, sv, "pipeline fill", func(st AdmissionStats) bool { return st.InFlight == 1 && st.Waiting == i })
	}

	// Projected wait ≈ 3 × 80ms; a 10ms budget cannot survive it.
	start := time.Now()
	tight, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	_, err = c.Execute(tight, core.Request{PromiseRequests: []core.PromiseRequest{grantReq(1, false)}})
	if elapsed := time.Since(start); !errors.Is(err, ErrOverloaded) || elapsed > 2*time.Second {
		t.Fatalf("doomed-deadline request: err=%v after %v, want immediate ErrOverloaded", err, elapsed)
	}
	if st := sv.admit.snapshot(); st.ShedDeadline != 1 {
		t.Fatalf("deadline shed not counted: %+v", st)
	}

	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("patient request %d failed after drain: %v", i, err)
		}
	}
}

// TestOverloadSoak is the satellite soak: many clients against a limit-2
// server with a slow engine. Every request either lands (and matches what
// an unthrottled engine would have decided — zero divergence) or sheds
// with the typed overload error; shed counts reconcile exactly by tier,
// and no request is left waiting past its budget.
func TestOverloadSoak(t *testing.T) {
	const (
		clients  = 20
		perEach  = 3
		total    = clients * perEach
		capacity = 10 * total // every admitted grant must accept
	)
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := seedPool(m, "widgets", capacity); err != nil {
		t.Fatal(err)
	}
	// Slow-but-progressing engine: the failpoint sleep holds an admission
	// slot for 10ms per request, manufacturing sustained overload.
	defer failpoint.Reset()
	if err := failpoint.Arm("transport/handle=sleep(10ms)"); err != nil {
		t.Fatal(err)
	}
	srv, sv := newAdmissionServer(t, m, AdmissionConfig{MaxInFlight: 2, MaxQueue: 4})

	var accepted, overloaded, other atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &Client{BaseURL: srv.URL, Client: fmt.Sprintf("soak-%d", g), Retry: &RetryPolicy{Attempts: 1, Base: time.Millisecond}}
			for i := 0; i < perEach; i++ {
				// Every second request is tier-0 (brownout bait), the rest
				// tier-1.
				tier := (g + i) % 2
				lctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				resp, err := c.Execute(lctx, core.Request{PromiseRequests: []core.PromiseRequest{grantReq(tier, false)}})
				cancel()
				switch {
				case err == nil && resp.Promises[0].Accepted:
					accepted.Add(1)
				case errors.Is(err, ErrOverloaded):
					overloaded.Add(1)
				default:
					other.Add(1)
					t.Errorf("request diverged: resp=%+v err=%v", resp, err)
				}
			}
		}()
	}
	wg.Wait()

	if got := accepted.Load() + overloaded.Load(); got != total || other.Load() != 0 {
		t.Fatalf("accepted=%d + overloaded=%d = %d, want %d with 0 divergent", accepted.Load(), overloaded.Load(), got, total)
	}
	// Unthrottled comparison: capacity covers every request, so an
	// unthrottled engine accepts all of them — any admitted-but-rejected
	// request would be divergence, counted above. The engine's own grant
	// count must equal the wire-level accepted count exactly.
	if usage := countGrants(t, m); usage != accepted.Load() {
		t.Fatalf("engine recorded %d grants, wire saw %d accepts", usage, accepted.Load())
	}
	st := sv.admit.snapshot()
	sheds := st.ShedBrownout + st.ShedDeadline + st.ShedFull
	if int64(sheds) != overloaded.Load() {
		t.Fatalf("limiter counted %d sheds, clients saw %d", sheds, overloaded.Load())
	}
	var byTier uint64
	for _, n := range st.ShedByTier {
		byTier += n
	}
	if byTier != sheds {
		t.Fatalf("per-tier shed counts sum to %d, want %d (%+v)", byTier, sheds, st.ShedByTier)
	}
	if st.Admitted != uint64(accepted.Load()) {
		t.Fatalf("admitted=%d, accepted=%d", st.Admitted, accepted.Load())
	}
	if overloaded.Load() == 0 {
		t.Fatal("soak produced no sheds; limiter never engaged")
	}
	t.Logf("soak: accepted=%d overloaded=%d queued=%d sheds=%+v", accepted.Load(), overloaded.Load(), st.Queued, st.ShedByTier)
}

// countGrants tallies the engine's granted promises for the soak's
// divergence check.
func countGrants(t *testing.T, m *core.Manager) int64 {
	t.Helper()
	return m.Stats().Grants
}

// TestRetryAfterHonored pins the satellite contract: a shed response's
// Retry-After overrides the client's own (here deliberately huge) backoff,
// and the typed overload error survives to the final wrapped failure.
func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set(FaultHeader, protocol.FaultOverloaded)
			http.Error(w, "transport: server overloaded: queue full", http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		_ = protocol.Encode(w, &protocol.Envelope{})
	}))
	defer srv.Close()

	// Base=30s: if the client used its own backoff the test would time
	// out; honoring Retry-After=1s finishes promptly.
	c := &Client{BaseURL: srv.URL, Client: "ra", Retry: &RetryPolicy{Attempts: 2, Base: 30 * time.Second}}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if _, err := c.Do(ctx, &protocol.Envelope{}); err != nil {
		t.Fatalf("Do after retry = %v", err)
	}
	elapsed := time.Since(start)
	if elapsed < 900*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("retry waited %v, want ~1s from Retry-After", elapsed)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
}

// TestOverloadErrorTyped: a client that exhausts its retries against a
// shedding server surfaces ErrOverloaded through the giving-up wrapper.
func TestOverloadErrorTyped(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.Header().Set(FaultHeader, protocol.FaultOverloaded)
		http.Error(w, "transport: server overloaded: queue full", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, Client: "typed", Retry: &RetryPolicy{Attempts: 2, Base: time.Millisecond}}
	_, err := c.Do(context.Background(), &protocol.Envelope{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("exhausted retries = %v, want ErrOverloaded", err)
	}
}

// TestDegradedOverTheWire: a degraded engine's rejects cross the wire as
// 503 + fault code and come back as core.ErrDegraded, while /readyz flips
// and /healthz stays green.
func TestDegradedOverTheWire(t *testing.T) {
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := seedPool(m, "widgets", 10); err != nil {
		t.Fatal(err)
	}
	eng := &fakeDegraded{Engine: m}
	reg := service.NewRegistry()
	srv := httptest.NewServer(NewServer(eng, reg).Handler())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, Client: "deg", Retry: &RetryPolicy{Attempts: 2, Base: time.Millisecond}}

	if _, err := c.Execute(context.Background(), core.Request{PromiseRequests: []core.PromiseRequest{grantReq(1, false)}}); !errors.Is(err, core.ErrDegraded) {
		t.Fatalf("grant against degraded daemon = %v, want core.ErrDegraded", err)
	}

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "disk gone") {
		t.Fatalf("/readyz = %d %q, want 503 with reason", resp.StatusCode, body)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok", resp.StatusCode, body)
	}
}

// fakeDegraded reports permanent degradation and rejects mutations the way
// a latched engine does, without needing a real WAL failure.
type fakeDegraded struct {
	Engine
}

func (f *fakeDegraded) Health() core.Health {
	return core.Health{Degraded: true, Reason: "disk gone"}
}

func (f *fakeDegraded) Execute(ctx context.Context, req core.Request) (*core.Response, error) {
	return nil, fmt.Errorf("%w: disk gone", core.ErrDegraded)
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFailpointEndpoint: the HTTP harness arms, lists and clears
// failpoints — and is absent unless explicitly enabled.
func TestFailpointEndpoint(t *testing.T) {
	defer failpoint.Reset()
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := seedPool(m, "widgets", 10); err != nil {
		t.Fatal(err)
	}
	reg := service.NewRegistry()
	srv := httptest.NewServer(NewServer(m, reg, WithFailpointEndpoint()).Handler())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, Client: "fp", Retry: &RetryPolicy{Attempts: 1, Base: time.Millisecond}}

	post := func(spec string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/failpoints", "text/plain", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post("transport/handle=error(injected boom)"); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("arm = %d", resp.StatusCode)
	}
	if _, err := c.Execute(context.Background(), core.Request{PromiseRequests: []core.PromiseRequest{grantReq(1, false)}}); err == nil || !strings.Contains(err.Error(), "injected boom") {
		t.Fatalf("armed handler failpoint = %v, want injected boom", err)
	}
	resp, err := http.Get(srv.URL + "/failpoints")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); !strings.Contains(body, "transport/handle=error(injected boom)") {
		t.Fatalf("list = %q", body)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/failpoints", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if _, err := c.Execute(context.Background(), core.Request{PromiseRequests: []core.PromiseRequest{grantReq(1, false)}}); err != nil {
		t.Fatalf("grant after reset: %v", err)
	}
	if resp := post("nonsense"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec = %d, want 400", resp.StatusCode)
	}

	// Without the option the endpoint does not exist.
	plain := httptest.NewServer(NewServer(m, reg).Handler())
	defer plain.Close()
	resp2, err := http.Post(plain.URL+"/failpoints", "text/plain", strings.NewReader("x=error(y)"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusNoContent {
		t.Fatal("failpoint endpoint reachable without WithFailpointEndpoint")
	}
}

// TestDropResponseFailpoint: a dropped response is the mid-flight failure
// class — retried for repeat-safe reads, failed fast for grants.
func TestDropResponseFailpoint(t *testing.T) {
	defer failpoint.Reset()
	srv, _ := newTestServer(t, func(m *core.Manager) error { return seedPool(m, "widgets", 10) })
	c := &Client{BaseURL: srv.URL, Client: "drop", Retry: &RetryPolicy{Attempts: 3, Base: time.Millisecond}}
	ctx := context.Background()

	if err := failpoint.Arm("transport/drop-response=1*error(peer response dropped)"); err != nil {
		t.Fatal(err)
	}
	// A check batch is repeat-safe: the dropped response burns one attempt
	// and the retry succeeds.
	if _, err := c.CheckBatch(ctx, "drop", []string{"whatever"}); err != nil {
		t.Fatalf("repeat-safe check after one dropped response: %v", err)
	}

	if err := failpoint.Arm("transport/drop-response=1*error(peer response dropped)"); err != nil {
		t.Fatal(err)
	}
	// A grant may have committed server-side: it must fail fast, not
	// retry into a double grant.
	if _, err := c.Execute(ctx, core.Request{PromiseRequests: []core.PromiseRequest{grantReq(1, false)}}); err == nil || !strings.Contains(err.Error(), "peer response dropped") {
		t.Fatalf("grant with dropped response = %v, want fail-fast drop error", err)
	}
}
