package transport

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// chaosProxy is a TCP proxy that kills the first N connections mid-flight
// (reads a little, then resets), then pipes the rest to the backend — the
// client sees the failure only after its request left the machine.
type chaosProxy struct {
	ln      net.Listener
	backend string

	mu    sync.Mutex
	drops int
}

func newChaosProxy(t *testing.T, backend string, drops int) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, backend: strings.TrimPrefix(backend, "http://"), drops: drops}
	go p.serve()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *chaosProxy) URL() string { return "http://" + p.ln.Addr().String() }

func (p *chaosProxy) serve() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		kill := p.drops > 0
		if kill {
			p.drops--
		}
		p.mu.Unlock()
		if kill {
			// Read part of the request so the client finished (or is
			// finishing) its send, then reset — a mid-flight death, not a
			// refused dial.
			buf := make([]byte, 256)
			_, _ = conn.Read(buf)
			if tc, ok := conn.(*net.TCPConn); ok {
				_ = tc.SetLinger(0) // RST, so the peer sees a reset
			}
			conn.Close()
			continue
		}
		go p.pipe(conn)
	}
}

func (p *chaosProxy) pipe(down net.Conn) {
	up, err := net.Dial("tcp", p.backend)
	if err != nil {
		down.Close()
		return
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 32<<10)
		for {
			n, err := down.Read(buf)
			if n > 0 {
				if _, werr := up.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
	}()
	buf := make([]byte, 32<<10)
	for {
		n, err := up.Read(buf)
		if n > 0 {
			if _, werr := down.Write(buf[:n]); werr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	down.Close()
	up.Close()
	<-done
}

// freshClient returns a Client with its own connection pool, so killed
// connections from one test never leak into another.
func freshClient(t *testing.T, url string) *Client {
	t.Helper()
	hc := &http.Client{Transport: &http.Transport{}}
	t.Cleanup(hc.CloseIdleConnections)
	return &Client{BaseURL: url, Client: "retry-test", HTTP: hc}
}

// A server that 503s is saying "not yet" before processing anything, so
// even a grant retries through it.
func TestRetryOn503(t *testing.T) {
	innerSrv, _ := newTestServer(t, func(m *core.Manager) error {
		return seedPool(m, "w", 5)
	})
	inner := innerSrv.Config.Handler
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := freshClient(t, srv.URL)
	pr, err := c.RequestPromise(bg, []core.Predicate{core.Quantity("w", 2)}, time.Minute)
	if err != nil {
		t.Fatalf("grant through warming-up server: %v", err)
	}
	if !pr.Accepted {
		t.Fatalf("rejected: %s", pr.Reason)
	}
	if n := atomic.LoadInt32(&calls); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (two 503s then success)", n)
	}
}

// A read-only envelope (checks only) retries through mid-flight connection
// deaths; the chaos proxy kills the first two connections.
func TestRetryReadOnlyThroughConnectionReset(t *testing.T) {
	srv, m := newTestServer(t, func(m *core.Manager) error {
		return seedPool(m, "w", 5)
	})
	prs, err := m.GrantBatch(bg, "retry-test", []core.PromiseRequest{
		{Predicates: []core.Predicate{core.Quantity("w", 1)}, Duration: time.Minute},
	})
	if err != nil || !prs[0].Accepted {
		t.Fatalf("seed grant: %v %+v", err, prs)
	}
	pr := prs[0]

	proxy := newChaosProxy(t, srv.URL, 2)
	c := freshClient(t, proxy.URL())
	errs, err := c.CheckBatch(bg, "retry-test", []string{pr.PromiseID})
	if err != nil {
		t.Fatalf("check through chaos proxy: %v", err)
	}
	if errs[0] != nil {
		t.Fatalf("check verdict: %v", errs[0])
	}
}

// A grant that dies mid-flight may have committed server-side; repeating it
// could grant twice, so it fails fast instead of retrying.
func TestGrantFailsFastOnConnectionReset(t *testing.T) {
	srv, _ := newTestServer(t, func(m *core.Manager) error {
		return seedPool(m, "w", 5)
	})
	proxy := newChaosProxy(t, srv.URL, 1)
	c := freshClient(t, proxy.URL())
	_, err := c.RequestPromise(bg, []core.Predicate{core.Quantity("w", 1)}, time.Minute)
	if err == nil {
		t.Fatal("grant retried through a mid-flight connection death; want fail-fast")
	}
}

// The backoff loop honors the context deadline: a server that only ever
// 503s cannot hold the caller past its budget.
func TestRetryHonorsContextDeadline(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := freshClient(t, srv.URL)
	c.Retry = &RetryPolicy{Attempts: 50, Base: 40 * time.Millisecond}
	ctx, cancel := context.WithTimeout(bg, 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.FetchStats(ctx)
	if err == nil {
		t.Fatal("want error from 503-only server")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ran %v past the 80ms deadline", elapsed)
	}
}

// Exhausted attempts surface the last transient error.
func TestRetryGivesUpAfterAttempts(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, "no", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := freshClient(t, srv.URL)
	c.Retry = &RetryPolicy{Attempts: 2, Base: time.Millisecond}
	_, err := c.FetchStats(bg)
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "giving up after 2 attempts") {
		t.Fatalf("err = %v, want giving-up message", err)
	}
	if n := atomic.LoadInt32(&calls); n != 2 {
		t.Fatalf("server saw %d requests, want 2", n)
	}
}
