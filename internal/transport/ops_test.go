package transport

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/txn"
)

// newOpsWorld serves a single-store engine with one seeded pool and the
// standard actions.
func newOpsWorld(t *testing.T) (*httptest.Server, *core.Manager, *Client) {
	t.Helper()
	srv, m := newTestServer(t, func(m *core.Manager) error {
		tx := m.Store().Begin(txn.Block)
		if err := m.Resources().CreatePool(tx, "w", 20, nil); err != nil {
			return err
		}
		return tx.Commit()
	})
	return srv, m, &Client{BaseURL: srv.URL, Client: "ops"}
}

func TestStatsEndpointContentTypeAndJSON(t *testing.T) {
	srv, _, c := newOpsWorld(t)

	// Generate some activity first.
	if _, err := c.Execute(bg, core.Request{PromiseRequests: []core.PromiseRequest{{
		Predicates: []core.Predicate{core.Quantity("w", 1)},
	}}}); err != nil {
		t.Fatal(err)
	}

	// Text form carries an explicit Content-Type.
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text /stats Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "requests=") {
		t.Fatalf("text /stats body = %q", body)
	}

	// ?format=json yields machine-readable counters.
	resp, err = http.Get(srv.URL + "/stats?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json /stats Content-Type = %q", ct)
	}
	var st core.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests < 1 || st.Grants < 1 {
		t.Fatalf("scraped stats = %+v", st)
	}

	// The client face reads the same snapshot.
	cst, err := c.FetchStats(bg)
	if err != nil {
		t.Fatal(err)
	}
	if cst.Grants != st.Grants {
		t.Fatalf("FetchStats grants = %d, scrape = %d", cst.Grants, st.Grants)
	}
}

func TestAuditEndpointContentTypeAndJSON(t *testing.T) {
	srv, _, c := newOpsWorld(t)

	resp, err := http.Get(srv.URL + "/audit")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text /audit Content-Type = %q", ct)
	}

	resp, err = http.Get(srv.URL + "/audit?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json /audit Content-Type = %q", ct)
	}
	var rep core.AuditReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("audit = %+v", rep)
	}

	// The Accept header negotiates JSON too.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/audit", nil)
	req.Header.Set("Accept", "application/json")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Accept-negotiated /audit Content-Type = %q", ct)
	}

	// And the client face decodes it into the same report type.
	crep, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !crep.Healthy() {
		t.Fatalf("client audit = %+v", crep)
	}
}

// TestBatchReleasesAndActions exercises the extended §6 batch envelope: a
// whole §4 upgrade burst — grants with in-request releases, standalone
// releases, piggybacked actions under environments, and checks — in one
// round trip.
func TestBatchReleasesAndActions(t *testing.T) {
	_, _, c := newOpsWorld(t)

	// Seed two promises to operate on.
	grants, err := c.GrantBatch(bg, "", []core.PromiseRequest{
		{Predicates: []core.Predicate{core.Quantity("w", 4)}},
		{Predicates: []core.Predicate{core.Quantity("w", 3)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range grants {
		if !g.Accepted {
			t.Fatalf("seed grant %d rejected: %s", i, g.Reason)
		}
	}

	out, err := c.DoBatch(bg, "", Batch{
		// An upgrade grant that atomically releases the first promise.
		Grants: []core.PromiseRequest{{
			Predicates: []core.Predicate{core.Quantity("w", 6)},
			Releases:   []string{grants[0].PromiseID},
		}},
		// A standalone release of the second, plus one dead id whose
		// failure must not strand its neighbour.
		Releases: []string{grants[1].PromiseID, "prm-ghost"},
		// A piggybacked action: read the pool level.
		Actions: []BatchAction{{Name: "pool-level", Params: map[string]string{"pool": "w"}}},
		// Checks run last, observing this envelope's own releases.
		Checks: []string{grants[0].PromiseID, grants[1].PromiseID},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Grants[0].Accepted {
		t.Fatalf("upgrade grant rejected: %s", out.Grants[0].Reason)
	}
	if out.ReleaseErrs[0] != nil {
		t.Fatalf("standalone release failed: %v", out.ReleaseErrs[0])
	}
	if !errors.Is(out.ReleaseErrs[1], core.ErrPromiseNotFound) {
		t.Fatalf("ghost release = %v, want not-found", out.ReleaseErrs[1])
	}
	if out.Actions[0].Err != nil || out.Actions[0].Result != "20" {
		t.Fatalf("piggybacked pool-level = %+v", out.Actions[0])
	}
	if !errors.Is(out.CheckErrs[0], core.ErrPromiseReleased) {
		t.Fatalf("check of upgraded-away promise = %v, want released", out.CheckErrs[0])
	}
	if !errors.Is(out.CheckErrs[1], core.ErrPromiseReleased) {
		t.Fatalf("check of batch-released promise = %v, want released", out.CheckErrs[1])
	}

	// Only the new 6-unit promise holds: 20 - 6 leaves 14.
	pr, err := c.RequestPromise(bg, []core.Predicate{core.Quantity("w", 14)}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Accepted {
		t.Fatalf("capacity wrong after batch burst: %s", pr.Reason)
	}
}

// TestBatchActionWithEnvReleases: a piggybacked action's environment release
// applies atomically with the action — the §4 purchase inside a batch.
func TestBatchActionWithEnvReleases(t *testing.T) {
	_, m, c := newOpsWorld(t)

	pr, err := c.RequestPromise(bg, []core.Predicate{core.Quantity("w", 5)}, time.Minute)
	if err != nil || !pr.Accepted {
		t.Fatalf("grant: %v %+v", err, pr)
	}
	out, err := c.DoBatch(bg, "", Batch{
		Actions: []BatchAction{{
			Name:   "adjust-pool",
			Params: map[string]string{"pool": "w", "delta": "-5"},
			Env:    []core.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Actions[0].Err != nil || out.Actions[0].Result != "15" {
		t.Fatalf("purchase action = %+v", out.Actions[0])
	}
	info, err := m.PromiseInfo(pr.PromiseID)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != core.Released {
		t.Fatalf("promise state after batch purchase = %v, want released", info.State)
	}
}

// TestClientRejectsClosureActions: function actions cannot cross the wire
// and must fail loudly, not silently drop.
func TestClientRejectsClosureActions(t *testing.T) {
	_, _, c := newOpsWorld(t)
	_, err := c.Execute(bg, core.Request{
		Action: func(ac *core.ActionContext) (any, error) { return nil, nil },
	})
	if !errors.Is(err, core.ErrBadRequest) {
		t.Fatalf("closure action over the wire = %v, want bad-request", err)
	}
}

// TestUnknownActionNameParity: an unknown ActionName is ErrBadRequest on a
// local engine, and must round-trip onto the same sentinel over the wire —
// the unified-Engine error contract.
func TestUnknownActionNameParity(t *testing.T) {
	_, m, c := newOpsWorld(t)

	_, errL := m.Execute(bg, core.Request{Client: "ops", ActionName: "launch-missiles"})
	_, errR := c.Execute(bg, core.Request{Client: "ops", ActionName: "launch-missiles"})
	if !errors.Is(errL, core.ErrBadRequest) {
		t.Fatalf("local unknown action = %v, want bad-request", errL)
	}
	if !errors.Is(errR, core.ErrBadRequest) {
		t.Fatalf("wire unknown action = %v, want bad-request", errR)
	}

	// Missing client is the other top-level bad-request class; a Client
	// with no bound identity sends it through unstamped.
	bare := &Client{BaseURL: c.BaseURL}
	_, errL = m.Execute(bg, core.Request{})
	_, errR = bare.Execute(bg, core.Request{})
	if !errors.Is(errL, core.ErrBadRequest) || !errors.Is(errR, core.ErrBadRequest) {
		t.Fatalf("missing client: local=%v wire=%v, want bad-request on both", errL, errR)
	}
}

// TestExecuteValidatesResponseCount: a 200 reply missing promise responses
// must surface as an error, not an index-out-of-range at the call site.
func TestExecuteValidatesResponseCount(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/xml")
		io.WriteString(w, `<?xml version="1.0" encoding="UTF-8"?><envelope><header></header><body></body></envelope>`)
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, Client: "x"}
	_, err := c.Execute(bg, core.Request{PromiseRequests: []core.PromiseRequest{{
		Predicates: []core.Predicate{core.Quantity("w", 1)},
	}}})
	if err == nil || !strings.Contains(err.Error(), "promise responses") {
		t.Fatalf("headerless reply = %v, want response-count error", err)
	}
}
