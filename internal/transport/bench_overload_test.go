package transport

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/failpoint"
	"repro/internal/service"
)

// BenchmarkGrantUnderOverload drives the grant path at client parallelism
// well above server capacity — a failpoint holds each dispatched request
// for 1ms, manufacturing sustained overload — unprotected and behind the
// admission limiter. ns/op compares mean request latency; the shed-ratio
// metric shows how much of the offered load the limiter refused instead
// of queuing — the overload story in two numbers. CI's bench-smoke job
// reruns both variants at 100 iterations.
func BenchmarkGrantUnderOverload(b *testing.B) {
	defer failpoint.Reset()
	if err := failpoint.Arm("transport/handle=sleep(1ms)"); err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		opts []ServerOption
	}{
		{"unprotected", nil},
		{"admission", []ServerOption{WithAdmission(AdmissionConfig{MaxInFlight: 4, MaxQueue: 8})}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			m, err := core.New(core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			if err := seedPool(m, "widgets", int64(b.N)+1024); err != nil {
				b.Fatal(err)
			}
			reg := service.NewRegistry()
			service.RegisterStandard(reg)
			srv := httptest.NewServer(NewServer(m, reg, bc.opts...).Handler())
			defer srv.Close()

			var accepted, shed, failed atomic.Int64
			var firstErr atomic.Value
			b.SetParallelism(4) // 4x GOMAXPROCS clients vs 4 admission slots
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				c := &Client{BaseURL: srv.URL, Client: "bench", Retry: &RetryPolicy{Attempts: 1, Base: time.Millisecond}}
				for pb.Next() {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					resp, err := c.Execute(ctx, core.Request{PromiseRequests: []core.PromiseRequest{grantReq(0, false)}})
					cancel()
					switch {
					case err == nil && resp.Promises[0].Accepted:
						accepted.Add(1)
					case errors.Is(err, ErrOverloaded):
						shed.Add(1)
					default:
						// Unprotected overload fails chaotically — timeouts,
						// dropped connections — which is the point of the
						// comparison; count it rather than hide it.
						failed.Add(1)
						firstErr.CompareAndSwap(nil, fmt.Sprintf("%+v / %v", resp, err))
					}
				}
			})
			b.StopTimer()
			if n := accepted.Load() + shed.Load() + failed.Load(); n > 0 {
				b.ReportMetric(float64(shed.Load())/float64(n), "shed-ratio")
				b.ReportMetric(float64(failed.Load())/float64(n), "err-ratio")
			}
			if n := failed.Load(); n > 0 {
				b.Logf("%s: %d/%d requests failed untyped; first: %s", bc.name, n, b.N, firstErr.Load())
			}
		})
	}
}
