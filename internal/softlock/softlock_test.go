package softlock

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/resource"
	"repro/internal/txn"
)

func newTags(t *testing.T) (*Tags, *resource.Manager, *txn.Store) {
	t.Helper()
	store := txn.NewStore()
	rm, err := resource.NewManager(store)
	if err != nil {
		t.Fatal(err)
	}
	tags, err := NewTags(store, rm)
	if err != nil {
		t.Fatal(err)
	}
	return tags, rm, store
}

func seedInstance(t *testing.T, rm *resource.Manager, store *txn.Store, id string) {
	t.Helper()
	tx := store.Begin(txn.Block)
	if err := rm.CreateInstance(tx, id, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireReleaseTake(t *testing.T) {
	tags, rm, store := newTags(t)
	seedInstance(t, rm, store, "room-212")
	tx := store.Begin(txn.Block)
	defer tx.Commit()

	if err := tags.Acquire(tx, "room-212", "alice"); err != nil {
		t.Fatal(err)
	}
	h, _ := tags.Holder(tx, "room-212")
	if h != "alice" {
		t.Fatalf("holder = %q", h)
	}
	in, _ := rm.Instance(tx, "room-212")
	if in.Status != resource.Promised {
		t.Fatalf("status = %v", in.Status)
	}
	if err := tags.CheckInvariant(tx); err != nil {
		t.Fatal(err)
	}

	if err := tags.Release(tx, "room-212", "alice"); err != nil {
		t.Fatal(err)
	}
	in, _ = rm.Instance(tx, "room-212")
	if in.Status != resource.Available {
		t.Fatalf("status after release = %v", in.Status)
	}
	h, _ = tags.Holder(tx, "room-212")
	if h != "" {
		t.Fatalf("holder after release = %q", h)
	}

	if err := tags.Acquire(tx, "room-212", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := tags.Take(tx, "room-212", "bob"); err != nil {
		t.Fatal(err)
	}
	in, _ = rm.Instance(tx, "room-212")
	if in.Status != resource.Taken {
		t.Fatalf("status after take = %v", in.Status)
	}
	if err := tags.CheckInvariant(tx); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleAcquireRejected(t *testing.T) {
	// §3.2: a named instance cannot be promised to two clients at once.
	tags, rm, store := newTags(t)
	seedInstance(t, rm, store, "car-vin123")
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	if err := tags.Acquire(tx, "car-vin123", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := tags.Acquire(tx, "car-vin123", "bob"); !errors.Is(err, ErrAlreadyAllocated) {
		t.Fatalf("double acquire: %v", err)
	}
	// Even re-acquiring by the same holder is rejected: promises are
	// identified, not idempotent at this layer.
	if err := tags.Acquire(tx, "car-vin123", "alice"); !errors.Is(err, ErrAlreadyAllocated) {
		t.Fatalf("self re-acquire: %v", err)
	}
}

func TestStrangerCannotReleaseOrTake(t *testing.T) {
	tags, rm, store := newTags(t)
	seedInstance(t, rm, store, "seat-24G")
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	_ = tags.Acquire(tx, "seat-24G", "alice")
	if err := tags.Release(tx, "seat-24G", "mallory"); !errors.Is(err, ErrNotHolder) {
		t.Fatalf("stranger release: %v", err)
	}
	if err := tags.Take(tx, "seat-24G", "mallory"); !errors.Is(err, ErrNotHolder) {
		t.Fatalf("stranger take: %v", err)
	}
	// Unallocated instance cannot be released at all.
	seedInstance2 := func(id string) {
		if err := rm.CreateInstance(tx, id, nil); err != nil {
			t.Fatal(err)
		}
	}
	seedInstance2("seat-25A")
	if err := tags.Release(tx, "seat-25A", "alice"); !errors.Is(err, ErrNotHolder) {
		t.Fatalf("release unallocated: %v", err)
	}
}

func TestForget(t *testing.T) {
	tags, rm, store := newTags(t)
	seedInstance(t, rm, store, "painting")
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	_ = tags.Acquire(tx, "painting", "alice")
	// The application action consumes the painting directly (PM-unaware).
	if err := rm.SetStatus(tx, "painting", resource.Taken); err != nil {
		t.Fatal(err)
	}
	if err := tags.Forget(tx, "painting", "mallory"); !errors.Is(err, ErrNotHolder) {
		t.Fatalf("stranger forget: %v", err)
	}
	if err := tags.Forget(tx, "painting", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := tags.CheckInvariant(tx); err != nil {
		t.Fatal(err)
	}
	in, _ := rm.Instance(tx, "painting")
	if in.Status != resource.Taken {
		t.Fatalf("Forget changed status to %v", in.Status)
	}
}

func TestAcquireMissingInstance(t *testing.T) {
	tags, _, store := newTags(t)
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	if err := tags.Acquire(tx, "ghost", "alice"); !errors.Is(err, txn.ErrNotFound) {
		t.Fatalf("missing instance: %v", err)
	}
}

func TestInvariantDetectsDrift(t *testing.T) {
	tags, rm, store := newTags(t)
	seedInstance(t, rm, store, "i1")
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	// Promised without holder record: simulate an ill-behaved app flipping
	// the tag directly.
	if err := rm.SetStatus(tx, "i1", resource.Promised); err != nil {
		t.Fatal(err)
	}
	if err := tags.CheckInvariant(tx); err == nil {
		t.Fatal("invariant should flag promised-without-holder")
	}
	// Fix it and break it the other way: holder record for available
	// instance.
	_ = rm.SetStatus(tx, "i1", resource.Available)
	if err := tx.Put(Table, "i1", &holderRow{holder: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := tags.CheckInvariant(tx); err == nil {
		t.Fatal("invariant should flag holder-without-promise")
	}
}

func TestInvariantUnknownInstance(t *testing.T) {
	tags, _, store := newTags(t)
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	if err := tx.Put(Table, "phantom", &holderRow{holder: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := tags.CheckInvariant(tx); err == nil {
		t.Fatal("invariant should flag record for unknown instance")
	}
}

func TestAbortRestoresTags(t *testing.T) {
	tags, rm, store := newTags(t)
	seedInstance(t, rm, store, "i")
	tx := store.Begin(txn.Block)
	_ = tags.Acquire(tx, "i", "a")
	_ = tx.Abort()
	check := store.Begin(txn.Block)
	defer check.Commit()
	in, _ := rm.Instance(check, "i")
	if in.Status != resource.Available {
		t.Fatalf("status after abort = %v", in.Status)
	}
	h, _ := tags.Holder(check, "i")
	if h != "" {
		t.Fatalf("holder after abort = %q", h)
	}
	if err := tags.CheckInvariant(check); err != nil {
		t.Fatal(err)
	}
}

func TestHolders(t *testing.T) {
	tags, rm, store := newTags(t)
	seedInstance(t, rm, store, "a")
	seedInstance(t, rm, store, "b")
	seedInstance(t, rm, store, "c")
	tx := store.Begin(txn.Block)
	defer tx.Commit()
	_ = tags.Acquire(tx, "a", "alice")
	_ = tags.Acquire(tx, "c", "carol")
	holders, err := tags.Holders(tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(holders) != 2 || holders["a"] != "alice" || holders["c"] != "carol" {
		t.Fatalf("holders = %v", holders)
	}
	if _, held := holders["b"]; held {
		t.Fatal("b should be unheld")
	}
}

func TestNewTagsDuplicateTable(t *testing.T) {
	store := txn.NewStore()
	rm, err := resource.NewManager(store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTags(store, rm); err != nil {
		t.Fatal(err)
	}
	if _, err := NewTags(store, rm); err == nil {
		t.Fatal("second NewTags on one store accepted")
	}
}

func TestConcurrentAcquireSingleWinner(t *testing.T) {
	tags, rm, store := newTags(t)
	seedInstance(t, rm, store, "unique")
	const clients = 16
	var wg sync.WaitGroup
	winners := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := "c" + string(rune('0'+c%10)) + string(rune('a'+c/10))
			for {
				tx := store.Begin(txn.Block)
				err := tags.Acquire(tx, "unique", name)
				if err == nil {
					if err = tx.Commit(); err == nil {
						winners <- name
						return
					}
				} else {
					_ = tx.Abort()
				}
				if errors.Is(err, ErrAlreadyAllocated) {
					return
				}
				if errors.Is(err, txn.ErrDeadlock) || errors.Is(err, txn.ErrWouldBlock) {
					continue
				}
				if err != nil {
					t.Errorf("client %s: %v", name, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(winners)
	var got []string
	for w := range winners {
		got = append(got, w)
	}
	if len(got) != 1 {
		t.Fatalf("winners = %v, want exactly one", got)
	}
}
