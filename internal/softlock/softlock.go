// Package softlock implements the "Allocated Tags" technique of paper §5
// for resources accessed via a named view: "keep an availability status
// field as part of the data used to describe the resource instance … set to
// 'promised' when the instance was provisionally allocated to a client …
// then either set to 'taken' by a subsequent action, or … reset back to
// 'available' if the promise is released."
//
// This is the "common business practice sometimes called 'soft locks'" of
// §2: the record is not locked against access; applications simply skip
// records tagged as allocated.
//
// The table pairs each promised instance with its holder so that one client
// cannot release or take another's allocation — enforcing §3.2's rule that
// "a single named resource instance cannot be promised to more than one
// client application at the same time."
package softlock

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/resource"
	"repro/internal/txn"
)

// Table is the store table mapping instance id -> holder.
const Table = "softlocks"

// Errors reported by tag transitions.
var (
	// ErrAlreadyAllocated is returned when promising an instance that is
	// already promised or taken.
	ErrAlreadyAllocated = errors.New("softlock: instance already allocated")
	// ErrNotHolder is returned when a client manipulates an allocation it
	// does not hold.
	ErrNotHolder = errors.New("softlock: caller does not hold this allocation")
)

// holderRow records which client holds an instance's soft lock.
type holderRow struct {
	holder string
}

// CloneRow implements txn.Row.
func (h *holderRow) CloneRow() txn.Row { c := *h; return &c }

// MarshalJSON implements json.Marshaler for checkpoint serialization (the
// row's field is unexported by design; durability needs a stable encoding).
func (h *holderRow) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Holder string `json:"holder"`
	}{Holder: h.holder})
}

// UnmarshalJSON implements json.Unmarshaler for checkpoint recovery.
func (h *holderRow) UnmarshalJSON(data []byte) error {
	var j struct {
		Holder string `json:"holder"`
	}
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	h.holder = j.Holder
	return nil
}

// DecodeRow decodes a serialized soft-lock row back into a store row — the
// softlock table's codec for WAL/checkpoint recovery.
func DecodeRow(data []byte) (txn.Row, error) {
	h := &holderRow{}
	if err := json.Unmarshal(data, h); err != nil {
		return nil, err
	}
	return h, nil
}

// Tags manages allocated-tag transitions over named instances.
type Tags struct {
	store *txn.Store
	rm    *resource.Manager
}

// NewTags creates the soft-lock table and returns a Tags manager.
func NewTags(store *txn.Store, rm *resource.Manager) (*Tags, error) {
	if err := store.CreateTable(Table); err != nil {
		return nil, err
	}
	return &Tags{store: store, rm: rm}, nil
}

// Acquire tags instance id as promised to holder. Fails with
// ErrAlreadyAllocated if the instance is not currently available.
func (t *Tags) Acquire(tx *txn.Tx, id, holder string) error {
	in, err := t.rm.Instance(tx, id)
	if err != nil {
		return err
	}
	if in.Status != resource.Available {
		return fmt.Errorf("%w: %q is %v", ErrAlreadyAllocated, id, in.Status)
	}
	if err := t.rm.SetStatus(tx, id, resource.Promised); err != nil {
		return err
	}
	return tx.Put(Table, id, &holderRow{holder: holder})
}

// Release returns a promised instance to available. Only the holder may
// release.
func (t *Tags) Release(tx *txn.Tx, id, holder string) error {
	if err := t.checkHolder(tx, id, holder); err != nil {
		return err
	}
	if err := t.rm.SetStatus(tx, id, resource.Available); err != nil {
		return err
	}
	return tx.Delete(Table, id)
}

// Take consumes a promised instance (promised -> taken), ending the
// allocation. Only the holder may take.
func (t *Tags) Take(tx *txn.Tx, id, holder string) error {
	if err := t.checkHolder(tx, id, holder); err != nil {
		return err
	}
	if err := t.rm.SetStatus(tx, id, resource.Taken); err != nil {
		return err
	}
	return tx.Delete(Table, id)
}

// Forget removes holder's allocation record without touching the
// instance's status. The promise manager uses it when releasing a promise
// whose instance the application action already consumed directly (the
// action set the tag to taken itself; §8 allows actions to "make state
// changes that will violate those promises that are being released
// atomically with the action").
func (t *Tags) Forget(tx *txn.Tx, id, holder string) error {
	if err := t.checkHolder(tx, id, holder); err != nil {
		return err
	}
	return tx.Delete(Table, id)
}

func (t *Tags) checkHolder(tx *txn.Tx, id, holder string) error {
	row, err := tx.Get(Table, id)
	if errors.Is(err, txn.ErrNotFound) {
		return fmt.Errorf("%w: %q has no allocation", ErrNotHolder, id)
	}
	if err != nil {
		return err
	}
	if row.(*holderRow).holder != holder {
		return fmt.Errorf("%w: %q is held by another client", ErrNotHolder, id)
	}
	return nil
}

// Holder reports who holds instance id, or "" when unallocated.
func (t *Tags) Holder(r txn.Reader, id string) (string, error) {
	row, err := r.Get(Table, id)
	if errors.Is(err, txn.ErrNotFound) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	return row.(*holderRow).holder, nil
}

// Holders returns a snapshot of every allocation: instance id -> holder.
// The promise manager's property-view planner uses it to classify instances
// in one pass instead of a lookup per instance.
func (t *Tags) Holders(r txn.Reader) (map[string]string, error) {
	out := make(map[string]string)
	err := r.Scan(Table, func(key string, row txn.Row) bool {
		out[key] = row.(*holderRow).holder
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CheckInvariant verifies tag/table agreement: every promised instance has
// exactly one holder record and every holder record points at a promised
// instance.
func (t *Tags) CheckInvariant(r txn.Reader) error {
	holders := make(map[string]string)
	err := r.Scan(Table, func(key string, row txn.Row) bool {
		holders[key] = row.(*holderRow).holder
		return true
	})
	if err != nil {
		return err
	}
	instances, err := t.rm.Instances(r)
	if err != nil {
		return err
	}
	for _, in := range instances {
		_, held := holders[in.ID]
		if in.Status == resource.Promised && !held {
			return fmt.Errorf("softlock: instance %q promised but has no holder record", in.ID)
		}
		if in.Status != resource.Promised && held {
			return fmt.Errorf("softlock: instance %q is %v but has a holder record", in.ID, in.Status)
		}
		delete(holders, in.ID)
	}
	for id := range holders {
		return fmt.Errorf("softlock: holder record for unknown instance %q", id)
	}
	return nil
}
