// Package ids generates the identifiers used throughout the promise
// protocol: request identifiers (paper §6, used to correlate
// promise-requests with promise-responses) and promise identifiers (assigned
// by the promise maker on grant).
//
// Identifiers are process-unique, ordered, and cheap: a prefixed
// monotonically increasing counter. They are deliberately not UUIDs — the
// module is offline and the paper requires only uniqueness within a
// client/manager conversation plus human readability in traces.
package ids

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Generator produces identifiers with a fixed prefix, e.g. "req" or "prm".
// The zero value is not usable; construct with New.
type Generator struct {
	prefix string
	n      atomic.Uint64
}

// New returns a Generator whose identifiers look like "<prefix>-<n>".
func New(prefix string) *Generator {
	return &Generator{prefix: prefix}
}

// Next returns the next identifier. Safe for concurrent use.
func (g *Generator) Next() string {
	return fmt.Sprintf("%s-%d", g.prefix, g.n.Add(1))
}

// Count reports how many identifiers have been issued.
func (g *Generator) Count() uint64 { return g.n.Load() }

// EnsureAtLeast advances the counter to at least n, so identifiers issued
// after a crash recovery never collide with ones already durable. Safe for
// concurrent use; never moves the counter backwards.
func (g *Generator) EnsureAtLeast(n uint64) {
	for {
		cur := g.n.Load()
		if cur >= n || g.n.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Observe advances the counter past id if this generator issued it (it has
// the form "<prefix>-<n>"); other identifiers are ignored. Recovery feeds
// every durable identifier back through Observe so re-issued ids never
// collide — the prefix check matters because a recovered table can hold
// identifiers from other generators, e.g. promises migrated in from another
// shard.
func (g *Generator) Observe(id string) {
	rest, ok := strings.CutPrefix(id, g.prefix+"-")
	if !ok {
		return
	}
	if n, err := strconv.ParseUint(rest, 10, 64); err == nil {
		g.EnsureAtLeast(n)
	}
}
