// Package ids generates the identifiers used throughout the promise
// protocol: request identifiers (paper §6, used to correlate
// promise-requests with promise-responses) and promise identifiers (assigned
// by the promise maker on grant).
//
// Identifiers are process-unique, ordered, and cheap: a prefixed
// monotonically increasing counter. They are deliberately not UUIDs — the
// module is offline and the paper requires only uniqueness within a
// client/manager conversation plus human readability in traces.
package ids

import (
	"fmt"
	"sync/atomic"
)

// Generator produces identifiers with a fixed prefix, e.g. "req" or "prm".
// The zero value is not usable; construct with New.
type Generator struct {
	prefix string
	n      atomic.Uint64
}

// New returns a Generator whose identifiers look like "<prefix>-<n>".
func New(prefix string) *Generator {
	return &Generator{prefix: prefix}
}

// Next returns the next identifier. Safe for concurrent use.
func (g *Generator) Next() string {
	return fmt.Sprintf("%s-%d", g.prefix, g.n.Add(1))
}

// Count reports how many identifiers have been issued.
func (g *Generator) Count() uint64 { return g.n.Load() }
