package ids

import (
	"strings"
	"sync"
	"testing"
)

func TestNextHasPrefix(t *testing.T) {
	g := New("req")
	id := g.Next()
	if !strings.HasPrefix(id, "req-") {
		t.Fatalf("Next() = %q, want prefix req-", id)
	}
}

func TestNextMonotonic(t *testing.T) {
	g := New("prm")
	if a, b := g.Next(), g.Next(); a == b {
		t.Fatalf("two consecutive ids equal: %q", a)
	}
	if g.Next() != "prm-3" {
		t.Fatalf("expected third id prm-3")
	}
}

func TestCount(t *testing.T) {
	g := New("x")
	for i := 0; i < 7; i++ {
		g.Next()
	}
	if got := g.Count(); got != 7 {
		t.Fatalf("Count() = %d, want 7", got)
	}
}

func TestConcurrentUnique(t *testing.T) {
	g := New("c")
	const workers, per = 16, 200
	var mu sync.Mutex
	seen := make(map[string]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]string, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, g.Next())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate id %q", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*per {
		t.Fatalf("got %d unique ids, want %d", len(seen), workers*per)
	}
}
