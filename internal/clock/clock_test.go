package clock

import (
	"sync"
	"testing"
	"time"
)

func TestSystemMonotonicish(t *testing.T) {
	c := System{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("system clock went backwards: %v then %v", a, b)
	}
}

func TestFakeStartsAtGivenTime(t *testing.T) {
	start := time.Date(2007, 1, 7, 0, 0, 0, 0, time.UTC) // CIDR'07 opening day
	f := NewFake(start)
	if got := f.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}

func TestFakeAdvance(t *testing.T) {
	start := time.Unix(0, 0)
	f := NewFake(start)
	f.Advance(90 * time.Second)
	if got, want := f.Now(), start.Add(90*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	f.Advance(-30 * time.Second)
	if got, want := f.Now(), start.Add(60*time.Second); !got.Equal(want) {
		t.Fatalf("after negative advance Now() = %v, want %v", got, want)
	}
}

func TestFakeSet(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	target := time.Unix(1_000_000, 0)
	f.Set(target)
	if got := f.Now(); !got.Equal(target) {
		t.Fatalf("Now() = %v, want %v", got, target)
	}
}

func TestFakeConcurrentAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Advance(time.Second)
			_ = f.Now()
		}()
	}
	wg.Wait()
	if got, want := f.Now(), time.Unix(50, 0); !got.Equal(want) {
		t.Fatalf("after 50 concurrent advances Now() = %v, want %v", got, want)
	}
}

func TestFakeImplementsClock(t *testing.T) {
	var _ Clock = (*Fake)(nil)
	var _ Clock = System{}
}
