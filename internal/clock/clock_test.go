package clock

import (
	"sync"
	"testing"
	"time"
)

func TestSystemMonotonicish(t *testing.T) {
	c := System{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("system clock went backwards: %v then %v", a, b)
	}
}

func TestFakeStartsAtGivenTime(t *testing.T) {
	start := time.Date(2007, 1, 7, 0, 0, 0, 0, time.UTC) // CIDR'07 opening day
	f := NewFake(start)
	if got := f.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}

func TestFakeAdvance(t *testing.T) {
	start := time.Unix(0, 0)
	f := NewFake(start)
	f.Advance(90 * time.Second)
	if got, want := f.Now(), start.Add(90*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	f.Advance(-30 * time.Second)
	if got, want := f.Now(), start.Add(60*time.Second); !got.Equal(want) {
		t.Fatalf("after negative advance Now() = %v, want %v", got, want)
	}
}

func TestFakeSet(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	target := time.Unix(1_000_000, 0)
	f.Set(target)
	if got := f.Now(); !got.Equal(target) {
		t.Fatalf("Now() = %v, want %v", got, target)
	}
}

func TestFakeConcurrentAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Advance(time.Second)
			_ = f.Now()
		}()
	}
	wg.Wait()
	if got, want := f.Now(), time.Unix(50, 0); !got.Equal(want) {
		t.Fatalf("after 50 concurrent advances Now() = %v, want %v", got, want)
	}
}

func TestFakeImplementsClock(t *testing.T) {
	var _ Clock = (*Fake)(nil)
	var _ Clock = System{}
	var _ Alarmer = (*Fake)(nil)
	var _ Alarmer = System{}
}

func TestFakeAlarmsFireInOrderInsideAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	var fired []string
	f.AfterFunc(time.Unix(20, 0), func() { fired = append(fired, "b") })
	f.AfterFunc(time.Unix(10, 0), func() { fired = append(fired, "a") })
	f.AfterFunc(time.Unix(100, 0), func() { fired = append(fired, "far") })
	f.Advance(30 * time.Second)
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "b" {
		t.Fatalf("fired = %v, want [a b] synchronously inside Advance", fired)
	}
	f.Advance(100 * time.Second)
	if len(fired) != 3 || fired[2] != "far" {
		t.Fatalf("fired = %v, want the far alarm on the second advance", fired)
	}
}

func TestFakeAlarmStop(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	fired := false
	stop := f.AfterFunc(time.Unix(10, 0), func() { fired = true })
	stop()
	f.Advance(time.Minute)
	if fired {
		t.Fatal("stopped alarm fired")
	}
}

func TestFakeAlarmCanRescheduleFromCallback(t *testing.T) {
	// An alarm callback must be able to read the clock and register the
	// next alarm — the expiry heap's re-arming pattern.
	f := NewFake(time.Unix(0, 0))
	var at []time.Time
	var rearm func()
	rearm = func() {
		now := f.Now()
		at = append(at, now)
		if len(at) < 3 {
			f.AfterFunc(now.Add(10*time.Second), rearm)
		}
	}
	f.AfterFunc(time.Unix(10, 0), rearm)
	for i := 0; i < 3; i++ {
		f.Advance(10 * time.Second)
	}
	if len(at) != 3 {
		t.Fatalf("chained alarm fired %d times, want 3", len(at))
	}
}

func TestSystemAfterFunc(t *testing.T) {
	c := System{}
	ch := make(chan struct{})
	c.AfterFunc(time.Now().Add(10*time.Millisecond), func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("system alarm never fired")
	}
}
