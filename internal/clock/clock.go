// Package clock provides an injectable time source.
//
// Promise durations and expiry (paper §2: "Promises do not last forever")
// are defined relative to a Clock. Production code uses the system clock;
// tests and benchmarks use a manually advanced fake so that expiry behaviour
// is deterministic.
package clock

import (
	"sync"
	"time"
)

// Clock abstracts time for promise expiry.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
}

// System is a Clock backed by the wall clock.
type System struct{}

// Now implements Clock.
func (System) Now() time.Time { return time.Now() }

// Fake is a manually controlled Clock. The zero value starts at the Unix
// epoch. Fake is safe for concurrent use.
type Fake struct {
	mu  sync.Mutex
	now time.Time
}

// NewFake returns a Fake clock set to start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Advance moves the clock forward by d. Advancing by a negative duration
// moves it backwards; tests use that to probe clock-skew handling.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

// Set jumps the clock to t.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = t
}
