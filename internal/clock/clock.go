// Package clock provides an injectable time source.
//
// Promise durations and expiry (paper §2: "Promises do not last forever")
// are defined relative to a Clock. Production code uses the system clock;
// tests and benchmarks use a manually advanced fake so that expiry behaviour
// is deterministic.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for promise expiry.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
}

// Alarmer is implemented by clocks that can run a function when an instant
// is reached. The expiry heap uses it to fire promise expirations at their
// deadlines instead of at the next request. Both System and Fake implement
// it; a Clock that does not leaves expiry to the request path and explicit
// Sweep calls.
type Alarmer interface {
	// AfterFunc arranges for f to run once the clock reaches t and returns
	// a stop function cancelling the alarm (a no-op once fired). System
	// runs f on its own goroutine; Fake runs due alarms synchronously
	// inside Advance and Set, so a test that advances past a deadline
	// observes its effects before Advance returns. An alarm set at or
	// before the current instant fires asynchronously, immediately.
	AfterFunc(t time.Time, f func()) (stop func())
}

// System is a Clock backed by the wall clock.
type System struct{}

// Now implements Clock.
func (System) Now() time.Time { return time.Now() }

// AfterFunc implements Alarmer over time.AfterFunc.
func (System) AfterFunc(t time.Time, f func()) (stop func()) {
	d := time.Until(t)
	if d < 0 {
		d = 0
	}
	timer := time.AfterFunc(d, f)
	return func() { timer.Stop() }
}

// fakeAlarm is one pending Fake alarm.
type fakeAlarm struct {
	id int
	at time.Time
	f  func()
}

// Fake is a manually controlled Clock. The zero value starts at the Unix
// epoch. Fake is safe for concurrent use.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	nextID int
	alarms []*fakeAlarm
}

// NewFake returns a Fake clock set to start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Advance moves the clock forward by d, firing any alarms whose instant is
// reached, in instant order, before returning. Advancing by a negative
// duration moves it backwards (firing nothing); tests use that to probe
// clock-skew handling.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	due := f.collectDueLocked()
	f.mu.Unlock()
	for _, a := range due {
		a.f()
	}
}

// Set jumps the clock to t, firing any alarms t reaches before returning.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	f.now = t
	due := f.collectDueLocked()
	f.mu.Unlock()
	for _, a := range due {
		a.f()
	}
}

// collectDueLocked removes and returns every alarm at or before now, in
// (instant, registration) order. Callers run them after releasing mu, so an
// alarm callback can read the clock or register new alarms.
func (f *Fake) collectDueLocked() []*fakeAlarm {
	var due []*fakeAlarm
	kept := f.alarms[:0]
	for _, a := range f.alarms {
		if !a.at.After(f.now) {
			due = append(due, a)
		} else {
			kept = append(kept, a)
		}
	}
	f.alarms = kept
	sort.SliceStable(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	return due
}

// AfterFunc implements Alarmer. Alarms set at or before the current instant
// fire immediately on their own goroutine (matching System, whose timer
// also fires asynchronously); future alarms fire inside the Advance or Set
// call that reaches them.
func (f *Fake) AfterFunc(t time.Time, fn func()) (stop func()) {
	f.mu.Lock()
	if !t.After(f.now) {
		f.mu.Unlock()
		go fn()
		return func() {}
	}
	a := &fakeAlarm{id: f.nextID, at: t, f: fn}
	f.nextID++
	f.alarms = append(f.alarms, a)
	f.mu.Unlock()
	return func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		for i, p := range f.alarms {
			if p.id == a.id {
				f.alarms = append(f.alarms[:i], f.alarms[i+1:]...)
				return
			}
		}
	}
}
