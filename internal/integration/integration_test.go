// Package integration_test exercises whole-system scenarios across the
// module boundaries: promise manager + protocol + transport + services +
// workflow + delegation, over real HTTP sockets — the Figure 2 deployment
// driven end to end.
package integration_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/predicate"
	"repro/internal/service"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/workflow"
	"repro/promises"
)

// tier is one deployed promise manager with its HTTP server.
type tier struct {
	m   *core.Manager
	srv *httptest.Server
}

func newTier(t *testing.T, cfg core.Config, seed func(tx *txn.Tx, m *core.Manager) error) *tier {
	t.Helper()
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seed != nil {
		tx := m.Store().Begin(txn.Block)
		if err := seed(tx, m); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	reg := service.NewRegistry()
	service.RegisterStandard(reg)
	srv := httptest.NewServer(transport.NewServer(m, reg).Handler())
	t.Cleanup(srv.Close)
	return &tier{m: m, srv: srv}
}

func (tr *tier) client(name string) *transport.Client {
	return &transport.Client{BaseURL: tr.srv.URL, Client: name}
}

func auditHealthy(t *testing.T, label string, m *core.Manager) {
	t.Helper()
	rep, err := m.Audit()
	if err != nil {
		t.Fatalf("%s audit: %v", label, err)
	}
	if !rep.Healthy() {
		t.Fatalf("%s audit: %s", label, rep)
	}
}

// TestThreeTierSupplyChainOverHTTP builds factory → wholesaler → retailer,
// each in its own HTTP server, with delegation wired through
// transport.RemoteSupplier. An order at the retailer for more than local
// stock cascades upstream; fulfilment ships the backorder from the factory.
func TestThreeTierSupplyChainOverHTTP(t *testing.T) {
	factory := newTier(t, core.Config{}, func(tx *txn.Tx, m *core.Manager) error {
		return m.Resources().CreatePool(tx, "widgets", 1000, nil)
	})
	factorySup := &transport.RemoteSupplier{C: factory.client("wholesaler")}
	wholesaler := newTier(t, core.Config{
		Suppliers: map[string]core.Supplier{"widgets": factorySup},
	}, func(tx *txn.Tx, m *core.Manager) error {
		return m.Resources().CreatePool(tx, "widgets", 20, nil)
	})
	wholesalerSup := &transport.RemoteSupplier{C: wholesaler.client("retailer")}
	retailer := newTier(t, core.Config{
		Suppliers: map[string]core.Supplier{"widgets": wholesalerSup},
	}, func(tx *txn.Tx, m *core.Manager) error {
		return m.Resources().CreatePool(tx, "widgets", 5, nil)
	})

	// Customer orders 30: retailer has 5, wholesaler 20, factory covers
	// the last 5 through the second delegation hop.
	cust := retailer.client("customer")
	pr, err := cust.RequestPromise(bg, []core.Predicate{core.Quantity("widgets", 30)}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Accepted {
		t.Fatalf("chain grant rejected: %s", pr.Reason)
	}
	// Retailer's promise delegates 25 to the wholesaler...
	info, err := retailer.m.PromiseInfo(pr.PromiseID)
	if err != nil {
		t.Fatal(err)
	}
	if info.DelegatedQty[0] != 25 {
		t.Fatalf("retailer delegated %d, want 25", info.DelegatedQty[0])
	}
	// ...and the wholesaler's upstream promise delegates 5 to the factory.
	wInfo, err := wholesaler.m.PromiseInfo(info.DelegatedID[0])
	if err != nil {
		t.Fatal(err)
	}
	if wInfo.DelegatedQty[0] != 5 {
		t.Fatalf("wholesaler delegated %d, want 5", wInfo.DelegatedQty[0])
	}

	// Purchase: the retailer ships its 5 under the promise with atomic
	// release; upstream releases propagate over HTTP after commit.
	if _, err := cust.Invoke(bg,
		[]core.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		"adjust-pool", map[string]string{"pool": "widgets", "delta": "-5"},
	); err != nil {
		t.Fatal(err)
	}
	// Upstream promise released across the chain.
	wInfo, _ = wholesaler.m.PromiseInfo(info.DelegatedID[0])
	if wInfo.State != core.Released {
		t.Fatalf("wholesaler promise state = %v", wInfo.State)
	}
	auditHealthy(t, "retailer", retailer.m)
	auditHealthy(t, "wholesaler", wholesaler.m)
	auditHealthy(t, "factory", factory.m)
}

// TestWorkflowDrivenOrderOverHTTP runs the Figure 1 workflow with every
// interaction crossing the wire.
func TestWorkflowDrivenOrderOverHTTP(t *testing.T) {
	shop := newTier(t, core.Config{}, func(tx *txn.Tx, m *core.Manager) error {
		return m.Resources().CreatePool(tx, "widgets", 10, nil)
	})
	c := shop.client("order-1")

	def := &workflow.Definition{
		Name:  "http-order",
		Start: "reserve",
		Steps: map[string]workflow.StepFunc{
			"reserve": func(wc *workflow.Context) (workflow.Transition, error) {
				pr, err := c.RequestPromise(bg, []core.Predicate{core.Quantity("widgets", 4)}, time.Minute)
				if err != nil {
					return workflow.Transition{}, err
				}
				if !pr.Accepted {
					return workflow.Transition{}, fmt.Errorf("unavailable: %s", pr.Reason)
				}
				wc.Vars["promise"] = pr.PromiseID
				return workflow.WaitFor("payment", "fulfil"), nil
			},
			"fulfil": func(wc *workflow.Context) (workflow.Transition, error) {
				level, err := c.Invoke(bg,
					[]core.EnvEntry{{PromiseID: wc.Vars["promise"].(string), Release: true}},
					"adjust-pool", map[string]string{"pool": "widgets", "delta": "-4"},
				)
				if err != nil {
					return workflow.Transition{}, err
				}
				wc.Vars["level"] = level
				return workflow.Done(), nil
			},
		},
	}
	in, err := workflow.NewInstance(def)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if in.Status() != workflow.Waiting {
		t.Fatalf("status = %v", in.Status())
	}
	if err := in.Deliver("payment", nil); err != nil {
		t.Fatal(err)
	}
	if in.Status() != workflow.Completed || in.Vars()["level"] != "6" {
		t.Fatalf("status=%v level=%v", in.Status(), in.Vars()["level"])
	}
	auditHealthy(t, "shop", shop.m)
}

// TestPropertyPredicatesOverWire sends §3.3 property expressions through
// the XML protocol and checks tentative reallocation happens server-side.
func TestPropertyPredicatesOverWire(t *testing.T) {
	hotel := newTier(t, core.Config{}, func(tx *txn.Tx, m *core.Manager) error {
		rm := m.Resources()
		if err := rm.CreateInstance(tx, "room-316", map[string]predicate.Value{
			"floor": predicate.Int(3), "view": predicate.Bool(true),
		}); err != nil {
			return err
		}
		return rm.CreateInstance(tx, "room-512", map[string]predicate.Value{
			"floor": predicate.Int(5), "view": predicate.Bool(true),
		})
	})
	viewPred, err := core.Property("view = true")
	if err != nil {
		t.Fatal(err)
	}
	fifthPred, err := core.Property("floor = 5")
	if err != nil {
		t.Fatal(err)
	}
	alice := hotel.client("alice")
	bob := hotel.client("bob")
	prView, err := alice.RequestPromise(bg, []core.Predicate{viewPred}, time.Minute)
	if err != nil || !prView.Accepted {
		t.Fatalf("view: %+v %v", prView, err)
	}
	prFifth, err := bob.RequestPromise(bg, []core.Predicate{fifthPred}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !prFifth.Accepted {
		t.Fatalf("5th-floor over wire rejected: %s", prFifth.Reason)
	}
	fi, _ := hotel.m.PromiseInfo(prFifth.PromiseID)
	if fi.Assigned[0] != "room-512" {
		t.Fatalf("assigned %q", fi.Assigned[0])
	}
	auditHealthy(t, "hotel", hotel.m)
}

// TestExpiryOverHTTP: a promise granted with a short duration lapses; using
// it afterwards yields the promise-expired fault code across the wire.
func TestExpiryOverHTTP(t *testing.T) {
	fake := clock.NewFake(time.Date(2007, 1, 7, 0, 0, 0, 0, time.UTC))
	shop := newTier(t, core.Config{Clock: fake}, func(tx *txn.Tx, m *core.Manager) error {
		return m.Resources().CreatePool(tx, "widgets", 10, nil)
	})
	c := shop.client("c")
	pr, err := c.RequestPromise(bg, []core.Predicate{core.Quantity("widgets", 5)}, 30*time.Second)
	if err != nil || !pr.Accepted {
		t.Fatalf("%+v %v", pr, err)
	}
	fake.Advance(time.Minute)
	_, err = c.Invoke(bg, []core.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		"adjust-pool", map[string]string{"pool": "widgets", "delta": "-5"})
	if !errors.Is(err, core.ErrPromiseExpired) {
		t.Fatalf("err = %v, want ErrPromiseExpired", err)
	}
	// The expired hold no longer constrains the pool.
	pr2, err := c.RequestPromise(bg, []core.Predicate{core.Quantity("widgets", 10)}, time.Minute)
	if err != nil || !pr2.Accepted {
		t.Fatalf("after expiry: %+v %v", pr2, err)
	}
}

// TestHTTPStampedeRespectsCapacity: 40 concurrent wire clients race for 25
// units; exactly 25 single-unit promises are granted.
func TestHTTPStampedeRespectsCapacity(t *testing.T) {
	shop := newTier(t, core.Config{}, func(tx *txn.Tx, m *core.Manager) error {
		return m.Resources().CreatePool(tx, "seats", 25, nil)
	})
	var granted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := shop.client(fmt.Sprintf("c%d", i))
			pr, err := c.RequestPromise(bg, []core.Predicate{core.Quantity("seats", 1)}, time.Minute)
			if err != nil {
				t.Error(err)
				return
			}
			if pr.Accepted {
				granted.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if granted.Load() != 25 {
		t.Fatalf("granted %d over capacity 25", granted.Load())
	}
	auditHealthy(t, "shop", shop.m)
}

// TestFacadeNegotiationAgainstLiveContention ties the Negotiate helper to a
// contended manager: the picky client's wishes degrade until a counter
// offer closes the deal.
func TestFacadeNegotiationAgainstLiveContention(t *testing.T) {
	m, err := promises.New(promises.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tx := m.Store().Begin(txn.Block)
	if err := m.Resources().CreatePool(tx, "widgets", 20, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// A rival promises 12, leaving 8.
	if _, err := m.Execute(bg, promises.Request{
		Client: "rival",
		PromiseRequests: []promises.PromiseRequest{{
			Predicates: []promises.Predicate{promises.Quantity("widgets", 12)},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := promises.Negotiate(bg, m, "picky", time.Minute, true,
		[]promises.Predicate{promises.Quantity("widgets", 20)},
		[]promises.Predicate{promises.Quantity("widgets", 15)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted() || res.Attempt != 2 {
		t.Fatalf("negotiation = %+v", res)
	}
	info, _ := m.PromiseInfo(res.Response.PromiseID)
	if info.Predicates[0].Qty != 8 {
		t.Fatalf("settled quantity = %d, want 8", info.Predicates[0].Qty)
	}
}

var bg = context.Background()
