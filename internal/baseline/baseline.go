// Package baseline implements the two comparator regimes the paper's
// argument is framed against, for the benchmark suite:
//
//   - Locking: "traditional lock-based isolation" (§2) — the client takes
//     long-duration exclusive locks over the resources its business process
//     touches and holds them across the whole operation, including think
//     time. §9 notes the assumptions this needs ("activities run very
//     quickly and all participants can be trusted to hold locks") and its
//     deadlock problem.
//
//   - CheckThenAct: no isolation at all — the client checks availability,
//     proceeds, and discovers at action time that "concurrent activity has
//     changed the truth of relied-on conditions after they were checked"
//     (§7). This is the regime whose failure modes promises remove from
//     "the normal processing paths" (§2).
//
//   - PromiseOrders: the same order workload driven through the promise
//     manager, for symmetric comparison.
//
// All three run the paper's §7 ordering workload: secure qty units of a
// pool, perform work (organise payment, shippers — the think function),
// then purchase.
package baseline

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/resource"
	"repro/internal/txn"
)

// Outcome classifies one order attempt.
type Outcome int

// Order outcomes.
const (
	// Fulfilled: the purchase completed.
	Fulfilled Outcome = iota
	// RejectedEarly: the order stopped at the availability check — the
	// benign failure mode (customer told immediately).
	RejectedEarly
	// FailedLate: the order failed at purchase time despite a successful
	// earlier check — the failure mode promises eliminate.
	FailedLate
	// Deadlocked: the order was aborted as a deadlock victim (lock-based
	// baseline only).
	Deadlocked
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Fulfilled:
		return "fulfilled"
	case RejectedEarly:
		return "rejected-early"
	case FailedLate:
		return "failed-late"
	case Deadlocked:
		return "deadlocked"
	}
	return "unknown"
}

// Locking is the long-duration 2PL baseline. It shares the store's lock
// manager namespace under "app/" so application locks never collide with
// the store's internal row locks.
type Locking struct {
	store *txn.Store
	rm    *resource.Manager
	lm    *txn.LockManager
	next  atomic.Uint64
}

// NewLocking returns a lock-based order runner over rm.
func NewLocking(store *txn.Store, rm *resource.Manager) *Locking {
	return &Locking{store: store, rm: rm, lm: store.LockManager()}
}

func appLock(pool string) string { return "app/pool/" + pool }

// RunOrder executes one order under long-duration exclusive locks:
// lock pool → check → think → purchase → unlock.
func (b *Locking) RunOrder(pool string, qty int64, think func()) (Outcome, error) {
	return b.RunMultiOrder([]string{pool}, qty, think)
}

// RunMultiOrder locks several pools in the given order (the E4 experiment
// passes opposite orders from different clients to manufacture deadlock),
// then purchases qty from each.
func (b *Locking) RunMultiOrder(pools []string, qty int64, think func()) (Outcome, error) {
	// Session ids live above the store's transaction ids so they never
	// collide inside the shared lock manager.
	sid := b.next.Add(1) | 1<<62
	defer b.lm.ReleaseAll(sid)
	for _, pool := range pools {
		if err := b.lm.Acquire(sid, appLock(pool), txn.X, txn.Block); err != nil {
			if errors.Is(err, txn.ErrDeadlock) {
				return Deadlocked, nil
			}
			return Deadlocked, err
		}
	}
	// Check availability under the locks.
	check := b.store.Begin(txn.Block)
	for _, pool := range pools {
		p, err := b.rm.Pool(check, pool)
		if err != nil {
			_ = check.Abort()
			return RejectedEarly, err
		}
		if p.OnHand < qty {
			_ = check.Abort()
			return RejectedEarly, nil
		}
	}
	if err := check.Commit(); err != nil {
		return RejectedEarly, err
	}

	if think != nil {
		think() // locks held across the long-running business step
	}

	buy := b.store.Begin(txn.Block)
	for _, pool := range pools {
		if _, err := b.rm.AdjustPool(buy, pool, -qty); err != nil {
			// Cannot happen while we hold the app lock — every well-behaved
			// client locks before touching the pool.
			_ = buy.Abort()
			return FailedLate, nil
		}
	}
	if err := buy.Commit(); err != nil {
		return FailedLate, err
	}
	return Fulfilled, nil
}

// CheckThenAct is the no-isolation baseline.
type CheckThenAct struct {
	store *txn.Store
	rm    *resource.Manager
}

// NewCheckThenAct returns a no-isolation order runner over rm.
func NewCheckThenAct(store *txn.Store, rm *resource.Manager) *CheckThenAct {
	return &CheckThenAct{store: store, rm: rm}
}

// RunOrder checks availability, thinks with no protection, then attempts
// the purchase, which re-validates inside a short transaction.
func (b *CheckThenAct) RunOrder(pool string, qty int64, think func()) (Outcome, error) {
	check := b.store.Begin(txn.Block)
	p, err := b.rm.Pool(check, pool)
	if err != nil {
		_ = check.Abort()
		return RejectedEarly, err
	}
	onHand := p.OnHand
	if err := check.Commit(); err != nil {
		return RejectedEarly, err
	}
	if onHand < qty {
		return RejectedEarly, nil
	}

	if think != nil {
		think() // nothing protects the checked condition here
	}

	for {
		buy := b.store.Begin(txn.Block)
		_, err := b.rm.AdjustPool(buy, pool, -qty)
		if err == nil {
			if cerr := buy.Commit(); cerr == nil {
				return Fulfilled, nil
			}
			continue
		}
		_ = buy.Abort()
		if errors.Is(err, txn.ErrDeadlock) || errors.Is(err, txn.ErrWouldBlock) {
			continue // storage-level retry; not a business failure
		}
		// Insufficient stock at purchase time: the paper's motivating
		// failure ("payment arrives for an accepted order when there is
		// insufficient stock on hand", §1).
		return FailedLate, nil
	}
}

// PromiseOrders drives the same workload through the promise manager.
type PromiseOrders struct {
	m *core.Manager
}

// NewPromiseOrders returns a promise-based order runner.
func NewPromiseOrders(m *core.Manager) *PromiseOrders {
	return &PromiseOrders{m: m}
}

// RunOrder obtains a promise for qty of pool, thinks, then purchases under
// the promise with an atomic release (Figure 1).
func (b *PromiseOrders) RunOrder(pool string, qty int64, think func()) (Outcome, error) {
	resp, err := b.m.Execute(context.Background(), core.Request{
		Client: "order",
		PromiseRequests: []core.PromiseRequest{{
			Predicates: []core.Predicate{core.Quantity(pool, qty)},
		}},
	})
	if err != nil {
		return RejectedEarly, err
	}
	pr := resp.Promises[0]
	if !pr.Accepted {
		return RejectedEarly, nil
	}

	if think != nil {
		think() // the promise, not a lock, protects the condition
	}

	resp, err = b.m.Execute(context.Background(), core.Request{
		Client: "order",
		Env:    []core.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		Action: func(ac *core.ActionContext) (any, error) {
			_, err := ac.Resources.AdjustPool(ac.Tx, pool, -qty)
			return nil, err
		},
	})
	if err != nil {
		return FailedLate, err
	}
	if resp.ActionErr != nil {
		return FailedLate, nil
	}
	return Fulfilled, nil
}

// RunMultiOrder secures all pools in one atomic promise request (§4, first
// requirement), then purchases all of them.
func (b *PromiseOrders) RunMultiOrder(pools []string, qty int64, think func()) (Outcome, error) {
	preds := make([]core.Predicate, len(pools))
	for i, pool := range pools {
		preds[i] = core.Quantity(pool, qty)
	}
	resp, err := b.m.Execute(context.Background(), core.Request{
		Client:          "order",
		PromiseRequests: []core.PromiseRequest{{Predicates: preds}},
	})
	if err != nil {
		return RejectedEarly, err
	}
	pr := resp.Promises[0]
	if !pr.Accepted {
		return RejectedEarly, nil
	}
	if think != nil {
		think()
	}
	resp, err = b.m.Execute(context.Background(), core.Request{
		Client: "order",
		Env:    []core.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		Action: func(ac *core.ActionContext) (any, error) {
			for _, pool := range pools {
				if _, err := ac.Resources.AdjustPool(ac.Tx, pool, -qty); err != nil {
					return nil, err
				}
			}
			return nil, nil
		},
	})
	if err != nil {
		return FailedLate, err
	}
	if resp.ActionErr != nil {
		return FailedLate, nil
	}
	return Fulfilled, nil
}
