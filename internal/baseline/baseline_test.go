package baseline

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resource"
	"repro/internal/txn"
)

func newWorld(t *testing.T, pools map[string]int64) (*txn.Store, *resource.Manager) {
	t.Helper()
	store := txn.NewStore()
	rm, err := resource.NewManager(store)
	if err != nil {
		t.Fatal(err)
	}
	tx := store.Begin(txn.Block)
	for pool, qty := range pools {
		if err := rm.CreatePool(tx, pool, qty, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return store, rm
}

func newPromiseWorld(t *testing.T, pools map[string]int64) *core.Manager {
	t.Helper()
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tx := m.Store().Begin(txn.Block)
	for pool, qty := range pools {
		if err := m.Resources().CreatePool(tx, pool, qty, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLockingSingleOrder(t *testing.T) {
	store, rm := newWorld(t, map[string]int64{"w": 10})
	b := NewLocking(store, rm)
	out, err := b.RunOrder("w", 4, nil)
	if err != nil || out != Fulfilled {
		t.Fatalf("out=%v err=%v", out, err)
	}
	out, _ = b.RunOrder("w", 7, nil)
	if out != RejectedEarly {
		t.Fatalf("insufficient stock: out=%v", out)
	}
}

func TestLockingSerializesContendedOrders(t *testing.T) {
	store, rm := newWorld(t, map[string]int64{"w": 100})
	b := NewLocking(store, rm)
	const clients = 8
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := b.RunOrder("w", 1, func() { time.Sleep(10 * time.Millisecond) })
			if err != nil || out != Fulfilled {
				t.Errorf("out=%v err=%v", out, err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Serialized: total >= clients * think. Allow slack but it must be far
	// above a single think time.
	if elapsed < time.Duration(clients)*10*time.Millisecond {
		t.Fatalf("locking did not serialize: %v elapsed", elapsed)
	}
}

func TestLockingDeadlockOnOppositeOrder(t *testing.T) {
	store, rm := newWorld(t, map[string]int64{"a": 10, "b": 10})
	b := NewLocking(store, rm)
	var deadlocks atomic.Int64
	var wg sync.WaitGroup
	barrier := make(chan struct{})
	run := func(pools []string) {
		defer wg.Done()
		<-barrier
		for i := 0; i < 10; i++ {
			out, err := b.RunMultiOrder(pools, 0+1, func() { time.Sleep(time.Millisecond) })
			if err != nil {
				t.Error(err)
				return
			}
			if out == Deadlocked {
				deadlocks.Add(1)
			}
		}
	}
	wg.Add(2)
	go run([]string{"a", "b"})
	go run([]string{"b", "a"})
	close(barrier)
	wg.Wait()
	if deadlocks.Load() == 0 {
		t.Fatal("opposite-order lock acquisition never deadlocked (suspicious)")
	}
}

func TestCheckThenActLateFailures(t *testing.T) {
	// Two clients check 1 unit of stock, both pass, one fails late — the
	// §1 merchant scenario.
	store, rm := newWorld(t, map[string]int64{"w": 1})
	b := NewCheckThenAct(store, rm)
	gate := make(chan struct{})
	results := make(chan Outcome, 2)
	for i := 0; i < 2; i++ {
		go func() {
			out, err := b.RunOrder("w", 1, func() { <-gate })
			if err != nil {
				t.Error(err)
			}
			results <- out
		}()
	}
	time.Sleep(20 * time.Millisecond) // both pass the check
	close(gate)
	a, bOut := <-results, <-results
	got := map[Outcome]int{a: 1}
	got[bOut]++
	if got[Fulfilled] != 1 || got[FailedLate] != 1 {
		t.Fatalf("outcomes = %v and %v, want one fulfilled one failed-late", a, bOut)
	}
}

func TestCheckThenActEarlyReject(t *testing.T) {
	store, rm := newWorld(t, map[string]int64{"w": 1})
	b := NewCheckThenAct(store, rm)
	out, err := b.RunOrder("w", 5, nil)
	if err != nil || out != RejectedEarly {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestPromiseOrdersNoLateFailures(t *testing.T) {
	// The promise regime turns every would-be late failure into an early
	// rejection: with 5 units and 10 clients wanting 1 each, exactly 5
	// fulfil and 5 reject early; nobody fails late.
	m := newPromiseWorld(t, map[string]int64{"w": 5})
	b := NewPromiseOrders(m)
	gate := make(chan struct{})
	var wg sync.WaitGroup
	var fulfilled, early, late atomic.Int64
	for c := 0; c < 10; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := b.RunOrder("w", 1, func() { <-gate })
			if err != nil {
				t.Error(err)
				return
			}
			switch out {
			case Fulfilled:
				fulfilled.Add(1)
			case RejectedEarly:
				early.Add(1)
			case FailedLate:
				late.Add(1)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	if late.Load() != 0 {
		t.Fatalf("promises produced %d late failures", late.Load())
	}
	if fulfilled.Load() != 5 || early.Load() != 5 {
		t.Fatalf("fulfilled=%d early=%d, want 5/5", fulfilled.Load(), early.Load())
	}
}

func TestPromiseOrdersConcurrentWithThinkTime(t *testing.T) {
	// Unlike locking, promise holders think concurrently: total time is
	// far below clients*think.
	m := newPromiseWorld(t, map[string]int64{"w": 100})
	b := NewPromiseOrders(m)
	const clients = 8
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := b.RunOrder("w", 1, func() { time.Sleep(20 * time.Millisecond) })
			if err != nil || out != Fulfilled {
				t.Errorf("out=%v err=%v", out, err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed > time.Duration(clients)*20*time.Millisecond/2 {
		t.Fatalf("promise orders appear serialized: %v for %d clients", elapsed, clients)
	}
}

func TestPromiseMultiOrderAtomicAndDeadlockFree(t *testing.T) {
	// The E4 scenario under promises: opposite-order resource demands
	// never deadlock because requests reject immediately instead of
	// blocking (§9).
	m := newPromiseWorld(t, map[string]int64{"a": 10, "b": 10})
	b := NewPromiseOrders(m)
	var wg sync.WaitGroup
	var late, dead atomic.Int64
	run := func(pools []string) {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			out, err := b.RunMultiOrder(pools, 1, func() { time.Sleep(time.Millisecond) })
			if err != nil {
				t.Error(err)
				return
			}
			switch out {
			case FailedLate:
				late.Add(1)
			case Deadlocked:
				dead.Add(1)
			}
		}
	}
	wg.Add(2)
	go run([]string{"a", "b"})
	go run([]string{"b", "a"})
	wg.Wait()
	if dead.Load() != 0 || late.Load() != 0 {
		t.Fatalf("deadlocked=%d late=%d, want 0/0", dead.Load(), late.Load())
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		Fulfilled: "fulfilled", RejectedEarly: "rejected-early",
		FailedLate: "failed-late", Deadlocked: "deadlocked", Outcome(9): "unknown",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
}
