package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/predicate"
	"repro/internal/txn"
)

// This file is the equivalence suite for the two-phase reserve/confirm
// pipeline: a randomized scenario generator drives a single-store Manager
// and a ShardedManager through the same workload — property predicates,
// cross-shard §4 upgrades, batches, expiry — and asserts that every
// request is accepted or rejected identically, that every promise pair
// reports the same lifecycle sentinel, and that pool levels never drift.
// This is the executable form of the sharded.go header's claim that the
// ShardedManager accepts exactly the requests the single store accepts.

// eqWorld drives the same workload through both managers.
type eqWorld struct {
	t       *testing.T
	rng     *rand.Rand
	fake    *clock.Fake
	single  *Manager
	sharded *ShardedManager
	pools   []string
	insts   []string
	exprs   []string
	clients []string
	// pairs tracks (single id, sharded id) per granted promise, including
	// released and expired ones: their sentinels must keep matching.
	pairs []eqPair
	// durSeq makes every preemptible grant's expiry unique: victim
	// selection orders candidates by deadline, and an expiry tie would
	// fall through to the promise id — which the two engines mint
	// differently. Distinct deadlines keep the canonical order (and so
	// the victim sets) engine-independent.
	durSeq int
}

type eqPair struct {
	client   string
	singleID string
	shardID  string
}

// sentinelClass collapses an error to the client-visible lifecycle class.
func sentinelClass(err error) string {
	switch {
	case err == nil:
		return "usable"
	case errors.Is(err, ErrPromiseNotFound):
		return "not-found"
	case errors.Is(err, ErrPromiseReleased):
		return "released"
	case errors.Is(err, ErrPromiseExpired):
		return "expired"
	case errors.Is(err, ErrPromiseViolated):
		return "violated"
	case errors.Is(err, ErrPromisePreempted):
		return "preempted"
	default:
		return "error: " + err.Error()
	}
}

// newEqWorld builds the two engines. singleSlow disables the single
// store's index-served fast path (propmatch.go), making it the scan-based
// §5 reference planner: a workload driven with singleSlow=true pins the
// fast path (still live on the sharded side) against the slow one.
func newEqWorld(t *testing.T, seed int64, shards int, singleSlow bool) *eqWorld {
	fake := clock.NewFake(time.Date(2007, 1, 7, 0, 0, 0, 0, time.UTC))
	single, err := New(Config{Clock: fake, DefaultDuration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	single.cfg.disableFastPath = singleSlow
	sharded, err := NewSharded(ShardedConfig{Shards: shards, Clock: fake, DefaultDuration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	w := &eqWorld{
		t:       t,
		rng:     rand.New(rand.NewSource(seed)),
		fake:    fake,
		single:  single,
		sharded: sharded,
		clients: []string{"alice", "bob", "carol"},
		exprs: []string{
			"gpu",
			"not gpu",
			"tier = 1",
			"tier >= 1",
			"zone = 2",
			"zone = 0 or zone = 3",
			"gpu and tier >= 1",
			"tier = 2 or zone = 1",
			"tier in (0, 2)",
			"not (zone in (1, 2))",
			"(gpu and tier = 1) or (not gpu and zone = 2)",
		},
	}
	for i := 0; i < 5; i++ {
		pool := fmt.Sprintf("eq-pool-%d", i)
		cap := int64(8 + w.rng.Intn(12))
		tx := single.Store().Begin(txn.Block)
		if err := single.Resources().CreatePool(tx, pool, cap, nil); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := sharded.CreatePool(pool, cap, nil); err != nil {
			t.Fatal(err)
		}
		w.pools = append(w.pools, pool)
	}
	for i := 0; i < 18; i++ {
		inst := fmt.Sprintf("eq-inst-%d", i)
		props := map[string]predicate.Value{
			"gpu":  predicate.Bool(w.rng.Intn(2) == 0),
			"tier": predicate.Int(int64(w.rng.Intn(3))),
			"zone": predicate.Int(int64(w.rng.Intn(4))),
		}
		tx := single.Store().Begin(txn.Block)
		if err := single.Resources().CreateInstance(tx, inst, props); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := sharded.CreateInstance(inst, props); err != nil {
			t.Fatal(err)
		}
		w.insts = append(w.insts, inst)
	}
	return w
}

// randPredicate draws one predicate; property predicates dominate because
// they exercise the global matcher.
func (w *eqWorld) randPredicate() Predicate {
	switch w.rng.Intn(5) {
	case 0, 1:
		return Quantity(w.pools[w.rng.Intn(len(w.pools))], int64(1+w.rng.Intn(4)))
	case 2:
		return Named(w.insts[w.rng.Intn(len(w.insts))])
	default:
		return MustProperty(w.exprs[w.rng.Intn(len(w.exprs))])
	}
}

// uniqueDur returns a duration no other preemptible grant in this world
// uses, so candidate deadlines never tie (see durSeq).
func (w *eqWorld) uniqueDur() time.Duration {
	w.durSeq++
	// Stay under the manager's default MaxDuration cap (10 minutes): a
	// clamped duration would collapse distinct requests onto one deadline.
	return 5*time.Minute + time.Duration(w.durSeq)*time.Millisecond
}

// clientPairs returns the indices of pairs owned by client.
func (w *eqWorld) clientPairs(client string) []int {
	var out []int
	for i, p := range w.pairs {
		if p.client == client {
			out = append(out, i)
		}
	}
	return out
}

// grant sends one message with 1-2 promise requests (each possibly a §4
// upgrade releasing earlier promises) to both managers and asserts
// identical accept/reject per request.
func (w *eqWorld) grant() {
	t := w.t
	client := w.clients[w.rng.Intn(len(w.clients))]
	nReq := 1 + w.rng.Intn(2)
	var reqS, reqH []PromiseRequest
	for r := 0; r < nReq; r++ {
		nPred := 1 + w.rng.Intn(3)
		preds := make([]Predicate, nPred)
		for p := range preds {
			preds[p] = w.randPredicate()
		}
		var relS, relH []string
		if owned := w.clientPairs(client); len(owned) > 0 && w.rng.Intn(5) < 2 {
			for k := 0; k < 1+w.rng.Intn(2); k++ {
				pick := w.pairs[owned[w.rng.Intn(len(owned))]]
				relS = append(relS, pick.singleID)
				relH = append(relH, pick.shardID)
			}
		}
		var dur time.Duration
		if w.rng.Intn(6) == 0 {
			dur = time.Duration(1+w.rng.Intn(3)) * time.Minute
		}
		// Priority shapes: spot holds (preemptible, sometimes mid-tier) and
		// on-demand requests that may displace them. Preemptible grants stay
		// single-predicate — a multi-predicate grant is a composite on the
		// sharded side, which its victim filter excludes — and get a unique
		// duration so victim ordering cannot tie on deadlines.
		prio, preemptible := 0, false
		switch w.rng.Intn(6) {
		case 0, 1:
			preemptible = true
		case 2:
			preemptible, prio = true, 1
		case 3:
			prio = 1 + w.rng.Intn(2)
		}
		if preemptible {
			preds = preds[:1]
			dur = w.uniqueDur()
		}
		reqS = append(reqS, PromiseRequest{Predicates: preds, Releases: relS, Duration: dur, Priority: prio, Preemptible: preemptible})
		reqH = append(reqH, PromiseRequest{Predicates: preds, Releases: relH, Duration: dur, Priority: prio, Preemptible: preemptible})
	}
	respS, errS := w.single.Execute(bg, Request{Client: client, PromiseRequests: reqS})
	respH, errH := w.sharded.Execute(bg, Request{Client: client, PromiseRequests: reqH})
	if errS != nil || errH != nil {
		t.Fatalf("execute errors diverge or are internal: single=%v sharded=%v", errS, errH)
	}
	for i := range respS.Promises {
		ps, ph := respS.Promises[i], respH.Promises[i]
		if ps.Accepted != ph.Accepted {
			t.Fatalf("request %d diverged: single accepted=%v (%s), sharded accepted=%v (%s)\npredicates: %v releases: %v/%v",
				i, ps.Accepted, ps.Reason, ph.Accepted, ph.Reason, reqS[i].Predicates, reqS[i].Releases, reqH[i].Releases)
		}
		if ps.Accepted {
			w.pairs = append(w.pairs, eqPair{client: client, singleID: ps.PromiseID, shardID: ph.PromiseID})
		}
	}
}

// release sends a pure release message for one tracked pair (possibly
// already dead) and asserts the same outcome on both sides.
func (w *eqWorld) release() {
	t := w.t
	if len(w.pairs) == 0 {
		return
	}
	pick := w.pairs[w.rng.Intn(len(w.pairs))]
	respS, errS := w.single.Execute(bg, Request{Client: pick.client, Env: []EnvEntry{{PromiseID: pick.singleID, Release: true}}})
	respH, errH := w.sharded.Execute(bg, Request{Client: pick.client, Env: []EnvEntry{{PromiseID: pick.shardID, Release: true}}})
	if errS != nil || errH != nil {
		t.Fatalf("release errors: single=%v sharded=%v", errS, errH)
	}
	cs, ch := sentinelClass(respS.ActionErr), sentinelClass(respH.ActionErr)
	if cs != ch {
		t.Fatalf("release of pair (%s, %s) diverged: single=%s sharded=%s", pick.singleID, pick.shardID, cs, ch)
	}
}

// batch sends independent single-pool requests over distinct pools via
// GrantBatch (order across pools cannot matter, so the engines' different
// internal scheduling must not show).
func (w *eqWorld) batch() {
	t := w.t
	client := w.clients[w.rng.Intn(len(w.clients))]
	perm := w.rng.Perm(len(w.pools))
	n := 2 + w.rng.Intn(2)
	var reqs []PromiseRequest
	for k := 0; k < n; k++ {
		reqs = append(reqs, PromiseRequest{
			Predicates: []Predicate{Quantity(w.pools[perm[k]], int64(1+w.rng.Intn(3)))},
		})
	}
	respS, errS := w.single.GrantBatch(bg, client, reqs)
	respH, errH := w.sharded.GrantBatch(bg, client, reqs)
	if errS != nil || errH != nil {
		t.Fatalf("batch errors: single=%v sharded=%v", errS, errH)
	}
	for i := range respS {
		if respS[i].Accepted != respH[i].Accepted {
			t.Fatalf("batch request %d diverged: single=%v (%s) sharded=%v (%s)",
				i, respS[i].Accepted, respS[i].Reason, respH[i].Accepted, respH[i].Reason)
		}
		if respS[i].Accepted {
			w.pairs = append(w.pairs, eqPair{client: client, singleID: respS[i].PromiseID, shardID: respH[i].PromiseID})
		}
	}
}

// advance moves the shared clock and sweeps both managers, expiring the
// same promises on each.
func (w *eqWorld) advance() {
	w.fake.Advance(time.Duration(30+w.rng.Intn(90)) * time.Second)
	if err := w.single.Sweep(); err != nil {
		w.t.Fatal(err)
	}
	if err := w.sharded.Sweep(); err != nil {
		w.t.Fatal(err)
	}
}

// verify cross-checks every tracked pair's lifecycle sentinel and every
// pool's level.
func (w *eqWorld) verify() {
	t := w.t
	byClient := make(map[string][]int)
	for i, p := range w.pairs {
		byClient[p.client] = append(byClient[p.client], i)
	}
	for client, idxs := range byClient {
		sIDs := make([]string, len(idxs))
		hIDs := make([]string, len(idxs))
		for k, i := range idxs {
			sIDs[k] = w.pairs[i].singleID
			hIDs[k] = w.pairs[i].shardID
		}
		errsS := checkB(t, w.single, client, sIDs)
		errsH := checkB(t, w.sharded, client, hIDs)
		for k := range idxs {
			cs, ch := sentinelClass(errsS[k]), sentinelClass(errsH[k])
			if cs != ch {
				t.Fatalf("pair (%s, %s) lifecycle diverged: single=%s sharded=%s", sIDs[k], hIDs[k], cs, ch)
			}
		}
	}
	for _, pool := range w.pools {
		tx := w.single.Store().Begin(txn.Block)
		p, err := w.single.Resources().Pool(tx, pool)
		_ = tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		lvl, err := w.sharded.PoolLevel(pool)
		if err != nil {
			t.Fatal(err)
		}
		if p.OnHand != lvl {
			t.Fatalf("pool %s level diverged: single=%d sharded=%d", pool, p.OnHand, lvl)
		}
	}
}

func (w *eqWorld) run(iters int) {
	for it := 0; it < iters; it++ {
		switch w.rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			w.grant()
		case 5, 6:
			w.release()
		case 7:
			w.batch()
		case 8:
			w.advance()
		default:
			w.verify()
		}
		if it%25 == 24 {
			w.verify()
		}
		// Cap the tracked set so CheckBatch comparisons stay cheap; dropped
		// pairs were already cross-checked.
		if len(w.pairs) > 64 {
			w.pairs = w.pairs[len(w.pairs)-48:]
		}
	}
	w.verify()
	repS, err := w.single.Audit()
	if err != nil {
		w.t.Fatal(err)
	}
	if !repS.Healthy() {
		w.t.Fatalf("single-store audit unhealthy: %s", repS)
	}
	repH, err := w.sharded.Audit()
	if err != nil {
		w.t.Fatal(err)
	}
	if !repH.Healthy() {
		w.t.Fatalf("sharded audit unhealthy: %s", repH)
	}
}

// TestShardedEquivalence is the acceptance gate for the reserve/confirm
// pipeline: ShardedManager(N) must accept and reject exactly like the
// single-store Manager on randomized property-predicate and
// cross-shard-upgrade workloads, across several seeds.
func TestShardedEquivalence(t *testing.T) {
	shards := testShards(8)
	for seed := int64(1); seed <= 6; seed++ {
		// Even seeds run the single store as the scan-based slow
		// reference, pinning the index-served fast path and the shrunken
		// property lock set (both live on the sharded side) against the
		// §5 planner; odd seeds compare the fast paths to each other.
		slowRef := seed%2 == 0
		t.Run(fmt.Sprintf("seed=%d/shards=%d/slowref=%v", seed, shards, slowRef), func(t *testing.T) {
			newEqWorld(t, seed, shards, slowRef).run(250)
		})
	}
}

// TestShardedEquivalenceUpgradeHeavy narrows the generator to the §4 shape
// that PR 1 rejected outright: every grant releases the client's previous
// promise and re-promises from the freed capacity, spanning pools (and
// therefore shards) at tight capacities.
func TestShardedEquivalenceUpgradeHeavy(t *testing.T) {
	shards := testShards(8)
	for seed := int64(10); seed <= 13; seed++ {
		t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
			w := newEqWorld(t, seed, shards, false)
			cur := make(map[string]*eqPair)
			for it := 0; it < 200; it++ {
				client := w.clients[w.rng.Intn(len(w.clients))]
				nPred := 1 + w.rng.Intn(3)
				preds := make([]Predicate, nPred)
				for p := range preds {
					// Quantities only: upgrades live in escrow arithmetic.
					preds[p] = Quantity(w.pools[w.rng.Intn(len(w.pools))], int64(1+w.rng.Intn(6)))
				}
				var relS, relH []string
				if prev := cur[client]; prev != nil {
					relS, relH = []string{prev.singleID}, []string{prev.shardID}
				}
				respS, errS := w.single.Execute(bg, Request{Client: client, PromiseRequests: []PromiseRequest{
					{Predicates: preds, Releases: relS},
				}})
				respH, errH := w.sharded.Execute(bg, Request{Client: client, PromiseRequests: []PromiseRequest{
					{Predicates: preds, Releases: relH},
				}})
				if errS != nil || errH != nil {
					t.Fatalf("execute errors: single=%v sharded=%v", errS, errH)
				}
				ps, ph := respS.Promises[0], respH.Promises[0]
				if ps.Accepted != ph.Accepted {
					t.Fatalf("upgrade diverged at iter %d: single=%v (%s) sharded=%v (%s)\npredicates: %v",
						it, ps.Accepted, ps.Reason, ph.Accepted, ph.Reason, preds)
				}
				if ps.Accepted {
					cur[client] = &eqPair{client: client, singleID: ps.PromiseID, shardID: ph.PromiseID}
				}
				if it%20 == 19 {
					w.verify()
				}
			}
			w.verify()
		})
	}
}

// TestShardedEquivalencePreemptionHeavy narrows the generator to the spot
// shape: pools and instances accumulate single-predicate preemptible holds
// until on-demand requests can only land by displacing them. Both engines
// must agree on every accept/reject, on the exact victim set (each pair's
// lifecycle sentinel — usable vs preempted — is cross-checked), and on
// pool levels.
func TestShardedEquivalencePreemptionHeavy(t *testing.T) {
	shards := testShards(8)
	for seed := int64(20); seed <= 23; seed++ {
		slowRef := seed%2 == 0
		t.Run(fmt.Sprintf("seed=%d/shards=%d/slowref=%v", seed, shards, slowRef), func(t *testing.T) {
			w := newEqWorld(t, seed, shards, slowRef)
			for it := 0; it < 200; it++ {
				client := w.clients[w.rng.Intn(len(w.clients))]
				preds := []Predicate{w.randPredicate()}
				prio, preemptible := 0, false
				var dur time.Duration
				switch w.rng.Intn(5) {
				case 0, 1:
					preemptible, dur = true, w.uniqueDur()
				case 2:
					preemptible, prio, dur = true, 1, w.uniqueDur()
				case 3:
					prio = 1
				default:
					prio = 2
				}
				req := PromiseRequest{Predicates: preds, Duration: dur, Priority: prio, Preemptible: preemptible}
				respS, errS := w.single.GrantBatch(bg, client, []PromiseRequest{req})
				respH, errH := w.sharded.GrantBatch(bg, client, []PromiseRequest{req})
				if errS != nil || errH != nil {
					t.Fatalf("batch errors: single=%v sharded=%v", errS, errH)
				}
				if respS[0].Accepted != respH[0].Accepted {
					t.Fatalf("iter %d diverged: single=%v (%s) sharded=%v (%s)\npriority=%d preemptible=%v predicates: %v",
						it, respS[0].Accepted, respS[0].Reason, respH[0].Accepted, respH[0].Reason, prio, preemptible, preds)
				}
				if respS[0].Accepted {
					w.pairs = append(w.pairs, eqPair{client: client, singleID: respS[0].PromiseID, shardID: respH[0].PromiseID})
				}
				if w.rng.Intn(12) == 0 {
					w.advance()
				}
				if it%10 == 9 {
					w.verify()
				}
			}
			w.verify()
		})
	}
}
