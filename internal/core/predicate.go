package core

import (
	"fmt"
	"math"

	"repro/internal/predicate"
)

// View identifies how a predicate regards its resources — the three
// abstractions of paper §3, "derived from a study of different isolation
// mechanisms commonly used in existing business practices".
type View int

// Resource views.
const (
	// AnonymousView (§3.1): a pool of indistinguishable instances; the
	// predicate asks for a quantity.
	AnonymousView View = iota
	// NamedView (§3.2): one specific instance identified by id.
	NamedView
	// PropertyView (§3.3): any instance whose properties satisfy a boolean
	// expression.
	PropertyView
)

// String names the view.
func (v View) String() string {
	switch v {
	case AnonymousView:
		return "anonymous"
	case NamedView:
		return "named"
	case PropertyView:
		return "property"
	}
	return fmt.Sprintf("View(%d)", int(v))
}

// Predicate is one condition within a promise request. The three views map
// onto the paper's examples:
//
//   - Quantity("pink-widgets", 5)    — "quantity of 'pink widgets' >= 5"
//   - Named("room-212-hilton-12mar") — "room 212, Sydney Hilton, 12/3/2007"
//   - Property(`floor = 5 and view`) — "any 5th floor room with a view"
type Predicate struct {
	View View
	// Pool and Qty describe an anonymous-view quantity requirement.
	Pool string
	Qty  int64
	// Instance is the named-view instance id.
	Instance string
	// Expr is the property-view selection predicate; Source is its text
	// form, preserved for protocol encoding.
	Expr   predicate.Expr
	Source string
}

// Quantity builds an anonymous-view predicate: qty units of pool must
// remain available.
func Quantity(pool string, qty int64) Predicate {
	return Predicate{View: AnonymousView, Pool: pool, Qty: qty}
}

// Named builds a named-view predicate over one instance.
func Named(instance string) Predicate {
	return Predicate{View: NamedView, Instance: instance}
}

// Property builds a property-view predicate from an expression in the
// standard predicate syntax.
func Property(src string) (Predicate, error) {
	e, err := predicate.Parse(src)
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{View: PropertyView, Expr: e, Source: src}, nil
}

// MustProperty is Property for statically known expressions; it panics on
// parse errors.
func MustProperty(src string) Predicate {
	p, err := Property(src)
	if err != nil {
		panic(err)
	}
	return p
}

// FromExpr interprets a general boolean expression as an anonymous-view
// quantity requirement on pool — the "general Boolean expressions …
// specified using standard schemas" path of §3, where "the promise manager
// … can be completely general purpose". Expressions of the restricted form
// `quantity >= N` (or equivalent lower-bound conjunctions over "quantity",
// "balance" or "onhand") become Quantity(pool, N).
func FromExpr(pool, src string) (Predicate, error) {
	e, err := predicate.Parse(src)
	if err != nil {
		return Predicate{}, err
	}
	prop, iv, ok := predicate.Bound(e)
	if !ok {
		return Predicate{}, fmt.Errorf("%w: %q is not a lower-bound quantity expression", ErrBadRequest, src)
	}
	switch prop {
	case "quantity", "balance", "onhand":
	default:
		return Predicate{}, fmt.Errorf("%w: %q constrains %q, want quantity/balance/onhand", ErrBadRequest, src, prop)
	}
	if iv.Empty() || iv.Lo <= 0 || iv.Hi != math.MaxInt64 {
		return Predicate{}, fmt.Errorf("%w: %q must be a positive lower bound", ErrBadRequest, src)
	}
	return Quantity(pool, iv.Lo), nil
}

// Validate checks structural well-formedness.
func (p Predicate) Validate() error {
	switch p.View {
	case AnonymousView:
		if p.Pool == "" {
			return fmt.Errorf("%w: anonymous predicate needs a pool", ErrBadRequest)
		}
		if p.Qty <= 0 {
			return fmt.Errorf("%w: anonymous predicate needs positive quantity, got %d", ErrBadRequest, p.Qty)
		}
	case NamedView:
		if p.Instance == "" {
			return fmt.Errorf("%w: named predicate needs an instance id", ErrBadRequest)
		}
	case PropertyView:
		if p.Expr == nil {
			return fmt.Errorf("%w: property predicate needs an expression", ErrBadRequest)
		}
	default:
		return fmt.Errorf("%w: unknown view %v", ErrBadRequest, p.View)
	}
	return nil
}

// String renders the predicate for traces and protocol encoding.
func (p Predicate) String() string {
	switch p.View {
	case AnonymousView:
		return fmt.Sprintf("quantity(%s) >= %d", p.Pool, p.Qty)
	case NamedView:
		return fmt.Sprintf("instance(%s) available", p.Instance)
	case PropertyView:
		if p.Source != "" {
			return fmt.Sprintf("match(%s)", p.Source)
		}
		return fmt.Sprintf("match(%s)", p.Expr)
	}
	return "invalid-predicate"
}
