package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/predicate"
	"repro/internal/resource"
	"repro/internal/txn"
)

// ShardedManager is a promise manager whose state is striped across N
// independent shards so that throughput grows with cores: each shard owns a
// private transactional store holding its slice of the promise table, the
// escrow ledger and the soft-lock tags, plus the resource pools and
// instances that hash to it (FNV-1a of the pool/instance id).
//
// Concurrency protocol. Every operation computes the set of shards it can
// touch and acquires those shards' mutexes in ascending index order — the
// lock-ordering protocol that makes cross-shard work deadlock-free.
// Requests confined to one shard (the common case) take one lock and run
// the full single-store §8 semantics on that shard. Requests spanning
// shards hold the whole ordered lock set for their duration, so concurrent
// clients can never observe a cross-shard grant or release half-applied.
//
// Cross-shard promise requests run a two-phase reserve → confirm/abort
// pipeline (see reserve.go): every involved shard opens a Reservation that
// tentatively applies its releases and grants its slice of the predicates
// inside an open transaction; the coordinator then confirms all
// reservations or aborts them all, so the client sees one atomic grant or
// rejection and a released promise springs back untouched when the grant
// fails elsewhere. Because releases apply before planning, §4
// release-with-grant upgrades keep their semantics across shards, and
// property-view predicates are placed by a single global bipartite match
// over every shard's candidates (globalmatch.go) — the ShardedManager
// accepts exactly the requests the single-store Manager accepts, for any
// shard count. The granted whole is a composite promise ("shp-<n>")
// tracked in a directory mapping it to its per-shard parts; clients use
// composite ids exactly like ordinary ones.
//
// Actions run on a single shard and see only that shard's resources.
// Requests whose action touches resources should set Request.Resources so
// the action is routed to the owning shard; otherwise it runs on the
// lowest-indexed involved shard.
//
// Suppliers are passed through to every shard for delegation (§5). A
// supplier must not route back into the same ShardedManager, or it will
// deadlock on the shard locks it already holds.
type ShardedManager struct {
	shards []*managerShard
	clk    clock.Clock
	mode   PropertyMode

	// ns is the node-id namespace prefix stamped onto every promise id
	// this manager issues ("n0!" for node n0, "" when not federated), so
	// ids stay globally unique across a cluster and route back to their
	// issuing node the same way the shard prefix routes them back to
	// their shard. See ShardedConfig.IDNamespace.
	ns string

	// bus is the event bus shared by every shard: per-shard lifecycle
	// streams merge into one totally ordered sequence, so Watch spans the
	// whole engine and events keep their promise id across a cross-shard
	// slot migration.
	bus *EventBus

	// compIDs names composite promises; their parts live in the dir
	// directory. moved tracks property sub-promises re-homed by the global
	// matcher: promise id -> owning shard (int), overriding the id-prefix
	// route. partOf maps sub-promise ids to their composite so a migration
	// can update the composite's part table without scanning the
	// directory. Entries are never removed (ids are client-visible
	// forever). Directory composites are immutable: a migration replaces
	// the entry, so readers holding the old pointer see a consistent — if
	// stale — part list and retry off the not-found they run into.
	//
	// dir and moved are sync.Maps so the read paths (CheckBatch routing,
	// composite walks) resolve them without acquiring any mutex; dirMu
	// guards only partOf, which is touched exclusively by writers.
	compIDs *ids.Generator
	dirMu   sync.Mutex
	dir     sync.Map // composite id -> *composite
	moved   sync.Map // promise id -> int shard
	partOf  map[string]string

	// migSeq is a seqlock over slot migrations: odd while a pipeline is
	// between its first migrating commit and the directory update, bumped
	// to even by commitMoves. Lock-free readers that miss an id use it to
	// tell a genuine not-found (no migration in flight or completed around
	// the read — the answer is definitive) from a possible race with a
	// migration (retry, then freeze under the full lock set).
	migSeq atomic.Uint64

	// fedMu guards the open federated sessions (fed.go): reservations
	// held on behalf of a remote cluster coordinator, keyed by session id.
	fedMu       sync.Mutex
	fedSessions map[string]*fedSession
	fedIDs      *ids.Generator

	// disablePrefilter turns the candidate-index pre-filter off for both
	// routing (the lock set) and reservations, so tests can pin
	// pre-filtered ≡ all-shards equivalence.
	disablePrefilter bool

	// imbalance retains the shard-imbalance gauge computed by Stats;
	// prefilterSkipped counts shards the pre-filter kept out of
	// cross-shard property reservations.
	imbalance        metrics.Gauge
	prefilterSkipped metrics.Counter

	// busPersist mirrors the shared bus (events and composite-directory
	// records) into the data directory's bus log; durable owns the
	// checkpoint/recovery runtime. Both nil on a non-durable engine.
	busPersist *persistLog
	durable    *durableEngine
	// health is the shared degraded-mode latch (nil on a non-durable
	// engine, which cannot degrade).
	health *engineHealth
}

// managerShard pairs one single-store Manager with the mutex that the
// lock-ordering protocol acquires on its behalf. Mutating operations (and
// the reserve/confirm pipeline, which requires sole use of the shard's
// store) take the write lock; read-only operations (CheckBatch,
// PromiseInfo, ActivePromises, listings) share the read lock, so reads
// never queue behind each other — the first concrete step of the lock-free
// read path.
type managerShard struct {
	mu sync.RWMutex
	m  *Manager
}

// composite records how a cross-shard promise decomposes into per-shard
// sub-promises. Entries are never removed once the id has been handed to a
// client — like the single-store done tables, they are what keeps a
// released or expired composite answering with the precise
// promise-released / promise-expired sentinels instead of not-found.
type composite struct {
	client  string
	expires time.Time
	parts   []compositePart
}

// compositePart is one shard's slice of a composite promise. predIdx maps
// the sub-promise's predicates back to their positions in the original
// request, so PromiseInfo can reconstruct the promise in client order.
type compositePart struct {
	shard   int
	id      string
	predIdx []int
	expires time.Time
}

// shardIDPrefix prefixes per-shard promise ids: shard i issues "prm<i>-<n>",
// which is how promise ids route back to their owning shard.
const shardIDPrefix = "prm"

// compositeIDPrefix prefixes directory-tracked composite promise ids.
const compositeIDPrefix = "shp-"

// errPrefilterWiden is the internal signal that the candidate-index
// pre-filter, re-read under the held shard locks, named a contributing
// shard whose lock is not held — an index flap on an unlocked shard (or a
// named predicate deferred by an earlier grant in the same message whose
// displaced slot may re-home beyond the held set). The request cannot be
// soundly rejected over the clamped view, so the caller releases its
// locks and retries under the full set, where the signal cannot recur.
// Never client-visible.
var errPrefilterWiden = errors.New("core: pre-filter names a shard outside the held lock set")

// migrationRetryLimit bounds the optimistic retries the read paths
// (CheckBatch, checkComposite, compositeInfo) make when a racing slot
// migration re-homes a promise between routing and the shard lock; past
// the limit they freeze migrations by taking every shard lock and resolve
// definitively.
const migrationRetryLimit = 4

// ShardedConfig configures a ShardedManager. The per-shard fields mirror
// Config; every shard shares the same clock and supplier map.
type ShardedConfig struct {
	// Shards is the number of state stripes. Zero means 8.
	Shards int
	// Clock drives promise expiry on every shard. Nil uses the system clock.
	Clock clock.Clock
	// DefaultDuration, MaxDuration, PropertyMode, DisablePostCheck,
	// Suppliers, MaxRetries, Actions and ExpiryWarning apply to each shard
	// as in Config.
	DefaultDuration  time.Duration
	MaxDuration      time.Duration
	PropertyMode     PropertyMode
	DisablePostCheck bool
	Suppliers        map[string]Supplier
	MaxRetries       int
	Actions          ActionResolver
	ExpiryWarning    time.Duration
	// DefaultPriority applies to requests that do not name a tier, as in
	// Config.DefaultPriority.
	DefaultPriority int
	// ReplayRing sizes the shared event bus's replay ring, as in
	// Config.ReplayRing.
	ReplayRing int
	// IDNamespace, when non-empty, prefixes every promise id with
	// "<namespace>!" — the cluster layer sets it to the node id so ids
	// issued by different nodes never collide and self-describe their
	// issuing node. It must not contain '!' and must stay stable across
	// restarts of a durable node (the id prefix is how recovered ids
	// route). Empty (the default) issues classic un-namespaced ids.
	IDNamespace string
}

// NewSharded creates a ShardedManager with cfg.Shards independent shards.
func NewSharded(cfg ShardedConfig) (*ShardedManager, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 8
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System{}
	}
	ns := ""
	if cfg.IDNamespace != "" {
		if strings.ContainsAny(cfg.IDNamespace, "!+ \t\n") {
			return nil, fmt.Errorf("%w: id namespace %q may not contain '!', '+' or whitespace", ErrBadRequest, cfg.IDNamespace)
		}
		ns = cfg.IDNamespace + "!"
	}
	s := &ShardedManager{
		clk:     cfg.Clock,
		mode:    cfg.PropertyMode,
		ns:      ns,
		bus:     NewEventBusCap(cfg.ReplayRing),
		compIDs: ids.New(ns + "shp"),
		partOf:  make(map[string]string),
	}
	for i := 0; i < n; i++ {
		sh := &managerShard{}
		m, err := New(Config{
			Clock:            cfg.Clock,
			DefaultDuration:  cfg.DefaultDuration,
			MaxDuration:      cfg.MaxDuration,
			PropertyMode:     cfg.PropertyMode,
			DisablePostCheck: cfg.DisablePostCheck,
			Suppliers:        cfg.Suppliers,
			MaxRetries:       cfg.MaxRetries,
			Actions:          cfg.Actions,
			IDPrefix:         fmt.Sprintf("%s%s%d", ns, shardIDPrefix, i),
			ExpiryWarning:    cfg.ExpiryWarning,
			DefaultPriority:  cfg.DefaultPriority,
			bus:              s.bus,
			// Composite members never join a shard-local victim set: a
			// composite promise is displaced whole or not at all, and only
			// the coordinator sees the whole. dirMu is a leaf lock, safe
			// to take under any shard lock.
			preemptFilter: func(id string) bool {
				s.dirMu.Lock()
				_, part := s.partOf[id]
				s.dirMu.Unlock()
				return !part
			},
			// Deadline-driven expiry mutates the shard's store, so it runs
			// under the shard's write lock like any other mutation — the
			// reserve/confirm pipeline's sole-user invariant holds.
			gate: func(run func()) {
				sh.mu.Lock()
				defer sh.mu.Unlock()
				run()
			},
		})
		if err != nil {
			return nil, err
		}
		sh.m = m
		s.shards = append(s.shards, sh)
	}
	return s, nil
}

// Watch subscribes to lifecycle events across every shard, merged into one
// totally ordered stream; see promises.Engine.
func (s *ShardedManager) Watch(ctx context.Context, opts WatchOptions) (<-chan Event, error) {
	return s.bus.Watch(ctx, opts)
}

// NumShards returns the shard count.
func (s *ShardedManager) NumShards() int { return len(s.shards) }

// ShardOf returns the shard index owning the pool or instance with the
// given id — exposed so tools and tests can place resources deliberately.
func (s *ShardedManager) ShardOf(resourceID string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(resourceID))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// ownerShard maps a promise id back to its shard: the moved directory for
// migrated property sub-promises, the "<ns>prm<i>-" prefix otherwise. ok
// is false for composite ids and ids this manager never issued — a
// federated id from another node's namespace resolves only through the
// moved directory (a slot migrated in keeps its original id). Lock-free:
// this sits on the hot path of every check.
func (s *ShardedManager) ownerShard(id string) (int, bool) {
	if sh, migrated := s.moved.Load(id); migrated {
		return sh.(int), true
	}
	id, ok := strings.CutPrefix(id, s.ns)
	if !ok || !strings.HasPrefix(id, shardIDPrefix) {
		return 0, false
	}
	rest := id[len(shardIDPrefix):]
	dash := strings.IndexByte(rest, '-')
	if dash <= 0 {
		return 0, false
	}
	n, err := strconv.Atoi(rest[:dash])
	if err != nil || n < 0 || n >= len(s.shards) {
		return 0, false
	}
	return n, true
}

// isCompositeID recognizes directory-tracked composite ids, including
// node-namespaced ones ("n0!shp-3"): everything through a '!' is a
// namespace, what remains must carry the composite prefix.
func isCompositeID(id string) bool {
	if i := strings.IndexByte(id, '!'); i >= 0 {
		id = id[i+1:]
	}
	return strings.HasPrefix(id, compositeIDPrefix)
}

// lookupComposite returns the directory entry for id, or nil when missing
// or owned by a different client (pass client "" to skip the owner check).
// Lock-free: entries are immutable once stored.
func (s *ShardedManager) lookupComposite(client, id string) *composite {
	v, ok := s.dir.Load(id)
	if !ok {
		return nil
	}
	c := v.(*composite)
	if client != "" && c.client != client {
		return nil
	}
	return c
}

func (s *ShardedManager) dropComposite(id string) {
	if v, ok := s.dir.Load(id); ok {
		s.dirMu.Lock()
		for _, part := range v.(*composite).parts {
			delete(s.partOf, part.id)
		}
		s.dirMu.Unlock()
	}
	s.dir.Delete(id)
	s.logDirDrop(id)
}

// lockShards acquires the mutexes of the given shard set in ascending index
// order and returns the matching unlock. Ascending acquisition is the whole
// deadlock-avoidance story: two cross-shard requests can never hold locks
// in an order that closes a cycle.
func (s *ShardedManager) lockShards(set map[int]bool) (unlock func()) {
	idxs := make([]int, 0, len(set))
	for i := range set {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		s.shards[i].mu.Lock()
	}
	return func() {
		for j := len(idxs) - 1; j >= 0; j-- {
			s.shards[idxs[j]].mu.Unlock()
		}
	}
}

// addPromiseID adds the shards backing a referenced promise id to set.
// Composite ids mark the route non-simple; unknown ids land on shard 0,
// where lookup produces the correct not-found error.
func (s *ShardedManager) addPromiseID(set map[int]bool, id string, simple *bool) {
	if isCompositeID(id) {
		*simple = false
		if c := s.lookupComposite("", id); c != nil {
			for _, part := range c.parts {
				set[part.shard] = true
			}
			return
		}
		set[0] = true
		return
	}
	if sh, ok := s.ownerShard(id); ok {
		set[sh] = true
		return
	}
	set[0] = true
}

// routeRequest computes the shard set one promise request can touch.
// simple means the whole request (predicates and releases) lives on one
// shard with no composite references, so the single-store path can run it
// with full §4/§8 semantics.
//
// A property predicate's satisfying instance may live anywhere, but
// "anywhere" is bounded by the published candidate indexes: only the
// shards the pre-filter says could contribute a slot, a candidate or a
// migration target join the route (contributingShards). The summaries are
// read lock-free here, so the answer is a hint, not a commitment — the
// caller's re-route-under-locks loop and grantCross's under-lock
// re-validation (errPrefilterWiden) are what make it sound; see the
// Phase 1 comment in grantCross for the equivalence argument.
func (s *ShardedManager) routeRequest(pr PromiseRequest) (set map[int]bool, simple bool) {
	set = make(map[int]bool)
	simple = true
	var props []floatPred
	for i, p := range pr.Predicates {
		switch p.View {
		case AnonymousView:
			set[s.ShardOf(p.Pool)] = true
		case NamedView:
			set[s.ShardOf(p.Instance)] = true
		case PropertyView:
			props = append(props, floatPred{idx: i})
		}
	}
	if len(props) > 0 {
		for i := range s.contributingShards(pr, props) {
			set[i] = true
		}
		if len(s.shards) > 1 {
			// Property placement always runs the reservation pipeline on a
			// multi-shard engine — grantCross owns the pre-filter counters,
			// the flap re-validation and the global match — even when the
			// pre-filter narrows the route to a single shard.
			simple = false
		}
	}
	for _, rid := range pr.Releases {
		s.addPromiseID(set, rid, &simple)
	}
	if len(set) == 0 {
		set[0] = true
	}
	if len(set) > 1 {
		simple = false
	}
	return set, simple
}

// route computes the shard set for a whole request, whether the
// single-shard fast path applies, and the primary shard an action should
// run on.
func (s *ShardedManager) route(req Request) (involved map[int]bool, simple bool, primary int) {
	involved = make(map[int]bool)
	simple = true
	for _, pr := range req.PromiseRequests {
		set, sub := s.routeRequest(pr)
		if !sub {
			simple = false
		}
		for i := range set {
			involved[i] = true
		}
	}
	for _, e := range req.Env {
		s.addPromiseID(involved, e.PromiseID, &simple)
	}
	for _, r := range req.Resources {
		involved[s.ShardOf(r)] = true
	}
	// A multi-request message with a property predicate takes every lock:
	// its later requests commit after earlier ones, and a pre-filter widen
	// (errPrefilterWiden) fired mid-message could not be retried — the
	// compensation path hands back grants but cannot restore committed §4
	// releases. Single-request messages, the common and perf-critical
	// shape, keep the shrunken set: their widen fires before any state
	// changes, so the retry is a pure re-execution.
	if len(s.shards) > 1 && len(req.PromiseRequests) > 1 && hasPropertyPred(req.PromiseRequests) {
		for i := range s.shards {
			involved[i] = true
		}
	}
	if len(involved) == 0 {
		involved[0] = true
	}
	if len(involved) > 1 {
		simple = false
	}
	if len(req.Resources) > 0 {
		primary = s.ShardOf(req.Resources[0])
	} else {
		primary = len(s.shards)
		for i := range involved {
			if i < primary {
				primary = i
			}
		}
	}
	return involved, simple, primary
}

// hasPropertyPred reports whether any request carries a property-view
// predicate — the only kind that can trigger a pre-filter widen.
func hasPropertyPred(reqs []PromiseRequest) bool {
	for _, pr := range reqs {
		for _, p := range pr.Predicates {
			if p.View == PropertyView {
				return true
			}
		}
	}
	return false
}

// subsetOf reports whether every shard in a is also in b.
func subsetOf(a, b map[int]bool) bool {
	for i := range a {
		if !b[i] {
			return false
		}
	}
	return true
}

// allShards returns the full shard set.
func (s *ShardedManager) allShards() map[int]bool {
	out := make(map[int]bool, len(s.shards))
	for i := range s.shards {
		out[i] = true
	}
	return out
}

// needsGlobal reports whether a named predicate in the request targets an
// instance tentatively allocated to a property promise. Granting it means
// displacing that allocation — a joint matching problem over every shard,
// possibly migrating the displaced slot — so the request escalates to the
// cross-shard pipeline under the full lock set. First-fit mode never
// rearranges, so it never escalates (the owning shard rejects exactly as
// the single store would). The caller must hold the lock of every shard
// the request routes to; named instances' shards always are in the route.
func (s *ShardedManager) needsGlobal(req Request) (bool, error) {
	if s.mode == FirstFitMode {
		return false, nil
	}
	for _, pr := range req.PromiseRequests {
		held, err := s.promiseRequestNeedsGlobal(pr)
		if err != nil || held {
			return held, err
		}
	}
	return false, nil
}

// promiseRequestNeedsGlobal is needsGlobal for one promise request.
func (s *ShardedManager) promiseRequestNeedsGlobal(pr PromiseRequest) (bool, error) {
	for _, p := range pr.Predicates {
		if p.View != NamedView {
			continue
		}
		held, err := s.shards[s.ShardOf(p.Instance)].m.propertySlotHolder(p.Instance)
		if err != nil || held {
			return held, err
		}
	}
	return false, nil
}

// Execute processes one client message, exactly like Manager.Execute but
// with state striped across shards. Single-shard requests delegate to the
// owning shard's manager; cross-shard requests run the composite protocol
// under the ordered lock set.
//
// Routing resolves composite ids and migrated promises against the
// directory lock-free, so the request is re-routed after the locks are
// held: a composite registered (or a slot migrated) in between could
// otherwise send execution to shards whose mutexes were never acquired.
// The loop converges because the lock set only grows. A second check under
// the locks escalates to the full set when a named predicate needs the
// global matcher (needsGlobal above).
//
// Cancellation is honoured before any lock is taken and, for cross-shard
// requests, between per-shard reservations (see grantCross) — a dead client
// aborts the whole pipeline before anything is confirmed, leaking no state.
func (s *ShardedManager) Execute(ctx context.Context, req Request) (*Response, error) {
	if req.Client == "" {
		return nil, fmt.Errorf("%w: missing client", ErrBadRequest)
	}
	// Degraded read-only mode rejects mutations before any routing or
	// locking; the shard managers gate their own entry points too, but
	// cross-shard paths bypass Manager.Execute.
	if err := s.health.reject(); err != nil {
		return nil, err
	}
	// A named action's resource params route it to its owning shard, the
	// same normalisation the transport server applies for wire actions.
	if req.ActionName != "" && len(req.Resources) == 0 {
		for _, key := range []string{"pool", "instance"} {
			if r := req.ActionParams[key]; r != "" {
				req.Resources = append(req.Resources, r)
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	involved, _, _ := s.route(req)
	for {
		unlock := s.lockShards(involved)
		again, simple, primary := s.route(req)
		if subsetOf(again, involved) {
			esc, err := s.needsGlobal(req)
			if err != nil {
				unlock()
				return nil, err
			}
			if !esc || len(involved) == len(s.shards) {
				if simple && !esc {
					defer unlock()
					return s.shards[primary].m.Execute(ctx, req)
				}
				resp, err := s.executeCross(ctx, req, primary, involved)
				unlock()
				if errors.Is(err, errPrefilterWiden) {
					// The pre-filter flapped on a shard outside the held
					// set; retry under every lock, where the widen signal
					// cannot fire again (see grantCross Phase 1).
					involved = s.allShards()
					continue
				}
				return resp, err
			}
			again = s.allShards()
		}
		unlock()
		for i := range again {
			involved[i] = true
		}
	}
}

// executeCross runs a cross-shard request. Caller holds the locks of
// exactly the shards in locked, which cover every shard the request can
// touch. An errPrefilterWiden from grantCross propagates to the caller
// (with earlier grants in the message compensated like any other
// failure) so the whole message retries under the full lock set.
func (s *ShardedManager) executeCross(ctx context.Context, req Request, primary int, locked map[int]bool) (*Response, error) {
	resp := &Response{}
	for _, pr := range req.PromiseRequests {
		presp, err := s.grantCross(ctx, req.Client, pr, locked)
		if err != nil {
			// Restore the single-store all-or-nothing contract for the
			// message: grants already committed for earlier promise
			// requests are handed back before the error surfaces.
			for _, prev := range resp.Promises {
				s.releaseGrant(req.Client, prev)
			}
			return nil, err
		}
		resp.Promises = append(resp.Promises, presp)
	}

	groups, envErr := s.splitEnv(req.Client, req.Env)
	if envErr == nil {
		envErr = s.validateEnvGroups(req.Client, groups)
	}
	switch {
	// A named action is resolved by the primary shard's manager, so it
	// counts as an action here even though req.Action is still nil.
	case req.Action != nil || req.ActionName != "":
		if envErr != nil {
			resp.ActionErr = envErr
			break
		}
		// The action and the primary shard's releases run as one §8
		// transaction on the primary; the other shards' releases apply
		// afterwards, invisible to concurrent clients because the full
		// lock set is held throughout.
		sub, err := s.shards[primary].m.Execute(ctx, Request{
			Client:       req.Client,
			Env:          groups[primary],
			Action:       req.Action,
			ActionName:   req.ActionName,
			ActionParams: req.ActionParams,
		})
		if err != nil {
			for _, prev := range resp.Promises {
				s.releaseGrant(req.Client, prev)
			}
			return nil, err
		}
		resp.ActionResult, resp.ActionErr = sub.ActionResult, sub.ActionErr
		if resp.ActionErr == nil {
			s.applyReleaseGroups(req.Client, groups, primary)
		}
	case len(req.Env) > 0:
		if envErr != nil {
			resp.ActionErr = envErr
			break
		}
		s.applyReleaseGroups(req.Client, groups, -1)
	}
	return resp, nil
}

// releaseGrant hands back a just-granted promise (single-shard or
// composite) when a later internal failure in the same message forces the
// whole message to fail: the client never learns the promise id, so the
// grant must not outlive the call. Compensation ignores the request's
// context — it must run even (especially) when the client is gone.
func (s *ShardedManager) releaseGrant(client string, pr PromiseResponse) {
	if !pr.Accepted {
		return
	}
	if isCompositeID(pr.PromiseID) {
		if c := s.lookupComposite(client, pr.PromiseID); c != nil {
			for _, part := range c.parts {
				_, _ = s.shards[part.shard].m.Execute(context.Background(), Request{
					Client: client,
					Env:    []EnvEntry{{PromiseID: part.id, Release: true}},
				})
			}
			s.dropComposite(pr.PromiseID)
		}
		return
	}
	if sh, ok := s.ownerShard(pr.PromiseID); ok {
		_, _ = s.shards[sh].m.Execute(context.Background(), Request{
			Client: client,
			Env:    []EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		})
	}
}

// splitEnv decomposes an environment into per-shard environments, expanding
// composite promises into their parts. The error mirrors validateEnv's
// client-visible sentinels.
func (s *ShardedManager) splitEnv(client string, env []EnvEntry) (map[int][]EnvEntry, error) {
	groups := make(map[int][]EnvEntry)
	for _, e := range env {
		if isCompositeID(e.PromiseID) {
			c := s.lookupComposite(client, e.PromiseID)
			if c == nil {
				return nil, fmt.Errorf("%w: %s", ErrPromiseNotFound, e.PromiseID)
			}
			for _, part := range c.parts {
				groups[part.shard] = append(groups[part.shard], EnvEntry{PromiseID: part.id, Release: e.Release})
			}
			continue
		}
		sh, ok := s.ownerShard(e.PromiseID)
		if !ok {
			sh = 0
		}
		groups[sh] = append(groups[sh], e)
	}
	return groups, nil
}

// validateEnvGroups checks every per-shard environment, in shard order.
func (s *ShardedManager) validateEnvGroups(client string, groups map[int][]EnvEntry) error {
	for _, sh := range sortedKeys(groups) {
		if err := s.shards[sh].m.envOK(client, groups[sh]); err != nil {
			return err
		}
	}
	return nil
}

// applyReleaseGroups hands back every release-flagged environment entry,
// shard by shard, skipping skipShard (whose releases already ran inside the
// action transaction). It is best-effort: validation already passed under
// the held locks, so the only failures left are clock expiry (the sweep
// frees those holds anyway) and internal store errors, and neither may
// turn a committed action into a client-visible failure.
func (s *ShardedManager) applyReleaseGroups(client string, groups map[int][]EnvEntry, skipShard int) {
	for _, sh := range sortedKeys(groups) {
		if sh == skipShard {
			continue
		}
		var rel []EnvEntry
		for _, e := range groups[sh] {
			if e.Release {
				rel = append(rel, e)
			}
		}
		if len(rel) == 0 {
			continue
		}
		// Best-effort by contract (see above): never cancelled mid-way.
		_, _ = s.shards[sh].m.Execute(context.Background(), Request{Client: client, Env: rel})
	}
}

// grantCross evaluates one promise request that may span shards, running
// the two-phase reserve → confirm/abort pipeline of reserve.go. Caller
// holds the locks of exactly the shards in locked, which cover every
// shard the request routed to; grantCross never reserves outside that
// set, returning errPrefilterWiden instead when the re-read pre-filter
// says it would have to (see Phase 1).
//
// Cancellation is checked between per-shard reservations and once more
// before the first Confirm: a context that dies mid-pipeline aborts every
// open reservation, so releases spring back into force, tentative grants
// vanish, and upstream promises acquired while planning are compensated —
// no state outlives the cancelled call. Once the first shard has confirmed
// the pipeline runs to completion; cancellation can no longer split the
// grant.
func (s *ShardedManager) grantCross(ctx context.Context, client string, pr PromiseRequest, locked map[int]bool) (PromiseResponse, error) {
	reject := func(format string, args ...any) PromiseResponse {
		return PromiseResponse{Correlation: pr.RequestID, Reason: fmt.Sprintf(format, args...)}
	}
	if len(pr.Predicates) == 0 {
		return reject("no predicates in promise request"), nil
	}
	for _, p := range pr.Predicates {
		if err := p.Validate(); err != nil {
			return reject("invalid predicate %s: %v", p, err), nil
		}
	}
	// Normalize the tier here (pr is a copy) so the coordinator and every
	// shard agree on it; shard configs share one DefaultPriority.
	if pr.Priority == 0 {
		pr.Priority = s.shards[0].m.cfg.DefaultPriority
	}

	// Partition release targets to their owning shards, expanding composite
	// targets into their per-shard parts. Usability is checked by each
	// shard's Reserve, under its transaction.
	relByShard := make(map[int][]string)
	hasCompositeRel := false
	for _, rid := range pr.Releases {
		if isCompositeID(rid) {
			hasCompositeRel = true
			c := s.lookupComposite(client, rid)
			if c == nil {
				return reject("release target %s: %v", rid, fmt.Errorf("%w: %s", ErrPromiseNotFound, rid)), nil
			}
			for _, part := range c.parts {
				relByShard[part.shard] = append(relByShard[part.shard], part.id)
			}
			continue
		}
		sh, ok := s.ownerShard(rid)
		if !ok {
			return reject("release target %s: %v", rid, fmt.Errorf("%w: %s", ErrPromiseNotFound, rid)), nil
		}
		relByShard[sh] = append(relByShard[sh], rid)
	}

	// Resolve the duration cap (manager clamp + context deadline) up front:
	// a request whose floor cannot be met must reject before any shard
	// reserves, even when every predicate floats (shard configs agree, so
	// any shard's answer is the answer). The capped value also prices the
	// pinned grants below, so a floating predicate cannot outlive the
	// caller's deadline either.
	durCapped, durReason := s.shards[0].m.grantDuration(ctx, pr.Duration, pr.MinDuration)
	if durReason != "" {
		s.shards[0].m.metrics.requests.Inc()
		s.shards[0].m.metrics.rejections.Inc()
		return reject("%s", durReason), nil
	}

	// Partition predicates: anonymous and named bind to their resource's
	// shard; property predicates float and are placed by the global match.
	// A named predicate whose instance is tentatively allocated to a
	// property promise is deferred into the global match too: granting it
	// displaces that allocation, and the displaced slot may need to land
	// on any shard (first-fit never displaces, so it never defers — the
	// owning shard's planner rejects exactly as the single store would).
	fixed := make(map[int][]int)
	var floating []floatPred
	for i, p := range pr.Predicates {
		switch p.View {
		case AnonymousView:
			fixed[s.ShardOf(p.Pool)] = append(fixed[s.ShardOf(p.Pool)], i)
		case NamedView:
			if s.mode == MatchingMode {
				// Deliberately re-peeked here even though needsGlobal
				// already asked: an earlier promise request in the same
				// message can have granted a property promise onto this
				// instance, so the deferral answer must be re-read per
				// request. The displaced slot may need to re-home on a
				// shard the route never locked; the deferred predicate
				// joins floating, so Phase 1's clamp check below catches
				// that case and widens rather than plan past the held set.
				held, err := s.shards[s.ShardOf(p.Instance)].m.propertySlotHolder(p.Instance)
				if err != nil {
					return PromiseResponse{}, err
				}
				if held {
					floating = append(floating, floatPred{idx: i, named: true})
					continue
				}
			}
			fixed[s.ShardOf(p.Instance)] = append(fixed[s.ShardOf(p.Instance)], i)
		case PropertyView:
			floating = append(floating, floatPred{idx: i})
		}
	}

	// Same-shard request: when every predicate and every release target
	// lives on one shard (and no release is composite, which the inner
	// manager cannot resolve), delegate wholesale so the common case stays
	// one ordinary sub-promise with no reservation or directory overhead.
	if len(floating) == 0 && len(fixed) == 1 && !hasCompositeRel {
		for sh := range fixed {
			sameShard := true
			for rsh := range relByShard {
				if rsh != sh {
					sameShard = false
				}
			}
			if !sameShard {
				break
			}
			resp, err := s.shards[sh].m.Execute(ctx, Request{Client: client, PromiseRequests: []PromiseRequest{pr}})
			if err != nil {
				return PromiseResponse{}, err
			}
			return resp.Promises[0], nil
		}
	}

	// Phase 1 — reserve. Every involved shard tentatively applies its
	// releases and grants its fixed predicates inside an open transaction.
	// With floating predicates, the candidate-index pre-filter decides
	// which shards join: only those whose published index says they could
	// contribute a slot, a candidate instance or a migration target (see
	// contributingShards — shards with nothing to offer are provably
	// irrelevant to the joint match and their reservations are skipped).
	//
	// Since the route itself is pre-filtered, the held lock set no longer
	// covers every shard, and summaries of unlocked shards can move while
	// this runs — the index flap PR 5's all-shards route made impossible.
	// Equivalence with the single store survives the flap because of how
	// the two outcomes linearize:
	//
	//   - Accepts are self-justifying: the match is solved over candidate
	//     state read transactionally on reserved (locked) shards, and the
	//     plan is applied and confirmed under those same locks. Extra
	//     capacity appearing elsewhere can only keep a feasible request
	//     feasible, so no flap invalidates an accept.
	//   - Rejects linearize at the instant this re-read of the pre-filter
	//     loads the unlocked shards' summaries. Locked shards are frozen
	//     from acquisition through commit, so their state "now" is their
	//     state at that instant; each unlocked shard's summary is its
	//     committed state at its atomic load (commit hooks publish before
	//     the shard lock releases). Together they form one consistent
	//     global state in which every excluded shard provably contributes
	//     nothing — the exact state a single store would have rejected.
	//     A shard that becomes useful afterwards serializes the request
	//     before that commit.
	//
	// The one case with no such instant is a shard the re-read names as
	// contributing whose lock the route-time hint never took: it cannot
	// be reserved (no lock), and excluding it would reject against a view
	// no global state matches. That is the widen signal — the caller
	// retries under the full lock set, where the clamp is vacuous.
	involved := make(map[int]bool)
	for sh := range relByShard {
		involved[sh] = true
	}
	for sh := range fixed {
		involved[sh] = true
	}
	if len(floating) > 0 {
		for i := range s.contributingShards(pr, floating) {
			if !locked[i] {
				return PromiseResponse{}, errPrefilterWiden
			}
			involved[i] = true
		}
		if len(involved) == 0 {
			// No shard can contribute and nothing is fixed or released:
			// reserve one (held) shard anyway so the rejection runs through
			// the same counters and response shape as always.
			involved[sortedKeys(locked)[0]] = true
		}
		if skipped := len(s.shards) - len(involved); skipped > 0 {
			s.prefilterSkipped.Add(int64(skipped))
		}
	}
	resvs := make(map[int]*Reservation)
	abortAll := func() {
		for _, sh := range sortedKeys(resvs) {
			resvs[sh].Abort()
		}
	}
	for _, sh := range sortedKeys(involved) {
		// The cancellation point of the pipeline: a context that died while
		// earlier shards reserved aborts everything before any Confirm.
		if err := ctx.Err(); err != nil {
			abortAll()
			return PromiseResponse{}, err
		}
		idxs := fixed[sh]
		preds := make([]Predicate, len(idxs))
		for j, idx := range idxs {
			preds[j] = pr.Predicates[idx]
		}
		resv, rejResp, err := s.shards[sh].m.Reserve(ctx, client, ReserveRequest{
			Releases:    relByShard[sh],
			Predicates:  preds,
			PredIdx:     idxs,
			Duration:    pr.Duration,
			MinDuration: pr.MinDuration,
			Priority:    pr.Priority,
			Preemptible: pr.Preemptible,
		})
		if err != nil {
			abortAll()
			return PromiseResponse{}, err
		}
		if rejResp != nil {
			// One shard's rejection aborts the whole pipeline: releases
			// spring back into force on every shard (§4).
			abortAll()
			out := *rejResp
			out.Correlation = pr.RequestID
			return out, nil
		}
		resvs[sh] = resv
	}

	// Phase 2 — global property match. The coordinator solves one joint
	// bipartite problem over every shard's candidates and applies the
	// solution through the open reservations, releases strictly before
	// acquisitions: migrating slots detach first, within-shard
	// reallocations run per shard, migrating slots re-attach on their new
	// shard, then the new predicates pin to their chosen instances — each
	// as a single-predicate sub-promise, so the slot stays migratable.
	var pendingMoves []slotMigration
	var movedRows []*Promise
	preempted := false
	if len(floating) > 0 {
		plans, migs, ok, err := s.solveFloatAssignment(resvs, pr, floating, s.mode)
		if err != nil {
			abortAll()
			return PromiseResponse{}, err
		}
		if !ok && pr.Priority > 0 && s.mode == MatchingMode {
			// Spot-capacity fallback (preempt.go): displacing lower-tier
			// preemptible holds may restore joint feasibility. The victims
			// that help can hold instances on any shard — including shards
			// the pre-filter excluded, whose named-held instances become
			// candidates once freed — so the fallback runs only under the
			// full lock set (widen first otherwise; the retry is a pure
			// re-execution, as in Phase 1) and reserves the leftover shards.
			if len(locked) < len(s.shards) {
				abortAll()
				return PromiseResponse{}, errPrefilterWiden
			}
			for i := range s.shards {
				if resvs[i] != nil {
					continue
				}
				resv, rejResp, rerr := s.shards[i].m.Reserve(ctx, client, ReserveRequest{
					Duration:    pr.Duration,
					MinDuration: pr.MinDuration,
					Priority:    pr.Priority,
					Preemptible: pr.Preemptible,
				})
				if rerr != nil {
					abortAll()
					return PromiseResponse{}, rerr
				}
				if rejResp != nil {
					// An empty reservation cannot reject on capacity; this is
					// a duration-floor rejection, identical on every shard.
					abortAll()
					out := *rejResp
					out.Correlation = pr.RequestID
					return out, nil
				}
				resvs[i] = resv
			}
			plans, migs, ok, err = s.preemptFloat(pr, resvs, floating)
			if err != nil {
				abortAll()
				return PromiseResponse{}, err
			}
			preempted = ok
		}
		if !ok {
			abortAll()
			// Abort counted the per-shard requests; the client-visible
			// rejection lands on the lowest involved shard's counter.
			s.shards[sortedKeys(resvs)[0]].m.metrics.rejections.Inc()
			return reject("property predicates not jointly satisfiable with outstanding promises"), nil
		}
		migRows := make([]*Promise, len(migs))
		for i, mg := range migs {
			if migRows[i], err = resvs[mg.from].MigrateOut(mg.promiseID); err != nil {
				abortAll()
				return PromiseResponse{}, err
			}
		}
		for _, sh := range sortedKeys(plans) {
			if p := plans[sh]; len(p.realloc) > 0 {
				if err := resvs[sh].ApplyRealloc(p.realloc); err != nil {
					abortAll()
					return PromiseResponse{}, err
				}
			}
		}
		for i, mg := range migs {
			if err := resvs[mg.to].MigrateIn(migRows[i], mg.inst); err != nil {
				abortAll()
				return PromiseResponse{}, err
			}
		}
		for _, sh := range sortedKeys(plans) {
			p := plans[sh]
			for j := range p.preds {
				if err := resvs[sh].GrantPinned(p.preds[j:j+1], p.predIdx[j:j+1], p.assign[j:j+1], durCapped); err != nil {
					abortAll()
					return PromiseResponse{}, err
				}
			}
		}
		if preempted {
			// Name the displacing promise in every pending EventPreempted:
			// the lowest granted part id (the composite id does not exist
			// until after confirm, and a single-part grant answers to its
			// part id anyway).
			by := ""
			for _, sh := range sortedKeys(resvs) {
				if g := resvs[sh].Granted(); len(g) > 0 {
					by = g[0].ID
					break
				}
			}
			for _, sh := range sortedKeys(resvs) {
				resvs[sh].StampPreemptedBy(by)
			}
		}
		pendingMoves = migs
		movedRows = migRows
	}

	// Phase 3 — confirm, in ascending shard order. Commit of an open
	// reservation cannot conflict (the shard lock is held), so a failure
	// here is an internal invariant break; grants already confirmed are
	// handed back best-effort so no promise the client never learned about
	// outlives the call. The last cancellation check sits before the first
	// Confirm: past it the grant is committed whole.
	if err := ctx.Err(); err != nil {
		abortAll()
		return PromiseResponse{}, err
	}
	// With migrations pending, the confirms below make a promise vanish
	// from its source shard's snapshot before the directory re-routes it;
	// the odd seqlock value tells lock-free readers their miss may be this
	// race rather than a definitive not-found.
	migrating := len(pendingMoves) > 0
	if migrating {
		s.migSeq.Add(1)
	}
	var confirmed []compositePart
	for _, sh := range sortedKeys(resvs) {
		granted := resvs[sh].Granted()
		if err := resvs[sh].Confirm(); err != nil {
			if migrating {
				s.migSeq.Add(1)
			}
			abortAll()
			s.releaseParts(client, confirmed)
			return PromiseResponse{}, err
		}
		for _, g := range granted {
			confirmed = append(confirmed, compositePart{shard: sh, id: g.ID, predIdx: g.PredIdx, expires: g.Expires})
		}
	}
	s.commitMoves(pendingMoves)
	if migrating {
		s.migSeq.Add(1)
	}
	if len(pendingMoves) > 0 {
		// The migrated promises now live (and will expire) on their new
		// shards; their ids, clients and expiries are unchanged, and the
		// shared bus keeps their event streams continuous.
		now := s.clk.Now()
		events := make([]Event, 0, len(pendingMoves))
		for i, mg := range pendingMoves {
			row := movedRows[i]
			s.shards[mg.to].m.trackExpiry(row.ID, row.Expires)
			events = append(events, Event{
				Type: EventMigrated, PromiseID: row.ID, Client: row.Client,
				Time: now, Expires: row.Expires,
				Reason: fmt.Sprintf("slot moved from shard %d to shard %d", mg.from, mg.to),
			})
		}
		s.bus.publish(events...)
	}

	// A pipeline that produced a single sub-promise (e.g. an upgrade whose
	// new predicates all land on one shard while the releases span others)
	// needs no composite id: the part is an ordinary promise.
	if len(confirmed) == 1 {
		if err := s.durSync(); err != nil {
			return PromiseResponse{}, fmt.Errorf("core: commit not durable: %w", err)
		}
		return PromiseResponse{
			Correlation: pr.RequestID,
			Accepted:    true,
			PromiseID:   confirmed[0].id,
			Expires:     confirmed[0].expires,
		}, nil
	}
	id, expires := s.registerComposite(client, confirmed)
	// The directory add, the migration events and every part commit must be
	// on stable storage before the composite id is handed out.
	if err := s.durSync(); err != nil {
		return PromiseResponse{}, fmt.Errorf("core: commit not durable: %w", err)
	}
	return PromiseResponse{
		Correlation: pr.RequestID,
		Accepted:    true,
		PromiseID:   id,
		Expires:     expires,
	}, nil
}

// contributingShards is the reservation (and, since the lock-set shrink,
// routing) pre-filter: given a request's floating predicates, it returns
// the set of shards that could contribute anything to the joint property
// match, read lock-free from each shard's published candidate-index
// summary (candidates.go). Summaries of shards whose lock the caller
// holds cannot move underneath the decision; the rest can. routeRequest
// therefore treats the answer as a hint, and grantCross re-reads it under
// the held locks, clamping to the lock set and widening on a flap — the
// Phase 1 comment there carries the equivalence argument.
//
// Two sound pruning tiers, both strictly conservative:
//
//  1. A shard with no active property slot and no hostable instance adds
//     no vertex to the bipartite problem at all — not a slot to rearrange,
//     not a candidate to host a new predicate or a migrated slot — so
//     excluding it can never change feasibility. (Release and fixed-
//     predicate shards are reserved by the caller regardless, which is
//     what keeps capacity freed by §4 releases visible to the match.)
//  2. When no shard holds any property slot, no rearrangement or
//     migration is possible: the match degenerates to placing the new
//     predicates on available instances. A slotless shard is then needed
//     only if one of its hostable instances might satisfy one of the new
//     predicates, which the per-value property index answers
//     conservatively (indexMay); unindexable predicate shapes report
//     "may", falling back to inclusion.
//
// Everything else — skew in instance placement being the headline case —
// shrinks the reservation set to the shards that matter.
func (s *ShardedManager) contributingShards(pr PromiseRequest, floating []floatPred) map[int]bool {
	out := make(map[int]bool, len(s.shards))
	if s.disablePrefilter {
		for i := range s.shards {
			out[i] = true
		}
		return out
	}
	summaries := make([]*candSummary, len(s.shards))
	totalSlots := 0
	for i, sh := range s.shards {
		summaries[i] = sh.m.cand.summary.Load()
		totalSlots += summaries[i].Slots
	}
	// Tier 2 applies only with zero slots anywhere; a deferred named
	// predicate implies a property slot exists, so with totalSlots == 0
	// every floating predicate is a property expression.
	valuePrune := totalSlots == 0
	var exprs []predicate.Expr
	if valuePrune {
		for _, f := range floating {
			if f.named {
				valuePrune = false
				break
			}
			exprs = append(exprs, pr.Predicates[f.idx].Expr)
		}
	}
	now := s.clk.Now()
	for i := range s.shards {
		sum := summaries[i]
		// A summary with pinned instances past their holder's deadline
		// under-counts: the reservation-time sweep would free them, so a
		// cannot-contribute verdict is no longer trustworthy and the
		// shard is included (the commit that lapses the holder restores
		// precision).
		stale := sum.Pinned > 0 && !now.Before(sum.MinPinnedExpiry)
		if sum.Slots == 0 && sum.Hostable == 0 && !stale {
			continue // tier 1: nothing to offer
		}
		if valuePrune && sum.Slots == 0 && !stale {
			may := false
			for _, e := range exprs {
				if m, ok := indexMay(e, sum.ByProp); !ok || m {
					may = true
					break
				}
			}
			if !may {
				continue // tier 2: no hostable instance can satisfy anything requested
			}
		}
		out[i] = true
	}
	return out
}

// releaseParts hands back sub-promises granted earlier in an operation
// that is now failing, in reverse grant order.
func (s *ShardedManager) releaseParts(client string, parts []compositePart) {
	for i := len(parts) - 1; i >= 0; i-- {
		_, _ = s.shards[parts[i].shard].m.Execute(context.Background(), Request{
			Client: client,
			Env:    []EnvEntry{{PromiseID: parts[i].id, Release: true}},
		})
	}
}

// registerComposite records a granted composite promise and returns its id
// and expiry (the earliest part expiry: the whole is only guaranteed while
// every part holds).
func (s *ShardedManager) registerComposite(client string, parts []compositePart) (string, time.Time) {
	expires := parts[0].expires
	for _, part := range parts[1:] {
		if part.expires.Before(expires) {
			expires = part.expires
		}
	}
	id := s.compIDs.Next()
	s.dirMu.Lock()
	for _, part := range parts {
		s.partOf[part.id] = id
	}
	s.dirMu.Unlock()
	c := &composite{client: client, expires: expires, parts: parts}
	s.dir.Store(id, c)
	// Logged after the directory mutation: replay re-applies the record as
	// a plain overwrite, so the order only matters for the checkpointer,
	// which captures the directory after rotating the log.
	s.logDirAdd(id, c)
	return id, expires
}

// commitMoves records confirmed cross-shard slot migrations: the moved
// directory re-routes the promise ids from now on, and any composite
// referencing a migrated part gets a fresh directory entry with the
// updated shard. Entries are replaced, never mutated: a concurrent
// lock-free reader holding the old pointer sees a consistent stale part
// list, runs into promise-not-found on the vacated shard, and retries
// against the fresh entry. Called only while every shard lock the
// migration touched is held.
func (s *ShardedManager) commitMoves(migs []slotMigration) {
	if len(migs) == 0 {
		return
	}
	s.dirMu.Lock()
	defer s.dirMu.Unlock()
	for _, mg := range migs {
		s.moved.Store(mg.promiseID, mg.to)
		cid, ok := s.partOf[mg.promiseID]
		if !ok {
			continue
		}
		v, ok := s.dir.Load(cid)
		if !ok {
			continue
		}
		old := v.(*composite)
		fresh := &composite{
			client:  old.client,
			expires: old.expires,
			parts:   append([]compositePart(nil), old.parts...),
		}
		for i := range fresh.parts {
			if fresh.parts[i].id == mg.promiseID {
				fresh.parts[i].shard = mg.to
			}
		}
		s.dir.Store(cid, fresh)
	}
	for _, mg := range migs {
		s.logDirMove(mg.promiseID, mg.to)
	}
}

// GrantBatch grants many independent promise requests for one client under
// a single acquisition of the ordered shard lock set, batching the
// single-shard requests into one transaction per shard. Responses line up
// with reqs by index; each request is still individually atomic.
func (s *ShardedManager) GrantBatch(ctx context.Context, client string, reqs []PromiseRequest) ([]PromiseResponse, error) {
	if client == "" {
		return nil, fmt.Errorf("%w: missing client", ErrBadRequest)
	}
	if err := s.health.reject(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	routeAll := func() (involved map[int]bool, perShard map[int][]int, cross []int) {
		involved = make(map[int]bool)
		perShard = make(map[int][]int)
		for i, pr := range reqs {
			set, simple := s.routeRequest(pr)
			for sh := range set {
				involved[sh] = true
			}
			if simple {
				for sh := range set {
					perShard[sh] = append(perShard[sh], i)
				}
			} else {
				cross = append(cross, i)
			}
		}
		// As in route(): a widen retry is only safe when nothing committed
		// before it, so a multi-request batch with a property predicate
		// takes every lock up front.
		if len(s.shards) > 1 && len(reqs) > 1 && hasPropertyPred(reqs) {
			for i := range s.shards {
				involved[i] = true
			}
		}
		return involved, perShard, cross
	}
	involved, perShard, cross := routeAll()
	if len(involved) == 0 {
		return []PromiseResponse{}, nil
	}
	// Re-route under the locks, exactly as Execute does, so a composite
	// release target resolved (or a slot migrated) mid-flight cannot reach
	// unlocked shards; requests whose named predicates need the global
	// matcher escalate to the full lock set and the cross path.
	unlock := s.lockShards(involved)
retry:
	for {
		for {
			again, perShard2, cross2 := routeAll()
			if subsetOf(again, involved) {
				crossSet := make(map[int]bool, len(cross2))
				for _, idx := range cross2 {
					crossSet[idx] = true
				}
				needAll := false
				if s.mode == MatchingMode {
					for i, pr := range reqs {
						held, err := s.promiseRequestNeedsGlobal(pr)
						if err != nil {
							unlock()
							return nil, err
						}
						if held {
							// The displaced slot may re-home anywhere, so the
							// request needs the cross path under every lock.
							crossSet[i] = true
							needAll = true
						}
					}
				}
				if !needAll || len(involved) == len(s.shards) {
					for sh, idxs := range perShard2 {
						kept := idxs[:0]
						for _, idx := range idxs {
							if !crossSet[idx] {
								kept = append(kept, idx)
							}
						}
						perShard2[sh] = kept
					}
					cross2 = sortedKeys(crossSet)
					perShard, cross = perShard2, cross2
					break
				}
				again = s.allShards()
			}
			unlock()
			for i := range again {
				involved[i] = true
			}
			unlock = s.lockShards(involved)
		}

		out := make([]PromiseResponse, len(reqs))
		// On an internal error, grants already committed would be lost to the
		// caller (it never sees their ids), so they are handed back first.
		undo := func() {
			for _, pr := range out {
				s.releaseGrant(client, pr)
			}
		}
		for _, sh := range sortedKeys(perShard) {
			idxs := perShard[sh]
			batch := make([]PromiseRequest, len(idxs))
			for j, idx := range idxs {
				batch[j] = reqs[idx]
			}
			resps, err := s.shards[sh].m.GrantBatch(ctx, client, batch)
			if err != nil {
				undo()
				unlock()
				return nil, err
			}
			for j, idx := range idxs {
				out[idx] = resps[j]
			}
		}
		for _, idx := range cross {
			presp, err := s.grantCross(ctx, client, reqs[idx], involved)
			if errors.Is(err, errPrefilterWiden) {
				// The pre-filter flapped past the held lock set (see
				// grantCross Phase 1): compensate the batch's committed
				// grants and rerun it whole under every lock.
				undo()
				unlock()
				involved = s.allShards()
				unlock = s.lockShards(involved)
				continue retry
			}
			if err != nil {
				undo()
				unlock()
				return nil, err
			}
			out[idx] = presp
		}
		unlock()
		return out, nil
	}
}

// Release hands back the named promises atomically, exactly like
// Manager.Release; composite ids expand to their per-shard parts.
func (s *ShardedManager) Release(ctx context.Context, client string, ids ...string) error {
	if len(ids) == 0 {
		return nil
	}
	env := make([]EnvEntry, len(ids))
	for i, id := range ids {
		env[i] = EnvEntry{PromiseID: id, Release: true}
	}
	resp, err := s.Execute(ctx, Request{Client: client, Env: env})
	if err != nil {
		return err
	}
	return resp.ActionErr
}

// CheckBatch reports, per promise id, whether the promise is currently
// usable by client (see Manager.CheckBatch). The whole path is lock-free:
// ids route through the migration directory (atomic map reads) to their
// shard's immutable store snapshot, so checks never block grants and scale
// with cores no matter how many writers are running. A racing slot
// migration can make an id miss on its routed shard (the source committed,
// the directory not yet updated); such ids are re-dispatched, and after a
// bounded number of attempts the remaining ones are resolved definitively
// under the full shard lock set — the only situation in which a check
// takes a lock.
func (s *ShardedManager) CheckBatch(ctx context.Context, client string, ids []string) ([]error, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]error, len(ids))
	perShard := make(map[int][]int)
	for i, id := range ids {
		if isCompositeID(id) {
			out[i] = s.checkComposite(client, id)
			continue
		}
		sh, ok := s.ownerShard(id)
		if !ok {
			sh = 0
		}
		perShard[sh] = append(perShard[sh], i)
	}
	for attempt := 0; len(perShard) > 0; attempt++ {
		if attempt > migrationRetryLimit {
			// Migrations keep outrunning the directory updates; freeze them
			// by holding every lock and resolve what is left.
			unlock := s.lockShards(s.allShards())
			for _, shIdx := range sortedKeys(perShard) {
				for _, idx := range perShard[shIdx] {
					o, ok := s.ownerShard(ids[idx])
					if !ok {
						o = 0
					}
					out[idx] = s.shards[o].m.usable(client, ids[idx])
				}
			}
			unlock()
			return out, nil
		}
		next := make(map[int][]int)
		for _, shIdx := range sortedKeys(perShard) {
			idxs := perShard[shIdx]
			sh := s.shards[shIdx]
			mseq := s.migSeq.Load()
			var batch []string
			var bidx []int
			for _, idx := range idxs {
				if o, ok := s.ownerShard(ids[idx]); ok && o != shIdx {
					next[o] = append(next[o], idx)
					continue
				}
				batch = append(batch, ids[idx])
				bidx = append(bidx, idx)
			}
			errs, err := sh.m.CheckBatch(ctx, client, batch)
			if err != nil {
				return nil, err
			}
			for j, idx := range bidx {
				// Not-found may mean the id never existed — or that a
				// migration's source shard committed before the directory
				// re-routed the id. The migration seqlock separates the two
				// without locks: if no migration was in flight around the
				// read, the miss is definitive; otherwise re-dispatch, with
				// the freeze pass settling persistent races.
				if errors.Is(errs[j], ErrPromiseNotFound) && !s.migrationsQuiescedAt(mseq) {
					o, ok := s.ownerShard(ids[idx])
					if !ok {
						o = 0
					}
					next[o] = append(next[o], idx)
					continue
				}
				out[idx] = errs[j]
			}
		}
		perShard = next
	}
	return out, nil
}

// migrationsQuiescedAt reports whether no slot migration was in flight
// when before was loaded and none has begun or finished since — making a
// not-found read taken in between definitive rather than possibly stale.
func (s *ShardedManager) migrationsQuiescedAt(before uint64) bool {
	return before%2 == 0 && s.migSeq.Load() == before
}

// checkComposite checks every part of one composite, retrying when a
// migration replaced the directory entry mid-walk (the stale entry routes
// a part to its vacated shard, which answers promise-not-found).
func (s *ShardedManager) checkComposite(client, id string) error {
	for attempt := 0; ; attempt++ {
		if attempt > migrationRetryLimit {
			unlock := s.lockShards(s.allShards())
			defer unlock()
		}
		c := s.lookupComposite(client, id)
		if c == nil {
			return fmt.Errorf("%w: %s", ErrPromiseNotFound, id)
		}
		frozen := attempt > migrationRetryLimit
		err, stale := s.checkParts(client, c, frozen)
		if frozen || !stale {
			return err
		}
	}
}

// checkParts checks each part on its shard's snapshot, lock-free; locked
// means the caller holds every shard lock (the freeze pass), making the
// answer definitive. stale reports a part vanished from its recorded
// shard — the signature of racing a migration.
func (s *ShardedManager) checkParts(client string, c *composite, locked bool) (error, bool) {
	for _, part := range c.parts {
		if err := s.shards[part.shard].m.usable(client, part.id); err != nil {
			if errors.Is(err, ErrPromiseNotFound) && !locked {
				return nil, true
			}
			return err, false
		}
	}
	return nil, false
}

// Sweep expires lapsed promises on every shard — a compatibility shim now
// that each shard's expiry heap lapses promises at their deadlines (each
// shard's sweep takes its own lock through the expiry gate). Directory
// entries for expired composites stay behind, like rows in the done tables,
// so clients reusing the id still get the precise promise-expired error.
func (s *ShardedManager) Sweep() error {
	for _, sh := range s.shards {
		if err := sh.m.Sweep(); err != nil {
			return err
		}
	}
	return nil
}

// snapshotDir copies the composite directory for a stable walk (entries
// themselves are immutable).
func (s *ShardedManager) snapshotDir() map[string]*composite {
	snapshot := make(map[string]*composite)
	s.dir.Range(func(k, v any) bool {
		snapshot[k.(string)] = v.(*composite)
		return true
	})
	return snapshot
}

// PromiseInfo returns a copy of the promise with the given id, read from
// the owning shard's immutable store snapshot with no lock acquisition.
// Composite promises are reconstructed from their parts in original
// predicate order; a composite reports the worst lifecycle state among its
// parts. Both paths re-verify routing against racing slot migrations,
// exactly like CheckBatch, falling back to the full lock set only when a
// migration keeps outrunning the directory.
func (s *ShardedManager) PromiseInfo(id string) (Promise, error) {
	if !isCompositeID(id) {
		for attempt := 0; ; attempt++ {
			mseq := s.migSeq.Load()
			sh, ok := s.ownerShard(id)
			if !ok {
				return Promise{}, fmt.Errorf("%w: %s", ErrPromiseNotFound, id)
			}
			if attempt > migrationRetryLimit {
				// Freeze migrations and resolve definitively.
				unlock := s.lockShards(s.allShards())
				if o, ok := s.ownerShard(id); ok {
					sh = o
				}
				p, err := s.shards[sh].m.PromiseInfo(id)
				unlock()
				return p, err
			}
			p, err := s.shards[sh].m.PromiseInfo(id)
			if errors.Is(err, ErrPromiseNotFound) && !s.migrationsQuiescedAt(mseq) {
				continue // possibly racing a migration; re-route and retry
			}
			return p, err
		}
	}
	for attempt := 0; ; attempt++ {
		p, stale, err := s.compositeInfo(id, attempt > migrationRetryLimit)
		if !stale {
			return p, err
		}
	}
}

// compositeInfo reconstructs one composite from its parts. stale reports
// the walk raced a migration (a part vanished from its recorded shard) and
// must retry against the fresh directory entry; freeze resolves a
// persistent race by holding every shard lock for the walk.
func (s *ShardedManager) compositeInfo(id string, freeze bool) (_ Promise, stale bool, _ error) {
	if freeze {
		unlock := s.lockShards(s.allShards())
		defer unlock()
	}
	c := s.lookupComposite("", id)
	if c == nil {
		return Promise{}, false, fmt.Errorf("%w: %s", ErrPromiseNotFound, id)
	}
	n := 0
	for _, part := range c.parts {
		for _, idx := range part.predIdx {
			if idx+1 > n {
				n = idx + 1
			}
		}
	}
	out := Promise{
		ID:           id,
		Client:       c.client,
		Predicates:   make([]Predicate, n),
		Assigned:     make([]string, n),
		DelegatedQty: make([]int64, n),
		DelegatedID:  make([]string, n),
		Expires:      c.expires,
		State:        Active,
	}
	for _, part := range c.parts {
		p, err := s.shards[part.shard].m.PromiseInfo(part.id)
		if err != nil {
			if errors.Is(err, ErrPromiseNotFound) && !freeze {
				return Promise{}, true, nil
			}
			return Promise{}, false, err
		}
		for j, idx := range part.predIdx {
			out.Predicates[idx] = p.Predicates[j]
			if j < len(p.Assigned) {
				out.Assigned[idx] = p.Assigned[j]
			}
			if j < len(p.DelegatedQty) {
				out.DelegatedQty[idx] = p.DelegatedQty[j]
			}
			if j < len(p.DelegatedID) {
				out.DelegatedID[idx] = p.DelegatedID[j]
			}
		}
		if p.State != Active {
			out.State = p.State
		}
	}
	return out, false, nil
}

// ActivePromises returns copies of all active, unexpired promises across
// every shard, each shard read from its immutable store snapshot with no
// lock acquisition. Parts of composite promises appear individually, under
// their per-shard ids.
func (s *ShardedManager) ActivePromises() ([]Promise, error) {
	var out []Promise
	for _, sh := range s.shards {
		ps, err := sh.m.ActivePromises()
		if err != nil {
			return nil, err
		}
		out = append(out, ps...)
	}
	return out, nil
}

// Stats aggregates every shard's counters and merges their latency
// histograms over the union of every shard's retained reservoir samples.
// The merge is exact while no reservoir has overflowed; past that, each
// shard contributes at most its reservoir capacity, so a very hot shard is
// represented by the same sample budget as a cold one and merged
// percentiles lean toward the quieter shards (per-shard summaries stay
// individually representative — read PerShard when shards are skewed, which
// Imbalance flags). Summary counts always report true observation totals.
// Counters track per-shard work, not client-visible outcomes: a composite
// grant over N shards counts N requests and N grants, and the cross-shard
// pipeline's reserve/abort cycles add matching rejection and release
// counts.
//
// Consistency model: the scrape acquires no shard lock — it never slows a
// grant. It runs in two phases: a tight capture pass that copies every
// shard's counter values, reservoir samples and store-snapshot epoch
// back-to-back, then a merge/summarize pass over the captured copies.
// Each shard's captured values are individually coherent atomic reads;
// across shards the view can skew only by the work that committed during
// the capture pass itself (microseconds, with no sorting or summarizing
// in between), and each ShardStat.Epoch records exactly which committed
// state its shard had reached, making any residual skew observable
// instead of silent.
func (s *ShardedManager) Stats() Stats {
	type capture struct {
		epoch     uint64
		samples   []time.Duration
		count     int
		requests  int64
		grants    int64
		reject    int64
		releases  int64
		expire    int64
		preempt   int64
		violate   int64
		actErrs   int64
		deadlocks int64
		expErrs   int64
	}
	caps := make([]capture, len(s.shards))
	// Phase 1 — capture: nothing but copies, so the cross-shard skew
	// window is as small as the loop itself.
	for i, sh := range s.shards {
		mm := &sh.m.metrics
		caps[i] = capture{
			epoch:     sh.m.store.Snapshot().Epoch(),
			samples:   mm.latency.Samples(),
			count:     mm.latency.Count(),
			requests:  mm.requests.Value(),
			grants:    mm.grants.Value(),
			reject:    mm.rejections.Value(),
			releases:  mm.releases.Value(),
			expire:    mm.expirations.Value(),
			preempt:   mm.preemptions.Value(),
			violate:   mm.violations.Value(),
			actErrs:   mm.actionErrors.Value(),
			deadlocks: mm.deadlocks.Value(),
			expErrs:   mm.expiryErrors.Value(),
		}
	}
	// Phase 2 — merge and summarize from the captured copies.
	out := Stats{PerShard: make([]ShardStat, 0, len(s.shards))}
	var all []time.Duration
	var observed int
	var maxRequests int64
	for i := range caps {
		c := &caps[i]
		perShard := metrics.SummarizeDurations(c.samples)
		perShard.Count = c.count
		observed += c.count
		all = append(all, c.samples...)
		st := ShardStat{
			Shard:      i,
			Requests:   c.requests,
			Grants:     c.grants,
			Rejections: c.reject,
			Latency:    perShard,
			Epoch:      c.epoch,
		}
		out.Requests += st.Requests
		out.Grants += st.Grants
		out.Rejections += st.Rejections
		out.Releases += c.releases
		out.Expirations += c.expire
		out.Preemptions += c.preempt
		out.Violations += c.violate
		out.ActionErrors += c.actErrs
		out.DeadlockRetries += c.deadlocks
		out.ExpiryErrors += c.expErrs
		out.PerShard = append(out.PerShard, st)
		if st.Requests > maxRequests {
			maxRequests = st.Requests
		}
	}
	out.Latency = metrics.SummarizeDurations(all)
	out.Latency.Count = observed
	if out.Requests > 0 {
		out.Imbalance = float64(maxRequests) * float64(len(s.shards)) / float64(out.Requests)
	}
	out.PrefilterSkipped = s.prefilterSkipped.Value()
	s.imbalance.Set(out.Imbalance)
	return out
}

// Imbalance returns the shard-imbalance gauge as of the last Stats call
// (see Stats.Imbalance), without re-walking the shards.
func (s *ShardedManager) Imbalance() float64 { return s.imbalance.Value() }

// Audit runs every shard's consistency audit and checks the composite
// directory: each part of each live composite must resolve to a promise
// owned by the composite's client. Problems are prefixed with their shard.
// Like every other read path it works from the shards' immutable store
// snapshots and acquires no lock, so a continuous background audit costs
// the grant path nothing; each per-shard report is judged against one
// transactionally consistent state (see Manager.Audit for the model).
func (s *ShardedManager) Audit() (*AuditReport, error) {
	report := &AuditReport{}
	for i, sh := range s.shards {
		rep, err := sh.m.Audit()
		if err != nil {
			return nil, err
		}
		report.ActivePromises += rep.ActivePromises
		report.Slots += rep.Slots
		for _, p := range rep.Problems {
			report.Problems = append(report.Problems, fmt.Sprintf("shard %d: %s", i, p))
		}
	}
	for id, c := range s.snapshotDir() {
		problems := s.auditComposite(id, c)
		if len(problems) > 0 {
			// The snapshot entry may have raced a migration; judge the
			// fresh entry before reporting.
			if fresh := s.lookupComposite("", id); fresh != nil && fresh != c {
				problems = s.auditComposite(id, fresh)
			}
		}
		report.Problems = append(report.Problems, problems...)
	}
	moved := make(map[string]int)
	s.moved.Range(func(k, v any) bool {
		moved[k.(string)] = v.(int)
		return true
	})
	for _, id := range sortedStringKeys(moved) {
		shIdx := moved[id]
		mseq := s.migSeq.Load()
		if _, err := s.shards[shIdx].m.PromiseInfo(id); err != nil {
			if cur, ok := s.moved.Load(id); ok && cur.(int) != shIdx {
				continue // moved again mid-audit; the fresh entry is checked next run
			}
			if !s.migrationsQuiescedAt(mseq) {
				continue // racing a migration's confirm→directory window; next run settles it
			}
			report.Problems = append(report.Problems,
				fmt.Sprintf("moved: promise %s not found on shard %d: %v", id, shIdx, err))
		}
	}
	return report, nil
}

// auditComposite verifies one composite directory entry: every part must
// resolve on its recorded shard to a promise owned by the composite's
// client. A part that vanishes while a migration's confirm→directory
// window is open is skipped, not reported — the next audit sees the
// settled state.
func (s *ShardedManager) auditComposite(id string, c *composite) []string {
	var problems []string
	for _, part := range c.parts {
		mseq := s.migSeq.Load()
		p, err := s.shards[part.shard].m.PromiseInfo(part.id)
		if err != nil {
			if errors.Is(err, ErrPromiseNotFound) && !s.migrationsQuiescedAt(mseq) {
				continue
			}
			problems = append(problems,
				fmt.Sprintf("directory: composite %s part %s: %v", id, part.id, err))
			continue
		}
		if p.Client != c.client {
			problems = append(problems,
				fmt.Sprintf("directory: composite %s part %s owned by %q, want %q", id, part.id, p.Client, c.client))
		}
	}
	return problems
}

// sortedStringKeys returns m's keys in ascending order.
func sortedStringKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CreatePool registers a pool on its owning shard, in a transaction of its
// own.
func (s *ShardedManager) CreatePool(id string, onHand int64, props map[string]predicate.Value) error {
	sh := s.shards[s.ShardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tx := sh.m.Store().Begin(txn.Block)
	if err := sh.m.Resources().CreatePool(tx, id, onHand, props); err != nil {
		_ = tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	return sh.m.durSync()
}

// CreateInstance registers a named instance on its owning shard, in a
// transaction of its own.
func (s *ShardedManager) CreateInstance(id string, props map[string]predicate.Value) error {
	sh := s.shards[s.ShardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tx := sh.m.Store().Begin(txn.Block)
	if err := sh.m.Resources().CreateInstance(tx, id, props); err != nil {
		_ = tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	return sh.m.durSync()
}

// LoadSeed reads a resource seed file and creates its pools and instances
// on their owning shards. Unlike the single-store loader this is not
// atomic: a malformed entry leaves earlier entries created.
func (s *ShardedManager) LoadSeed(r io.Reader) (pools, instances int, err error) {
	ps, ins, err := resource.ParseSeed(r)
	if err != nil {
		return 0, 0, err
	}
	for _, p := range ps {
		if err := s.CreatePool(p.ID, p.OnHand, p.Props); err != nil {
			return pools, instances, err
		}
		pools++
	}
	for _, in := range ins {
		if err := s.CreateInstance(in.ID, in.Props); err != nil {
			return pools, instances, err
		}
		instances++
	}
	return pools, instances, nil
}

// Pools lists every pool across all shards, in id order, read from the
// shards' immutable store snapshots with no lock acquisition.
func (s *ShardedManager) Pools() ([]*resource.Pool, error) {
	var out []*resource.Pool
	for _, sh := range s.shards {
		ps, err := sh.m.Resources().Pools(sh.m.Store().Snapshot())
		if err != nil {
			return nil, err
		}
		out = append(out, ps...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Instances lists every named instance across all shards, in id order,
// read from the shards' immutable store snapshots with no lock
// acquisition.
func (s *ShardedManager) Instances() ([]*resource.Instance, error) {
	var out []*resource.Instance
	for _, sh := range s.shards {
		ins, err := sh.m.Resources().Instances(sh.m.Store().Snapshot())
		if err != nil {
			return nil, err
		}
		out = append(out, ins...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// PoolLevel returns the quantity on hand of one pool, for tools and tests,
// read lock-free from the owning shard's snapshot.
func (s *ShardedManager) PoolLevel(pool string) (int64, error) {
	return s.shards[s.ShardOf(pool)].m.PoolLevel(pool)
}

// sortedKeys returns the keys of m in ascending order — every multi-shard
// iteration uses it so shards are always visited in lock order.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
