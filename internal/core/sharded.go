package core

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/ids"
	"repro/internal/predicate"
	"repro/internal/resource"
	"repro/internal/txn"
)

// ShardedManager is a promise manager whose state is striped across N
// independent shards so that throughput grows with cores: each shard owns a
// private transactional store holding its slice of the promise table, the
// escrow ledger and the soft-lock tags, plus the resource pools and
// instances that hash to it (FNV-1a of the pool/instance id).
//
// Concurrency protocol. Every operation computes the set of shards it can
// touch and acquires those shards' mutexes in ascending index order — the
// lock-ordering protocol that makes cross-shard work deadlock-free.
// Requests confined to one shard (the common case) take one lock and run
// the full single-store §8 semantics on that shard. Requests spanning
// shards hold the whole ordered lock set for their duration, so concurrent
// clients can never observe a cross-shard grant or release half-applied.
//
// Cross-shard promise requests are decomposed into one sub-promise per
// shard, granted in ascending shard order; if any shard rejects, the
// already-granted sub-promises are released before the locks drop and the
// client sees one atomic rejection. The granted whole is a composite
// promise ("shp-<n>") tracked in a directory mapping it to its per-shard
// parts; clients use composite ids exactly like ordinary ones.
//
// Two deliberate semantic narrowings versus the single-store Manager, both
// conservative (they can reject requests a global manager could accept, but
// never over-promise):
//
//   - Releases attached to a cross-shard promise request are applied after
//     the new grant succeeds, so the grant cannot count the released
//     resources as available. Same-shard upgrades keep the full §4
//     release-with-grant semantics via the single-shard path.
//   - Property-view predicates match within one shard at a time: the
//     request is admitted if some shard can satisfy all its property
//     predicates jointly (every shard is tried, under the full lock set).
//     Tentative-allocation rearrangement never crosses shards.
//
// Actions run on a single shard and see only that shard's resources.
// Requests whose action touches resources should set Request.Resources so
// the action is routed to the owning shard; otherwise it runs on the
// lowest-indexed involved shard.
//
// Suppliers are passed through to every shard for delegation (§5). A
// supplier must not route back into the same ShardedManager, or it will
// deadlock on the shard locks it already holds.
type ShardedManager struct {
	shards []*managerShard
	clk    clock.Clock

	// compIDs names composite promises; their parts live in directory.
	compIDs *ids.Generator
	dirMu   sync.Mutex
	dir     map[string]*composite
}

// managerShard pairs one single-store Manager with the mutex that the
// lock-ordering protocol acquires on its behalf.
type managerShard struct {
	mu sync.Mutex
	m  *Manager
}

// composite records how a cross-shard promise decomposes into per-shard
// sub-promises. Entries are never removed once the id has been handed to a
// client — like the single-store done tables, they are what keeps a
// released or expired composite answering with the precise
// promise-released / promise-expired sentinels instead of not-found.
type composite struct {
	client  string
	expires time.Time
	parts   []compositePart
}

// compositePart is one shard's slice of a composite promise. predIdx maps
// the sub-promise's predicates back to their positions in the original
// request, so PromiseInfo can reconstruct the promise in client order.
type compositePart struct {
	shard   int
	id      string
	predIdx []int
	expires time.Time
}

// shardIDPrefix prefixes per-shard promise ids: shard i issues "prm<i>-<n>",
// which is how promise ids route back to their owning shard.
const shardIDPrefix = "prm"

// compositeIDPrefix prefixes directory-tracked composite promise ids.
const compositeIDPrefix = "shp-"

// ShardedConfig configures a ShardedManager. The per-shard fields mirror
// Config; every shard shares the same clock and supplier map.
type ShardedConfig struct {
	// Shards is the number of state stripes. Zero means 8.
	Shards int
	// Clock drives promise expiry on every shard. Nil uses the system clock.
	Clock clock.Clock
	// DefaultDuration, MaxDuration, PropertyMode, DisablePostCheck,
	// Suppliers and MaxRetries apply to each shard as in Config.
	DefaultDuration  time.Duration
	MaxDuration      time.Duration
	PropertyMode     PropertyMode
	DisablePostCheck bool
	Suppliers        map[string]Supplier
	MaxRetries       int
}

// NewSharded creates a ShardedManager with cfg.Shards independent shards.
func NewSharded(cfg ShardedConfig) (*ShardedManager, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 8
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System{}
	}
	s := &ShardedManager{
		clk:     cfg.Clock,
		compIDs: ids.New("shp"),
		dir:     make(map[string]*composite),
	}
	for i := 0; i < n; i++ {
		m, err := New(Config{
			Clock:            cfg.Clock,
			DefaultDuration:  cfg.DefaultDuration,
			MaxDuration:      cfg.MaxDuration,
			PropertyMode:     cfg.PropertyMode,
			DisablePostCheck: cfg.DisablePostCheck,
			Suppliers:        cfg.Suppliers,
			MaxRetries:       cfg.MaxRetries,
			IDPrefix:         fmt.Sprintf("%s%d", shardIDPrefix, i),
		})
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, &managerShard{m: m})
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *ShardedManager) NumShards() int { return len(s.shards) }

// ShardOf returns the shard index owning the pool or instance with the
// given id — exposed so tools and tests can place resources deliberately.
func (s *ShardedManager) ShardOf(resourceID string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(resourceID))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// ownerShard maps a promise id back to its shard via the "prm<i>-" prefix.
// ok is false for composite ids and ids this manager never issued.
func (s *ShardedManager) ownerShard(id string) (int, bool) {
	if !strings.HasPrefix(id, shardIDPrefix) {
		return 0, false
	}
	rest := id[len(shardIDPrefix):]
	dash := strings.IndexByte(rest, '-')
	if dash <= 0 {
		return 0, false
	}
	n, err := strconv.Atoi(rest[:dash])
	if err != nil || n < 0 || n >= len(s.shards) {
		return 0, false
	}
	return n, true
}

func isCompositeID(id string) bool { return strings.HasPrefix(id, compositeIDPrefix) }

// lookupComposite returns the directory entry for id, or nil when missing
// or owned by a different client (pass client "" to skip the owner check).
func (s *ShardedManager) lookupComposite(client, id string) *composite {
	s.dirMu.Lock()
	defer s.dirMu.Unlock()
	c := s.dir[id]
	if c == nil || (client != "" && c.client != client) {
		return nil
	}
	return c
}

func (s *ShardedManager) dropComposite(id string) {
	s.dirMu.Lock()
	delete(s.dir, id)
	s.dirMu.Unlock()
}

// lockShards acquires the mutexes of the given shard set in ascending index
// order and returns the matching unlock. Ascending acquisition is the whole
// deadlock-avoidance story: two cross-shard requests can never hold locks
// in an order that closes a cycle.
func (s *ShardedManager) lockShards(set map[int]bool) (unlock func()) {
	idxs := make([]int, 0, len(set))
	for i := range set {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		s.shards[i].mu.Lock()
	}
	return func() {
		for j := len(idxs) - 1; j >= 0; j-- {
			s.shards[idxs[j]].mu.Unlock()
		}
	}
}

// addPromiseID adds the shards backing a referenced promise id to set.
// Composite ids mark the route non-simple; unknown ids land on shard 0,
// where lookup produces the correct not-found error.
func (s *ShardedManager) addPromiseID(set map[int]bool, id string, simple *bool) {
	if isCompositeID(id) {
		*simple = false
		if c := s.lookupComposite("", id); c != nil {
			for _, part := range c.parts {
				set[part.shard] = true
			}
			return
		}
		set[0] = true
		return
	}
	if sh, ok := s.ownerShard(id); ok {
		set[sh] = true
		return
	}
	set[0] = true
}

// routeRequest computes the shard set one promise request can touch.
// simple means the whole request (predicates and releases) lives on one
// shard with no composite references, so the single-store path can run it
// with full §4/§8 semantics.
func (s *ShardedManager) routeRequest(pr PromiseRequest) (set map[int]bool, simple bool) {
	set = make(map[int]bool)
	simple = true
	for _, p := range pr.Predicates {
		switch p.View {
		case AnonymousView:
			set[s.ShardOf(p.Pool)] = true
		case NamedView:
			set[s.ShardOf(p.Instance)] = true
		case PropertyView:
			// The satisfying instance may live anywhere.
			for i := range s.shards {
				set[i] = true
			}
		}
	}
	for _, rid := range pr.Releases {
		s.addPromiseID(set, rid, &simple)
	}
	if len(set) == 0 {
		set[0] = true
	}
	if len(set) > 1 {
		simple = false
	}
	return set, simple
}

// route computes the shard set for a whole request, whether the
// single-shard fast path applies, and the primary shard an action should
// run on.
func (s *ShardedManager) route(req Request) (involved map[int]bool, simple bool, primary int) {
	involved = make(map[int]bool)
	simple = true
	for _, pr := range req.PromiseRequests {
		set, sub := s.routeRequest(pr)
		if !sub {
			simple = false
		}
		for i := range set {
			involved[i] = true
		}
	}
	for _, e := range req.Env {
		s.addPromiseID(involved, e.PromiseID, &simple)
	}
	for _, r := range req.Resources {
		involved[s.ShardOf(r)] = true
	}
	if len(involved) == 0 {
		involved[0] = true
	}
	if len(involved) > 1 {
		simple = false
	}
	if len(req.Resources) > 0 {
		primary = s.ShardOf(req.Resources[0])
	} else {
		primary = len(s.shards)
		for i := range involved {
			if i < primary {
				primary = i
			}
		}
	}
	return involved, simple, primary
}

// subsetOf reports whether every shard in a is also in b.
func subsetOf(a, b map[int]bool) bool {
	for i := range a {
		if !b[i] {
			return false
		}
	}
	return true
}

// Execute processes one client message, exactly like Manager.Execute but
// with state striped across shards. Single-shard requests delegate to the
// owning shard's manager; cross-shard requests run the composite protocol
// under the ordered lock set.
//
// Routing resolves composite ids against the directory lock-free, so the
// request is re-routed after the locks are held: a composite registered in
// between could otherwise send execution to shards whose mutexes were
// never acquired. The loop converges because directory entries for
// client-visible ids are never removed — a re-route can only grow the set.
func (s *ShardedManager) Execute(req Request) (*Response, error) {
	if req.Client == "" {
		return nil, fmt.Errorf("%w: missing client", ErrBadRequest)
	}
	for {
		involved, _, _ := s.route(req)
		unlock := s.lockShards(involved)
		again, simple, primary := s.route(req)
		if !subsetOf(again, involved) {
			unlock()
			continue
		}
		defer unlock()
		if simple {
			return s.shards[primary].m.Execute(req)
		}
		return s.executeCross(req, primary)
	}
}

// executeCross runs a cross-shard request. Caller holds the locks of every
// shard the request can touch.
func (s *ShardedManager) executeCross(req Request, primary int) (*Response, error) {
	resp := &Response{}
	for _, pr := range req.PromiseRequests {
		presp, err := s.grantCross(req.Client, pr)
		if err != nil {
			// Restore the single-store all-or-nothing contract for the
			// message: grants already committed for earlier promise
			// requests are handed back before the error surfaces.
			for _, prev := range resp.Promises {
				s.releaseGrant(req.Client, prev)
			}
			return nil, err
		}
		resp.Promises = append(resp.Promises, presp)
	}

	groups, envErr := s.splitEnv(req.Client, req.Env)
	if envErr == nil {
		envErr = s.validateEnvGroups(req.Client, groups)
	}
	switch {
	case req.Action != nil:
		if envErr != nil {
			resp.ActionErr = envErr
			break
		}
		// The action and the primary shard's releases run as one §8
		// transaction on the primary; the other shards' releases apply
		// afterwards, invisible to concurrent clients because the full
		// lock set is held throughout.
		sub, err := s.shards[primary].m.Execute(Request{
			Client: req.Client,
			Env:    groups[primary],
			Action: req.Action,
		})
		if err != nil {
			for _, prev := range resp.Promises {
				s.releaseGrant(req.Client, prev)
			}
			return nil, err
		}
		resp.ActionResult, resp.ActionErr = sub.ActionResult, sub.ActionErr
		if resp.ActionErr == nil {
			s.applyReleaseGroups(req.Client, groups, primary)
		}
	case len(req.Env) > 0:
		if envErr != nil {
			resp.ActionErr = envErr
			break
		}
		s.applyReleaseGroups(req.Client, groups, -1)
	}
	return resp, nil
}

// releaseGrant hands back a just-granted promise (single-shard or
// composite) when a later internal failure in the same message forces the
// whole message to fail: the client never learns the promise id, so the
// grant must not outlive the call.
func (s *ShardedManager) releaseGrant(client string, pr PromiseResponse) {
	if !pr.Accepted {
		return
	}
	if isCompositeID(pr.PromiseID) {
		if c := s.lookupComposite(client, pr.PromiseID); c != nil {
			for _, part := range c.parts {
				_, _ = s.shards[part.shard].m.Execute(Request{
					Client: client,
					Env:    []EnvEntry{{PromiseID: part.id, Release: true}},
				})
			}
			s.dropComposite(pr.PromiseID)
		}
		return
	}
	if sh, ok := s.ownerShard(pr.PromiseID); ok {
		_, _ = s.shards[sh].m.Execute(Request{
			Client: client,
			Env:    []EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		})
	}
}

// splitEnv decomposes an environment into per-shard environments, expanding
// composite promises into their parts. The error mirrors validateEnv's
// client-visible sentinels.
func (s *ShardedManager) splitEnv(client string, env []EnvEntry) (map[int][]EnvEntry, error) {
	groups := make(map[int][]EnvEntry)
	for _, e := range env {
		if isCompositeID(e.PromiseID) {
			c := s.lookupComposite(client, e.PromiseID)
			if c == nil {
				return nil, fmt.Errorf("%w: %s", ErrPromiseNotFound, e.PromiseID)
			}
			for _, part := range c.parts {
				groups[part.shard] = append(groups[part.shard], EnvEntry{PromiseID: part.id, Release: e.Release})
			}
			continue
		}
		sh, ok := s.ownerShard(e.PromiseID)
		if !ok {
			sh = 0
		}
		groups[sh] = append(groups[sh], e)
	}
	return groups, nil
}

// validateEnvGroups checks every per-shard environment, in shard order.
func (s *ShardedManager) validateEnvGroups(client string, groups map[int][]EnvEntry) error {
	for _, sh := range sortedKeys(groups) {
		if err := s.shards[sh].m.envOK(client, groups[sh]); err != nil {
			return err
		}
	}
	return nil
}

// applyReleaseGroups hands back every release-flagged environment entry,
// shard by shard, skipping skipShard (whose releases already ran inside the
// action transaction). It is best-effort: validation already passed under
// the held locks, so the only failures left are clock expiry (the sweep
// frees those holds anyway) and internal store errors, and neither may
// turn a committed action into a client-visible failure.
func (s *ShardedManager) applyReleaseGroups(client string, groups map[int][]EnvEntry, skipShard int) {
	for _, sh := range sortedKeys(groups) {
		if sh == skipShard {
			continue
		}
		var rel []EnvEntry
		for _, e := range groups[sh] {
			if e.Release {
				rel = append(rel, e)
			}
		}
		if len(rel) == 0 {
			continue
		}
		_, _ = s.shards[sh].m.Execute(Request{Client: client, Env: rel})
	}
}

// grantCross evaluates one promise request that may span shards. Caller
// holds the locks of every shard the request can touch.
func (s *ShardedManager) grantCross(client string, pr PromiseRequest) (PromiseResponse, error) {
	reject := func(format string, args ...any) PromiseResponse {
		return PromiseResponse{Correlation: pr.RequestID, Reason: fmt.Sprintf(format, args...)}
	}
	if len(pr.Predicates) == 0 {
		return reject("no predicates in promise request"), nil
	}
	for _, p := range pr.Predicates {
		if err := p.Validate(); err != nil {
			return reject("invalid predicate %s: %v", p, err), nil
		}
	}

	// Resolve release targets to their per-shard parts up front; they are
	// applied only after the whole grant succeeds, and stay in force on
	// rejection.
	var rels []relTarget
	for _, rid := range pr.Releases {
		rt := relTarget{id: rid}
		if isCompositeID(rid) {
			c := s.lookupComposite(client, rid)
			if c == nil {
				return reject("release target %s: %v", rid, fmt.Errorf("%w: %s", ErrPromiseNotFound, rid)), nil
			}
			rt.parts = c.parts
		} else {
			sh, ok := s.ownerShard(rid)
			if !ok {
				return reject("release target %s: %v", rid, fmt.Errorf("%w: %s", ErrPromiseNotFound, rid)), nil
			}
			rt.parts = []compositePart{{shard: sh, id: rid}}
		}
		for _, part := range rt.parts {
			if err := s.shards[part.shard].m.usable(client, part.id); err != nil {
				return reject("release target %s: %v", rid, err), nil
			}
		}
		rels = append(rels, rt)
	}

	// Partition predicates: anonymous and named bind to their resource's
	// shard; property predicates float and are hosted by whichever shard
	// can satisfy them all.
	fixed := make(map[int][]int)
	var floating []int
	for i, p := range pr.Predicates {
		switch p.View {
		case AnonymousView:
			fixed[s.ShardOf(p.Pool)] = append(fixed[s.ShardOf(p.Pool)], i)
		case NamedView:
			fixed[s.ShardOf(p.Instance)] = append(fixed[s.ShardOf(p.Instance)], i)
		case PropertyView:
			floating = append(floating, i)
		}
	}

	// Same-shard request: when every predicate and every release target
	// lives on one shard (and no release is composite, which the inner
	// manager cannot resolve), delegate wholesale so the full §4
	// release-with-grant upgrade semantics apply even when the request
	// rides in a cross-shard message.
	if len(floating) == 0 && len(fixed) == 1 {
		for sh := range fixed {
			sameShard := true
			for _, rt := range rels {
				if isCompositeID(rt.id) {
					sameShard = false
					break
				}
				for _, part := range rt.parts {
					if part.shard != sh {
						sameShard = false
						break
					}
				}
			}
			if !sameShard {
				break
			}
			resp, err := s.shards[sh].m.Execute(Request{Client: client, PromiseRequests: []PromiseRequest{pr}})
			if err != nil {
				return PromiseResponse{}, err
			}
			return resp.Promises[0], nil
		}
	}

	// Grant the fixed sub-promises once — their outcome does not depend on
	// where the property predicates land.
	parts, rejection, err := s.grantParts(client, pr, fixed)
	if err != nil {
		return PromiseResponse{}, err
	}
	if rejection == nil && len(floating) > 0 {
		// Probe each shard as host for the whole floating set; the first
		// shard that can satisfy them all jointly wins.
		for host := 0; host < len(s.shards); host++ {
			var floatPart []compositePart
			floatPart, rejection, err = s.grantParts(client, pr, map[int][]int{host: floating})
			if err != nil {
				s.releaseParts(client, parts)
				return PromiseResponse{}, err
			}
			if rejection == nil {
				parts = append(parts, floatPart...)
				break
			}
		}
	}
	if rejection != nil {
		s.releaseParts(client, parts)
		out := *rejection
		out.Correlation = pr.RequestID
		return out, nil
	}
	id, expires := s.registerComposite(client, parts)
	s.applyReleaseTargets(client, rels)
	return PromiseResponse{
		Correlation: pr.RequestID,
		Accepted:    true,
		PromiseID:   id,
		Expires:     expires,
	}, nil
}

// grantParts grants one sub-promise per shard for the predicate indices in
// byShard. On any rejection the sub-promises granted so far by this call
// are released again and the rejecting shard's response is returned.
func (s *ShardedManager) grantParts(client string, pr PromiseRequest, byShard map[int][]int) (_ []compositePart, rejection *PromiseResponse, _ error) {
	var granted []compositePart
	for _, sh := range sortedKeys(byShard) {
		idxs := byShard[sh]
		preds := make([]Predicate, len(idxs))
		for j, idx := range idxs {
			preds[j] = pr.Predicates[idx]
		}
		resp, err := s.shards[sh].m.Execute(Request{Client: client, PromiseRequests: []PromiseRequest{{
			Predicates: preds,
			Duration:   pr.Duration,
		}}})
		if err != nil {
			s.releaseParts(client, granted)
			return nil, nil, err
		}
		sub := resp.Promises[0]
		if !sub.Accepted {
			s.releaseParts(client, granted)
			rr := sub
			return nil, &rr, nil
		}
		granted = append(granted, compositePart{shard: sh, id: sub.PromiseID, predIdx: idxs, expires: sub.Expires})
	}
	return granted, nil, nil
}

// releaseParts hands back sub-promises granted earlier in an operation
// that is now failing, in reverse grant order.
func (s *ShardedManager) releaseParts(client string, parts []compositePart) {
	for i := len(parts) - 1; i >= 0; i-- {
		_, _ = s.shards[parts[i].shard].m.Execute(Request{
			Client: client,
			Env:    []EnvEntry{{PromiseID: parts[i].id, Release: true}},
		})
	}
}

// registerComposite records a granted composite promise and returns its id
// and expiry (the earliest part expiry: the whole is only guaranteed while
// every part holds).
func (s *ShardedManager) registerComposite(client string, parts []compositePart) (string, time.Time) {
	expires := parts[0].expires
	for _, part := range parts[1:] {
		if part.expires.Before(expires) {
			expires = part.expires
		}
	}
	id := s.compIDs.Next()
	s.dirMu.Lock()
	s.dir[id] = &composite{client: client, expires: expires, parts: parts}
	s.dirMu.Unlock()
	return id, expires
}

// relTarget is one resolved release target of a cross-shard grant: the
// client-visible id plus the per-shard sub-promises backing it.
type relTarget struct {
	id    string
	parts []compositePart
}

// applyReleaseTargets hands back the release targets of a successful
// cross-shard grant. Validation already passed under the held locks, so
// only clock expiry can intervene; those promises free their holds via the
// sweep instead, and the error is deliberately ignored.
func (s *ShardedManager) applyReleaseTargets(client string, rels []relTarget) {
	for _, rt := range rels {
		for _, part := range rt.parts {
			_, _ = s.shards[part.shard].m.Execute(Request{
				Client: client,
				Env:    []EnvEntry{{PromiseID: part.id, Release: true}},
			})
		}
	}
}

// GrantBatch grants many independent promise requests for one client under
// a single acquisition of the ordered shard lock set, batching the
// single-shard requests into one transaction per shard. Responses line up
// with reqs by index; each request is still individually atomic.
func (s *ShardedManager) GrantBatch(client string, reqs []PromiseRequest) ([]PromiseResponse, error) {
	if client == "" {
		return nil, fmt.Errorf("%w: missing client", ErrBadRequest)
	}
	routeAll := func() (involved map[int]bool, perShard map[int][]int, cross []int) {
		involved = make(map[int]bool)
		perShard = make(map[int][]int)
		for i, pr := range reqs {
			set, simple := s.routeRequest(pr)
			for sh := range set {
				involved[sh] = true
			}
			if simple {
				for sh := range set {
					perShard[sh] = append(perShard[sh], i)
				}
			} else {
				cross = append(cross, i)
			}
		}
		return involved, perShard, cross
	}
	involved, perShard, cross := routeAll()
	if len(involved) == 0 {
		return []PromiseResponse{}, nil
	}
	// Re-route under the locks, exactly as Execute does, so a composite
	// release target resolved mid-flight cannot reach unlocked shards.
	unlock := s.lockShards(involved)
	for {
		again, perShard2, cross2 := routeAll()
		if subsetOf(again, involved) {
			perShard, cross = perShard2, cross2
			break
		}
		unlock()
		involved = again
		unlock = s.lockShards(involved)
	}
	defer unlock()

	out := make([]PromiseResponse, len(reqs))
	// On an internal error, grants already committed would be lost to the
	// caller (it never sees their ids), so they are handed back first.
	undo := func() {
		for _, pr := range out {
			s.releaseGrant(client, pr)
		}
	}
	for _, sh := range sortedKeys(perShard) {
		idxs := perShard[sh]
		batch := make([]PromiseRequest, len(idxs))
		for j, idx := range idxs {
			batch[j] = reqs[idx]
		}
		resps, err := s.shards[sh].m.GrantBatch(client, batch)
		if err != nil {
			undo()
			return nil, err
		}
		for j, idx := range idxs {
			out[idx] = resps[j]
		}
	}
	for _, idx := range cross {
		presp, err := s.grantCross(client, reqs[idx])
		if err != nil {
			undo()
			return nil, err
		}
		out[idx] = presp
	}
	return out, nil
}

// CheckBatch reports, per promise id, whether the promise is currently
// usable by client (see Manager.CheckBatch). Ids are checked one shard at a
// time; a composite is usable only if every part is.
func (s *ShardedManager) CheckBatch(client string, ids []string) []error {
	out := make([]error, len(ids))
	perShard := make(map[int][]int)
	for i, id := range ids {
		if isCompositeID(id) {
			c := s.lookupComposite(client, id)
			if c == nil {
				out[i] = fmt.Errorf("%w: %s", ErrPromiseNotFound, id)
				continue
			}
			for _, part := range c.parts {
				if out[i] != nil {
					break
				}
				sh := s.shards[part.shard]
				sh.mu.Lock()
				out[i] = sh.m.usable(client, part.id)
				sh.mu.Unlock()
			}
			continue
		}
		sh, ok := s.ownerShard(id)
		if !ok {
			sh = 0
		}
		perShard[sh] = append(perShard[sh], i)
	}
	for _, shIdx := range sortedKeys(perShard) {
		idxs := perShard[shIdx]
		batch := make([]string, len(idxs))
		for j, idx := range idxs {
			batch[j] = ids[idx]
		}
		sh := s.shards[shIdx]
		sh.mu.Lock()
		errs := sh.m.CheckBatch(client, batch)
		sh.mu.Unlock()
		for j, idx := range idxs {
			out[idx] = errs[j]
		}
	}
	return out
}

// Sweep expires lapsed promises on every shard. Directory entries for
// expired composites stay behind, like rows in the done tables, so clients
// reusing the id still get the precise promise-expired error.
func (s *ShardedManager) Sweep() error {
	for _, sh := range s.shards {
		sh.mu.Lock()
		err := sh.m.Sweep()
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// snapshotDir copies the composite directory so callers can walk it while
// taking shard locks (never hold dirMu across a shard lock).
func (s *ShardedManager) snapshotDir() map[string]*composite {
	s.dirMu.Lock()
	defer s.dirMu.Unlock()
	snapshot := make(map[string]*composite, len(s.dir))
	for id, c := range s.dir {
		snapshot[id] = c
	}
	return snapshot
}

// PromiseInfo returns a copy of the promise with the given id. Composite
// promises are reconstructed from their parts in original predicate order;
// a composite reports the worst lifecycle state among its parts.
func (s *ShardedManager) PromiseInfo(id string) (Promise, error) {
	if !isCompositeID(id) {
		sh, ok := s.ownerShard(id)
		if !ok {
			return Promise{}, fmt.Errorf("%w: %s", ErrPromiseNotFound, id)
		}
		s.shards[sh].mu.Lock()
		defer s.shards[sh].mu.Unlock()
		return s.shards[sh].m.PromiseInfo(id)
	}
	c := s.lookupComposite("", id)
	if c == nil {
		return Promise{}, fmt.Errorf("%w: %s", ErrPromiseNotFound, id)
	}
	n := 0
	for _, part := range c.parts {
		for _, idx := range part.predIdx {
			if idx+1 > n {
				n = idx + 1
			}
		}
	}
	out := Promise{
		ID:           id,
		Client:       c.client,
		Predicates:   make([]Predicate, n),
		Assigned:     make([]string, n),
		DelegatedQty: make([]int64, n),
		DelegatedID:  make([]string, n),
		Expires:      c.expires,
		State:        Active,
	}
	for _, part := range c.parts {
		sh := s.shards[part.shard]
		sh.mu.Lock()
		p, err := sh.m.PromiseInfo(part.id)
		sh.mu.Unlock()
		if err != nil {
			return Promise{}, err
		}
		for j, idx := range part.predIdx {
			out.Predicates[idx] = p.Predicates[j]
			if j < len(p.Assigned) {
				out.Assigned[idx] = p.Assigned[j]
			}
			if j < len(p.DelegatedQty) {
				out.DelegatedQty[idx] = p.DelegatedQty[j]
			}
			if j < len(p.DelegatedID) {
				out.DelegatedID[idx] = p.DelegatedID[j]
			}
		}
		if p.State != Active {
			out.State = p.State
		}
	}
	return out, nil
}

// ActivePromises returns copies of all active, unexpired promises across
// every shard. Parts of composite promises appear individually, under
// their per-shard ids.
func (s *ShardedManager) ActivePromises() ([]Promise, error) {
	var out []Promise
	for _, sh := range s.shards {
		sh.mu.Lock()
		ps, err := sh.m.ActivePromises()
		sh.mu.Unlock()
		if err != nil {
			return nil, err
		}
		out = append(out, ps...)
	}
	return out, nil
}

// Stats aggregates every shard's counters. The latency summary is merged
// approximately: counts and means combine exactly, percentiles report the
// worst shard (conservative). Counters track per-shard work, not
// client-visible outcomes: a composite grant over N shards counts N
// requests and N grants, and the cross-shard protocol's probe/undo cycles
// (rejected host attempts, rolled-back sub-promises) add matching
// rejection and release counts.
func (s *ShardedManager) Stats() Stats {
	var out Stats
	var meanWeighted time.Duration
	for _, sh := range s.shards {
		st := sh.m.Stats()
		out.Requests += st.Requests
		out.Grants += st.Grants
		out.Rejections += st.Rejections
		out.Releases += st.Releases
		out.Expirations += st.Expirations
		out.Violations += st.Violations
		out.ActionErrors += st.ActionErrors
		out.DeadlockRetries += st.DeadlockRetries
		l := st.Latency
		if l.Count == 0 {
			continue
		}
		if out.Latency.Count == 0 || l.Min < out.Latency.Min {
			out.Latency.Min = l.Min
		}
		if l.Max > out.Latency.Max {
			out.Latency.Max = l.Max
		}
		if l.P50 > out.Latency.P50 {
			out.Latency.P50 = l.P50
		}
		if l.P90 > out.Latency.P90 {
			out.Latency.P90 = l.P90
		}
		if l.P99 > out.Latency.P99 {
			out.Latency.P99 = l.P99
		}
		meanWeighted += l.Mean * time.Duration(l.Count)
		out.Latency.Count += l.Count
	}
	if out.Latency.Count > 0 {
		out.Latency.Mean = meanWeighted / time.Duration(out.Latency.Count)
	}
	return out
}

// Audit runs every shard's consistency audit and checks the composite
// directory: each part of each live composite must resolve to a promise
// owned by the composite's client. Problems are prefixed with their shard.
func (s *ShardedManager) Audit() (*AuditReport, error) {
	report := &AuditReport{}
	for i, sh := range s.shards {
		sh.mu.Lock()
		rep, err := sh.m.Audit()
		sh.mu.Unlock()
		if err != nil {
			return nil, err
		}
		report.ActivePromises += rep.ActivePromises
		report.Slots += rep.Slots
		for _, p := range rep.Problems {
			report.Problems = append(report.Problems, fmt.Sprintf("shard %d: %s", i, p))
		}
	}
	for id, c := range s.snapshotDir() {
		for _, part := range c.parts {
			sh := s.shards[part.shard]
			sh.mu.Lock()
			p, err := sh.m.PromiseInfo(part.id)
			sh.mu.Unlock()
			if err != nil {
				report.Problems = append(report.Problems,
					fmt.Sprintf("directory: composite %s part %s: %v", id, part.id, err))
				continue
			}
			if p.Client != c.client {
				report.Problems = append(report.Problems,
					fmt.Sprintf("directory: composite %s part %s owned by %q, want %q", id, part.id, p.Client, c.client))
			}
		}
	}
	return report, nil
}

// CreatePool registers a pool on its owning shard, in a transaction of its
// own.
func (s *ShardedManager) CreatePool(id string, onHand int64, props map[string]predicate.Value) error {
	sh := s.shards[s.ShardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tx := sh.m.Store().Begin(txn.Block)
	if err := sh.m.Resources().CreatePool(tx, id, onHand, props); err != nil {
		_ = tx.Abort()
		return err
	}
	return tx.Commit()
}

// CreateInstance registers a named instance on its owning shard, in a
// transaction of its own.
func (s *ShardedManager) CreateInstance(id string, props map[string]predicate.Value) error {
	sh := s.shards[s.ShardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tx := sh.m.Store().Begin(txn.Block)
	if err := sh.m.Resources().CreateInstance(tx, id, props); err != nil {
		_ = tx.Abort()
		return err
	}
	return tx.Commit()
}

// LoadSeed reads a resource seed file and creates its pools and instances
// on their owning shards. Unlike the single-store loader this is not
// atomic: a malformed entry leaves earlier entries created.
func (s *ShardedManager) LoadSeed(r io.Reader) (pools, instances int, err error) {
	ps, ins, err := resource.ParseSeed(r)
	if err != nil {
		return 0, 0, err
	}
	for _, p := range ps {
		if err := s.CreatePool(p.ID, p.OnHand, p.Props); err != nil {
			return pools, instances, err
		}
		pools++
	}
	for _, in := range ins {
		if err := s.CreateInstance(in.ID, in.Props); err != nil {
			return pools, instances, err
		}
		instances++
	}
	return pools, instances, nil
}

// Pools lists every pool across all shards, in id order.
func (s *ShardedManager) Pools() ([]*resource.Pool, error) {
	var out []*resource.Pool
	for _, sh := range s.shards {
		sh.mu.Lock()
		tx := sh.m.Store().Begin(txn.Block)
		ps, err := sh.m.Resources().Pools(tx)
		_ = tx.Commit()
		sh.mu.Unlock()
		if err != nil {
			return nil, err
		}
		out = append(out, ps...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Instances lists every named instance across all shards, in id order.
func (s *ShardedManager) Instances() ([]*resource.Instance, error) {
	var out []*resource.Instance
	for _, sh := range s.shards {
		sh.mu.Lock()
		tx := sh.m.Store().Begin(txn.Block)
		ins, err := sh.m.Resources().Instances(tx)
		_ = tx.Commit()
		sh.mu.Unlock()
		if err != nil {
			return nil, err
		}
		out = append(out, ins...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// PoolLevel returns the quantity on hand of one pool, for tools and tests.
func (s *ShardedManager) PoolLevel(pool string) (int64, error) {
	sh := s.shards[s.ShardOf(pool)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tx := sh.m.Store().Begin(txn.Block)
	defer tx.Commit()
	p, err := sh.m.Resources().Pool(tx, pool)
	if err != nil {
		return 0, err
	}
	return p.OnHand, nil
}

// sortedKeys returns the keys of m in ascending order — every multi-shard
// iteration uses it so shards are always visited in lock order.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
