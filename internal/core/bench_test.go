package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/predicate"
	"repro/internal/resource"
	"repro/internal/txn"
)

func benchManager(b *testing.B, cfg Config) *Manager {
	b.Helper()
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkGrantReleaseAnonymous is the core grant path without transport.
func BenchmarkGrantReleaseAnonymous(b *testing.B) {
	m := benchManager(b, Config{DefaultDuration: time.Hour})
	tx := m.Store().Begin(txn.Block)
	if err := m.Resources().CreatePool(tx, "p", 1<<40, nil); err != nil {
		b.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := m.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
			Predicates: []Predicate{Quantity("p", 1)},
		}}})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Execute(bg, Request{Client: "c", Env: []EnvEntry{{PromiseID: resp.Promises[0].PromiseID, Release: true}}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLazyMatcherSeeding is the ablation behind the E5 note: solving
// the property assignment from the stored assignments (incremental) vs from
// scratch (what a full per-grant matching would do). Both must saturate;
// seeded should be markedly cheaper because only one augmenting path runs.
func BenchmarkLazyMatcherSeeding(b *testing.B) {
	const n = 500
	exprs := make([]predicate.Expr, n)
	cands := make([]*resource.Instance, n)
	initial := make([]string, n)
	for i := 0; i < n; i++ {
		// Slot i accepts candidates [i, n): a triangular structure where
		// unseeded solving does real augmentation work.
		exprs[i] = predicate.MustParse(fmt.Sprintf("slot >= %d", i))
		cands[i] = &resource.Instance{
			ID:    fmt.Sprintf("inst-%06d", i),
			Props: map[string]predicate.Value{"slot": predicate.Int(int64(i))},
		}
		initial[i] = fmt.Sprintf("inst-%06d", i)
	}
	empty := make([]string, n)

	b.Run("seeded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := newLazyMatcher(exprs, cands).solve(initial); !ok {
				b.Fatal("unsaturated")
			}
		}
	})
	b.Run("unseeded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := newLazyMatcher(exprs, cands).solve(empty); !ok {
				b.Fatal("unsaturated")
			}
		}
	})
}

// BenchmarkSweep measures the per-request expiry cost as the active
// promise table grows. Before the expiry heap this was a scan of every
// active promise on every request — per-op cost grew linearly with the
// table (the dominant cost in BenchmarkManagerParallel); with the heap the
// request path only peeks the top entry, so per-op cost must stay flat
// across the promises=N sub-benchmarks. The explicit-Sweep variant prices
// the deadline-processing shim itself (a no-op pop when nothing is due).
func BenchmarkSweep(b *testing.B) {
	world := func(b *testing.B, n int) *Manager {
		b.Helper()
		m := benchManager(b, Config{DefaultDuration: time.Hour})
		tx := m.Store().Begin(txn.Block)
		// The outstanding promises hold a pool of their own, so the probe
		// measures the per-request cost the table size imposes (formerly
		// the sweep scan), not contention on one escrow entry.
		for _, pool := range []string{"p", "held"} {
			if err := m.Resources().CreatePool(tx, pool, 1<<40, nil); err != nil {
				b.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < n; i++ {
			resp, err := m.Execute(bg, Request{Client: "seed", PromiseRequests: []PromiseRequest{{
				Predicates: []Predicate{Quantity("held", 1)},
			}}})
			if err != nil || !resp.Promises[0].Accepted {
				b.Fatalf("%v %v", resp, err)
			}
		}
		return m
	}
	for _, n := range []int{100, 1000, 4000} {
		b.Run(fmt.Sprintf("request/promises=%d", n), func(b *testing.B) {
			m := world(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := m.Execute(bg, Request{Client: "probe", PromiseRequests: []PromiseRequest{{
					Predicates: []Predicate{Quantity("p", 1)},
				}}})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.Execute(bg, Request{Client: "probe", Env: []EnvEntry{{PromiseID: resp.Promises[0].PromiseID, Release: true}}}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sweep/promises=%d", n), func(b *testing.B) {
			m := world(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Sweep(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAudit prices the full consistency audit.
func BenchmarkAudit(b *testing.B) {
	m := benchManager(b, Config{DefaultDuration: time.Hour})
	tx := m.Store().Begin(txn.Block)
	if err := m.Resources().CreatePool(tx, "p", 1<<40, nil); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := m.Resources().CreateInstance(tx, fmt.Sprintf("i%d", i), map[string]predicate.Value{
			"x": predicate.Int(int64(i)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := m.Execute(bg, Request{Client: "seed", PromiseRequests: []PromiseRequest{{
			Predicates: []Predicate{Quantity("p", 1)},
		}}}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 25; i++ {
		if _, err := m.Execute(bg, Request{Client: "seed", PromiseRequests: []PromiseRequest{{
			Predicates: []Predicate{MustProperty("x >= 0")},
		}}}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := m.Audit()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Healthy() {
			b.Fatalf("unhealthy: %s", rep)
		}
	}
}

// benchShardedPools builds a sharded manager with enough distinct pools
// that parallel workers spread across shards.
func benchShardedPools(b *testing.B, shards, pools int) (*ShardedManager, []string) {
	b.Helper()
	s, err := NewSharded(ShardedConfig{Shards: shards, DefaultDuration: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, pools)
	for i := range names {
		names[i] = fmt.Sprintf("pool-%d", i)
		if err := s.CreatePool(names[i], 1<<40, nil); err != nil {
			b.Fatal(err)
		}
	}
	return s, names
}

// BenchmarkManagerParallel is the sharding headline: grant+release cycles
// under b.RunParallel with a realistic outstanding-promise table (512
// long-lived promises), comparing the serialized single-shard
// configuration against the sharded one. Sharding wins twice: workers on
// different shards proceed concurrently, and the per-request linear
// factors (the §8 expiry sweep scans every active promise in the store)
// shrink to 1/N per shard because each shard holds only its stripe.
// Run with -cpu 8 to reproduce the 8-goroutine acceptance number.
func BenchmarkManagerParallel(b *testing.B) {
	const outstanding = 512
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, pools := benchShardedPools(b, shards, 32)
			for i := 0; i < outstanding; i++ {
				resp, err := s.Execute(bg, Request{Client: "holder", PromiseRequests: []PromiseRequest{{
					Predicates: []Predicate{Quantity(pools[i%len(pools)], 1)},
				}}})
				if err != nil || !resp.Promises[0].Accepted {
					b.Fatalf("%v %v", resp, err)
				}
			}
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := next.Add(1)
				pool := pools[int(id)%len(pools)]
				client := fmt.Sprintf("c%d", id)
				for pb.Next() {
					resp, err := s.Execute(bg, Request{Client: client, PromiseRequests: []PromiseRequest{{
						Predicates: []Predicate{Quantity(pool, 1)},
					}}})
					if err != nil {
						b.Error(err)
						return
					}
					if _, err := s.Execute(bg, Request{Client: client, Env: []EnvEntry{{PromiseID: resp.Promises[0].PromiseID, Release: true}}}); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkGrantBatch prices the batched request API against one Execute
// per request: a batch of 16 single-pool grants pays for shard locks, the
// expiry sweep and transaction setup once per shard instead of 16 times.
// The outstanding promises make the per-Execute sweep a real cost, as in
// any loaded deployment.
func BenchmarkGrantBatch(b *testing.B) {
	const batch = 16
	const outstanding = 256
	hold := func(b *testing.B, s *ShardedManager, pools []string) {
		b.Helper()
		for i := 0; i < outstanding; i++ {
			resp, err := s.Execute(bg, Request{Client: "holder", PromiseRequests: []PromiseRequest{{
				Predicates: []Predicate{Quantity(pools[i%len(pools)], 1)},
			}}})
			if err != nil || !resp.Promises[0].Accepted {
				b.Fatalf("%v %v", resp, err)
			}
		}
	}
	b.Run("individual", func(b *testing.B) {
		s, pools := benchShardedPools(b, 8, batch)
		hold(b, s, pools)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var env []EnvEntry
			for k := 0; k < batch; k++ {
				resp, err := s.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
					Predicates: []Predicate{Quantity(pools[k], 1)},
				}}})
				if err != nil {
					b.Fatal(err)
				}
				env = append(env, EnvEntry{PromiseID: resp.Promises[0].PromiseID, Release: true})
			}
			if _, err := s.Execute(bg, Request{Client: "c", Env: env}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		s, pools := benchShardedPools(b, 8, batch)
		hold(b, s, pools)
		reqs := make([]PromiseRequest, batch)
		for k := range reqs {
			reqs[k] = PromiseRequest{Predicates: []Predicate{Quantity(pools[k], 1)}}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resps, err := s.GrantBatch(bg, "c", reqs)
			if err != nil {
				b.Fatal(err)
			}
			var env []EnvEntry
			for _, pr := range resps {
				env = append(env, EnvEntry{PromiseID: pr.PromiseID, Release: true})
			}
			if _, err := s.Execute(bg, Request{Client: "c", Env: env}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCheckUnderWriteLoad is the acceptance benchmark for the
// versioned-snapshot read path: readers run CheckBatch against a sharded
// manager while N background granters sustain write load. The aggregate
// write rate is held constant across the writers=N variants (each writer
// paced to N milliseconds, ~1k grant+release cycles/sec total) so the
// only variable is how many concurrent writers hold shard write locks —
// the benchmark measures lock interference, not CPU contention, and stays
// meaningful on small hosts. Because checks read immutable committed
// snapshots with zero lock acquisition, read ns/op must stay flat (±20%)
// from writers=0 to writers=8 — before the snapshot path, readers queued
// behind each shard's RWMutex and degraded with write load. Run with
// -cpu 1,8 to see the scaling.
func BenchmarkCheckUnderWriteLoad(b *testing.B) {
	for _, writers := range []int{0, 2, 8} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			s, err := NewSharded(ShardedConfig{Shards: 8, DefaultDuration: time.Hour})
			if err != nil {
				b.Fatal(err)
			}
			// Each writer owns a pool; readers check a spread of held ids.
			writerPools := make([]string, 8)
			for i := range writerPools {
				writerPools[i] = fmt.Sprintf("wl-pool-%d", i)
				if err := s.CreatePool(writerPools[i], 1<<40, nil); err != nil {
					b.Fatal(err)
				}
			}
			const held = 64
			ids := make([]string, held)
			for i := range ids {
				resp, err := s.Execute(bg, Request{Client: "r", PromiseRequests: []PromiseRequest{{
					Predicates: []Predicate{Quantity(writerPools[i%len(writerPools)], 1)},
				}}})
				if err != nil || !resp.Promises[0].Accepted {
					b.Fatalf("%v %v", resp, err)
				}
				ids[i] = resp.Promises[0].PromiseID
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					client := fmt.Sprintf("w%d", w)
					pool := writerPools[w%len(writerPools)]
					tick := time.NewTicker(time.Duration(writers) * time.Millisecond)
					defer tick.Stop()
					for {
						select {
						case <-stop:
							return
						case <-tick.C:
						}
						resp, err := s.Execute(bg, Request{Client: client, PromiseRequests: []PromiseRequest{{
							Predicates: []Predicate{Quantity(pool, 1)},
						}}})
						if err != nil {
							b.Error(err)
							return
						}
						if _, err := s.Execute(bg, Request{Client: client,
							Env: []EnvEntry{{PromiseID: resp.Promises[0].PromiseID, Release: true}}}); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				base := int(next.Add(16))
				for pb.Next() {
					base++
					errs, err := s.CheckBatch(bg, "r", ids[base%held:base%held+1])
					if err != nil {
						b.Error(err)
						return
					}
					if errs[0] != nil {
						b.Errorf("held promise reported %v", errs[0])
						return
					}
				}
			})
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// BenchmarkCrossShardPropertyGrant prices the reservation pre-filter: a
// property-predicate grant on a skewed placement (every satisfying
// instance on one shard) must reserve only the shards that can
// contribute, while the uniform placement spreads candidates — and
// reservations — across all shards. The skipped-reservations metric is
// reported per op; before the pre-filter both layouts reserved all 8
// shards for every grant.
func BenchmarkCrossShardPropertyGrant(b *testing.B) {
	layouts := []struct {
		name   string
		shards func(i int) int // which shard instance i lands on
	}{
		{name: "skewed", shards: func(i int) int { return 0 }},
		{name: "uniform", shards: func(i int) int { return i % 8 }},
	}
	for _, layout := range layouts {
		b.Run(layout.name, func(b *testing.B) {
			s, err := NewSharded(ShardedConfig{Shards: 8, DefaultDuration: time.Hour})
			if err != nil {
				b.Fatal(err)
			}
			const instances = 32
			for i := 0; i < instances; i++ {
				id := nameOnShard(b, s, layout.shards(i), fmt.Sprintf("xp-%s-%d", layout.name, i))
				props := map[string]predicate.Value{"gpu": predicate.Bool(true)}
				if err := s.CreateInstance(id, props); err != nil {
					b.Fatal(err)
				}
			}
			skippedBefore := s.prefilterSkipped.Value()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := s.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
					Predicates: []Predicate{MustProperty("gpu")},
				}}})
				if err != nil {
					b.Fatal(err)
				}
				pr := resp.Promises[0]
				if !pr.Accepted {
					b.Fatalf("rejected: %s", pr.Reason)
				}
				if _, err := s.Execute(bg, Request{Client: "c",
					Env: []EnvEntry{{PromiseID: pr.PromiseID, Release: true}}}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(s.prefilterSkipped.Value()-skippedBefore)/float64(b.N), "skipped-shards/op")
			}
		})
	}
}

// BenchmarkPreemptionGrant prices the displacement path against the plain
// grant path it extends. Both sub-benchmarks run the same
// grant-then-release cycle on a one-unit pool at priority 1; "displace"
// additionally keeps the pool spot-held, so every grant must plan a victim
// set, revoke it inside the reservation, and emit the preempted event —
// then re-establish the spot hold for the next iteration. The victims/op
// metric (from the engine's preemption counter) pins the displacement
// work: ~1 on the displace rows, 0 on plain.
func BenchmarkPreemptionGrant(b *testing.B) {
	for _, variant := range []string{"plain", "displace"} {
		b.Run(variant, func(b *testing.B) {
			m := benchManager(b, Config{DefaultDuration: time.Hour})
			tx := m.Store().Begin(txn.Block)
			if err := m.Resources().CreatePool(tx, "p", 1, nil); err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
			spot := func() {
				resp, err := m.GrantBatch(bg, "spot", []PromiseRequest{{
					Predicates: []Predicate{Quantity("p", 1)}, Preemptible: true,
				}})
				if err != nil {
					b.Fatal(err)
				}
				if !resp[0].Accepted {
					b.Fatalf("spot hold rejected: %s", resp[0].Reason)
				}
			}
			if variant == "displace" {
				spot()
			}
			before := m.Stats().Preemptions
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := m.GrantBatch(bg, "od", []PromiseRequest{{
					Predicates: []Predicate{Quantity("p", 1)}, Priority: 1,
				}})
				if err != nil {
					b.Fatal(err)
				}
				if !resp[0].Accepted {
					b.Fatalf("grant rejected: %s", resp[0].Reason)
				}
				if err := m.Release(bg, "od", resp[0].PromiseID); err != nil {
					b.Fatal(err)
				}
				if variant == "displace" {
					spot()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(m.Stats().Preemptions-before)/float64(b.N), "victims/op")
		})
	}
}
