package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/predicate"
	"repro/internal/resource"
	"repro/internal/txn"
)

func benchManager(b *testing.B, cfg Config) *Manager {
	b.Helper()
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkGrantReleaseAnonymous is the core grant path without transport.
func BenchmarkGrantReleaseAnonymous(b *testing.B) {
	m := benchManager(b, Config{DefaultDuration: time.Hour})
	tx := m.Store().Begin(txn.Block)
	if err := m.Resources().CreatePool(tx, "p", 1<<40, nil); err != nil {
		b.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := m.Execute(Request{Client: "c", PromiseRequests: []PromiseRequest{{
			Predicates: []Predicate{Quantity("p", 1)},
		}}})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Execute(Request{Client: "c", Env: []EnvEntry{{PromiseID: resp.Promises[0].PromiseID, Release: true}}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLazyMatcherSeeding is the ablation behind the E5 note: solving
// the property assignment from the stored assignments (incremental) vs from
// scratch (what a full per-grant matching would do). Both must saturate;
// seeded should be markedly cheaper because only one augmenting path runs.
func BenchmarkLazyMatcherSeeding(b *testing.B) {
	const n = 500
	exprs := make([]predicate.Expr, n)
	cands := make([]*resource.Instance, n)
	initial := make([]string, n)
	for i := 0; i < n; i++ {
		// Slot i accepts candidates [i, n): a triangular structure where
		// unseeded solving does real augmentation work.
		exprs[i] = predicate.MustParse(fmt.Sprintf("slot >= %d", i))
		cands[i] = &resource.Instance{
			ID:    fmt.Sprintf("inst-%06d", i),
			Props: map[string]predicate.Value{"slot": predicate.Int(int64(i))},
		}
		initial[i] = fmt.Sprintf("inst-%06d", i)
	}
	empty := make([]string, n)

	b.Run("seeded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := newLazyMatcher(exprs, cands).solve(initial); !ok {
				b.Fatal("unsaturated")
			}
		}
	})
	b.Run("unseeded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := newLazyMatcher(exprs, cands).solve(empty); !ok {
				b.Fatal("unsaturated")
			}
		}
	})
}

// BenchmarkSweep measures the per-request expiry sweep at three promise
// table sizes — the linear factor visible in E5.
func BenchmarkSweep(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("promises=%d", n), func(b *testing.B) {
			m := benchManager(b, Config{DefaultDuration: time.Hour})
			tx := m.Store().Begin(txn.Block)
			if err := m.Resources().CreatePool(tx, "p", 1<<40, nil); err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				resp, err := m.Execute(Request{Client: "seed", PromiseRequests: []PromiseRequest{{
					Predicates: []Predicate{Quantity("p", 1)},
				}}})
				if err != nil || !resp.Promises[0].Accepted {
					b.Fatalf("%v %v", resp, err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Sweep(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAudit prices the full consistency audit.
func BenchmarkAudit(b *testing.B) {
	m := benchManager(b, Config{DefaultDuration: time.Hour})
	tx := m.Store().Begin(txn.Block)
	if err := m.Resources().CreatePool(tx, "p", 1<<40, nil); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := m.Resources().CreateInstance(tx, fmt.Sprintf("i%d", i), map[string]predicate.Value{
			"x": predicate.Int(int64(i)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := m.Execute(Request{Client: "seed", PromiseRequests: []PromiseRequest{{
			Predicates: []Predicate{Quantity("p", 1)},
		}}}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 25; i++ {
		if _, err := m.Execute(Request{Client: "seed", PromiseRequests: []PromiseRequest{{
			Predicates: []Predicate{MustProperty("x >= 0")},
		}}}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := m.Audit()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Healthy() {
			b.Fatalf("unhealthy: %s", rep)
		}
	}
}
