package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matching"
	"repro/internal/predicate"
	"repro/internal/resource"
)

// buildRandom creates random slots (interval predicates over "x") and
// instances (random x values), returning the lazy matcher inputs plus an
// equivalent matching.Graph for cross-checking.
func buildRandom(r *rand.Rand) ([]predicate.Expr, []*resource.Instance, *matching.Graph) {
	nL := r.Intn(7)
	nR := r.Intn(7)
	exprs := make([]predicate.Expr, nL)
	for i := range exprs {
		lo := r.Intn(10)
		hi := lo + r.Intn(6)
		exprs[i] = predicate.MustParse(fmt.Sprintf("x >= %d and x <= %d", lo, hi))
	}
	cands := make([]*resource.Instance, nR)
	for j := range cands {
		cands[j] = &resource.Instance{
			ID:    fmt.Sprintf("inst-%d", j),
			Props: map[string]predicate.Value{"x": predicate.Int(int64(r.Intn(14)))},
		}
	}
	g := matching.NewGraph(nL, nR)
	for i := 0; i < nL; i++ {
		for j := 0; j < nR; j++ {
			ok, err := predicate.Eval(exprs[i], cands[j].Env())
			if err == nil && ok {
				g.AddEdge(i, j)
			}
		}
	}
	return exprs, cands, g
}

// TestQuickLazyMatcherAgreesWithHopcroftKarp: saturation decisions must
// coincide with the reference algorithm, from an empty seed.
func TestQuickLazyMatcherAgreesWithHopcroftKarp(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		exprs, cands, g := buildRandom(r)
		initial := make([]string, len(exprs))
		assign, ok := newLazyMatcher(exprs, cands).solve(initial)
		_, hkOK := g.SaturatesLeft()
		if ok != hkOK {
			t.Logf("disagree: lazy=%v hk=%v (%dx%d)", ok, hkOK, len(exprs), len(cands))
			return false
		}
		if !ok {
			return true
		}
		// Assignment must be a valid saturating matching.
		used := make(map[string]bool)
		for i, inst := range assign {
			if used[inst] {
				t.Logf("instance %s used twice", inst)
				return false
			}
			used[inst] = true
			var cand *resource.Instance
			for _, c := range cands {
				if c.ID == inst {
					cand = c
					break
				}
			}
			if cand == nil {
				t.Logf("assigned unknown instance %s", inst)
				return false
			}
			sat, err := predicate.Eval(exprs[i], cand.Env())
			if err != nil || !sat {
				t.Logf("slot %d assigned non-satisfying instance %s", i, inst)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLazyMatcherSeededAgrees: seeding with an arbitrary valid partial
// matching must not change the saturation answer (augmenting-path theorem).
func TestQuickLazyMatcherSeededAgrees(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		exprs, cands, g := buildRandom(r)
		_, hkOK := g.SaturatesLeft()
		// Build a random valid partial seed greedily.
		initial := make([]string, len(exprs))
		used := make(map[int]bool)
		for i := range exprs {
			if r.Intn(2) == 0 {
				continue
			}
			for j := range cands {
				if used[j] {
					continue
				}
				ok, err := predicate.Eval(exprs[i], cands[j].Env())
				if err == nil && ok {
					initial[i] = cands[j].ID
					used[j] = true
					break
				}
			}
		}
		// Some seeds also point at garbage; solve must tolerate them.
		if len(exprs) > 0 && r.Intn(3) == 0 {
			initial[r.Intn(len(exprs))] = "no-such-instance"
		}
		_, ok := newLazyMatcher(exprs, cands).solve(initial)
		if ok != hkOK {
			t.Logf("seeded disagree: lazy=%v hk=%v", ok, hkOK)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestLazyMatcherEmpty(t *testing.T) {
	assign, ok := newLazyMatcher(nil, nil).solve(nil)
	if !ok || len(assign) != 0 {
		t.Fatalf("empty solve = %v %v", assign, ok)
	}
	// Slots but no candidates: unsatisfiable.
	exprs := []predicate.Expr{predicate.MustParse("x >= 0")}
	if _, ok := newLazyMatcher(exprs, nil).solve([]string{""}); ok {
		t.Fatal("saturated with no candidates")
	}
}

func TestLazyMatcherSeedConflict(t *testing.T) {
	// Two slots seeded with the same instance: the second seed must be
	// ignored and augmented instead.
	exprs := []predicate.Expr{predicate.MustParse("x >= 0"), predicate.MustParse("x >= 0")}
	cands := []*resource.Instance{
		{ID: "a", Props: map[string]predicate.Value{"x": predicate.Int(1)}},
		{ID: "b", Props: map[string]predicate.Value{"x": predicate.Int(2)}},
	}
	assign, ok := newLazyMatcher(exprs, cands).solve([]string{"a", "a"})
	if !ok {
		t.Fatal("should saturate")
	}
	if assign[0] == assign[1] {
		t.Fatalf("duplicate assignment: %v", assign)
	}
}
