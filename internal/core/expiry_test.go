package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/resource"
	"repro/internal/txn"
)

func TestExpiredPromiseUseReturnsPromiseExpired(t *testing.T) {
	// §2: "Promise managers return 'promise-expired' errors to clients
	// that attempt to perform operations under the protection of expired
	// promises."
	m, fake := newManager(t, Config{DefaultDuration: time.Minute})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 10, nil)
	})
	pr := grantOne(t, m, requestQuantity("c", "p", 5))
	fake.Advance(2 * time.Minute)
	ran := false
	resp, err := m.Execute(bg, Request{
		Client: "c",
		Env:    []EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		Action: func(ac *ActionContext) (any, error) { ran = true; return nil, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.ActionErr, ErrPromiseExpired) {
		t.Fatalf("ActionErr = %v, want ErrPromiseExpired", resp.ActionErr)
	}
	if ran {
		t.Fatal("action ran under an expired promise")
	}
}

func TestExpiryFreesAnonymousCapacity(t *testing.T) {
	m, fake := newManager(t, Config{DefaultDuration: time.Minute})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 10, nil)
	})
	_ = grantOne(t, m, requestQuantity("a", "p", 10))
	if pr := grantOne(t, m, requestQuantity("b", "p", 1)); pr.Accepted {
		t.Fatal("pool fully promised")
	}
	fake.Advance(2 * time.Minute)
	// The sweep at the start of the next request frees the expired hold.
	if pr := grantOne(t, m, requestQuantity("b", "p", 10)); !pr.Accepted {
		t.Fatalf("expired promise still holds capacity: %s", pr.Reason)
	}
}

func TestExpiryFreesInstances(t *testing.T) {
	m, fake := newManager(t, Config{DefaultDuration: time.Minute})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreateInstance(tx, "i", nil)
	})
	pr := grantOne(t, m, Request{Client: "a", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Named("i")},
	}}})
	fake.Advance(2 * time.Minute)
	if err := m.Sweep(); err != nil {
		t.Fatal(err)
	}
	info, _ := m.PromiseInfo(pr.PromiseID)
	if info.State != Expired {
		t.Fatalf("state = %v, want expired", info.State)
	}
	tx := m.Store().Begin(txn.Block)
	defer tx.Commit()
	in, _ := m.Resources().Instance(tx, "i")
	if in.Status != resource.Available {
		t.Fatalf("instance status after expiry = %v", in.Status)
	}
}

func TestMixedExpiryOnlyLapsedFreed(t *testing.T) {
	m, fake := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 10, nil)
	})
	short := grantOne(t, m, Request{Client: "a", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("p", 5)},
		Duration:   time.Minute,
	}}})
	long := grantOne(t, m, Request{Client: "b", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("p", 5)},
		Duration:   time.Hour,
	}}})
	fake.Advance(5 * time.Minute)
	if err := m.Sweep(); err != nil {
		t.Fatal(err)
	}
	si, _ := m.PromiseInfo(short.PromiseID)
	li, _ := m.PromiseInfo(long.PromiseID)
	if si.State != Expired {
		t.Fatalf("short promise state = %v", si.State)
	}
	if li.State != Active {
		t.Fatalf("long promise state = %v", li.State)
	}
	// Exactly 5 units free again.
	if pr := grantOne(t, m, requestQuantity("c", "p", 5)); !pr.Accepted {
		t.Fatalf("freed capacity not grantable: %s", pr.Reason)
	}
	if pr := grantOne(t, m, requestQuantity("d", "p", 1)); pr.Accepted {
		t.Fatal("over-granted after partial expiry")
	}
}

func TestExpiredPromiseNotCountedInChecks(t *testing.T) {
	// An action that would violate an expired promise must succeed.
	m, fake := newManager(t, Config{DefaultDuration: time.Minute})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 10, nil)
	})
	_ = grantOne(t, m, requestQuantity("a", "p", 8))
	fake.Advance(2 * time.Minute)
	resp, err := m.Execute(bg, Request{
		Client: "b",
		Action: func(ac *ActionContext) (any, error) {
			_, err := ac.Resources.AdjustPool(ac.Tx, "p", -9)
			return nil, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ActionErr != nil {
		t.Fatalf("action blocked by expired promise: %v", resp.ActionErr)
	}
}

func TestModifyExpiredPromiseRejected(t *testing.T) {
	m, fake := newManager(t, Config{DefaultDuration: time.Minute})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 10, nil)
	})
	pr := grantOne(t, m, requestQuantity("c", "p", 5))
	fake.Advance(2 * time.Minute)
	up := grantOne(t, m, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("p", 6)},
		Releases:   []string{pr.PromiseID},
	}}})
	if up.Accepted {
		t.Fatal("modify of expired promise accepted")
	}
}

func TestSweepIdempotent(t *testing.T) {
	m, fake := newManager(t, Config{DefaultDuration: time.Minute})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 10, nil)
	})
	_ = grantOne(t, m, requestQuantity("c", "p", 5))
	fake.Advance(2 * time.Minute)
	for i := 0; i < 3; i++ {
		if err := m.Sweep(); err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
	}
	list, _ := m.ActivePromises()
	if len(list) != 0 {
		t.Fatalf("active promises after sweep = %d", len(list))
	}
}
