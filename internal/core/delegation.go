package core

import (
	"context"
	"fmt"
	"time"
)

// Supplier is an upstream promise maker backing delegation (§5): "Promises
// are made that rely on the promises of third parties. For example, a
// purchase order can be accepted by the merchant if it has received a
// promise from the distributor that a backorder will be fulfilled on time."
//
// When an anonymous-view promise request exceeds local unreserved stock and
// the pool has a registered Supplier, the manager covers the shortfall by
// obtaining an upstream promise for the missing quantity.
//
// Supplier calls cross trust domains and are NOT part of the local ACID
// transaction (§8: the transaction "does not include any external messaging
// or code outside the scope of the service"). The manager therefore
// compensates: an upstream promise obtained during a request that later
// aborts is released again, and upstream releases triggered by a local
// release run only after the local transaction commits. Compensation and
// post-commit releases run under context.Background() — a dead client must
// not strand upstream state.
//
// The request context flows through: cancelling the downstream request
// cancels the upstream call it is waiting on.
type Supplier interface {
	// RequestPromise asks for qty units of pool for the given duration,
	// returning the upstream promise id on success.
	RequestPromise(ctx context.Context, pool string, qty int64, d time.Duration) (id string, err error)
	// ReleasePromise hands an upstream promise back.
	ReleasePromise(ctx context.Context, id string) error
	// ConsumePromise fulfils qty units under the upstream promise and
	// releases it (the backorder ships).
	ConsumePromise(ctx context.Context, id string, qty int64) error
}

// ManagerSupplier adapts a local Manager into a Supplier, letting tests and
// examples build merchant→distributor chains in-process; the transport
// package provides the cross-process equivalent (RemoteSupplier), and the
// two are interchangeable because both front a promises-style Engine.
type ManagerSupplier struct {
	// M is the upstream manager.
	M *Manager
	// Client is the identity the downstream manager uses upstream.
	Client string
}

// RequestPromise implements Supplier.
func (s *ManagerSupplier) RequestPromise(ctx context.Context, pool string, qty int64, d time.Duration) (string, error) {
	resp, err := s.M.Execute(ctx, Request{
		Client: s.Client,
		PromiseRequests: []PromiseRequest{{
			Predicates: []Predicate{Quantity(pool, qty)},
			Duration:   d,
		}},
	})
	if err != nil {
		return "", err
	}
	pr := resp.Promises[0]
	if !pr.Accepted {
		return "", fmt.Errorf("core: upstream rejected promise for %d of %q: %s", qty, pool, pr.Reason)
	}
	return pr.PromiseID, nil
}

// ReleasePromise implements Supplier.
func (s *ManagerSupplier) ReleasePromise(ctx context.Context, id string) error {
	_, err := s.M.Execute(ctx, Request{
		Client: s.Client,
		Env:    []EnvEntry{{PromiseID: id, Release: true}},
	})
	return err
}

// ConsumePromise implements Supplier: the upstream application action ships
// qty units (drawing down the pool) and the protecting promise is released
// atomically with it (§4, second requirement).
func (s *ManagerSupplier) ConsumePromise(ctx context.Context, id string, qty int64) error {
	m := s.M
	resp, err := m.Execute(ctx, Request{
		Client: s.Client,
		Env:    []EnvEntry{{PromiseID: id, Release: true}},
		Action: func(ac *ActionContext) (any, error) {
			p, err := m.promise(ac.Tx, id)
			if err != nil {
				return nil, err
			}
			for _, pred := range p.Predicates {
				if pred.View != AnonymousView {
					continue
				}
				if _, err := ac.Resources.AdjustPool(ac.Tx, pred.Pool, -qty); err != nil {
					return nil, err
				}
			}
			return nil, nil
		},
	})
	if err != nil {
		return err
	}
	return resp.ActionErr
}
