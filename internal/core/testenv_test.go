package core

import (
	"context"
	"os"
	"strconv"
	"testing"
)

// testShards returns the shard count for shard-count-generic tests: the
// PROMISES_TEST_SHARDS environment variable when set (the CI matrix plumbs
// {1, 8} through it, exercising both the degenerate single-shard
// configuration and a wide one), else def. Tests whose scenario pins
// resources to specific shard indices set ShardedConfig.Shards explicitly
// instead.
func testShards(def int) int {
	if v := os.Getenv("PROMISES_TEST_SHARDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// bg is the context every test that doesn't exercise cancellation uses.
var bg = context.Background()

// checkEngine is the slice of the Engine surface the check helper needs.
type checkEngine interface {
	CheckBatch(ctx context.Context, client string, ids []string) ([]error, error)
}

// checkB runs CheckBatch under the background context, failing the test on
// an engine-level error (per-promise sentinels are returned for asserting).
func checkB(t testing.TB, e checkEngine, client string, ids []string) []error {
	t.Helper()
	errs, err := e.CheckBatch(bg, client, ids)
	if err != nil {
		t.Fatalf("CheckBatch: %v", err)
	}
	return errs
}
