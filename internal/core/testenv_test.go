package core

import (
	"os"
	"strconv"
)

// testShards returns the shard count for shard-count-generic tests: the
// PROMISES_TEST_SHARDS environment variable when set (the CI matrix plumbs
// {1, 8} through it, exercising both the degenerate single-shard
// configuration and a wide one), else def. Tests whose scenario pins
// resources to specific shard indices set ShardedConfig.Shards explicitly
// instead.
func testShards(def int) int {
	if v := os.Getenv("PROMISES_TEST_SHARDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}
