package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/predicate"
	"repro/internal/resource"
)

// TestMatcherStateInvalidation pins the persistent matcher state against
// its one real hazard: edge caches outliving the instance they were
// computed from. An application action mutates instance properties in its
// own transaction; the commit hook must refresh the candidate entry and
// drop its cached edges, so the next property grant re-evaluates against
// the new properties in both directions — a stale satisfied edge must not
// admit a request the instance no longer satisfies, and a stale failed
// edge must not reject one it now does.
func TestMatcherStateInvalidation(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s, _ := newShardedT(t, ShardedConfig{Shards: shards, DefaultDuration: time.Hour})
			a := nameOnShard(t, s, 0, "inv-a")
			b := nameOnShard(t, s, 1, "inv-b")
			for _, id := range []string{a, b} {
				if err := s.CreateInstance(id, map[string]predicate.Value{"tier": predicate.Int(1)}); err != nil {
					t.Fatal(err)
				}
			}
			setTier := func(id string, tier int64) {
				t.Helper()
				resp, err := s.Execute(bg, Request{
					Client:    "admin",
					Resources: []string{id},
					Action: func(ac *ActionContext) (any, error) {
						in, err := ac.Resources.Instance(ac.Tx, id)
						if err != nil {
							return nil, err
						}
						up := &resource.Instance{ID: in.ID, Status: in.Status,
							Props: map[string]predicate.Value{"tier": predicate.Int(tier)}}
						return nil, ac.Resources.PutInstance(ac.Tx, up)
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				if resp.ActionErr != nil {
					t.Fatal(resp.ActionErr)
				}
			}

			// Warm the matcher: both instances get tier=1 edges evaluated
			// and cached while satisfying these grants.
			g1 := grantQty(t, s, "holder", MustProperty("tier = 1"))
			g2 := grantQty(t, s, "holder", MustProperty("tier = 1"))
			if !g1.Accepted || !g2.Accepted {
				t.Fatalf("warm-up grants rejected: %s / %s", g1.Reason, g2.Reason)
			}
			if err := s.Release(bg, "holder", g1.PromiseID, g2.PromiseID); err != nil {
				t.Fatal(err)
			}

			// Stale satisfied edge: with both instances mutated away from
			// tier=1, the warm edges must not admit another tier=1 grant.
			setTier(a, 2)
			setTier(b, 2)
			if pr := grantQty(t, s, "c", MustProperty("tier = 1")); pr.Accepted {
				t.Fatal("grant satisfied only by stale pre-mutation properties was accepted")
			}

			// Stale failed edge: the rejection above evaluated (and cached)
			// tier=1 edges as unsatisfied; flipping one instance back must
			// make the same request grantable again.
			setTier(a, 1)
			pr := grantQty(t, s, "c", MustProperty("tier = 1"))
			if !pr.Accepted {
				t.Fatalf("grant rejected off a stale failed edge: %s", pr.Reason)
			}
			// And the capacity arithmetic still holds: only one tier=1
			// instance exists now, so a second concurrent hold must reject.
			if pr2 := grantQty(t, s, "d", MustProperty("tier = 1")); pr2.Accepted {
				t.Fatal("second tier=1 grant accepted with one satisfying instance")
			}
			mustHealthy(t, s)
		})
	}
}

// TestIndexMayNestedShapes unit-tests the per-value index's conservative
// predicate oracle on the nested shapes the pre-filter and the fast-path
// adjacency lists rely on: Not over In, and disjunctions of conjunctions.
// may=false must imply no hostable instance can satisfy the expression;
// ok=false means the shape is not indexable and the caller must scan.
func TestIndexMayNestedShapes(t *testing.T) {
	byProp := map[string]map[predicate.Value]int{
		"tier": {predicate.Int(1): 2, predicate.Int(2): 1},
		"gpu":  {predicate.Bool(true): 1, predicate.Bool(false): 2},
	}
	cases := []struct {
		src     string
		may, ok bool
	}{
		// Not(In): exact — satisfiable iff some indexed value falls
		// outside the set; a property nothing hosts can never satisfy.
		{"not (tier in (1, 2))", false, true},
		{"not (tier in (2, 3))", true, true},
		{"not (zone in (1, 2))", false, true},
		{"not (id in (\"x\", \"y\"))", true, false},
		// Not(In) under Or, both orders.
		{"gpu or not (tier in (1, 2))", true, true},
		{"not (tier in (1, 2)) or not (tier in (1, 3))", true, true},
		{"not (tier in (1, 2)) or not (tier in (2, 1))", false, true},
		// Or-of-And: a definite no requires every branch definitely dead;
		// any live branch answers "may".
		{"(gpu and tier = 1) or (not gpu and tier = 2)", true, true},
		{"(tier = 3 and gpu) or (tier = 4 and not gpu)", false, true},
		{"(tier = 3 and gpu) or tier = 2", true, true},
		{"(tier = 1 and zone = 9) or tier = 3", false, true},
		// An unresolvable conjunct (the id builtin) leaves the And — and
		// so the Or — unresolvable unless another branch answers yes.
		{"(tier = 1 and id = \"x\") or tier = 3", true, false},
		{"(tier = 1 and id = \"x\") or tier = 2", true, true},
	}
	for _, c := range cases {
		e, err := predicate.Parse(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		may, ok := indexMay(e, byProp)
		if may != c.may || ok != c.ok {
			t.Errorf("indexMay(%q) = (may=%v, ok=%v), want (may=%v, ok=%v)", c.src, may, ok, c.may, c.ok)
		}
	}
}
