package core

import (
	"time"

	"repro/internal/resource"
	"repro/internal/txn"
)

// PromiseRequest is one <promise-request> element (§6): "A request
// identifier … a set of predicates … a set of resources … a promise
// duration … an optional set of promise identifiers that refer to existing
// promises that can be released if this new promise request is successfully
// granted."
//
// Each PromiseRequest is atomic: all predicates are promised or the entire
// request is rejected, and Releases are handed back only when the new
// promise is granted (§4, third requirement).
type PromiseRequest struct {
	// RequestID correlates this request with its response. Optional; the
	// manager echoes it back.
	RequestID string
	// Predicates are the conditions to guarantee, treated as one atomic
	// unit (§4: flight and rental car and hotel room all-or-nothing).
	Predicates []Predicate
	// Duration is how long the client wants the promise kept. The manager
	// may grant a shorter duration (§6: "the promise manager might …
	// offer a guarantee that expires sooner than the client wished").
	Duration time.Duration
	// MinDuration is the client's floor: the request is rejected (with a
	// clear reason) rather than granted for less. The manager's duration
	// cap and the request context's deadline both shorten grants — this is
	// how a client says a too-short guarantee is useless to it.
	MinDuration time.Duration
	// Releases lists existing promises to hand back atomically with the
	// grant; on rejection they remain in force.
	Releases []string
	// Priority is the request's tier (default 0). When the normal planner
	// finds no feasible assignment, a request may displace active
	// preemptible promises of strictly lower priority; equal or higher
	// tiers are never displaced.
	Priority int
	// Preemptible marks the granted promise as "spot" capacity: a later
	// higher-priority request may revoke it before its deadline, emitting
	// EventPreempted to its watchers.
	Preemptible bool
}

// EnvEntry names one promise forming the execution environment of an
// action, with its release option (§6 <environment>).
type EnvEntry struct {
	// PromiseID is the promise that must protect the action.
	PromiseID string
	// Release, when true, hands the promise back after the action
	// succeeds; the release and the action form an atomic unit (§4, second
	// requirement: buying the promised painting releases the availability
	// promise only if the purchase succeeds).
	Release bool
}

// ActionContext gives an application action transactional access to the
// resource manager. Actions are "coded without explicit knowledge of the PM
// or its promises" (§8); they see only the RM.
type ActionContext struct {
	// Tx is the request's ACID transaction.
	Tx *txn.Tx
	// Resources is the resource manager holding global system state.
	Resources *resource.Manager
}

// Action is an application service operation executed under the promise
// manager's transaction (§8: "any Action is passed on to the associated
// application"). The returned value is handed back to the client when the
// action succeeds and no promises are violated.
type Action func(ac *ActionContext) (any, error)

// NamedAction is a registered service operation taking string parameters —
// the shape of a §6 <action> element. service.Registry handlers have
// exactly this signature.
type NamedAction func(params map[string]string, ac *ActionContext) (string, error)

// ActionResolver maps action names to runnable operations, letting a local
// engine serve Request.ActionName exactly as a remote daemon resolves a
// wire <action> element. service.Registry implements it.
type ActionResolver interface {
	ResolveAction(name string) (NamedAction, error)
}

// Request is one client message to the promise manager, carrying any mix
// of promise requests, an environment, and an application action — §6:
// "each message may contain any subset of the different elements relating
// to promises, and these may be related to the message body or unrelated."
type Request struct {
	// Client identifies the promise client.
	Client string
	// PromiseRequests are processed in order, each atomically.
	PromiseRequests []PromiseRequest
	// Env lists the promises protecting Action, with release options.
	Env []EnvEntry
	// Action is the optional application request in the message body. It
	// cannot cross the wire; remote engines reject requests carrying it.
	Action Action
	// ActionName optionally names a registered service operation instead of
	// Action — the wire-representable form, resolved by the engine
	// (Config.Actions locally, the server's registry remotely), so one call
	// site works against local and remote engines alike. Setting both
	// ActionName and Action is an error.
	ActionName string
	// ActionParams are ActionName's parameters.
	ActionParams map[string]string
	// Resources optionally names the pools and instances Action touches.
	// The single-store Manager ignores it; the ShardedManager uses it to
	// route the action to the shard owning those resources (an action only
	// sees the resource state of the shard it runs on).
	Resources []string
}

// PromiseResponse is one <promise-response> element (§6): "A promise
// identifier … a promise result … a promise duration … a promise
// correlation which is the request identifier of the earlier promise
// request."
type PromiseResponse struct {
	// Correlation echoes the PromiseRequest's RequestID.
	Correlation string
	// Accepted reports grant or rejection.
	Accepted bool
	// PromiseID identifies the granted promise (empty on rejection).
	PromiseID string
	// Reason explains a rejection.
	Reason string
	// Expires is when the granted promise lapses.
	Expires time.Time
	// Counter carries the manager's counter-offer on rejection — the §6
	// future-work idea of responses like "accepted with the condition XX".
	// For anonymous predicates that failed on quantity, Counter holds the
	// largest quantities the manager could promise right now (one
	// predicate per failing pool, omitted when nothing is available).
	// Clients can resubmit the counter predicates directly; see
	// promises.Negotiate.
	Counter []Predicate
}

// Response is the manager's reply to a Request.
type Response struct {
	// Promises holds one response per PromiseRequest, in order.
	Promises []PromiseResponse
	// ActionResult is the action's return value when it ran and survived
	// the post-action promise check.
	ActionResult any
	// ActionErr reports action failure: the action's own error, an
	// environment error (ErrPromiseExpired, ErrPromiseNotFound,
	// ErrPromiseReleased), or ErrPromiseViolated when the post-action check
	// rolled the action back.
	ActionErr error
}

// Granted returns the promise ids of all accepted responses, a convenience
// for clients that requested several promises in one message.
func (r *Response) Granted() []string {
	var out []string
	for _, pr := range r.Promises {
		if pr.Accepted {
			out = append(out, pr.PromiseID)
		}
	}
	return out
}
