package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/failpoint"
)

// degGrant grants one quantity promise and returns its id ("" on reject or
// error; err carries the transport/engine failure).
func degGrant(ctx context.Context, e durEngine, client, pool string, dur time.Duration) (string, error) {
	resp, err := e.Execute(ctx, Request{Client: client, PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity(pool, 1)},
		Duration:   dur,
	}}})
	if err != nil {
		return "", err
	}
	if len(resp.Promises) == 0 || !resp.Promises[0].Accepted {
		return "", fmt.Errorf("grant rejected")
	}
	return resp.Promises[0].PromiseID, nil
}

// TestDegradedModeEntryReadsAndRecovery pins the degraded read-only
// contract end to end, deterministically (fake clock, failpoint — no
// sleeps): a persistent WAL sync failure trips Degraded on the first
// commit it fails; further grants and releases reject with ErrDegraded
// while CheckBatch and Watch keep serving; re-probes on the alarm cadence
// stay degraded while the fault persists and restore full service once it
// clears.
func TestDegradedModeEntryReadsAndRecovery(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			defer failpoint.Reset()
			ctx := context.Background()
			clk := clock.NewFake(durBase)
			e := openDur(t, t.TempDir(), shards, clk, DurabilityOptions{
				Sync:            SyncAlways,
				CheckpointEvery: -1, // isolate the re-probe cadence
				ReprobeEvery:    5 * time.Second,
			})
			defer e.Close()
			if err := e.CreatePool("widgets", 10, nil); err != nil {
				t.Fatal(err)
			}

			healthy, err := degGrant(ctx, e, "alice", "widgets", time.Hour)
			if err != nil {
				t.Fatalf("healthy grant: %v", err)
			}
			if h := e.(HealthReporter).Health(); h.Degraded {
				t.Fatalf("degraded before any failure: %+v", h)
			}

			// The disk stops answering fsync. The commit that first hits it
			// surfaces the durability failure and trips degraded mode.
			if err := failpoint.Arm("wal/sync=error(disk gone)"); err != nil {
				t.Fatal(err)
			}
			if _, err := degGrant(ctx, e, "alice", "widgets", time.Hour); err == nil {
				t.Fatal("grant with failing sync reported success")
			} else if errors.Is(err, ErrDegraded) {
				t.Fatalf("first failing commit must report 'not durable', not the degraded reject: %v", err)
			}
			h := e.(HealthReporter).Health()
			if !h.Degraded || h.Reason == "" {
				t.Fatalf("health after sync failure = %+v, want degraded with reason", h)
			}

			// Mutations now reject up front with the typed sentinel.
			if _, err := degGrant(ctx, e, "alice", "widgets", time.Hour); !errors.Is(err, ErrDegraded) {
				t.Fatalf("grant while degraded = %v, want ErrDegraded", err)
			}
			if err := e.Release(ctx, "alice", healthy); !errors.Is(err, ErrDegraded) {
				t.Fatalf("release while degraded = %v, want ErrDegraded", err)
			}

			// Reads stay up off committed snapshots.
			errs, err := e.CheckBatch(ctx, "alice", []string{healthy})
			if err != nil || errs[0] != nil {
				t.Fatalf("CheckBatch while degraded = %v / %v", err, errs)
			}
			if evs := drainReplay(t, e, 0); len(evs) == 0 {
				t.Fatal("Watch replay empty while degraded")
			}

			// A probe fired while the fault persists must not restore
			// service.
			clk.Advance(5 * time.Second)
			if h := e.(HealthReporter).Health(); !h.Degraded {
				t.Fatal("probe against a still-broken log restored service")
			}

			// Fault clears; the next probe restores service end to end.
			failpoint.Reset()
			clk.Advance(5 * time.Second)
			if h := e.(HealthReporter).Health(); h.Degraded {
				t.Fatalf("health after successful re-probe = %+v", h)
			}
			recovered, err := degGrant(ctx, e, "alice", "widgets", time.Hour)
			if err != nil {
				t.Fatalf("grant after recovery: %v", err)
			}
			if err := e.Release(ctx, "alice", recovered); err != nil {
				t.Fatalf("release after recovery: %v", err)
			}
		})
	}
}

// TestDegradedAppendFailureTrips covers the other trip source: an append
// failure latches inside the commit hook and the next durSync both
// surfaces it and flips health.
func TestDegradedAppendFailureTrips(t *testing.T) {
	defer failpoint.Reset()
	ctx := context.Background()
	clk := clock.NewFake(durBase)
	e := openDur(t, t.TempDir(), 1, clk, DurabilityOptions{
		Sync:            SyncAlways,
		CheckpointEvery: -1,
		ReprobeEvery:    time.Second,
	})
	defer e.Close()
	if err := e.CreatePool("widgets", 10, nil); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Arm("wal/append=error(no space)"); err != nil {
		t.Fatal(err)
	}
	if _, err := degGrant(ctx, e, "bob", "widgets", time.Hour); err == nil {
		t.Fatal("grant with failing append reported success")
	}
	if h := e.(HealthReporter).Health(); !h.Degraded {
		t.Fatal("append failure did not trip degraded mode")
	}
	failpoint.Reset()
	clk.Advance(time.Second)
	if _, err := degGrant(ctx, e, "bob", "widgets", time.Hour); err != nil {
		t.Fatalf("grant after recovery: %v", err)
	}
}

// TestDegradedRecoveryAfterRestart: a degraded engine that closes and
// reopens over the same directory comes back healthy (the re-probe
// checkpoint captured the full state, so recovery has nothing missing to
// replay) and serves the pre-failure grants.
func TestDegradedRecoveryAfterRestart(t *testing.T) {
	defer failpoint.Reset()
	ctx := context.Background()
	dir := t.TempDir()
	clk := clock.NewFake(durBase)
	e := openDur(t, dir, 1, clk, DurabilityOptions{
		Sync:            SyncAlways,
		CheckpointEvery: -1,
		ReprobeEvery:    time.Second,
	})
	if err := e.CreatePool("widgets", 10, nil); err != nil {
		t.Fatal(err)
	}
	healthy, err := degGrant(ctx, e, "carol", "widgets", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Arm("wal/sync=error(disk gone)"); err != nil {
		t.Fatal(err)
	}
	if _, err := degGrant(ctx, e, "carol", "widgets", time.Hour); err == nil {
		t.Fatal("grant with failing sync reported success")
	}
	failpoint.Reset()
	clk.Advance(time.Second) // recover via re-probe, then restart cleanly
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	e2 := openDur(t, dir, 1, clk, DurabilityOptions{Sync: SyncAlways})
	defer e2.Close()
	errs, err := e2.CheckBatch(ctx, "carol", []string{healthy})
	if err != nil || errs[0] != nil {
		t.Fatalf("recovered CheckBatch = %v / %v", err, errs)
	}
	if h := e2.(HealthReporter).Health(); h.Degraded {
		t.Fatalf("reopened engine degraded: %+v", h)
	}
}
