package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/predicate"
)

// newShardedT builds a sharded manager on a fake clock. The default shard
// count follows the CI matrix (testShards); scenarios that pin resources
// to specific shard indices set cfg.Shards explicitly.
func newShardedT(t *testing.T, cfg ShardedConfig) (*ShardedManager, *clock.Fake) {
	t.Helper()
	fake := clock.NewFake(time.Date(2007, 1, 7, 0, 0, 0, 0, time.UTC))
	if cfg.Clock == nil {
		cfg.Clock = fake
	}
	if cfg.Shards == 0 {
		cfg.Shards = testShards(4)
	}
	s, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, fake
}

// nameOnShard generates a resource id hashing to the given shard (modulo
// the actual shard count, so shard-count-generic tests still run under the
// single-shard CI matrix leg).
func nameOnShard(tb testing.TB, s *ShardedManager, shard int, base string) string {
	tb.Helper()
	shard %= s.NumShards()
	for i := 0; i < 100000; i++ {
		name := fmt.Sprintf("%s-%d", base, i)
		if s.ShardOf(name) == shard {
			return name
		}
	}
	tb.Fatalf("no name on shard %d", shard)
	return ""
}

func mustPool(t *testing.T, s *ShardedManager, id string, qty int64) {
	t.Helper()
	if err := s.CreatePool(id, qty, nil); err != nil {
		t.Fatal(err)
	}
}

func grantQty(t *testing.T, s *ShardedManager, client string, preds ...Predicate) PromiseResponse {
	t.Helper()
	resp, err := s.Execute(bg, Request{Client: client, PromiseRequests: []PromiseRequest{{Predicates: preds}}})
	if err != nil {
		t.Fatal(err)
	}
	return resp.Promises[0]
}

func mustHealthy(t *testing.T, s *ShardedManager) {
	t.Helper()
	rep, err := s.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("audit unhealthy: %s", rep)
	}
}

func TestShardedSingleShardGrantRelease(t *testing.T) {
	s, _ := newShardedT(t, ShardedConfig{})
	pool := nameOnShard(t, s, 2, "widgets")
	mustPool(t, s, pool, 10)

	pr := grantQty(t, s, "c", Quantity(pool, 4))
	if !pr.Accepted {
		t.Fatalf("rejected: %s", pr.Reason)
	}
	// Single-shard promises carry their owning shard in the id prefix.
	if want := fmt.Sprintf("%s%d-", shardIDPrefix, s.ShardOf(pool)); !strings.HasPrefix(pr.PromiseID, want) {
		t.Fatalf("promise id %q not issued by shard %d", pr.PromiseID, s.ShardOf(pool))
	}
	info, err := s.PromiseInfo(pr.PromiseID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Client != "c" || len(info.Predicates) != 1 {
		t.Fatalf("bad info: %+v", info)
	}
	// 4 reserved: 7 more must be rejected, 6 granted after release.
	if over := grantQty(t, s, "c", Quantity(pool, 7)); over.Accepted {
		t.Fatal("over-granted beyond capacity")
	}
	if _, err := s.Execute(bg, Request{Client: "c", Env: []EnvEntry{{PromiseID: pr.PromiseID, Release: true}}}); err != nil {
		t.Fatal(err)
	}
	if full := grantQty(t, s, "c", Quantity(pool, 10)); !full.Accepted {
		t.Fatalf("release did not free capacity: %s", full.Reason)
	}
	mustHealthy(t, s)
}

func TestShardedCrossShardAtomicGrant(t *testing.T) {
	s, _ := newShardedT(t, ShardedConfig{})
	a := nameOnShard(t, s, 0, "alpha")
	b := nameOnShard(t, s, 3, "bravo")
	mustPool(t, s, a, 10)
	mustPool(t, s, b, 10)

	pr := grantQty(t, s, "c", Quantity(a, 3), Quantity(b, 4))
	if !pr.Accepted {
		t.Fatalf("cross-shard grant rejected: %s", pr.Reason)
	}
	if s.ShardOf(a) != s.ShardOf(b) && !strings.HasPrefix(pr.PromiseID, "shp-") {
		t.Fatalf("expected composite id, got %q", pr.PromiseID)
	}
	info, err := s.PromiseInfo(pr.PromiseID)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Predicates) != 2 || info.Predicates[0].Pool != a || info.Predicates[1].Pool != b {
		t.Fatalf("composite reconstruction wrong: %+v", info.Predicates)
	}
	// Both shards hold the reservation.
	if over := grantQty(t, s, "c", Quantity(a, 8)); over.Accepted {
		t.Fatal("shard 0 reservation missing")
	}
	if over := grantQty(t, s, "c", Quantity(b, 7)); over.Accepted {
		t.Fatal("shard 3 reservation missing")
	}
	if errs := checkB(t, s, "c", []string{pr.PromiseID}); errs[0] != nil {
		t.Fatalf("composite not usable: %v", errs[0])
	}
	// Releasing the composite frees both shards atomically.
	if _, err := s.Execute(bg, Request{Client: "c", Env: []EnvEntry{{PromiseID: pr.PromiseID, Release: true}}}); err != nil {
		t.Fatal(err)
	}
	if full := grantQty(t, s, "c", Quantity(a, 10), Quantity(b, 10)); !full.Accepted {
		t.Fatalf("composite release leaked holds: %s", full.Reason)
	}
	// The single-store sentinel contract holds for composites too.
	if errs := checkB(t, s, "c", []string{pr.PromiseID}); !errors.Is(errs[0], ErrPromiseReleased) {
		t.Fatalf("released composite reports %v, want ErrPromiseReleased", errs[0])
	}
	mustHealthy(t, s)
}

func TestShardedCrossShardRejectionRollsBack(t *testing.T) {
	s, _ := newShardedT(t, ShardedConfig{})
	a := nameOnShard(t, s, 1, "first")
	b := nameOnShard(t, s, 2, "second")
	mustPool(t, s, a, 10)
	mustPool(t, s, b, 5)

	pr := grantQty(t, s, "c", Quantity(a, 3), Quantity(b, 99))
	if pr.Accepted {
		t.Fatal("granted beyond shard capacity")
	}
	if !strings.Contains(pr.Reason, b) {
		t.Fatalf("reason %q does not name the failing pool", pr.Reason)
	}
	// The sub-grant on a's shard must have been rolled back.
	if full := grantQty(t, s, "c", Quantity(a, 10)); !full.Accepted {
		t.Fatalf("rejected cross-shard grant leaked a reservation: %s", full.Reason)
	}
	mustHealthy(t, s)
}

func TestShardedReleasesSurviveRejectedGrant(t *testing.T) {
	s, _ := newShardedT(t, ShardedConfig{})
	a := nameOnShard(t, s, 0, "keep")
	b := nameOnShard(t, s, 1, "want")
	mustPool(t, s, a, 10)
	mustPool(t, s, b, 5)

	old := grantQty(t, s, "c", Quantity(a, 2))
	if !old.Accepted {
		t.Fatal(old.Reason)
	}
	pr, err := s.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity(b, 99)},
		Releases:   []string{old.PromiseID},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Promises[0].Accepted {
		t.Fatal("granted beyond capacity")
	}
	// §4: release targets stay in force when the grant is rejected.
	if errs := checkB(t, s, "c", []string{old.PromiseID}); errs[0] != nil {
		t.Fatalf("release target was consumed by a rejected grant: %v", errs[0])
	}
	mustHealthy(t, s)
}

func TestShardedCrossShardUpgradeReleasesOld(t *testing.T) {
	s, _ := newShardedT(t, ShardedConfig{})
	a := nameOnShard(t, s, 0, "up-a")
	b := nameOnShard(t, s, 2, "up-b")
	mustPool(t, s, a, 10)
	mustPool(t, s, b, 10)

	old := grantQty(t, s, "c", Quantity(a, 2), Quantity(b, 2))
	if !old.Accepted {
		t.Fatal(old.Reason)
	}
	resp, err := s.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity(a, 5), Quantity(b, 5)},
		Releases:   []string{old.PromiseID},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	up := resp.Promises[0]
	if !up.Accepted {
		t.Fatalf("upgrade rejected: %s", up.Reason)
	}
	if errs := checkB(t, s, "c", []string{old.PromiseID}); !errors.Is(errs[0], ErrPromiseReleased) {
		t.Fatalf("upgraded-away composite reports %v, want ErrPromiseReleased", errs[0])
	}
	// Exactly 5 reserved per pool now.
	if over := grantQty(t, s, "c", Quantity(a, 6)); over.Accepted {
		t.Fatal("old reservation leaked")
	}
	if fit := grantQty(t, s, "c", Quantity(a, 5), Quantity(b, 5)); !fit.Accepted {
		t.Fatalf("upgrade did not free old holds: %s", fit.Reason)
	}
	mustHealthy(t, s)
}

func TestShardedCrossShardUpgradeNeedsFreedCapacity(t *testing.T) {
	// The §4 upgrade that motivated the reserve/confirm pipeline: "release
	// 5, promise 8 from the freed 5", with the new grant spanning shards.
	// The request is only satisfiable if the release applies tentatively
	// before planning — the single-shot path PR 1 shipped rejected it.
	s, _ := newShardedT(t, ShardedConfig{})
	a := nameOnShard(t, s, 0, "tight-a")
	b := nameOnShard(t, s, 2, "tight-b")
	mustPool(t, s, a, 8)
	mustPool(t, s, b, 1)

	old := grantQty(t, s, "c", Quantity(a, 5))
	if !old.Accepted {
		t.Fatal(old.Reason)
	}
	resp, err := s.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity(a, 8), Quantity(b, 1)},
		Releases:   []string{old.PromiseID},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	up := resp.Promises[0]
	if !up.Accepted {
		t.Fatalf("cross-shard upgrade rejected despite freed capacity: %s", up.Reason)
	}
	if errs := checkB(t, s, "c", []string{old.PromiseID}); !errors.Is(errs[0], ErrPromiseReleased) {
		t.Fatalf("upgraded-away promise reports %v, want ErrPromiseReleased", errs[0])
	}
	// Everything is held by the upgrade now; releasing it frees it all.
	if over := grantQty(t, s, "c", Quantity(a, 1)); over.Accepted {
		t.Fatal("upgrade double-counted the freed capacity")
	}
	if _, err := s.Execute(bg, Request{Client: "c", Env: []EnvEntry{{PromiseID: up.PromiseID, Release: true}}}); err != nil {
		t.Fatal(err)
	}
	if full := grantQty(t, s, "c", Quantity(a, 8), Quantity(b, 1)); !full.Accepted {
		t.Fatalf("upgrade leaked holds: %s", full.Reason)
	}
	mustHealthy(t, s)
}

func TestShardedUpgradeAbortRestoresReleases(t *testing.T) {
	// Mid-pipeline abort: shard a's reservation tentatively applies the
	// release, then shard b rejects its slice. The abort must roll shard
	// a back so the released promise springs back untouched (§4).
	s, _ := newShardedT(t, ShardedConfig{})
	a := nameOnShard(t, s, 1, "abort-a")
	b := nameOnShard(t, s, 3, "abort-b")
	mustPool(t, s, a, 10)
	mustPool(t, s, b, 5)

	old := grantQty(t, s, "c", Quantity(a, 10))
	if !old.Accepted {
		t.Fatal(old.Reason)
	}
	resp, err := s.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity(a, 10), Quantity(b, 99)},
		Releases:   []string{old.PromiseID},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Promises[0].Accepted {
		t.Fatal("granted beyond shard b capacity")
	}
	// The release must not have stuck: old is still usable and still
	// holding all 10 units on shard a.
	if errs := checkB(t, s, "c", []string{old.PromiseID}); errs[0] != nil {
		t.Fatalf("release target consumed by aborted upgrade: %v", errs[0])
	}
	if over := grantQty(t, s, "c", Quantity(a, 1)); over.Accepted {
		t.Fatal("aborted upgrade leaked shard a's tentative release")
	}
	mustHealthy(t, s)
}

func TestShardedPropertyUpgradeAcrossShards(t *testing.T) {
	// An upgrade whose new property predicates are only jointly satisfiable
	// if the released promise's instance is freed first: x (shard 0) is the
	// only instance satisfying q, and the old promise holds it.
	s, _ := newShardedT(t, ShardedConfig{})
	x := nameOnShard(t, s, 0, "inst-x")
	y := nameOnShard(t, s, 2, "inst-y")
	if err := s.CreateInstance(x, map[string]predicate.Value{
		"p": predicate.Bool(true), "q": predicate.Bool(true),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateInstance(y, map[string]predicate.Value{
		"p": predicate.Bool(true), "q": predicate.Bool(false),
	}); err != nil {
		t.Fatal(err)
	}

	old := grantQty(t, s, "c", MustProperty("q"))
	if !old.Accepted {
		t.Fatal(old.Reason)
	}
	resp, err := s.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{MustProperty("p"), MustProperty("q")},
		Releases:   []string{old.PromiseID},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	up := resp.Promises[0]
	if !up.Accepted {
		t.Fatalf("property upgrade rejected despite freed instance: %s", up.Reason)
	}
	// q must be backed by x; p must have landed on y (the global match had
	// to place the two predicates on different shards).
	info, err := s.PromiseInfo(up.PromiseID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Assigned[1] != x || info.Assigned[0] != y {
		t.Fatalf("assignments = %v, want [%s %s]", info.Assigned, y, x)
	}
	mustHealthy(t, s)
}

func TestShardedNamedDisplacesPropertySlotAcrossShards(t *testing.T) {
	// The single-store semantics the pipeline must keep: a named predicate
	// may claim an instance tentatively allocated to a property promise,
	// as long as the displaced slot can be re-hosted — even when the only
	// other satisfying instance lives on a different shard. The slot's
	// sub-promise is then migrated between shards, keeping its id.
	s, _ := newShardedT(t, ShardedConfig{Shards: 4})
	x := nameOnShard(t, s, 0, "disp-x")
	y := nameOnShard(t, s, 2, "disp-y")
	for _, id := range []string{x, y} {
		if err := s.CreateInstance(id, map[string]predicate.Value{"p": predicate.Bool(true)}); err != nil {
			t.Fatal(err)
		}
	}

	prop := grantQty(t, s, "c", MustProperty("p"))
	if !prop.Accepted {
		t.Fatal(prop.Reason)
	}
	info, err := s.PromiseInfo(prop.PromiseID)
	if err != nil {
		t.Fatal(err)
	}
	taken := info.Assigned[0]
	other := x
	if taken == x {
		other = y
	}

	named := grantQty(t, s, "d", Named(taken))
	if !named.Accepted {
		t.Fatalf("named grant on property-held instance rejected: %s", named.Reason)
	}
	// The property promise survives, re-hosted on the other shard's
	// instance under the same id.
	if errs := checkB(t, s, "c", []string{prop.PromiseID}); errs[0] != nil {
		t.Fatalf("displaced property promise unusable: %v", errs[0])
	}
	info, err = s.PromiseInfo(prop.PromiseID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Assigned[0] != other {
		t.Fatalf("displaced slot assigned %q, want %q", info.Assigned[0], other)
	}
	// Both instances are now held: a third claim must fail, and releasing
	// the migrated promise must free its (new) instance.
	if dup := grantQty(t, s, "e", MustProperty("p")); dup.Accepted {
		t.Fatal("double-granted a held instance")
	}
	if _, err := s.Execute(bg, Request{Client: "c", Env: []EnvEntry{{PromiseID: prop.PromiseID, Release: true}}}); err != nil {
		t.Fatal(err)
	}
	if again := grantQty(t, s, "e", Named(other)); !again.Accepted {
		t.Fatalf("migrated promise's release did not free %s: %s", other, again.Reason)
	}
	mustHealthy(t, s)
}

func TestShardedCompositePartMigration(t *testing.T) {
	// A migrating slot that is part of a composite: the composite's
	// directory entry must follow the part to its new shard, so release,
	// checks and audit keep working on the whole.
	s, _ := newShardedT(t, ShardedConfig{Shards: 4})
	x := nameOnShard(t, s, 0, "cpm-x")
	y := nameOnShard(t, s, 2, "cpm-y")
	pool := nameOnShard(t, s, 1, "cpm-pool")
	for _, id := range []string{x, y} {
		if err := s.CreateInstance(id, map[string]predicate.Value{"p": predicate.Bool(true)}); err != nil {
			t.Fatal(err)
		}
	}
	mustPool(t, s, pool, 10)

	comp := grantQty(t, s, "c", MustProperty("p"), Quantity(pool, 3))
	if !comp.Accepted {
		t.Fatal(comp.Reason)
	}
	if !strings.HasPrefix(comp.PromiseID, "shp-") {
		t.Fatalf("expected composite, got %q", comp.PromiseID)
	}
	info, err := s.PromiseInfo(comp.PromiseID)
	if err != nil {
		t.Fatal(err)
	}
	taken := info.Assigned[0]

	// Claim the composite's instance by name, forcing its property part to
	// migrate to the other instance's shard.
	if named := grantQty(t, s, "d", Named(taken)); !named.Accepted {
		t.Fatalf("named claim rejected: %s", named.Reason)
	}
	if errs := checkB(t, s, "c", []string{comp.PromiseID}); errs[0] != nil {
		t.Fatalf("composite unusable after part migration: %v", errs[0])
	}
	info, err = s.PromiseInfo(comp.PromiseID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Assigned[0] == taken {
		t.Fatal("composite part not re-hosted")
	}
	mustHealthy(t, s) // audit walks the updated directory and moved table

	// Releasing the composite frees the migrated part on its new shard and
	// the escrow on the pool's shard.
	if _, err := s.Execute(bg, Request{Client: "c", Env: []EnvEntry{{PromiseID: comp.PromiseID, Release: true}}}); err != nil {
		t.Fatal(err)
	}
	if errs := checkB(t, s, "c", []string{comp.PromiseID}); !errors.Is(errs[0], ErrPromiseReleased) {
		t.Fatalf("released composite reports %v, want ErrPromiseReleased", errs[0])
	}
	if full := grantQty(t, s, "c", Quantity(pool, 10)); !full.Accepted {
		t.Fatalf("composite release leaked escrow: %s", full.Reason)
	}
	if free := grantQty(t, s, "c", MustProperty("p")); !free.Accepted {
		t.Fatalf("composite release leaked the migrated instance: %s", free.Reason)
	}
	mustHealthy(t, s)
}

func TestShardedPropertyAcrossShards(t *testing.T) {
	// Pinned shard count: the scenario places the one matching room on
	// shard 2 specifically.
	s, _ := newShardedT(t, ShardedConfig{Shards: 4})
	// Rooms scattered over shards; only one satisfies the predicate.
	for shard := 0; shard < s.NumShards(); shard++ {
		id := nameOnShard(t, s, shard, "room")
		props := map[string]predicate.Value{
			"floor": predicate.Int(int64(shard)),
			"view":  predicate.Bool(shard == 2),
		}
		if err := s.CreateInstance(id, props); err != nil {
			t.Fatal(err)
		}
	}
	pr := grantQty(t, s, "c", MustProperty("view and floor = 2"))
	if !pr.Accepted {
		t.Fatalf("property grant rejected: %s", pr.Reason)
	}
	// The only matching instance is promised now; a second request fails.
	if dup := grantQty(t, s, "c", MustProperty("view and floor = 2")); dup.Accepted {
		t.Fatal("double-granted the only matching instance")
	}
	if _, err := s.Execute(bg, Request{Client: "c", Env: []EnvEntry{{PromiseID: pr.PromiseID, Release: true}}}); err != nil {
		t.Fatal(err)
	}
	if again := grantQty(t, s, "c", MustProperty("view and floor = 2")); !again.Accepted {
		t.Fatalf("release did not free the instance: %s", again.Reason)
	}
	mustHealthy(t, s)
}

func TestShardedNamedAcrossShardsAtomic(t *testing.T) {
	s, _ := newShardedT(t, ShardedConfig{})
	a := nameOnShard(t, s, 0, "seat-a")
	b := nameOnShard(t, s, 3, "seat-b")
	for _, id := range []string{a, b} {
		if err := s.CreateInstance(id, nil); err != nil {
			t.Fatal(err)
		}
	}
	pr := grantQty(t, s, "c", Named(a), Named(b))
	if !pr.Accepted {
		t.Fatalf("cross-shard named grant rejected: %s", pr.Reason)
	}
	if solo := grantQty(t, s, "d", Named(a)); solo.Accepted {
		t.Fatal("instance double-granted")
	}
	if _, err := s.Execute(bg, Request{Client: "c", Env: []EnvEntry{{PromiseID: pr.PromiseID, Release: true}}}); err != nil {
		t.Fatal(err)
	}
	if solo := grantQty(t, s, "d", Named(a)); !solo.Accepted {
		t.Fatalf("instance not freed: %s", solo.Reason)
	}
	mustHealthy(t, s)
}

func TestShardedActionRoutedToResourceShard(t *testing.T) {
	s, _ := newShardedT(t, ShardedConfig{})
	pool := nameOnShard(t, s, 3, "stock")
	mustPool(t, s, pool, 10)

	pr := grantQty(t, s, "c", Quantity(pool, 5))
	if !pr.Accepted {
		t.Fatal(pr.Reason)
	}
	// Consume under the promise: action must land on shard 3 via the
	// Resources hint even though the env promise already routes there.
	resp, err := s.Execute(bg, Request{
		Client:    "c",
		Env:       []EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		Resources: []string{pool},
		Action: func(ac *ActionContext) (any, error) {
			return ac.Resources.AdjustPool(ac.Tx, pool, -5)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ActionErr != nil {
		t.Fatalf("action failed: %v", resp.ActionErr)
	}
	lvl, err := s.PoolLevel(pool)
	if err != nil {
		t.Fatal(err)
	}
	if lvl != 5 {
		t.Fatalf("pool level = %d, want 5", lvl)
	}
	if errs := checkB(t, s, "c", []string{pr.PromiseID}); !errors.Is(errs[0], ErrPromiseReleased) {
		t.Fatalf("promise not released with action: %v", errs[0])
	}
	mustHealthy(t, s)
}

func TestShardedActionFailureKeepsCrossShardEnv(t *testing.T) {
	s, _ := newShardedT(t, ShardedConfig{})
	a := nameOnShard(t, s, 0, "env-a")
	b := nameOnShard(t, s, 1, "env-b")
	mustPool(t, s, a, 10)
	mustPool(t, s, b, 10)
	pa := grantQty(t, s, "c", Quantity(a, 1))
	pb := grantQty(t, s, "c", Quantity(b, 1))

	boom := errors.New("boom")
	resp, err := s.Execute(bg, Request{
		Client: "c",
		Env: []EnvEntry{
			{PromiseID: pa.PromiseID, Release: true},
			{PromiseID: pb.PromiseID, Release: true},
		},
		Resources: []string{a},
		Action:    func(*ActionContext) (any, error) { return nil, boom },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.ActionErr, boom) {
		t.Fatalf("ActionErr = %v, want boom", resp.ActionErr)
	}
	// §4: the promises remain in force because the action failed.
	for i, err := range checkB(t, s, "c", []string{pa.PromiseID, pb.PromiseID}) {
		if err != nil {
			t.Fatalf("env promise %d not in force after failed action: %v", i, err)
		}
	}
	mustHealthy(t, s)
}

func TestShardedEnvReleaseAppliedOnActionSuccess(t *testing.T) {
	s, _ := newShardedT(t, ShardedConfig{})
	a := nameOnShard(t, s, 0, "rel-a")
	b := nameOnShard(t, s, 2, "rel-b")
	mustPool(t, s, a, 10)
	mustPool(t, s, b, 10)
	pa := grantQty(t, s, "c", Quantity(a, 1))
	pb := grantQty(t, s, "c", Quantity(b, 1))

	resp, err := s.Execute(bg, Request{
		Client: "c",
		Env: []EnvEntry{
			{PromiseID: pa.PromiseID, Release: true},
			{PromiseID: pb.PromiseID, Release: true},
		},
		Resources: []string{a},
		Action: func(ac *ActionContext) (any, error) {
			return ac.Resources.AdjustPool(ac.Tx, a, -1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ActionErr != nil {
		t.Fatal(resp.ActionErr)
	}
	for i, err := range checkB(t, s, "c", []string{pa.PromiseID, pb.PromiseID}) {
		if !errors.Is(err, ErrPromiseReleased) {
			t.Fatalf("env promise %d not released with successful action: %v", i, err)
		}
	}
	mustHealthy(t, s)
}

func TestShardedGrantBatch(t *testing.T) {
	s, _ := newShardedT(t, ShardedConfig{})
	var pools []string
	for shard := 0; shard < s.NumShards(); shard++ {
		p := nameOnShard(t, s, shard, "batch")
		mustPool(t, s, p, 100)
		pools = append(pools, p)
	}
	var reqs []PromiseRequest
	for i := 0; i < 12; i++ {
		reqs = append(reqs, PromiseRequest{
			RequestID:  fmt.Sprintf("r%d", i),
			Predicates: []Predicate{Quantity(pools[i%len(pools)], 1)},
		})
	}
	// One cross-shard request in the middle.
	reqs = append(reqs[:6], append([]PromiseRequest{{
		RequestID:  "cross",
		Predicates: []Predicate{Quantity(pools[0], 1), Quantity(pools[len(pools)-1], 1)},
	}}, reqs[6:]...)...)

	resps, err := s.GrantBatch(bg, "c", reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != len(reqs) {
		t.Fatalf("got %d responses for %d requests", len(resps), len(reqs))
	}
	ids := make([]string, len(resps))
	for i, pr := range resps {
		if !pr.Accepted {
			t.Fatalf("request %d rejected: %s", i, pr.Reason)
		}
		if pr.Correlation != reqs[i].RequestID {
			t.Fatalf("response %d correlates %q, want %q", i, pr.Correlation, reqs[i].RequestID)
		}
		ids[i] = pr.PromiseID
	}
	for i, err := range checkB(t, s, "c", ids) {
		if err != nil {
			t.Fatalf("promise %d unusable: %v", i, err)
		}
	}
	// Wrong client sees nothing.
	for i, err := range checkB(t, s, "intruder", ids) {
		if !errors.Is(err, ErrPromiseNotFound) {
			t.Fatalf("promise %d leaked to another client: %v", i, err)
		}
	}
	mustHealthy(t, s)
}

func TestShardedExpirySweepAcrossShards(t *testing.T) {
	s, fake := newShardedT(t, ShardedConfig{DefaultDuration: time.Minute})
	a := nameOnShard(t, s, 0, "ttl-a")
	b := nameOnShard(t, s, 1, "ttl-b")
	mustPool(t, s, a, 10)
	mustPool(t, s, b, 10)

	pr := grantQty(t, s, "c", Quantity(a, 10), Quantity(b, 10))
	if !pr.Accepted {
		t.Fatal(pr.Reason)
	}
	fake.Advance(2 * time.Minute)
	if err := s.Sweep(); err != nil {
		t.Fatal(err)
	}
	if errs := checkB(t, s, "c", []string{pr.PromiseID}); !errors.Is(errs[0], ErrPromiseExpired) {
		t.Fatalf("expired composite reports %v, want ErrPromiseExpired", errs[0])
	}
	if full := grantQty(t, s, "c", Quantity(a, 10), Quantity(b, 10)); !full.Accepted {
		t.Fatalf("expiry did not free holds: %s", full.Reason)
	}
	mustHealthy(t, s)
}

func TestShardedStatsAggregate(t *testing.T) {
	s, _ := newShardedT(t, ShardedConfig{})
	var pools []string
	for shard := 0; shard < s.NumShards(); shard++ {
		p := nameOnShard(t, s, shard, "stat")
		mustPool(t, s, p, 10)
		pools = append(pools, p)
	}
	for _, p := range pools {
		pr := grantQty(t, s, "c", Quantity(p, 1))
		if !pr.Accepted {
			t.Fatal(pr.Reason)
		}
	}
	st := s.Stats()
	if st.Grants != int64(len(pools)) {
		t.Fatalf("aggregate grants = %d, want %d", st.Grants, len(pools))
	}
	if st.Requests != int64(len(pools)) {
		t.Fatalf("aggregate requests = %d, want %d", st.Requests, len(pools))
	}
	if st.Latency.Count != int(st.Requests) {
		t.Fatalf("latency count = %d, want %d", st.Latency.Count, st.Requests)
	}
	// Per-shard histograms: one request landed on each shard.
	if len(st.PerShard) != s.NumShards() {
		t.Fatalf("len(PerShard) = %d, want %d", len(st.PerShard), s.NumShards())
	}
	for i, ps := range st.PerShard {
		if ps.Shard != i {
			t.Fatalf("PerShard[%d].Shard = %d", i, ps.Shard)
		}
		if ps.Requests != 1 || ps.Grants != 1 || ps.Latency.Count != 1 {
			t.Fatalf("shard %d stats = %+v, want one granted request", i, ps)
		}
	}
	// One request per shard is a perfectly balanced load.
	if st.Imbalance != 1.0 {
		t.Fatalf("Imbalance = %v, want 1.0", st.Imbalance)
	}
	if g := s.Imbalance(); g != st.Imbalance {
		t.Fatalf("Imbalance gauge = %v, want %v", g, st.Imbalance)
	}

	// Skew the load and the gauge must follow: all shards' samples still
	// merge into one exact summary.
	for i := 0; i < 8; i++ {
		if pr := grantQty(t, s, "c", Quantity(pools[0], 1)); !pr.Accepted {
			t.Fatal(pr.Reason)
		}
	}
	st = s.Stats()
	if s.NumShards() > 1 && st.Imbalance <= 1.0 {
		t.Fatalf("Imbalance = %v after skewing shard 0, want > 1.0", st.Imbalance)
	}
	if st.Latency.Count != int(st.Requests) {
		t.Fatalf("merged latency count = %d, want %d", st.Latency.Count, st.Requests)
	}
}

func TestShardedUpgradeInCrossShardMessage(t *testing.T) {
	// A same-shard upgrade (release old, grant bigger from the freed
	// capacity) must keep §4 semantics even when another promise request
	// in the same message forces the cross-shard path.
	s, _ := newShardedT(t, ShardedConfig{})
	a := nameOnShard(t, s, 0, "msg-a")
	b := nameOnShard(t, s, 1, "msg-b")
	mustPool(t, s, a, 100)
	mustPool(t, s, b, 10)

	old := grantQty(t, s, "c", Quantity(a, 100))
	if !old.Accepted {
		t.Fatal(old.Reason)
	}
	resp, err := s.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{
		{Predicates: []Predicate{Quantity(a, 100)}, Releases: []string{old.PromiseID}},
		{Predicates: []Predicate{Quantity(b, 1)}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Promises[0].Accepted {
		t.Fatalf("same-shard upgrade lost release-with-grant semantics in a cross-shard message: %s", resp.Promises[0].Reason)
	}
	if !resp.Promises[1].Accepted {
		t.Fatalf("sibling request rejected: %s", resp.Promises[1].Reason)
	}
	if errs := checkB(t, s, "c", []string{old.PromiseID}); !errors.Is(errs[0], ErrPromiseReleased) {
		t.Fatalf("old promise reports %v, want ErrPromiseReleased", errs[0])
	}
	mustHealthy(t, s)
}

func TestShardedSingleShardConfigMatchesManager(t *testing.T) {
	// Shards=1 must behave exactly like the single-store manager,
	// including §4 upgrade semantics (releases counted as available).
	s, _ := newShardedT(t, ShardedConfig{Shards: 1})
	mustPool(t, s, "w", 10)
	old := grantQty(t, s, "c", Quantity("w", 10))
	if !old.Accepted {
		t.Fatal(old.Reason)
	}
	resp, err := s.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("w", 10)},
		Releases:   []string{old.PromiseID},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Promises[0].Accepted {
		t.Fatalf("same-shard upgrade must count released capacity: %s", resp.Promises[0].Reason)
	}
	mustHealthy(t, s)
}
