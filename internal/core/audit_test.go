package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/predicate"
	"repro/internal/resource"
	"repro/internal/softlock"
	"repro/internal/txn"
)

func TestAuditReportString(t *testing.T) {
	healthy := &AuditReport{ActivePromises: 2, Slots: 3}
	if s := healthy.String(); !strings.Contains(s, "healthy") || !strings.Contains(s, "2 active") {
		t.Fatalf("healthy string = %q", s)
	}
	sick := &AuditReport{ActivePromises: 1, Problems: []string{"escrow: overdrawn"}}
	if s := sick.String(); !strings.Contains(s, "1 problems") {
		t.Fatalf("sick string = %q", s)
	}
}

func TestAuditHealthyOnFreshManager(t *testing.T) {
	m, _ := newManager(t, Config{})
	rep, err := m.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() || rep.ActivePromises != 0 {
		t.Fatalf("fresh audit: %s", rep)
	}
}

func TestAuditHealthyAfterMixedActivity(t *testing.T) {
	m, fake := newManager(t, Config{DefaultDuration: time.Minute})
	seed(t, m, func(tx *txn.Tx) error {
		rm := m.Resources()
		if err := rm.CreatePool(tx, "p", 20, nil); err != nil {
			return err
		}
		if err := rm.CreateInstance(tx, "i1", nil); err != nil {
			return err
		}
		return rm.CreateInstance(tx, "r1", map[string]predicate.Value{"x": predicate.Int(1)})
	})
	pr1 := grantOne(t, m, requestQuantity("a", "p", 5))
	_ = grantOne(t, m, Request{Client: "b", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Named("i1"), MustProperty("x = 1")},
	}}})
	// Release one, expire nothing yet.
	if _, err := m.Execute(bg, Request{Client: "a", Env: []EnvEntry{{PromiseID: pr1.PromiseID, Release: true}}}); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("audit after activity: %s", rep)
	}
	if rep.ActivePromises != 1 || rep.Slots != 2 {
		t.Fatalf("counts: %s", rep)
	}
	// Expiry sweep inside Audit handles lapsed promises.
	fake.Advance(2 * time.Minute)
	rep, err = m.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() || rep.ActivePromises != 0 {
		t.Fatalf("audit after expiry: %s", rep)
	}
}

func TestAuditDetectsCorruption(t *testing.T) {
	m, _ := newManager(t, Config{DefaultDuration: time.Hour})
	seed(t, m, func(tx *txn.Tx) error {
		rm := m.Resources()
		if err := rm.CreatePool(tx, "p", 10, nil); err != nil {
			return err
		}
		return rm.CreateInstance(tx, "i1", nil)
	})
	_ = grantOne(t, m, requestQuantity("a", "p", 8))
	named := grantOne(t, m, Request{Client: "b", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Named("i1")},
	}}})

	// Corruption 1: drain the pool behind the manager's back.
	seed(t, m, func(tx *txn.Tx) error {
		_, err := m.Resources().AdjustPool(tx, "p", -5)
		return err
	})
	rep, err := m.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy() {
		t.Fatal("audit missed escrow overdraw")
	}

	// Restore, then corruption 2: steal the named instance's tag.
	seed(t, m, func(tx *txn.Tx) error {
		_, err := m.Resources().AdjustPool(tx, "p", 5)
		return err
	})
	seed(t, m, func(tx *txn.Tx) error {
		return tx.Put(softlock.Table, "i1", fakeHolderRow("mallory"))
	})
	rep, err = m.Audit()
	if err != nil {
		t.Fatal(err)
	}
	healthyNamed := true
	for _, p := range rep.Problems {
		if strings.Contains(p, named.PromiseID) || strings.Contains(p, "mallory") || strings.Contains(p, "dead slot") {
			healthyNamed = false
		}
	}
	if healthyNamed {
		t.Fatalf("audit missed stolen tag: %s", rep)
	}
}

// fakeHolderRow builds a softlock holder row through its exported surface:
// acquire in a scratch store and copy the row out via a scan.
func fakeHolderRow(holder string) txn.Row {
	store := txn.NewStore()
	rm, err := resource.NewManager(store)
	if err != nil {
		panic(err)
	}
	tags, err := softlock.NewTags(store, rm)
	if err != nil {
		panic(err)
	}
	tx := store.Begin(txn.Block)
	if err := rm.CreateInstance(tx, "scratch", nil); err != nil {
		panic(err)
	}
	if err := tags.Acquire(tx, "scratch", holder); err != nil {
		panic(err)
	}
	var row txn.Row
	if err := tx.Scan(softlock.Table, func(_ string, r txn.Row) bool { row = r; return false }); err != nil {
		panic(err)
	}
	_ = tx.Commit()
	return row
}

func TestAuditDetectsLeakedReservation(t *testing.T) {
	// A reservation held by a slot of a promise that no longer exists.
	m, _ := newManager(t, Config{DefaultDuration: time.Hour})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 10, nil)
	})
	seed(t, m, func(tx *txn.Tx) error {
		return m.ledger.Reserve(tx, "p", "prm-ghost#0", 3)
	})
	rep, err := m.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy() {
		t.Fatal("audit missed leaked reservation")
	}
}

// TestQuickSoakAuditStaysHealthy drives random operation sequences against
// one manager and audits after every operation: the system must never drift
// into an inconsistent state, whatever the interleaving of grants,
// releases, modifies, purchases, rogue actions and expiry.
func TestQuickSoakAuditStaysHealthy(t *testing.T) {
	f := func(seed64 int64) bool {
		r := rand.New(rand.NewSource(seed64))
		m, fake := newManager(t, Config{DefaultDuration: time.Minute})
		seed(t, m, func(tx *txn.Tx) error {
			rm := m.Resources()
			if err := rm.CreatePool(tx, "p", 30, nil); err != nil {
				return err
			}
			for i := 0; i < 4; i++ {
				if err := rm.CreateInstance(tx, fmt.Sprintf("i%d", i), map[string]predicate.Value{
					"x": predicate.Int(int64(i % 2)),
				}); err != nil {
					return err
				}
			}
			return nil
		})
		var held []string
		for step := 0; step < 40; step++ {
			switch r.Intn(6) {
			case 0: // grant anonymous
				resp, err := m.Execute(bg, requestQuantity("c", "p", int64(1+r.Intn(8))))
				if err != nil {
					t.Logf("grant: %v", err)
					return false
				}
				if resp.Promises[0].Accepted {
					held = append(held, resp.Promises[0].PromiseID)
				}
			case 1: // grant named or property
				var pred Predicate
				if r.Intn(2) == 0 {
					pred = Named(fmt.Sprintf("i%d", r.Intn(4)))
				} else {
					pred = MustProperty(fmt.Sprintf("x = %d", r.Intn(2)))
				}
				resp, err := m.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
					Predicates: []Predicate{pred},
				}}})
				if err != nil {
					t.Logf("grant2: %v", err)
					return false
				}
				if resp.Promises[0].Accepted {
					held = append(held, resp.Promises[0].PromiseID)
				}
			case 2: // release one
				if len(held) > 0 {
					idx := r.Intn(len(held))
					_, err := m.Execute(bg, Request{Client: "c", Env: []EnvEntry{{PromiseID: held[idx], Release: true}}})
					if err != nil {
						t.Logf("release: %v", err)
						return false
					}
					held = append(held[:idx], held[idx+1:]...)
				}
			case 3: // modify (upgrade/downgrade) one
				if len(held) > 0 {
					idx := r.Intn(len(held))
					resp, err := m.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
						Predicates: []Predicate{Quantity("p", int64(1+r.Intn(8)))},
						Releases:   []string{held[idx]},
					}}})
					if err != nil {
						t.Logf("modify: %v", err)
						return false
					}
					if resp.Promises[0].Accepted {
						held[idx] = resp.Promises[0].PromiseID
					}
				}
			case 4: // action (possibly violating; rolled back if so)
				delta := int64(-(1 + r.Intn(5)))
				_, err := m.Execute(bg, Request{Client: "c", Action: func(ac *ActionContext) (any, error) {
					_, err := ac.Resources.AdjustPool(ac.Tx, "p", delta)
					return nil, err
				}})
				if err != nil {
					t.Logf("action: %v", err)
					return false
				}
			case 5: // time passes
				fake.Advance(time.Duration(r.Intn(40)) * time.Second)
			}
			rep, err := m.Audit()
			if err != nil {
				t.Logf("audit err: %v", err)
				return false
			}
			if !rep.Healthy() {
				t.Logf("seed %d step %d: %s", seed64, step, rep)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSoakThenAudit(t *testing.T) {
	m, _ := newManager(t, Config{DefaultDuration: time.Hour})
	seed(t, m, func(tx *txn.Tx) error {
		rm := m.Resources()
		if err := rm.CreatePool(tx, "p", 50, nil); err != nil {
			return err
		}
		for i := 0; i < 6; i++ {
			if err := rm.CreateInstance(tx, fmt.Sprintf("i%d", i), map[string]predicate.Value{
				"x": predicate.Int(int64(i % 3)),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 30; i++ {
				var pred Predicate
				switch r.Intn(3) {
				case 0:
					pred = Quantity("p", int64(1+r.Intn(4)))
				case 1:
					pred = Named(fmt.Sprintf("i%d", r.Intn(6)))
				default:
					pred = MustProperty(fmt.Sprintf("x = %d", r.Intn(3)))
				}
				resp, err := m.Execute(bg, Request{Client: fmt.Sprintf("w%d", w), PromiseRequests: []PromiseRequest{{
					Predicates: []Predicate{pred},
				}}})
				if err != nil {
					t.Error(err)
					return
				}
				pr := resp.Promises[0]
				if pr.Accepted && r.Intn(3) > 0 {
					if _, err := m.Execute(bg, Request{Client: fmt.Sprintf("w%d", w),
						Env: []EnvEntry{{PromiseID: pr.PromiseID, Release: true}}}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	rep, err := m.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("concurrent soak left inconsistent state: %s", rep)
	}
}
