package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/predicate"
	"repro/internal/txn"
)

// preemptEngine is the slice of the engine surface these tests drive,
// satisfied by both *Manager and *ShardedManager.
type preemptEngine interface {
	GrantBatch(ctx context.Context, client string, reqs []PromiseRequest) ([]PromiseResponse, error)
	CheckBatch(ctx context.Context, client string, ids []string) ([]error, error)
	Release(ctx context.Context, client string, ids ...string) error
	Watch(ctx context.Context, opts WatchOptions) (<-chan Event, error)
	Audit() (*AuditReport, error)
	Close() error
}

// newPreemptManager builds a manager (sharded or single per shards) on a
// fake clock.
func newPreemptManager(t *testing.T, shards int) (preemptEngine, *clock.Fake) {
	t.Helper()
	fake := clock.NewFake(time.Date(2007, 1, 7, 0, 0, 0, 0, time.UTC))
	if shards > 1 {
		m, err := NewSharded(ShardedConfig{Shards: shards, Clock: fake, DefaultDuration: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		return m, fake
	}
	m, err := New(Config{Clock: fake, DefaultDuration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	return m, fake
}

func seedPool(t *testing.T, e preemptEngine, pool string, cap int64) {
	t.Helper()
	switch m := e.(type) {
	case *Manager:
		tx := m.Store().Begin(txn.Block)
		if err := m.Resources().CreatePool(tx, pool, cap, nil); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	case *ShardedManager:
		if err := m.CreatePool(pool, cap, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func pGrant(t *testing.T, e preemptEngine, client string, pr PromiseRequest) PromiseResponse {
	t.Helper()
	resps, err := e.GrantBatch(bg, client, []PromiseRequest{pr})
	if err != nil {
		t.Fatal(err)
	}
	return resps[0]
}

// The headline pin: a high-priority grant over a fully spot-held pool
// displaces the minimal victim set, oldest deadline first, and leaves the
// other holds untouched.
func TestPreemptionDisplacesMinimalVictimSet(t *testing.T) {
	for _, shards := range []int{1, testShards(8)} {
		e, _ := newPreemptManager(t, shards)
		defer e.Close()
		seedPool(t, e, "gpus", 4)

		// Four spot holds of one unit each, deadlines staggered so the
		// victim order is unambiguous: s1 expires first, s4 last.
		var spot [4]string
		for i := range spot {
			r := pGrant(t, e, "spot", PromiseRequest{
				Predicates:  []Predicate{Quantity("gpus", 1)},
				Duration:    time.Duration(i+1) * time.Minute,
				Preemptible: true,
			})
			if !r.Accepted {
				t.Fatalf("shards=%d: spot hold %d rejected: %s", shards, i, r.Reason)
			}
			spot[i] = r.PromiseID
		}

		// Tier 0 cannot displace anything even though every hold is spot.
		r := pGrant(t, e, "od", PromiseRequest{
			Predicates: []Predicate{Quantity("gpus", 2)}, Duration: time.Minute,
		})
		if r.Accepted {
			t.Fatalf("shards=%d: tier-0 grant displaced spot capacity", shards)
		}

		// Tier 1 asking for 2 units displaces exactly the two
		// earliest-expiring holds.
		r = pGrant(t, e, "od", PromiseRequest{
			Predicates: []Predicate{Quantity("gpus", 2)}, Duration: time.Minute, Priority: 1,
		})
		if !r.Accepted {
			t.Fatalf("shards=%d: tier-1 grant rejected over spot-held pool: %s", shards, r.Reason)
		}
		verdicts, err := e.CheckBatch(bg, "spot", spot[:])
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range verdicts {
			wantGone := i < 2
			if wantGone && !errors.Is(v, ErrPromisePreempted) {
				t.Errorf("shards=%d: spot[%d] verdict %v, want preempted", shards, i, v)
			}
			if !wantGone && v != nil {
				t.Errorf("shards=%d: spot[%d] verdict %v, want usable (not a victim)", shards, i, v)
			}
		}

		// The pool is exactly full again: one more unit is unavailable at
		// tier 0, and the two surviving holds plus the grant account for it.
		if r := pGrant(t, e, "od", PromiseRequest{
			Predicates: []Predicate{Quantity("gpus", 1)}, Duration: time.Minute,
		}); r.Accepted {
			t.Fatalf("shards=%d: pool overcommitted after preemption", shards)
		}
	}
}

// Equal or lower tiers never displace: a tier-1 request must not preempt
// tier-1 spot holds, and nothing preempts non-preemptible holds.
func TestEqualOrLowerPriorityNeverPreempts(t *testing.T) {
	for _, shards := range []int{1, testShards(8)} {
		e, _ := newPreemptManager(t, shards)
		defer e.Close()
		seedPool(t, e, "gpus", 2)

		spot := pGrant(t, e, "spot", PromiseRequest{
			Predicates: []Predicate{Quantity("gpus", 2)}, Duration: time.Hour,
			Priority: 1, Preemptible: true,
		})
		if !spot.Accepted {
			t.Fatalf("shards=%d: seed grant rejected: %s", shards, spot.Reason)
		}

		// Same tier: no displacement.
		if r := pGrant(t, e, "od", PromiseRequest{
			Predicates: []Predicate{Quantity("gpus", 1)}, Duration: time.Minute, Priority: 1,
		}); r.Accepted {
			t.Fatalf("shards=%d: tier-1 request displaced a tier-1 hold", shards)
		}
		// Lower tier: no displacement.
		if r := pGrant(t, e, "od", PromiseRequest{
			Predicates: []Predicate{Quantity("gpus", 1)}, Duration: time.Minute,
		}); r.Accepted {
			t.Fatalf("shards=%d: tier-0 request displaced a tier-1 hold", shards)
		}
		// Higher tier over a NON-preemptible hold: no displacement.
		if err := e.Release(bg, "spot", spot.PromiseID); err != nil {
			t.Fatal(err)
		}
		firm := pGrant(t, e, "firm", PromiseRequest{
			Predicates: []Predicate{Quantity("gpus", 2)}, Duration: time.Hour,
		})
		if !firm.Accepted {
			t.Fatalf("shards=%d: firm grant rejected: %s", shards, firm.Reason)
		}
		if r := pGrant(t, e, "od", PromiseRequest{
			Predicates: []Predicate{Quantity("gpus", 1)}, Duration: time.Minute, Priority: 5,
		}); r.Accepted {
			t.Fatalf("shards=%d: tier-5 request displaced a non-preemptible hold", shards)
		}
		if v, err := e.CheckBatch(bg, "firm", []string{firm.PromiseID}); err != nil || v[0] != nil {
			t.Fatalf("shards=%d: firm hold disturbed: %v %v", shards, err, v)
		}
	}
}

// Victims observe EventPreempted on a local Watch stream, annotated with
// the displacing promise id and its tier.
func TestPreemptedEventOnWatch(t *testing.T) {
	for _, shards := range []int{1, testShards(8)} {
		e, _ := newPreemptManager(t, shards)
		defer e.Close()
		seedPool(t, e, "gpus", 1)

		spot := pGrant(t, e, "spot", PromiseRequest{
			Predicates: []Predicate{Quantity("gpus", 1)}, Duration: time.Hour, Preemptible: true,
		})
		if !spot.Accepted {
			t.Fatalf("shards=%d: spot grant rejected: %s", shards, spot.Reason)
		}
		events, err := e.Watch(bg, WatchOptions{Types: []EventType{EventPreempted}})
		if err != nil {
			t.Fatal(err)
		}
		od := pGrant(t, e, "od", PromiseRequest{
			Predicates: []Predicate{Quantity("gpus", 1)}, Duration: time.Minute, Priority: 2,
		})
		if !od.Accepted {
			t.Fatalf("shards=%d: displacing grant rejected: %s", shards, od.Reason)
		}
		select {
		case ev := <-events:
			if ev.Type != EventPreempted || ev.PromiseID != spot.PromiseID {
				t.Fatalf("shards=%d: event %+v, want preempted %s", shards, ev, spot.PromiseID)
			}
			if ev.By != od.PromiseID {
				t.Errorf("shards=%d: event By=%q, want displacing id %s", shards, ev.By, od.PromiseID)
			}
			if ev.Priority != 2 {
				t.Errorf("shards=%d: event Priority=%d, want 2", shards, ev.Priority)
			}
			if ev.Client != "spot" {
				t.Errorf("shards=%d: event Client=%q, want the victim's owner", shards, ev.Client)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("shards=%d: no preempted event", shards)
		}
	}
}

// An aborted cross-shard preempting reservation restores every victim: the
// revocations live inside the reservation transactions, so FedAbort brings
// the spot holds back untouched.
func TestFedAbortRestoresPreemptionVictims(t *testing.T) {
	fake := clock.NewFake(time.Date(2007, 1, 7, 0, 0, 0, 0, time.UTC))
	m, err := NewSharded(ShardedConfig{Shards: testShards(8), Clock: fake, DefaultDuration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Two pools, likely on different shards at 8; the reserve spans both.
	for _, p := range []string{"gpus-a", "gpus-b"} {
		if err := m.CreatePool(p, 2, nil); err != nil {
			t.Fatal(err)
		}
	}
	var spots []string
	for _, p := range []string{"gpus-a", "gpus-b"} {
		r := pGrant(t, m, "spot", PromiseRequest{
			Predicates: []Predicate{Quantity(p, 2)}, Duration: time.Hour, Preemptible: true,
		})
		if !r.Accepted {
			t.Fatalf("spot hold on %s rejected: %s", p, r.Reason)
		}
		spots = append(spots, r.PromiseID)
	}

	res, err := m.FedReserve(bg, "od", FedReserveSpec{
		Predicates: []Predicate{Quantity("gpus-a", 1), Quantity("gpus-b", 1)},
		PredIdx:    []int{0, 1},
		Duration:   time.Minute,
		Priority:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject != nil {
		t.Fatalf("preempting reserve rejected: %s", res.Reject.Reason)
	}
	// Mid-pipeline the victims are revoked; the abort must restore both.
	m.FedAbort(res.SessionID)
	verdicts, err := m.CheckBatch(bg, "spot", spots)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range verdicts {
		if v != nil {
			t.Errorf("victim %d not restored after abort: %v", i, v)
		}
	}
	// Full spot capacity still held: a tier-0 ask for one more unit fails.
	for _, p := range []string{"gpus-a", "gpus-b"} {
		if r := pGrant(t, m, "od", PromiseRequest{
			Predicates: []Predicate{Quantity(p, 1)}, Duration: time.Minute,
		}); r.Accepted {
			t.Fatalf("pool %s has free capacity after abort; victims not fully restored", p)
		}
	}
	if rep, err := m.Audit(); err != nil || !rep.Healthy() {
		t.Fatalf("audit after abort: %v %v", err, rep)
	}
}

// DefaultPriority stamps requests that name no tier, on both engines.
func TestDefaultPriorityApplies(t *testing.T) {
	fake := clock.NewFake(time.Date(2007, 1, 7, 0, 0, 0, 0, time.UTC))
	m, err := New(Config{Clock: fake, DefaultDuration: time.Hour, DefaultPriority: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	tx := m.Store().Begin(txn.Block)
	if err := m.Resources().CreatePool(tx, "gpus", 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	spot := pGrant(t, m, "spot", PromiseRequest{
		Predicates: []Predicate{Quantity("gpus", 1)}, Duration: time.Hour, Preemptible: true,
		Priority: -1, // pin below the default so the next request's default tier wins
	})
	if !spot.Accepted {
		t.Fatalf("spot grant rejected: %s", spot.Reason)
	}
	// No explicit tier: the manager's DefaultPriority (1) applies and
	// displaces the lower-tier hold.
	od := pGrant(t, m, "od", PromiseRequest{
		Predicates: []Predicate{Quantity("gpus", 1)}, Duration: time.Minute,
	})
	if !od.Accepted {
		t.Fatalf("default-tier grant rejected: %s", od.Reason)
	}
	if v, err := m.CheckBatch(bg, "spot", []string{spot.PromiseID}); err != nil || !errors.Is(v[0], ErrPromisePreempted) {
		t.Fatalf("spot verdict %v %v, want preempted", v, err)
	}
}

// Property-view preemption: a selective request displaces the spot holder
// pinned to the only instance that can serve it, via the persistent matcher
// state, on both engine shapes.
func TestPropertyPreemptionDisplacesPinnedHolder(t *testing.T) {
	for _, shards := range []int{1, testShards(8)} {
		e, _ := newPreemptManager(t, shards)
		defer e.Close()
		props := func(color string, big bool) map[string]predicate.Value {
			return map[string]predicate.Value{"color": predicate.Str(color), "big": predicate.Bool(big)}
		}
		switch m := e.(type) {
		case *Manager:
			tx := m.Store().Begin(txn.Block)
			if err := m.Resources().CreateInstance(tx, "i-red-big", props("red", true)); err != nil {
				t.Fatal(err)
			}
			if err := m.Resources().CreateInstance(tx, "i-red", props("red", false)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		case *ShardedManager:
			if err := m.CreateInstance("i-red-big", props("red", true)); err != nil {
				t.Fatal(err)
			}
			if err := m.CreateInstance("i-red", props("red", false)); err != nil {
				t.Fatal(err)
			}
		}
		// Two spot holds pin both red instances (the matcher may place them
		// either way round).
		var spots []string
		for i := 0; i < 2; i++ {
			r := pGrant(t, e, "spot", PromiseRequest{
				Predicates:  []Predicate{MustProperty(`color = "red"`)},
				Duration:    time.Duration(i+1) * time.Minute,
				Preemptible: true,
			})
			if !r.Accepted {
				t.Fatalf("shards=%d: spot property hold %d rejected: %s", shards, i, r.Reason)
			}
			spots = append(spots, r.PromiseID)
		}
		// The selective request can only be served by i-red-big; no
		// rearrangement helps (both instances are pinned), so the holder of
		// i-red-big must be displaced — and only that holder.
		r := pGrant(t, e, "od", PromiseRequest{
			Predicates: []Predicate{MustProperty(`big`)}, Duration: time.Minute, Priority: 1,
		})
		if !r.Accepted {
			t.Fatalf("shards=%d: selective tier-1 grant rejected: %s", shards, r.Reason)
		}
		verdicts, err := e.CheckBatch(bg, "spot", spots)
		if err != nil {
			t.Fatal(err)
		}
		gone := 0
		for _, v := range verdicts {
			if errors.Is(v, ErrPromisePreempted) {
				gone++
			} else if v != nil {
				t.Errorf("shards=%d: unexpected victim verdict %v", shards, v)
			}
		}
		if gone != 1 {
			t.Fatalf("shards=%d: %d spot holds preempted, want exactly 1", shards, gone)
		}
	}
}
