package core

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/txn"
)

// TablePromises is the store table holding the promise table of §8: "The
// promise manager keeps a record of all non-expired promises and their
// predicates in a 'promise table'." Only active promises live here — the
// structures scanned on every request (expiry sweep, promise checking) must
// stay proportional to the number of live promises, not to history.
const TablePromises = "promises"

// TablePromisesDone holds released and expired promises, accessed only by
// key (so clients still receive the precise promise-released /
// promise-expired errors of §2 when they reuse an old id). It is never
// scanned on the request path.
const TablePromisesDone = "promises_done"

// State is the lifecycle state of a promise.
type State int

// Promise states.
const (
	// Active promises constrain resource availability.
	Active State = iota
	// Released promises were handed back by the client.
	Released
	// Expired promises passed their duration (§2: "Promises do not last
	// forever").
	Expired
	// Preempted promises were revoked before their deadline by a
	// higher-priority grant (spot capacity reclaimed).
	Preempted
)

// String names the state.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Released:
		return "released"
	case Expired:
		return "expired"
	case Preempted:
		return "preempted"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Promise is one granted promise: a set of predicates the manager
// guarantees until expiry (§2).
type Promise struct {
	// ID is the promise identifier assigned by the promise maker (§6).
	ID string
	// Client identifies the promise client; only it may use or release the
	// promise.
	Client string
	// Predicates are the guaranteed conditions; a multi-predicate promise
	// was granted atomically (§4, first requirement).
	Predicates []Predicate
	// Assigned records, per predicate, the concrete instance currently
	// backing it: the instance itself for named view, the tentative
	// allocation for property view (§5 "Tentative allocation"), "" for
	// anonymous view.
	Assigned []string
	// DelegatedQty and DelegatedID record, per predicate, any quantity
	// backed by an upstream supplier promise (§5 "Delegation") and that
	// upstream promise's id.
	DelegatedQty []int64
	DelegatedID  []string
	// Expires is the instant the promise lapses.
	Expires time.Time
	// State is the lifecycle state.
	State State
	// Priority is the tier the promise was granted at.
	Priority int
	// Preemptible marks the promise as displaceable by strictly
	// higher-priority requests.
	Preemptible bool
}

// slotKey identifies one predicate of one promise; escrow reservations and
// soft-lock holders are keyed by slot so two predicates of one promise
// never share backing resources.
func slotKey(promiseID string, i int) string {
	return fmt.Sprintf("%s#%d", promiseID, i)
}

// parseSlotKey splits a slot key back into promise id and predicate index.
func parseSlotKey(slot string) (promiseID string, idx int, ok bool) {
	sep := strings.LastIndexByte(slot, '#')
	if sep <= 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(slot[sep+1:])
	if err != nil || n < 0 {
		return "", 0, false
	}
	return slot[:sep], n, true
}

// promiseRow wraps Promise as a txn.Row.
type promiseRow struct {
	p Promise
}

// CloneRow implements txn.Row. Predicate Exprs are immutable after parse
// and safe to share.
func (r *promiseRow) CloneRow() txn.Row {
	c := r.p
	c.Predicates = append([]Predicate(nil), r.p.Predicates...)
	c.Assigned = append([]string(nil), r.p.Assigned...)
	c.DelegatedQty = append([]int64(nil), r.p.DelegatedQty...)
	c.DelegatedID = append([]string(nil), r.p.DelegatedID...)
	return &promiseRow{p: c}
}
