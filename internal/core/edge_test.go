package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/predicate"
	"repro/internal/resource"
	"repro/internal/txn"
)

func TestEmptyRequestIsNoOp(t *testing.T) {
	m, _ := newManager(t, Config{})
	resp, err := m.Execute(bg, Request{Client: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Promises) != 0 || resp.ActionErr != nil || resp.ActionResult != nil {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestModifySwapNamedInstance(t *testing.T) {
	// Atomic modify where the new promise needs the instance freed by the
	// released one — the named-view flavour of §4's third requirement.
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		rm := m.Resources()
		if err := rm.CreateInstance(tx, "room-1", nil); err != nil {
			return err
		}
		return rm.CreateInstance(tx, "room-2", nil)
	})
	pr := grantOne(t, m, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Named("room-1")},
	}}})
	// Swap to a two-room promise including the currently held room.
	both := grantOne(t, m, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Named("room-1"), Named("room-2")},
		Releases:   []string{pr.PromiseID},
	}}})
	if !both.Accepted {
		t.Fatalf("swap rejected: %s", both.Reason)
	}
	info, _ := m.PromiseInfo(both.PromiseID)
	if info.Assigned[0] != "room-1" || info.Assigned[1] != "room-2" {
		t.Fatalf("assigned = %v", info.Assigned)
	}
	rep, err := m.Audit()
	if err != nil || !rep.Healthy() {
		t.Fatalf("audit: %v %s", err, rep)
	}
}

func TestModifyDuplicateReleaseIDs(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 10, nil)
	})
	pr := grantOne(t, m, requestQuantity("c", "p", 4))
	// Listing the same release twice must not double-free capacity.
	up := grantOne(t, m, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("p", 10)},
		Releases:   []string{pr.PromiseID, pr.PromiseID},
	}}})
	if !up.Accepted {
		t.Fatalf("swap rejected: %s", up.Reason)
	}
	rep, err := m.Audit()
	if err != nil || !rep.Healthy() {
		t.Fatalf("audit: %v %s", err, rep)
	}
	// And nothing is left over.
	if probe := grantOne(t, m, requestQuantity("c", "p", 1)); probe.Accepted {
		t.Fatal("double-free leaked capacity")
	}
}

func TestDelegatedPromiseViolationRollsBack(t *testing.T) {
	// A violating action on a manager that holds delegated promises: the
	// rollback must leave the upstream promise untouched and active.
	distributor, _ := newManager(t, Config{})
	seed(t, distributor, func(tx *txn.Tx) error {
		return distributor.Resources().CreatePool(tx, "w", 10, nil)
	})
	merchant, _ := newManager(t, Config{
		Suppliers: map[string]Supplier{"w": &ManagerSupplier{M: distributor, Client: "m"}},
	})
	seed(t, merchant, func(tx *txn.Tx) error {
		return merchant.Resources().CreatePool(tx, "w", 3, nil)
	})
	pr := grantOne(t, merchant, requestQuantity("c", "w", 8)) // 3 local + 5 delegated
	if !pr.Accepted {
		t.Fatal(pr.Reason)
	}
	resp, err := merchant.Execute(bg, Request{
		Client: "rogue",
		Action: func(ac *ActionContext) (any, error) {
			_, err := ac.Resources.AdjustPool(ac.Tx, "w", -2)
			return nil, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.ActionErr, ErrPromiseViolated) {
		t.Fatalf("ActionErr = %v", resp.ActionErr)
	}
	info, _ := merchant.PromiseInfo(pr.PromiseID)
	up, err := distributor.PromiseInfo(info.DelegatedID[0])
	if err != nil {
		t.Fatal(err)
	}
	if up.State != Active {
		t.Fatalf("upstream state = %v after local rollback", up.State)
	}
}

func TestPropertyPromiseOverStatusBuiltin(t *testing.T) {
	// Predicates can reference the builtin "status"/"id" properties; a
	// request for an instance that is available by its builtin works.
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreateInstance(tx, "x-1", nil)
	})
	pr := grantOne(t, m, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{MustProperty(`id = "x-1"`)},
	}}})
	if !pr.Accepted {
		t.Fatalf("rejected: %s", pr.Reason)
	}
	info, _ := m.PromiseInfo(pr.PromiseID)
	if info.Assigned[0] != "x-1" {
		t.Fatalf("assigned = %v", info.Assigned)
	}
}

func TestActionResultTypesPreserved(t *testing.T) {
	m, _ := newManager(t, Config{})
	resp, err := m.Execute(bg, Request{Client: "c", Action: func(ac *ActionContext) (any, error) {
		return map[string]int{"a": 1}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := resp.ActionResult.(map[string]int)
	if !ok || got["a"] != 1 {
		t.Fatalf("ActionResult = %#v", resp.ActionResult)
	}
}

func TestReleaseIdempotenceViaState(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 10, nil)
	})
	pr := grantOne(t, m, requestQuantity("c", "p", 5))
	if _, err := m.Execute(bg, Request{Client: "c", Env: []EnvEntry{{PromiseID: pr.PromiseID, Release: true}}}); err != nil {
		t.Fatal(err)
	}
	resp, err := m.Execute(bg, Request{Client: "c", Env: []EnvEntry{{PromiseID: pr.PromiseID, Release: true}}})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.ActionErr, ErrPromiseReleased) {
		t.Fatalf("double release: %v", resp.ActionErr)
	}
	// Capacity freed exactly once.
	if probe := grantOne(t, m, requestQuantity("c", "p", 10)); !probe.Accepted {
		t.Fatalf("capacity wrong after release: %s", probe.Reason)
	}
}

func TestInstanceDeletedUnderPromise(t *testing.T) {
	// An action deletes a promised instance outright (catastrophic §2
	// "accident might damage previously-promised stock"): the post-check
	// flags it and rolls back.
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreateInstance(tx, "vase", nil)
	})
	pr := grantOne(t, m, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Named("vase")},
	}}})
	resp, err := m.Execute(bg, Request{Client: "clumsy", Action: func(ac *ActionContext) (any, error) {
		return nil, ac.Tx.Delete(resource.TableInstances, "vase")
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.ActionErr, ErrPromiseViolated) {
		t.Fatalf("ActionErr = %v", resp.ActionErr)
	}
	// The vase survives (rolled back) and the promise is intact.
	tx := m.Store().Begin(txn.Block)
	defer tx.Commit()
	if _, err := m.Resources().Instance(tx, "vase"); err != nil {
		t.Fatalf("vase gone: %v", err)
	}
	info, _ := m.PromiseInfo(pr.PromiseID)
	if info.State != Active {
		t.Fatalf("promise state = %v", info.State)
	}
}

func TestZeroDurationUsesDefaultAndExpires(t *testing.T) {
	m, fake := newManager(t, Config{DefaultDuration: 10 * time.Second})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 5, nil)
	})
	pr := grantOne(t, m, requestQuantity("c", "p", 5))
	fake.Advance(11 * time.Second)
	if probe := grantOne(t, m, requestQuantity("c", "p", 5)); !probe.Accepted {
		t.Fatalf("default duration not applied: %s (expires %v)", probe.Reason, pr.Expires)
	}
}

func TestManyPredicatesOnePromise(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		rm := m.Resources()
		for i := 0; i < 10; i++ {
			if err := rm.CreatePool(tx, poolName(i), 5, nil); err != nil {
				return err
			}
			if err := rm.CreateInstance(tx, instName(i), map[string]predicate.Value{
				"k": predicate.Int(int64(i)),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	var preds []Predicate
	for i := 0; i < 10; i++ {
		preds = append(preds, Quantity(poolName(i), 2), Named(instName(i)))
	}
	pr := grantOne(t, m, Request{Client: "c", PromiseRequests: []PromiseRequest{{Predicates: preds}}})
	if !pr.Accepted {
		t.Fatalf("20-predicate promise rejected: %s", pr.Reason)
	}
	info, _ := m.PromiseInfo(pr.PromiseID)
	if len(info.Predicates) != 20 || len(info.Assigned) != 20 {
		t.Fatalf("sizes: %d %d", len(info.Predicates), len(info.Assigned))
	}
	if _, err := m.Execute(bg, Request{Client: "c", Env: []EnvEntry{{PromiseID: pr.PromiseID, Release: true}}}); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Audit()
	if err != nil || !rep.Healthy() {
		t.Fatalf("audit: %v %s", err, rep)
	}
}

func poolName(i int) string { return "pool-" + string(rune('a'+i)) }
func instName(i int) string { return "inst-" + string(rune('a'+i)) }

func TestActionDeadlockIsRetriedNotReported(t *testing.T) {
	// Regression: a deadlock surfacing inside the application action (e.g.
	// an S->X upgrade collision on a pool row) is a transaction-level
	// event. Execute must retry the request, not report FailedLate-style
	// ActionErr to the client.
	m, _ := newManager(t, Config{})
	attempts := 0
	resp, err := m.Execute(bg, Request{Client: "c", Action: func(ac *ActionContext) (any, error) {
		attempts++
		if attempts < 3 {
			return nil, fmt.Errorf("row lock: %w", txn.ErrDeadlock)
		}
		return "done", nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ActionErr != nil {
		t.Fatalf("deadlock leaked to client: %v", resp.ActionErr)
	}
	if resp.ActionResult != "done" || attempts != 3 {
		t.Fatalf("result=%v attempts=%d", resp.ActionResult, attempts)
	}
	if got := m.Stats().DeadlockRetries; got != 2 {
		t.Fatalf("deadlock retries = %d, want 2", got)
	}
}

func TestTerminalPromisesLeaveScannedTable(t *testing.T) {
	// Regression: released/expired promises must move out of the scanned
	// promise table, or every request's sweep becomes linear in history
	// (quadratic workloads overall).
	m, fake := newManager(t, Config{DefaultDuration: time.Minute})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 100, nil)
	})
	var lastReleased, lastExpired string
	for i := 0; i < 20; i++ {
		pr := grantOne(t, m, requestQuantity("c", "p", 1))
		if i%2 == 0 {
			if _, err := m.Execute(bg, Request{Client: "c", Env: []EnvEntry{{PromiseID: pr.PromiseID, Release: true}}}); err != nil {
				t.Fatal(err)
			}
			lastReleased = pr.PromiseID
		} else {
			lastExpired = pr.PromiseID
		}
	}
	fake.Advance(2 * time.Minute)
	if err := m.Sweep(); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	tx := m.Store().Begin(txn.Block)
	for _, tbl := range []string{TablePromises, TablePromisesDone} {
		if err := tx.Scan(tbl, func(string, txn.Row) bool {
			counts[tbl]++
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
	_ = tx.Commit()
	if counts[TablePromises] != 0 {
		t.Fatalf("scanned table still holds %d terminal promises", counts[TablePromises])
	}
	if counts[TablePromisesDone] != 20 {
		t.Fatalf("done table holds %d rows, want 20", counts[TablePromisesDone])
	}
	// Terminal promises remain queryable with precise errors.
	if _, err := m.promiseForClientProbe("c", lastReleased); !errors.Is(err, ErrPromiseReleased) {
		t.Fatalf("released probe: %v", err)
	}
	if _, err := m.promiseForClientProbe("c", lastExpired); !errors.Is(err, ErrPromiseExpired) {
		t.Fatalf("expired probe: %v", err)
	}
}

// promiseForClientProbe runs promiseForClient in a scratch transaction.
func (m *Manager) promiseForClientProbe(client, id string) (*Promise, error) {
	tx := m.store.Begin(txn.Block)
	defer tx.Commit()
	return m.promiseForClient(tx, client, id)
}
