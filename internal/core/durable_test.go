package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/predicate"
	"repro/internal/wal"
)

// durEngine is the surface the durability tests drive — both *Manager and
// *ShardedManager implement it.
type durEngine interface {
	Execute(ctx context.Context, req Request) (*Response, error)
	CheckBatch(ctx context.Context, client string, ids []string) ([]error, error)
	Release(ctx context.Context, client string, ids ...string) error
	Watch(ctx context.Context, opts WatchOptions) (<-chan Event, error)
	Audit() (*AuditReport, error)
	CreatePool(id string, onHand int64, props map[string]predicate.Value) error
	CreateInstance(id string, props map[string]predicate.Value) error
	PoolLevel(pool string) (int64, error)
	Checkpoint() error
	Close() error
}

var durBase = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func openDur(t *testing.T, dir string, shards int, clk clock.Clock, opts DurabilityOptions) durEngine {
	t.Helper()
	opts.Dir = dir
	if shards > 1 {
		s, err := OpenDurableSharded(ShardedConfig{Shards: shards, Clock: clk}, opts)
		if err != nil {
			t.Fatalf("OpenDurableSharded: %v", err)
		}
		return s
	}
	m, err := OpenDurable(Config{Clock: clk}, opts)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return m
}

func openRef(t *testing.T, shards int, clk clock.Clock) durEngine {
	t.Helper()
	if shards > 1 {
		s, err := NewSharded(ShardedConfig{Shards: shards, Clock: clk})
		if err != nil {
			t.Fatalf("NewSharded: %v", err)
		}
		return s
	}
	m, err := New(Config{Clock: clk})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func seedDur(t *testing.T, e durEngine) {
	t.Helper()
	for _, p := range []string{"widgets", "gadgets", "sprockets"} {
		if err := e.CreatePool(p, 40, nil); err != nil {
			t.Fatalf("CreatePool(%s): %v", p, err)
		}
	}
	for i := 0; i < 10; i++ {
		props := map[string]predicate.Value{
			"floor":   predicate.Int(int64(i%5 + 1)),
			"smoking": predicate.Bool(i%2 == 0),
		}
		if err := e.CreateInstance(fmt.Sprintf("room%d", i), props); err != nil {
			t.Fatalf("CreateInstance(room%d): %v", i, err)
		}
	}
}

// drainReplay collects everything a Replay subscription delivers before the
// first live event. Replay happens synchronously inside Watch (into the
// buffered channel), so a non-blocking drain sees the full retained tail.
func drainReplay(t *testing.T, e durEngine, afterSeq uint64) []Event {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := e.Watch(ctx, WatchOptions{Replay: true, AfterSeq: afterSeq, Buffer: 1 << 14})
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	var out []Event
	for {
		select {
		case ev := <-ch:
			out = append(out, ev)
		default:
			return out
		}
	}
}

func sameEvent(a, b Event) bool {
	return a.Seq == b.Seq && a.Type == b.Type && a.PromiseID == b.PromiseID &&
		a.Client == b.Client && a.Time.Equal(b.Time) && a.Expires.Equal(b.Expires) &&
		a.Reason == b.Reason
}

// pairHarness drives a durable engine and an in-memory reference through an
// identical deterministic workload, asserting lockstep equivalence.
type pairHarness struct {
	t         *testing.T
	ctx       context.Context
	dur, ref  durEngine
	dClk      *clock.Fake
	rClk      *clock.Fake
	rng       *rand.Rand
	clients   []string
	live      map[string][]string // client -> ids believed live
	all       map[string][]string // client -> every id ever granted
	deadlines map[int64]bool      // UnixNano instants already used as expiries
	opIdx     int
}

func newPair(t *testing.T, dir string, shards int, seed int64) *pairHarness {
	h := &pairHarness{
		t:         t,
		ctx:       context.Background(),
		dClk:      clock.NewFake(durBase),
		rClk:      clock.NewFake(durBase),
		rng:       rand.New(rand.NewSource(seed)),
		clients:   []string{"alice", "bob", "carol"},
		live:      map[string][]string{},
		all:       map[string][]string{},
		deadlines: map[int64]bool{},
	}
	h.dur = openDur(t, dir, shards, h.dClk, DurabilityOptions{CheckpointEvery: -1})
	h.ref = openRef(t, shards, h.rClk)
	seedDur(t, h.dur)
	seedDur(t, h.ref)
	return h
}

// uniqueDur picks a duration whose resulting deadline instant has never been
// used. Unique deadlines keep expiry-alarm firing order — (instant,
// registration) on the fake clock — identical between a recovered engine
// (alarms re-registered in shard order) and the reference (registration in
// grant order).
func (h *pairHarness) uniqueDur() time.Duration {
	d := time.Duration(500+h.opIdx*17) * time.Millisecond
	for {
		at := h.dClk.Now().Add(d).UnixNano()
		if !h.deadlines[at] {
			h.deadlines[at] = true
			return d
		}
		d += time.Millisecond
	}
}

func (h *pairHarness) predicates() []Predicate {
	switch h.rng.Intn(3) {
	case 0:
		pools := []string{"widgets", "gadgets", "sprockets"}
		return []Predicate{Quantity(pools[h.rng.Intn(len(pools))], int64(1+h.rng.Intn(4)))}
	case 1:
		return []Predicate{Named(fmt.Sprintf("room%d", h.rng.Intn(10)))}
	default:
		exprs := []string{"floor >= 2", "floor = 3 and not smoking", "smoking or floor < 3"}
		return []Predicate{MustProperty(exprs[h.rng.Intn(len(exprs))])}
	}
}

func (h *pairHarness) execute(req Request) {
	h.t.Helper()
	ra, ea := h.dur.Execute(h.ctx, req)
	rb, eb := h.ref.Execute(h.ctx, req)
	if (ea != nil) != (eb != nil) {
		h.t.Fatalf("op %d: Execute error divergence: durable=%v reference=%v", h.opIdx, ea, eb)
	}
	if ea != nil {
		return
	}
	if len(ra.Promises) != len(rb.Promises) {
		h.t.Fatalf("op %d: response length divergence: %d vs %d", h.opIdx, len(ra.Promises), len(rb.Promises))
	}
	for i := range ra.Promises {
		pa, pb := ra.Promises[i], rb.Promises[i]
		if pa.Accepted != pb.Accepted || pa.PromiseID != pb.PromiseID || !pa.Expires.Equal(pb.Expires) {
			h.t.Fatalf("op %d: promise response divergence:\n  durable:   %+v\n  reference: %+v", h.opIdx, pa, pb)
		}
		if pa.Accepted {
			h.live[req.Client] = append(h.live[req.Client], pa.PromiseID)
			h.all[req.Client] = append(h.all[req.Client], pa.PromiseID)
		}
	}
}

// step performs one randomized workload operation on both engines.
func (h *pairHarness) step() {
	h.t.Helper()
	c := h.clients[h.rng.Intn(len(h.clients))]
	switch r := h.rng.Intn(100); {
	case r < 45: // grant
		h.execute(Request{Client: c, PromiseRequests: []PromiseRequest{{
			RequestID:  fmt.Sprintf("r%d", h.opIdx),
			Predicates: h.predicates(),
			Duration:   h.uniqueDur(),
		}}})
	case r < 60: // release a (possibly stale) live id
		ids := h.live[c]
		if len(ids) == 0 {
			h.execute(Request{Client: c, PromiseRequests: []PromiseRequest{{
				Predicates: h.predicates(), Duration: h.uniqueDur(),
			}}})
			break
		}
		i := h.rng.Intn(len(ids))
		id := ids[i]
		h.live[c] = append(ids[:i:i], ids[i+1:]...)
		ea := h.dur.Release(h.ctx, c, id)
		eb := h.ref.Release(h.ctx, c, id)
		if sentinelClass(ea) != sentinelClass(eb) {
			h.t.Fatalf("op %d: Release(%s) divergence: durable=%v reference=%v", h.opIdx, id, ea, eb)
		}
	case r < 75: // advance both clocks in lockstep; expiries fire here
		d := time.Duration(40+h.rng.Intn(400)) * time.Millisecond
		h.dClk.Advance(d)
		h.rClk.Advance(d)
	case r < 85: // renewal: release an old id atomically with a new grant
		ids := h.live[c]
		if len(ids) == 0 {
			break
		}
		i := h.rng.Intn(len(ids))
		id := ids[i]
		h.live[c] = append(ids[:i:i], ids[i+1:]...)
		h.execute(Request{Client: c, PromiseRequests: []PromiseRequest{{
			RequestID:  fmt.Sprintf("r%d", h.opIdx),
			Predicates: h.predicates(),
			Duration:   h.uniqueDur(),
			Releases:   []string{id},
		}}})
	default: // multi-predicate atomic request (cross-shard on sharded engines)
		h.execute(Request{Client: c, PromiseRequests: []PromiseRequest{{
			RequestID:  fmt.Sprintf("r%d", h.opIdx),
			Predicates: append(h.predicates(), h.predicates()...),
			Duration:   h.uniqueDur(),
		}}})
	}
	h.opIdx++
}

// kill abandons the durable engine without Close — the moral equivalent of
// SIGKILL for an in-process engine under SyncAlways — and recovers a fresh
// engine from the data directory at the same clock instant.
func (h *pairHarness) kill(dir string, shards int) {
	h.t.Helper()
	h.dClk = clock.NewFake(h.dClk.Now())
	h.dur = openDur(h.t, dir, shards, h.dClk, DurabilityOptions{CheckpointEvery: -1})
}

// assertEquivalent compares every observable: per-promise sentinel classes,
// pool levels, audit health, and the full Watch replay stream.
func (h *pairHarness) assertEquivalent() {
	h.t.Helper()
	for _, c := range h.clients {
		ids := h.all[c]
		if len(ids) == 0 {
			continue
		}
		sa, ea := h.dur.CheckBatch(h.ctx, c, ids)
		sb, eb := h.ref.CheckBatch(h.ctx, c, ids)
		if ea != nil || eb != nil {
			h.t.Fatalf("CheckBatch(%s): durable=%v reference=%v", c, ea, eb)
		}
		for i, id := range ids {
			if ca, cb := sentinelClass(sa[i]), sentinelClass(sb[i]); ca != cb {
				h.t.Errorf("promise %s (client %s): durable=%s reference=%s", id, c, ca, cb)
			}
		}
	}
	for _, p := range []string{"widgets", "gadgets", "sprockets"} {
		la, ea := h.dur.PoolLevel(p)
		lb, eb := h.ref.PoolLevel(p)
		if ea != nil || eb != nil || la != lb {
			h.t.Errorf("PoolLevel(%s): durable=%d(%v) reference=%d(%v)", p, la, ea, lb, eb)
		}
	}
	for name, e := range map[string]durEngine{"durable": h.dur, "reference": h.ref} {
		rep, err := e.Audit()
		if err != nil {
			h.t.Fatalf("Audit (%s): %v", name, err)
		}
		if !rep.Healthy() {
			h.t.Errorf("audit (%s): %s", name, rep)
		}
	}
	eva := drainReplay(h.t, h.dur, 0)
	evb := drainReplay(h.t, h.ref, 0)
	if len(eva) != len(evb) {
		h.t.Fatalf("event stream length divergence: durable=%d reference=%d", len(eva), len(evb))
	}
	for i := range eva {
		if !sameEvent(eva[i], evb[i]) {
			h.t.Errorf("event %d divergence:\n  durable:   %+v\n  reference: %+v", i, eva[i], evb[i])
		}
	}
}

// TestKillRecoverEquivalence is the pinning suite: a randomized workload
// runs in lockstep on a durable engine and an in-memory reference; the
// durable engine is killed at a random commit (with a checkpoint forced at
// another random point, so recovery spans checkpoint + log tail), recovered,
// and the workload continues. At the end every observable — per-promise
// sentinels, pool levels, audit, and the full event stream — must match an
// engine that never died.
func TestKillRecoverEquivalence(t *testing.T) {
	for _, shards := range []int{1, 8} {
		for _, seed := range []int64{1, 7} {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				dir := t.TempDir()
				h := newPair(t, dir, shards, seed)
				const ops = 120
				killAt := 30 + h.rng.Intn(60)
				ckptAt := h.rng.Intn(killAt)
				for i := 0; i < ops; i++ {
					if i == ckptAt {
						if err := h.dur.Checkpoint(); err != nil {
							t.Fatalf("Checkpoint: %v", err)
						}
					}
					if i == killAt {
						h.kill(dir, shards)
					}
					h.step()
				}
				h.assertEquivalent()
				if err := h.dur.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
			})
		}
	}
}

// TestDurableWatchResumeAcrossRestart pins SSE-style resume: a Last-Event-ID
// cursor taken before a kill replays the missed tail after recovery, and
// sequence numbering continues without reuse.
func TestDurableWatchResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake(durBase)
	ctx := context.Background()
	e := openDur(t, dir, 1, clk, DurabilityOptions{CheckpointEvery: -1})
	seedDur(t, e)

	grant := func(e durEngine, n int) string {
		t.Helper()
		resp, err := e.Execute(ctx, Request{Client: "alice", PromiseRequests: []PromiseRequest{{
			Predicates: []Predicate{Quantity("widgets", int64(n))},
			Duration:   time.Minute,
		}}})
		if err != nil || !resp.Promises[0].Accepted {
			t.Fatalf("grant: err=%v resp=%+v", err, resp)
		}
		return resp.Promises[0].PromiseID
	}
	grant(e, 1)
	grant(e, 2)
	id3 := grant(e, 3)

	pre := drainReplay(t, e, 0)
	if len(pre) != 3 {
		t.Fatalf("expected 3 granted events before kill, got %d: %+v", len(pre), pre)
	}
	cursor := pre[1].Seq // subscriber saw the first two events, then died

	// Kill and recover.
	clk = clock.NewFake(clk.Now())
	e = openDur(t, dir, 1, clk, DurabilityOptions{CheckpointEvery: -1})

	resumed := drainReplay(t, e, cursor)
	if len(resumed) != 1 || resumed[0].Seq != pre[2].Seq || resumed[0].PromiseID != id3 {
		t.Fatalf("resume after restart: want exactly event %d for %s, got %+v", pre[2].Seq, id3, resumed)
	}

	id4 := grant(e, 4)
	all := drainReplay(t, e, cursor)
	if len(all) != 2 {
		t.Fatalf("expected replayed + live event, got %+v", all)
	}
	if all[1].PromiseID != id4 || all[1].Seq != pre[2].Seq+1 {
		t.Fatalf("post-restart numbering must continue (want seq %d), got %+v", pre[2].Seq+1, all[1])
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestDurableTornTail pins torn-write semantics: a partially written final
// record is discarded on recovery — the interrupted commit is lost, earlier
// commits survive, and the store is consistent.
func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake(durBase)
	ctx := context.Background()
	e := openDur(t, dir, 1, clk, DurabilityOptions{CheckpointEvery: -1})
	if err := e.CreatePool("widgets", 10, nil); err != nil {
		t.Fatal(err)
	}
	grant := func(n int64) string {
		resp, err := e.Execute(ctx, Request{Client: "alice", PromiseRequests: []PromiseRequest{{
			Predicates: []Predicate{Quantity("widgets", n)},
			Duration:   time.Minute,
		}}})
		if err != nil || !resp.Promises[0].Accepted {
			t.Fatalf("grant: err=%v resp=%+v", err, resp)
		}
		return resp.Promises[0].PromiseID
	}
	id1 := grant(2)
	id2 := grant(3)

	// Abandon the engine and tear the last few bytes off the newest shard
	// log segment — the tail of id2's commit record.
	segs, err := filepath.Glob(filepath.Join(dir, "shard-0", "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("glob shard log: %v (%d segments)", err, len(segs))
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	e = openDur(t, dir, 1, clock.NewFake(clk.Now()), DurabilityOptions{CheckpointEvery: -1})
	states, err := e.CheckBatch(ctx, "alice", []string{id1, id2})
	if err != nil {
		t.Fatalf("CheckBatch: %v", err)
	}
	if states[0] != nil {
		t.Errorf("promise %s before the torn record must survive, got %v", id1, states[0])
	}
	if !errors.Is(states[1], ErrPromiseNotFound) {
		t.Errorf("promise %s in the torn record must be lost, got %v", id2, states[1])
	}
	rep, err := e.Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if !rep.Healthy() {
		t.Errorf("audit after torn-tail recovery: %s", rep)
	}
	// The engine keeps working after recovering a torn tail.
	grant(1)
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestDurableUndecodableRecordFails pins the flip side of torn-tail
// tolerance: a record that frames correctly (intact CRC) but does not
// decode is damage recovery must refuse loudly, never skip. (Framing-level
// corruption is the wal package's department: interior segments fail with
// ErrCorrupt, only the final segment's tail may be truncated — see
// internal/wal tests.)
func TestDurableUndecodableRecordFails(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake(durBase)
	ctx := context.Background()
	e := openDur(t, dir, 1, clk, DurabilityOptions{CheckpointEvery: -1})
	if err := e.CreatePool("widgets", 10, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(ctx, Request{Client: "alice", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("widgets", 1)},
		Duration:   time.Minute,
	}}}); err != nil {
		t.Fatal(err)
	}
	// Abandon the engine, then append a correctly framed record whose
	// payload is not a walRecord.
	lg, err := wal.OpenLog(filepath.Join(dir, "shard-0"), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Append([]byte("not a wal record")); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(Config{Clock: clock.NewFake(clk.Now())}, DurabilityOptions{Dir: dir}); err == nil {
		t.Fatal("OpenDurable must fail on an undecodable log record")
	}
}

// TestCheckpointCadence pins the automatic checkpointer on a fake clock: one
// checkpoint at open, then one per elapsed interval.
func TestCheckpointCadence(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake(durBase)
	m, err := OpenDurable(Config{Clock: clk}, DurabilityOptions{Dir: dir, CheckpointEvery: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := m.durable.checkpoints.Load(); got != 1 {
		t.Fatalf("expected the initial recovery checkpoint, got %d", got)
	}
	for i := uint64(2); i <= 4; i++ {
		clk.Advance(61 * time.Second)
		if got := m.durable.checkpoints.Load(); got != i {
			t.Fatalf("after advance %d: expected %d checkpoints, got %d", i-1, i, got)
		}
	}
	// No time passing, no checkpoints.
	if got := m.durable.checkpoints.Load(); got != 4 {
		t.Fatalf("expected 4 checkpoints, got %d", got)
	}
}

// TestCheckpointCadenceDisabled pins that a negative interval disables the
// alarm while manual Checkpoint still works.
func TestCheckpointCadenceDisabled(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake(durBase)
	m, err := OpenDurable(Config{Clock: clk}, DurabilityOptions{Dir: dir, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	clk.Advance(time.Hour)
	if got := m.durable.checkpoints.Load(); got != 1 {
		t.Fatalf("automatic checkpoints must be disabled, got %d", got)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("manual Checkpoint: %v", err)
	}
	if got := m.durable.checkpoints.Load(); got != 2 {
		t.Fatalf("manual checkpoint not counted, got %d", got)
	}
}

// TestManifestShardMismatch pins that a data directory remembers its shard
// count and refuses an engine of a different shape.
func TestManifestShardMismatch(t *testing.T) {
	dir := t.TempDir()
	e := openDur(t, dir, 4, clock.NewFake(durBase), DurabilityOptions{})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(Config{Clock: clock.NewFake(durBase)}, DurabilityOptions{Dir: dir}); err == nil {
		t.Fatal("OpenDurable over a 4-shard directory must fail")
	}
	if _, err := OpenDurableSharded(ShardedConfig{Shards: 2, Clock: clock.NewFake(durBase)}, DurabilityOptions{Dir: dir}); err == nil {
		t.Fatal("OpenDurableSharded(2) over a 4-shard directory must fail")
	}
	// The matching shape still opens.
	e = openDur(t, dir, 4, clock.NewFake(durBase), DurabilityOptions{})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCloseReopen pins the clean-shutdown path: Close checkpoints, a
// reopen recovers everything without log replay, and Close is idempotent.
func TestDurableCloseReopen(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake(durBase)
	ctx := context.Background()
	e := openDur(t, dir, 2, clk, DurabilityOptions{})
	seedDur(t, e)
	resp, err := e.Execute(ctx, Request{Client: "alice", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("widgets", 5), Named("room3")},
		Duration:   time.Hour,
	}}})
	if err != nil || !resp.Promises[0].Accepted {
		t.Fatalf("grant: err=%v resp=%+v", err, resp)
	}
	id := resp.Promises[0].PromiseID
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	e = openDur(t, dir, 2, clock.NewFake(clk.Now()), DurabilityOptions{})
	states, err := e.CheckBatch(ctx, "alice", []string{id})
	if err != nil || states[0] != nil {
		t.Fatalf("promise after clean reopen: err=%v state=%v", err, states[0])
	}
	rep, err := e.Audit()
	if err != nil || !rep.Healthy() {
		t.Fatalf("audit after clean reopen: err=%v report=%s", err, rep)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestPromiseRowCodec pins the JSON shape promises take in the log and in
// checkpoints, across all three predicate views.
func TestPromiseRowCodec(t *testing.T) {
	preds := []Predicate{
		Quantity("widgets", 5),
		Named("room3"),
		MustProperty(`floor = 3 and not smoking`),
	}
	now := durBase.Add(17 * time.Minute)
	row := promiseRow{p: Promise{
		ID:         "prm-9",
		Client:     "alice",
		State:      Active,
		Predicates: preds,
		Assigned:   []string{"", "room3", "room5"},
		Expires:    now,
	}}
	blob, err := json.Marshal(&row)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back promiseRow
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.p.ID != row.p.ID || back.p.Client != row.p.Client || back.p.State != row.p.State ||
		!back.p.Expires.Equal(row.p.Expires) {
		t.Fatalf("scalar fields lost: %+v", back.p)
	}
	if len(back.p.Assigned) != 3 || back.p.Assigned[1] != "room3" || back.p.Assigned[2] != "room5" {
		t.Fatalf("assignments lost: %+v", back.p.Assigned)
	}
	if len(back.p.Predicates) != 3 {
		t.Fatalf("predicates lost: %+v", back.p.Predicates)
	}
	for i, p := range back.p.Predicates {
		if p.View != preds[i].View || p.Pool != preds[i].Pool ||
			p.Qty != preds[i].Qty || p.Instance != preds[i].Instance {
			t.Errorf("predicate %d mismatch: %+v vs %+v", i, p, preds[i])
		}
	}
	if back.p.Predicates[2].Expr == nil {
		t.Fatal("property expression not re-parsed")
	}
}
