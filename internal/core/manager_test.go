package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/predicate"
	"repro/internal/resource"
	"repro/internal/txn"
)

// newManager builds a manager on a fake clock with a seeded RM.
func newManager(t *testing.T, cfg Config) (*Manager, *clock.Fake) {
	t.Helper()
	fake := clock.NewFake(time.Date(2007, 1, 7, 0, 0, 0, 0, time.UTC))
	if cfg.Clock == nil {
		cfg.Clock = fake
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, fake
}

// seed runs f in its own committed transaction.
func seed(t *testing.T, m *Manager, f func(tx *txn.Tx) error) {
	t.Helper()
	tx := m.Store().Begin(txn.Block)
	if err := f(tx); err != nil {
		_ = tx.Abort()
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func requestQuantity(client, pool string, qty int64) Request {
	return Request{
		Client: client,
		PromiseRequests: []PromiseRequest{{
			RequestID:  "req-" + pool,
			Predicates: []Predicate{Quantity(pool, qty)},
		}},
	}
}

func grantOne(t *testing.T, m *Manager, req Request) PromiseResponse {
	t.Helper()
	resp, err := m.Execute(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Promises) != 1 {
		t.Fatalf("got %d promise responses, want 1", len(resp.Promises))
	}
	return resp.Promises[0]
}

// --- Figure 1: the ordering process (§7). ---

func TestFigure1AcceptPath(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "pink-widgets", 10, nil)
	})

	// "Send promise request that (quantity of 'pink widgets' >= 5)".
	pr := grantOne(t, m, requestQuantity("order-process", "pink-widgets", 5))
	if !pr.Accepted {
		t.Fatalf("promise rejected: %s", pr.Reason)
	}
	if pr.Correlation != "req-pink-widgets" {
		t.Fatalf("correlation = %q", pr.Correlation)
	}

	// Concurrent orders may still sell the other 5...
	pr2 := grantOne(t, m, requestQuantity("other-order", "pink-widgets", 5))
	if !pr2.Accepted {
		t.Fatalf("second promise rejected: %s", pr2.Reason)
	}
	// ...but not more.
	pr3 := grantOne(t, m, requestQuantity("third-order", "pink-widgets", 1))
	if pr3.Accepted {
		t.Fatal("third promise should be rejected: all stock promised")
	}

	// "Send 'purchase stock' request to promise manager and release
	// promise to keep stock level >= 5": the purchase and release form an
	// atomic unit.
	resp, err := m.Execute(bg, Request{
		Client: "order-process",
		Env:    []EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		Action: func(ac *ActionContext) (any, error) {
			// "Release 5 pink widgets for delivery; Reduce stock-on-hand by 5".
			_, err := ac.Resources.AdjustPool(ac.Tx, "pink-widgets", -5)
			return "shipped", err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ActionErr != nil {
		t.Fatalf("purchase failed: %v", resp.ActionErr)
	}
	if resp.ActionResult != "shipped" {
		t.Fatalf("action result = %v", resp.ActionResult)
	}
	// "Remove this promise from the set of predicates over the pink widget
	// stock level."
	info, err := m.PromiseInfo(pr.PromiseID)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != Released {
		t.Fatalf("promise state = %v, want released", info.State)
	}
	// order-2's promise of 5 still holds over the remaining 5 units.
	tx := m.Store().Begin(txn.Block)
	defer tx.Commit()
	p, err := m.Resources().Pool(tx, "pink-widgets")
	if err != nil {
		t.Fatal(err)
	}
	if p.OnHand != 5 {
		t.Fatalf("on hand = %d, want 5", p.OnHand)
	}
}

func TestFigure1RejectPath(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "pink-widgets", 3, nil)
	})
	// "Reject promise request if <5 units available."
	pr := grantOne(t, m, requestQuantity("order-process", "pink-widgets", 5))
	if pr.Accepted {
		t.Fatal("promise should be rejected with 3 units on hand")
	}
	if pr.Reason == "" {
		t.Fatal("rejection should carry a reason")
	}
	if pr.PromiseID != "" {
		t.Fatal("rejected response should have no promise id")
	}
}

// --- Basic request validation. ---

func TestExecuteValidation(t *testing.T) {
	m, _ := newManager(t, Config{})
	if _, err := m.Execute(bg, Request{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("missing client: %v", err)
	}
	resp, err := m.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Promises[0].Accepted {
		t.Fatal("empty predicate list accepted")
	}
	resp, err = m.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("", 5)},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Promises[0].Accepted {
		t.Fatal("invalid predicate accepted")
	}
	resp, err = m.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("p", -2)},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Promises[0].Accepted {
		t.Fatal("negative quantity accepted")
	}
}

func TestMissingPoolRejectsCleanly(t *testing.T) {
	m, _ := newManager(t, Config{})
	pr := grantOne(t, m, requestQuantity("c", "no-such-pool", 1))
	if pr.Accepted {
		t.Fatal("promise on missing pool accepted")
	}
}

// --- Named view (§3.2). ---

func TestNamedPromiseSingleHolder(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreateInstance(tx, "room-212", nil)
	})
	req := func(client string) Request {
		return Request{Client: client, PromiseRequests: []PromiseRequest{{
			Predicates: []Predicate{Named("room-212")},
		}}}
	}
	pr := grantOne(t, m, req("alice"))
	if !pr.Accepted {
		t.Fatalf("rejected: %s", pr.Reason)
	}
	pr2 := grantOne(t, m, req("bob"))
	if pr2.Accepted {
		t.Fatal("named instance promised twice")
	}
	// After alice releases, bob can have it.
	if _, err := m.Execute(bg, Request{Client: "alice", Env: []EnvEntry{{PromiseID: pr.PromiseID, Release: true}}}); err != nil {
		t.Fatal(err)
	}
	pr3 := grantOne(t, m, req("bob"))
	if !pr3.Accepted {
		t.Fatalf("after release: %s", pr3.Reason)
	}
}

func TestNamedDuplicateInOneRequest(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreateInstance(tx, "i", nil)
	})
	resp, err := m.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Named("i"), Named("i")},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Promises[0].Accepted {
		t.Fatal("same instance promised twice within one request")
	}
}

func TestNamedMissingInstance(t *testing.T) {
	m, _ := newManager(t, Config{})
	resp, err := m.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Named("ghost")},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Promises[0].Accepted {
		t.Fatal("promise on missing instance accepted")
	}
}

// --- Atomicity requirement 1 (§4): several predicates at once. ---

func TestTravelAtomicMultiPredicate(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		rm := m.Resources()
		if err := rm.CreatePool(tx, "flights-SYD-SFO", 2, nil); err != nil {
			return err
		}
		if err := rm.CreatePool(tx, "rental-cars", 1, nil); err != nil {
			return err
		}
		return rm.CreateInstance(tx, "room-212", nil)
	})
	travel := []Predicate{
		Quantity("flights-SYD-SFO", 1),
		Quantity("rental-cars", 1),
		Named("room-212"),
	}
	pr := grantOne(t, m, Request{Client: "agent-1", PromiseRequests: []PromiseRequest{{Predicates: travel}}})
	if !pr.Accepted {
		t.Fatalf("travel promise rejected: %s", pr.Reason)
	}
	// A second identical trip must be rejected atomically (no car, no
	// room) and must NOT leak a flight reservation.
	pr2 := grantOne(t, m, Request{Client: "agent-2", PromiseRequests: []PromiseRequest{{Predicates: travel}}})
	if pr2.Accepted {
		t.Fatal("second travel promise should fail")
	}
	// The flight seat the failed request looked at is still available.
	pr3 := grantOne(t, m, requestQuantity("agent-3", "flights-SYD-SFO", 1))
	if !pr3.Accepted {
		t.Fatalf("flight capacity leaked by failed atomic request: %s", pr3.Reason)
	}
}

// --- Atomicity requirement 2 (§4): action + release atomic. ---

func TestArtGalleryActionReleaseAtomicity(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreateInstance(tx, "painting-17", nil)
	})
	pr := grantOne(t, m, Request{Client: "buyer", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Named("painting-17")},
	}}})
	if !pr.Accepted {
		t.Fatal(pr.Reason)
	}

	// First attempt: "no shipper is available that day" — the purchase
	// fails, so the promise must remain in force.
	resp, err := m.Execute(bg, Request{
		Client: "buyer",
		Env:    []EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		Action: func(ac *ActionContext) (any, error) {
			// The action makes a partial change before failing.
			if err := ac.Resources.SetStatus(ac.Tx, "painting-17", resource.Taken); err != nil {
				return nil, err
			}
			return nil, errors.New("no shipper available")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ActionErr == nil {
		t.Fatal("action should have failed")
	}
	info, _ := m.PromiseInfo(pr.PromiseID)
	if info.State != Active {
		t.Fatalf("promise state after failed purchase = %v, want active", info.State)
	}
	// The partial change was rolled back.
	tx := m.Store().Begin(txn.Block)
	in, err := m.Resources().Instance(tx, "painting-17")
	if err != nil {
		t.Fatal(err)
	}
	if in.Status != resource.Promised {
		t.Fatalf("painting status = %v, want promised (rolled back)", in.Status)
	}
	_ = tx.Commit()

	// Second attempt succeeds: purchase and release commit together.
	resp, err = m.Execute(bg, Request{
		Client: "buyer",
		Env:    []EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		Action: func(ac *ActionContext) (any, error) {
			return "sold", ac.Resources.SetStatus(ac.Tx, "painting-17", resource.Taken)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ActionErr != nil {
		t.Fatalf("purchase: %v", resp.ActionErr)
	}
	info, _ = m.PromiseInfo(pr.PromiseID)
	if info.State != Released {
		t.Fatalf("promise state = %v, want released", info.State)
	}
}

// --- Atomicity requirement 3 (§4): modify = atomic release + grant. ---

func TestModifyUpgradeDowngrade(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "alice-account", 300, nil)
	})
	// Initial promise: $100 will be available.
	pr := grantOne(t, m, requestQuantity("shop", "alice-account", 100))
	if !pr.Accepted {
		t.Fatal(pr.Reason)
	}
	// Upgrade to $200 atomically.
	up := grantOne(t, m, Request{Client: "shop", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("alice-account", 200)},
		Releases:   []string{pr.PromiseID},
	}}})
	if !up.Accepted {
		t.Fatalf("upgrade rejected: %s", up.Reason)
	}
	if old, _ := m.PromiseInfo(pr.PromiseID); old.State != Released {
		t.Fatalf("old promise state = %v", old.State)
	}
	// Downgrade to $50 atomically.
	down := grantOne(t, m, Request{Client: "shop", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("alice-account", 50)},
		Releases:   []string{up.PromiseID},
	}}})
	if !down.Accepted {
		t.Fatalf("downgrade rejected: %s", down.Reason)
	}
	// 250 of 300 now unpromised.
	pr2 := grantOne(t, m, requestQuantity("other", "alice-account", 250))
	if !pr2.Accepted {
		t.Fatalf("capacity after downgrade wrong: %s", pr2.Reason)
	}
}

func TestModifyFailureRetainsOldPromise(t *testing.T) {
	// "if these new promises cannot be granted, the existing promises must
	// continue to hold" (§6).
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "acct", 150, nil)
	})
	pr := grantOne(t, m, requestQuantity("shop", "acct", 100))
	other := grantOne(t, m, requestQuantity("rival", "acct", 50))
	if !pr.Accepted || !other.Accepted {
		t.Fatal("setup grants failed")
	}
	// Upgrade to 200 is impossible (150 on hand, 50 promised to rival).
	up := grantOne(t, m, Request{Client: "shop", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("acct", 200)},
		Releases:   []string{pr.PromiseID},
	}}})
	if up.Accepted {
		t.Fatal("impossible upgrade accepted")
	}
	info, _ := m.PromiseInfo(pr.PromiseID)
	if info.State != Active {
		t.Fatalf("old promise state after failed upgrade = %v, want active", info.State)
	}
	// And the old promise still reserves its 100: only 0 is free.
	probe := grantOne(t, m, requestQuantity("probe", "acct", 1))
	if probe.Accepted {
		t.Fatal("capacity accounting broken after failed upgrade")
	}
}

func TestModifyUpgradeUsesFreedCapacity(t *testing.T) {
	// Upgrading 100 -> 120 on a 120 pool works only if the old promise's
	// reservation is excluded during feasibility.
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "acct", 120, nil)
	})
	pr := grantOne(t, m, requestQuantity("shop", "acct", 100))
	up := grantOne(t, m, Request{Client: "shop", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("acct", 120)},
		Releases:   []string{pr.PromiseID},
	}}})
	if !up.Accepted {
		t.Fatalf("upgrade within freed capacity rejected: %s", up.Reason)
	}
}

func TestModifyReleaseTargetErrors(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 10, nil)
	})
	// Unknown release target.
	r := grantOne(t, m, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("p", 1)},
		Releases:   []string{"prm-999"},
	}}})
	if r.Accepted {
		t.Fatal("grant with unknown release target accepted")
	}
	// Someone else's promise as release target.
	pr := grantOne(t, m, requestQuantity("owner", "p", 1))
	r2 := grantOne(t, m, Request{Client: "thief", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("p", 1)},
		Releases:   []string{pr.PromiseID},
	}}})
	if r2.Accepted {
		t.Fatal("grant releasing another client's promise accepted")
	}
}

// --- Post-action promise checking (§8). ---

func TestActionViolatingPromiseRolledBack(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "stock", 10, nil)
	})
	pr := grantOne(t, m, requestQuantity("holder", "stock", 8))
	if !pr.Accepted {
		t.Fatal(pr.Reason)
	}
	// An unrelated client's action drains the pool below the promised
	// level without holding any promise.
	resp, err := m.Execute(bg, Request{
		Client: "rogue",
		Action: func(ac *ActionContext) (any, error) {
			_, err := ac.Resources.AdjustPool(ac.Tx, "stock", -5)
			return nil, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.ActionErr, ErrPromiseViolated) {
		t.Fatalf("ActionErr = %v, want ErrPromiseViolated", resp.ActionErr)
	}
	// The drain was undone.
	tx := m.Store().Begin(txn.Block)
	defer tx.Commit()
	p, _ := m.Resources().Pool(tx, "stock")
	if p.OnHand != 10 {
		t.Fatalf("on hand = %d, want 10 (rolled back)", p.OnHand)
	}
}

func TestActionWithinPromiseBoundsSucceeds(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "stock", 10, nil)
	})
	pr := grantOne(t, m, requestQuantity("holder", "stock", 8))
	_ = pr
	// Draining 2 leaves 8 >= promised 8: allowed.
	resp, err := m.Execute(bg, Request{
		Client: "walkin",
		Action: func(ac *ActionContext) (any, error) {
			_, err := ac.Resources.AdjustPool(ac.Tx, "stock", -2)
			return nil, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ActionErr != nil {
		t.Fatalf("in-bounds action failed: %v", resp.ActionErr)
	}
}

func TestDisablePostCheckAblation(t *testing.T) {
	// E9 ablation: without the post-action check, a rogue action corrupts
	// promised availability and nobody notices until the promise is used.
	m, _ := newManager(t, Config{DisablePostCheck: true})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "stock", 10, nil)
	})
	_ = grantOne(t, m, requestQuantity("holder", "stock", 8))
	resp, err := m.Execute(bg, Request{
		Client: "rogue",
		Action: func(ac *ActionContext) (any, error) {
			_, err := ac.Resources.AdjustPool(ac.Tx, "stock", -5)
			return nil, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ActionErr != nil {
		t.Fatalf("ablated manager should accept the violating action: %v", resp.ActionErr)
	}
	tx := m.Store().Begin(txn.Block)
	defer tx.Commit()
	p, _ := m.Resources().Pool(tx, "stock")
	if p.OnHand != 5 {
		t.Fatalf("on hand = %d, want 5 (violation committed)", p.OnHand)
	}
}

func TestActionPanicRecovered(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 5, nil)
	})
	resp, err := m.Execute(bg, Request{
		Client: "c",
		Action: func(ac *ActionContext) (any, error) {
			_, _ = ac.Resources.AdjustPool(ac.Tx, "p", -1)
			panic("service bug")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ActionErr == nil {
		t.Fatal("panicking action should report an error")
	}
	tx := m.Store().Begin(txn.Block)
	defer tx.Commit()
	p, _ := m.Resources().Pool(tx, "p")
	if p.OnHand != 5 {
		t.Fatalf("panicking action's writes survived: %d", p.OnHand)
	}
}

// --- Environment validation. ---

func TestEnvErrors(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 10, nil)
	})
	pr := grantOne(t, m, requestQuantity("owner", "p", 5))

	ran := false
	noteAction := func(ac *ActionContext) (any, error) { ran = true; return nil, nil }

	// Unknown promise.
	resp, err := m.Execute(bg, Request{Client: "owner", Env: []EnvEntry{{PromiseID: "prm-404"}}, Action: noteAction})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.ActionErr, ErrPromiseNotFound) || ran {
		t.Fatalf("unknown env promise: err=%v ran=%v", resp.ActionErr, ran)
	}
	// Wrong client.
	resp, _ = m.Execute(bg, Request{Client: "stranger", Env: []EnvEntry{{PromiseID: pr.PromiseID}}, Action: noteAction})
	if !errors.Is(resp.ActionErr, ErrPromiseNotFound) || ran {
		t.Fatalf("foreign env promise: err=%v ran=%v", resp.ActionErr, ran)
	}
	// Released promise.
	if _, err := m.Execute(bg, Request{Client: "owner", Env: []EnvEntry{{PromiseID: pr.PromiseID, Release: true}}}); err != nil {
		t.Fatal(err)
	}
	resp, _ = m.Execute(bg, Request{Client: "owner", Env: []EnvEntry{{PromiseID: pr.PromiseID}}, Action: noteAction})
	if !errors.Is(resp.ActionErr, ErrPromiseReleased) || ran {
		t.Fatalf("released env promise: err=%v ran=%v", resp.ActionErr, ran)
	}
}

func TestPureReleaseMessageWithBadEnv(t *testing.T) {
	m, _ := newManager(t, Config{})
	resp, err := m.Execute(bg, Request{Client: "c", Env: []EnvEntry{{PromiseID: "prm-404", Release: true}}})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.ActionErr, ErrPromiseNotFound) {
		t.Fatalf("ActionErr = %v", resp.ActionErr)
	}
}

// --- Duration handling. ---

func TestDurationClamping(t *testing.T) {
	m, fake := newManager(t, Config{DefaultDuration: time.Minute, MaxDuration: 5 * time.Minute})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 10, nil)
	})
	now := fake.Now()
	// Default applies.
	pr := grantOne(t, m, requestQuantity("c", "p", 1))
	if got := pr.Expires.Sub(now); got != time.Minute {
		t.Fatalf("default duration = %v", got)
	}
	// Requested duration honoured.
	pr2 := grantOne(t, m, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("p", 1)},
		Duration:   2 * time.Minute,
	}}})
	if got := pr2.Expires.Sub(now); got != 2*time.Minute {
		t.Fatalf("requested duration = %v", got)
	}
	// Excessive duration capped — "the promise manager might … offer a
	// guarantee that expires sooner than the client wished" (§6).
	pr3 := grantOne(t, m, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("p", 1)},
		Duration:   time.Hour,
	}}})
	if got := pr3.Expires.Sub(now); got != 5*time.Minute {
		t.Fatalf("capped duration = %v", got)
	}
}

// --- Misc API. ---

func TestGrantedHelperAndMultipleRequests(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 5, nil)
	})
	resp, err := m.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{
		{RequestID: "a", Predicates: []Predicate{Quantity("p", 3)}},
		{RequestID: "b", Predicates: []Predicate{Quantity("p", 3)}}, // fails: only 2 left
		{RequestID: "c", Predicates: []Predicate{Quantity("p", 2)}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Promises) != 3 {
		t.Fatalf("responses = %d", len(resp.Promises))
	}
	if !resp.Promises[0].Accepted || resp.Promises[1].Accepted || !resp.Promises[2].Accepted {
		t.Fatalf("accept pattern wrong: %+v", resp.Promises)
	}
	if got := resp.Granted(); len(got) != 2 {
		t.Fatalf("Granted() = %v", got)
	}
}

func TestActivePromisesAndInfo(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 10, nil)
	})
	pr := grantOne(t, m, requestQuantity("c", "p", 4))
	list, err := m.ActivePromises()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != pr.PromiseID {
		t.Fatalf("ActivePromises = %+v", list)
	}
	info, err := m.PromiseInfo(pr.PromiseID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Client != "c" || len(info.Predicates) != 1 {
		t.Fatalf("info = %+v", info)
	}
	if _, err := m.PromiseInfo("prm-404"); !errors.Is(err, ErrPromiseNotFound) {
		t.Fatalf("missing info: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	store := txn.NewStore()
	rm, err := resource.NewManager(store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Resources: rm}); err == nil {
		t.Fatal("Resources without Store accepted")
	}
	if _, err := New(Config{Store: store, Resources: rm}); err != nil {
		t.Fatalf("explicit store+rm: %v", err)
	}
	// Second New on the same store must fail (tables exist).
	if _, err := New(Config{Store: store, Resources: rm}); err == nil {
		t.Fatal("double New on one store accepted")
	}
}

func TestFromExprPredicates(t *testing.T) {
	p, err := FromExpr("pink-widgets", "quantity >= 5")
	if err != nil {
		t.Fatal(err)
	}
	if p.View != AnonymousView || p.Qty != 5 || p.Pool != "pink-widgets" {
		t.Fatalf("FromExpr = %+v", p)
	}
	if _, err := FromExpr("acct", "balance >= 100"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"quantity <= 5",          // upper bound
		"floor = 5",              // wrong property
		"quantity >= 0",          // non-positive
		"quantity >= 1 or false", // outside fragment
		"quantity >",             // syntax error
	} {
		if _, err := FromExpr("p", bad); err == nil {
			t.Errorf("FromExpr(%q) accepted", bad)
		}
	}
}

func TestPredicateStringForms(t *testing.T) {
	if s := Quantity("p", 5).String(); s != "quantity(p) >= 5" {
		t.Fatalf("quantity string = %q", s)
	}
	if s := Named("i").String(); s != "instance(i) available" {
		t.Fatalf("named string = %q", s)
	}
	mp := MustProperty("floor = 5")
	if s := mp.String(); s != "match(floor = 5)" {
		t.Fatalf("property string = %q", s)
	}
	// Without source, falls back to the AST rendering.
	mp.Source = ""
	if s := mp.String(); s == "" {
		t.Fatal("property string empty")
	}
	if (Predicate{View: View(9)}).Validate() == nil {
		t.Fatal("unknown view validated")
	}
	_ = fmt.Sprint(AnonymousView, NamedView, PropertyView, View(9))
	_ = fmt.Sprint(Active, Released, Expired, State(9))
}

func TestMustPropertyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustProperty on bad input did not panic")
		}
	}()
	MustProperty("((")
}

func TestPropertyPredicateEvalErrorIsNoEdge(t *testing.T) {
	// An instance missing the predicate's property simply cannot back it.
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		rm := m.Resources()
		if err := rm.CreateInstance(tx, "car", map[string]predicate.Value{"km": predicate.Int(1000)}); err != nil {
			return err
		}
		return rm.CreateInstance(tx, "room", map[string]predicate.Value{"floor": predicate.Int(5)})
	})
	pr := grantOne(t, m, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{MustProperty("floor = 5")},
	}}})
	if !pr.Accepted {
		t.Fatalf("rejected: %s", pr.Reason)
	}
	info, _ := m.PromiseInfo(pr.PromiseID)
	if info.Assigned[0] != "room" {
		t.Fatalf("assigned %q, want room", info.Assigned[0])
	}
}
