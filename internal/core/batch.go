package core

import (
	"context"
	"fmt"

	"repro/internal/txn"
)

// This file is the batched request surface shared by the single-store
// Manager and the ShardedManager. Batching lets the daemon amortize lock
// acquisition and per-transaction overhead (sweep, commit) over many
// independent promise operations from one client.

// GrantBatch processes many independent promise requests for one client in
// a single transaction. Each PromiseRequest is still atomic on its own —
// one rejection does not affect its neighbours — exactly as if they had
// arrived in one §6 message.
func (m *Manager) GrantBatch(ctx context.Context, client string, reqs []PromiseRequest) ([]PromiseResponse, error) {
	resp, err := m.Execute(ctx, Request{Client: client, PromiseRequests: reqs})
	if err != nil {
		return nil, err
	}
	return resp.Promises, nil
}

// CheckBatch reports, per promise id, whether the promise is currently
// usable by client: nil when active and unexpired, otherwise the matching
// sentinel error (ErrPromiseNotFound, ErrPromiseReleased,
// ErrPromiseExpired). All ids are checked in one read-only transaction. The
// outer error reports a failure of the check itself (a cancelled context, a
// dead transport), never a per-promise state.
func (m *Manager) CheckBatch(ctx context.Context, client string, ids []string) ([]error, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]error, len(ids))
	tx := m.store.Begin(txn.Block)
	defer tx.Commit()
	for i, id := range ids {
		_, out[i] = m.promiseForClient(tx, client, id)
	}
	return out, nil
}

// usable reports whether the promise exists, belongs to client, and is
// still active and unexpired, in a transaction of its own.
func (m *Manager) usable(client, id string) error {
	tx := m.store.Begin(txn.Block)
	defer tx.Commit()
	_, err := m.promiseForClient(tx, client, id)
	return err
}

// envOK validates an environment in a read-only transaction: every promise
// exists, belongs to client, and has not expired or been released.
func (m *Manager) envOK(client string, env []EnvEntry) error {
	if client == "" {
		return fmt.Errorf("%w: missing client", ErrBadRequest)
	}
	tx := m.store.Begin(txn.Block)
	defer tx.Commit()
	return m.validateEnv(tx, client, env)
}
