package core

import (
	"context"
	"fmt"
)

// This file is the batched request surface shared by the single-store
// Manager and the ShardedManager. Batching lets the daemon amortize lock
// acquisition and per-transaction overhead (sweep, commit) over many
// independent promise operations from one client.

// GrantBatch processes many independent promise requests for one client in
// a single transaction. Each PromiseRequest is still atomic on its own —
// one rejection does not affect its neighbours — exactly as if they had
// arrived in one §6 message.
func (m *Manager) GrantBatch(ctx context.Context, client string, reqs []PromiseRequest) ([]PromiseResponse, error) {
	resp, err := m.Execute(ctx, Request{Client: client, PromiseRequests: reqs})
	if err != nil {
		return nil, err
	}
	return resp.Promises, nil
}

// CheckBatch reports, per promise id, whether the promise is currently
// usable by client: nil when active and unexpired, otherwise the matching
// sentinel error (ErrPromiseNotFound, ErrPromiseReleased,
// ErrPromiseExpired). All ids are checked against one immutable committed
// store snapshot, with zero lock acquisition — checks never block grants
// and never queue behind each other, no matter how many writers are
// running. The outer error reports a failure of the check itself (a
// cancelled context, a dead transport), never a per-promise state.
func (m *Manager) CheckBatch(ctx context.Context, client string, ids []string) ([]error, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]error, len(ids))
	snap := m.store.Snapshot()
	for i, id := range ids {
		_, out[i] = m.promiseForClient(snap, client, id)
	}
	return out, nil
}

// usable reports whether the promise exists, belongs to client, and is
// still active and unexpired, against the latest committed snapshot.
func (m *Manager) usable(client, id string) error {
	_, err := m.promiseForClient(m.store.Snapshot(), client, id)
	return err
}

// envOK validates an environment against the latest committed snapshot:
// every promise exists, belongs to client, and has not expired or been
// released.
func (m *Manager) envOK(client string, env []EnvEntry) error {
	if client == "" {
		return fmt.Errorf("%w: missing client", ErrBadRequest)
	}
	return m.validateEnv(m.store.Snapshot(), client, env)
}
