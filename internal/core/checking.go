package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/predicate"
	"repro/internal/resource"
	"repro/internal/txn"
)

// This file implements "the most critical part of the promise manager …
// the code that guarantees the validity of non-expired promises by ensuring
// that sufficient resources are available to satisfy every active
// predicate" (§8). Promise checking runs in three places, exactly as the
// paper lists: making new promises, executing actions (post-check), and
// updating existing promises.

// slotPlan is the resolved backing for one new predicate.
type slotPlan struct {
	// assign is the instance backing a named/property predicate.
	assign string
	// localQty / delegQty split an anonymous quantity between local stock
	// and an upstream supplier promise (§5 delegation).
	localQty int64
	delegQty int64
	delegID  string
}

// grantPlan is a feasible assignment for a whole promise request.
type grantPlan struct {
	slots []slotPlan
	// realloc maps existing property slots to new instances — the
	// "tentative allocation" rearrangement of §5.
	realloc map[string]string
}

// propSlot is one active property-view predicate with its tentative
// assignment. sole marks slots whose promise has no other predicate — the
// shape the cross-shard coordinator may migrate between shards.
type propSlot struct {
	key      string
	expr     predicate.Expr
	assigned string
	sole     bool
}

// plan decides whether the predicates can all be guaranteed, treating the
// promises in releases as already gone (§4, third requirement). It returns
// (nil, reason, nil) for a clean rejection — "unfulfillable promise
// requests are rejected immediately rather than blocking" (§9).
//
// Planning may obtain upstream promises for delegation. Because a rejection
// leaves the local transaction alive (other promise requests in the same
// message still proceed), upstream promises acquired by a rejected plan are
// compensated here, immediately; upstream promises of a successful plan are
// registered on st for compensation if the whole transaction later aborts.
//
// On rejection, counter carries the manager's best counter-offer (§6's
// "accepted with the condition XX" direction): the largest quantities it
// could promise for the pools that fell short.
func (m *Manager) plan(ctx context.Context, tx *txn.Tx, st *execState, preds []Predicate, releases []*Promise, d time.Duration) (_ *grantPlan, reason string, counter []Predicate, _ error) {
	planState := &execState{}
	plan, reason, counter, err := m.planInner(ctx, tx, planState, preds, releases, d)
	acquired := planState.undoUpstream
	if plan == nil {
		for i := len(acquired) - 1; i >= 0; i-- {
			acquired[i]()
		}
		return nil, reason, counter, err
	}
	st.undoUpstream = append(st.undoUpstream, acquired...)
	return plan, "", nil, nil
}

func (m *Manager) planInner(ctx context.Context, tx *txn.Tx, st *execState, preds []Predicate, releases []*Promise, d time.Duration) (*grantPlan, string, []Predicate, error) {
	excludedSlots := make(map[string]bool)
	freedQty := make(map[string]int64) // pool -> quantity freed by releases
	freedInst := make(map[string]bool) // instances freed by releases
	for _, rp := range releases {
		for i, pred := range rp.Predicates {
			slot := slotKey(rp.ID, i)
			excludedSlots[slot] = true
			switch pred.View {
			case AnonymousView:
				q, err := m.ledger.Reserved(tx, pred.Pool, slot)
				if err != nil {
					return nil, "", nil, err
				}
				freedQty[pred.Pool] += q
			case NamedView, PropertyView:
				if i < len(rp.Assigned) && rp.Assigned[i] != "" {
					holder, err := m.tags.Holder(tx, rp.Assigned[i])
					if err != nil {
						return nil, "", nil, err
					}
					if holder == slot {
						freedInst[rp.Assigned[i]] = true
					}
				}
			}
		}
	}

	plan := &grantPlan{slots: make([]slotPlan, len(preds)), realloc: make(map[string]string)}

	// --- Anonymous predicates: escrow arithmetic per pool (§3.1). ---
	needed := make(map[string]int64)
	for _, p := range preds {
		if p.View == AnonymousView {
			needed[p.Pool] += p.Qty
		}
	}
	localAvail := make(map[string]int64)
	delegAvail := make(map[string]bool)
	pools := make([]string, 0, len(needed))
	for pool := range needed {
		pools = append(pools, pool)
	}
	sort.Strings(pools)
	var shortReasons []string
	var counter []Predicate
	for _, pool := range pools {
		need := needed[pool]
		unres, err := m.ledger.Unreserved(tx, pool)
		if err != nil {
			return nil, fmt.Sprintf("pool %q: %v", pool, err), nil, nil
		}
		avail := unres + freedQty[pool]
		localAvail[pool] = avail
		if need > avail {
			if m.cfg.Suppliers[pool] == nil {
				// Reject, but tell the client the best we could do (§6's
				// "accepted with the condition XX" direction).
				shortReasons = append(shortReasons,
					fmt.Sprintf("pool %q: requested %d, only %d available", pool, need, avail))
				if avail > 0 {
					counter = append(counter, Quantity(pool, avail))
				}
				continue
			}
			delegAvail[pool] = true
		}
	}
	if len(shortReasons) > 0 {
		return nil, strings.Join(shortReasons, "; "), counter, nil
	}
	// Obtain upstream promises for shortfalls before mutating anything, so
	// an upstream rejection leaves released promises untouched.
	remaining := make(map[string]int64, len(localAvail))
	for pool, avail := range localAvail {
		remaining[pool] = avail
	}
	for i, p := range preds {
		if p.View != AnonymousView {
			continue
		}
		local := p.Qty
		if local > remaining[p.Pool] {
			local = remaining[p.Pool]
		}
		if local < 0 {
			local = 0
		}
		short := p.Qty - local
		if short > 0 {
			if !delegAvail[p.Pool] {
				return nil, fmt.Sprintf("pool %q: internal shortfall", p.Pool), nil, nil
			}
			sup := m.cfg.Suppliers[p.Pool]
			upID, err := sup.RequestPromise(ctx, p.Pool, short, d)
			if err != nil {
				return nil, fmt.Sprintf("pool %q: upstream: %v", p.Pool, err), nil, nil
			}
			// Compensation runs even when the request's context has died —
			// the upstream hold must never leak.
			st.undoUpstream = append(st.undoUpstream, func() { _ = sup.ReleasePromise(context.Background(), upID) })
			plan.slots[i].delegQty = short
			plan.slots[i].delegID = upID
		}
		plan.slots[i].localQty = local
		remaining[p.Pool] -= local
	}

	// --- Named and property predicates over instances (§3.2, §3.3). ---
	// A request with only anonymous predicates needs none of the instance
	// machinery below — skipping it keeps the common grant free of the
	// O(active-promise) and O(instance) scans (the expiry heap removed the
	// other per-request scan; see sweepExpired).
	instancePreds := false
	for _, p := range preds {
		if p.View != AnonymousView {
			instancePreds = true
			break
		}
	}
	if !instancePreds {
		return plan, "", nil, nil
	}

	// Fast path: an all-property request on a transaction with no writes
	// can be served from the persistent matcher state (propmatch.go) —
	// O(delta) instead of the three full table scans below. The gate
	// conditions are exactly the preconditions of propmatch.go's
	// consistency argument: no releases and no prior writes (so the
	// committed state the matcher mirrors IS the transaction's view, and a
	// sweep that lapsed anything already disqualified us), matching mode,
	// and no named predicates (whose claims would carve instances out of
	// the candidate set).
	if m.cfg.PropertyMode == MatchingMode && !m.cfg.disableFastPath &&
		len(releases) == 0 && tx.Writes() == 0 {
		allProperty := true
		for _, p := range preds {
			if p.View != PropertyView {
				allProperty = false
				break
			}
		}
		if allProperty {
			feasible, err := m.planPropertyFast(tx, preds, plan)
			if err != nil {
				return nil, "", nil, err
			}
			if !feasible {
				return nil, "property predicates not jointly satisfiable with outstanding promises", nil, nil
			}
			return plan, "", nil, nil
		}
	}

	instances, err := m.rm.Instances(tx)
	if err != nil {
		return nil, "", nil, err
	}
	holders, err := m.tags.Holders(tx)
	if err != nil {
		return nil, "", nil, err
	}
	activeProps, err := m.activePropertySlots(tx, excludedSlots)
	if err != nil {
		return nil, "", nil, err
	}
	propSlotSet := make(map[string]bool, len(activeProps))
	for _, s := range activeProps {
		propSlotSet[s.key] = true
	}

	// Resolve named predicates, collecting instances that must be freed
	// from property assignments by reallocation.
	claimed := make(map[string]int) // instance -> index of claiming named pred
	mustFree := make(map[string]bool)
	for i, p := range preds {
		if p.View != NamedView {
			continue
		}
		if prev, dup := claimed[p.Instance]; dup {
			return nil, fmt.Sprintf("instance %q requested twice (predicates %d and %d)", p.Instance, prev, i), nil, nil
		}
		in, err := m.rm.Instance(tx, p.Instance)
		if err != nil {
			return nil, fmt.Sprintf("instance %q: %v", p.Instance, err), nil, nil
		}
		switch {
		case in.Status == resource.Available:
			// free
		case in.Status == resource.Promised && excludedSlots[holders[p.Instance]]:
			// held by a promise being handed back
		case in.Status == resource.Promised && propSlotSet[holders[p.Instance]] && m.cfg.PropertyMode == MatchingMode:
			// tentatively allocated to a property promise; try to move it
			mustFree[p.Instance] = true
		default:
			return nil, fmt.Sprintf("instance %q is %v", p.Instance, in.Status), nil, nil
		}
		claimed[p.Instance] = i
		plan.slots[i].assign = p.Instance
	}

	// Property predicates.
	var newProps []int
	for i, p := range preds {
		if p.View == PropertyView {
			newProps = append(newProps, i)
		}
	}
	if len(newProps) == 0 && len(mustFree) == 0 {
		return plan, "", nil, nil
	}

	if m.cfg.PropertyMode == FirstFitMode {
		// Greedy: first free satisfying instance, no reallocation. Freed
		// instances from released promises count as free only while still
		// tagged promised (a taken instance is gone for good).
		used := make(map[string]bool)
		for _, i := range newProps {
			found := ""
			for _, in := range instances {
				if used[in.ID] {
					continue
				}
				if _, c := claimed[in.ID]; c {
					continue
				}
				free := in.Status == resource.Available ||
					(freedInst[in.ID] && in.Status == resource.Promised)
				if !free {
					continue
				}
				ok, err := predicate.Eval(preds[i].Expr, in.Env())
				if err != nil || !ok {
					continue
				}
				found = in.ID
				break
			}
			if found == "" {
				return nil, fmt.Sprintf("no available instance satisfies %s", preds[i]), nil, nil
			}
			used[found] = true
			plan.slots[i].assign = found
		}
		return plan, "", nil, nil
	}

	// MatchingMode: incremental matching over all property slots —
	// existing tentative allocations plus the new predicates — against
	// every instance that is free, freed by the releases, or tentatively
	// held by a property slot (§5 satisfiability check + tentative
	// allocation). Existing assignments seed the matching; only new or
	// displaced slots need augmenting paths (see lazymatch.go).
	var right []*resource.Instance
	for _, in := range instances {
		if _, c := claimed[in.ID]; c {
			continue // a new named predicate takes it
		}
		switch {
		case in.Status == resource.Available:
		case freedInst[in.ID] && in.Status == resource.Promised:
		case in.Status == resource.Promised && propSlotSet[holders[in.ID]]:
		default:
			continue
		}
		right = append(right, in)
	}

	exprs := make([]predicate.Expr, 0, len(activeProps)+len(newProps))
	initial := make([]string, 0, len(activeProps)+len(newProps))
	for _, s := range activeProps {
		exprs = append(exprs, s.expr)
		initial = append(initial, s.assigned)
	}
	for _, i := range newProps {
		exprs = append(exprs, preds[i].Expr)
		initial = append(initial, "")
	}
	assignment, ok := newLazyMatcher(exprs, right).solve(initial)
	if !ok {
		return nil, "property predicates not jointly satisfiable with outstanding promises", nil, nil
	}
	for k, s := range activeProps {
		if assignment[k] != s.assigned {
			plan.realloc[s.key] = assignment[k]
		}
	}
	for k, i := range newProps {
		plan.slots[i].assign = assignment[len(activeProps)+k]
	}
	return plan, "", nil, nil
}

// activePropertySlots lists every property predicate of every active
// promise, minus excluded slots.
func (m *Manager) activePropertySlots(r txn.Reader, excluded map[string]bool) ([]propSlot, error) {
	promises, err := m.activePromises(r)
	if err != nil {
		return nil, err
	}
	var out []propSlot
	for _, p := range promises {
		for i, pred := range p.Predicates {
			if pred.View != PropertyView {
				continue
			}
			key := slotKey(p.ID, i)
			if excluded[key] {
				continue
			}
			assigned := ""
			if i < len(p.Assigned) {
				assigned = p.Assigned[i]
			}
			out = append(out, propSlot{key: key, expr: pred.Expr, assigned: assigned, sole: len(p.Predicates) == 1})
		}
	}
	return out, nil
}

// applyGrant reserves, tags and records the backing decided by plan.
func (m *Manager) applyGrant(tx *txn.Tx, prm *Promise, plan *grantPlan) error {
	if err := m.applyRealloc(tx, plan.realloc); err != nil {
		return err
	}
	n := len(prm.Predicates)
	prm.Assigned = make([]string, n)
	prm.DelegatedQty = make([]int64, n)
	prm.DelegatedID = make([]string, n)
	for i, pred := range prm.Predicates {
		slot := slotKey(prm.ID, i)
		sp := plan.slots[i]
		switch pred.View {
		case AnonymousView:
			if sp.localQty > 0 {
				if err := m.ledger.Reserve(tx, pred.Pool, slot, sp.localQty); err != nil {
					return fmt.Errorf("core: grant of %s failed after planning: %w", pred, err)
				}
			}
			prm.DelegatedQty[i] = sp.delegQty
			prm.DelegatedID[i] = sp.delegID
		case NamedView, PropertyView:
			if err := m.tags.Acquire(tx, sp.assign, slot); err != nil {
				return fmt.Errorf("core: grant of %s failed after planning: %w", pred, err)
			}
			prm.Assigned[i] = sp.assign
		}
	}
	return m.putPromise(tx, prm)
}

// applyRealloc moves tentative property allocations: all old tags are
// released first, then the new ones acquired, then the owning promise rows
// updated — one atomic rearrangement inside the request transaction.
func (m *Manager) applyRealloc(tx *txn.Tx, realloc map[string]string) error {
	if len(realloc) == 0 {
		return nil
	}
	type move struct {
		promiseID string
		predIdx   int
		slot      string
		from, to  string
	}
	var moves []move
	for slot, to := range realloc {
		pid, idx, ok := parseSlotKey(slot)
		if !ok {
			return fmt.Errorf("core: bad slot key %q", slot)
		}
		p, err := m.promise(tx, pid)
		if err != nil {
			return err
		}
		from := ""
		if idx < len(p.Assigned) {
			from = p.Assigned[idx]
		}
		moves = append(moves, move{promiseID: pid, predIdx: idx, slot: slot, from: from, to: to})
	}
	// Phase 1: release all old tags.
	for _, mv := range moves {
		if mv.from == "" || mv.from == mv.to {
			continue
		}
		holder, err := m.tags.Holder(tx, mv.from)
		if err != nil {
			return err
		}
		if holder == mv.slot {
			if err := m.tags.Release(tx, mv.from, mv.slot); err != nil {
				return err
			}
		}
	}
	// Phase 2: acquire new tags and update promise rows.
	for _, mv := range moves {
		if mv.from == mv.to {
			continue
		}
		if err := m.tags.Acquire(tx, mv.to, mv.slot); err != nil {
			return err
		}
		p, err := m.promise(tx, mv.promiseID)
		if err != nil {
			return err
		}
		p.Assigned[mv.predIdx] = mv.to
		if err := m.putPromise(tx, p); err != nil {
			return err
		}
	}
	return nil
}

// violationError names the first promise a post-action check found broken,
// so the Violated lifecycle event can address the promise's owner. Its text
// is exactly the message checkAll always produced.
type violationError struct {
	PromiseID string
	Client    string
	err       error
}

func (v *violationError) Error() string { return v.err.Error() }
func (v *violationError) Unwrap() error { return v.err }

// checkAll is the post-action promise check of §8: "the promise manager
// also has to check for consistency after an action has been completed.
// This ensures that the state changes made by the application have not
// violated any unrelated promises." It returns a descriptive error when
// any active promise can no longer be honoured.
func (m *Manager) checkAll(tx *txn.Tx) error {
	// Anonymous view: the escrow sums must still fit the pools.
	if err := m.ledger.CheckAllInvariants(tx); err != nil {
		return err
	}
	promises, err := m.activePromises(tx)
	if err != nil {
		return err
	}
	brokenProperty := false
	for _, p := range promises {
		for i, pred := range p.Predicates {
			slot := slotKey(p.ID, i)
			switch pred.View {
			case NamedView:
				if err := m.slotHealthy(tx, p.Assigned[i], slot, nil); err != nil {
					return &violationError{PromiseID: p.ID, Client: p.Client,
						err: fmt.Errorf("promise %s predicate %d (%s): %v", p.ID, i, pred, err)}
				}
			case PropertyView:
				if err := m.slotHealthy(tx, p.Assigned[i], slot, pred.Expr); err != nil {
					if m.cfg.PropertyMode == FirstFitMode {
						return &violationError{PromiseID: p.ID, Client: p.Client,
							err: fmt.Errorf("promise %s predicate %d (%s): %v", p.ID, i, pred, err)}
					}
					brokenProperty = true
				}
			}
		}
	}
	if brokenProperty {
		// Tentative allocations can be rearranged (§5): the promises are
		// still honourable if a fresh matching saturates.
		return m.rematchProperties(tx)
	}
	return nil
}

// slotHealthy verifies one instance-backed slot: instance present, still
// tagged promised, held by this slot, and (for property view) still
// satisfying the predicate.
func (m *Manager) slotHealthy(r txn.Reader, inst, slot string, expr predicate.Expr) error {
	if inst == "" {
		return fmt.Errorf("no assigned instance")
	}
	in, err := m.rm.Instance(r, inst)
	if err != nil {
		return fmt.Errorf("assigned instance %q: %v", inst, err)
	}
	if in.Status != resource.Promised {
		return fmt.Errorf("assigned instance %q is %v, want promised", inst, in.Status)
	}
	holder, err := m.tags.Holder(r, inst)
	if err != nil {
		return err
	}
	if holder != slot {
		return fmt.Errorf("assigned instance %q is held by %q", inst, holder)
	}
	if expr != nil {
		ok, err := predicate.Eval(expr, in.Env())
		if err != nil || !ok {
			return fmt.Errorf("assigned instance %q no longer satisfies predicate (%v)", inst, err)
		}
	}
	return nil
}

// rematchProperties attempts a full reallocation of every property slot.
func (m *Manager) rematchProperties(tx *txn.Tx) error {
	slots, err := m.activePropertySlots(tx, nil)
	if err != nil {
		return err
	}
	holders, err := m.tags.Holders(tx)
	if err != nil {
		return err
	}
	slotSet := make(map[string]bool, len(slots))
	for _, s := range slots {
		slotSet[s.key] = true
	}
	instances, err := m.rm.Instances(tx)
	if err != nil {
		return err
	}
	var right []*resource.Instance
	for _, in := range instances {
		if in.Status == resource.Available ||
			(in.Status == resource.Promised && slotSet[holders[in.ID]]) {
			right = append(right, in)
		}
	}
	exprs := make([]predicate.Expr, len(slots))
	initial := make([]string, len(slots))
	for i, s := range slots {
		exprs[i] = s.expr
		initial[i] = s.assigned
	}
	assignment, ok := newLazyMatcher(exprs, right).solve(initial)
	if !ok {
		return fmt.Errorf("property promises no longer jointly satisfiable")
	}
	realloc := make(map[string]string)
	for i, s := range slots {
		if assignment[i] != s.assigned {
			realloc[s.key] = assignment[i]
		}
	}
	return m.applyRealloc(tx, realloc)
}
