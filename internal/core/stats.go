package core

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// managerMetrics instruments the manager's hot paths. Counters are cheap
// (atomic adds); the latency histogram records every Execute call.
type managerMetrics struct {
	grants       metrics.Counter
	rejections   metrics.Counter
	releases     metrics.Counter
	expirations  metrics.Counter
	preemptions  metrics.Counter
	violations   metrics.Counter
	actionErrors metrics.Counter
	deadlocks    metrics.Counter // internal deadlock retries
	expiryErrors metrics.Counter // failed deadline-alarm expiry passes
	requests     metrics.Counter
	latency      metrics.Histogram
}

// Stats is a point-in-time snapshot of manager activity, for operators and
// experiment harnesses.
type Stats struct {
	// Requests is the number of Execute calls completed.
	Requests int64
	// Grants and Rejections count promise-request outcomes.
	Grants, Rejections int64
	// Releases counts promises handed back (including atomic modifies).
	Releases int64
	// Expirations counts promises lapsed by the sweep.
	Expirations int64
	// Preemptions counts preemptible promises revoked before their deadline
	// by higher-tier grants (preempt.go).
	Preemptions int64
	// Violations counts actions rolled back by the post-action check.
	Violations int64
	// ActionErrors counts actions that failed on their own.
	ActionErrors int64
	// DeadlockRetries counts internal transaction retries.
	DeadlockRetries int64
	// ExpiryErrors counts deadline-alarm expiry passes that failed and were
	// re-armed on a backoff; a non-zero steady climb means promises are not
	// lapsing at their deadlines (the request-path check still frees them).
	ExpiryErrors int64
	// Latency summarises Execute latency. Count is the true number of
	// observations; percentiles come from bounded reservoir samples (exact
	// until a reservoir fills). For a sharded manager the percentiles merge
	// every shard's retained samples — see ShardedManager.Stats for the
	// weighting caveat under heavy shard skew.
	Latency metrics.Summary
	// PerShard holds each shard's own counters and latency histogram
	// summary, in shard order. Empty for the single-store Manager.
	PerShard []ShardStat
	// Imbalance is the shard-imbalance gauge: the busiest shard's request
	// count divided by the mean per-shard request count. 1.0 means
	// perfectly balanced load; N (the shard count) means one shard took
	// everything. Zero when idle or unsharded.
	Imbalance float64
	// PrefilterSkipped counts shards that the candidate-index pre-filter
	// excluded from cross-shard property reservations (each skipped shard
	// is one reservation, one open transaction and one commit that never
	// happened). Zero for the single-store Manager.
	PrefilterSkipped int64
}

// ShardStat is one shard's slice of a sharded manager's activity.
type ShardStat struct {
	// Shard is the shard index.
	Shard int
	// Requests, Grants and Rejections count the shard's own work; a
	// cross-shard pipeline counts once on every shard it reserved.
	Requests, Grants, Rejections int64
	// Latency summarises the shard's own request latency.
	Latency metrics.Summary
	// Epoch is the shard's store-snapshot epoch at capture time — the
	// event-bus sequence number the shard's committed state had reached.
	// Because all shards share one bus, comparing epochs bounds how much
	// the capture pass skewed across shards.
	Epoch uint64
}

// String renders the snapshot on one line (plus shard balance when sharded).
func (s Stats) String() string {
	out := fmt.Sprintf(
		"requests=%d grants=%d rejections=%d releases=%d expirations=%d violations=%d actionErrs=%d deadlockRetries=%d p50=%v p99=%v",
		s.Requests, s.Grants, s.Rejections, s.Releases, s.Expirations,
		s.Violations, s.ActionErrors, s.DeadlockRetries, s.Latency.P50, s.Latency.P99)
	if s.Preemptions > 0 {
		out += fmt.Sprintf(" preemptions=%d", s.Preemptions)
	}
	if s.ExpiryErrors > 0 {
		out += fmt.Sprintf(" expiryErrs=%d", s.ExpiryErrors)
	}
	if len(s.PerShard) > 0 {
		out += fmt.Sprintf(" shards=%d imbalance=%.2f", len(s.PerShard), s.Imbalance)
	}
	if s.PrefilterSkipped > 0 {
		out += fmt.Sprintf(" prefilterSkipped=%d", s.PrefilterSkipped)
	}
	return out
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Requests:        m.metrics.requests.Value(),
		Grants:          m.metrics.grants.Value(),
		Rejections:      m.metrics.rejections.Value(),
		Releases:        m.metrics.releases.Value(),
		Expirations:     m.metrics.expirations.Value(),
		Preemptions:     m.metrics.preemptions.Value(),
		Violations:      m.metrics.violations.Value(),
		ActionErrors:    m.metrics.actionErrors.Value(),
		DeadlockRetries: m.metrics.deadlocks.Value(),
		ExpiryErrors:    m.metrics.expiryErrors.Value(),
		Latency:         m.metrics.latency.Summarize(),
	}
}

// observeExecute records one completed Execute call.
func (m *Manager) observeExecute(start time.Time, resp *Response) {
	m.metrics.requests.Inc()
	m.metrics.latency.Observe(time.Since(start))
	if resp == nil {
		return
	}
	for _, pr := range resp.Promises {
		if pr.Accepted {
			m.metrics.grants.Inc()
		} else {
			m.metrics.rejections.Inc()
		}
	}
}
