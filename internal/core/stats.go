package core

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// managerMetrics instruments the manager's hot paths. Counters are cheap
// (atomic adds); the latency histogram records every Execute call.
type managerMetrics struct {
	grants       metrics.Counter
	rejections   metrics.Counter
	releases     metrics.Counter
	expirations  metrics.Counter
	violations   metrics.Counter
	actionErrors metrics.Counter
	deadlocks    metrics.Counter // internal deadlock retries
	requests     metrics.Counter
	latency      metrics.Histogram
}

// Stats is a point-in-time snapshot of manager activity, for operators and
// experiment harnesses.
type Stats struct {
	// Requests is the number of Execute calls completed.
	Requests int64
	// Grants and Rejections count promise-request outcomes.
	Grants, Rejections int64
	// Releases counts promises handed back (including atomic modifies).
	Releases int64
	// Expirations counts promises lapsed by the sweep.
	Expirations int64
	// Violations counts actions rolled back by the post-action check.
	Violations int64
	// ActionErrors counts actions that failed on their own.
	ActionErrors int64
	// DeadlockRetries counts internal transaction retries.
	DeadlockRetries int64
	// Latency summarises Execute latency.
	Latency metrics.Summary
}

// String renders the snapshot on one line.
func (s Stats) String() string {
	return fmt.Sprintf(
		"requests=%d grants=%d rejections=%d releases=%d expirations=%d violations=%d actionErrs=%d deadlockRetries=%d p50=%v p99=%v",
		s.Requests, s.Grants, s.Rejections, s.Releases, s.Expirations,
		s.Violations, s.ActionErrors, s.DeadlockRetries, s.Latency.P50, s.Latency.P99)
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Requests:        m.metrics.requests.Value(),
		Grants:          m.metrics.grants.Value(),
		Rejections:      m.metrics.rejections.Value(),
		Releases:        m.metrics.releases.Value(),
		Expirations:     m.metrics.expirations.Value(),
		Violations:      m.metrics.violations.Value(),
		ActionErrors:    m.metrics.actionErrors.Value(),
		DeadlockRetries: m.metrics.deadlocks.Value(),
		Latency:         m.metrics.latency.Summarize(),
	}
}

// observeExecute records one completed Execute call.
func (m *Manager) observeExecute(start time.Time, resp *Response) {
	m.metrics.requests.Inc()
	m.metrics.latency.Observe(time.Since(start))
	if resp == nil {
		return
	}
	for _, pr := range resp.Promises {
		if pr.Accepted {
			m.metrics.grants.Inc()
		} else {
			m.metrics.rejections.Inc()
		}
	}
}
