package core

import (
	"sync/atomic"
	"time"

	"repro/internal/predicate"
	"repro/internal/resource"
	"repro/internal/softlock"
	"repro/internal/txn"
)

// This file maintains the per-shard property/instance candidate index that
// backs the cross-shard reservation pre-filter. A property-view predicate
// can in principle be satisfied on any shard, so before this index every
// request carrying one reserved every shard. The index is the placement
// pre-filter: a counted summary of what each shard could actually
// contribute to the joint property match —
//
//   - Hostable: how many instances the shard can offer as match candidates
//     (available instances plus instances tentatively held by active
//     property slots, exactly the candidate set Reservation.PropertyContext
//     would report);
//   - Slots: how many active property-view slots live on the shard (the
//     left vertices the shard contributes, and the slots a migration could
//     displace);
//   - ByProp: per property name, per value, how many hostable instances
//     carry it — enough to answer "could any instance here satisfy this
//     predicate?" conservatively for the common predicate shapes.
//
// The index is updated incrementally by the store's commit hook (invoked
// serially, in commit order, with the fresh snapshot and the commit's
// touched keys), and published for lock-free reading through an atomic
// pointer — the same epoch/RCU pattern as the snapshots themselves. Every
// state change that can affect an instance's hostability touches either
// the instance row (status transitions) or its soft-lock row (holder
// changes), so the touched-key set is a sound trigger; assigned instances
// of touched promise rows are re-examined too, belt and braces.
//
// Soundness contract: the pre-filter may only *over*-approximate. A shard
// reported as unable to contribute (Slots == 0 and Hostable == 0, or — when
// no property slot exists anywhere — no hostable instance that could
// satisfy any requested predicate) is guaranteed to add no left vertex and
// no usable right vertex to the joint bipartite problem, so excluding it
// cannot change feasibility. Anything the index cannot classify
// conservatively reports "may contribute", falling back to the all-shards
// behaviour.

// instContrib is one instance's current contribution to the index.
// pinnedUntil is non-zero for an instance that is not hostable only
// because an active non-property promise holds it: when that promise's
// deadline passes, the first reservation to touch the shard sweeps it
// free, so the pre-filter must treat the shard as contributing again from
// that instant even though no commit has re-classified the instance yet.
type instContrib struct {
	hostable bool
	// tentative distinguishes the two hostable states (available vs held
	// by an active property slot). The counts don't care, but the
	// persistent matcher (propmatch.go) serves the instance's row and
	// tentative flag directly and caches predicate evaluations against its
	// environment — so an Available ↔ property-held transition must count
	// as a contribution change even though every count stays put, or the
	// matcher would keep a stale row pointer and stale status-dependent
	// edge verdicts.
	tentative   bool
	pinnedUntil time.Time
	props       map[string]predicate.Value
}

func (a instContrib) equal(b instContrib) bool {
	if a.hostable != b.hostable || a.tentative != b.tentative || !a.pinnedUntil.Equal(b.pinnedUntil) || len(a.props) != len(b.props) {
		return false
	}
	for k, v := range a.props {
		if w, ok := b.props[k]; !ok || v != w {
			return false
		}
	}
	return true
}

// promContrib is one active promise's contribution: its property-slot
// count and the instances it holds (whose hostability classification
// depends on this promise's shape).
type promContrib struct {
	propSlots int
	assigned  []string
}

// candSummary is the immutable published form of the index, read lock-free
// by the cross-shard coordinator.
type candSummary struct {
	// Hostable counts instances this shard can offer the global property
	// match (available + tentatively property-held).
	Hostable int
	// Slots counts active property-view slots on this shard.
	Slots int
	// Pinned counts instances held by active non-property promises, and
	// MinPinnedExpiry is the earliest deadline among their holders. Past
	// that instant the summary under-counts (a reservation's sweep would
	// free the instance), so the pre-filter must stop trusting a
	// cannot-contribute verdict for this shard.
	Pinned          int
	MinPinnedExpiry time.Time
	// ByProp counts hostable instances per property name and value.
	ByProp map[string]map[predicate.Value]int
}

// candidateIndex is the mutable master state. It is only ever touched by
// the store's serialized commit hook (plus init before the manager is
// shared), so it needs no locking of its own; readers see the published
// summary.
type candidateIndex struct {
	insts    map[string]instContrib
	promises map[string]promContrib
	pinned   map[string]time.Time // instance -> holder promise expiry
	hostable int
	slots    int
	byProp   map[string]map[predicate.Value]int
	// dirty names the properties whose counts changed since the last
	// publication, so candPublish copies one property's value map per
	// touched property instead of the whole ByProp tree (per-property
	// copy-on-write, mirroring the store snapshots' bucketed COW).
	dirty   map[string]struct{}
	summary atomic.Pointer[candSummary]
}

// CandidateSummary returns the manager's current candidate-index summary
// (lock-free).
func (m *Manager) CandidateSummary() (hostable, slots int) {
	s := m.cand.summary.Load()
	return s.Hostable, s.Slots
}

// init performs a full rebuild from a snapshot — called once from New,
// before the manager is visible to other goroutines, so a manager opened
// over a pre-populated store starts with a correct index.
func (m *Manager) candInit(snap *txn.Snapshot) {
	c := &m.cand
	pm := &m.pmatch
	pm.mu.Lock()
	defer pm.mu.Unlock()
	pm.init()
	c.insts = make(map[string]instContrib)
	c.promises = make(map[string]promContrib)
	c.pinned = make(map[string]time.Time)
	c.hostable, c.slots = 0, 0
	c.byProp = make(map[string]map[predicate.Value]int)
	c.dirty = make(map[string]struct{})
	_ = snap.Scan(TablePromises, func(key string, row txn.Row) bool {
		p := &row.(*promiseRow).p
		pc := promContribOf(p)
		if pc.propSlots > 0 || len(pc.assigned) > 0 {
			c.promises[key] = pc
			c.slots += pc.propSlots
		}
		pm.updatePromiseSlotsLocked(key, p)
		return true
	})
	_ = snap.Scan(resource.TableInstances, func(key string, _ txn.Row) bool {
		m.candRecompute(snap, key)
		return true
	})
	m.candPublish()
}

// onCommit is the store commit hook: it folds one commit's touched keys
// into the index and republishes the summary when anything changed. Calls
// are serialized in commit order by the store.
func (m *Manager) onCommit(snap *txn.Snapshot, touched []txn.TableKey) {
	c := &m.cand
	pm := &m.pmatch
	pm.mu.Lock()
	var affected map[string]bool
	touch := func(id string) {
		if affected == nil {
			affected = make(map[string]bool, len(touched))
		}
		affected[id] = true
	}
	changed := false
	for _, tk := range touched {
		switch tk.Table {
		case TablePromises:
			old := c.promises[tk.Key]
			var neu promContrib
			var prow *Promise
			present := false
			if row, err := snap.Get(TablePromises, tk.Key); err == nil {
				prow = &row.(*promiseRow).p
				neu = promContribOf(prow)
				present = true
			}
			pm.updatePromiseSlotsLocked(tk.Key, prow)
			if neu.propSlots != old.propSlots {
				c.slots += neu.propSlots - old.propSlots
				changed = true
			}
			// The promise's shape decides whether its held instances count
			// as tentative (re-matchable) candidates, so both the old and
			// the new holdings are re-classified.
			for _, in := range old.assigned {
				touch(in)
			}
			for _, in := range neu.assigned {
				touch(in)
			}
			if present && (neu.propSlots > 0 || len(neu.assigned) > 0) {
				c.promises[tk.Key] = neu
			} else {
				delete(c.promises, tk.Key)
			}
		case softlock.Table, resource.TableInstances:
			touch(tk.Key)
		}
	}
	for id := range affected {
		if m.candRecompute(snap, id) {
			changed = true
		}
	}
	if changed {
		m.candPublish()
	}
	pm.mu.Unlock()
	// Durability rides the same hook: the commit record is appended after
	// the snapshot is published, still inside the store's serialized hook
	// order, so log order equals version order and a checkpoint taken from
	// any later snapshot covers every record logged before it.
	if m.persist != nil {
		m.persist.logCommit(snap, touched)
	}
}

// promContribOf summarises one active promise row for the index.
func promContribOf(p *Promise) promContrib {
	var pc promContrib
	for i, pred := range p.Predicates {
		if pred.View == PropertyView {
			pc.propSlots++
		}
		if pred.View != AnonymousView && i < len(p.Assigned) && p.Assigned[i] != "" {
			pc.assigned = append(pc.assigned, p.Assigned[i])
		}
	}
	return pc
}

// candRecompute re-classifies one instance against the snapshot and folds
// the difference into the counts and the persistent matcher state (pm.mu
// held by the caller). Returns whether anything changed.
func (m *Manager) candRecompute(snap *txn.Snapshot, id string) bool {
	c := &m.cand
	neu, inst, exists := m.candClassify(snap, id)
	old := c.insts[id]
	if old.equal(neu) {
		return false
	}
	if neu.pinnedUntil.IsZero() {
		delete(c.pinned, id)
	} else {
		c.pinned[id] = neu.pinnedUntil
	}
	if old.hostable {
		c.hostable--
		for k, v := range old.props {
			pv := c.byProp[k]
			pv[v]--
			c.dirty[k] = struct{}{}
			if pv[v] <= 0 {
				delete(pv, v)
				if len(pv) == 0 {
					delete(c.byProp, k)
				}
			}
		}
	}
	if neu.hostable {
		c.hostable++
		for k, v := range neu.props {
			pv := c.byProp[k]
			if pv == nil {
				pv = make(map[predicate.Value]int)
				c.byProp[k] = pv
			}
			pv[v]++
			c.dirty[k] = struct{}{}
		}
	}
	m.pmatch.updateCandLocked(id, neu.hostable, neu.tentative, inst)
	if exists {
		c.insts[id] = neu
	} else {
		delete(c.insts, id)
	}
	return true
}

// candClassify decides whether instance id is currently hostable: free for
// the taking, or tentatively held by an active property slot (which the
// matcher may rearrange). State-active promises past their wall-clock
// expiry still count — over-approximation is the safe direction, and the
// expiry transaction will retouch the rows moments later.
func (m *Manager) candClassify(snap *txn.Snapshot, id string) (instContrib, *resource.Instance, bool) {
	row, err := snap.Get(resource.TableInstances, id)
	if err != nil {
		return instContrib{}, nil, false
	}
	in := row.(*resource.Instance)
	switch in.Status {
	case resource.Available:
		return instContrib{hostable: true, props: in.Props}, in, true
	case resource.Promised:
		holder, err := m.tags.Holder(snap, id)
		if err != nil || holder == "" {
			return instContrib{}, in, true
		}
		pid, idx, ok := parseSlotKey(holder)
		if !ok {
			return instContrib{}, in, true
		}
		prow, err := snap.Get(TablePromises, pid)
		if err != nil {
			return instContrib{}, in, true
		}
		p := &prow.(*promiseRow).p
		if p.State == Active && idx < len(p.Predicates) && p.Predicates[idx].View == PropertyView {
			return instContrib{hostable: true, tentative: true, props: in.Props}, in, true
		}
		if p.State == Active {
			// Held by an active named-view (or mixed) promise: not
			// hostable now, but a reservation's sweep frees it the moment
			// the holder's deadline passes — record that instant so the
			// pre-filter stops trusting this classification after it.
			return instContrib{pinnedUntil: p.Expires}, in, true
		}
		return instContrib{}, in, true
	default: // Taken
		return instContrib{}, in, true
	}
}

// candPublish snapshots the counts into a fresh immutable summary. ByProp
// is copied per property: value maps of properties untouched since the last
// publication are shared with the previous summary (both are immutable once
// published), so a commit touching an instance with few properties pays for
// those properties only, however many distinct properties the shard hosts.
func (m *Manager) candPublish() {
	c := &m.cand
	prev := c.summary.Load()
	s := &candSummary{
		Hostable: c.hostable,
		Slots:    c.slots,
		Pinned:   len(c.pinned),
		ByProp:   make(map[string]map[predicate.Value]int, len(c.byProp)),
	}
	for _, at := range c.pinned {
		if s.MinPinnedExpiry.IsZero() || at.Before(s.MinPinnedExpiry) {
			s.MinPinnedExpiry = at
		}
	}
	for k, pv := range c.byProp {
		if prev != nil {
			if _, isDirty := c.dirty[k]; !isDirty {
				if shared, ok := prev.ByProp[k]; ok {
					s.ByProp[k] = shared
					continue
				}
			}
		}
		cp := make(map[predicate.Value]int, len(pv))
		for v, n := range pv {
			cp[v] = n
		}
		s.ByProp[k] = cp
	}
	for k := range c.dirty {
		delete(c.dirty, k)
	}
	c.summary.Store(s)
}

// indexMay conservatively decides whether any hostable instance counted in
// byProp could satisfy e. ok=false means the expression shape is not
// indexable and the caller must assume "may". When ok is true, may=false
// is a guarantee: no hostable instance on this shard satisfies e
// (evaluation over a missing property is an error, i.e. unsatisfied, which
// is why per-value counts suffice).
func indexMay(e predicate.Expr, byProp map[string]map[predicate.Value]int) (may, ok bool) {
	vals := func(name string) (map[predicate.Value]int, bool) {
		// "id" and "status" are evaluation builtins, not indexed
		// properties; predicates over them are not prunable here.
		if name == "id" || name == "status" {
			return nil, false
		}
		return byProp[name], true
	}
	switch x := e.(type) {
	case *predicate.Lit:
		if b, isBool := x.Val.AsBool(); isBool {
			return b, true
		}
		return true, false
	case *predicate.Ref:
		pv, ok := vals(x.Name)
		if !ok {
			return true, false
		}
		return pv[predicate.Bool(true)] > 0, true
	case *predicate.Not:
		if ref, isRef := x.X.(*predicate.Ref); isRef {
			pv, ok := vals(ref.Name)
			if !ok {
				return true, false
			}
			return pv[predicate.Bool(false)] > 0, true
		}
		if in, isIn := x.X.(*predicate.In); isIn {
			// not (p in {…}) is satisfiable here iff some hostable value
			// of p falls outside the set (In never errors on a present
			// property, so negation is exact; a missing property errors,
			// i.e. unsatisfied, matching Eval).
			ref, isRef := in.X.(*predicate.Ref)
			if !isRef {
				return true, false
			}
			pv, ok := vals(ref.Name)
			if !ok {
				return true, false
			}
			for v := range pv {
				member := false
				for _, s := range in.Set {
					if v.Equal(s) {
						member = true
						break
					}
				}
				if !member {
					return true, true
				}
			}
			return false, true
		}
		return true, false
	case *predicate.In:
		ref, isRef := x.X.(*predicate.Ref)
		if !isRef {
			return true, false
		}
		pv, ok := vals(ref.Name)
		if !ok {
			return true, false
		}
		for _, v := range x.Set {
			if pv[v] > 0 {
				return true, true
			}
		}
		return false, true
	case *predicate.Binary:
		switch x.Op {
		case predicate.OpAnd:
			mayL, okL := indexMay(x.L, byProp)
			mayR, okR := indexMay(x.R, byProp)
			// A definite "no" on either side kills the conjunction; a
			// definite "yes" on both over-approximates (the two sides may
			// hold on different instances), which is the safe direction.
			if (okL && !mayL) || (okR && !mayR) {
				return false, true
			}
			if okL && okR {
				return true, true
			}
			return true, false
		case predicate.OpOr:
			mayL, okL := indexMay(x.L, byProp)
			mayR, okR := indexMay(x.R, byProp)
			if (okL && mayL) || (okR && mayR) {
				return true, true
			}
			if okL && okR {
				return false, true
			}
			return true, false
		case predicate.OpEq, predicate.OpNeq, predicate.OpLt, predicate.OpLe, predicate.OpGt, predicate.OpGe:
			ref, lit, flipped := refLit(x.L, x.R)
			if ref == nil {
				return true, false
			}
			pv, ok := vals(ref.Name)
			if !ok {
				return true, false
			}
			for v := range pv {
				l, r := v, lit.Val
				if flipped {
					l, r = r, l
				}
				sat := false
				switch x.Op {
				// Mirror Eval exactly: =/!= go through Value.Equal, so a
				// kind mismatch makes = false and != TRUE; the ordered
				// comparisons go through Value.Compare, whose kind-mismatch
				// error Eval turns into "unsatisfied".
				case predicate.OpEq:
					sat = l.Equal(r)
				case predicate.OpNeq:
					sat = !l.Equal(r)
				default:
					cmp, err := l.Compare(r)
					if err != nil {
						continue // ordered comparison across kinds: Eval errors, unsatisfied
					}
					switch x.Op {
					case predicate.OpLt:
						sat = cmp < 0
					case predicate.OpLe:
						sat = cmp <= 0
					case predicate.OpGt:
						sat = cmp > 0
					case predicate.OpGe:
						sat = cmp >= 0
					}
				}
				if sat {
					return true, true
				}
			}
			return false, true
		default:
			return true, false
		}
	default:
		return true, false
	}
}

// refLit destructures a comparison into (property ref, literal), reporting
// whether the ref was on the right (so the comparison reads literal-op-ref
// and must flip).
func refLit(l, r predicate.Expr) (*predicate.Ref, *predicate.Lit, bool) {
	if ref, ok := l.(*predicate.Ref); ok {
		if lit, ok := r.(*predicate.Lit); ok {
			return ref, lit, false
		}
	}
	if ref, ok := r.(*predicate.Ref); ok {
		if lit, ok := l.(*predicate.Lit); ok {
			return ref, lit, true
		}
	}
	return nil, nil, false
}
