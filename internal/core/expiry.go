package core

import (
	"container/heap"
	"errors"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/txn"
)

// This file replaces the per-request expiry sweep — a scan of every active
// promise, the dominant linear cost under load — with a per-shard min-heap
// on deadlines driven by the injected clock. Expiry is now O(expired):
//
//   - every grant pushes an entry (and, when Config.ExpiryWarning is set, a
//     warning entry) and keeps one clock alarm scheduled for the heap top;
//   - at a deadline the alarm pops the due entries, lapses the promises in
//     one transaction of their own, frees their holds, and publishes
//     Expired (or ExpiryImminent) events — at the deadline, not at the next
//     request;
//   - the request path keeps exact availability without scanning: it peeks
//     the heap for entries already due (normally none, since the alarm ran
//     at the deadline) and lapses just those inside the request transaction.
//
// Entries are an index, not truth: a released or migrated-away promise
// leaves a stale entry behind, and the pop simply skips ids that are no
// longer active here. Clocks that do not implement clock.Alarmer get no
// alarms; expiry then happens on the request path and in explicit Sweep
// calls, exactly as before, still in O(expired).

// expiryEntry is one scheduled wake-up for a promise: its deadline, or the
// earlier warning instant. seq identifies the entry so processed entries
// can be removed exactly, after their transaction commits.
type expiryEntry struct {
	at   time.Time
	id   string
	warn bool
	seq  uint64
}

// expiryHeap is a min-heap of entries by instant.
type expiryHeap []expiryEntry

func (h expiryHeap) Len() int           { return len(h) }
func (h expiryHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h expiryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x any)        { *h = append(*h, x.(expiryEntry)) }
func (h *expiryHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// expiryIndex owns one manager's deadline heap and the single clock alarm
// armed for its top.
type expiryIndex struct {
	mu      sync.Mutex
	h       expiryHeap
	nextSeq uint64
	alarmer clock.Alarmer // nil when the clock cannot alarm
	fire    func()        // Manager.expireDue
	stop    func()
	alarmAt time.Time
}

// track registers entries and re-arms the alarm if one now fires earlier.
func (x *expiryIndex) track(entries ...expiryEntry) {
	x.mu.Lock()
	defer x.mu.Unlock()
	for i := range entries {
		entries[i].seq = x.nextSeq
		x.nextSeq++
		heap.Push(&x.h, entries[i])
	}
	x.scheduleLocked()
}

// scheduleLocked keeps exactly one alarm armed, at the heap top.
func (x *expiryIndex) scheduleLocked() { x.armLocked(time.Time{}, false) }

// armLocked is the single-armed-alarm invariant: one alarm, at the heap
// top (never earlier than floor). force re-arms even when an alarm is
// already pending at or before the top — the retry/backoff path.
func (x *expiryIndex) armLocked(floor time.Time, force bool) {
	if x.alarmer == nil || len(x.h) == 0 {
		return
	}
	at := x.h[0].at
	if at.Before(floor) {
		at = floor
	}
	if !force && x.stop != nil && !x.alarmAt.After(at) {
		return // the armed alarm fires first (or at the same instant)
	}
	if x.stop != nil {
		x.stop()
	}
	x.alarmAt = at
	x.stop = x.alarmer.AfterFunc(at, x.fire)
}

// alarmConsumed retires the armed alarm before a deadline pass, so the
// pass's final schedule re-arms fresh. Stopping is a no-op when the alarm
// itself triggered the pass, but essential when Sweep() did — discarding a
// still-armed timer's stop handle would leave an orphan alarm chain firing
// forever alongside the re-armed one.
func (x *expiryIndex) alarmConsumed() {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.stop != nil {
		x.stop()
	}
	x.stop = nil
	x.alarmAt = time.Time{}
}

// dueEntries returns copies of every entry due at now, leaving the heap
// untouched — entries are removed only after the transaction that
// processed them commits (removeDue), so a concurrent request's own due
// check never races a window where an entry is gone but its promise's
// holds are not yet freed. O(1) when nothing is due, O(k log n) otherwise.
func (x *expiryIndex) dueEntries(now time.Time) []expiryEntry {
	x.mu.Lock()
	defer x.mu.Unlock()
	if len(x.h) == 0 || x.h[0].at.After(now) {
		return nil
	}
	var due []expiryEntry
	for len(x.h) > 0 && !x.h[0].at.After(now) {
		due = append(due, heap.Pop(&x.h).(expiryEntry))
	}
	for _, e := range due {
		heap.Push(&x.h, e)
	}
	return due
}

// removeDue deletes the given processed entries (matched by seq, so a
// concurrent remover is harmless) and re-arms the alarm for the new top.
func (x *expiryIndex) removeDue(now time.Time, processed []expiryEntry) {
	x.mu.Lock()
	defer x.mu.Unlock()
	done := make(map[uint64]bool, len(processed))
	for _, e := range processed {
		done[e.seq] = true
	}
	var keep []expiryEntry
	for len(x.h) > 0 && !x.h[0].at.After(now) {
		e := heap.Pop(&x.h).(expiryEntry)
		if !done[e.seq] {
			keep = append(keep, e)
		}
	}
	for _, e := range keep {
		heap.Push(&x.h, e)
	}
	x.scheduleLocked()
}

// reschedule re-arms the alarm for the heap top, never earlier than floor —
// the retry backoff after a failed expiry transaction.
func (x *expiryIndex) reschedule(floor time.Time) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.armLocked(floor, true)
}

// shutdown cancels the armed alarm and empties the heap so no further
// deadline passes fire — engine Close. Entries are not processed; a durable
// engine re-arms them from its store on the next open.
func (x *expiryIndex) shutdown() {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.stop != nil {
		x.stop()
	}
	x.stop = nil
	x.alarmAt = time.Time{}
	x.h = nil
}

// trackExpiry indexes one granted (or migrated-in) promise for deadline
// processing.
func (m *Manager) trackExpiry(id string, expires time.Time) {
	entries := []expiryEntry{{at: expires, id: id}}
	if w := m.cfg.ExpiryWarning; w > 0 {
		entries = append(entries, expiryEntry{at: expires.Add(-w), id: id, warn: true})
	}
	m.exp.track(entries...)
}

// expireDue is the alarm callback: under the expiry gate (the shard lock,
// for sharded deployments) it lapses every promise whose deadline passed,
// publishes warning events for promises entering their expiry window, and
// re-arms the alarm. Also the body of the Sweep shim.
func (m *Manager) expireDue() error {
	var err error
	m.gate(func() { err = m.expireDueGated() })
	return err
}

func (m *Manager) expireDueGated() error {
	m.exp.alarmConsumed()
	now := m.clk.Now()
	due := m.exp.dueEntries(now)
	if len(due) == 0 {
		m.exp.reschedule(now)
		return nil
	}
	var warns, exps []expiryEntry
	for _, e := range due {
		if e.warn {
			warns = append(warns, e)
		} else {
			exps = append(exps, e)
		}
	}

	if len(warns) > 0 {
		var events []Event
		tx := m.store.Begin(txn.Block)
		for _, e := range warns {
			p, err := m.promise(tx, e.id)
			if err != nil || p.State != Active || !now.Before(p.Expires) {
				continue // lapsed, released or gone: the expire entry (or nothing) handles it
			}
			events = append(events, Event{
				Type: EventExpiryImminent, PromiseID: p.ID, Client: p.Client,
				Time: now, Expires: p.Expires,
			})
		}
		// Commit and publish under the commit-order lock: the 2PL read
		// locks guarantee any release of these promises commits after this
		// transaction, and pubMu then orders its event after ours.
		m.pubMu.Lock()
		err := tx.Commit()
		if err == nil {
			m.bus.publish(events...)
		}
		m.pubMu.Unlock()
		if err != nil {
			m.exp.reschedule(now.Add(100 * time.Millisecond))
			return err
		}
		// Best-effort: there is no caller to surface a sync failure to; a
		// lost warning event re-fires as the deadline entry anyway.
		_ = m.durSync()
	}

	if len(exps) > 0 {
		st, err := m.expireBatch(now, exps)
		if err != nil {
			// Leave the expire entries in the heap and retry after a short
			// backoff (the warn entries were fully processed; remove them
			// so a warning never fires twice).
			m.exp.removeDue(now, warns)
			m.exp.reschedule(now.Add(100 * time.Millisecond))
			return err
		}
		m.metrics.expirations.Add(st.expired)
		for _, f := range st.postCommit {
			f()
		}
	}
	m.exp.removeDue(now, due)
	return nil
}

// expireBatch lapses the given due promises in one transaction and
// publishes their Expired events under the commit-order lock, retrying
// internal deadlocks (possible only when the Manager runs standalone, with
// no shard lock serializing it against concurrent requests).
func (m *Manager) expireBatch(now time.Time, exps []expiryEntry) (*execState, error) {
	var lastErr error
	for attempt := 0; attempt < m.cfg.MaxRetries; attempt++ {
		st := &execState{}
		tx := m.store.Begin(txn.Block)
		failed := func(err error) bool {
			if err == nil {
				return false
			}
			_ = tx.Abort()
			lastErr = err
			return true
		}
		var err error
		for _, e := range exps {
			p, perr := m.promise(tx, e.id)
			if errors.Is(perr, ErrPromiseNotFound) {
				continue // migrated away, or an id this store never held
			}
			if perr != nil {
				err = perr
				break
			}
			if p.State != Active || now.Before(p.Expires) {
				continue // already terminal, or renewed under a later deadline
			}
			if rerr := m.releasePromise(tx, st, p, Expired); rerr != nil {
				err = rerr
				break
			}
		}
		if failed(err) {
			if errors.Is(err, txn.ErrDeadlock) {
				continue
			}
			return nil, err
		}
		m.pubMu.Lock()
		if err := tx.Commit(); err != nil {
			m.pubMu.Unlock()
			lastErr = err
			if errors.Is(err, txn.ErrDeadlock) {
				continue
			}
			return nil, err
		}
		m.bus.publish(st.events...)
		m.pubMu.Unlock()
		// Best-effort; a crash before this reaches disk replays as a still-
		// active promise that re-expires on recovery.
		_ = m.durSync()
		return st, nil
	}
	return nil, lastErr
}
