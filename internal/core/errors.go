// Package core implements the Promise Manager, the paper's primary
// contribution (§2): "A promise manager sits between clients and application
// services and implements Promise functionality on behalf of a number of
// services and resource managers. The job of a promise manager is to work
// with application services and resource managers to grant or deny promise
// requests, check on resource availability and ensure that promises are not
// violated."
//
// The implementation follows the prototype of §8: promises live in a
// promise table; every client request — promise requests, the application
// action, environment releases and the post-action promise check — executes
// inside one ACID transaction provided by internal/txn; violations detected
// after the action cause the action's changes to be rolled back.
package core

import "errors"

// Sentinel errors surfaced to promise clients.
var (
	// ErrPromiseNotFound is returned when a referenced promise id does not
	// exist or belongs to a different client.
	ErrPromiseNotFound = errors.New("core: promise not found")
	// ErrPromiseExpired corresponds to the paper's "promise-expired" error
	// (§2): the client attempted an operation under the protection of an
	// expired promise.
	ErrPromiseExpired = errors.New("core: promise expired")
	// ErrPromiseReleased is returned when using a promise that was already
	// released.
	ErrPromiseReleased = errors.New("core: promise already released")
	// ErrPromisePreempted is returned when using a preemptible promise that
	// a higher-priority grant revoked before its deadline.
	ErrPromisePreempted = errors.New("core: promise preempted")
	// ErrPromiseViolated is returned when the post-action consistency check
	// fails: the application action made state changes that violate
	// promises not being released with it; the action has been rolled back
	// (§8).
	ErrPromiseViolated = errors.New("core: action violated outstanding promises; changes rolled back")
	// ErrBadRequest is returned for malformed requests (no client, empty
	// predicates, non-positive quantities…).
	ErrBadRequest = errors.New("core: malformed request")
	// ErrDegraded is returned for grants, releases and other mutating
	// requests while the engine is in degraded read-only mode: a persistent
	// WAL append/sync failure has made new commits undurable, so they are
	// rejected rather than silently risked. Reads (CheckBatch, Watch,
	// Stats) keep serving off snapshots; service resumes automatically when
	// a log re-probe succeeds (see DurabilityOptions.ReprobeEvery).
	ErrDegraded = errors.New("core: engine degraded (persistence failing); read-only until the log recovers")
)
