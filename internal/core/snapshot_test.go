package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/predicate"
	"repro/internal/txn"
)

// This file pins the lock-free versioned-snapshot read path: reads must
// complete while every shard write lock is held, a retained snapshot must
// keep showing the pre-migration world while fresh reads show the
// post-migration one, and the replay ring configuration must bound
// AfterSeq resume exactly.

// TestReadPathsCompleteUnderHeldWriteLocks is the executable form of the
// zero-lock claim: with every shard's write mutex held (as a slow
// cross-shard grant would hold them), every read path — CheckBatch,
// PromiseInfo, ActivePromises, Stats, Audit, PoolLevel, listings — still
// completes, because none of them acquires a shard lock.
func TestReadPathsCompleteUnderHeldWriteLocks(t *testing.T) {
	s, _ := newShardedT(t, ShardedConfig{Shards: 4, DefaultDuration: time.Hour})
	mustPool(t, s, "lp", 100)
	pr := grantQty(t, s, "c", Quantity("lp", 5))
	if !pr.Accepted {
		t.Fatal(pr.Reason)
	}

	// Hold every shard's write lock, exactly like a long-running grant.
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.Unlock()
		}
	}()

	done := make(chan error, 1)
	go func() {
		done <- func() error {
			errs, err := s.CheckBatch(bg, "c", []string{pr.PromiseID, "prm0-nope"})
			if err != nil {
				return err
			}
			if errs[0] != nil {
				return fmt.Errorf("granted promise not usable: %v", errs[0])
			}
			if !errors.Is(errs[1], ErrPromiseNotFound) {
				return fmt.Errorf("unknown id sentinel = %v", errs[1])
			}
			if _, err := s.PromiseInfo(pr.PromiseID); err != nil {
				return fmt.Errorf("PromiseInfo: %v", err)
			}
			if _, err := s.ActivePromises(); err != nil {
				return fmt.Errorf("ActivePromises: %v", err)
			}
			if st := s.Stats(); st.Grants == 0 {
				return fmt.Errorf("stats lost the grant: %+v", st)
			}
			rep, err := s.Audit()
			if err != nil {
				return fmt.Errorf("Audit: %v", err)
			}
			if !rep.Healthy() {
				return fmt.Errorf("audit: %s", rep)
			}
			if lvl, err := s.PoolLevel("lp"); err != nil || lvl != 100 {
				return fmt.Errorf("PoolLevel = %d, %v", lvl, err)
			}
			if _, err := s.Pools(); err != nil {
				return fmt.Errorf("Pools: %v", err)
			}
			if _, err := s.Instances(); err != nil {
				return fmt.Errorf("Instances: %v", err)
			}
			return nil
		}()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("read paths blocked behind held shard write locks")
	}
}

// TestSnapshotShowsPreOrPostMigrationNeverTorn pins the snapshot
// consistency model across a cross-shard slot migration: a snapshot
// captured before the migration keeps showing the pre-migration placement
// forever, the post-migration read shows the new placement, and at no
// point does any reader observe a torn in-between.
func TestSnapshotShowsPreOrPostMigrationNeverTorn(t *testing.T) {
	s, _ := newShardedT(t, ShardedConfig{Shards: 4, DefaultDuration: time.Hour})
	x := nameOnShard(t, s, 0, "snap-x")
	y := nameOnShard(t, s, 2, "snap-y")
	for _, id := range []string{x, y} {
		if err := s.CreateInstance(id, map[string]predicate.Value{"p": predicate.Bool(true)}); err != nil {
			t.Fatal(err)
		}
	}
	prop := grantQty(t, s, "c", MustProperty("p"))
	if !prop.Accepted {
		t.Fatal(prop.Reason)
	}
	pre, err := s.PromiseInfo(prop.PromiseID)
	if err != nil {
		t.Fatal(err)
	}
	preShard, ok := s.ownerShard(prop.PromiseID)
	if !ok {
		t.Fatal("no owner shard")
	}
	preSnap := s.shards[preShard].m.Store().Snapshot()

	// Claiming the backing instance by name displaces the slot; the only
	// alternative lives on another shard, so the sub-promise migrates.
	if claim := grantQty(t, s, "d", Named(pre.Assigned[0])); !claim.Accepted {
		t.Fatalf("named claim rejected: %s", claim.Reason)
	}
	post, err := s.PromiseInfo(prop.PromiseID)
	if err != nil {
		t.Fatal(err)
	}
	postShard, _ := s.ownerShard(prop.PromiseID)
	if postShard == preShard {
		t.Fatalf("expected a migration, promise stayed on shard %d", preShard)
	}
	if post.Assigned[0] == pre.Assigned[0] {
		t.Fatal("expected the slot to move instances")
	}

	// The retained pre-migration snapshot is immutable: it still shows the
	// promise on its old shard, backed by its old instance, even though
	// the live world has moved on.
	p, err := s.shards[preShard].m.promise(preSnap, prop.PromiseID)
	if err != nil {
		t.Fatalf("pre-migration snapshot lost the promise: %v", err)
	}
	if p.Assigned[0] != pre.Assigned[0] {
		t.Fatalf("pre snapshot assigned = %q, want %q", p.Assigned[0], pre.Assigned[0])
	}
	// And the vacated shard's fresh snapshot no longer has it.
	if _, err := s.shards[preShard].m.promise(s.shards[preShard].m.Store().Snapshot(), prop.PromiseID); !errors.Is(err, ErrPromiseNotFound) {
		t.Fatalf("vacated shard still answers: %v", err)
	}
	mustHealthy(t, s)
}

// TestConcurrentReadersDuringMigrationChurn races lock-free readers
// against repeated forced migrations: every read must resolve to a
// consistent answer (usable promise with intact shape, or a precise
// lifecycle sentinel), never an internal error or a torn promise.
func TestConcurrentReadersDuringMigrationChurn(t *testing.T) {
	s, _ := newShardedT(t, ShardedConfig{Shards: 4, DefaultDuration: time.Hour})
	x := nameOnShard(t, s, 1, "churn-x")
	y := nameOnShard(t, s, 3, "churn-y")
	for _, id := range []string{x, y} {
		if err := s.CreateInstance(id, map[string]predicate.Value{"p": predicate.Bool(true)}); err != nil {
			t.Fatal(err)
		}
	}

	const cycles = 30
	var wg sync.WaitGroup
	stop := make(chan struct{})
	idCh := make(chan string, cycles)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var known []string
			for {
				select {
				case <-stop:
					return
				case id := <-idCh:
					known = append(known, id)
				default:
				}
				if len(known) == 0 {
					continue
				}
				id := known[rand.Intn(len(known))]
				p, err := s.PromiseInfo(id)
				if err != nil {
					if errors.Is(err, ErrPromiseNotFound) {
						t.Errorf("promise %s vanished", id)
						return
					}
					continue // released between cycles: fine
				}
				if p.ID != id || len(p.Predicates) != 1 {
					t.Errorf("torn promise read: %+v", p)
					return
				}
				errs, err := s.CheckBatch(bg, "c", []string{id})
				if err != nil {
					t.Errorf("CheckBatch: %v", err)
					return
				}
				if errs[0] != nil && !errors.Is(errs[0], ErrPromiseReleased) {
					t.Errorf("check sentinel = %v", errs[0])
					return
				}
			}
		}()
	}

	for i := 0; i < cycles; i++ {
		prop := grantQty(t, s, "c", MustProperty("p"))
		if !prop.Accepted {
			t.Fatal(prop.Reason)
		}
		idCh <- prop.PromiseID
		info, err := s.PromiseInfo(prop.PromiseID)
		if err != nil {
			t.Fatal(err)
		}
		claim := grantQty(t, s, "d", Named(info.Assigned[0]))
		if !claim.Accepted {
			t.Fatalf("cycle %d: named claim rejected: %s", i, claim.Reason)
		}
		// Hand both back so the next cycle starts clean.
		if err := s.Release(bg, "d", claim.PromiseID); err != nil {
			t.Fatal(err)
		}
		if err := s.Release(bg, "c", prop.PromiseID); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	mustHealthy(t, s)
}

// TestReplayRingConfigurable pins AfterSeq resume behaviour at a small
// ring: only the last n events are replayable, older ones show as a gap.
func TestReplayRingConfigurable(t *testing.T) {
	fake := clock.NewFake(time.Date(2007, 1, 7, 0, 0, 0, 0, time.UTC))
	m, err := New(Config{Clock: fake, DefaultDuration: time.Hour, ReplayRing: 4})
	if err != nil {
		t.Fatal(err)
	}
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "rp", 100, nil)
	})
	for i := 0; i < 8; i++ {
		grantOne(t, m, requestQuantity("c", "rp", 1))
	}
	// 8 granted events published; ring capacity 4 retains Seq 5..8.
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	ch, err := m.Watch(ctx, WatchOptions{Replay: true, AfterSeq: 0, Buffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for {
		select {
		case ev := <-ch:
			seqs = append(seqs, ev.Seq)
			continue
		case <-time.After(50 * time.Millisecond):
		}
		break
	}
	if len(seqs) != 4 {
		t.Fatalf("replayed %d events (%v), want the ring's 4", len(seqs), seqs)
	}
	for i, want := range []uint64{5, 6, 7, 8} {
		if seqs[i] != want {
			t.Fatalf("replay seqs = %v, want [5 6 7 8]", seqs)
		}
	}
	// A cursor inside the ring resumes precisely.
	ch2, err := m.Watch(ctx, WatchOptions{Replay: true, AfterSeq: 6, Buffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	var seqs2 []uint64
	for {
		select {
		case ev := <-ch2:
			seqs2 = append(seqs2, ev.Seq)
			continue
		case <-time.After(50 * time.Millisecond):
		}
		break
	}
	if len(seqs2) != 2 || seqs2[0] != 7 || seqs2[1] != 8 {
		t.Fatalf("resume from 6 replayed %v, want [7 8]", seqs2)
	}
}

// TestSnapshotEpochTracksBusSeq pins the epoch agreement: a snapshot's
// epoch equals the event-bus sequence at its commit, so "events with
// Seq <= Epoch are reflected" holds.
func TestSnapshotEpochTracksBusSeq(t *testing.T) {
	m, _ := newManager(t, Config{DefaultDuration: time.Hour})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "ep", 100, nil)
	})
	for i := 0; i < 3; i++ {
		grantOne(t, m, requestQuantity("c", "ep", 1))
		snap := m.Store().Snapshot()
		if snap.Epoch() > m.bus.Seq() {
			t.Fatalf("snapshot epoch %d ahead of bus seq %d", snap.Epoch(), m.bus.Seq())
		}
	}
	// After quiescence the latest snapshot must have caught up with every
	// published event (the grant commit publishes before its events, so
	// the snapshot that reflects grant N carries epoch >= seq(N-1); the
	// next commit catches up). Grant once more and check monotonicity.
	before := m.Store().Snapshot().Epoch()
	grantOne(t, m, requestQuantity("c", "ep", 1))
	after := m.Store().Snapshot().Epoch()
	if after < before {
		t.Fatalf("epoch went backwards: %d -> %d", before, after)
	}
}

// --- pre-filter tests -------------------------------------------------

// TestPrefilterSkewedPlacementSkipsShards pins the headline behaviour:
// with every property-satisfying instance on one shard, a property grant
// reserves only that shard — the other shards see no reservation traffic
// at all — and the skip counter surfaces in Stats.
func TestPrefilterSkewedPlacementSkipsShards(t *testing.T) {
	s, _ := newShardedT(t, ShardedConfig{Shards: 8, DefaultDuration: time.Hour})
	host := 3
	for i := 0; i < 6; i++ {
		id := nameOnShard(t, s, host, fmt.Sprintf("skew-%d", i))
		if err := s.CreateInstance(id, map[string]predicate.Value{"gpu": predicate.Bool(true)}); err != nil {
			t.Fatal(err)
		}
	}
	if hostable, slots := s.shards[host].m.CandidateSummary(); hostable != 6 || slots != 0 {
		t.Fatalf("host index before grants: hostable=%d slots=%d, want 6/0", hostable, slots)
	}
	const grants = 4
	var ids []string
	for i := 0; i < grants; i++ {
		pr := grantQty(t, s, "c", MustProperty("gpu"))
		if !pr.Accepted {
			t.Fatalf("grant %d rejected: %s", i, pr.Reason)
		}
		ids = append(ids, pr.PromiseID)
	}
	// Tentatively-held instances stay hostable (the matcher may rearrange
	// them); the slot count tracks the active property promises.
	if hostable, slots := s.shards[host].m.CandidateSummary(); hostable != 6 || slots != grants {
		t.Fatalf("host index after grants: hostable=%d slots=%d, want 6/%d", hostable, slots, grants)
	}
	st := s.Stats()
	for _, shard := range st.PerShard {
		if shard.Shard == host {
			if shard.Requests == 0 {
				t.Fatalf("host shard saw no requests: %+v", st.PerShard)
			}
			continue
		}
		if shard.Requests != 0 {
			t.Fatalf("shard %d was reserved despite hosting nothing: %+v", shard.Shard, shard)
		}
	}
	if want := int64(grants * (s.NumShards() - 1)); st.PrefilterSkipped != want {
		t.Fatalf("PrefilterSkipped = %d, want %d", st.PrefilterSkipped, want)
	}
	for _, id := range ids {
		if errs := checkB(t, s, "c", []string{id}); errs[0] != nil {
			t.Fatalf("granted promise unusable: %v", errs[0])
		}
	}
	mustHealthy(t, s)
}

// TestPrefilterValuePruning pins tier 2: with no property slot anywhere,
// shards whose hostable instances cannot satisfy the requested values are
// skipped even though they are not empty.
func TestPrefilterValuePruning(t *testing.T) {
	s, _ := newShardedT(t, ShardedConfig{Shards: 4, DefaultDuration: time.Hour})
	// Shard 1 hosts tier=1 instances, shard 2 hosts tier=2 instances.
	for i := 0; i < 2; i++ {
		id := nameOnShard(t, s, 1, fmt.Sprintf("vp1-%d", i))
		if err := s.CreateInstance(id, map[string]predicate.Value{"tier": predicate.Int(1)}); err != nil {
			t.Fatal(err)
		}
		id = nameOnShard(t, s, 2, fmt.Sprintf("vp2-%d", i))
		if err := s.CreateInstance(id, map[string]predicate.Value{"tier": predicate.Int(2)}); err != nil {
			t.Fatal(err)
		}
	}
	pr := grantQty(t, s, "c", MustProperty("tier = 2"))
	if !pr.Accepted {
		t.Fatal(pr.Reason)
	}
	st := s.Stats()
	if st.PerShard[1].Requests != 0 {
		t.Fatalf("tier=1 shard was reserved for a tier=2 predicate: %+v", st.PerShard)
	}
	if st.PerShard[2].Requests == 0 {
		t.Fatalf("tier=2 shard was not reserved: %+v", st.PerShard)
	}
	// 3 of 4 shards skipped: shard 0, shard 3 (empty) and shard 1 (value-pruned).
	if st.PrefilterSkipped != 3 {
		t.Fatalf("PrefilterSkipped = %d, want 3", st.PrefilterSkipped)
	}
	mustHealthy(t, s)
}

// noAlarmClock hides clock.Fake's Alarmer so promises lapse only on the
// request path (the reservation-time sweep), never at their deadline —
// the configuration where expired-but-unswept holds persist.
type noAlarmClock struct{ f *clock.Fake }

func (c noAlarmClock) Now() time.Time { return c.f.Now() }

// TestPrefilterSeesThroughExpiredPins pins the equivalence edge the index
// alone cannot express: a shard whose only instance is held by a
// wall-clock-expired (but not yet lapsed) named promise must still be
// reserved for a property grant, because the reservation's sweep frees
// the instance. The index marks such instances pinned-until-expiry and
// the pre-filter stops trusting the shard's cannot-contribute verdict
// past that instant.
func TestPrefilterSeesThroughExpiredPins(t *testing.T) {
	fake := clock.NewFake(time.Date(2007, 1, 7, 0, 0, 0, 0, time.UTC))
	s, err := NewSharded(ShardedConfig{Shards: 4, Clock: noAlarmClock{f: fake}, DefaultDuration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	inst := nameOnShard(t, s, 2, "pin")
	if err := s.CreateInstance(inst, map[string]predicate.Value{"gpu": predicate.Bool(true)}); err != nil {
		t.Fatal(err)
	}
	// Pin the only satisfying instance under a short named promise.
	resp, err := s.Execute(bg, Request{Client: "holder", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Named(inst)},
		Duration:   time.Minute,
	}}})
	if err != nil || !resp.Promises[0].Accepted {
		t.Fatalf("%v %v", resp, err)
	}
	// While the hold is live, the property grant must be rejected — and
	// the pre-filter may not skip the shard in a way that changes that.
	pr := grantQty(t, s, "c", MustProperty("gpu"))
	if pr.Accepted {
		t.Fatalf("grant accepted while instance pinned")
	}
	// Past the deadline nothing has swept (no alarms): the index still
	// says the shard has nothing hostable, but the pinned-expiry makes
	// the pre-filter reserve it, and the reservation's sweep frees the
	// instance — the grant must succeed, exactly as on a single store.
	fake.Advance(2 * time.Minute)
	pr = grantQty(t, s, "c", MustProperty("gpu"))
	if !pr.Accepted {
		t.Fatalf("grant rejected despite expired pin: %s", pr.Reason)
	}
	mustHealthy(t, s)
}

// TestPrefilterNeqKindMismatch pins indexMay's agreement with Eval on the
// one operator whose kind-mismatch semantics differ from ordered
// comparison: `x != lit` evaluates TRUE when x's kind differs from lit's
// (Eval goes through Value.Equal, not Compare), so the value-pruning tier
// must not exclude the shard holding such an instance.
func TestPrefilterNeqKindMismatch(t *testing.T) {
	s, _ := newShardedT(t, ShardedConfig{Shards: 4, DefaultDuration: time.Hour})
	inst := nameOnShard(t, s, 1, "neq")
	// color is a string; the predicate compares it to an int literal.
	if err := s.CreateInstance(inst, map[string]predicate.Value{"color": predicate.Str("blue")}); err != nil {
		t.Fatal(err)
	}
	pr := grantQty(t, s, "c", MustProperty("color != 5"))
	if !pr.Accepted {
		t.Fatalf("kind-mismatched != rejected by pre-filter: %s", pr.Reason)
	}
	// The ordered comparisons keep erroring on kind mismatch, so the same
	// shard is correctly prunable for them — and the request rejects
	// identically to the single store.
	if pr := grantQty(t, s, "c", MustProperty("color > 5")); pr.Accepted {
		t.Fatal("ordered comparison across kinds granted")
	}
	mustHealthy(t, s)
}

// TestPrefilterEquivalence drives identical randomized property-heavy
// workloads through two ShardedManagers — pre-filter enabled vs the
// all-shards path — across shard counts and seeds, asserting identical
// accept/reject decisions, identical lifecycle sentinels and identical
// pool levels. This is the executable form of the pre-filter's soundness
// contract.
func TestPrefilterEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5, 8} {
		for seed64 := int64(1); seed64 <= 3; seed64++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed64), func(t *testing.T) {
				runPrefilterEquivalence(t, shards, seed64)
			})
		}
	}
}

func runPrefilterEquivalence(t *testing.T, shards int, seed64 int64) {
	fake := clock.NewFake(time.Date(2007, 1, 7, 0, 0, 0, 0, time.UTC))
	// The "off" engine is the fully conservative reference: all-shards
	// routing and reservations (no pre-filter, so no shrunken lock set)
	// and the scan-based property planner (no index-served fast path).
	// The "on" engine runs every optimisation; accept/reject decisions,
	// lifecycle sentinels and pool levels must still be identical.
	mkEngine := func(disable bool) *ShardedManager {
		s, err := NewSharded(ShardedConfig{Shards: shards, Clock: fake, DefaultDuration: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		s.disablePrefilter = disable
		if disable {
			for _, sh := range s.shards {
				sh.m.cfg.disableFastPath = true
			}
		}
		return s
	}
	on, off := mkEngine(false), mkEngine(true)

	rng := rand.New(rand.NewSource(seed64))
	var pools, insts []string
	exprs := []string{
		"gpu", "not gpu", "tier = 1", "tier >= 1", "tier = 2 or gpu",
		"zone = 0 or zone = 3", "gpu and tier >= 1", "tier in (0, 2)",
		"tier != 1", "tier != \"x\"", "zone != 9",
	}
	for i := 0; i < 3; i++ {
		pool := fmt.Sprintf("pf-pool-%d", i)
		capQty := int64(6 + rng.Intn(8))
		for _, s := range []*ShardedManager{on, off} {
			if err := s.CreatePool(pool, capQty, nil); err != nil {
				t.Fatal(err)
			}
		}
		pools = append(pools, pool)
	}
	// Skewed placement: all instances land on at most two shards, so the
	// pre-filter has real skipping to do on wide configurations.
	for i := 0; i < 10; i++ {
		inst := nameOnShard(t, on, i%2, fmt.Sprintf("pf-inst-%d", i))
		props := map[string]predicate.Value{
			"gpu":  predicate.Bool(rng.Intn(2) == 0),
			"tier": predicate.Int(int64(rng.Intn(3))),
			"zone": predicate.Int(int64(rng.Intn(4))),
		}
		for _, s := range []*ShardedManager{on, off} {
			if err := s.CreateInstance(inst, props); err != nil {
				t.Fatal(err)
			}
		}
		insts = append(insts, inst)
	}

	type pair struct{ onID, offID string }
	var pairs []pair
	randPred := func() Predicate {
		switch rng.Intn(6) {
		case 0:
			return Quantity(pools[rng.Intn(len(pools))], int64(1+rng.Intn(4)))
		case 1:
			return Named(insts[rng.Intn(len(insts))])
		default:
			return MustProperty(exprs[rng.Intn(len(exprs))])
		}
	}

	for step := 0; step < 60; step++ {
		switch rng.Intn(5) {
		case 0, 1, 2: // grant, possibly an upgrade releasing earlier promises
			n := 1 + rng.Intn(2)
			preds := make([]Predicate, n)
			for i := range preds {
				preds[i] = randPred()
			}
			var relOn, relOff []string
			if len(pairs) > 0 && rng.Intn(4) == 0 {
				p := pairs[rng.Intn(len(pairs))]
				relOn, relOff = []string{p.onID}, []string{p.offID}
			}
			respOn, errOn := on.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{Predicates: preds, Releases: relOn}}})
			respOff, errOff := off.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{Predicates: preds, Releases: relOff}}})
			if errOn != nil || errOff != nil {
				t.Fatalf("step %d: execute errors: on=%v off=%v", step, errOn, errOff)
			}
			pOn, pOff := respOn.Promises[0], respOff.Promises[0]
			if pOn.Accepted != pOff.Accepted {
				t.Fatalf("step %d diverged: prefilter accepted=%v (%s), all-shards accepted=%v (%s)\npreds=%v",
					step, pOn.Accepted, pOn.Reason, pOff.Accepted, pOff.Reason, preds)
			}
			if pOn.Accepted {
				pairs = append(pairs, pair{onID: pOn.PromiseID, offID: pOff.PromiseID})
			}
		case 3: // release
			if len(pairs) == 0 {
				continue
			}
			p := pairs[rng.Intn(len(pairs))]
			respOn, errOn := on.Execute(bg, Request{Client: "c", Env: []EnvEntry{{PromiseID: p.onID, Release: true}}})
			respOff, errOff := off.Execute(bg, Request{Client: "c", Env: []EnvEntry{{PromiseID: p.offID, Release: true}}})
			if errOn != nil || errOff != nil {
				t.Fatalf("step %d: release errors: on=%v off=%v", step, errOn, errOff)
			}
			if (respOn.ActionErr == nil) != (respOff.ActionErr == nil) {
				t.Fatalf("step %d: release diverged: on=%v off=%v", step, respOn.ActionErr, respOff.ActionErr)
			}
		case 4: // expiry
			fake.Advance(time.Duration(10+rng.Intn(30)) * time.Second)
			if err := on.Sweep(); err != nil {
				t.Fatal(err)
			}
			if err := off.Sweep(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Every tracked pair must report the same lifecycle sentinel.
	for _, p := range pairs {
		eOn := checkB(t, on, "c", []string{p.onID})[0]
		eOff := checkB(t, off, "c", []string{p.offID})[0]
		if (eOn == nil) != (eOff == nil) ||
			errors.Is(eOn, ErrPromiseReleased) != errors.Is(eOff, ErrPromiseReleased) ||
			errors.Is(eOn, ErrPromiseExpired) != errors.Is(eOff, ErrPromiseExpired) {
			t.Fatalf("pair (%s, %s) sentinels diverged: on=%v off=%v", p.onID, p.offID, eOn, eOff)
		}
	}
	// Pool levels never drift.
	for _, pool := range pools {
		lOn, err := on.PoolLevel(pool)
		if err != nil {
			t.Fatal(err)
		}
		lOff, err := off.PoolLevel(pool)
		if err != nil {
			t.Fatal(err)
		}
		if lOn != lOff {
			t.Fatalf("pool %s drifted: prefilter=%d all-shards=%d", pool, lOn, lOff)
		}
	}
	mustHealthy(t, on)
	mustHealthy(t, off)
	if shards > 2 {
		if st := on.Stats(); st.PrefilterSkipped == 0 {
			t.Fatalf("prefilter never skipped a shard on a skewed %d-shard workload", shards)
		}
	}
}
