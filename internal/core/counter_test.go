package core

import (
	"strings"
	"testing"

	"repro/internal/txn"
)

func TestCounterOfferSinglePool(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "w", 7, nil)
	})
	pr := grantOne(t, m, requestQuantity("c", "w", 10))
	if pr.Accepted {
		t.Fatal("should reject")
	}
	if len(pr.Counter) != 1 {
		t.Fatalf("counter = %+v", pr.Counter)
	}
	if pr.Counter[0].Pool != "w" || pr.Counter[0].Qty != 7 {
		t.Fatalf("counter = %+v", pr.Counter[0])
	}
	// The counter-offer itself is grantable.
	pr2 := grantOne(t, m, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: pr.Counter,
	}}})
	if !pr2.Accepted {
		t.Fatalf("counter not grantable: %s", pr2.Reason)
	}
}

func TestCounterOfferMultiPool(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		rm := m.Resources()
		if err := rm.CreatePool(tx, "a", 3, nil); err != nil {
			return err
		}
		if err := rm.CreatePool(tx, "b", 100, nil); err != nil {
			return err
		}
		return rm.CreatePool(tx, "c", 0, nil)
	})
	resp, err := m.Execute(bg, Request{Client: "x", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("a", 10), Quantity("b", 10), Quantity("c", 10)},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	pr := resp.Promises[0]
	if pr.Accepted {
		t.Fatal("should reject")
	}
	// Counters for a (3 available) but not c (0 available, nothing to
	// offer) and not b (fully satisfiable, not a failing pool).
	if len(pr.Counter) != 1 || pr.Counter[0].Pool != "a" || pr.Counter[0].Qty != 3 {
		t.Fatalf("counter = %+v", pr.Counter)
	}
	// The reason mentions both failing pools, deterministically ordered.
	if !strings.Contains(pr.Reason, `pool "a"`) || !strings.Contains(pr.Reason, `pool "c"`) {
		t.Fatalf("reason = %q", pr.Reason)
	}
	if strings.Index(pr.Reason, `pool "a"`) > strings.Index(pr.Reason, `pool "c"`) {
		t.Fatalf("reasons not sorted: %q", pr.Reason)
	}
}

func TestCounterOfferAccountsForOutstandingPromises(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "w", 10, nil)
	})
	_ = grantOne(t, m, requestQuantity("other", "w", 6))
	pr := grantOne(t, m, requestQuantity("c", "w", 10))
	if pr.Accepted {
		t.Fatal("should reject")
	}
	if len(pr.Counter) != 1 || pr.Counter[0].Qty != 4 {
		t.Fatalf("counter should reflect unreserved capacity: %+v", pr.Counter)
	}
}

func TestNoCounterWhenNothingAvailable(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "w", 5, nil)
	})
	_ = grantOne(t, m, requestQuantity("other", "w", 5))
	pr := grantOne(t, m, requestQuantity("c", "w", 1))
	if pr.Accepted || len(pr.Counter) != 0 {
		t.Fatalf("pr = %+v", pr)
	}
}

func TestNoCounterOnNamedOrPropertyRejection(t *testing.T) {
	m, _ := newManager(t, Config{})
	pr := grantOne(t, m, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Named("ghost")},
	}}})
	if pr.Accepted || len(pr.Counter) != 0 {
		t.Fatalf("pr = %+v", pr)
	}
}
