package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the subscription face of the promise manager: lifecycle
// transitions become typed, pushed events instead of states a client polls
// for with CheckBatch — the §6 notification direction ("managers notifying
// clients about promise lifecycle transitions") as an API.
//
// Every engine shape exposes the same Watch surface: the single-store
// Manager publishes into its own bus; the ShardedManager injects one shared
// bus into every shard, so per-shard streams merge into a single totally
// ordered sequence and events survive a cross-shard slot migration under
// their promise id. The transport serves the bus as SSE (GET /events) and
// transport.Client re-exposes Watch over it.
//
// Events are per concrete promise: parts of a cross-shard composite appear
// individually under their per-shard ids, exactly as in ActivePromises.

// EventType names one promise lifecycle transition.
type EventType string

// Lifecycle event types.
const (
	// EventGranted: a promise was granted (one event per concrete promise;
	// the parts of a cross-shard composite each emit their own).
	EventGranted EventType = "granted"
	// EventRenewed: a grant that atomically released prior promises — the
	// §4 modify/upgrade shape. The event carries the new promise id; the
	// replaced promises emit EventReleased alongside. Parts of a
	// cross-shard pipeline always emit EventGranted.
	EventRenewed EventType = "renewed"
	// EventReleased: the client handed the promise back.
	EventReleased EventType = "released"
	// EventExpired: the promise lapsed at its deadline; its holds are free.
	EventExpired EventType = "expired"
	// EventExpiryImminent: the promise is within its configured warning
	// window of expiry (Config.ExpiryWarning / promises.WithExpiryWarning);
	// a client that still needs the guarantee should renew now.
	EventExpiryImminent EventType = "expiry-imminent"
	// EventViolated: a post-action check found the promise violated and
	// rolled the action back (§8). PromiseID may be empty when the
	// violation is a joint property-matching failure not attributable to
	// one promise.
	EventViolated EventType = "violated"
	// EventMigrated: the global matcher re-homed the promise's slot on
	// another shard; the promise id, client and expiry are unchanged.
	EventMigrated EventType = "migrated"
	// EventPreempted: a higher-priority grant revoked this preemptible
	// promise before its deadline. By carries the displacing promise id and
	// Priority the displacing tier; the holder's recourse is to re-request
	// (possibly at a higher tier) — see EventType docs in docs/architecture.md.
	EventPreempted EventType = "preempted"
)

// Event is one promise lifecycle transition.
type Event struct {
	// Seq is the bus-assigned sequence number, strictly increasing across
	// the whole engine. Consumers detect dropped events (SlowDrop policy)
	// by gaps, and resume a broken subscription with WatchOptions.AfterSeq
	// (the SSE Last-Event-ID cursor).
	Seq uint64 `json:"seq"`
	// Type is the transition.
	Type EventType `json:"type"`
	// PromiseID is the promise that transitioned.
	PromiseID string `json:"promise,omitempty"`
	// Client is the promise's owner.
	Client string `json:"client,omitempty"`
	// Time is the engine-clock instant of the transition.
	Time time.Time `json:"time"`
	// Expires is the promise's current expiry, where meaningful (granted,
	// renewed, expiry-imminent, migrated).
	Expires time.Time `json:"expires,omitempty"`
	// Reason carries detail: the violation message, the replaced ids of a
	// renewal, the shard movement of a migration.
	Reason string `json:"reason,omitempty"`
	// By, on a preempted event, is the displacing promise's id (the part id
	// on its shard for a cross-shard composite grant).
	By string `json:"by,omitempty"`
	// Priority, on a preempted event, is the displacing request's tier.
	Priority int `json:"priority,omitempty"`
}

// MarshalJSON omits a zero Expires — encoding/json's omitempty does not
// apply to struct zero values, and a released/expired event must not show
// a year-0001 expiry on the SSE wire.
func (e Event) MarshalJSON() ([]byte, error) {
	type alias Event
	aux := struct {
		alias
		Expires *time.Time `json:"expires,omitempty"`
	}{alias: alias(e)}
	if !e.Expires.IsZero() {
		aux.Expires = &e.Expires
	}
	return json.Marshal(aux)
}

// SlowPolicy selects what the bus does with a subscriber whose channel
// buffer is full when an event arrives.
type SlowPolicy int

const (
	// SlowDrop (the default) drops the event for that subscriber; the gap
	// is visible as missing Seq values.
	SlowDrop SlowPolicy = iota
	// SlowDisconnect closes the subscription instead of dropping, so a
	// consumer that must not miss events fails loudly and can re-Watch
	// with AfterSeq.
	SlowDisconnect
)

// WatchOptions filters and configures one subscription.
type WatchOptions struct {
	// Client restricts the stream to one client's promises ("" = all).
	Client string
	// PromiseIDs restricts the stream to specific promises (nil = all).
	PromiseIDs []string
	// Types restricts the stream to specific event types (nil = all).
	Types []EventType
	// Buffer is the subscription channel's capacity; 0 means 64.
	Buffer int
	// SlowPolicy selects the full-buffer behaviour.
	SlowPolicy SlowPolicy
	// AfterSeq, with Replay set, resumes a stream: retained events with
	// Seq > AfterSeq are delivered first, then live ones. The bus retains
	// a bounded ring of recent events; resuming past its horizon shows as
	// a Seq gap.
	AfterSeq uint64
	// Replay enables the AfterSeq replay (so AfterSeq zero can mean
	// "replay everything retained").
	Replay bool
}

// DefaultReplayRing bounds the replay ring when no explicit capacity is
// configured: reconnecting subscribers can resume across this many events.
// See Config.ReplayRing / promises.WithReplayRing / promised -replay-ring.
const DefaultReplayRing = 4096

// maxWatchBuffer caps a subscription's channel capacity. The buffer is
// remote-controllable through GET /events?buffer=, so it must not size an
// arbitrary allocation.
const maxWatchBuffer = 1 << 16

// subscriber is one Watch registration.
type subscriber struct {
	ch     chan Event
	opts   WatchOptions
	ids    map[string]bool
	types  map[EventType]bool
	closed bool
}

// matches reports whether the subscriber wants ev.
func (s *subscriber) matches(ev Event) bool {
	if s.opts.Client != "" && ev.Client != s.opts.Client {
		return false
	}
	if s.ids != nil && !s.ids[ev.PromiseID] {
		return false
	}
	if s.types != nil && !s.types[ev.Type] {
		return false
	}
	return true
}

// EventBus fans promise lifecycle events out to subscribers. Publication
// happens post-commit under the bus mutex, so subscribers observe one total
// order, and all events of one promise arrive in lifecycle order.
type EventBus struct {
	mu      sync.Mutex
	seq     atomic.Uint64 // written under mu; read lock-free by Seq
	ringCap int
	ring    []Event // newest last; grows to ringCap, then slides
	subs    map[uint64]*subscriber
	nextSub uint64
	// tap, when set, observes every published batch (Seq already stamped)
	// under b.mu — so tap call order equals Seq order. The durability layer
	// uses it to mirror the bus into the shared write-ahead log.
	tap func(events []Event)
}

// SetTap installs fn as the bus's publication tap: every subsequently
// published batch is passed to fn, with sequence numbers assigned, under
// the bus mutex. One tap at most; nil removes it. fn must not call back
// into the bus.
func (b *EventBus) SetTap(fn func(events []Event)) {
	b.mu.Lock()
	b.tap = fn
	b.mu.Unlock()
}

// restore rewinds the bus to a checkpointed state: the next published event
// gets sequence seq+1 and the replay ring holds ring (truncated to the
// bus's capacity, newest kept). Recovery-only; must precede any publish or
// Watch.
func (b *EventBus) restore(seq uint64, ring []Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq.Store(seq)
	if len(ring) > b.ringCap {
		ring = ring[len(ring)-b.ringCap:]
	}
	b.ring = append(b.ring[:0:0], ring...)
}

// restoreEvents re-appends logged events with sequence numbers beyond the
// restored cursor — the WAL tail after a checkpoint. Already-seen events
// (Seq at or below the cursor) are skipped, so replay is idempotent.
// Recovery-only; no fan-out happens (there are no subscribers yet).
func (b *EventBus) restoreEvents(events []Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ev := range events {
		if ev.Seq <= b.seq.Load() {
			continue
		}
		b.seq.Store(ev.Seq)
		b.ring = append(b.ring, ev)
		if len(b.ring) > b.ringCap {
			b.ring = b.ring[len(b.ring)-b.ringCap:]
		}
	}
}

// ensureSeqAtLeast advances the sequence cursor to at least n without
// touching the ring — recovery uses it so sequence numbers never repeat
// even when the tail of the event log was lost.
func (b *EventBus) ensureSeqAtLeast(n uint64) {
	b.mu.Lock()
	if n > b.seq.Load() {
		b.seq.Store(n)
	}
	b.mu.Unlock()
}

// snapshotRing copies the current cursor and replay ring for a checkpoint.
func (b *EventBus) snapshotRing() (uint64, []Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq.Load(), append([]Event(nil), b.ring...)
}

// NewEventBus returns an empty bus with the default replay ring. The ring
// grows with publication (up to its capacity), so an engine that never
// emits pays nothing.
func NewEventBus() *EventBus {
	return NewEventBusCap(DefaultReplayRing)
}

// NewEventBusCap returns an empty bus whose replay ring retains up to cap
// events (cap <= 0 means DefaultReplayRing). A larger ring lets
// reconnecting subscribers resume across longer outages at the cost of
// memory; a smaller one surfaces resume gaps sooner.
func NewEventBusCap(cap int) *EventBus {
	if cap <= 0 {
		cap = DefaultReplayRing
	}
	return &EventBus{ringCap: cap, subs: make(map[uint64]*subscriber)}
}

// Seq returns the sequence number of the most recently published event
// (zero before any). It is a lock-free atomic read: the promise manager
// stamps it onto every published store snapshot as the snapshot's epoch,
// so snapshot readers and Watch streams agree on how far history has
// progressed.
func (b *EventBus) Seq() uint64 { return b.seq.Load() }

// Watch subscribes to the bus: events matching opts are delivered on the
// returned channel until ctx is cancelled (the channel is then closed) or,
// under SlowDisconnect, the subscriber falls behind. See promises.Engine.
func (b *EventBus) Watch(ctx context.Context, opts WatchOptions) (<-chan Event, error) {
	if opts.Buffer < 0 {
		return nil, fmt.Errorf("%w: negative watch buffer %d", ErrBadRequest, opts.Buffer)
	}
	if opts.Buffer == 0 {
		opts.Buffer = 64
	}
	if opts.Buffer > maxWatchBuffer {
		opts.Buffer = maxWatchBuffer
	}
	sub := &subscriber{opts: opts}
	if len(opts.PromiseIDs) > 0 {
		sub.ids = make(map[string]bool, len(opts.PromiseIDs))
		for _, id := range opts.PromiseIDs {
			sub.ids[id] = true
		}
	}
	if len(opts.Types) > 0 {
		sub.types = make(map[EventType]bool, len(opts.Types))
		for _, t := range opts.Types {
			sub.types[t] = true
		}
	}

	b.mu.Lock()
	// Replay happens before the subscriber can possibly drain, so the
	// channel is sized to hold every replayed event on top of the
	// configured buffer — a Last-Event-ID resume within the ring is
	// lossless regardless of how far behind the cursor is.
	var replay []Event
	if opts.Replay {
		for _, ev := range b.retainedLocked() {
			if ev.Seq > opts.AfterSeq && sub.matches(ev) {
				replay = append(replay, ev)
			}
		}
	}
	sub.ch = make(chan Event, opts.Buffer+len(replay))
	for _, ev := range replay {
		sub.ch <- ev
	}
	id := b.nextSub
	b.nextSub++
	b.subs[id] = sub
	b.mu.Unlock()

	go func() {
		<-ctx.Done()
		b.unsubscribe(id)
	}()
	return sub.ch, nil
}

// retainedLocked lists the ring's events, oldest first. Callers hold b.mu
// and must not retain the slice past it.
func (b *EventBus) retainedLocked() []Event { return b.ring }

// deliverLocked enqueues ev for one subscriber, applying its slow policy on
// a full buffer.
func (b *EventBus) deliverLocked(id uint64, sub *subscriber, ev Event) {
	if sub.closed {
		return
	}
	select {
	case sub.ch <- ev:
	default:
		if sub.opts.SlowPolicy == SlowDisconnect {
			sub.closed = true
			close(sub.ch)
			delete(b.subs, id)
		}
		// SlowDrop: the gap shows as missing Seq values.
	}
}

// unsubscribe removes and closes one subscription.
func (b *EventBus) unsubscribe(id uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if sub, ok := b.subs[id]; ok && !sub.closed {
		sub.closed = true
		close(sub.ch)
	}
	delete(b.subs, id)
}

// publish assigns sequence numbers to events and fans them out. Callers
// invoke it only after the transition is durable (post-commit), in the
// order the transitions happened.
func (b *EventBus) publish(events ...Event) {
	if len(events) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var stamped []Event
	if b.tap != nil {
		stamped = make([]Event, 0, len(events))
	}
	for _, ev := range events {
		ev.Seq = b.seq.Add(1)
		b.ring = append(b.ring, ev)
		if len(b.ring) > b.ringCap {
			b.ring = b.ring[len(b.ring)-b.ringCap:]
		}
		for id, sub := range b.subs {
			if sub.matches(ev) {
				b.deliverLocked(id, sub, ev)
			}
		}
		if b.tap != nil {
			stamped = append(stamped, ev)
		}
	}
	if b.tap != nil {
		b.tap(stamped)
	}
}
