package core

import (
	"sync"

	"repro/internal/matching"
	"repro/internal/predicate"
	"repro/internal/resource"
	"repro/internal/softlock"
	"repro/internal/txn"
)

// This file is the property-grant fast path: a persistent, incrementally
// maintained image of the §5 bipartite matching problem, so a grant pays for
// what changed since the last one instead of rebuilding the world.
//
// The slow path (planInner's MatchingMode branch) scans three tables per
// grant — every instance, every soft lock, every active promise — clones
// each row, classifies the candidates, and reconstructs the slot list and
// the id→index translation before the matcher runs a single augmenting
// path. propMatcher keeps all of that alive between requests:
//
//   - slotList mirrors activePropertySlots: one entry per property-view
//     predicate of each active promise, with its current tentative
//     assignment (the matching seed) and a compiled form of its predicate;
//   - candList mirrors the matcher's right side: every hostable instance
//     (available, or tentatively held by an active property slot), with the
//     committed row, its tentative flag, and a per-instance cache of
//     predicate evaluations that survive across grants;
//   - byValue indexes candidates per property name and value, so Eq/In/And
//     shaped predicates hand the solver an exact candidate list and the
//     edge oracle never touches the rest of the world.
//
// Maintenance is the existing commit hook (candidates.go onCommit): the
// same touched-key triggers that keep the pre-filter counts fresh also keep
// these structures fresh, under pm.mu.
//
// Consistency argument. The fast path may only run when its state provably
// equals what the transaction would read:
//
//  1. Freshness. The planner first takes table-level S locks on instances,
//     soft locks and promises — the very locks the slow path's Scans take,
//     with identical conflict and deadlock behaviour. Strict 2PL then
//     guarantees no concurrent transaction holds uncommitted writes in
//     those tables, and every prior committer has finished publishing: the
//     commit hook (which maintains propMatcher) runs inside Commit before
//     any lock is released (txn.Tx.LockShared documents this contract). So
//     once the S locks are held, propMatcher reflects exactly the committed
//     state of the three tables.
//  2. Own writes. The gate requires tx.Writes() == 0, so the transaction's
//     view of those tables IS the committed state — there is nothing
//     propMatcher could fail to see. Releases applied earlier in the
//     request, a sweep that lapsed a promise, anything at all that dirtied
//     the transaction sends the request down the slow path.
//  3. Wall-clock expiry. The slow path filters slots through
//     activePromises (State == Active && now < Expires); propMatcher
//     ignores the wall clock by design (like the candidate index, see
//     candClassify). The two agree because sweepExpired runs first in every
//     request and processes every heap-due promise — the heap tracks every
//     granted promise, so an active-but-lapsed promise implies a due entry,
//     implies a release, implies Writes() > 0, implies slow path. A
//     transaction that reaches the gate clean has proven no active promise
//     is past its deadline.
//  4. Right-set equality. For an all-property, no-release request the slow
//     path's candidate set is: Available ∪ (Promised ∧ held by an active
//     property slot) — precisely candClassify's hostable verdict, i.e.
//     candList. Left side likewise: activePropertySlots minus nothing.
//     Identical graph ⇒ identical max-matching size ⇒ identical
//     accept/reject verdict (the solver may pick a different saturating
//     assignment, which §5 explicitly allows — tentative allocations are
//     the manager's to rearrange).
type propMatcher struct {
	// mu guards everything below. The commit hook takes it for writing;
	// planners take it for reading while holding the three table S locks
	// (which is what makes the read *semantically* fresh, not just
	// race-free).
	mu        sync.RWMutex
	slots     map[string]*slotEntry // slot key -> entry
	slotList  []*slotEntry
	byPromise map[string][]*slotEntry // promise id -> its slot entries
	cands     map[string]*candEntry   // instance id -> entry
	candList  []*candEntry
	// byValue indexes candidates by property name and value — the entry
	// analogue of the candidate index's ByProp counts, used to serve
	// Eq/In/And predicates with exact candidate lists.
	byValue map[string]map[predicate.Value]map[string]*candEntry
}

// slotEntry is one active property-view predicate (a left vertex).
type slotEntry struct {
	key      string
	expr     predicate.Expr
	exprStr  string
	compiled compiledPred // nil when the shape needs full Eval
	assigned string       // current tentative instance ("" when none)
	sole     bool         // single-predicate promise (migratable cross-shard)
	pos      int          // index in slotList
}

// candEntry is one hostable instance (a right vertex). inst is the
// committed snapshot row — immutable, refreshed whenever the instance's
// contribution changes.
type candEntry struct {
	id        string
	inst      *resource.Instance
	tentative bool
	pos       int // index in candList
	// edges caches Eval verdicts for non-compilable predicates, keyed by
	// expression text; cleared whenever the instance's contribution
	// changes (any status or property transition re-classifies it).
	edges map[string]bool
}

func (pm *propMatcher) init() {
	pm.slots = make(map[string]*slotEntry)
	pm.slotList = nil
	pm.byPromise = make(map[string][]*slotEntry)
	pm.cands = make(map[string]*candEntry)
	pm.candList = nil
	pm.byValue = make(map[string]map[predicate.Value]map[string]*candEntry)
}

// updatePromiseSlotsLocked replaces every slot entry of promise pid with the
// row's current shape (p nil or non-active removes them). Caller holds
// pm.mu for writing.
func (pm *propMatcher) updatePromiseSlotsLocked(pid string, p *Promise) {
	for _, se := range pm.byPromise[pid] {
		pm.removeSlotLocked(se)
	}
	delete(pm.byPromise, pid)
	if p == nil || p.State != Active {
		return
	}
	sole := len(p.Predicates) == 1
	for i, pred := range p.Predicates {
		if pred.View != PropertyView {
			continue
		}
		assigned := ""
		if i < len(p.Assigned) {
			assigned = p.Assigned[i]
		}
		se := &slotEntry{
			key:      slotKey(pid, i),
			expr:     pred.Expr,
			exprStr:  pred.Expr.String(),
			compiled: compilePred(pred.Expr),
			assigned: assigned,
			sole:     sole,
			pos:      len(pm.slotList),
		}
		pm.slotList = append(pm.slotList, se)
		pm.slots[se.key] = se
		pm.byPromise[pid] = append(pm.byPromise[pid], se)
	}
}

func (pm *propMatcher) removeSlotLocked(se *slotEntry) {
	last := len(pm.slotList) - 1
	moved := pm.slotList[last]
	pm.slotList[se.pos] = moved
	moved.pos = se.pos
	pm.slotList = pm.slotList[:last]
	delete(pm.slots, se.key)
}

// updateCandLocked folds one instance's re-classification into the
// candidate structures. Caller holds pm.mu for writing. The contribution
// changed (candRecompute only calls on change), so any cached edge verdict
// may be stale: the cache is dropped and the row pointer refreshed even
// when the instance stays hostable.
func (pm *propMatcher) updateCandLocked(id string, hostable, tentative bool, inst *resource.Instance) {
	ce := pm.cands[id]
	if !hostable {
		if ce != nil {
			pm.unindexCandLocked(ce)
			last := len(pm.candList) - 1
			moved := pm.candList[last]
			pm.candList[ce.pos] = moved
			moved.pos = ce.pos
			pm.candList = pm.candList[:last]
			delete(pm.cands, id)
		}
		return
	}
	if ce == nil {
		ce = &candEntry{id: id, pos: len(pm.candList)}
		pm.candList = append(pm.candList, ce)
		pm.cands[id] = ce
	} else {
		pm.unindexCandLocked(ce)
	}
	ce.inst = inst
	ce.tentative = tentative
	ce.edges = nil
	for k, v := range inst.Props {
		pv := pm.byValue[k]
		if pv == nil {
			pv = make(map[predicate.Value]map[string]*candEntry)
			pm.byValue[k] = pv
		}
		set := pv[v]
		if set == nil {
			set = make(map[string]*candEntry)
			pv[v] = set
		}
		set[id] = ce
	}
}

func (pm *propMatcher) unindexCandLocked(ce *candEntry) {
	for k, v := range ce.inst.Props {
		pv := pm.byValue[k]
		set := pv[v]
		delete(set, ce.id)
		if len(set) == 0 {
			delete(pv, v)
			if len(pv) == 0 {
				delete(pm.byValue, k)
			}
		}
	}
}

// indexCandidates resolves e to an exact candidate set when its shape
// allows: an Eq or In comparison against an indexed property, or a
// conjunction containing one. ok=false means "not index-served" (the solver
// scans all candidates). When ok is true the set is a sound superset of e's
// true edges: every conjunct restricts, a candidate missing the property
// cannot satisfy e at all (Eval errors on the unknown reference), and every
// hostable instance is indexed under each of its property values.
func (pm *propMatcher) indexCandidates(e predicate.Expr) (map[string]*candEntry, bool) {
	switch x := e.(type) {
	case *predicate.In:
		ref, isRef := x.X.(*predicate.Ref)
		if !isRef || ref.Name == "id" || ref.Name == "status" {
			return nil, false
		}
		out := make(map[string]*candEntry)
		pv := pm.byValue[ref.Name]
		for _, v := range x.Set {
			for id, ce := range pv[v] {
				out[id] = ce
			}
		}
		return out, true
	case *predicate.Binary:
		switch x.Op {
		case predicate.OpEq:
			ref, lit, _ := refLit(x.L, x.R)
			if ref == nil || ref.Name == "id" || ref.Name == "status" {
				return nil, false
			}
			return pm.byValue[ref.Name][lit.Val], true
		case predicate.OpAnd:
			l, okL := pm.indexCandidates(x.L)
			r, okR := pm.indexCandidates(x.R)
			switch {
			case okL && okR:
				if len(r) < len(l) {
					l = r
				}
				return l, true
			case okL:
				return l, true
			case okR:
				return r, true
			}
			return nil, false
		}
		return nil, false
	default:
		return nil, false
	}
}

// planPropertyFast serves an all-property, no-release grant from the
// persistent matcher state, filling plan's assignments and reallocations.
// It reports whether the predicates are jointly satisfiable; the
// consistency preconditions (tx.Writes() == 0, MatchingMode) are the
// caller's, the freshness locks are taken here. See the file comment for
// why the verdict is exactly the slow path's.
func (m *Manager) planPropertyFast(tx *txn.Tx, preds []Predicate, plan *grantPlan) (bool, error) {
	// The same three table S locks the slow path's scans acquire, in the
	// same order (instances, soft locks, promises).
	for _, tbl := range []string{resource.TableInstances, softlock.Table, TablePromises} {
		if err := tx.LockShared(tbl); err != nil {
			return false, err
		}
	}
	pm := &m.pmatch
	pm.mu.RLock()
	nSlots := len(pm.slotList)
	nLeft := nSlots + len(preds)
	nRight := len(pm.candList)

	type leftPred struct {
		expr     predicate.Expr
		exprStr  string
		compiled compiledPred
	}
	newPreds := make([]leftPred, len(preds))
	for i, p := range preds {
		newPreds[i] = leftPred{expr: p.Expr, exprStr: p.Expr.String(), compiled: compilePred(p.Expr)}
	}
	left := func(l int) (predicate.Expr, string, compiledPred) {
		if l < nSlots {
			se := pm.slotList[l]
			return se.expr, se.exprStr, se.compiled
		}
		np := newPreds[l-nSlots]
		return np.expr, np.exprStr, np.compiled
	}

	// Eval verdicts computed during this solve (for non-compilable shapes)
	// are collected locally and folded into the shared cache afterwards —
	// pm.mu is only held for reading here.
	fills := make(map[*candEntry]map[string]bool)
	edge := func(l, r int) bool {
		expr, exprStr, compiled := left(l)
		ce := pm.candList[r]
		if compiled != nil {
			return compiled(ce.inst.Props)
		}
		if v, ok := ce.edges[exprStr]; ok {
			return v
		}
		if f := fills[ce]; f != nil {
			if v, ok := f[exprStr]; ok {
				return v
			}
		}
		ok, err := predicate.Eval(expr, ce.inst.Env())
		v := err == nil && ok
		f := fills[ce]
		if f == nil {
			f = make(map[string]bool)
			fills[ce] = f
		}
		f[exprStr] = v
		return v
	}

	adjLists := make([][]int, nLeft)
	adjKnown := make([]bool, nLeft)
	for l := 0; l < nLeft; l++ {
		expr, _, _ := left(l)
		if set, ok := pm.indexCandidates(expr); ok {
			list := make([]int, 0, len(set))
			for _, ce := range set {
				list = append(list, ce.pos)
			}
			adjLists[l] = list
			adjKnown[l] = true
		}
	}
	adj := func(l int) []int {
		if adjKnown[l] {
			return adjLists[l]
		}
		return nil
	}

	initial := make([]int, nLeft)
	for i := range initial {
		initial[i] = matching.Unmatched
	}
	for i, se := range pm.slotList {
		if se.assigned == "" {
			continue
		}
		if ce := pm.cands[se.assigned]; ce != nil {
			initial[i] = ce.pos
		}
	}

	assign, sat := matching.SolveSeeded(nLeft, nRight, edge, adj, initial)
	if sat {
		for i, se := range pm.slotList {
			if id := pm.candList[assign[i]].id; id != se.assigned {
				plan.realloc[se.key] = id
			}
		}
		for k := range preds {
			plan.slots[k].assign = pm.candList[assign[nSlots+k]].id
		}
	}
	pm.mu.RUnlock()

	// Fold the new Eval verdicts into the shared cache. The table S locks
	// are still held, so no commit can have re-classified (and thereby
	// invalidated) an entry between the solve and this fold; the identity
	// check is belt and braces.
	if len(fills) > 0 {
		pm.mu.Lock()
		for ce, f := range fills {
			if pm.cands[ce.id] != ce {
				continue
			}
			if ce.edges == nil {
				ce.edges = make(map[string]bool, len(f))
			}
			for k, v := range f {
				ce.edges[k] = v
			}
		}
		pm.mu.Unlock()
	}
	return sat, nil
}

// compiledPred is a predicate specialised to direct evaluation over an
// instance's property map — no Env indirection, no AST walk, no error
// allocation. false covers both "unsatisfied" and "evaluation error", which
// is exactly the edge oracle's treatment of predicate.Eval.
type compiledPred func(props map[string]predicate.Value) bool

// compilePred compiles e for the edge oracle, or returns nil when the
// expression cannot be compiled faithfully — a reference to the "id" or
// "status" evaluation builtins (which live on Env, not Props) or an unknown
// node. Callers fall back to predicate.Eval over the full environment.
func compilePred(e predicate.Expr) compiledPred {
	f := compileValue(e)
	if f == nil {
		return nil
	}
	return func(props map[string]predicate.Value) bool {
		v, ok := f(props)
		if !ok {
			return false
		}
		b, isBool := v.AsBool()
		return isBool && b
	}
}

// compileValue mirrors predicate.Eval's evalValue exactly, with ok=false
// standing in for every evaluation error: unknown property, non-bool
// logical operand, cross-kind ordered comparison, non-int arithmetic,
// division by zero.
func compileValue(e predicate.Expr) func(map[string]predicate.Value) (predicate.Value, bool) {
	fail := func() (predicate.Value, bool) { return predicate.Value{}, false }
	switch n := e.(type) {
	case *predicate.Lit:
		v := n.Val
		return func(map[string]predicate.Value) (predicate.Value, bool) { return v, true }
	case *predicate.Ref:
		if n.Name == "id" || n.Name == "status" {
			return nil
		}
		name := n.Name
		return func(props map[string]predicate.Value) (predicate.Value, bool) {
			v, ok := props[name]
			return v, ok
		}
	case *predicate.Not:
		x := compileValue(n.X)
		if x == nil {
			return nil
		}
		return func(props map[string]predicate.Value) (predicate.Value, bool) {
			v, ok := x(props)
			if !ok {
				return fail()
			}
			b, isBool := v.AsBool()
			if !isBool {
				return fail()
			}
			return predicate.Bool(!b), true
		}
	case *predicate.In:
		x := compileValue(n.X)
		if x == nil {
			return nil
		}
		set := n.Set
		return func(props map[string]predicate.Value) (predicate.Value, bool) {
			v, ok := x(props)
			if !ok {
				return fail()
			}
			for _, member := range set {
				if v.Equal(member) {
					return predicate.Bool(true), true
				}
			}
			return predicate.Bool(false), true
		}
	case *predicate.Binary:
		l := compileValue(n.L)
		r := compileValue(n.R)
		if l == nil || r == nil {
			return nil
		}
		switch n.Op {
		case predicate.OpAnd, predicate.OpOr:
			and := n.Op == predicate.OpAnd
			return func(props map[string]predicate.Value) (predicate.Value, bool) {
				lv, ok := l(props)
				if !ok {
					return fail()
				}
				lb, isBool := lv.AsBool()
				if !isBool {
					return fail()
				}
				if and && !lb {
					return predicate.Bool(false), true
				}
				if !and && lb {
					return predicate.Bool(true), true
				}
				rv, ok := r(props)
				if !ok {
					return fail()
				}
				rb, isBool := rv.AsBool()
				if !isBool {
					return fail()
				}
				return predicate.Bool(rb), true
			}
		case predicate.OpEq, predicate.OpNeq:
			eq := n.Op == predicate.OpEq
			return func(props map[string]predicate.Value) (predicate.Value, bool) {
				lv, ok := l(props)
				if !ok {
					return fail()
				}
				rv, ok := r(props)
				if !ok {
					return fail()
				}
				return predicate.Bool(lv.Equal(rv) == eq), true
			}
		case predicate.OpLt, predicate.OpLe, predicate.OpGt, predicate.OpGe:
			op := n.Op
			return func(props map[string]predicate.Value) (predicate.Value, bool) {
				lv, ok := l(props)
				if !ok {
					return fail()
				}
				rv, ok := r(props)
				if !ok {
					return fail()
				}
				c, err := lv.Compare(rv)
				if err != nil {
					return fail()
				}
				var b bool
				switch op {
				case predicate.OpLt:
					b = c < 0
				case predicate.OpLe:
					b = c <= 0
				case predicate.OpGt:
					b = c > 0
				default:
					b = c >= 0
				}
				return predicate.Bool(b), true
			}
		case predicate.OpAdd, predicate.OpSub, predicate.OpMul, predicate.OpDiv, predicate.OpMod:
			op := n.Op
			return func(props map[string]predicate.Value) (predicate.Value, bool) {
				lv, ok := l(props)
				if !ok {
					return fail()
				}
				rv, ok := r(props)
				if !ok {
					return fail()
				}
				if op == predicate.OpAdd {
					if ls, lok := lv.AsString(); lok {
						if rs, rok := rv.AsString(); rok {
							return predicate.Str(ls + rs), true
						}
					}
				}
				li, lok := lv.AsInt()
				ri, rok := rv.AsInt()
				if !lok || !rok {
					return fail()
				}
				switch op {
				case predicate.OpAdd:
					return predicate.Int(li + ri), true
				case predicate.OpSub:
					return predicate.Int(li - ri), true
				case predicate.OpMul:
					return predicate.Int(li * ri), true
				case predicate.OpDiv:
					if ri == 0 {
						return fail()
					}
					return predicate.Int(li / ri), true
				default:
					if ri == 0 {
						return fail()
					}
					return predicate.Int(li % ri), true
				}
			}
		}
		return nil
	default:
		return nil
	}
}
