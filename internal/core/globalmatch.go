package core

import (
	"repro/internal/matching"
	"repro/internal/predicate"
)

// This file is the coordinator-side half of cross-shard property matching.
// A property predicate can be satisfied by an instance on any shard, and
// admitting it may require rearranging the tentative allocations of
// promises that live on other shards (§5). The coordinator reads every
// involved shard's matching state through its open reservation and solves
// one joint bipartite problem:
//
//   - left vertices: every existing active property slot on every shard,
//     followed by the request's new property predicates and its deferred
//     named predicates (named predicates whose instance is tentatively
//     allocated to a property promise — granting them means displacing
//     that allocation, which is itself a global matching decision);
//   - right vertices: every candidate instance on every shard;
//   - edges: predicate satisfaction for property slots, identity for named
//     predicates.
//
// The solve runs in two passes. Pass 1 pins every existing slot to its own
// shard: when it saturates — the common case — no allocation crosses a
// shard boundary and the plan degenerates to per-shard reallocations.
// Pass 2 lets existing single-predicate slots roam: a slot whose best host
// now lives on another shard is re-homed there through the reservation
// pipeline (MigrateOut/MigrateIn), keeping its promise id, client and
// expiry. Pass 2 accepts exactly the set of requests a single store
// accepts, because with migration the shard boundaries stop constraining
// the matching at all.
//
// Both passes are seeded with the current assignments, so by the
// augmenting-path theorem only the new predicates (and any slots they
// displace) pay for path searches, and edges are evaluated lazily via
// matching.Incremental — the cross-shard generalisation of lazymatch.go.

// shardFloatPlan is one shard's slice of a solved global match: existing
// slots to move within the shard, plus new predicates to grant pinned to
// chosen instances (one single-predicate sub-promise each, so the slot
// stays migratable later).
type shardFloatPlan struct {
	realloc map[string]string
	preds   []Predicate
	predIdx []int
	assign  []string
}

// slotMigration re-homes one existing property sub-promise: its tag moves
// from inst on shard from to inst on shard to.
type slotMigration struct {
	promiseID string
	from, to  int
	inst      string
}

// floatPred is one new left vertex of the joint match: a property
// predicate free to land anywhere, or a deferred named predicate bound to
// exactly one instance.
type floatPred struct {
	idx   int // position in the original request
	named bool
}

// solveFloatAssignment solves the joint property match for the request's
// floating predicates over every reserved shard. It returns the per-shard
// plans plus any cross-shard migrations of existing slots, or ok=false
// when the predicates are not jointly satisfiable with the outstanding
// promises.
func (s *ShardedManager) solveFloatAssignment(resvs map[int]*Reservation, pr PromiseRequest, floating []floatPred, mode PropertyMode) (map[int]*shardFloatPlan, []slotMigration, bool, error) {
	type gSlot struct {
		shard int
		slot  PropertySlot
	}
	type gCand struct {
		shard int
		cand  PropertyCandidate
	}
	var slots []gSlot
	var cands []gCand
	candIdx := make(map[string]int) // instance id -> right index (ids are globally unique)
	for _, sh := range sortedKeys(resvs) {
		ctx, err := resvs[sh].PropertyContext()
		if err != nil {
			return nil, nil, false, err
		}
		for _, sl := range ctx.Slots {
			slots = append(slots, gSlot{shard: sh, slot: sl})
		}
		for _, c := range ctx.Candidates {
			candIdx[c.Instance.ID] = len(cands)
			cands = append(cands, gCand{shard: sh, cand: c})
		}
	}

	plans := make(map[int]*shardFloatPlan)
	plan := func(sh int) *shardFloatPlan {
		p := plans[sh]
		if p == nil {
			p = &shardFloatPlan{realloc: make(map[string]string)}
			plans[sh] = p
		}
		return p
	}

	if mode == FirstFitMode {
		// Greedy ablation, mirroring the single-store first-fit: each new
		// predicate binds to the first free satisfying instance in shard
		// then id order, and existing allocations never move. Deferred
		// named predicates cannot occur (first-fit never displaces).
		used := make(map[int]bool)
		for _, f := range floating {
			found := -1
			for j, c := range cands {
				if used[j] || c.cand.Tentative {
					continue
				}
				ok, err := predicate.Eval(pr.Predicates[f.idx].Expr, c.cand.Instance.Env())
				if err != nil || !ok {
					continue
				}
				found = j
				break
			}
			if found < 0 {
				return nil, nil, false, nil
			}
			used[found] = true
			p := plan(cands[found].shard)
			p.preds = append(p.preds, pr.Predicates[f.idx])
			p.predIdx = append(p.predIdx, f.idx)
			p.assign = append(p.assign, cands[found].cand.Instance.ID)
		}
		return plans, nil, true, nil
	}

	// edge decides predicate satisfaction alone; the pass-specific oracles
	// add the shard constraint for existing slots. Each left vertex's
	// predicate is compiled once (propmatch.go) so the common shapes
	// evaluate straight off the property map; only shapes the compiler
	// refuses (references to the id/status builtins) pay for full Eval.
	nExist := len(slots)
	compiled := make([]compiledPred, nExist+len(floating))
	for i, sl := range slots {
		compiled[i] = compilePred(sl.slot.Expr)
	}
	for k, f := range floating {
		if !f.named {
			compiled[nExist+k] = compilePred(pr.Predicates[f.idx].Expr)
		}
	}
	edge := func(l, r int) bool {
		var expr predicate.Expr
		if l < nExist {
			expr = slots[l].slot.Expr
		} else {
			f := floating[l-nExist]
			if f.named {
				return cands[r].cand.Instance.ID == pr.Predicates[f.idx].Instance
			}
			expr = pr.Predicates[f.idx].Expr
		}
		if c := compiled[l]; c != nil {
			return c(cands[r].cand.Instance.Props)
		}
		ok, err := predicate.Eval(expr, cands[r].cand.Instance.Env())
		return err == nil && ok
	}
	seed := make([]int, nExist+len(floating))
	for i := range seed {
		seed[i] = matching.Unmatched
	}
	for i, sl := range slots {
		if j, ok := candIdx[sl.slot.Assigned]; ok && sl.slot.Assigned != "" {
			seed[i] = j
		}
	}

	// Pass 1: existing slots pinned to their own shard — no migrations.
	pinned := matching.NewIncremental(nExist+len(floating), len(cands), func(l, r int) bool {
		if l < nExist && slots[l].shard != cands[r].shard {
			return false
		}
		return edge(l, r)
	})
	assign, ok := pinned.Solve(seed)
	if !ok {
		// Pass 2: single-predicate slots may migrate between shards. This
		// is the exact single-store feasibility: shard boundaries no longer
		// constrain the match.
		free := matching.NewIncremental(nExist+len(floating), len(cands), func(l, r int) bool {
			if l < nExist && slots[l].shard != cands[r].shard && !slots[l].slot.Migratable {
				return false
			}
			return edge(l, r)
		})
		if assign, ok = free.Solve(seed); !ok {
			return nil, nil, false, nil
		}
	}

	var migs []slotMigration
	for i, sl := range slots {
		c := cands[assign[i]]
		newID := c.cand.Instance.ID
		if newID == sl.slot.Assigned {
			continue
		}
		if c.shard == sl.shard {
			plan(sl.shard).realloc[sl.slot.Key] = newID
			continue
		}
		pid, _, _ := parseSlotKey(sl.slot.Key)
		migs = append(migs, slotMigration{promiseID: pid, from: sl.shard, to: c.shard, inst: newID})
	}
	for k, f := range floating {
		c := cands[assign[nExist+k]]
		p := plan(c.shard)
		p.preds = append(p.preds, pr.Predicates[f.idx])
		p.predIdx = append(p.predIdx, f.idx)
		p.assign = append(p.assign, c.cand.Instance.ID)
	}
	return plans, migs, true, nil
}
