package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/predicate"
	"repro/internal/resource"
	"repro/internal/txn"
)

// collect drains every event currently buffered on ch without blocking.
func collect(ch <-chan Event) []Event {
	var out []Event
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, ev)
		default:
			return out
		}
	}
}

// nextEvent receives one event or fails after a timeout (events are
// published synchronously before the triggering call returns, so the
// timeout only trips on a real bug).
func nextEvent(t *testing.T, ch <-chan Event) Event {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("event channel closed")
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("no event arrived")
	}
	return Event{}
}

func TestWatchLifecycleOrdering(t *testing.T) {
	// Per-promise ordering: every promise's events arrive in lifecycle
	// order (granted before released), and Seq is strictly increasing
	// across the whole stream.
	m, _ := newManager(t, Config{DefaultDuration: time.Hour})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 100, nil)
	})
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	ch, err := m.Watch(ctx, WatchOptions{Buffer: 256})
	if err != nil {
		t.Fatal(err)
	}

	var ids []string
	for i := 0; i < 10; i++ {
		pr := grantOne(t, m, requestQuantity("c", "p", 1))
		ids = append(ids, pr.PromiseID)
	}
	for _, id := range ids {
		if _, err := m.Execute(bg, Request{Client: "c", Env: []EnvEntry{{PromiseID: id, Release: true}}}); err != nil {
			t.Fatal(err)
		}
	}

	events := collect(ch)
	if len(events) != 20 {
		t.Fatalf("got %d events, want 20", len(events))
	}
	var lastSeq uint64
	state := make(map[string]EventType)
	for _, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("Seq not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case EventGranted:
			if prev, seen := state[ev.PromiseID]; seen {
				t.Fatalf("%s granted after %s", ev.PromiseID, prev)
			}
		case EventReleased:
			if state[ev.PromiseID] != EventGranted {
				t.Fatalf("%s released before granted", ev.PromiseID)
			}
		default:
			t.Fatalf("unexpected event type %s", ev.Type)
		}
		state[ev.PromiseID] = ev.Type
		if ev.Client != "c" {
			t.Fatalf("event client = %q", ev.Client)
		}
	}
	for _, id := range ids {
		if state[id] != EventReleased {
			t.Fatalf("promise %s ended in %s", id, state[id])
		}
	}
}

func TestWatchRenewedOnModify(t *testing.T) {
	// A grant that atomically releases a prior promise — the §4 modify —
	// emits Released for the old id and Renewed (naming it) for the new.
	m, _ := newManager(t, Config{DefaultDuration: time.Hour})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 10, nil)
	})
	old := grantOne(t, m, requestQuantity("c", "p", 5))

	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	ch, err := m.Watch(ctx, WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	up := grantOne(t, m, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("p", 8)},
		Releases:   []string{old.PromiseID},
	}}})
	if !up.Accepted {
		t.Fatal(up.Reason)
	}

	rel := nextEvent(t, ch)
	if rel.Type != EventReleased || rel.PromiseID != old.PromiseID {
		t.Fatalf("first event = %s %s, want released %s", rel.Type, rel.PromiseID, old.PromiseID)
	}
	ren := nextEvent(t, ch)
	if ren.Type != EventRenewed || ren.PromiseID != up.PromiseID {
		t.Fatalf("second event = %s %s, want renewed %s", ren.Type, ren.PromiseID, up.PromiseID)
	}
	if !strings.Contains(ren.Reason, old.PromiseID) {
		t.Fatalf("renewal reason %q does not name the replaced promise", ren.Reason)
	}
}

func TestExpiryFiresAtDeadlineNotNextRequest(t *testing.T) {
	// The heap + clock alarm lapse the promise at its deadline: the
	// Expired event arrives, the expiration is counted, and capacity is
	// freed — all before any further request touches the engine.
	m, fake := newManager(t, Config{DefaultDuration: time.Minute, ExpiryWarning: 10 * time.Second})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 10, nil)
	})
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	ch, err := m.Watch(ctx, WatchOptions{Types: []EventType{EventExpiryImminent, EventExpired}})
	if err != nil {
		t.Fatal(err)
	}
	pr := grantOne(t, m, requestQuantity("c", "p", 10))

	// Crossing into the warning window emits ExpiryImminent, not Expired.
	fake.Advance(55 * time.Second)
	warn := nextEvent(t, ch)
	if warn.Type != EventExpiryImminent || warn.PromiseID != pr.PromiseID {
		t.Fatalf("got %s %s, want expiry-imminent %s", warn.Type, warn.PromiseID, pr.PromiseID)
	}
	if got := m.Stats().Expirations; got != 0 {
		t.Fatalf("expirations before deadline = %d", got)
	}

	// Crossing the deadline lapses the promise with no request running.
	fake.Advance(10 * time.Second)
	exp := nextEvent(t, ch)
	if exp.Type != EventExpired || exp.PromiseID != pr.PromiseID {
		t.Fatalf("got %s %s, want expired %s", exp.Type, exp.PromiseID, pr.PromiseID)
	}
	if got := m.Stats().Expirations; got != 1 {
		t.Fatalf("expirations after deadline = %d, want 1 (before any request)", got)
	}
	// Capacity was freed at the deadline: the full pool grants again.
	if again := grantOne(t, m, requestQuantity("d", "p", 10)); !again.Accepted {
		t.Fatalf("capacity not freed at deadline: %s", again.Reason)
	}
}

func TestShardedExpiryFiresAtDeadline(t *testing.T) {
	s, fake := newShardedT(t, ShardedConfig{DefaultDuration: time.Minute})
	pool := nameOnShard(t, s, 1, "evx-pool")
	mustPool(t, s, pool, 5)
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	ch, err := s.Watch(ctx, WatchOptions{Types: []EventType{EventExpired}})
	if err != nil {
		t.Fatal(err)
	}
	pr := grantQty(t, s, "c", Quantity(pool, 5))
	if !pr.Accepted {
		t.Fatal(pr.Reason)
	}
	fake.Advance(2 * time.Minute)
	exp := nextEvent(t, ch)
	if exp.Type != EventExpired || exp.PromiseID != pr.PromiseID {
		t.Fatalf("got %s %s, want expired %s", exp.Type, exp.PromiseID, pr.PromiseID)
	}
	if again := grantQty(t, s, "d", Quantity(pool, 5)); !again.Accepted {
		t.Fatalf("capacity not freed at deadline: %s", again.Reason)
	}
	mustHealthy(t, s)
}

func TestWatchExactlyOnceAcrossMigration(t *testing.T) {
	// A property sub-promise displaced to another shard keeps one
	// continuous event stream under its id: exactly one grant, exactly one
	// migration, exactly one terminal event — nothing doubled or lost by
	// the move.
	s, fake := newShardedT(t, ShardedConfig{Shards: 4, DefaultDuration: time.Minute})
	x := nameOnShard(t, s, 0, "evm-x")
	y := nameOnShard(t, s, 2, "evm-y")
	for _, id := range []string{x, y} {
		if err := s.CreateInstance(id, map[string]predicate.Value{"p": predicate.Bool(true)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	ch, err := s.Watch(ctx, WatchOptions{Client: "c", Buffer: 128})
	if err != nil {
		t.Fatal(err)
	}

	prop := grantQty(t, s, "c", MustProperty("p"))
	if !prop.Accepted {
		t.Fatal(prop.Reason)
	}
	// Claiming the backing instance by name displaces the slot; with only
	// one alternative, on another shard, the sub-promise must migrate.
	info, err := s.PromiseInfo(prop.PromiseID)
	if err != nil {
		t.Fatal(err)
	}
	if claim := grantQty(t, s, "d", Named(info.Assigned[0])); !claim.Accepted {
		t.Fatalf("named claim rejected: %s", claim.Reason)
	}
	// Let the migrated promise lapse on its new shard.
	fake.Advance(2 * time.Minute)

	counts := make(map[EventType]int)
	var order []EventType
	for _, ev := range collect(ch) {
		if ev.PromiseID != prop.PromiseID {
			continue
		}
		counts[ev.Type]++
		order = append(order, ev.Type)
	}
	if counts[EventGranted] != 1 || counts[EventMigrated] != 1 || counts[EventExpired] != 1 {
		t.Fatalf("counts = %v, want exactly one granted, migrated, expired", counts)
	}
	if len(order) != 3 || order[0] != EventGranted || order[1] != EventMigrated || order[2] != EventExpired {
		t.Fatalf("order = %v, want [granted migrated expired]", order)
	}
	mustHealthy(t, s)
}

func TestWatchSlowSubscriberDrop(t *testing.T) {
	// Default policy: a full buffer drops events; the subscriber stays
	// connected and sees the loss as a Seq gap.
	m, _ := newManager(t, Config{DefaultDuration: time.Hour})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 100, nil)
	})
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	ch, err := m.Watch(ctx, WatchOptions{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		grantOne(t, m, requestQuantity("c", "p", 1))
	}
	first := nextEvent(t, ch) // the one buffered event; the middle two dropped
	grantOne(t, m, requestQuantity("c", "p", 1))
	next := nextEvent(t, ch)
	if next.Seq <= first.Seq+1 {
		t.Fatalf("expected a Seq gap after drops: %d then %d", first.Seq, next.Seq)
	}
	select {
	case _, ok := <-ch:
		if !ok {
			t.Fatal("drop policy must not close the channel")
		}
	default:
	}
}

func TestWatchSlowSubscriberDisconnect(t *testing.T) {
	m, _ := newManager(t, Config{DefaultDuration: time.Hour})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 100, nil)
	})
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	ch, err := m.Watch(ctx, WatchOptions{Buffer: 1, SlowPolicy: SlowDisconnect})
	if err != nil {
		t.Fatal(err)
	}
	grantOne(t, m, requestQuantity("c", "p", 1))
	grantOne(t, m, requestQuantity("c", "p", 1)) // overflows: disconnect
	<-ch                                         // the buffered event
	if _, ok := <-ch; ok {
		t.Fatal("disconnect policy must close the channel")
	}
}

func TestWatchFiltersAndReplay(t *testing.T) {
	m, _ := newManager(t, Config{DefaultDuration: time.Hour})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 100, nil)
	})
	ctx, cancel := context.WithCancel(bg)
	defer cancel()

	byClient, err := m.Watch(ctx, WatchOptions{Client: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	a := grantOne(t, m, requestQuantity("alice", "p", 1))
	grantOne(t, m, requestQuantity("bob", "p", 1))

	byID, err := m.Watch(ctx, WatchOptions{PromiseIDs: []string{a.PromiseID}})
	if err != nil {
		t.Fatal(err)
	}
	byType, err := m.Watch(ctx, WatchOptions{Types: []EventType{EventReleased}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Execute(bg, Request{Client: "alice", Env: []EnvEntry{{PromiseID: a.PromiseID, Release: true}}}); err != nil {
		t.Fatal(err)
	}

	got := collect(byClient)
	if len(got) != 2 || got[0].Client != "alice" || got[1].Client != "alice" {
		t.Fatalf("client filter leaked: %+v", got)
	}
	got = collect(byID)
	if len(got) != 1 || got[0].Type != EventReleased || got[0].PromiseID != a.PromiseID {
		t.Fatalf("id filter: %+v", got)
	}
	got = collect(byType)
	if len(got) != 1 || got[0].Type != EventReleased {
		t.Fatalf("type filter: %+v", got)
	}

	// Replay: a late subscriber resumes from the retained ring.
	replay, err := m.Watch(ctx, WatchOptions{Replay: true, AfterSeq: 1})
	if err != nil {
		t.Fatal(err)
	}
	got = collect(replay)
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Fatalf("replay after seq 1: %+v", got)
	}
}

func TestWatchViolatedEvent(t *testing.T) {
	m, _ := newManager(t, Config{DefaultDuration: time.Hour})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreateInstance(tx, "i", nil)
	})
	pr := grantOne(t, m, Request{Client: "holder", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Named("i")},
	}}})
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	ch, err := m.Watch(ctx, WatchOptions{Types: []EventType{EventViolated}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := m.Execute(bg, Request{Client: "other", Action: func(ac *ActionContext) (any, error) {
		return nil, ac.Resources.SetStatus(ac.Tx, "i", resource.Taken)
	}})
	if err != nil || !errors.Is(resp.ActionErr, ErrPromiseViolated) {
		t.Fatalf("setup violation: %v %v", err, resp)
	}
	ev := nextEvent(t, ch)
	if ev.PromiseID != pr.PromiseID || ev.Client != "holder" {
		t.Fatalf("violated event = %+v, want promise %s owned by holder", ev, pr.PromiseID)
	}
	if ev.Reason == "" {
		t.Fatal("violated event carries no reason")
	}
}

func TestContextDeadlineCapsDuration(t *testing.T) {
	// The request context's deadline caps the granted duration, so the two
	// timeout vocabularies agree; a floor the cap cannot meet rejects with
	// a clear reason. Single-store and sharded engines must agree.
	run := func(t *testing.T, grant func(pr PromiseRequest, ctx context.Context) PromiseResponse) {
		ctx, cancel := context.WithTimeout(bg, 5*time.Second)
		defer cancel()
		pr := grant(PromiseRequest{Predicates: []Predicate{Quantity("p", 1)}, Duration: time.Hour}, ctx)
		if !pr.Accepted {
			t.Fatalf("capped grant rejected: %s", pr.Reason)
		}

		short := grant(PromiseRequest{
			Predicates:  []Predicate{Quantity("p", 1)},
			Duration:    time.Hour,
			MinDuration: time.Minute,
		}, ctx)
		if short.Accepted {
			t.Fatal("grant below the client's floor accepted")
		}
		if !strings.Contains(short.Reason, "minimum") {
			t.Fatalf("floor rejection reason %q", short.Reason)
		}

		// The floor also guards the manager's own cap, without any ctx
		// deadline in play.
		overCap := grant(PromiseRequest{
			Predicates:  []Predicate{Quantity("p", 1)},
			Duration:    time.Hour,
			MinDuration: 30 * time.Minute,
		}, bg)
		if overCap.Accepted {
			t.Fatal("floor above MaxDuration accepted")
		}
	}
	t.Run("single", func(t *testing.T) {
		m, fake := newManager(t, Config{MaxDuration: 10 * time.Minute})
		seed(t, m, func(tx *txn.Tx) error {
			return m.Resources().CreatePool(tx, "p", 100, nil)
		})
		run(t, func(pr PromiseRequest, ctx context.Context) PromiseResponse {
			resp, err := m.Execute(ctx, Request{Client: "c", PromiseRequests: []PromiseRequest{pr}})
			if err != nil {
				t.Fatal(err)
			}
			out := resp.Promises[0]
			if out.Accepted {
				// The granted expiry must respect the ctx cap (5s of fake
				// time from now, since durations are relative).
				if max := fake.Now().Add(6 * time.Second); out.Expires.After(max) {
					t.Fatalf("expiry %v beyond ctx deadline cap %v", out.Expires, max)
				}
			}
			return out
		})
	})
	t.Run("sharded", func(t *testing.T) {
		s, _ := newShardedT(t, ShardedConfig{MaxDuration: 10 * time.Minute})
		pool := nameOnShard(t, s, 1, "ctxcap")
		mustPool(t, s, pool, 100)
		run(t, func(pr PromiseRequest, ctx context.Context) PromiseResponse {
			for i := range pr.Predicates {
				if pr.Predicates[i].View == AnonymousView {
					pr.Predicates[i].Pool = pool
				}
			}
			resp, err := s.Execute(ctx, Request{Client: "c", PromiseRequests: []PromiseRequest{pr}})
			if err != nil {
				t.Fatal(err)
			}
			return resp.Promises[0]
		})
	})
	t.Run("sharded-property", func(t *testing.T) {
		// Property predicates take the cross-shard reserve pipeline and
		// are granted pinned by the global matcher: the floor must reject
		// before any shard reserves, and an accepted pinned grant must
		// respect the ctx-deadline cap exactly like a single-store grant.
		s, fake := newShardedT(t, ShardedConfig{MaxDuration: 10 * time.Minute})
		if err := s.CreateInstance("ctxcap-inst", map[string]predicate.Value{"p": predicate.Bool(true)}); err != nil {
			t.Fatal(err)
		}
		resp, err := s.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
			Predicates:  []Predicate{MustProperty("p")},
			Duration:    time.Hour,
			MinDuration: 30 * time.Minute,
		}}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Promises[0].Accepted {
			t.Fatal("cross-shard floor above MaxDuration accepted")
		}
		ctx, cancel := context.WithTimeout(bg, 5*time.Second)
		defer cancel()
		resp, err = s.Execute(ctx, Request{Client: "c", PromiseRequests: []PromiseRequest{{
			Predicates: []Predicate{MustProperty("p")},
			Duration:   time.Hour,
		}}})
		if err != nil {
			t.Fatal(err)
		}
		pr := resp.Promises[0]
		if !pr.Accepted {
			t.Fatalf("capped pinned grant rejected: %s", pr.Reason)
		}
		if max := fake.Now().Add(6 * time.Second); pr.Expires.After(max) {
			t.Fatalf("pinned grant expires %v, beyond the ctx deadline cap %v", pr.Expires, max)
		}
		mustHealthy(t, s)
	})
}
