package core

// Degraded read-only mode. A durable engine whose WAL stops accepting
// appends or fsyncs cannot make new commits durable; instead of latching
// the failure silently (and failing every sync from then on), the engine
// transitions to a well-defined degraded state: mutating requests reject
// with ErrDegraded, reads and Watch keep serving off committed snapshots,
// and a clock-driven log re-probe restores service when the disk answers
// again (recover.go, armReprobe). The daemon surfaces the state through
// /healthz and /readyz.

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Health is an engine's serving state, as exposed by Manager.Health and
// ShardedManager.Health and by the daemon's /readyz endpoint.
type Health struct {
	// Degraded reports read-only mode: persistence is failing, mutating
	// requests are rejected with ErrDegraded.
	Degraded bool `json:"degraded"`
	// Reason is the first persistence failure that tripped degraded mode.
	Reason string `json:"reason,omitempty"`
}

// engineHealth is the shared degraded-state latch: one per durable engine,
// pointed to by the durableEngine, every shard Manager and the
// ShardedManager. All methods are nil-safe so non-durable engines (which
// never degrade) pay a single branch.
type engineHealth struct {
	degraded atomic.Bool
	mu       sync.Mutex
	reason   string
	// onTrip runs once per transition into degraded mode, outside mu. The
	// durable engine uses it to arm the re-probe alarm.
	onTrip func()
}

// trip moves the engine into degraded mode. Only the first trip per
// episode records its reason and fires onTrip; later failures while
// already degraded are no-ops.
func (h *engineHealth) trip(reason string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	fresh := !h.degraded.Load()
	if fresh {
		h.reason = reason
		h.degraded.Store(true)
	}
	cb := h.onTrip
	h.mu.Unlock()
	if fresh && cb != nil {
		cb()
	}
}

// clear restores normal service after a successful re-probe.
func (h *engineHealth) clear() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.degraded.Store(false)
	h.reason = ""
	h.mu.Unlock()
}

// reject returns the ErrDegraded rejection for mutating requests, or nil
// when the engine is serving normally. The common path is one atomic load.
func (h *engineHealth) reject() error {
	if h == nil || !h.degraded.Load() {
		return nil
	}
	h.mu.Lock()
	reason := h.reason
	h.mu.Unlock()
	return fmt.Errorf("%w: %s", ErrDegraded, reason)
}

// snapshot returns the current health.
func (h *engineHealth) snapshot() Health {
	if h == nil || !h.degraded.Load() {
		return Health{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return Health{Degraded: h.degraded.Load(), Reason: h.reason}
}

// Health reports the engine's serving state. A non-durable Manager is
// always healthy: it has no persistence to lose.
func (m *Manager) Health() Health { return m.health.snapshot() }

// Health reports the engine's serving state (see Manager.Health).
func (s *ShardedManager) Health() Health { return s.health.snapshot() }

// HealthReporter is the optional interface engines expose for the daemon's
// /readyz endpoint; transport.Server type-asserts it.
type HealthReporter interface {
	Health() Health
}
