package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/predicate"
	"repro/internal/resource"
	"repro/internal/softlock"
	"repro/internal/txn"
)

// This file is the shard-side half of the two-phase reserve → confirm/abort
// grant pipeline. A cross-shard promise request cannot run as one store
// transaction (each shard owns a private store), so the coordinator in
// sharded.go opens one Reservation per involved shard under the ordered
// shard lock set: each shard tentatively applies its slice of the request —
// releases first, then grants — inside a transaction it keeps open. The
// coordinator then either Confirms every reservation (commit) or Aborts
// them all (rollback), so concurrent clients never observe a cross-shard
// grant half-applied, and a released promise springs back untouched when
// the grant that would have consumed it fails on another shard.
//
// Because releases apply inside the open transaction before planning, a
// §4-style upgrade ("release 5, promise 8 from the freed 5") works across
// shards exactly as it does on the single store: the freed capacity is
// visible to the shard's own planner and, through PropertyContext, to the
// coordinator's global property matcher.
//
// The protocol is safe without extra locking only because the caller holds
// the shard mutex of every reservation for the pipeline's whole duration —
// the reservation's open transaction is then the sole user of the shard's
// store, so it can never deadlock and its commit cannot conflict.

// ReserveRequest is one shard's slice of a cross-shard promise request.
type ReserveRequest struct {
	// Releases are the promise ids owned by this shard to hand back
	// atomically with the grant (§4, third requirement). For a composite
	// release target these are the shard's sub-promise ids.
	Releases []string
	// Predicates are the shard-bound (anonymous and named view) predicates
	// this shard must guarantee; may be empty for a shard that only
	// releases or only contributes property candidates.
	Predicates []Predicate
	// PredIdx maps Predicates back to their positions in the original
	// request, recorded on the granted part for client-order reconstruction.
	PredIdx []int
	// Duration is the requested promise duration, clamped per shard config.
	Duration time.Duration
	// MinDuration is the client's floor, as in PromiseRequest.MinDuration.
	MinDuration time.Duration
	// Priority and Preemptible carry the request's tier and spot flag, as
	// in PromiseRequest: every sub-promise of a cross-shard grant is
	// stamped with them, and a positive tier lets the shard's planner (and
	// the coordinator's joint matcher) displace lower-tier preemptible
	// holds. See preempt.go.
	Priority    int
	Preemptible bool
}

// GrantedPart describes one sub-promise created under a reservation.
type GrantedPart struct {
	// ID is the sub-promise id (shard-prefixed).
	ID string
	// PredIdx holds the original request positions of the part's predicates.
	PredIdx []int
	// Expires is when the sub-promise lapses.
	Expires time.Time
}

// PropertySlot is one active property-view predicate on a shard with its
// current tentative assignment, as input to the global matcher.
type PropertySlot struct {
	// Key identifies the slot ("<promiseID>#<idx>").
	Key string
	// Expr is the property predicate.
	Expr predicate.Expr
	// Assigned is the instance currently backing the slot ("" when none).
	Assigned string
	// Migratable marks a single-predicate property sub-promise, which the
	// coordinator may re-home on another shard (MigrateOut/MigrateIn) when
	// the joint match needs its slot on an instance elsewhere.
	Migratable bool
}

// PropertyCandidate is one instance a shard can offer the global matcher.
type PropertyCandidate struct {
	// Instance is the candidate (read under the reservation transaction;
	// do not mutate).
	Instance *resource.Instance
	// Tentative marks an instance currently backing an active property
	// slot: matching mode may rearrange it, first-fit mode may not.
	Tentative bool
}

// PropertyContext is a shard's property-matching state, read inside the
// reservation transaction so it reflects the tentatively-applied releases.
type PropertyContext struct {
	// Slots are the shard's active property slots.
	Slots []PropertySlot
	// Candidates are the instances available for property matching:
	// available ones (including those freed by this reservation's
	// releases) and tentative ones.
	Candidates []PropertyCandidate
}

// Reservation is one shard's tentatively-applied slice of a two-phase
// grant, held open inside a store transaction until Confirm or Abort. The
// caller must hold the shard's mutex for the reservation's whole lifetime.
type Reservation struct {
	m       *Manager
	tx      *txn.Tx
	st      *execState
	client  string
	start   time.Time
	granted []GrantedPart
	done    bool
	// priority and preemptible are the request's tier and spot flag,
	// stamped onto every sub-promise this reservation grants (including
	// the coordinator's pinned property grants).
	priority    int
	preemptible bool
}

// Reserve begins a reservation: it opens a transaction, sweeps expired
// promises, tentatively hands back every release target, and grants the
// shard-bound predicates. It returns exactly one of:
//
//   - a live Reservation (the tentative state is applied and held open),
//   - a rejection response (the transaction was rolled back; release
//     targets remain in force, §4),
//   - an internal error (also rolled back).
func (m *Manager) Reserve(ctx context.Context, client string, rr ReserveRequest) (*Reservation, *PromiseResponse, error) {
	tx := m.store.Begin(txn.Block)
	st := &execState{}
	start := m.clk.Now()
	fail := func(err error) (*Reservation, *PromiseResponse, error) {
		_ = tx.Abort()
		for i := len(st.undoUpstream) - 1; i >= 0; i-- {
			st.undoUpstream[i]()
		}
		return nil, nil, err
	}
	reject := func(format string, args ...any) (*Reservation, *PromiseResponse, error) {
		_ = tx.Abort()
		for i := len(st.undoUpstream) - 1; i >= 0; i-- {
			st.undoUpstream[i]()
		}
		m.metrics.requests.Inc()
		m.metrics.rejections.Inc()
		m.metrics.latency.Observe(time.Since(start))
		return nil, &PromiseResponse{Reason: fmt.Sprintf(format, args...)}, nil
	}

	if err := m.sweepExpired(tx, st); err != nil {
		return fail(err)
	}
	if rr.Priority == 0 {
		rr.Priority = m.cfg.DefaultPriority
	}

	// Resolve every release target before applying any (mirroring the
	// single-store order, so duplicate targets resolve identically), then
	// hand them back inside the open transaction: the freed capacity is
	// visible to planning below, and an Abort restores it untouched.
	var rels []*Promise
	for _, rid := range rr.Releases {
		p, err := m.promiseForClient(tx, client, rid)
		if err != nil {
			return reject("release target %s: %v", rid, err)
		}
		rels = append(rels, p)
	}
	for _, p := range rels {
		if err := m.releasePromise(tx, st, p, Released); err != nil {
			return fail(err)
		}
	}

	r := &Reservation{m: m, tx: tx, st: st, client: client, start: start, priority: rr.Priority, preemptible: rr.Preemptible}
	if len(rr.Predicates) > 0 {
		duration, durReason := m.grantDuration(ctx, rr.Duration, rr.MinDuration)
		if durReason != "" {
			_, resp, _ := reject("%s", durReason)
			return nil, resp, nil
		}
		// Releases were already applied above, so plan with none pending.
		plan, reason, counter, err := m.plan(ctx, tx, st, rr.Predicates, nil, duration)
		if err != nil {
			return fail(err)
		}
		var victims []*Promise
		if plan == nil {
			// Spot-capacity fallback for the shard-bound predicates, exactly
			// as on the single store (preempt.go): victims revoked inside the
			// open reservation spring back untouched if any shard aborts.
			plan, victims, err = m.planPreempt(ctx, tx, st, rr.Predicates, nil, duration, rr.Priority)
			if err != nil {
				return fail(err)
			}
			if plan == nil {
				_, resp, _ := reject("%s", reason)
				resp.Counter = counter
				return nil, resp, nil
			}
		}
		id := m.promiseIDs.Next()
		for _, vp := range victims {
			if err := m.preemptPromise(tx, st, vp, id, rr.Priority); err != nil {
				return fail(err)
			}
		}
		prm := &Promise{
			ID:          id,
			Client:      client,
			Predicates:  append([]Predicate(nil), rr.Predicates...),
			Expires:     m.clk.Now().Add(duration),
			State:       Active,
			Priority:    rr.Priority,
			Preemptible: rr.Preemptible,
		}
		if err := m.applyGrant(tx, prm, plan); err != nil {
			return fail(err)
		}
		st.events = append(st.events, Event{
			Type: EventGranted, PromiseID: prm.ID, Client: client,
			Time: m.clk.Now(), Expires: prm.Expires,
		})
		r.granted = append(r.granted, GrantedPart{
			ID:      prm.ID,
			PredIdx: append([]int(nil), rr.PredIdx...),
			Expires: prm.Expires,
		})
	}
	return r, nil, nil
}

// propertySlotHolder reports whether inst is currently promised to an
// active property-view slot — the §5 tentative-allocation state the global
// matcher may rearrange or migrate. It reads the latest committed store
// snapshot; the caller must hold the shard's lock when the answer gates a
// mutation (the lock keeps the snapshot from going stale underneath the
// decision). Missing instances, named holds and lapsed holders all report
// false (the grant path then handles them exactly as the single store
// would).
func (m *Manager) propertySlotHolder(inst string) (bool, error) {
	snap := m.store.Snapshot()
	in, err := m.rm.Instance(snap, inst)
	if errors.Is(err, txn.ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if in.Status != resource.Promised {
		return false, nil
	}
	holder, err := m.tags.Holder(snap, inst)
	if err != nil {
		return false, err
	}
	pid, idx, ok := parseSlotKey(holder)
	if !ok {
		return false, nil
	}
	p, err := m.promise(snap, pid)
	if err != nil {
		if errors.Is(err, ErrPromiseNotFound) {
			return false, nil
		}
		return false, err
	}
	if p.State != Active || !m.clk.Now().Before(p.Expires) {
		return false, nil
	}
	return idx < len(p.Predicates) && p.Predicates[idx].View == PropertyView, nil
}

// MigrateOut detaches a single-predicate property sub-promise from this
// shard as the first half of a cross-shard reallocation: the slot's tag is
// released and the promise row removed, inside the reservation
// transaction. The caller re-homes the returned row with MigrateIn on the
// destination shard; an abort of either reservation restores everything.
func (r *Reservation) MigrateOut(promiseID string) (*Promise, error) {
	m := r.m
	p, err := m.promise(r.tx, promiseID)
	if err != nil {
		return nil, err
	}
	if p.State != Active || len(p.Predicates) != 1 || p.Predicates[0].View != PropertyView {
		return nil, fmt.Errorf("core: promise %s is not a migratable property slot", promiseID)
	}
	slot := slotKey(p.ID, 0)
	if inst := p.Assigned[0]; inst != "" {
		holder, err := m.tags.Holder(r.tx, inst)
		if err != nil {
			return nil, err
		}
		if holder == slot {
			if err := m.tags.Release(r.tx, inst, slot); err != nil {
				return nil, err
			}
		}
	}
	if err := r.tx.Delete(TablePromises, p.ID); err != nil {
		return nil, err
	}
	return p, nil
}

// MigrateIn adopts a property sub-promise migrated out of another shard,
// pinning it to inst on this shard. The promise keeps its id, client,
// predicate and expiry — only its backing instance (and owning store)
// change.
func (r *Reservation) MigrateIn(p *Promise, inst string) error {
	m := r.m
	if err := m.tags.Acquire(r.tx, inst, slotKey(p.ID, 0)); err != nil {
		return fmt.Errorf("core: migration of %s to %q failed: %w", p.ID, inst, err)
	}
	p.Assigned[0] = inst
	return m.putPromise(r.tx, p)
}

// PropertyContext reads the shard's property-matching state under the
// reservation transaction.
//
// When the reservation has written nothing (no releases applied, no sweep
// activity), the committed state the persistent matcher mirrors is exactly
// the transaction's view, so the context is served from propmatch.go under
// the same three table S locks the scans below would take — no row clones,
// no classification pass. The consistency argument is the file comment of
// propmatch.go; a reservation that released anything falls back to the
// scans, which see the tentatively-freed instances.
func (r *Reservation) PropertyContext() (*PropertyContext, error) {
	m := r.m
	if !m.cfg.disableFastPath && m.cfg.PropertyMode == MatchingMode && r.tx.Writes() == 0 {
		for _, tbl := range []string{resource.TableInstances, softlock.Table, TablePromises} {
			if err := r.tx.LockShared(tbl); err != nil {
				return nil, err
			}
		}
		pm := &m.pmatch
		pm.mu.RLock()
		out := &PropertyContext{
			Slots:      make([]PropertySlot, 0, len(pm.slotList)),
			Candidates: make([]PropertyCandidate, 0, len(pm.candList)),
		}
		for _, se := range pm.slotList {
			out.Slots = append(out.Slots, PropertySlot{Key: se.key, Expr: se.expr, Assigned: se.assigned, Migratable: se.sole})
		}
		for _, ce := range pm.candList {
			out.Candidates = append(out.Candidates, PropertyCandidate{Instance: ce.inst, Tentative: ce.tentative})
		}
		pm.mu.RUnlock()
		return out, nil
	}
	slots, err := m.activePropertySlots(r.tx, nil)
	if err != nil {
		return nil, err
	}
	slotSet := make(map[string]bool, len(slots))
	out := &PropertyContext{}
	for _, s := range slots {
		slotSet[s.key] = true
		out.Slots = append(out.Slots, PropertySlot{Key: s.key, Expr: s.expr, Assigned: s.assigned, Migratable: s.sole})
	}
	instances, err := m.rm.Instances(r.tx)
	if err != nil {
		return nil, err
	}
	holders, err := m.tags.Holders(r.tx)
	if err != nil {
		return nil, err
	}
	for _, in := range instances {
		switch {
		case in.Status == resource.Available:
			out.Candidates = append(out.Candidates, PropertyCandidate{Instance: in})
		case in.Status == resource.Promised && slotSet[holders[in.ID]]:
			out.Candidates = append(out.Candidates, PropertyCandidate{Instance: in, Tentative: true})
		}
	}
	return out, nil
}

// ApplyRealloc moves existing property slots to the instances the global
// matcher chose (keys as in PropertySlot.Key, values instance ids on this
// shard), inside the reservation transaction.
func (r *Reservation) ApplyRealloc(realloc map[string]string) error {
	return r.m.applyRealloc(r.tx, realloc)
}

// GrantPinned creates a sub-promise whose predicates are bound to exact
// instances chosen by the global matcher. assign[i] backs preds[i]; predIdx
// maps preds back to the original request. Call ApplyRealloc first when the
// match displaced existing slots, so the pinned instances are free.
func (r *Reservation) GrantPinned(preds []Predicate, predIdx []int, assign []string, d time.Duration) error {
	m := r.m
	prm := &Promise{
		ID:          m.promiseIDs.Next(),
		Client:      r.client,
		Predicates:  append([]Predicate(nil), preds...),
		Expires:     m.clk.Now().Add(m.clampDuration(d)),
		State:       Active,
		Assigned:    append([]string(nil), assign...),
		Priority:    r.priority,
		Preemptible: r.preemptible,
	}
	prm.DelegatedQty = make([]int64, len(preds))
	prm.DelegatedID = make([]string, len(preds))
	for i := range preds {
		if err := m.tags.Acquire(r.tx, assign[i], slotKey(prm.ID, i)); err != nil {
			return fmt.Errorf("core: pinned grant of %s to %q failed: %w", preds[i], assign[i], err)
		}
	}
	if err := m.putPromise(r.tx, prm); err != nil {
		return err
	}
	r.st.events = append(r.st.events, Event{
		Type: EventGranted, PromiseID: prm.ID, Client: r.client,
		Time: m.clk.Now(), Expires: prm.Expires,
	})
	r.granted = append(r.granted, GrantedPart{
		ID:      prm.ID,
		PredIdx: append([]int(nil), predIdx...),
		Expires: prm.Expires,
	})
	return nil
}

// Granted lists the sub-promises created under this reservation. They exist
// only if Confirm succeeds.
func (r *Reservation) Granted() []GrantedPart { return r.granted }

// Preempt revokes the given active promises on this shard inside the
// reservation transaction, on behalf of a cross-shard grant at tier
// byPriority: the coordinator applies the jointly selected victim set
// through the open reservations, so the revocations commit atomically with
// the grant and an abort anywhere restores every victim. Non-active ids
// are skipped (a concurrent expiry sweep may have lapsed one). The
// displacing promise id is stamped afterwards via StampPreemptedBy, once
// the pinned grants exist.
func (r *Reservation) Preempt(ids []string, byPriority int) error {
	for _, id := range ids {
		p, err := r.m.promise(r.tx, id)
		if err != nil {
			return err
		}
		if p.State != Active {
			continue
		}
		if err := r.m.preemptPromise(r.tx, r.st, p, "", byPriority); err != nil {
			return err
		}
	}
	return nil
}

// StampPreemptedBy fills the displacing promise id into this reservation's
// pending EventPreempted records that lack one (left empty by Preempt
// because the displacing sub-promise did not exist yet). Events publish at
// Confirm, so the annotation lands before any watcher can observe them.
func (r *Reservation) StampPreemptedBy(by string) {
	for i := range r.st.events {
		if r.st.events[i].Type == EventPreempted && r.st.events[i].By == "" {
			r.st.events[i].By = by
		}
	}
}

// Confirm commits the reservation: the tentative releases and grants become
// durable and the shard's counters record the work.
func (r *Reservation) Confirm() error {
	if r.done {
		return fmt.Errorf("core: reservation already finished")
	}
	r.done = true
	m := r.m
	m.pubMu.Lock()
	if err := r.tx.Commit(); err != nil {
		m.pubMu.Unlock()
		for i := len(r.st.undoUpstream) - 1; i >= 0; i-- {
			r.st.undoUpstream[i]()
		}
		return err
	}
	m.bus.publish(r.st.events...)
	m.pubMu.Unlock()
	syncErr := m.durSync()
	for _, f := range r.st.postCommit {
		f()
	}
	m.metrics.requests.Inc()
	m.metrics.grants.Add(int64(len(r.granted)))
	m.metrics.releases.Add(r.st.released)
	m.metrics.expirations.Add(r.st.expired)
	m.metrics.preemptions.Add(r.st.preempted)
	m.metrics.latency.Observe(time.Since(r.start))
	for _, g := range r.granted {
		m.trackExpiry(g.ID, g.Expires)
	}
	if len(r.st.sweptDue) > 0 {
		m.exp.removeDue(m.clk.Now(), r.st.sweptDue)
	}
	if syncErr != nil {
		return fmt.Errorf("core: commit not durable: %w", syncErr)
	}
	return nil
}

// Abort rolls the reservation back: the store transaction is aborted (so
// releases spring back into force and grants vanish) and upstream promises
// acquired during planning are compensated.
func (r *Reservation) Abort() {
	if r.done {
		return
	}
	r.done = true
	_ = r.tx.Abort()
	for i := len(r.st.undoUpstream) - 1; i >= 0; i-- {
		r.st.undoUpstream[i]()
	}
	r.m.metrics.requests.Inc()
	r.m.metrics.latency.Observe(time.Since(r.start))
}
