package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/txn"
)

// newSupplyChain builds distributor -> merchant with the distributor
// registered as the merchant's supplier for the given pool.
func newSupplyChain(t *testing.T, pool string, merchantStock, distributorStock int64) (merchant, distributor *Manager) {
	t.Helper()
	distributor, _ = newManager(t, Config{})
	seed(t, distributor, func(tx *txn.Tx) error {
		return distributor.Resources().CreatePool(tx, pool, distributorStock, nil)
	})
	merchant, _ = newManager(t, Config{
		Suppliers: map[string]Supplier{
			pool: &ManagerSupplier{M: distributor, Client: "merchant"},
		},
	})
	seed(t, merchant, func(tx *txn.Tx) error {
		return merchant.Resources().CreatePool(tx, pool, merchantStock, nil)
	})
	return merchant, distributor
}

func TestDelegationCoversShortfall(t *testing.T) {
	// §5: "a purchase order can be accepted by the merchant if it has
	// received a promise from the distributor that a backorder will be
	// fulfilled on time."
	merchant, distributor := newSupplyChain(t, "widgets", 3, 10)
	pr := grantOne(t, merchant, requestQuantity("customer", "widgets", 8))
	if !pr.Accepted {
		t.Fatalf("delegated grant rejected: %s", pr.Reason)
	}
	info, _ := merchant.PromiseInfo(pr.PromiseID)
	if info.DelegatedQty[0] != 5 {
		t.Fatalf("delegated qty = %d, want 5", info.DelegatedQty[0])
	}
	if info.DelegatedID[0] == "" {
		t.Fatal("no upstream promise recorded")
	}
	// The distributor now holds a 5-unit promise for the merchant.
	up, err := distributor.PromiseInfo(info.DelegatedID[0])
	if err != nil {
		t.Fatal(err)
	}
	if up.State != Active || up.Predicates[0].Qty != 5 {
		t.Fatalf("upstream promise = %+v", up)
	}
	// Distributor capacity is reduced accordingly.
	probe := grantOne(t, distributor, requestQuantity("someone", "widgets", 6))
	if probe.Accepted {
		t.Fatal("distributor over-promised")
	}
}

func TestDelegationUpstreamRejectionRejectsLocally(t *testing.T) {
	merchant, _ := newSupplyChain(t, "widgets", 3, 4)
	pr := grantOne(t, merchant, requestQuantity("customer", "widgets", 8))
	if pr.Accepted {
		t.Fatal("grant accepted despite upstream shortage")
	}
	// Nothing leaked locally.
	probe := grantOne(t, merchant, requestQuantity("x", "widgets", 3))
	if !probe.Accepted {
		t.Fatalf("local capacity leaked: %s", probe.Reason)
	}
}

func TestDelegationNoSupplierRejects(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "widgets", 3, nil)
	})
	pr := grantOne(t, m, requestQuantity("c", "widgets", 8))
	if pr.Accepted {
		t.Fatal("shortfall without supplier accepted")
	}
}

func TestDelegationReleasePropagatesUpstream(t *testing.T) {
	merchant, distributor := newSupplyChain(t, "widgets", 3, 10)
	pr := grantOne(t, merchant, requestQuantity("customer", "widgets", 8))
	info, _ := merchant.PromiseInfo(pr.PromiseID)
	upID := info.DelegatedID[0]
	if _, err := merchant.Execute(bg, Request{
		Client: "customer",
		Env:    []EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
	}); err != nil {
		t.Fatal(err)
	}
	up, err := distributor.PromiseInfo(upID)
	if err != nil {
		t.Fatal(err)
	}
	if up.State != Released {
		t.Fatalf("upstream promise state = %v, want released", up.State)
	}
	// Full distributor capacity restored.
	probe := grantOne(t, distributor, requestQuantity("someone", "widgets", 10))
	if !probe.Accepted {
		t.Fatalf("upstream capacity not restored: %s", probe.Reason)
	}
}

func TestDelegationExpiryPropagatesUpstream(t *testing.T) {
	distributor, _ := newManager(t, Config{})
	seed(t, distributor, func(tx *txn.Tx) error {
		return distributor.Resources().CreatePool(tx, "w", 10, nil)
	})
	fakeMerchant := Config{
		DefaultDuration: time.Minute,
		Suppliers:       map[string]Supplier{"w": &ManagerSupplier{M: distributor, Client: "m"}},
	}
	merchant, fake := newManager(t, fakeMerchant)
	seed(t, merchant, func(tx *txn.Tx) error {
		return merchant.Resources().CreatePool(tx, "w", 2, nil)
	})
	pr := grantOne(t, merchant, requestQuantity("c", "w", 6))
	if !pr.Accepted {
		t.Fatal(pr.Reason)
	}
	info, _ := merchant.PromiseInfo(pr.PromiseID)
	fake.Advance(2 * time.Minute)
	if err := merchant.Sweep(); err != nil {
		t.Fatal(err)
	}
	up, err := distributor.PromiseInfo(info.DelegatedID[0])
	if err != nil {
		t.Fatal(err)
	}
	if up.State != Released {
		t.Fatalf("upstream after local expiry = %v, want released", up.State)
	}
}

func TestManagerSupplierConsume(t *testing.T) {
	distributor, _ := newManager(t, Config{})
	seed(t, distributor, func(tx *txn.Tx) error {
		return distributor.Resources().CreatePool(tx, "w", 10, nil)
	})
	sup := &ManagerSupplier{M: distributor, Client: "m"}
	id, err := sup.RequestPromise(bg, "w", 4, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.ConsumePromise(bg, id, 4); err != nil {
		t.Fatal(err)
	}
	tx := distributor.Store().Begin(txn.Block)
	defer tx.Commit()
	p, _ := distributor.Resources().Pool(tx, "w")
	if p.OnHand != 6 {
		t.Fatalf("distributor on hand = %d, want 6", p.OnHand)
	}
	if err := sup.ReleasePromise(bg, id); err == nil {
		// Releasing a released promise reports the state error in
		// Response.ActionErr, not as a transport error; both are fine as
		// long as state is consistent.
		info, _ := distributor.PromiseInfo(id)
		if info.State != Released {
			t.Fatalf("promise state = %v", info.State)
		}
	}
}

// flakySupplier counts calls and can fail on demand.
type flakySupplier struct {
	fail     atomic.Bool
	requests atomic.Int64
	releases atomic.Int64
	nextID   atomic.Int64
}

func (f *flakySupplier) RequestPromise(_ context.Context, pool string, qty int64, d time.Duration) (string, error) {
	f.requests.Add(1)
	if f.fail.Load() {
		return "", errors.New("upstream down")
	}
	return "up-" + string(rune('0'+f.nextID.Add(1))), nil
}
func (f *flakySupplier) ReleasePromise(context.Context, string) error        { f.releases.Add(1); return nil }
func (f *flakySupplier) ConsumePromise(context.Context, string, int64) error { return nil }

func TestDelegationSupplierErrorRejects(t *testing.T) {
	sup := &flakySupplier{}
	sup.fail.Store(true)
	m, _ := newManager(t, Config{Suppliers: map[string]Supplier{"w": sup}})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "w", 2, nil)
	})
	pr := grantOne(t, m, requestQuantity("c", "w", 5))
	if pr.Accepted {
		t.Fatal("grant accepted with failing supplier")
	}
	if sup.requests.Load() != 1 {
		t.Fatalf("supplier requests = %d", sup.requests.Load())
	}
}

func TestDelegationMultiPredicateCompensation(t *testing.T) {
	// A two-predicate request where the second predicate fails after the
	// first already obtained an upstream promise: the upstream promise must
	// be released (compensated) because the atomic request is rejected.
	sup := &flakySupplier{}
	m, _ := newManager(t, Config{Suppliers: map[string]Supplier{"w": sup}})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "w", 2, nil)
	})
	resp, err := m.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{
			Quantity("w", 5),        // needs delegation for 3
			Named("ghost-instance"), // fails: no such instance
		},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Promises[0].Accepted {
		t.Fatal("request should fail on the named predicate")
	}
	if sup.requests.Load() != 1 || sup.releases.Load() != 1 {
		t.Fatalf("supplier requests=%d releases=%d, want 1/1 (compensation)",
			sup.requests.Load(), sup.releases.Load())
	}
}
