package core

import (
	"context"
	"strings"
	"time"

	"repro/internal/preemption"
	"repro/internal/txn"
)

// This file is the engine side of priority tiers and preemptible ("spot")
// promises. A request carries a Priority (tier, default 0 or the manager's
// DefaultPriority) and may mark its grant Preemptible. When the planner
// finds no feasible assignment for a positive-tier request, the manager
// gathers the active promises the request may displace — strictly lower
// tier AND preemptible — and asks preemption.Select for an
// inclusion-minimal victim set whose revocation restores feasibility
// (oldest deadline loses first). Victims are revoked through the normal
// release path inside the same transaction as the grant, so an abort
// restores every victim untouched, and each victim's lifecycle emits an
// EventPreempted naming the displacing promise and its tier.
//
// Tier 0 (the default) never displaces anything: only requests that ask
// for a positive priority pay the preemption scan, and an equal-tier
// request never preempts (eligibility is strictly lower priority).

// preemptSig is a candidate's engine-independent predicate signature: the
// canonical source text of its predicates, joined. Selection tie-breaks on
// it so engines that shard the same world differently pick the same
// victims (see internal/preemption).
func preemptSig(p *Promise) string {
	parts := make([]string, len(p.Predicates))
	for i, pred := range p.Predicates {
		parts[i] = pred.String()
	}
	return strings.Join(parts, " & ")
}

// preemptCandidates lists the active promises a request at tier prio may
// displace, alongside their rows, skipping ids in excluded (the request's
// own release targets). The engine-level filter (set by NewSharded to keep
// composite members out) applies last.
func (m *Manager) preemptCandidates(r txn.Reader, prio int, excluded map[string]bool) ([]preemption.Candidate, map[string]*Promise, error) {
	act, err := m.activePromises(r)
	if err != nil {
		return nil, nil, err
	}
	var cands []preemption.Candidate
	byID := make(map[string]*Promise)
	for i := range act {
		p := &act[i]
		if !p.Preemptible || p.Priority >= prio || excluded[p.ID] {
			continue
		}
		if m.cfg.preemptFilter != nil && !m.cfg.preemptFilter(p.ID) {
			continue
		}
		cands = append(cands, preemption.Candidate{
			ID: p.ID, Priority: p.Priority, Expires: p.Expires,
			Client: p.Client, Sig: preemptSig(p),
		})
		byID[p.ID] = p
	}
	return cands, byID, nil
}

// planPreempt retries a rejected plan with preemption: it selects a
// minimal victim set among the eligible lower-tier preemptible holds
// (non-mutating trial plans with the victims treated as released) and
// returns the plan their revocation enables, plus the victims. A nil plan
// with nil error means preemption cannot help either; the caller rejects
// with the original reason.
func (m *Manager) planPreempt(ctx context.Context, tx *txn.Tx, st *execState, preds []Predicate, releases []*Promise, d time.Duration, prio int) (*grantPlan, []*Promise, error) {
	if prio <= 0 {
		return nil, nil, nil
	}
	excluded := make(map[string]bool, len(releases))
	for _, rp := range releases {
		excluded[rp.ID] = true
	}
	cands, byID, err := m.preemptCandidates(tx, prio, excluded)
	if err != nil || len(cands) == 0 {
		return nil, nil, err
	}
	trial := func(set []preemption.Candidate) (bool, error) {
		freed := make([]*Promise, 0, len(releases)+len(set))
		freed = append(freed, releases...)
		for _, c := range set {
			freed = append(freed, byID[c.ID])
		}
		// A fresh state per trial: upstream promises a trial plan acquires
		// are compensated immediately — only the final plan's acquisitions
		// may outlive this call (registered on st below).
		ts := &execState{}
		plan, _, _, err := m.planInner(ctx, tx, ts, preds, freed, d)
		for i := len(ts.undoUpstream) - 1; i >= 0; i-- {
			ts.undoUpstream[i]()
		}
		return err == nil && plan != nil, err
	}
	victims, err := preemption.Select(cands, trial)
	if err != nil || victims == nil {
		return nil, nil, err
	}
	freed := append([]*Promise(nil), releases...)
	vps := make([]*Promise, len(victims))
	for i, c := range victims {
		vps[i] = byID[c.ID]
		freed = append(freed, vps[i])
	}
	plan, _, _, err := m.plan(ctx, tx, st, preds, freed, d)
	if err != nil || plan == nil {
		// The oracle accepted this exact set, so a miss here is an internal
		// inconsistency; fail closed as an ordinary rejection.
		return nil, nil, err
	}
	return plan, vps, nil
}

// preemptPromise revokes p on behalf of the displacing promise: the normal
// release path frees its holds and parks the row (state Preempted), and
// the emitted EventPreempted is annotated with the displacing promise id
// and tier so the victim's watcher knows what displaced it. by may be
// empty when the displacing sub-promise does not exist yet (cross-shard
// property preemption); Reservation.StampPreemptedBy fills it in before
// the events publish.
func (m *Manager) preemptPromise(tx *txn.Tx, st *execState, p *Promise, by string, byPriority int) error {
	mark := len(st.events)
	if err := m.releasePromise(tx, st, p, Preempted); err != nil {
		return err
	}
	for i := mark; i < len(st.events); i++ {
		if st.events[i].Type == EventPreempted && st.events[i].PromiseID == p.ID {
			st.events[i].By = by
			st.events[i].Priority = byPriority
		}
	}
	return nil
}

// preemptFloat is the coordinator-side spot-capacity fallback for the
// joint property match: when solveFloatAssignment finds no assignment for
// a positive-tier request, the coordinator selects a minimal victim set
// across every reserved shard and applies it through the open
// reservations, so the revocations commit atomically with the grant — or
// roll back with it, restoring every victim.
//
// Trials are non-mutating from the pipeline's point of view: each trial
// revokes its candidate set under per-shard transaction savepoints,
// re-solves the joint match, and rolls the savepoints back. The caller
// must have reserved every shard (the victims that can restore
// feasibility may hold instances anywhere), which is why grantCross
// escalates to the full lock and reservation set first.
func (s *ShardedManager) preemptFloat(pr PromiseRequest, resvs map[int]*Reservation, floating []floatPred) (map[int]*shardFloatPlan, []slotMigration, bool, error) {
	victimShard := make(map[string]int)
	var cands []preemption.Candidate
	for _, sh := range sortedKeys(resvs) {
		cs, _, err := s.shards[sh].m.preemptCandidates(resvs[sh].tx, pr.Priority, nil)
		if err != nil {
			return nil, nil, false, err
		}
		for _, c := range cs {
			victimShard[c.ID] = sh
		}
		cands = append(cands, cs...)
	}
	if len(cands) == 0 {
		return nil, nil, false, nil
	}
	trial := func(set []preemption.Candidate) (bool, error) {
		marks := make(map[int]txn.Savepoint)
		apply := func() (bool, error) {
			scratch := make(map[int]*execState)
			for _, c := range set {
				sh := victimShard[c.ID]
				if _, seen := marks[sh]; !seen {
					marks[sh] = resvs[sh].tx.Savepoint()
					scratch[sh] = &execState{}
				}
				m := s.shards[sh].m
				// Reload the row inside the trial: a savepoint rollback
				// restores the store, not any copy a prior trial mutated.
				p, err := m.promise(resvs[sh].tx, c.ID)
				if err != nil {
					return false, err
				}
				if err := m.releasePromise(resvs[sh].tx, scratch[sh], p, Preempted); err != nil {
					return false, err
				}
			}
			_, _, ok, err := s.solveFloatAssignment(resvs, pr, floating, s.mode)
			return ok, err
		}
		ok, err := apply()
		for _, sh := range sortedKeys(marks) {
			if rerr := resvs[sh].tx.RollbackTo(marks[sh]); rerr != nil && err == nil {
				ok, err = false, rerr
			}
		}
		return ok, err
	}
	victims, err := preemption.Select(cands, trial)
	if err != nil || victims == nil {
		return nil, nil, false, err
	}
	byShard := make(map[int][]string)
	for _, c := range victims {
		byShard[victimShard[c.ID]] = append(byShard[victimShard[c.ID]], c.ID)
	}
	for _, sh := range sortedKeys(byShard) {
		if err := resvs[sh].Preempt(byShard[sh], pr.Priority); err != nil {
			return nil, nil, false, err
		}
	}
	plans, migs, ok, err := s.solveFloatAssignment(resvs, pr, floating, s.mode)
	if err != nil || !ok {
		// The oracle accepted this exact set; fail closed so the pipeline
		// aborts and the victims spring back.
		return nil, nil, false, err
	}
	return plans, migs, true, nil
}
