package core

// This file is the serialization half of the durability layer (see
// recover.go for the startup half): the record vocabulary written to the
// write-ahead logs, the per-table row codecs, and the persist hooks the
// commit path drives.
//
// Two logs per engine. Each shard's store appends one "commit" record per
// committed transaction — written from the store's commit hook, which runs
// under the snapshot-publication mutex, so log order equals version order.
// A single shared bus log carries one "events" record per published event
// batch (appended under the bus mutex, so log order equals Seq order) and,
// for sharded engines, "dir" records mirroring every composite-directory
// mutation. A "gen" marker separates log generations: it is appended when
// a recovered engine reopens its log, so a crash before the recovered
// engine's first checkpoint cannot confuse the old generation's version
// numbering with the new one's.

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/escrow"
	"repro/internal/resource"
	"repro/internal/softlock"
	"repro/internal/txn"
	"repro/internal/wal"
)

// SyncPolicy re-exports the WAL sync vocabulary at the engine surface.
type SyncPolicy = wal.SyncPolicy

// Sync policies (see wal.SyncPolicy).
const (
	SyncAlways   = wal.SyncAlways
	SyncInterval = wal.SyncInterval
	SyncNone     = wal.SyncNone
)

// ParseSyncPolicy parses "always", "interval" or "none" — the promised
// daemon's -sync vocabulary.
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// DurabilityOptions configures a durable engine (OpenDurable /
// OpenDurableSharded).
type DurabilityOptions struct {
	// Dir is the data directory. Required. One live process per directory;
	// the layout is documented in docs/operations.md.
	Dir string
	// Sync selects when log appends reach stable storage. The zero value is
	// SyncAlways: a responded request is durable.
	Sync SyncPolicy
	// SyncEvery is the background fsync cadence under SyncInterval; zero
	// means wal.DefaultSyncEvery (50ms).
	SyncEvery time.Duration
	// CheckpointEvery is the automatic checkpoint cadence, driven by the
	// engine clock when it can alarm. Zero means 1 minute; negative
	// disables automatic checkpoints (Checkpoint can still be called).
	CheckpointEvery time.Duration
	// ReprobeEvery is the degraded-mode log re-probe cadence: after a
	// persistent WAL failure trips read-only mode, the engine probes the
	// log on this cadence and restores service when a probe (append +
	// sync + checkpoint) succeeds. Zero means 5 seconds; negative disables
	// automatic re-probing (the engine stays degraded until restarted).
	ReprobeEvery time.Duration
}

// DefaultCheckpointEvery is the automatic checkpoint cadence when
// DurabilityOptions.CheckpointEvery is zero.
const DefaultCheckpointEvery = time.Minute

// DefaultReprobeEvery is the degraded-mode re-probe cadence when
// DurabilityOptions.ReprobeEvery is zero.
const DefaultReprobeEvery = 5 * time.Second

// ErrNotDurable is returned by Checkpoint on an engine opened without a
// data directory.
var ErrNotDurable = errors.New("core: engine has no data directory")

// Record types. Single letters: one is prefixed to every committed
// transaction and event batch.
const (
	recCommit = "c" // one committed store transaction
	recEvents = "e" // one published event batch
	recDir    = "d" // one composite-directory mutation
	recGen    = "g" // generation marker: a recovered engine reopened this log
	recProbe  = "p" // degraded-mode liveness probe; replay skips it
)

// Directory-record operations.
const (
	dirAdd  = "add"
	dirMove = "move"
	dirDrop = "drop"
)

// walChange is one row change of a commit record. A nil Row is a delete.
type walChange struct {
	Table string          `json:"tbl"`
	Key   string          `json:"key"`
	Row   json.RawMessage `json:"row,omitempty"`
}

// walPart mirrors compositePart.
type walPart struct {
	Shard   int       `json:"shard"`
	ID      string    `json:"id"`
	PredIdx []int     `json:"pred_idx,omitempty"`
	Expires time.Time `json:"expires"`
}

// walComposite mirrors a composite-directory entry.
type walComposite struct {
	ID      string    `json:"id"`
	Client  string    `json:"client"`
	Expires time.Time `json:"expires"`
	Parts   []walPart `json:"parts"`
}

// walRecord is the one record shape both logs share; T selects which fields
// are meaningful.
type walRecord struct {
	T string `json:"t"`
	// commit records: the committed snapshot's version and epoch plus the
	// touched rows' new values.
	Ver     uint64      `json:"ver,omitempty"`
	Epoch   uint64      `json:"epoch,omitempty"`
	Changes []walChange `json:"changes,omitempty"`
	// events records: the published batch, Seq already stamped.
	Events []Event `json:"events,omitempty"`
	// dir records.
	Op      string        `json:"op,omitempty"`
	Comp    *walComposite `json:"comp,omitempty"`    // add
	Promise string        `json:"promise,omitempty"` // move: the migrated id
	Shard   int           `json:"shard,omitempty"`   // move: destination shard
	ID      string        `json:"id,omitempty"`      // drop: composite id
}

// storeCheckpoint is one shard's serialized table state.
type storeCheckpoint struct {
	Ver    uint64                                `json:"ver"`
	Epoch  uint64                                `json:"epoch"`
	Tables map[string]map[string]json.RawMessage `json:"tables"`
}

// busCheckpoint is the shared bus (and, sharded, composite directory)
// state.
type busCheckpoint struct {
	Seq        uint64         `json:"seq"`
	Ring       []Event        `json:"ring,omitempty"`
	Composites []walComposite `json:"composites,omitempty"`
	Moved      map[string]int `json:"moved,omitempty"`
	CompNext   uint64         `json:"comp_next,omitempty"`
}

// durableTables lists exactly the tables the engine persists — the six its
// constructor creates. Rows an action writes into tables of its own are
// not durable (encodeRow fails loudly rather than dropping them silently).
var durableTables = []string{
	TablePromises, TablePromisesDone,
	escrow.Table, softlock.Table,
	resource.TablePools, resource.TableInstances,
}

// predJSON is the serialized form of one core Predicate: the property
// expression travels as its source text and is re-parsed on decode, so the
// codec never chases the Expr interface.
type predJSON struct {
	View     int    `json:"view"`
	Pool     string `json:"pool,omitempty"`
	Qty      int64  `json:"qty,omitempty"`
	Instance string `json:"instance,omitempty"`
	Expr     string `json:"expr,omitempty"`
}

// promiseJSON is the serialized form of a promiseRow.
type promiseJSON struct {
	ID           string     `json:"id"`
	Client       string     `json:"client"`
	Predicates   []predJSON `json:"predicates,omitempty"`
	Assigned     []string   `json:"assigned,omitempty"`
	DelegatedQty []int64    `json:"delegated_qty,omitempty"`
	DelegatedID  []string   `json:"delegated_id,omitempty"`
	Expires      time.Time  `json:"expires"`
	State        int        `json:"state"`
	Priority     int        `json:"priority,omitempty"`
	Preemptible  bool       `json:"preemptible,omitempty"`
}

// MarshalJSON implements json.Marshaler for checkpoint/WAL serialization.
func (r *promiseRow) MarshalJSON() ([]byte, error) {
	p := &r.p
	out := promiseJSON{
		ID: p.ID, Client: p.Client,
		Assigned: p.Assigned, DelegatedQty: p.DelegatedQty, DelegatedID: p.DelegatedID,
		Expires: p.Expires, State: int(p.State),
		Priority: p.Priority, Preemptible: p.Preemptible,
	}
	for _, pred := range p.Predicates {
		pj := predJSON{View: int(pred.View), Pool: pred.Pool, Qty: pred.Qty, Instance: pred.Instance}
		if pred.View == PropertyView {
			pj.Expr = pred.Source
			if pj.Expr == "" && pred.Expr != nil {
				pj.Expr = pred.Expr.String()
			}
		}
		out.Predicates = append(out.Predicates, pj)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler; property expressions are
// re-parsed from their preserved source text.
func (r *promiseRow) UnmarshalJSON(data []byte) error {
	var in promiseJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	p := Promise{
		ID: in.ID, Client: in.Client,
		Assigned: in.Assigned, DelegatedQty: in.DelegatedQty, DelegatedID: in.DelegatedID,
		Expires: in.Expires, State: State(in.State),
		Priority: in.Priority, Preemptible: in.Preemptible,
	}
	for _, pj := range in.Predicates {
		switch View(pj.View) {
		case PropertyView:
			pred, err := Property(pj.Expr)
			if err != nil {
				return fmt.Errorf("core: promise %s: bad stored predicate %q: %w", in.ID, pj.Expr, err)
			}
			p.Predicates = append(p.Predicates, pred)
		case NamedView:
			p.Predicates = append(p.Predicates, Named(pj.Instance))
		default:
			p.Predicates = append(p.Predicates, Quantity(pj.Pool, pj.Qty))
		}
	}
	r.p = p
	return nil
}

// encodeRow serializes one row of a durable table.
func encodeRow(tbl string, row txn.Row) (json.RawMessage, error) {
	switch tbl {
	case TablePromises, TablePromisesDone:
		return json.Marshal(row.(*promiseRow))
	case escrow.Table, softlock.Table, resource.TablePools, resource.TableInstances:
		return json.Marshal(row)
	}
	return nil, fmt.Errorf("core: table %q is not durable (only the engine's own tables persist)", tbl)
}

// decodeRow deserializes one row of a durable table.
func decodeRow(tbl string, data []byte) (txn.Row, error) {
	switch tbl {
	case TablePromises, TablePromisesDone:
		r := &promiseRow{}
		if err := json.Unmarshal(data, r); err != nil {
			return nil, err
		}
		return r, nil
	case escrow.Table:
		return escrow.DecodeRow(data)
	case softlock.Table:
		return softlock.DecodeRow(data)
	case resource.TablePools:
		p := &resource.Pool{}
		if err := json.Unmarshal(data, p); err != nil {
			return nil, err
		}
		return p, nil
	case resource.TableInstances:
		i := &resource.Instance{}
		if err := json.Unmarshal(data, i); err != nil {
			return nil, err
		}
		return i, nil
	}
	return nil, fmt.Errorf("core: no row codec for table %q", tbl)
}

// persistLog adapts one wal.Log to the commit path. Appends happen inside
// commit hooks and bus publication, which have no caller to return an error
// to; a failure is latched and surfaced by the next sync() — the durSync
// call a request makes before responding.
type persistLog struct {
	log    *wal.Log
	active atomic.Bool
	health *engineHealth // tripped on append/sync failure; may be nil
	errMu  sync.Mutex
	err    error
}

func (p *persistLog) fail(err error) {
	p.errMu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.errMu.Unlock()
	p.health.trip(err.Error())
}

func (p *persistLog) latched() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.err
}

// clearLatched drops the latched failure after a successful re-probe has
// re-established (via checkpoint) that the log and the engine state agree.
func (p *persistLog) clearLatched() {
	p.errMu.Lock()
	p.err = nil
	p.errMu.Unlock()
}

// appendRecord logs one record while the persist is active.
func (p *persistLog) appendRecord(rec *walRecord) {
	if !p.active.Load() {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		p.fail(err)
		return
	}
	if err := p.log.Append(data); err != nil {
		p.fail(err)
	}
}

// sync surfaces any latched append failure, then forces the log to stable
// storage per its policy. Either failure trips degraded mode: the engine
// can no longer make commits durable.
func (p *persistLog) sync() error {
	if err := p.latched(); err != nil {
		return err
	}
	if !p.active.Load() {
		return nil
	}
	if err := p.log.Sync(); err != nil {
		p.health.trip(err.Error())
		return err
	}
	return nil
}

// logCommit is the store commit hook's durability half: one commit record
// naming every touched row's new value (or deletion). It runs under the
// snapshot-publication mutex, so records land in version order.
func (p *persistLog) logCommit(snap *txn.Snapshot, touched []txn.TableKey) {
	if !p.active.Load() {
		return
	}
	rec := walRecord{T: recCommit, Ver: snap.Version(), Epoch: snap.Epoch()}
	rec.Changes = make([]walChange, 0, len(touched))
	for _, tk := range touched {
		ch := walChange{Table: tk.Table, Key: tk.Key}
		if row, err := snap.Get(tk.Table, tk.Key); err == nil {
			data, err := encodeRow(tk.Table, row)
			if err != nil {
				p.fail(err)
				return
			}
			ch.Row = data
		}
		rec.Changes = append(rec.Changes, ch)
	}
	p.appendRecord(&rec)
}

// logEvents is the bus tap: one events record per published batch, appended
// under the bus mutex so log order equals Seq order.
func (p *persistLog) logEvents(events []Event) {
	p.appendRecord(&walRecord{T: recEvents, Events: events})
}

// durSync forces this manager's commit and event appends to stable storage
// (per the sync policy) and surfaces latched append failures. Nil-safe: a
// non-durable manager pays one branch.
func (m *Manager) durSync() error {
	if m.persist == nil {
		return nil
	}
	if err := m.persist.sync(); err != nil {
		return err
	}
	if m.busPersist != nil {
		return m.busPersist.sync()
	}
	return nil
}

// durSync forces the shared bus log (events and directory records) to
// stable storage; per-shard commit syncs happen inside the shard that
// committed.
func (s *ShardedManager) durSync() error {
	if s.busPersist == nil {
		return nil
	}
	return s.busPersist.sync()
}

// logDirAdd mirrors registerComposite into the bus log.
func (s *ShardedManager) logDirAdd(id string, c *composite) {
	if s.busPersist == nil {
		return
	}
	s.busPersist.appendRecord(&walRecord{T: recDir, Op: dirAdd, Comp: compositeToWal(id, c)})
}

// logDirMove mirrors one committed slot migration into the bus log.
func (s *ShardedManager) logDirMove(promiseID string, to int) {
	if s.busPersist == nil {
		return
	}
	s.busPersist.appendRecord(&walRecord{T: recDir, Op: dirMove, Promise: promiseID, Shard: to})
}

// logDirDrop mirrors dropComposite into the bus log.
func (s *ShardedManager) logDirDrop(id string) {
	if s.busPersist == nil {
		return
	}
	s.busPersist.appendRecord(&walRecord{T: recDir, Op: dirDrop, ID: id})
}

func compositeToWal(id string, c *composite) *walComposite {
	wc := &walComposite{ID: id, Client: c.client, Expires: c.expires}
	for _, part := range c.parts {
		wc.Parts = append(wc.Parts, walPart{Shard: part.shard, ID: part.id, PredIdx: part.predIdx, Expires: part.expires})
	}
	return wc
}

func compositeFromWal(wc *walComposite) *composite {
	c := &composite{client: wc.Client, expires: wc.Expires}
	for _, part := range wc.Parts {
		c.parts = append(c.parts, compositePart{shard: part.Shard, id: part.ID, predIdx: part.PredIdx, expires: part.Expires})
	}
	return c
}

// encodeStoreCheckpoint serializes one store snapshot's durable tables.
func encodeStoreCheckpoint(snap *txn.Snapshot) ([]byte, error) {
	ck := storeCheckpoint{
		Ver:    snap.Version(),
		Epoch:  snap.Epoch(),
		Tables: make(map[string]map[string]json.RawMessage, len(durableTables)),
	}
	for _, tbl := range durableTables {
		rows := make(map[string]json.RawMessage)
		var encErr error
		err := snap.Scan(tbl, func(key string, row txn.Row) bool {
			data, err := encodeRow(tbl, row)
			if err != nil {
				encErr = err
				return false
			}
			rows[key] = data
			return true
		})
		if err == nil {
			err = encErr
		}
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint of table %q: %w", tbl, err)
		}
		ck.Tables[tbl] = rows
	}
	return json.Marshal(ck)
}
