package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/escrow"
	"repro/internal/ids"
	"repro/internal/predicate"
	"repro/internal/resource"
	"repro/internal/softlock"
	"repro/internal/txn"
)

// PropertyMode selects the implementation technique for property-view
// promises (§5).
type PropertyMode int

// Property-view implementation techniques.
const (
	// MatchingMode is the satisfiability check of §5 with tentative
	// allocation: grants and post-action checks run bipartite matching and
	// may rearrange tentative allocations to admit more promises.
	MatchingMode PropertyMode = iota
	// FirstFitMode is the naive ablation: each property promise is bound
	// to the first satisfying available instance and never moved. The E7
	// experiment measures how many grants this loses.
	FirstFitMode
)

// Config configures a Manager.
type Config struct {
	// Store is the transactional store shared with the resource manager.
	// Nil creates a fresh store (and Resources must then be nil too).
	Store *txn.Store
	// Resources is the resource manager. Nil creates one on Store.
	Resources *resource.Manager
	// Clock drives promise expiry. Nil uses the system clock.
	Clock clock.Clock
	// DefaultDuration applies when a request does not name a duration.
	// Zero means 30 seconds.
	DefaultDuration time.Duration
	// MaxDuration caps granted durations (§6: the manager "might … offer
	// a guarantee that expires sooner than the client wished"). Zero means
	// 10 minutes.
	MaxDuration time.Duration
	// PropertyMode selects the property-view technique.
	PropertyMode PropertyMode
	// DisablePostCheck skips the post-action promise check — the E9
	// ablation demonstrating why §8 requires it. Never set in production.
	DisablePostCheck bool
	// Suppliers maps pool ids to upstream promise makers for delegation
	// (§5). Optional.
	Suppliers map[string]Supplier
	// Actions resolves Request.ActionName to a runnable action, so
	// applications written against the unified Engine surface can invoke
	// named service operations on a local manager exactly as they would
	// over the wire. Optional; service.Registry implements it.
	Actions ActionResolver
	// MaxRetries bounds internal deadlock retries per request. Zero means
	// 32.
	MaxRetries int
	// IDPrefix overrides the promise-id prefix. Empty means "prm". The
	// sharded manager gives each shard a distinct prefix so promise ids
	// stay unique across shards and route back to their owning shard.
	IDPrefix string
	// ExpiryWarning, when positive, emits an EventExpiryImminent this long
	// before each promise's deadline, so clients renew reactively instead
	// of polling CheckBatch. Zero disables the warning.
	ExpiryWarning time.Duration
	// DefaultPriority is the tier stamped onto requests that do not name
	// one (PromiseRequest.Priority == 0). Zero keeps tier 0, which never
	// preempts; a deployment that wants ordinary traffic to displace spot
	// holds sets a positive default. See preempt.go.
	DefaultPriority int
	// ReplayRing sets the event bus's replay-ring capacity (how far back a
	// Watch subscriber can resume with AfterSeq). Zero means
	// DefaultReplayRing. Ignored when an external bus is injected (the
	// sharded manager sizes the shared bus itself).
	ReplayRing int

	// bus shares one event bus across shards; nil creates a private one.
	// gate wraps deadline-driven expiry so the sharded manager can take the
	// shard lock around it; nil runs it directly. Both are set only by
	// NewSharded.
	bus  *EventBus
	gate func(run func())
	// disableFastPath forces property planning and PropertyContext down the
	// scan-everything slow path. Tests only: the equivalence suites run
	// both ways to pin fast ≡ slow.
	disableFastPath bool
	// preemptFilter, when non-nil, vetoes preemption candidates by promise
	// id. NewSharded installs one that keeps composite members out of
	// per-shard victim sets (a composite must be displaced whole or not at
	// all, and only its coordinator can see the whole).
	preemptFilter func(id string) bool
}

// Manager is the promise manager. It is safe for concurrent use; every
// Execute call runs as one ACID transaction against the shared store (§8).
type Manager struct {
	store      *txn.Store
	rm         *resource.Manager
	ledger     *escrow.Ledger
	tags       *softlock.Tags
	clk        clock.Clock
	promiseIDs *ids.Generator
	cfg        Config
	metrics    managerMetrics
	bus        *EventBus
	exp        expiryIndex
	cand       candidateIndex
	pmatch     propMatcher
	gate       func(run func())
	// pubMu is held across a transaction's commit and the publication of
	// its events, so bus order equals commit order and a promise's
	// lifecycle events can never invert even on a bare (unsharded,
	// unlocked) Manager.
	pubMu sync.Mutex
	// persist mirrors this store's commits into its write-ahead log and
	// busPersist the shared event log; both nil on a non-durable engine.
	// durable is the owning durability runtime (set by OpenDurable; on a
	// sharded engine it lives on the ShardedManager instead).
	persist    *persistLog
	busPersist *persistLog
	durable    *durableEngine
	// health is the shared degraded-mode latch (nil on a non-durable
	// engine, which cannot degrade).
	health *engineHealth
}

// New creates a Manager, installing its promise, escrow and soft-lock
// tables into the store. Call New at most once per store.
func New(cfg Config) (*Manager, error) {
	if cfg.Store == nil {
		if cfg.Resources != nil {
			return nil, fmt.Errorf("core: Config.Resources set without Config.Store")
		}
		cfg.Store = txn.NewStore()
	}
	if cfg.Resources == nil {
		rm, err := resource.NewManager(cfg.Store)
		if err != nil {
			return nil, err
		}
		cfg.Resources = rm
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System{}
	}
	if cfg.DefaultDuration <= 0 {
		cfg.DefaultDuration = 30 * time.Second
	}
	if cfg.MaxDuration <= 0 {
		cfg.MaxDuration = 10 * time.Minute
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 32
	}
	if cfg.IDPrefix == "" {
		cfg.IDPrefix = "prm"
	}
	if err := cfg.Store.CreateTable(TablePromises); err != nil {
		return nil, err
	}
	if err := cfg.Store.CreateTable(TablePromisesDone); err != nil {
		return nil, err
	}
	ledger, err := escrow.NewLedger(cfg.Store, cfg.Resources)
	if err != nil {
		return nil, err
	}
	tags, err := softlock.NewTags(cfg.Store, cfg.Resources)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		store:      cfg.Store,
		rm:         cfg.Resources,
		ledger:     ledger,
		tags:       tags,
		clk:        cfg.Clock,
		promiseIDs: ids.New(cfg.IDPrefix),
		cfg:        cfg,
		bus:        cfg.bus,
		gate:       cfg.gate,
	}
	if m.bus == nil {
		m.bus = NewEventBusCap(cfg.ReplayRing)
	}
	if m.gate == nil {
		m.gate = func(run func()) { run() }
	}
	// Every committed transaction publishes an immutable store snapshot
	// (txn/snapshot.go); stamping it with the bus sequence makes snapshot
	// epochs and Watch streams describe the same history, and the commit
	// hook keeps the property-candidate index (candidates.go) current for
	// the cross-shard reservation pre-filter. Both installs happen before
	// the manager is visible to any other goroutine.
	m.store.SetEpochSource(m.bus.Seq)
	m.candInit(m.store.Snapshot())
	m.store.SetCommitHook(m.onCommit)
	m.exp.alarmer, _ = cfg.Clock.(clock.Alarmer)
	// A failed deadline pass re-arms itself on a backoff; the counter is
	// how the failure surfaces (Stats.ExpiryErrors) — there is no caller
	// to return the error to.
	m.exp.fire = func() {
		if err := m.expireDue(); err != nil {
			m.metrics.expiryErrors.Inc()
		}
	}
	return m, nil
}

// Watch subscribes to the manager's promise lifecycle events; see
// promises.Engine. The channel closes when ctx is cancelled or — under
// SlowDisconnect — when the subscriber falls behind.
func (m *Manager) Watch(ctx context.Context, opts WatchOptions) (<-chan Event, error) {
	return m.bus.Watch(ctx, opts)
}

// Resources returns the resource manager (for seeding state in examples
// and tests).
func (m *Manager) Resources() *resource.Manager { return m.rm }

// Store returns the backing store.
func (m *Manager) Store() *txn.Store { return m.store }

// execState carries cross-trust-domain compensation hooks for one request
// (upstream promises acquired during planning must be released if the local
// transaction aborts, and upstream releases must run only after it commits)
// plus metric deltas that apply only if the attempt commits — a deadlock
// retry must not double-count.
type execState struct {
	undoUpstream []func()
	postCommit   []func()
	released     int64
	expired      int64
	preempted    int64
	// events records the attempt's lifecycle transitions; they publish on
	// the shared bus only after the transaction commits.
	events []Event
	// sweptDue are the expiry-heap entries the request-path due check
	// processed inside this transaction; they are removed from the heap
	// only after commit.
	sweptDue []expiryEntry
}

// Execute processes one client message: grants/rejects its promise
// requests, runs its action under its promise environment, applies release
// options atomically with action success, and performs the post-action
// promise check — all inside a single ACID transaction, exactly as §8
// prescribes. Deadlocks between concurrent requests are retried internally.
//
// The context bounds the whole call: cancellation is honoured before each
// attempt (a dead client never starts a transaction) and propagates to
// upstream supplier calls made while planning. Work already committed is
// never undone by a late cancellation.
func (m *Manager) Execute(ctx context.Context, req Request) (*Response, error) {
	if req.Client == "" {
		return nil, fmt.Errorf("%w: missing client", ErrBadRequest)
	}
	// Degraded read-only mode rejects mutations up front; reads
	// (CheckBatch, Watch, Stats) never come through here.
	if err := m.health.reject(); err != nil {
		return nil, err
	}
	if err := m.resolveAction(&req); err != nil {
		return nil, err
	}
	start := m.clk.Now()
	var lastErr error
	for attempt := 0; attempt < m.cfg.MaxRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := m.executeOnce(ctx, req)
		if err == nil {
			m.observeExecute(start, resp)
			switch {
			case resp.ActionErr == nil:
			case errors.Is(resp.ActionErr, ErrPromiseViolated):
				m.metrics.violations.Inc()
			default:
				m.metrics.actionErrors.Inc()
			}
			return resp, nil
		}
		if !errors.Is(err, txn.ErrDeadlock) {
			return nil, err
		}
		m.metrics.deadlocks.Inc()
		lastErr = err
		// Deadlock victims back off with jitter so retrying requests do
		// not collide in lockstep.
		shift := attempt
		if shift > 8 {
			shift = 8
		}
		time.Sleep(time.Duration(rand.Intn(1<<shift+1)) * 50 * time.Microsecond)
	}
	return nil, fmt.Errorf("core: request kept deadlocking after %d attempts: %w", m.cfg.MaxRetries, lastErr)
}

// resolveAction materialises req.ActionName through the configured resolver
// into req.Action, so the rest of the pipeline sees one action shape.
func (m *Manager) resolveAction(req *Request) error {
	if req.ActionName == "" {
		return nil
	}
	if req.Action != nil {
		return fmt.Errorf("%w: both Action and ActionName set", ErrBadRequest)
	}
	if m.cfg.Actions == nil {
		return fmt.Errorf("%w: no action resolver configured for action %q", ErrBadRequest, req.ActionName)
	}
	named, err := m.cfg.Actions.ResolveAction(req.ActionName)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	params := req.ActionParams
	req.Action = func(ac *ActionContext) (any, error) { return named(params, ac) }
	return nil
}

func (m *Manager) executeOnce(ctx context.Context, req Request) (_ *Response, err error) {
	tx := m.store.Begin(txn.Block)
	st := &execState{}
	committed := false
	defer func() {
		if committed {
			return
		}
		if !tx.Done() {
			_ = tx.Abort()
		}
		// Compensate upstream promises acquired during this attempt.
		for i := len(st.undoUpstream) - 1; i >= 0; i-- {
			st.undoUpstream[i]()
		}
	}()

	if err := m.sweepExpired(tx, st); err != nil {
		return nil, err
	}

	resp := &Response{}
	for _, pr := range req.PromiseRequests {
		presp, err := m.processPromiseRequest(ctx, tx, st, req.Client, pr)
		if err != nil {
			return nil, err
		}
		resp.Promises = append(resp.Promises, presp)
	}

	envErr := m.validateEnv(tx, req.Client, req.Env)
	switch {
	case req.Action != nil:
		if envErr != nil {
			resp.ActionErr = envErr
			break
		}
		sp := tx.Savepoint()
		postMark := len(st.postCommit)
		relMark := st.released
		evMark := len(st.events)
		result, aerr := runAction(req.Action, tx, m.rm)
		if aerr != nil {
			// A deadlock inside the action is a transaction-level event,
			// not an application failure: bubble it up so Execute retries
			// the whole request (actions must therefore be deterministic
			// functions of transaction state, which PM-unaware services
			// are by construction).
			if errors.Is(aerr, txn.ErrDeadlock) {
				return nil, aerr
			}
			// Action failed: undo its changes; promises in the environment
			// remain in force (§4: "if the purchase fails … then the
			// promise should remain in force").
			if rerr := tx.RollbackTo(sp); rerr != nil {
				return nil, rerr
			}
			resp.ActionErr = aerr
			break
		}
		// Release options apply atomically with action success.
		if rerr := m.applyEnvReleases(tx, st, req.Client, req.Env); rerr != nil {
			return nil, rerr
		}
		if !m.cfg.DisablePostCheck {
			if verr := m.checkAll(tx); verr != nil {
				// §8: "the promise manager will roll back the changes made
				// by the Action and return a failure message".
				if rerr := tx.RollbackTo(sp); rerr != nil {
					return nil, rerr
				}
				st.postCommit = st.postCommit[:postMark]
				st.released = relMark
				st.events = st.events[:evMark]
				resp.ActionErr = fmt.Errorf("%w: %v", ErrPromiseViolated, verr)
				ve := Event{Type: EventViolated, Time: m.clk.Now(), Reason: verr.Error()}
				var v *violationError
				if errors.As(verr, &v) {
					ve.PromiseID, ve.Client = v.PromiseID, v.Client
				}
				st.events = append(st.events, ve)
				break
			}
		}
		resp.ActionResult = result
	case len(req.Env) > 0:
		// Pure promise-release message.
		if envErr != nil {
			resp.ActionErr = envErr
			break
		}
		if rerr := m.applyEnvReleases(tx, st, req.Client, req.Env); rerr != nil {
			return nil, rerr
		}
	}

	m.pubMu.Lock()
	if err := tx.Commit(); err != nil {
		m.pubMu.Unlock()
		return nil, err
	}
	committed = true
	m.bus.publish(st.events...)
	m.pubMu.Unlock()
	// Force the commit and its events to stable storage (per the sync
	// policy) before anything is reported to the caller. The commit stands
	// either way; the error tells the caller its outcome may not survive a
	// crash. Bookkeeping below still runs so the live engine stays
	// consistent.
	syncErr := m.durSync()
	m.metrics.releases.Add(st.released)
	m.metrics.expirations.Add(st.expired)
	m.metrics.preemptions.Add(st.preempted)
	for _, f := range st.postCommit {
		f()
	}
	// Tracked only after the grant events are published, so a deadline
	// alarm can never emit a promise's Expired ahead of its Granted.
	for _, pr := range resp.Promises {
		if pr.Accepted {
			m.trackExpiry(pr.PromiseID, pr.Expires)
		}
	}
	// Request-path expiry processed these entries inside the committed
	// transaction; drop them so they are not re-inspected forever when no
	// alarm-capable clock prunes the heap.
	if len(st.sweptDue) > 0 {
		m.exp.removeDue(m.clk.Now(), st.sweptDue)
	}
	if syncErr != nil {
		return nil, fmt.Errorf("core: commit not durable: %w", syncErr)
	}
	return resp, nil
}

// runAction executes the application action, converting panics into errors
// so an ill-behaved service cannot take down the manager.
func runAction(a Action, tx *txn.Tx, rm *resource.Manager) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: action panicked: %v", r)
		}
	}()
	return a(&ActionContext{Tx: tx, Resources: rm})
}

// processPromiseRequest evaluates one atomic <promise-request>. It returns
// the response to send; err is reserved for internal failures that must
// abort the whole message.
func (m *Manager) processPromiseRequest(ctx context.Context, tx *txn.Tx, st *execState, client string, pr PromiseRequest) (PromiseResponse, error) {
	reject := func(format string, args ...any) PromiseResponse {
		return PromiseResponse{Correlation: pr.RequestID, Reason: fmt.Sprintf(format, args...)}
	}
	if len(pr.Predicates) == 0 {
		return reject("no predicates in promise request"), nil
	}
	for _, p := range pr.Predicates {
		if err := p.Validate(); err != nil {
			return reject("invalid predicate %s: %v", p, err), nil
		}
	}
	// Resolve promises to be handed back atomically with this grant (§4,
	// third requirement). They stay in force if the grant fails.
	var releases []*Promise
	for _, rid := range pr.Releases {
		p, err := m.promiseForClient(tx, client, rid)
		if err != nil {
			return reject("release target %s: %v", rid, err), nil
		}
		releases = append(releases, p)
	}

	duration, durReason := m.grantDuration(ctx, pr.Duration, pr.MinDuration)
	if durReason != "" {
		return reject("%s", durReason), nil
	}
	if pr.Priority == 0 {
		pr.Priority = m.cfg.DefaultPriority
	}
	plan, reason, counter, err := m.plan(ctx, tx, st, pr.Predicates, releases, duration)
	if err != nil {
		return PromiseResponse{}, err
	}
	var victims []*Promise
	if plan == nil {
		// Spot-capacity fallback: a positive-tier request the planner
		// rejected may displace strictly-lower-tier preemptible holds
		// (preempt.go). The rejection keeps the original reason when
		// preemption cannot help either.
		plan, victims, err = m.planPreempt(ctx, tx, st, pr.Predicates, releases, duration, pr.Priority)
		if err != nil {
			return PromiseResponse{}, err
		}
		if plan == nil {
			resp := reject("%s", reason)
			resp.Counter = counter
			return resp, nil
		}
	}

	for _, rp := range releases {
		if err := m.releasePromise(tx, st, rp, Released); err != nil {
			return PromiseResponse{}, err
		}
	}
	// The grant's id is allocated before the victims are revoked so each
	// EventPreempted can name the promise that displaced its holder.
	id := m.promiseIDs.Next()
	for _, vp := range victims {
		if err := m.preemptPromise(tx, st, vp, id, pr.Priority); err != nil {
			return PromiseResponse{}, err
		}
	}
	prm := &Promise{
		ID:          id,
		Client:      client,
		Predicates:  append([]Predicate(nil), pr.Predicates...),
		Expires:     m.clk.Now().Add(duration),
		State:       Active,
		Priority:    pr.Priority,
		Preemptible: pr.Preemptible,
	}
	if err := m.applyGrant(tx, prm, plan); err != nil {
		return PromiseResponse{}, err
	}
	ev := Event{Type: EventGranted, PromiseID: prm.ID, Client: client, Time: m.clk.Now(), Expires: prm.Expires}
	if len(releases) > 0 {
		// The §4 modify/upgrade shape: the new promise supersedes the ones
		// just handed back.
		ev.Type = EventRenewed
		ids := make([]string, len(releases))
		for i, rp := range releases {
			ids[i] = rp.ID
		}
		ev.Reason = "replaces " + strings.Join(ids, ",")
	}
	st.events = append(st.events, ev)
	return PromiseResponse{
		Correlation: pr.RequestID,
		Accepted:    true,
		PromiseID:   prm.ID,
		Expires:     prm.Expires,
	}, nil
}

func (m *Manager) clampDuration(d time.Duration) time.Duration {
	if d <= 0 {
		d = m.cfg.DefaultDuration
	}
	if d > m.cfg.MaxDuration {
		d = m.cfg.MaxDuration
	}
	return d
}

// grantDuration resolves the duration a grant would carry: the requested
// duration clamped to the manager's cap, then capped by the request
// context's deadline — the two timeout vocabularies agree, so a promise
// never outlives the call-level deadline the client itself set. A non-empty
// reason rejects the request: the client declared (via min) that anything
// shorter is useless to it, the §6 "manager might … offer a guarantee that
// expires sooner than the client wished" direction with an explicit floor.
func (m *Manager) grantDuration(ctx context.Context, requested, min time.Duration) (time.Duration, string) {
	d := m.clampDuration(requested)
	if deadline, ok := ctx.Deadline(); ok {
		// The deadline is wall-clock; durations are relative, so the cap
		// translates to any engine clock.
		if remaining := time.Until(deadline); remaining < d {
			d = remaining
		}
	}
	if min > 0 && d < min {
		return 0, fmt.Sprintf("cannot hold the promise for the required minimum %v: capped at %v by the manager and the request deadline", min, d.Round(time.Millisecond))
	}
	if d <= 0 {
		return 0, fmt.Sprintf("request deadline leaves no time to promise (%v)", d.Round(time.Millisecond))
	}
	return d, ""
}

// promiseForClient loads a usable promise owned by client, mapping state
// problems to the client-visible sentinel errors. It reads through any
// txn.Reader: a transaction on the write paths, a lock-free snapshot on
// the read paths.
func (m *Manager) promiseForClient(r txn.Reader, client, id string) (*Promise, error) {
	p, err := m.promise(r, id)
	if err != nil {
		return nil, err
	}
	if p.Client != client {
		return nil, fmt.Errorf("%w: %s", ErrPromiseNotFound, id)
	}
	switch p.State {
	case Released:
		return nil, fmt.Errorf("%w: %s", ErrPromiseReleased, id)
	case Expired:
		return nil, fmt.Errorf("%w: %s", ErrPromiseExpired, id)
	case Preempted:
		return nil, fmt.Errorf("%w: %s", ErrPromisePreempted, id)
	}
	if !m.clk.Now().Before(p.Expires) {
		return nil, fmt.Errorf("%w: %s", ErrPromiseExpired, id)
	}
	return p, nil
}

func (m *Manager) promise(r txn.Reader, id string) (*Promise, error) {
	row, err := r.Get(TablePromises, id)
	if errors.Is(err, txn.ErrNotFound) {
		row, err = r.Get(TablePromisesDone, id)
	}
	if errors.Is(err, txn.ErrNotFound) {
		return nil, fmt.Errorf("%w: %s", ErrPromiseNotFound, id)
	}
	if err != nil {
		return nil, err
	}
	p := row.(*promiseRow).p
	return &p, nil
}

// putPromise stores p in the table matching its state: active promises in
// the scanned promise table, terminal ones in the keyed-only done table.
func (m *Manager) putPromise(tx *txn.Tx, p *Promise) error {
	if p.State == Active {
		return tx.Put(TablePromises, p.ID, &promiseRow{p: *p})
	}
	if err := tx.Delete(TablePromises, p.ID); err != nil && !errors.Is(err, txn.ErrNotFound) {
		return err
	}
	return tx.Put(TablePromisesDone, p.ID, &promiseRow{p: *p})
}

// validateEnv checks that every environment promise exists, belongs to the
// client, and has not expired or been released — the "promise-expired"
// check of §2.
func (m *Manager) validateEnv(r txn.Reader, client string, env []EnvEntry) error {
	for _, e := range env {
		if _, err := m.promiseForClient(r, client, e.PromiseID); err != nil {
			return err
		}
	}
	return nil
}

// applyEnvReleases hands back every environment promise whose release
// option is set.
func (m *Manager) applyEnvReleases(tx *txn.Tx, st *execState, client string, env []EnvEntry) error {
	for _, e := range env {
		if !e.Release {
			continue
		}
		p, err := m.promiseForClient(tx, client, e.PromiseID)
		if err != nil {
			return err
		}
		if err := m.releasePromise(tx, st, p, Released); err != nil {
			return err
		}
	}
	return nil
}

// releasePromise frees every hold backing p and marks it with the given
// terminal state (Released, Expired or Preempted).
func (m *Manager) releasePromise(tx *txn.Tx, st *execState, p *Promise, terminal State) error {
	if p.State != Active {
		return nil
	}
	for i, pred := range p.Predicates {
		slot := slotKey(p.ID, i)
		switch pred.View {
		case AnonymousView:
			if _, err := m.ledger.ReleaseAll(tx, pred.Pool, slot); err != nil {
				return err
			}
			if i < len(p.DelegatedID) && p.DelegatedID[i] != "" {
				sup := m.cfg.Suppliers[pred.Pool]
				if sup != nil {
					id := p.DelegatedID[i]
					// Post-commit compensation must outlive the request's
					// context: the local release is already durable.
					st.postCommit = append(st.postCommit, func() { _ = sup.ReleasePromise(context.Background(), id) })
				}
			}
		case NamedView, PropertyView:
			inst := ""
			if i < len(p.Assigned) {
				inst = p.Assigned[i]
			}
			if inst == "" {
				continue
			}
			holder, err := m.tags.Holder(tx, inst)
			if err != nil {
				return err
			}
			if holder != slot {
				continue // the action already consumed it through Take, or a repair moved it
			}
			in, err := m.rm.Instance(tx, inst)
			if errors.Is(err, txn.ErrNotFound) {
				if ferr := m.tags.Forget(tx, inst, slot); ferr != nil {
					return ferr
				}
				continue
			}
			if err != nil {
				return err
			}
			if in.Status == resource.Promised {
				if err := m.tags.Release(tx, inst, slot); err != nil {
					return err
				}
			} else {
				// The application took (or otherwise moved) the instance
				// under this promise's protection; just drop the record.
				if err := m.tags.Forget(tx, inst, slot); err != nil {
					return err
				}
			}
		}
	}
	p.State = terminal
	typ := EventReleased
	switch terminal {
	case Expired:
		st.expired++
		typ = EventExpired
	case Preempted:
		st.preempted++
		typ = EventPreempted
	default:
		st.released++
	}
	st.events = append(st.events, Event{Type: typ, PromiseID: p.ID, Client: p.Client, Time: m.clk.Now()})
	return m.putPromise(tx, p)
}

// sweepExpired lapses active promises past their expiry, freeing their
// holds, so availability reflects only live promises (§2: "promises will
// expire at the end of this time"). It runs at the start of every request,
// but no longer scans the promise table: the expiry heap (expiry.go) names
// exactly the promises due, so the check is O(1) when nothing is due —
// normally the case, because the deadline alarm already lapsed them — and
// O(expired) otherwise.
func (m *Manager) sweepExpired(tx *txn.Tx, st *execState) error {
	now := m.clk.Now()
	for _, e := range m.exp.dueEntries(now) {
		if e.warn {
			// Warnings belong to the alarm path; without an alarm-capable
			// clock the request path emits (and retires) them instead, so
			// they cannot pile up in the heap.
			if m.exp.alarmer == nil {
				if p, err := m.promise(tx, e.id); err == nil && p.State == Active && now.Before(p.Expires) {
					st.events = append(st.events, Event{
						Type: EventExpiryImminent, PromiseID: p.ID, Client: p.Client,
						Time: now, Expires: p.Expires,
					})
				}
				st.sweptDue = append(st.sweptDue, e)
			}
			continue
		}
		p, err := m.promise(tx, e.id)
		if errors.Is(err, ErrPromiseNotFound) {
			st.sweptDue = append(st.sweptDue, e)
			continue // migrated away, or an id this store never held
		}
		if err != nil {
			return err
		}
		if p.State == Active && !now.Before(p.Expires) {
			if err := m.releasePromise(tx, st, p, Expired); err != nil {
				return err
			}
		}
		st.sweptDue = append(st.sweptDue, e)
	}
	return nil
}

// Sweep expires lapsed promises. With an alarm-capable clock (the system
// clock, the test fake) it is a no-op shim kept for compatibility: the
// expiry heap already lapsed every promise at its deadline. With a clock
// that cannot alarm it performs the deadline processing itself.
func (m *Manager) Sweep() error {
	return m.expireDue()
}

// PromiseInfo returns a copy of the promise with the given id, for
// inspection by tools and tests. It reads the latest committed store
// snapshot and acquires no lock, so it never queues behind grants.
func (m *Manager) PromiseInfo(id string) (Promise, error) {
	p, err := m.promise(m.store.Snapshot(), id)
	if err != nil {
		return Promise{}, err
	}
	return *p, nil
}

// ActivePromises returns copies of all active, unexpired promises, read
// from the latest committed store snapshot with no lock acquisition.
func (m *Manager) ActivePromises() ([]Promise, error) {
	return m.activePromises(m.store.Snapshot())
}

func (m *Manager) activePromises(r txn.Reader) ([]Promise, error) {
	now := m.clk.Now()
	var out []Promise
	err := r.Scan(TablePromises, func(_ string, row txn.Row) bool {
		p := row.(*promiseRow).p
		if p.State == Active && now.Before(p.Expires) {
			out = append(out, p)
		}
		return true
	})
	return out, err
}

// Release hands back the named promises atomically: either every id is
// usable by client and all are released, or none are and the failure is
// returned — the pure-release message of §6 as a method.
func (m *Manager) Release(ctx context.Context, client string, ids ...string) error {
	if len(ids) == 0 {
		return nil
	}
	env := make([]EnvEntry, len(ids))
	for i, id := range ids {
		env[i] = EnvEntry{PromiseID: id, Release: true}
	}
	resp, err := m.Execute(ctx, Request{Client: client, Env: env})
	if err != nil {
		return err
	}
	return resp.ActionErr
}

// CreatePool registers a pool, in a transaction of its own — the seeding
// convenience mirrored on ShardedManager so setup code is engine-agnostic.
func (m *Manager) CreatePool(id string, onHand int64, props map[string]predicate.Value) error {
	tx := m.store.Begin(txn.Block)
	if err := m.rm.CreatePool(tx, id, onHand, props); err != nil {
		_ = tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	return m.durSync()
}

// CreateInstance registers a named instance, in a transaction of its own.
func (m *Manager) CreateInstance(id string, props map[string]predicate.Value) error {
	tx := m.store.Begin(txn.Block)
	if err := m.rm.CreateInstance(tx, id, props); err != nil {
		_ = tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	return m.durSync()
}

// PoolLevel returns the quantity on hand of one pool, for tools and tests,
// read from the latest committed store snapshot with no lock acquisition.
func (m *Manager) PoolLevel(pool string) (int64, error) {
	p, err := m.rm.Pool(m.store.Snapshot(), pool)
	if err != nil {
		return 0, err
	}
	return p.OnHand, nil
}

// LoadSeed reads a resource seed file and creates its pools and instances
// in one transaction.
func (m *Manager) LoadSeed(r io.Reader) (pools, instances int, err error) {
	ps, ins, err := resource.ParseSeed(r)
	if err != nil {
		return 0, 0, err
	}
	tx := m.store.Begin(txn.Block)
	for _, p := range ps {
		if err := m.rm.CreatePool(tx, p.ID, p.OnHand, p.Props); err != nil {
			_ = tx.Abort()
			return 0, 0, err
		}
		pools++
	}
	for _, in := range ins {
		if err := m.rm.CreateInstance(tx, in.ID, in.Props); err != nil {
			_ = tx.Abort()
			return 0, 0, err
		}
		instances++
	}
	if err := tx.Commit(); err != nil {
		return 0, 0, err
	}
	return pools, instances, m.durSync()
}
