package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/ids"
	"repro/internal/predicate"
)

// This file is the node-side half of cluster federation: a wire-facing
// wrapper around the PR 2 reserve/confirm pipeline that lets a *remote*
// coordinator (cluster.Engine, or the drain path of cluster.Coordinator)
// drive this node's shards as one participant of a cross-node two-phase
// grant. FedReserve opens a session — shard locks held, per-shard
// reservations open, fixed predicates tentatively granted — and exports the
// node's property-match state (slots + candidates) so the caller can solve
// the joint bipartite problem across nodes. FedConfirm applies the caller's
// plan (reallocations, slot migrations in and out of the node, pinned
// property grants) through the open reservations and commits; FedAbort
// rolls everything back. A TTL alarm aborts sessions whose caller died, so
// a crashed coordinator can never wedge a node's shard locks forever.

// FedReserveSpec is the reserve half of a federated grant as it applies to
// one node: the release targets and predicates this node owns, plus every
// property predicate of the original request (never granted at reserve —
// they scope the shard pre-filter and the exported context).
type FedReserveSpec struct {
	// Releases are the release targets owned by this node (§4 upgrade
	// semantics: applied tentatively inside the reservation).
	Releases []string
	// Predicates are this node's slice of the request: anonymous and named
	// predicates on resources this node owns, plus all property
	// predicates. PredIdx carries each predicate's position in the
	// original request.
	Predicates []Predicate
	PredIdx    []int
	// WantProps asks for the node's property-match context (slots and
	// candidates) in the result, for a caller about to run a joint match.
	WantProps bool
	// Duration and MinDuration are the original request's, re-clamped
	// locally (shard configs agree across a well-formed cluster).
	Duration    time.Duration
	MinDuration time.Duration
	// TTL bounds how long the session may stay open before the node
	// aborts it unilaterally. Zero means DefaultFedTTL; the node caps it
	// at MaxFedTTL.
	TTL time.Duration
	// Priority and Preemptible carry the original request's tier and spot
	// flag, as in PromiseRequest: sub-promises are stamped with them, and
	// a positive tier lets each node's planner displace its own
	// lower-tier preemptible holds (preempt.go). Victim selection is
	// node-local — a federated grant never preempts across nodes.
	Priority    int
	Preemptible bool
}

// Fed session TTL bounds: how long a node holds its shard locks for an
// absent federation caller before aborting the session.
const (
	DefaultFedTTL = 30 * time.Second
	MaxFedTTL     = 2 * time.Minute
)

// FedSlot is one active property slot exported in a session's context —
// the left-vertex material of the joint match, with enough identity
// (client, expiry) for a migration to reconstruct the promise row on
// another node.
type FedSlot struct {
	// Key is the slot key ("<promise>#<idx>").
	Key string
	// Expr is the slot's property expression in source form.
	Expr string
	// Assigned is the instance currently backing the slot.
	Assigned string
	// Shard is the slot's shard on this node: the joint match pins
	// non-migratable slots to their exact (node, shard) home.
	Shard int
	// Migratable marks a sole-predicate property sub-promise, the only
	// kind the matcher may re-home (within or across nodes).
	Migratable bool
	// CrossNode additionally allows re-homing on another node: true for
	// plain sub-promises, false for members of a node-local composite
	// (the node's directory could not track a part leaving the node).
	CrossNode bool
	// Client and Expires identify the promise for cross-node
	// reconstruction.
	Client  string
	Expires time.Time
}

// FedCandidate is one instance available to the joint match.
type FedCandidate struct {
	// Instance is the instance id (globally unique across the cluster).
	Instance string
	// Shard is the instance's shard on this node.
	Shard int
	// Props are the instance's properties.
	Props map[string]predicate.Value
	// Tentative marks an instance currently backing a slot (usable only
	// through rearrangement).
	Tentative bool
}

// FedContext is a node's property-match state at reserve time, read
// transactionally under the session's shard locks.
type FedContext struct {
	Slots      []FedSlot
	Candidates []FedCandidate
}

// FedReserveResult reports a FedReserve outcome. Exactly one of Reject and
// SessionID is meaningful: a reject aborted the whole node-side pipeline
// (nothing is held); otherwise the session stays open until FedConfirm,
// FedAbort or the TTL.
type FedReserveResult struct {
	// SessionID names the open session for Confirm/Abort.
	SessionID string
	// Granted are the parts tentatively granted at reserve (fixed
	// predicates), with original request positions. They commit only on
	// Confirm.
	Granted []GrantedPart
	// Deferred lists original positions of named predicates this node
	// deferred into the joint match (their instance is tentatively held by
	// a property slot, so granting them displaces it — matching mode
	// only). The caller must place them via FedConfirmSpec.Pinned.
	Deferred []int
	// Context is the node's property-match state, when requested or when
	// predicates were deferred.
	Context *FedContext
	// Reject, when non-nil, is the node's rejection; the session is gone.
	Reject *PromiseResponse
}

// FedRealloc re-backs one slot of this node with another instance of this
// node (same shard or not — the node converts a cross-shard entry into an
// internal migration itself).
type FedRealloc struct {
	Slot     string
	Instance string
}

// FedMigrateIn re-homes a slot from another node onto an instance of this
// node, preserving the promise's id, client and expiry.
type FedMigrateIn struct {
	ID       string
	Client   string
	Expr     string
	Expires  time.Time
	Instance string
	// FromNode names the source node, for the migration event.
	FromNode string
}

// FedPinned grants one floating predicate of the original request onto an
// instance of this node.
type FedPinned struct {
	Predicate Predicate
	PredIdx   int
	Instance  string
}

// FedConfirmSpec is the caller's plan for this node: apply and commit.
type FedConfirmSpec struct {
	Realloc    []FedRealloc
	MigrateOut []string
	MigrateIn  []FedMigrateIn
	Pinned     []FedPinned
}

// fedSession is one open federated reservation: the shard locks are held
// (unlock releases them), the per-shard reservations are open, and the TTL
// alarm aborts the session if the caller never returns.
type fedSession struct {
	client    string
	unlock    func()
	resvs     map[int]*Reservation
	durCapped time.Duration
	stopTTL   func()
}

// fedState lazily holds the session table on a ShardedManager.
func (s *ShardedManager) fedInit() {
	s.fedMu.Lock()
	if s.fedSessions == nil {
		s.fedSessions = make(map[string]*fedSession)
		s.fedIDs = ids.New(s.ns + "fed")
	}
	s.fedMu.Unlock()
}

// FedReserve opens a federated session: it locks every shard, applies the
// node's releases and fixed predicates through open reservations
// (pre-filtered to the shards that matter, exactly as a local cross-shard
// grant would), and exports the property-match context when asked. The
// caller owns the session until FedConfirm/FedAbort; the TTL is the
// backstop. Reserving nodes in ascending node-id order is the caller's
// side of deadlock avoidance — the node-level analogue of lockShards.
func (s *ShardedManager) FedReserve(ctx context.Context, client string, spec FedReserveSpec) (*FedReserveResult, error) {
	if client == "" {
		return nil, fmt.Errorf("%w: missing client", ErrBadRequest)
	}
	// A degraded node refuses to open new federated sessions; FedAbort
	// stays available so peers can clean up sessions already reserved.
	if err := s.health.reject(); err != nil {
		return nil, err
	}
	reject := func(format string, args ...any) *FedReserveResult {
		return &FedReserveResult{Reject: &PromiseResponse{Reason: fmt.Sprintf(format, args...)}}
	}
	if len(spec.Predicates) != len(spec.PredIdx) {
		return nil, fmt.Errorf("%w: fed reserve: %d predicates, %d positions", ErrBadRequest, len(spec.Predicates), len(spec.PredIdx))
	}
	for _, p := range spec.Predicates {
		if err := p.Validate(); err != nil {
			return reject("invalid predicate %s: %v", p, err), nil
		}
	}
	s.fedInit()

	// Release targets route to their shards; composite targets expand.
	relByShard := make(map[int][]string)
	for _, rid := range spec.Releases {
		if isCompositeID(rid) {
			c := s.lookupComposite(client, rid)
			if c == nil {
				return reject("release target %s: %v", rid, fmt.Errorf("%w: %s", ErrPromiseNotFound, rid)), nil
			}
			for _, part := range c.parts {
				relByShard[part.shard] = append(relByShard[part.shard], part.id)
			}
			continue
		}
		sh, ok := s.ownerShard(rid)
		if !ok {
			return reject("release target %s: %v", rid, fmt.Errorf("%w: %s", ErrPromiseNotFound, rid)), nil
		}
		relByShard[sh] = append(relByShard[sh], rid)
	}

	durCapped, durReason := s.shards[0].m.grantDuration(ctx, spec.Duration, spec.MinDuration)
	if durReason != "" {
		s.shards[0].m.metrics.requests.Inc()
		s.shards[0].m.metrics.rejections.Inc()
		return reject("%s", durReason), nil
	}

	// A federated session holds every shard lock: cross-node grants are
	// rare next to their own network round trips, and the full set makes
	// the pre-filter clamp vacuous (no widen signal can reach the wire).
	unlock := s.lockShards(s.allShards())
	done := false
	defer func() {
		if !done {
			unlock()
		}
	}()

	// Partition predicates under the locks (the named-deferral peek must
	// be stable through commit). Property predicates are never granted at
	// reserve — they float in the caller's joint match.
	fixed := make(map[int][]int) // shard -> positions in spec.Predicates
	var floating []floatPred     // positions in spec.Predicates
	var deferred []int           // original request positions
	for i, p := range spec.Predicates {
		switch p.View {
		case AnonymousView:
			fixed[s.ShardOf(p.Pool)] = append(fixed[s.ShardOf(p.Pool)], i)
		case NamedView:
			if s.mode == MatchingMode {
				held, err := s.shards[s.ShardOf(p.Instance)].m.propertySlotHolder(p.Instance)
				if err != nil {
					return nil, err
				}
				if held {
					floating = append(floating, floatPred{idx: i, named: true})
					deferred = append(deferred, spec.PredIdx[i])
					continue
				}
			}
			fixed[s.ShardOf(p.Instance)] = append(fixed[s.ShardOf(p.Instance)], i)
		case PropertyView:
			floating = append(floating, floatPred{idx: i})
		}
	}

	involved := make(map[int]bool)
	for sh := range relByShard {
		involved[sh] = true
	}
	for sh := range fixed {
		involved[sh] = true
	}
	if len(floating) > 0 || spec.WantProps {
		pseudo := PromiseRequest{Predicates: spec.Predicates}
		for sh := range s.contributingShards(pseudo, floating) {
			involved[sh] = true
		}
		if skipped := len(s.shards) - len(involved); skipped > 0 {
			s.prefilterSkipped.Add(int64(skipped))
		}
	}
	if len(involved) == 0 {
		// Nothing fixed, released or contributing: reserve shard 0 so the
		// session still has a transaction to answer through.
		involved[0] = true
	}

	resvs := make(map[int]*Reservation)
	abortAll := func() {
		for _, sh := range sortedKeys(resvs) {
			resvs[sh].Abort()
		}
	}
	var granted []GrantedPart
	for _, sh := range sortedKeys(involved) {
		if err := ctx.Err(); err != nil {
			abortAll()
			return nil, err
		}
		idxs := fixed[sh]
		preds := make([]Predicate, len(idxs))
		orig := make([]int, len(idxs))
		for j, idx := range idxs {
			preds[j] = spec.Predicates[idx]
			orig[j] = spec.PredIdx[idx]
		}
		resv, rejResp, err := s.shards[sh].m.Reserve(ctx, client, ReserveRequest{
			Releases:    relByShard[sh],
			Predicates:  preds,
			PredIdx:     orig,
			Duration:    spec.Duration,
			MinDuration: spec.MinDuration,
			Priority:    spec.Priority,
			Preemptible: spec.Preemptible,
		})
		if err != nil {
			abortAll()
			return nil, err
		}
		if rejResp != nil {
			abortAll()
			return &FedReserveResult{Reject: rejResp}, nil
		}
		resvs[sh] = resv
		granted = append(granted, resv.Granted()...)
	}

	res := &FedReserveResult{Granted: granted, Deferred: deferred}
	if spec.WantProps || len(deferred) > 0 {
		fc, err := s.fedContext(resvs)
		if err != nil {
			abortAll()
			return nil, err
		}
		res.Context = fc
	}

	sess := &fedSession{client: client, unlock: unlock, resvs: resvs, durCapped: durCapped}
	ttl := spec.TTL
	if ttl <= 0 {
		ttl = DefaultFedTTL
	}
	if ttl > MaxFedTTL {
		ttl = MaxFedTTL
	}
	s.fedMu.Lock()
	res.SessionID = s.fedIDs.Next()
	s.fedSessions[res.SessionID] = sess
	s.fedMu.Unlock()
	if al, ok := s.clk.(clock.Alarmer); ok {
		sid := res.SessionID
		sess.stopTTL = al.AfterFunc(s.clk.Now().Add(ttl), func() { s.FedAbort(sid) })
	}
	done = true // the session now owns unlock
	return res, nil
}

// fedContext reads the reserved shards' property-match state. Cross-node
// migratability additionally requires the slot not be a composite member:
// the node's directory cannot follow a part off the node.
func (s *ShardedManager) fedContext(resvs map[int]*Reservation) (*FedContext, error) {
	out := &FedContext{}
	for _, sh := range sortedKeys(resvs) {
		pc, err := resvs[sh].PropertyContext()
		if err != nil {
			return nil, err
		}
		for _, slot := range pc.Slots {
			pid, _, ok := parseSlotKey(slot.Key)
			if !ok {
				return nil, fmt.Errorf("core: malformed slot key %q", slot.Key)
			}
			p, err := s.shards[sh].m.promise(resvs[sh].tx, pid)
			if err != nil {
				return nil, fmt.Errorf("core: slot %s: %w", slot.Key, err)
			}
			s.dirMu.Lock()
			_, member := s.partOf[pid]
			s.dirMu.Unlock()
			out.Slots = append(out.Slots, FedSlot{
				Key:        slot.Key,
				Expr:       slot.Expr.String(),
				Assigned:   slot.Assigned,
				Shard:      sh,
				Migratable: slot.Migratable,
				CrossNode:  slot.Migratable && !member,
				Client:     p.Client,
				Expires:    p.Expires,
			})
		}
		for _, c := range pc.Candidates {
			out.Candidates = append(out.Candidates, FedCandidate{
				Instance:  c.Instance.ID,
				Shard:     sh,
				Props:     c.Instance.Props,
				Tentative: c.Tentative,
			})
		}
	}
	return out, nil
}

// claimFedSession removes and returns the session, stopping its TTL alarm.
func (s *ShardedManager) claimFedSession(id string) *fedSession {
	s.fedMu.Lock()
	sess := s.fedSessions[id]
	delete(s.fedSessions, id)
	s.fedMu.Unlock()
	if sess != nil && sess.stopTTL != nil {
		sess.stopTTL()
	}
	return sess
}

// FedConfirm applies the caller's plan through the session's open
// reservations and commits, mirroring a local pipeline's Phase 2/3:
// detachments strictly before attachments, confirms in ascending shard
// order, directory and expiry bookkeeping after the commits. It returns
// every part this session granted (reserve-time fixed parts plus the
// pinned grants), in shard order.
func (s *ShardedManager) FedConfirm(ctx context.Context, sessionID string, spec FedConfirmSpec) ([]GrantedPart, error) {
	sess := s.claimFedSession(sessionID)
	if sess == nil {
		return nil, fmt.Errorf("%w: fed session %s (expired or finished)", ErrPromiseNotFound, sessionID)
	}
	defer sess.unlock()
	abortAll := func() {
		for _, sh := range sortedKeys(sess.resvs) {
			sess.resvs[sh].Abort()
		}
	}
	// A node that degraded after reserving refuses the commit and hands
	// the reservations back; the coordinator node sees a plain failed
	// confirm and compensates as usual.
	if err := s.health.reject(); err != nil {
		abortAll()
		return nil, err
	}
	resvFor := func(sh int) (*Reservation, error) {
		if r := sess.resvs[sh]; r != nil {
			return r, nil
		}
		return nil, fmt.Errorf("core: fed confirm touches unreserved shard %d", sh)
	}
	if err := ctx.Err(); err != nil {
		abortAll()
		return nil, err
	}

	// Classify reallocations: same-shard entries apply in place, cross-
	// shard entries become internal migrations (the caller plans at node
	// granularity; shards are this node's business).
	realloc := make(map[int]map[string]string)
	var internal []slotMigration
	for _, ra := range spec.Realloc {
		pid, _, ok := parseSlotKey(ra.Slot)
		if !ok {
			abortAll()
			return nil, fmt.Errorf("%w: malformed slot key %q", ErrBadRequest, ra.Slot)
		}
		from, ok := s.ownerShard(pid)
		if !ok {
			abortAll()
			return nil, fmt.Errorf("%w: realloc of unknown promise %s", ErrBadRequest, pid)
		}
		to := s.ShardOf(ra.Instance)
		if from == to {
			if realloc[from] == nil {
				realloc[from] = make(map[string]string)
			}
			realloc[from][ra.Slot] = ra.Instance
			continue
		}
		internal = append(internal, slotMigration{promiseID: pid, from: from, to: to, inst: ra.Instance})
	}

	// Detach: slots leaving the node, then slots moving between shards.
	outRows := make([]*Promise, len(spec.MigrateOut))
	for i, id := range spec.MigrateOut {
		sh, ok := s.ownerShard(id)
		if !ok {
			abortAll()
			return nil, fmt.Errorf("%w: migrate-out of unknown promise %s", ErrBadRequest, id)
		}
		resv, err := resvFor(sh)
		if err == nil {
			outRows[i], err = resv.MigrateOut(id)
		}
		if err != nil {
			abortAll()
			return nil, err
		}
	}
	outShards := make([]int, len(spec.MigrateOut))
	for i, id := range spec.MigrateOut {
		outShards[i], _ = s.ownerShard(id)
	}
	internalRows := make([]*Promise, len(internal))
	for i, mg := range internal {
		resv, err := resvFor(mg.from)
		if err == nil {
			internalRows[i], err = resv.MigrateOut(mg.promiseID)
		}
		if err != nil {
			abortAll()
			return nil, err
		}
	}

	// Re-back in place.
	for _, sh := range sortedKeys(realloc) {
		resv, err := resvFor(sh)
		if err == nil {
			err = resv.ApplyRealloc(realloc[sh])
		}
		if err != nil {
			abortAll()
			return nil, err
		}
	}

	// Attach: internal movers, then slots arriving from other nodes, then
	// the pinned grants of the new request.
	for i, mg := range internal {
		resv, err := resvFor(mg.to)
		if err == nil {
			err = resv.MigrateIn(internalRows[i], mg.inst)
		}
		if err != nil {
			abortAll()
			return nil, err
		}
	}
	inShards := make([]int, len(spec.MigrateIn))
	for i, mi := range spec.MigrateIn {
		expr, err := predicate.Parse(mi.Expr)
		if err != nil {
			abortAll()
			return nil, fmt.Errorf("%w: migrate-in %s: bad expression %q: %v", ErrBadRequest, mi.ID, mi.Expr, err)
		}
		sh := s.ShardOf(mi.Instance)
		inShards[i] = sh
		row := &Promise{
			ID:           mi.ID,
			Client:       mi.Client,
			Predicates:   []Predicate{{View: PropertyView, Expr: expr, Source: mi.Expr}},
			Assigned:     []string{""},
			DelegatedQty: make([]int64, 1),
			DelegatedID:  make([]string, 1),
			Expires:      mi.Expires,
			State:        Active,
		}
		resv, err := resvFor(sh)
		if err == nil {
			err = resv.MigrateIn(row, mi.Instance)
		}
		if err != nil {
			abortAll()
			return nil, err
		}
	}
	for _, pin := range spec.Pinned {
		sh := s.ShardOf(pin.Instance)
		resv, err := resvFor(sh)
		if err == nil {
			err = resv.GrantPinned([]Predicate{pin.Predicate}, []int{pin.PredIdx}, []string{pin.Instance}, sess.durCapped)
		}
		if err != nil {
			abortAll()
			return nil, err
		}
	}

	// Commit, ascending. Any migration (internal or federated) brackets
	// the confirms in the seqlock so lock-free readers can tell a racing
	// re-home from a definitive not-found.
	migrating := len(internal) > 0 || len(spec.MigrateOut) > 0 || len(spec.MigrateIn) > 0
	if migrating {
		s.migSeq.Add(1)
	}
	var confirmed []compositePart
	var parts []GrantedPart
	for _, sh := range sortedKeys(sess.resvs) {
		granted := sess.resvs[sh].Granted()
		if err := sess.resvs[sh].Confirm(); err != nil {
			if migrating {
				s.migSeq.Add(1)
			}
			abortAll()
			s.releaseParts(sess.client, confirmed)
			return nil, err
		}
		for _, g := range granted {
			confirmed = append(confirmed, compositePart{shard: sh, id: g.ID, predIdx: g.PredIdx, expires: g.Expires})
		}
		parts = append(parts, granted...)
	}
	s.commitMoves(internal)
	// Federated moves: arrivals route through the moved directory (their
	// id prefix is another node's); departures retire any moved entry so
	// this node answers not-found and the caller's broadcast finds the
	// promise at its new home.
	s.dirMu.Lock()
	for i, mi := range spec.MigrateIn {
		s.moved.Store(mi.ID, inShards[i])
	}
	for _, id := range spec.MigrateOut {
		s.moved.Delete(id)
	}
	s.dirMu.Unlock()
	for i, mi := range spec.MigrateIn {
		s.logDirMove(mi.ID, inShards[i])
	}
	for _, id := range spec.MigrateOut {
		s.logDirMove(id, -1)
	}
	if migrating {
		s.migSeq.Add(1)
	}

	now := s.clk.Now()
	var events []Event
	for i, mg := range internal {
		row := internalRows[i]
		s.shards[mg.to].m.trackExpiry(row.ID, row.Expires)
		events = append(events, Event{
			Type: EventMigrated, PromiseID: row.ID, Client: row.Client,
			Time: now, Expires: row.Expires,
			Reason: fmt.Sprintf("slot moved from shard %d to shard %d", mg.from, mg.to),
		})
	}
	for i, mi := range spec.MigrateIn {
		s.shards[inShards[i]].m.trackExpiry(mi.ID, mi.Expires)
		from := mi.FromNode
		if from == "" {
			from = "another node"
		}
		events = append(events, Event{
			Type: EventMigrated, PromiseID: mi.ID, Client: mi.Client,
			Time: now, Expires: mi.Expires,
			Reason: fmt.Sprintf("slot moved from node %s to node %s", from, strings.TrimSuffix(s.ns, "!")),
		})
	}
	if len(events) > 0 {
		s.bus.publish(events...)
	}
	if err := s.durSync(); err != nil {
		return nil, fmt.Errorf("core: commit not durable: %w", err)
	}
	return parts, nil
}

// FedAbort rolls back an open session, releasing its shard locks.
// Idempotent: aborting a finished or unknown session is a no-op, so a
// caller retrying over a flaky link never double-faults.
func (s *ShardedManager) FedAbort(sessionID string) {
	sess := s.claimFedSession(sessionID)
	if sess == nil {
		return
	}
	for _, sh := range sortedKeys(sess.resvs) {
		sess.resvs[sh].Abort()
	}
	sess.unlock()
}

// FedAbortAll aborts every open session — what a crash does to in-memory
// reservation state (the simulator calls it on injected crashes; a real
// process loses the sessions with the process).
func (s *ShardedManager) FedAbortAll() {
	s.fedMu.Lock()
	ids := make([]string, 0, len(s.fedSessions))
	for id := range s.fedSessions {
		ids = append(ids, id)
	}
	s.fedMu.Unlock()
	for _, id := range ids {
		s.FedAbort(id)
	}
}

// NodeSummary aggregates the node's per-shard candidate-index summaries —
// the PR 5/7 pre-filter lifted to cluster granularity, so a cluster
// engine can skip nodes that provably cannot contribute to a property
// match. JSON-encodable (predicate.Value keys marshal as text) for the
// GET /cluster/summary endpoint.
type NodeSummary struct {
	// Hostable counts instances that could host a property slot.
	Hostable int
	// Slots counts active property slots.
	Slots int
	// Pinned and MinPinnedExpiry carry the staleness signal: with pinned
	// instances at or past MinPinnedExpiry, a cannot-contribute verdict
	// is no longer trustworthy.
	Pinned          int
	MinPinnedExpiry time.Time
	// ByProp is the per-value hostable-candidate index, merged across
	// shards.
	ByProp map[string]map[predicate.Value]int
}

// FedSummary snapshots the node's candidate summaries, lock-free.
func (s *ShardedManager) FedSummary() NodeSummary {
	out := NodeSummary{ByProp: make(map[string]map[predicate.Value]int)}
	for _, sh := range s.shards {
		sum := sh.m.cand.summary.Load()
		out.Hostable += sum.Hostable
		out.Slots += sum.Slots
		if sum.Pinned > 0 {
			if out.Pinned == 0 || sum.MinPinnedExpiry.Before(out.MinPinnedExpiry) {
				out.MinPinnedExpiry = sum.MinPinnedExpiry
			}
			out.Pinned += sum.Pinned
		}
		for prop, byVal := range sum.ByProp {
			m := out.ByProp[prop]
			if m == nil {
				m = make(map[predicate.Value]int)
				out.ByProp[prop] = m
			}
			for v, n := range byVal {
				m[v] += n
			}
		}
	}
	return out
}

// MayHost conservatively reports whether the summarized node might host an
// instance satisfying e — the tier-2 value-pruning answer at node
// granularity. Unindexable shapes report true.
func (sum NodeSummary) MayHost(e predicate.Expr) bool {
	may, ok := indexMay(e, sum.ByProp)
	return !ok || may
}

// Stale reports whether the summary's cannot-contribute verdicts are
// trustworthy at now (see candSummary staleness in candidates.go).
func (sum NodeSummary) Stale(now time.Time) bool {
	return sum.Pinned > 0 && !now.Before(sum.MinPinnedExpiry)
}
