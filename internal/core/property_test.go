package core

import (
	"errors"
	"testing"

	"repro/internal/predicate"
	"repro/internal/resource"
	"repro/internal/txn"
)

// seedHotel creates the §3.3 hotel: room 512 (5th floor, view) and room 316
// (3rd floor, view).
func seedHotel(t *testing.T, m *Manager) {
	t.Helper()
	seed(t, m, func(tx *txn.Tx) error {
		rm := m.Resources()
		if err := rm.CreateInstance(tx, "room-316", map[string]predicate.Value{
			"floor": predicate.Int(3), "view": predicate.Bool(true),
		}); err != nil {
			return err
		}
		return rm.CreateInstance(tx, "room-512", map[string]predicate.Value{
			"floor": predicate.Int(5), "view": predicate.Bool(true),
		})
	})
}

func propertyReq(client, expr string) Request {
	return Request{Client: client, PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{MustProperty(expr)},
	}}}
}

func TestTentativeAllocationReassignsRoom512(t *testing.T) {
	// §5: "a request for a hotel room with a view may lead to tentatively
	// allocating room 512 … When a later request is made to promise a 5th
	// floor room, the system may reallocate 512 to the new request as long
	// as a different room with a view can still be provided."
	m, _ := newManager(t, Config{PropertyMode: MatchingMode})
	seedHotel(t, m)

	view := grantOne(t, m, propertyReq("cust-view", "view = true"))
	if !view.Accepted {
		t.Fatal(view.Reason)
	}
	fifth := grantOne(t, m, propertyReq("cust-5th", "floor = 5"))
	if !fifth.Accepted {
		t.Fatalf("5th-floor promise rejected (reallocation failed): %s", fifth.Reason)
	}
	vi, _ := m.PromiseInfo(view.PromiseID)
	fi, _ := m.PromiseInfo(fifth.PromiseID)
	if fi.Assigned[0] != "room-512" {
		t.Fatalf("5th-floor promise assigned %q", fi.Assigned[0])
	}
	if vi.Assigned[0] != "room-316" {
		t.Fatalf("view promise should have been moved to room-316, got %q", vi.Assigned[0])
	}
	// A third overlapping promise must fail: only two rooms.
	third := grantOne(t, m, propertyReq("cust-3", "view = true"))
	if third.Accepted {
		t.Fatal("two rooms cannot back three promises")
	}
}

func TestFirstFitAblationLosesGrant(t *testing.T) {
	// E7: first-fit binds the view promise to room-316 or room-512 by id
	// order; "room-316" sorts first so view gets 316, and the 5th-floor
	// request still finds 512. Make first-fit genuinely fail by seeding so
	// the greedy choice blocks: view takes room-512 (only room until 316
	// is added later... instead use id order trickery).
	m, _ := newManager(t, Config{PropertyMode: FirstFitMode})
	seed(t, m, func(tx *txn.Tx) error {
		rm := m.Resources()
		// id order: "room-a512" < "room-b316"; first-fit gives the view
		// promise room-a512, stranding the 5th-floor request.
		if err := rm.CreateInstance(tx, "room-a512", map[string]predicate.Value{
			"floor": predicate.Int(5), "view": predicate.Bool(true),
		}); err != nil {
			return err
		}
		return rm.CreateInstance(tx, "room-b316", map[string]predicate.Value{
			"floor": predicate.Int(3), "view": predicate.Bool(true),
		})
	})
	view := grantOne(t, m, propertyReq("cust-view", "view = true"))
	if !view.Accepted {
		t.Fatal(view.Reason)
	}
	vi, _ := m.PromiseInfo(view.PromiseID)
	if vi.Assigned[0] != "room-a512" {
		t.Fatalf("first-fit should pick room-a512, got %q", vi.Assigned[0])
	}
	fifth := grantOne(t, m, propertyReq("cust-5th", "floor = 5"))
	if fifth.Accepted {
		t.Fatal("first-fit should lose this grant (matching mode would win it)")
	}
}

func TestNamedGrantDisplacesTentativeAllocation(t *testing.T) {
	// A named promise for room 512 arrives while a property promise
	// tentatively holds it; matching mode moves the property promise.
	m, _ := newManager(t, Config{PropertyMode: MatchingMode})
	seedHotel(t, m)
	view := grantOne(t, m, propertyReq("cust-view", "view = true"))
	if !view.Accepted {
		t.Fatal(view.Reason)
	}
	vi, _ := m.PromiseInfo(view.PromiseID)
	if vi.Assigned[0] != "room-316" {
		// Matching may have picked either room; force the interesting case
		// by requesting the one it picked.
	}
	target := vi.Assigned[0]
	named := grantOne(t, m, Request{Client: "vip", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Named(target)},
	}}})
	if !named.Accepted {
		t.Fatalf("named grant over tentative allocation rejected: %s", named.Reason)
	}
	vi2, _ := m.PromiseInfo(view.PromiseID)
	if vi2.Assigned[0] == target {
		t.Fatalf("property promise still holds %q after named displacement", target)
	}
	// Now both rooms are pinned; another named request for the other room
	// must fail.
	other := vi2.Assigned[0]
	named2 := grantOne(t, m, Request{Client: "vip2", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Named(other)},
	}}})
	if named2.Accepted {
		t.Fatal("displacing the last satisfying room should be rejected")
	}
}

func TestNamedGrantOverTentativeRejectedInFirstFit(t *testing.T) {
	m, _ := newManager(t, Config{PropertyMode: FirstFitMode})
	seedHotel(t, m)
	view := grantOne(t, m, propertyReq("cust-view", "view = true"))
	vi, _ := m.PromiseInfo(view.PromiseID)
	named := grantOne(t, m, Request{Client: "vip", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Named(vi.Assigned[0])},
	}}})
	if named.Accepted {
		t.Fatal("first-fit mode cannot displace tentative allocations")
	}
}

func TestPropertyPromiseReleaseFreesInstance(t *testing.T) {
	m, _ := newManager(t, Config{})
	seedHotel(t, m)
	a := grantOne(t, m, propertyReq("a", "view = true"))
	b := grantOne(t, m, propertyReq("b", "view = true"))
	if !a.Accepted || !b.Accepted {
		t.Fatal("setup")
	}
	c := grantOne(t, m, propertyReq("c", "view = true"))
	if c.Accepted {
		t.Fatal("no third room")
	}
	if _, err := m.Execute(bg, Request{Client: "a", Env: []EnvEntry{{PromiseID: a.PromiseID, Release: true}}}); err != nil {
		t.Fatal(err)
	}
	c2 := grantOne(t, m, propertyReq("c", "view = true"))
	if !c2.Accepted {
		t.Fatalf("release did not free the room: %s", c2.Reason)
	}
}

func TestPostActionRepairAfterPropertyChange(t *testing.T) {
	// An action changes a property of a tentatively assigned instance so it
	// no longer satisfies its predicate; matching mode repairs by moving
	// the promise to another instance.
	m, _ := newManager(t, Config{PropertyMode: MatchingMode})
	seedHotel(t, m)
	pr := grantOne(t, m, propertyReq("cust", "view = true"))
	info, _ := m.PromiseInfo(pr.PromiseID)
	assigned := info.Assigned[0]
	resp, err := m.Execute(bg, Request{
		Client: "maintenance",
		Action: func(ac *ActionContext) (any, error) {
			in, err := ac.Resources.Instance(ac.Tx, assigned)
			if err != nil {
				return nil, err
			}
			in.Props["view"] = predicate.Bool(false) // scaffolding goes up
			return nil, ac.Resources.PutInstance(ac.Tx, in)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ActionErr != nil {
		t.Fatalf("repairable change rejected: %v", resp.ActionErr)
	}
	info2, _ := m.PromiseInfo(pr.PromiseID)
	if info2.Assigned[0] == assigned {
		t.Fatalf("promise was not repaired away from %q", assigned)
	}
}

func TestPostActionRepairImpossibleRollsBack(t *testing.T) {
	m, _ := newManager(t, Config{PropertyMode: MatchingMode})
	seedHotel(t, m)
	a := grantOne(t, m, propertyReq("a", "view = true"))
	b := grantOne(t, m, propertyReq("b", "view = true"))
	if !a.Accepted || !b.Accepted {
		t.Fatal("setup")
	}
	// Both rooms are promised; removing the view from one breaks a promise
	// with no repair possible.
	resp, err := m.Execute(bg, Request{
		Client: "maintenance",
		Action: func(ac *ActionContext) (any, error) {
			in, err := ac.Resources.Instance(ac.Tx, "room-512")
			if err != nil {
				return nil, err
			}
			in.Props["view"] = predicate.Bool(false)
			return nil, ac.Resources.PutInstance(ac.Tx, in)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.ActionErr, ErrPromiseViolated) {
		t.Fatalf("ActionErr = %v, want ErrPromiseViolated", resp.ActionErr)
	}
	// Rolled back: room 512 still has its view.
	tx := m.Store().Begin(txn.Block)
	defer tx.Commit()
	in, _ := m.Resources().Instance(tx, "room-512")
	if v, _ := in.Props["view"].AsBool(); !v {
		t.Fatal("violating property change was not rolled back")
	}
}

func TestPropertyTakenUnderPromiseWithAtomicRelease(t *testing.T) {
	// The booking action takes the assigned room and releases the promise
	// atomically (§4 second requirement, property flavour).
	m, _ := newManager(t, Config{})
	seedHotel(t, m)
	pr := grantOne(t, m, propertyReq("cust", "floor = 5"))
	info, _ := m.PromiseInfo(pr.PromiseID)
	room := info.Assigned[0]
	resp, err := m.Execute(bg, Request{
		Client: "cust",
		Env:    []EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		Action: func(ac *ActionContext) (any, error) {
			return room, ac.Resources.SetStatus(ac.Tx, room, resource.Taken)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ActionErr != nil {
		t.Fatalf("booking failed: %v", resp.ActionErr)
	}
	tx := m.Store().Begin(txn.Block)
	defer tx.Commit()
	in, _ := m.Resources().Instance(tx, room)
	if in.Status != resource.Taken {
		t.Fatalf("room status = %v", in.Status)
	}
}

func TestMixedViewRequestAtomic(t *testing.T) {
	// One request mixing all three views is granted or rejected as a unit.
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		rm := m.Resources()
		if err := rm.CreatePool(tx, "budget", 500, nil); err != nil {
			return err
		}
		if err := rm.CreateInstance(tx, "car-vin1", map[string]predicate.Value{"kind": predicate.Str("car")}); err != nil {
			return err
		}
		return rm.CreateInstance(tx, "room-512", map[string]predicate.Value{"floor": predicate.Int(5)})
	})
	mixed := []Predicate{
		Quantity("budget", 400),
		Named("car-vin1"),
		MustProperty("floor = 5"),
	}
	pr := grantOne(t, m, Request{Client: "trip", PromiseRequests: []PromiseRequest{{Predicates: mixed}}})
	if !pr.Accepted {
		t.Fatalf("mixed grant rejected: %s", pr.Reason)
	}
	// Second identical request fails on every leg; nothing must leak.
	pr2 := grantOne(t, m, Request{Client: "trip2", PromiseRequests: []PromiseRequest{{Predicates: mixed}}})
	if pr2.Accepted {
		t.Fatal("resources double-promised")
	}
	probe := grantOne(t, m, requestQuantity("probe", "budget", 100))
	if !probe.Accepted {
		t.Fatalf("budget leaked by failed mixed request: %s", probe.Reason)
	}
}

func TestModifyPropertyPromiseWeakening(t *testing.T) {
	// §3.3 negotiation: client first holds "non-smoking with view and twin
	// beds", then settles for "twin beds" — an atomic modify.
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreateInstance(tx, "room-7", map[string]predicate.Value{
			"smoking": predicate.Bool(false), "view": predicate.Bool(true), "beds": predicate.Str("twin"),
		})
	})
	full := grantOne(t, m, propertyReq("cust", `not smoking and view and beds = "twin"`))
	if !full.Accepted {
		t.Fatal(full.Reason)
	}
	weak := grantOne(t, m, Request{Client: "cust", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{MustProperty(`beds = "twin"`)},
		Releases:   []string{full.PromiseID},
	}}})
	if !weak.Accepted {
		t.Fatalf("weakening modify rejected: %s", weak.Reason)
	}
	if old, _ := m.PromiseInfo(full.PromiseID); old.State != Released {
		t.Fatalf("old promise state = %v", old.State)
	}
	wi, _ := m.PromiseInfo(weak.PromiseID)
	if wi.Assigned[0] != "room-7" {
		t.Fatalf("weakened promise assigned %q", wi.Assigned[0])
	}
}
