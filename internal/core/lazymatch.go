package core

import (
	"repro/internal/predicate"
	"repro/internal/resource"
)

// lazyMatcher solves the property-view assignment problem incrementally.
//
// A full Hopcroft–Karp run per grant (the obvious reading of §5's
// "satisfiability check") costs O(L·R) predicate evaluations just to build
// the bipartite graph, making grant latency quadratic in the number of
// outstanding property promises. But grants arrive one at a time, and the
// promise manager already stores a valid assignment for every existing slot
// (Promise.Assigned). By the augmenting-path theorem, a maximum matching
// can be grown from any valid partial matching, so each grant only needs
// augmenting paths for the new (or invalidated) slots — with edges
// evaluated lazily, the common case touches O(R) predicates instead of
// O(L·R).
//
// internal/matching's Hopcroft–Karp remains the reference implementation;
// property-based tests in the core package cross-check the two.
type lazyMatcher struct {
	exprs []predicate.Expr
	cands []*resource.Instance
	// memo caches edge evaluations: 0 unknown, 1 edge, 2 no edge.
	memo []int8
}

func newLazyMatcher(exprs []predicate.Expr, cands []*resource.Instance) *lazyMatcher {
	return &lazyMatcher{
		exprs: exprs,
		cands: cands,
		memo:  make([]int8, len(exprs)*len(cands)),
	}
}

// edge reports whether candidate j satisfies slot i's predicate.
// Evaluation errors (e.g. the predicate references a property the instance
// lacks) mean "no edge".
func (lm *lazyMatcher) edge(i, j int) bool {
	k := i*len(lm.cands) + j
	if lm.memo[k] == 0 {
		ok, err := predicate.Eval(lm.exprs[i], lm.cands[j].Env())
		if err == nil && ok {
			lm.memo[k] = 1
		} else {
			lm.memo[k] = 2
		}
	}
	return lm.memo[k] == 1
}

// solve computes an assignment saturating every slot, seeded from initial
// (instance id per slot, "" for unassigned). It returns the assigned
// instance ids and whether saturation succeeded. initial entries that are
// not valid candidates or no longer satisfy their predicate are treated as
// unassigned.
func (lm *lazyMatcher) solve(initial []string) ([]string, bool) {
	nL, nR := len(lm.exprs), len(lm.cands)
	idxOf := make(map[string]int, nR)
	for j, in := range lm.cands {
		idxOf[in.ID] = j
	}
	assignL := make([]int, nL)
	matchR := make([]int, nR)
	for i := range assignL {
		assignL[i] = -1
	}
	for j := range matchR {
		matchR[j] = -1
	}
	// Seed from still-valid previous assignments.
	for i, inst := range initial {
		if i >= nL || inst == "" {
			continue
		}
		j, ok := idxOf[inst]
		if !ok || matchR[j] != -1 || !lm.edge(i, j) {
			continue
		}
		assignL[i] = j
		matchR[j] = i
	}
	// Augment each unassigned slot (Kuhn's algorithm with lazy edges).
	seen := make([]bool, nR)
	var try func(i int) bool
	try = func(i int) bool {
		for j := 0; j < nR; j++ {
			if seen[j] || !lm.edge(i, j) {
				continue
			}
			seen[j] = true
			if matchR[j] == -1 || try(matchR[j]) {
				assignL[i] = j
				matchR[j] = i
				return true
			}
		}
		return false
	}
	for i := 0; i < nL; i++ {
		if assignL[i] != -1 {
			continue
		}
		for k := range seen {
			seen[k] = false
		}
		if !try(i) {
			return nil, false
		}
	}
	out := make([]string, nL)
	for i, j := range assignL {
		out[i] = lm.cands[j].ID
	}
	return out, true
}
