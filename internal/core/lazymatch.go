package core

import (
	"repro/internal/matching"
	"repro/internal/predicate"
	"repro/internal/resource"
)

// lazyMatcher solves the single-shard property-view assignment problem
// incrementally.
//
// A full Hopcroft–Karp run per grant (the obvious reading of §5's
// "satisfiability check") costs O(L·R) predicate evaluations just to build
// the bipartite graph, making grant latency quadratic in the number of
// outstanding property promises. But grants arrive one at a time, and the
// promise manager already stores a valid assignment for every existing slot
// (Promise.Assigned), so each grant only needs augmenting paths for the new
// (or invalidated) slots — with edges evaluated lazily, the common case
// touches O(R) predicates instead of O(L·R).
//
// The augmenting machinery lives in matching.Incremental (shared with the
// cross-shard coordinator in sharded.go); this adapter contributes the edge
// oracle — predicate evaluation against instance property environments —
// and the translation between instance ids and vertex indices.
type lazyMatcher struct {
	cands []*resource.Instance
	inc   *matching.Incremental
}

func newLazyMatcher(exprs []predicate.Expr, cands []*resource.Instance) *lazyMatcher {
	lm := &lazyMatcher{cands: cands}
	lm.inc = matching.NewIncremental(len(exprs), len(cands), func(i, j int) bool {
		// Evaluation errors (e.g. the predicate references a property the
		// instance lacks) mean "no edge".
		ok, err := predicate.Eval(exprs[i], cands[j].Env())
		return err == nil && ok
	})
	return lm
}

// solve computes an assignment saturating every slot, seeded from initial
// (instance id per slot, "" for unassigned). It returns the assigned
// instance ids and whether saturation succeeded. initial entries that are
// not valid candidates or no longer satisfy their predicate are treated as
// unassigned.
func (lm *lazyMatcher) solve(initial []string) ([]string, bool) {
	idxOf := make(map[string]int, len(lm.cands))
	for j, in := range lm.cands {
		idxOf[in.ID] = j
	}
	seed := make([]int, len(initial))
	for i, inst := range initial {
		seed[i] = matching.Unmatched
		if inst == "" {
			continue
		}
		if j, ok := idxOf[inst]; ok {
			seed[i] = j
		}
	}
	assign, ok := lm.inc.Solve(seed)
	if !ok {
		return nil, false
	}
	out := make([]string, len(assign))
	for i, j := range assign {
		out[i] = lm.cands[j].ID
	}
	return out, true
}
