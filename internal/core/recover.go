package core

// This file is the startup half of the durability layer (durable.go holds
// the record vocabulary and commit-path hooks): OpenDurable and
// OpenDurableSharded build an engine whose state is the latest checkpoint
// plus a replay of the log tail, then keep it durable from that point on.
//
// Recovery order matters and is fixed here:
//
//  1. Restore the bus (sequence cursor, replay ring, composite directory)
//     from the bus checkpoint, then its log tail. Sequence numbers must be
//     back before any store replay stamps an epoch.
//  2. Replay each shard's store: checkpoint tables in one transaction, then
//     every retained commit record in its own transaction through the
//     normal commit path — so the candidate index, snapshots and sentinels
//     rebuild exactly as they were built the first time.
//  3. Open fresh log segments, write a generation marker, and attach the
//     persist hooks. From here every commit is logged again.
//  4. Re-arm the expiry heap from the recovered promise tables and advance
//     the id generators past every recovered id.
//  5. Take an initial checkpoint. This prunes the previous generation's
//     segments, which is what makes the fresh store's restarted version
//     numbering unambiguous on the next recovery (any record surviving from
//     before it sits behind a generation marker).
//  6. Arm the checkpoint cadence alarm.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/txn"
	"repro/internal/wal"
)

// manifestName is the data-directory manifest file.
const manifestName = "MANIFEST.json"

// Manifest pins a data directory's shape so an engine cannot reopen it with
// an incompatible shard count.
type Manifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// ReadManifest reads dir's manifest; (nil, nil) when the directory has
// none (fresh or absent directory). The daemon uses it to adopt an
// existing directory's shard count and to skip re-seeding.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("core: bad manifest in %s: %w", dir, err)
	}
	return m, nil
}

func writeManifest(dir string, shards int) error {
	data, err := json.Marshal(Manifest{Version: 1, Shards: shards})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(name)
		return err
	}
	return os.Rename(name, filepath.Join(dir, manifestName))
}

// durableShard pairs one shard's manager with its log and directory.
type durableShard struct {
	m   *Manager
	log *wal.Log
	dir string
}

// durableEngine is the checkpoint/recovery runtime owned by a durable
// Manager or ShardedManager.
type durableEngine struct {
	dir    string
	busDir string
	opts   DurabilityOptions
	clk    clock.Clock

	bus        *EventBus
	busLog     *wal.Log
	busPersist *persistLog
	shards     []durableShard
	sharded    *ShardedManager // nil for a single-store engine
	health     *engineHealth

	// mu serializes checkpoints against each other and against Close.
	mu        sync.Mutex
	alarmStop func()
	closed    bool

	// probeMu guards the degraded-mode re-probe alarm — deliberately not
	// mu: trips arrive from commit hooks holding the bus or publication
	// mutexes, which a concurrent checkpointer (holding mu) may be
	// waiting on.
	probeMu     sync.Mutex
	probeStop   func()
	probeClosed bool

	// checkpoints counts completed checkpoints (cadence tests read it).
	checkpoints atomic.Uint64
}

// shardDirName returns the per-shard log directory under the data dir. A
// single-store engine is shard 0, so a directory seeded by one layout can
// in principle be reopened by the other (the manifest still pins the
// count).
func shardDirName(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d", i))
}

// OpenDurable opens (or creates) a durable single-store Manager over
// opts.Dir: state is recovered from the directory, then every commit is
// logged to it. Config.Store must be nil — the store's contents are the
// directory's to dictate.
func OpenDurable(cfg Config, opts DurabilityOptions) (*Manager, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("core: DurabilityOptions.Dir is required")
	}
	if cfg.Store != nil {
		return nil, fmt.Errorf("core: OpenDurable needs a fresh store; Config.Store must be nil")
	}
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	d, err := openDurable(opts, []*Manager{m}, m.bus, nil, m.clk)
	if err != nil {
		return nil, err
	}
	m.durable = d
	return m, nil
}

// OpenDurableSharded is OpenDurable for a ShardedManager. The directory's
// manifest must agree with the configured shard count (use ReadManifest to
// adopt an existing directory's count).
func OpenDurableSharded(cfg ShardedConfig, opts DurabilityOptions) (*ShardedManager, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("core: DurabilityOptions.Dir is required")
	}
	s, err := NewSharded(cfg)
	if err != nil {
		return nil, err
	}
	mgrs := make([]*Manager, len(s.shards))
	for i, sh := range s.shards {
		mgrs[i] = sh.m
	}
	d, err := openDurable(opts, mgrs, s.bus, s, s.clk)
	if err != nil {
		return nil, err
	}
	s.durable = d
	return s, nil
}

// openDurable runs the recovery sequence described at the top of the file
// and returns the armed runtime.
func openDurable(opts DurabilityOptions, mgrs []*Manager, bus *EventBus, s *ShardedManager, clk clock.Clock) (*durableEngine, error) {
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = DefaultCheckpointEvery
	}
	if opts.ReprobeEvery == 0 {
		opts.ReprobeEvery = DefaultReprobeEvery
	}
	dir := opts.Dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	mf, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	if mf != nil && mf.Shards != len(mgrs) {
		return nil, fmt.Errorf("core: data directory %s holds %d shard(s), engine configured with %d", dir, mf.Shards, len(mgrs))
	}
	if mf == nil {
		if err := writeManifest(dir, len(mgrs)); err != nil {
			return nil, err
		}
	}

	d := &durableEngine{
		dir: dir, busDir: filepath.Join(dir, "bus"),
		opts: opts, clk: clk, bus: bus, sharded: s,
		health: &engineHealth{},
	}
	d.health.onTrip = d.armReprobe
	for _, m := range mgrs {
		m.health = d.health
	}
	if s != nil {
		s.health = d.health
	}

	// 1. Bus first: sequence numbering must be restored before any store
	// replay publishes snapshots stamped with epochs.
	if err := recoverBus(bus, s, d.busDir); err != nil {
		return nil, fmt.Errorf("core: recovering event log: %w", err)
	}

	// 2. Per-shard store replay.
	var maxEpoch uint64
	for i, m := range mgrs {
		sdir := shardDirName(dir, i)
		epoch, err := recoverStore(m, sdir)
		if err != nil {
			return nil, fmt.Errorf("core: recovering shard %d: %w", i, err)
		}
		if epoch > maxEpoch {
			maxEpoch = epoch
		}
		d.shards = append(d.shards, durableShard{m: m, dir: sdir})
	}
	// A commit whose events record was lost in the crash must still never
	// see its epoch's sequence numbers reissued.
	bus.ensureSeqAtLeast(maxEpoch)

	// 3. Fresh segments, generation markers, persist hooks.
	wopts := wal.Options{Policy: opts.Sync, SyncEvery: opts.SyncEvery}
	if d.busLog, err = wal.OpenLog(d.busDir, wopts); err != nil {
		return nil, err
	}
	d.busPersist = &persistLog{log: d.busLog}
	genRec, err := json.Marshal(&walRecord{T: recGen})
	if err != nil {
		return nil, err
	}
	for i := range d.shards {
		lg, err := wal.OpenLog(d.shards[i].dir, wopts)
		if err == nil {
			err = lg.Append(genRec)
		}
		if err != nil {
			d.closeLogs()
			return nil, err
		}
		d.shards[i].log = lg
		p := &persistLog{log: lg, health: d.health}
		d.shards[i].m.persist = p
		d.shards[i].m.busPersist = d.busPersist
		p.active.Store(true)
	}
	d.busPersist.health = d.health
	d.busPersist.active.Store(true)
	bus.SetTap(d.busPersist.logEvents)
	if s != nil {
		s.busPersist = d.busPersist
	}

	// 4. Re-arm expiry and advance id generators. Past-due promises fire
	// (asynchronously) through the normal expiry path, which is now logged.
	for _, sh := range d.shards {
		snap := sh.m.store.Snapshot()
		_ = snap.Scan(TablePromises, func(key string, row txn.Row) bool {
			p := &row.(*promiseRow).p
			if p.State == Active {
				sh.m.trackExpiry(p.ID, p.Expires)
			}
			// Observe, not a raw suffix scan: a shard's table can hold
			// promises migrated in from other shards, whose suffixes must
			// not advance this shard's generator.
			sh.m.promiseIDs.Observe(key)
			return true
		})
		_ = snap.Scan(TablePromisesDone, func(key string, _ txn.Row) bool {
			sh.m.promiseIDs.Observe(key)
			return true
		})
	}

	// 5. Initial checkpoint: prunes the recovered generation's segments so
	// the fresh store's version numbering owns the retained log.
	if err := d.Checkpoint(); err != nil {
		d.closeLogs()
		return nil, fmt.Errorf("core: initial checkpoint: %w", err)
	}

	// 6. Cadence.
	d.armCadence()
	return d, nil
}

// recoverStore rebuilds one shard's store from its directory: checkpoint
// tables in one transaction, then each retained commit record in its own,
// all through the normal commit path. It returns the highest epoch seen on
// a replayed record (zero when none).
func recoverStore(m *Manager, dir string) (maxEpoch uint64, err error) {
	_, _, payload, err := wal.LatestCheckpoint(dir)
	if err != nil {
		return 0, err
	}
	var threshold uint64 // replay skips records at or below this version
	if payload != nil {
		var ck storeCheckpoint
		if err := json.Unmarshal(payload, &ck); err != nil {
			return 0, fmt.Errorf("decoding checkpoint: %w", err)
		}
		threshold = ck.Ver
		tx := m.store.Begin(txn.Block)
		for tbl, rows := range ck.Tables {
			for key, raw := range rows {
				row, err := decodeRow(tbl, raw)
				if err == nil {
					err = tx.Put(tbl, key, row)
				}
				if err != nil {
					_ = tx.Abort()
					return 0, fmt.Errorf("restoring %s/%s: %w", tbl, key, err)
				}
			}
		}
		if err := tx.Commit(); err != nil {
			return 0, err
		}
	}
	_, err = wal.Replay(dir, func(p []byte) error {
		var rec walRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			return err
		}
		switch rec.T {
		case recGen:
			// Everything after this marker was written by a later engine
			// generation, on top of exactly the state replay has just
			// rebuilt; its version numbering restarted, so the checkpoint
			// threshold no longer applies.
			threshold = 0
			return nil
		case recCommit:
		default:
			return nil
		}
		if rec.Epoch > maxEpoch {
			maxEpoch = rec.Epoch
		}
		if rec.Ver <= threshold {
			return nil // already inside the checkpoint
		}
		tx := m.store.Begin(txn.Block)
		for _, ch := range rec.Changes {
			var err error
			if ch.Row == nil {
				if err = tx.Delete(ch.Table, ch.Key); errors.Is(err, txn.ErrNotFound) {
					err = nil // delete of a row an earlier record never created here
				}
			} else {
				var row txn.Row
				if row, err = decodeRow(ch.Table, ch.Row); err == nil {
					err = tx.Put(ch.Table, ch.Key, row)
				}
			}
			if err != nil {
				_ = tx.Abort()
				return fmt.Errorf("replaying %s/%s: %w", ch.Table, ch.Key, err)
			}
		}
		return tx.Commit()
	})
	return maxEpoch, err
}

// recoverBus rebuilds the shared bus — and, sharded, the composite
// directory — from the bus checkpoint and log tail. Replay is idempotent:
// events at or below the restored cursor are skipped and directory records
// are plain overwrites.
func recoverBus(bus *EventBus, s *ShardedManager, dir string) error {
	_, _, payload, err := wal.LatestCheckpoint(dir)
	if err != nil {
		return err
	}
	if payload != nil {
		var ck busCheckpoint
		if err := json.Unmarshal(payload, &ck); err != nil {
			return fmt.Errorf("decoding bus checkpoint: %w", err)
		}
		bus.restore(ck.Seq, ck.Ring)
		if s != nil {
			for i := range ck.Composites {
				s.restoreComposite(&ck.Composites[i])
			}
			for id, shard := range ck.Moved {
				s.moved.Store(id, shard)
			}
			s.compIDs.EnsureAtLeast(ck.CompNext)
		}
	}
	_, err = wal.Replay(dir, func(p []byte) error {
		var rec walRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			return err
		}
		switch rec.T {
		case recEvents:
			bus.restoreEvents(rec.Events)
		case recDir:
			if s != nil {
				s.applyDirRecord(&rec)
			}
		}
		return nil
	})
	return err
}

// restoreComposite re-installs one checkpointed composite-directory entry.
func (s *ShardedManager) restoreComposite(wc *walComposite) {
	c := compositeFromWal(wc)
	s.dirMu.Lock()
	for _, part := range c.parts {
		s.partOf[part.id] = wc.ID
	}
	s.dirMu.Unlock()
	s.dir.Store(wc.ID, c)
	s.compIDs.Observe(wc.ID)
}

// applyDirRecord replays one logged directory mutation.
func (s *ShardedManager) applyDirRecord(rec *walRecord) {
	switch rec.Op {
	case dirAdd:
		if rec.Comp != nil {
			s.restoreComposite(rec.Comp)
		}
	case dirMove:
		if rec.Shard < 0 {
			// A federated migrate-out: the slot left this node entirely,
			// so its moved entry (if any) is retired rather than re-homed.
			s.moved.Delete(rec.Promise)
			return
		}
		s.moved.Store(rec.Promise, rec.Shard)
		s.dirMu.Lock()
		cid, ok := s.partOf[rec.Promise]
		s.dirMu.Unlock()
		if !ok {
			return
		}
		v, ok := s.dir.Load(cid)
		if !ok {
			return
		}
		old := v.(*composite)
		fresh := &composite{
			client:  old.client,
			expires: old.expires,
			parts:   append([]compositePart(nil), old.parts...),
		}
		for i := range fresh.parts {
			if fresh.parts[i].id == rec.Promise {
				fresh.parts[i].shard = rec.Shard
			}
		}
		s.dir.Store(cid, fresh)
	case dirDrop:
		s.dropComposite(rec.ID)
	}
}

// Checkpoint serializes the engine's current state into the data directory
// and truncates the logs behind it. Safe to call while the engine serves
// requests: logs rotate first, state is captured after, so every pruned
// record is covered by the written checkpoint.
func (d *durableEngine) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("core: engine is closed")
	}
	return d.checkpointLocked()
}

func (d *durableEngine) checkpointLocked() error {
	// Rotate every log before capturing anything: a record in a pre-
	// rotation segment was appended after its snapshot (or bus/directory
	// mutation) published, so state captured now covers it.
	busKeep, err := d.busLog.Rotate()
	if err != nil {
		return err
	}
	shardKeep := make([]uint64, len(d.shards))
	for i := range d.shards {
		if shardKeep[i], err = d.shards[i].log.Rotate(); err != nil {
			return err
		}
	}
	for i := range d.shards {
		sh := d.shards[i]
		snap := sh.m.store.Snapshot()
		payload, err := encodeStoreCheckpoint(snap)
		if err != nil {
			return err
		}
		// Checkpoints are named by the segment they cover up to — the one
		// monotonic ordinal a directory has across process generations
		// (store versions restart on a fresh store; snapshot epochs are not
		// monotonic around engine construction).
		if err := wal.WriteCheckpoint(sh.dir, shardKeep[i], snap.Version(), payload); err != nil {
			return err
		}
		if err := sh.log.RemoveSegmentsBefore(shardKeep[i]); err != nil {
			return err
		}
	}
	seq, ring := d.bus.snapshotRing()
	ck := busCheckpoint{Seq: seq, Ring: ring}
	if s := d.sharded; s != nil {
		for id, c := range s.snapshotDir() {
			ck.Composites = append(ck.Composites, *compositeToWal(id, c))
		}
		moved := make(map[string]int)
		s.moved.Range(func(k, v any) bool {
			moved[k.(string)] = v.(int)
			return true
		})
		if len(moved) > 0 {
			ck.Moved = moved
		}
		ck.CompNext = s.compIDs.Count()
	}
	payload, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	if err := wal.WriteCheckpoint(d.busDir, busKeep, seq, payload); err != nil {
		return err
	}
	if err := d.busLog.RemoveSegmentsBefore(busKeep); err != nil {
		return err
	}
	d.checkpoints.Add(1)
	return nil
}

// armCadence keeps one clock alarm scheduled for the next automatic
// checkpoint. Disabled when the cadence is negative or the clock cannot
// alarm.
func (d *durableEngine) armCadence() {
	if d.opts.CheckpointEvery <= 0 {
		return
	}
	al, ok := d.clk.(clock.Alarmer)
	if !ok {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.alarmStop = al.AfterFunc(d.clk.Now().Add(d.opts.CheckpointEvery), func() {
		// Best-effort: a failed cadence checkpoint leaves the previous one
		// in place; logs simply grow until one succeeds.
		_ = d.Checkpoint()
		d.armCadence()
	})
}

// armReprobe keeps one clock alarm scheduled for the next degraded-mode
// log probe. It is the engineHealth onTrip hook, so the first persistence
// failure of an episode arms it; each failed probe re-arms. Disabled when
// the cadence is negative or the clock cannot alarm.
func (d *durableEngine) armReprobe() {
	if d.opts.ReprobeEvery <= 0 {
		return
	}
	al, ok := d.clk.(clock.Alarmer)
	if !ok {
		return
	}
	d.probeMu.Lock()
	defer d.probeMu.Unlock()
	if d.probeClosed {
		return
	}
	d.probeStop = al.AfterFunc(d.clk.Now().Add(d.opts.ReprobeEvery), func() {
		if d.reprobe() {
			return
		}
		d.armReprobe()
	})
}

// reprobe tests whether the logs accept writes again: one probe record
// appended and synced per log, then a full checkpoint. Commits that kept
// mutating memory while their appends failed (expiries, the request that
// tripped the latch) left holes in the log; the checkpoint recaptures the
// complete state, so the latches can be cleared without a future recovery
// ever replaying an incomplete history. Reports whether service was
// restored.
func (d *durableEngine) reprobe() bool {
	d.probeMu.Lock()
	closed := d.probeClosed
	d.probeMu.Unlock()
	if closed {
		return true
	}
	rec, err := json.Marshal(&walRecord{T: recProbe})
	if err != nil {
		return false
	}
	probe := func(l *wal.Log) bool {
		return l.Append(rec) == nil && l.Sync() == nil
	}
	for _, sh := range d.shards {
		if !probe(sh.log) {
			return false
		}
	}
	if !probe(d.busLog) {
		return false
	}
	if err := d.Checkpoint(); err != nil {
		return false
	}
	for _, sh := range d.shards {
		sh.m.persist.clearLatched()
	}
	d.busPersist.clearLatched()
	d.health.clear()
	return true
}

// close flushes everything, writes a final checkpoint, and closes the logs.
// Idempotent. Callers should have quiesced requests first: a commit racing
// past the final state capture survives only in memory.
func (d *durableEngine) close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	stop := d.alarmStop
	d.alarmStop = nil
	d.mu.Unlock()
	if stop != nil {
		stop()
	}
	d.probeMu.Lock()
	d.probeClosed = true
	pstop := d.probeStop
	d.probeStop = nil
	d.probeMu.Unlock()
	if pstop != nil {
		pstop()
	}
	// Quiesce the engine's own background activity before the final
	// capture: deadline alarms would otherwise commit into a closed log.
	for _, sh := range d.shards {
		sh.m.exp.shutdown()
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	// Deactivate persistence first, then capture: everything committed up
	// to the capture lands in the final checkpoint whether or not its
	// record made the log, and nothing appends to the rotated logs after.
	for _, sh := range d.shards {
		sh.m.persist.active.Store(false)
	}
	d.busPersist.active.Store(false)
	d.bus.SetTap(nil)
	firstErr := d.checkpointLocked()
	d.closed = true
	for _, sh := range d.shards {
		if err := sh.log.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := d.busLog.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// closeLogs is the open-path error cleanup: close whatever logs opened.
func (d *durableEngine) closeLogs() {
	for _, sh := range d.shards {
		if sh.log != nil {
			_ = sh.log.Close()
		}
	}
	if d.busLog != nil {
		_ = d.busLog.Close()
	}
}

// Checkpoint forces a checkpoint of a durable Manager; see
// DurabilityOptions.CheckpointEvery for the automatic cadence.
// ErrNotDurable without a data directory.
func (m *Manager) Checkpoint() error {
	if m.durable == nil {
		return ErrNotDurable
	}
	return m.durable.Checkpoint()
}

// Close flushes state to the data directory (final checkpoint) and closes
// its logs. A Manager without a data directory closes trivially. See
// promises.Engine.
func (m *Manager) Close() error {
	if m.durable == nil {
		m.exp.shutdown()
		return nil
	}
	return m.durable.close()
}

// Checkpoint forces a checkpoint of a durable ShardedManager; ErrNotDurable
// without a data directory.
func (s *ShardedManager) Checkpoint() error {
	if s.durable == nil {
		return ErrNotDurable
	}
	return s.durable.Checkpoint()
}

// Close flushes state to the data directory (final checkpoint) and closes
// its logs. A ShardedManager without a data directory closes trivially. See
// promises.Engine.
func (s *ShardedManager) Close() error {
	if s.durable == nil {
		for _, sh := range s.shards {
			sh.m.exp.shutdown()
		}
		return nil
	}
	return s.durable.close()
}
