package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/txn"
)

// cancellingSupplier grants upstream promises and fires a callback on the
// first request — the deterministic hook the cancellation tests use to kill
// the context while a cross-shard pipeline is mid-reserve.
type cancellingSupplier struct {
	onRequest func()
	requests  atomic.Int64
	releases  atomic.Int64
	nextID    atomic.Int64
}

func (s *cancellingSupplier) RequestPromise(_ context.Context, pool string, qty int64, d time.Duration) (string, error) {
	if s.requests.Add(1) == 1 && s.onRequest != nil {
		s.onRequest()
	}
	return fmt.Sprintf("up-%d", s.nextID.Add(1)), nil
}
func (s *cancellingSupplier) ReleasePromise(context.Context, string) error {
	s.releases.Add(1)
	return nil
}
func (s *cancellingSupplier) ConsumePromise(context.Context, string, int64) error { return nil }

// twoShardPools returns two pool names owned by different shards of s.
func twoShardPools(t *testing.T, s *ShardedManager) (a, b string) {
	t.Helper()
	a = "cancel-pool-0"
	for i := 1; ; i++ {
		b = fmt.Sprintf("cancel-pool-%d", i)
		if s.ShardOf(b) != s.ShardOf(a) {
			return a, b
		}
		if i > 1000 {
			t.Fatal("could not find pools on distinct shards")
		}
	}
}

// TestCancelledContextAbortsBeforeAnyWork: a context dead on arrival never
// reaches the store.
func TestCancelledContextAbortsBeforeAnyWork(t *testing.T) {
	s, err := NewSharded(ShardedConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePool("p", 10, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Execute(ctx, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("p", 1)},
	}}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Execute on dead context = %v, want context.Canceled", err)
	}
	if st := s.Stats(); st.Grants != 0 {
		t.Fatalf("grants after cancelled request = %d", st.Grants)
	}
}

// TestCancelMidPipelineAbortsBeforeConfirm is the acceptance test for
// context plumbing through the reserve/confirm pipeline: the context dies
// while one shard is reserving (inside its supplier call), so the
// cross-shard grant must abort every open reservation before any Confirm —
// releases spring back, upstream promises are compensated, pool capacity is
// untouched and the audit stays healthy.
func TestCancelMidPipelineAbortsBeforeConfirm(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sup := &cancellingSupplier{onRequest: cancel}

	s, err := NewSharded(ShardedConfig{
		Shards:    4,
		Suppliers: map[string]Supplier{"cancel-pool-0": sup},
	})
	if err != nil {
		t.Fatal(err)
	}
	poolA, poolB := twoShardPools(t, s)
	if err := s.CreatePool(poolA, 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePool(poolB, 5, nil); err != nil {
		t.Fatal(err)
	}

	// The request spans both shards; poolA falls short by 3, so its shard's
	// reservation calls the supplier — which cancels the context mid-flight.
	_, err = s.Execute(ctx, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity(poolA, 5), Quantity(poolB, 5)},
	}}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-pipeline cancel: err = %v, want context.Canceled", err)
	}
	if sup.requests.Load() != 1 {
		t.Fatalf("supplier requests = %d, want 1", sup.requests.Load())
	}
	if sup.releases.Load() != 1 {
		t.Fatalf("upstream promise not compensated: releases = %d, want 1", sup.releases.Load())
	}

	// No state may have leaked: both pools still grant their full capacity.
	for _, probe := range []struct {
		pool string
		qty  int64
	}{{poolA, 2}, {poolB, 5}} {
		resp, err := s.Execute(context.Background(), Request{Client: "probe", PromiseRequests: []PromiseRequest{{
			Predicates: []Predicate{Quantity(probe.pool, probe.qty)},
		}}})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Promises[0].Accepted {
			t.Fatalf("capacity leaked on %s: %s", probe.pool, resp.Promises[0].Reason)
		}
	}
	rep, err := s.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("audit unhealthy after cancelled pipeline: %s", rep)
	}
}

// TestCancelMidPipelineRestoresReleases: a §4 upgrade whose pipeline is
// cancelled mid-reserve must leave the released promise in force.
func TestCancelMidPipelineRestoresReleases(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sup := &cancellingSupplier{onRequest: cancel}

	s, err := NewSharded(ShardedConfig{
		Shards:    4,
		Suppliers: map[string]Supplier{"cancel-pool-0": sup},
	})
	if err != nil {
		t.Fatal(err)
	}
	poolA, poolB := twoShardPools(t, s)
	if err := s.CreatePool(poolA, 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePool(poolB, 5, nil); err != nil {
		t.Fatal(err)
	}

	// Hold poolB, then upgrade across shards releasing the hold; the
	// pipeline dies inside poolA's supplier call.
	resp, err := s.Execute(context.Background(), Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity(poolB, 4)},
	}}})
	if err != nil || !resp.Promises[0].Accepted {
		t.Fatalf("seed grant: %v %+v", err, resp)
	}
	held := resp.Promises[0].PromiseID

	_, err = s.Execute(ctx, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity(poolA, 5), Quantity(poolB, 5)},
		Releases:   []string{held},
	}}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled upgrade: err = %v, want context.Canceled", err)
	}

	// The released promise sprang back untouched.
	if errs := checkB(t, s, "c", []string{held}); errs[0] != nil {
		t.Fatalf("release target consumed by cancelled upgrade: %v", errs[0])
	}
	// And its hold still counts: only 1 unit of poolB is free.
	resp, err = s.Execute(context.Background(), Request{Client: "probe", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity(poolB, 2)},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Promises[0].Accepted {
		t.Fatal("cancelled upgrade leaked the released promise's hold")
	}
	rep, err := s.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("audit unhealthy: %s", rep)
	}
}

// TestCancelGrantBatch: a cancelled context fails the batch wholesale with
// no partial grants surviving.
func TestCancelGrantBatch(t *testing.T) {
	s, err := NewSharded(ShardedConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreatePool("p", 10, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.GrantBatch(ctx, "c", []PromiseRequest{
		{Predicates: []Predicate{Quantity("p", 1)}},
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("GrantBatch on dead context = %v", err)
	}
	if _, err := s.CheckBatch(ctx, "c", []string{"prm0-1"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("CheckBatch on dead context = %v", err)
	}
	if st := s.Stats(); st.Grants != 0 {
		t.Fatalf("grants = %d after cancelled batch", st.Grants)
	}
}

// TestReleaseMethod covers the Engine Release convenience on both local
// engines: atomic multi-id hand-back and all-or-nothing failure.
func TestReleaseMethod(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() (interface {
			Execute(context.Context, Request) (*Response, error)
			Release(ctx context.Context, client string, ids ...string) error
		}, error)
	}{
		{"manager", func() (interface {
			Execute(context.Context, Request) (*Response, error)
			Release(ctx context.Context, client string, ids ...string) error
		}, error) {
			m, err := New(Config{})
			if err != nil {
				return nil, err
			}
			tx := m.Store().Begin(txn.Block)
			if err := m.Resources().CreatePool(tx, "p", 10, nil); err != nil {
				return nil, err
			}
			return m, tx.Commit()
		}},
		{"sharded", func() (interface {
			Execute(context.Context, Request) (*Response, error)
			Release(ctx context.Context, client string, ids ...string) error
		}, error) {
			s, err := NewSharded(ShardedConfig{Shards: 4})
			if err != nil {
				return nil, err
			}
			return s, s.CreatePool("p", 10, nil)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			var ids []string
			for i := 0; i < 2; i++ {
				resp, err := e.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
					Predicates: []Predicate{Quantity("p", 3)},
				}}})
				if err != nil || !resp.Promises[0].Accepted {
					t.Fatalf("grant %d: %v %+v", i, err, resp)
				}
				ids = append(ids, resp.Promises[0].PromiseID)
			}
			// Releasing with one dead id is all-or-nothing.
			if err := e.Release(bg, "c", ids[0], "prm-ghost"); !errors.Is(err, ErrPromiseNotFound) {
				t.Fatalf("release with ghost id = %v, want not-found", err)
			}
			// Both still held: 10 - 6 leaves 4, so 5 must fail.
			resp, err := e.Execute(bg, Request{Client: "probe", PromiseRequests: []PromiseRequest{{
				Predicates: []Predicate{Quantity("p", 5)},
			}}})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Promises[0].Accepted {
				t.Fatal("failed Release dropped a hold")
			}
			if err := e.Release(bg, "c", ids...); err != nil {
				t.Fatalf("atomic release: %v", err)
			}
			resp, err = e.Execute(bg, Request{Client: "probe", PromiseRequests: []PromiseRequest{{
				Predicates: []Predicate{Quantity("p", 10)},
			}}})
			if err != nil || !resp.Promises[0].Accepted {
				t.Fatalf("capacity not restored: %v %+v", err, resp)
			}
			// Released ids answer with the precise sentinel.
			if err := e.Release(bg, "c", ids[0]); !errors.Is(err, ErrPromiseReleased) {
				t.Fatalf("double release = %v, want promise-released", err)
			}
		})
	}
}
