package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestShardedStressConservation hammers one ShardedManager from many
// goroutines across multiple resource pools and asserts the paper's
// conservation invariants at the end: escrow reservations never exceeded
// capacity (no over-grant), every consumed unit is accounted for in the
// final pool levels, no holds leaked, and the full audit is healthy.
// Run under -race: this is the test that guards the sharding protocol.
func TestShardedStressConservation(t *testing.T) {
	const (
		workers  = 8
		iters    = 150
		numPools = 6
		perPool  = 1 << 20
	)
	s, err := NewSharded(ShardedConfig{Shards: testShards(4), Clock: nil, DefaultDuration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	pools := make([]string, numPools)
	for i := range pools {
		pools[i] = fmt.Sprintf("pool-%d", i)
		if err := s.CreatePool(pools[i], perPool, nil); err != nil {
			t.Fatal(err)
		}
	}
	var consumed [numPools]atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			client := fmt.Sprintf("worker-%d", w)
			for it := 0; it < iters; it++ {
				switch rng.Intn(3) {
				case 0:
					// Multi-pool (usually cross-shard) grant, then release
					// the composite.
					i := rng.Intn(numPools)
					j := (i + 1 + rng.Intn(numPools-1)) % numPools
					q1, q2 := int64(1+rng.Intn(3)), int64(1+rng.Intn(3))
					resp, err := s.Execute(bg, Request{Client: client, PromiseRequests: []PromiseRequest{{
						Predicates: []Predicate{Quantity(pools[i], q1), Quantity(pools[j], q2)},
					}}})
					if err != nil {
						t.Error(err)
						return
					}
					pr := resp.Promises[0]
					if !pr.Accepted {
						t.Errorf("grant rejected with ample capacity: %s", pr.Reason)
						return
					}
					if _, err := s.Execute(bg, Request{Client: client, Env: []EnvEntry{{PromiseID: pr.PromiseID, Release: true}}}); err != nil {
						t.Error(err)
						return
					}
				case 1:
					// Single-pool grant, then consume under the promise:
					// the action draws down the pool atomically with the
					// release (§4, second requirement).
					i := rng.Intn(numPools)
					q := int64(1 + rng.Intn(3))
					resp, err := s.Execute(bg, Request{Client: client, PromiseRequests: []PromiseRequest{{
						Predicates: []Predicate{Quantity(pools[i], q)},
					}}})
					if err != nil {
						t.Error(err)
						return
					}
					pr := resp.Promises[0]
					if !pr.Accepted {
						t.Errorf("grant rejected with ample capacity: %s", pr.Reason)
						return
					}
					pool := pools[i]
					out, err := s.Execute(bg, Request{
						Client:    client,
						Env:       []EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
						Resources: []string{pool},
						Action: func(ac *ActionContext) (any, error) {
							return ac.Resources.AdjustPool(ac.Tx, pool, -q)
						},
					})
					if err != nil {
						t.Error(err)
						return
					}
					if out.ActionErr != nil {
						t.Errorf("consume failed: %v", out.ActionErr)
						return
					}
					consumed[i].Add(q)
				case 2:
					// Batched grants across shards, released in one
					// cross-shard message.
					reqs := make([]PromiseRequest, 4)
					for k := range reqs {
						reqs[k] = PromiseRequest{Predicates: []Predicate{Quantity(pools[rng.Intn(numPools)], 1)}}
					}
					resps, err := s.GrantBatch(bg, client, reqs)
					if err != nil {
						t.Error(err)
						return
					}
					var env []EnvEntry
					for k, pr := range resps {
						if !pr.Accepted {
							t.Errorf("batch grant %d rejected: %s", k, pr.Reason)
							return
						}
						env = append(env, EnvEntry{PromiseID: pr.PromiseID, Release: true})
					}
					if _, err := s.Execute(bg, Request{Client: client, Env: env}); err != nil {
						t.Error(err)
						return
					}
				}
				if it%37 == 0 {
					if err := s.Sweep(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Conservation: every pool's final level is its start minus exactly
	// what was consumed, and nothing is left reserved.
	for i, pool := range pools {
		lvl, err := s.PoolLevel(pool)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(perPool) - consumed[i].Load()
		if lvl != want {
			t.Errorf("pool %s level = %d, want %d (consumed %d)", pool, lvl, want, consumed[i].Load())
		}
		free := grantQty(t, s, "final", Quantity(pool, want))
		if !free.Accepted {
			t.Errorf("pool %s has leaked reservations: %s", pool, free.Reason)
		}
	}
	active, err := s.ActivePromises()
	if err != nil {
		t.Fatal(err)
	}
	if len(active) != numPools { // the "final" probes above
		t.Errorf("%d active promises remain, want %d probes", len(active), numPools)
	}
	mustHealthy(t, s)
}

// TestShardedStressUpgradeChurn races §4 upgrades through the two-phase
// reserve/confirm pipeline: every worker continuously replaces its
// cross-shard composite with a same-size successor ("release N, promise N
// from the freed N"), with the pools sized so tightly that any
// double-count of tentatively-freed capacity over-grants and any leaked
// reservation starves a neighbour. Interleaved impossible upgrades force
// mid-pipeline aborts whose rollback must leave the old promise intact.
// Run under -race: this is the test that guards the reservation protocol.
func TestShardedStressUpgradeChurn(t *testing.T) {
	const (
		workers = 8
		iters   = 120
		hold    = 3
	)
	s, err := NewSharded(ShardedConfig{Shards: testShards(4), DefaultDuration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Two pools, pinned to different shards, sized exactly to the workers'
	// aggregate holds: zero slack for conservation bugs to hide in.
	poolA := nameOnShard(t, s, 0, "churn-a")
	poolB := nameOnShard(t, s, 2, "churn-b")
	for _, pool := range []string{poolA, poolB} {
		if err := s.CreatePool(pool, workers*hold, nil); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + w)))
			client := fmt.Sprintf("churner-%d", w)
			seed, err := s.Execute(bg, Request{Client: client, PromiseRequests: []PromiseRequest{{
				Predicates: []Predicate{Quantity(poolA, hold), Quantity(poolB, hold)},
			}}})
			if err != nil {
				t.Error(err)
				return
			}
			cur := seed.Promises[0]
			if !cur.Accepted {
				t.Errorf("initial grant rejected: %s", cur.Reason)
				return
			}
			for it := 0; it < iters; it++ {
				if rng.Intn(5) == 0 {
					// Impossible upgrade: asks for more than the whole pool,
					// so one shard reserves (tentatively freeing this
					// worker's holds) and the other aborts the pipeline.
					resp, err := s.Execute(bg, Request{Client: client, PromiseRequests: []PromiseRequest{{
						Predicates: []Predicate{Quantity(poolA, hold), Quantity(poolB, workers*hold+1)},
						Releases:   []string{cur.PromiseID},
					}}})
					if err != nil {
						t.Error(err)
						return
					}
					if resp.Promises[0].Accepted {
						t.Error("upgrade granted beyond pool capacity")
						return
					}
					if errs, _ := s.CheckBatch(bg, client, []string{cur.PromiseID}); errs[0] != nil {
						t.Errorf("aborted upgrade consumed the release target: %v", errs[0])
						return
					}
					continue
				}
				// Same-size upgrade: only satisfiable because the release is
				// applied tentatively inside the reservation.
				resp, err := s.Execute(bg, Request{Client: client, PromiseRequests: []PromiseRequest{{
					Predicates: []Predicate{Quantity(poolA, hold), Quantity(poolB, hold)},
					Releases:   []string{cur.PromiseID},
				}}})
				if err != nil {
					t.Error(err)
					return
				}
				next := resp.Promises[0]
				if !next.Accepted {
					t.Errorf("same-size upgrade rejected: %s", next.Reason)
					return
				}
				cur = next
			}
			if _, err := s.Execute(bg, Request{Client: client, Env: []EnvEntry{{PromiseID: cur.PromiseID, Release: true}}}); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Conservation: every hold was released, so both pools must grant
	// their full capacity again.
	if full := grantQty(t, s, "final", Quantity(poolA, workers*hold), Quantity(poolB, workers*hold)); !full.Accepted {
		t.Errorf("pipeline leaked reservations: %s", full.Reason)
	}
	mustHealthy(t, s)
}

// TestShardedStressNoDoubleGrant races many goroutines over a small set of
// named instances spread across shards: at any moment at most one client
// may hold each instance. A CAS-guarded shadow flag detects double-grants.
func TestShardedStressNoDoubleGrant(t *testing.T) {
	const (
		workers   = 8
		iters     = 200
		instances = 16
	)
	s, err := NewSharded(ShardedConfig{Shards: testShards(4), DefaultDuration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, instances)
	for i := range names {
		names[i] = fmt.Sprintf("seat-%d", i)
		if err := s.CreateInstance(names[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	var held [instances]atomic.Int32

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			client := fmt.Sprintf("racer-%d", w)
			for it := 0; it < iters; it++ {
				k := rng.Intn(instances)
				resp, err := s.Execute(bg, Request{Client: client, PromiseRequests: []PromiseRequest{{
					Predicates: []Predicate{Named(names[k])},
				}}})
				if err != nil {
					t.Error(err)
					return
				}
				pr := resp.Promises[0]
				if !pr.Accepted {
					continue // someone else holds it — that's the point
				}
				if !held[k].CompareAndSwap(0, 1) {
					t.Errorf("instance %s double-granted", names[k])
					return
				}
				// Clear the shadow flag before the release commits so a
				// racing grant after commit never sees a stale 1.
				held[k].Store(0)
				if _, err := s.Execute(bg, Request{Client: client, Env: []EnvEntry{{PromiseID: pr.PromiseID, Release: true}}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Everything was released: each instance must be grantable again.
	for _, name := range names {
		pr := grantQty(t, s, "final", Named(name))
		if !pr.Accepted {
			t.Errorf("instance %s not free after stress: %s", name, pr.Reason)
		}
	}
	mustHealthy(t, s)
}
