package core

import (
	"fmt"

	"repro/internal/txn"
)

// AuditReport summarises a consistency audit of the promise manager's
// state. A healthy system yields an empty Problems slice after any sequence
// of operations — soak tests and operators rely on this.
type AuditReport struct {
	// ActivePromises is the number of live promises at audit time.
	ActivePromises int
	// Slots is the number of predicate slots across live promises.
	Slots int
	// Problems lists every inconsistency found; empty means healthy.
	Problems []string
}

// Healthy reports whether the audit found no problems.
func (r *AuditReport) Healthy() bool { return len(r.Problems) == 0 }

// String renders the report.
func (r *AuditReport) String() string {
	if r.Healthy() {
		return fmt.Sprintf("audit: healthy (%d active promises, %d slots)", r.ActivePromises, r.Slots)
	}
	return fmt.Sprintf("audit: %d problems over %d active promises: %v",
		len(r.Problems), r.ActivePromises, r.Problems)
}

// Audit checks every cross-structure invariant the design relies on (§8:
// "status information for a single set of resources is now distributed
// between the promise and resource managers, and special care will be
// needed to ensure consistency"):
//
//  1. escrow: per pool, sum(reservations) <= quantity on hand;
//  2. soft locks: tag table and instance statuses agree;
//  3. every active promise's instance slots are healthy (instance
//     promised, held by the slot, property predicate still satisfied or
//     repairable);
//  4. every escrow reservation and soft-lock holder belongs to a live
//     promise slot (no leaked holds from released/expired promises).
//
// Audit reads one immutable committed store snapshot and acquires no lock
// at all, so it can run continuously against a loaded manager without
// slowing a single grant. Consistency model: the snapshot is a
// transactionally consistent point-in-time state — invariants are judged
// against exactly one commit boundary, never a torn mix. Promises whose
// deadline has passed but whose expiry transaction has not yet committed
// still count as live (their holds are still transactionally present; the
// deadline alarm lapses them independently), so the audit never reports
// their backing as leaked.
func (m *Manager) Audit() (*AuditReport, error) {
	snap := m.store.Snapshot()
	report := &AuditReport{}
	problem := func(format string, args ...any) {
		report.Problems = append(report.Problems, fmt.Sprintf(format, args...))
	}

	// 1. Escrow invariant per pool.
	if err := m.ledger.CheckAllInvariants(snap); err != nil {
		problem("escrow: %v", err)
	}
	// 2. Tag/instance agreement.
	if err := m.tags.CheckInvariant(snap); err != nil {
		problem("softlock: %v", err)
	}

	// 3+4. Walk live promises; collect the slots that legitimately hold
	// resources. Liveness here is transactional (state Active), not
	// wall-clock: a deadline that has passed without its expiry commit yet
	// leaves the holds in place, and they are not leaks.
	var promises []Promise
	err := snap.Scan(TablePromises, func(_ string, row txn.Row) bool {
		p := row.(*promiseRow).p
		if p.State == Active {
			promises = append(promises, p)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	report.ActivePromises = len(promises)
	liveSlots := make(map[string]bool)
	liveAnonSlots := make(map[string]map[string]bool) // pool -> slots
	for _, p := range promises {
		for i, pred := range p.Predicates {
			report.Slots++
			slot := slotKey(p.ID, i)
			liveSlots[slot] = true
			switch pred.View {
			case AnonymousView:
				set := liveAnonSlots[pred.Pool]
				if set == nil {
					set = make(map[string]bool)
					liveAnonSlots[pred.Pool] = set
				}
				set[slot] = true
				// Local reservation + delegated quantity must cover Qty.
				q, err := m.ledger.Reserved(snap, pred.Pool, slot)
				if err != nil {
					return nil, err
				}
				deleg := int64(0)
				if i < len(p.DelegatedQty) {
					deleg = p.DelegatedQty[i]
				}
				if q+deleg != pred.Qty {
					problem("promise %s slot %d: reserved %d + delegated %d != promised %d",
						p.ID, i, q, deleg, pred.Qty)
				}
			case NamedView, PropertyView:
				var expr = pred.Expr
				if pred.View == NamedView {
					expr = nil
				}
				if err := m.slotHealthy(snap, p.Assigned[i], slot, expr); err != nil {
					problem("promise %s slot %d: %v", p.ID, i, err)
				}
			}
		}
	}

	// 4a. Leaked soft-lock holders.
	holders, err := m.tags.Holders(snap)
	if err != nil {
		return nil, err
	}
	for inst, holder := range holders {
		if !liveSlots[holder] {
			problem("softlock: instance %q held by dead slot %q", inst, holder)
		}
	}
	// 4b. Leaked escrow reservations: re-derive per-pool totals from live
	// slots and compare with the ledger.
	pools, err := m.rm.Pools(snap)
	if err != nil {
		return nil, err
	}
	for _, pool := range pools {
		total, err := m.ledger.TotalReserved(snap, pool.ID)
		if err != nil {
			return nil, err
		}
		var live int64
		for slot := range liveAnonSlots[pool.ID] {
			q, err := m.ledger.Reserved(snap, pool.ID, slot)
			if err != nil {
				return nil, err
			}
			live += q
		}
		if total != live {
			problem("escrow: pool %q has %d reserved but only %d owned by live promises",
				pool.ID, total, live)
		}
	}
	return report, nil
}
