package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/txn"
)

func TestStatsCountOutcomes(t *testing.T) {
	m, fake := newManager(t, Config{DefaultDuration: time.Minute})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 10, nil)
	})

	// 1 grant, 1 rejection.
	ok := grantOne(t, m, requestQuantity("c", "p", 6))
	_ = grantOne(t, m, requestQuantity("c", "p", 6))

	// 1 release.
	if _, err := m.Execute(bg, Request{Client: "c", Env: []EnvEntry{{PromiseID: ok.PromiseID, Release: true}}}); err != nil {
		t.Fatal(err)
	}
	// 1 action error.
	if _, err := m.Execute(bg, Request{Client: "c", Action: func(ac *ActionContext) (any, error) {
		return nil, errors.New("boom")
	}}); err != nil {
		t.Fatal(err)
	}
	// 1 violation.
	_ = grantOne(t, m, requestQuantity("c", "p", 10))
	resp, err := m.Execute(bg, Request{Client: "c", Action: func(ac *ActionContext) (any, error) {
		_, err := ac.Resources.AdjustPool(ac.Tx, "p", -1)
		return nil, err
	}})
	if err != nil || !errors.Is(resp.ActionErr, ErrPromiseViolated) {
		t.Fatalf("setup violation: %v %v", err, resp.ActionErr)
	}
	// 1 expiration.
	fake.Advance(2 * time.Minute)
	if err := m.Sweep(); err != nil {
		t.Fatal(err)
	}

	s := m.Stats()
	if s.Grants != 2 || s.Rejections != 1 {
		t.Fatalf("grants/rejections = %d/%d", s.Grants, s.Rejections)
	}
	if s.Releases != 1 {
		t.Fatalf("releases = %d", s.Releases)
	}
	if s.Expirations != 1 {
		t.Fatalf("expirations = %d", s.Expirations)
	}
	if s.Violations != 1 || s.ActionErrors != 1 {
		t.Fatalf("violations/actionErrs = %d/%d", s.Violations, s.ActionErrors)
	}
	if s.Requests != 6 {
		t.Fatalf("requests = %d", s.Requests)
	}
	if s.Latency.Count != 6 || s.Latency.P99 <= 0 {
		t.Fatalf("latency = %+v", s.Latency)
	}
	if s.String() == "" {
		t.Fatal("empty Stats string")
	}
}

func TestStatsModifyCountsReleaseAndGrant(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 10, nil)
	})
	pr := grantOne(t, m, requestQuantity("c", "p", 3))
	_ = grantOne(t, m, Request{Client: "c", PromiseRequests: []PromiseRequest{{
		Predicates: []Predicate{Quantity("p", 5)},
		Releases:   []string{pr.PromiseID},
	}}})
	s := m.Stats()
	if s.Grants != 2 || s.Releases != 1 {
		t.Fatalf("stats after modify: %s", s)
	}
}

func TestStatsViolationRollbackDoesNotCountRelease(t *testing.T) {
	// An atomic purchase whose post-check fails rolls back the env
	// release; the release counter must not tick.
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "p", 10, nil)
	})
	mine := grantOne(t, m, requestQuantity("me", "p", 2))
	_ = grantOne(t, m, requestQuantity("other", "p", 8))
	// Buying 3 under a 2-unit promise violates the other promise.
	resp, err := m.Execute(bg, Request{
		Client: "me",
		Env:    []EnvEntry{{PromiseID: mine.PromiseID, Release: true}},
		Action: func(ac *ActionContext) (any, error) {
			_, err := ac.Resources.AdjustPool(ac.Tx, "p", -3)
			return nil, err
		},
	})
	if err != nil || !errors.Is(resp.ActionErr, ErrPromiseViolated) {
		t.Fatalf("%v %v", err, resp.ActionErr)
	}
	s := m.Stats()
	if s.Releases != 0 {
		t.Fatalf("rolled-back release counted: %s", s)
	}
	if info, _ := m.PromiseInfo(mine.PromiseID); info.State != Active {
		t.Fatalf("promise state = %v", info.State)
	}
}
