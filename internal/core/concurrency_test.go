package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/predicate"
	"repro/internal/txn"
)

func TestConcurrentAnonymousGrantsRespectCapacity(t *testing.T) {
	// §3.1: "the sum of all promised resources should not exceed the
	// resources that are actually available" — under a concurrent stampede.
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "seats", 40, nil)
	})
	const clients = 100
	var granted atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			pr, err := m.Execute(bg, requestQuantity("client", "seats", 1))
			if err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			if pr.Promises[0].Accepted {
				granted.Add(1)
			}
		}(c)
	}
	wg.Wait()
	if granted.Load() != 40 {
		t.Fatalf("granted %d promises over a pool of 40", granted.Load())
	}
}

func TestConcurrentNamedGrantsSingleWinner(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreateInstance(tx, "unique", nil)
	})
	var winners atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pr, err := m.Execute(bg, Request{Client: "c", PromiseRequests: []PromiseRequest{{
				Predicates: []Predicate{Named("unique")},
			}}})
			if err != nil {
				t.Error(err)
				return
			}
			if pr.Promises[0].Accepted {
				winners.Add(1)
			}
		}()
	}
	wg.Wait()
	if winners.Load() != 1 {
		t.Fatalf("%d winners for one named instance", winners.Load())
	}
}

func TestConcurrentPropertyGrantsBoundedByRooms(t *testing.T) {
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		rm := m.Resources()
		for _, id := range []string{"r1", "r2", "r3"} {
			if err := rm.CreateInstance(tx, id, map[string]predicate.Value{
				"view": predicate.Bool(true),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	var granted atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 24; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pr, err := m.Execute(bg, propertyReq("c", "view = true"))
			if err != nil {
				t.Error(err)
				return
			}
			if pr.Promises[0].Accepted {
				granted.Add(1)
			}
		}()
	}
	wg.Wait()
	if granted.Load() != 3 {
		t.Fatalf("granted %d property promises over 3 rooms", granted.Load())
	}
}

func TestConcurrentMixedGrantReleaseChurn(t *testing.T) {
	// Clients repeatedly grant then release; after the dust settles all
	// capacity must be free and all invariants hold.
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		rm := m.Resources()
		if err := rm.CreatePool(tx, "pool", 10, nil); err != nil {
			return err
		}
		for _, id := range []string{"i1", "i2", "i3", "i4"} {
			if err := rm.CreateInstance(tx, id, map[string]predicate.Value{"x": predicate.Int(1)}); err != nil {
				return err
			}
		}
		return nil
	})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var preds []Predicate
				switch (c + i) % 3 {
				case 0:
					preds = []Predicate{Quantity("pool", 2)}
				case 1:
					preds = []Predicate{Named("i1")}
				case 2:
					preds = []Predicate{MustProperty("x = 1")}
				}
				resp, err := m.Execute(bg, Request{Client: "churn", PromiseRequests: []PromiseRequest{{Predicates: preds}}})
				if err != nil {
					t.Error(err)
					return
				}
				p := resp.Promises[0]
				if !p.Accepted {
					continue
				}
				if _, err := m.Execute(bg, Request{Client: "churn", Env: []EnvEntry{{PromiseID: p.PromiseID, Release: true}}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	// Everything must be free again.
	pr := grantOne(t, m, requestQuantity("final", "pool", 10))
	if !pr.Accepted {
		t.Fatalf("pool capacity leaked: %s", pr.Reason)
	}
	for _, id := range []string{"i1", "i2", "i3", "i4"} {
		r := grantOne(t, m, Request{Client: "final", PromiseRequests: []PromiseRequest{{
			Predicates: []Predicate{Named(id)},
		}}})
		if !r.Accepted {
			t.Fatalf("instance %s leaked: %s", id, r.Reason)
		}
	}
}

func TestConcurrentActionsAndGrants(t *testing.T) {
	// Purchases (action + release) race with new grants; stock arithmetic
	// must stay exact: 30 units, 15 buyers of 2 each.
	m, _ := newManager(t, Config{})
	seed(t, m, func(tx *txn.Tx) error {
		return m.Resources().CreatePool(tx, "stock", 30, nil)
	})
	var bought atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 25; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pr, err := m.Execute(bg, requestQuantity("buyer", "stock", 2))
			if err != nil {
				t.Error(err)
				return
			}
			p := pr.Promises[0]
			if !p.Accepted {
				return
			}
			resp, err := m.Execute(bg, Request{
				Client: "buyer",
				Env:    []EnvEntry{{PromiseID: p.PromiseID, Release: true}},
				Action: func(ac *ActionContext) (any, error) {
					_, err := ac.Resources.AdjustPool(ac.Tx, "stock", -2)
					return nil, err
				},
			})
			if err != nil {
				t.Error(err)
				return
			}
			if resp.ActionErr == nil {
				bought.Add(2)
			}
		}()
	}
	wg.Wait()
	tx := m.Store().Begin(txn.Block)
	defer tx.Commit()
	p, err := m.Resources().Pool(tx, "stock")
	if err != nil {
		t.Fatal(err)
	}
	if p.OnHand != 30-bought.Load() {
		t.Fatalf("on hand %d, bought %d: arithmetic broken", p.OnHand, bought.Load())
	}
	if bought.Load() != 30 {
		t.Fatalf("bought %d, want 30 (15 successful buyers)", bought.Load())
	}
}
