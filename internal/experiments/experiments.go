// Package experiments implements the evaluation suite of EXPERIMENTS.md.
//
// The paper is a position paper with no quantitative evaluation, so each
// experiment here validates one falsifiable claim made in its prose, or
// reproduces one of its two figures as a runnable artifact. The experiment
// ids (E1–E11) are indexed in DESIGN.md; cmd/promise-bench regenerates the
// tables, and the repo-root bench_test.go exposes the same workloads as
// testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/resource"
	"repro/internal/txn"
)

// Table is one experiment's result table.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper claim under test
	Columns []string
	Rows    [][]string
	Notes   string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(w, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

// Runner is one experiment. quick trims iteration counts for CI.
type Runner func(quick bool) (*Table, error)

// Registry maps experiment ids to runners.
var Registry = map[string]Runner{
	"E1":  RunE1,
	"E2":  RunE2,
	"E3":  RunE3,
	"E4":  RunE4,
	"E5":  RunE5,
	"E6":  RunE6,
	"E7":  RunE7,
	"E8":  RunE8,
	"E9":  RunE9,
	"E10": RunE10,
	"E11": RunE11,
}

// IDs returns the experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// E2 < E10 numerically.
		var a, b int
		fmt.Sscanf(out[i], "E%d", &a)
		fmt.Sscanf(out[j], "E%d", &b)
		return a < b
	})
	return out
}

// RunAll executes every experiment and prints its table.
func RunAll(quick bool, w io.Writer) error {
	for _, id := range IDs() {
		tbl, err := Registry[id](quick)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		tbl.Fprint(w)
	}
	return nil
}

// newWorld builds a store+RM seeded with pools.
func newWorld(pools map[string]int64) (*txn.Store, *resource.Manager, error) {
	store := txn.NewStore()
	rm, err := resource.NewManager(store)
	if err != nil {
		return nil, nil, err
	}
	tx := store.Begin(txn.Block)
	for pool, qty := range pools {
		if err := rm.CreatePool(tx, pool, qty, nil); err != nil {
			_ = tx.Abort()
			return nil, nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, nil, err
	}
	return store, rm, nil
}

// newPromiseWorld builds a manager seeded with pools.
func newPromiseWorld(pools map[string]int64, cfg core.Config) (*core.Manager, error) {
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	tx := m.Store().Begin(txn.Block)
	for pool, qty := range pools {
		if err := m.Resources().CreatePool(tx, pool, qty, nil); err != nil {
			_ = tx.Abort()
			return nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return m, nil
}

// RunE1 — Promises vs long-duration 2PL: order throughput as the hold
// (think) time grows. Claim (§1, §9): lock-based isolation "assumes an
// environment where activities run very quickly"; promises let clients
// hold guarantees across long operations without serializing each other.
func RunE1(quick bool) (*Table, error) {
	orders := 200
	clients := 8
	if quick {
		orders = 64
	}
	holds := []time.Duration{0, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond}
	tbl := &Table{
		ID:      "E1",
		Title:   "order throughput vs hold time (8 clients, one pool)",
		Claim:   "§1/§9: long-duration locks serialize long-running operations; promises do not",
		Columns: []string{"hold", "locking ord/s", "promises ord/s", "speedup"},
	}
	for _, hold := range holds {
		think := func() {}
		if hold > 0 {
			h := hold
			think = func() { time.Sleep(h) }
		}
		lockRate, err := e1Locking(orders, clients, think)
		if err != nil {
			return nil, err
		}
		promRate, err := e1Promises(orders, clients, think)
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			hold.String(),
			fmt.Sprintf("%.0f", lockRate),
			fmt.Sprintf("%.0f", promRate),
			fmt.Sprintf("%.1fx", promRate/lockRate),
		})
	}
	tbl.Notes = "expected shape: locking wins on raw overhead at hold=0; promises overtake and approach the client count as hold dominates"
	return tbl, nil
}

func e1Locking(orders, clients int, think func()) (float64, error) {
	store, rm, err := newWorld(map[string]int64{"w": 1 << 40})
	if err != nil {
		return 0, err
	}
	b := baseline.NewLocking(store, rm)
	return runOrderLoop(orders, clients, func() error {
		_, err := b.RunOrder("w", 1, think)
		return err
	})
}

func e1Promises(orders, clients int, think func()) (float64, error) {
	m, err := newPromiseWorld(map[string]int64{"w": 1 << 40}, core.Config{})
	if err != nil {
		return 0, err
	}
	b := baseline.NewPromiseOrders(m)
	return runOrderLoop(orders, clients, func() error {
		_, err := b.RunOrder("w", 1, think)
		return err
	})
}

// runOrderLoop spreads `orders` across `clients` goroutines and returns
// orders/second.
func runOrderLoop(orders, clients int, one func() error) (float64, error) {
	var wg sync.WaitGroup
	var firstErr atomic.Value
	var done atomic.Int64
	start := time.Now()
	per := orders / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := one(); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, err
	}
	return float64(done.Load()) / elapsed.Seconds(), nil
}

// RunE2 — concurrent non-conflicting promises on one pool. Claim (§3.1):
// "There can be any number of promises outstanding on anonymous resources,
// the only constraint being that the sum … should not exceed the resources
// that are actually available" — so grant throughput should scale with
// clients while 2PL on the pool record serializes.
func RunE2(quick bool) (*Table, error) {
	cycles := 400
	if quick {
		cycles = 100
	}
	clientCounts := []int{1, 2, 4, 8, 16}
	tbl := &Table{
		ID:      "E2",
		Title:   "grant+release cycles/s on one pool vs client count (1ms hold)",
		Claim:   "§3.1: many concurrent promises can coexist on one pool; a lock admits one holder",
		Columns: []string{"clients", "locking cyc/s", "promises cyc/s", "promises granted sum<=onhand"},
	}
	hold := func() { time.Sleep(time.Millisecond) }
	for _, clients := range clientCounts {
		// Locking: exclusive lock held for the hold period per cycle.
		store, rm, err := newWorld(map[string]int64{"p": 1 << 40})
		if err != nil {
			return nil, err
		}
		lb := baseline.NewLocking(store, rm)
		lockRate, err := runOrderLoop(cycles, clients, func() error {
			_, err := lb.RunOrder("p", 1, hold)
			return err
		})
		if err != nil {
			return nil, err
		}
		// Promises: grant, hold, release (no purchase, pure reservation
		// churn).
		m, err := newPromiseWorld(map[string]int64{"p": 1 << 40}, core.Config{})
		if err != nil {
			return nil, err
		}
		okInvariant := true
		promRate, err := runOrderLoop(cycles, clients, func() error {
			resp, err := m.Execute(context.Background(), core.Request{
				Client: "c",
				PromiseRequests: []core.PromiseRequest{{
					Predicates: []core.Predicate{core.Quantity("p", 1)},
				}},
			})
			if err != nil {
				return err
			}
			if !resp.Promises[0].Accepted {
				okInvariant = false
				return fmt.Errorf("grant rejected on huge pool")
			}
			hold()
			_, err = m.Execute(context.Background(), core.Request{
				Client: "c",
				Env:    []core.EnvEntry{{PromiseID: resp.Promises[0].PromiseID, Release: true}},
			})
			return err
		})
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", clients),
			fmt.Sprintf("%.0f", lockRate),
			fmt.Sprintf("%.0f", promRate),
			fmt.Sprintf("%v", okInvariant),
		})
	}
	tbl.Notes = "expected shape: locking flat (~1/hold), promises scale with clients until manager contention"
	return tbl, nil
}

// RunE3 — failure-mode comparison. Claim (§2, §7): with promises,
// "unavailability exceptions can be treated as serious errors rather than
// as part of the normal processing flow"; without isolation the
// check-then-act gap produces late failures routinely.
func RunE3(quick bool) (*Table, error) {
	rounds := 6
	if quick {
		rounds = 3
	}
	clientCounts := []int{2, 8, 24}
	tbl := &Table{
		ID:      "E3",
		Title:   "order outcomes under contention (pool refilled per round)",
		Claim:   "§2/§7: promises turn late failures into up-front rejections",
		Columns: []string{"clients", "regime", "fulfilled", "rejected-early", "failed-late"},
	}
	for _, clients := range clientCounts {
		for _, regime := range []string{"check-then-act", "promises"} {
			var fulfilled, early, late atomic.Int64
			for r := 0; r < rounds; r++ {
				// Pool deliberately smaller than demand: clients want 2
				// each, pool holds enough for half of them.
				pool := int64(clients) // clients*2 demanded, clients available
				var runOne func() (baseline.Outcome, error)
				switch regime {
				case "check-then-act":
					store, rm, err := newWorld(map[string]int64{"w": pool})
					if err != nil {
						return nil, err
					}
					b := baseline.NewCheckThenAct(store, rm)
					runOne = func() (baseline.Outcome, error) {
						return b.RunOrder("w", 2, func() { time.Sleep(2 * time.Millisecond) })
					}
				default:
					m, err := newPromiseWorld(map[string]int64{"w": pool}, core.Config{})
					if err != nil {
						return nil, err
					}
					b := baseline.NewPromiseOrders(m)
					runOne = func() (baseline.Outcome, error) {
						return b.RunOrder("w", 2, func() { time.Sleep(2 * time.Millisecond) })
					}
				}
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						out, err := runOne()
						if err != nil {
							late.Add(1)
							return
						}
						switch out {
						case baseline.Fulfilled:
							fulfilled.Add(1)
						case baseline.RejectedEarly:
							early.Add(1)
						case baseline.FailedLate:
							late.Add(1)
						}
					}()
				}
				wg.Wait()
			}
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprintf("%d", clients), regime,
				fmt.Sprintf("%d", fulfilled.Load()),
				fmt.Sprintf("%d", early.Load()),
				fmt.Sprintf("%d", late.Load()),
			})
		}
	}
	tbl.Notes = "expected shape: promises row always shows failed-late = 0"
	return tbl, nil
}

// RunE4 — deadlock behaviour. Claim (§9): "because unfulfillable promise
// requests are rejected immediately rather than blocking, we do not have to
// worry about the deadlock issues that plague lock-based algorithms."
func RunE4(quick bool) (*Table, error) {
	rounds := 40
	if quick {
		rounds = 15
	}
	clientPairs := []int{1, 4, 8}
	tbl := &Table{
		ID:      "E4",
		Title:   "cyclic two-resource orders: deadlock victims per regime",
		Claim:   "§9: promises reject immediately, so no deadlock; 2PL deadlocks under cyclic demand",
		Columns: []string{"client pairs", "locking deadlocks", "locking fulfilled", "promises deadlocks", "promises fulfilled"},
	}
	for _, pairs := range clientPairs {
		// Locking.
		store, rm, err := newWorld(map[string]int64{"a": 1 << 40, "b": 1 << 40})
		if err != nil {
			return nil, err
		}
		lb := baseline.NewLocking(store, rm)
		lockDead, lockOK := e4Run(pairs, rounds, func(order []string) baseline.Outcome {
			out, _ := lb.RunMultiOrder(order, 1, func() { time.Sleep(time.Millisecond) })
			return out
		})
		// Promises.
		m, err := newPromiseWorld(map[string]int64{"a": 1 << 40, "b": 1 << 40}, core.Config{})
		if err != nil {
			return nil, err
		}
		pb := baseline.NewPromiseOrders(m)
		promDead, promOK := e4Run(pairs, rounds, func(order []string) baseline.Outcome {
			out, _ := pb.RunMultiOrder(order, 1, func() { time.Sleep(time.Millisecond) })
			return out
		})
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", pairs),
			fmt.Sprintf("%d", lockDead), fmt.Sprintf("%d", lockOK),
			fmt.Sprintf("%d", promDead), fmt.Sprintf("%d", promOK),
		})
	}
	tbl.Notes = "expected shape: promises deadlocks identically 0 at every scale"
	return tbl, nil
}

func e4Run(pairs, rounds int, run func(order []string) baseline.Outcome) (deadlocks, fulfilled int64) {
	var dead, ok atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		for _, order := range [][]string{{"a", "b"}, {"b", "a"}} {
			wg.Add(1)
			go func(order []string) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					switch run(order) {
					case baseline.Deadlocked:
						dead.Add(1)
					case baseline.Fulfilled:
						ok.Add(1)
					}
				}
			}(order)
		}
	}
	wg.Wait()
	return dead.Load(), ok.Load()
}
